package m3

// Distributed training: a Cluster is a handle to a set of m3worker
// processes, each owning one contiguous, merge-group-aligned row
// shard of a dataset file. Cluster.Fit drives the same estimator
// surface as Engine.Fit over the network and returns bit-identical
// models: shard boundaries sit on the canonical merge-group grid and
// the coordinator refolds the workers' per-group partials in global
// row order, replaying a local grouped fold operation for operation
// (see internal/dist).

import (
	"context"
	"errors"
	"fmt"

	"m3/internal/dist"
)

// ClusterStats reports a coordinator's accumulated traffic: broadcast
// rounds, wire bytes in each direction and total straggler wait (the
// per-round gap between the fastest and slowest shard).
type ClusterStats = dist.Stats

// ClusterOptions tunes dialing and per-call deadlines.
type ClusterOptions = dist.Options

// Cluster is a connection to a row-sharded training cluster. It is
// not safe for concurrent Fit calls.
type Cluster struct {
	c *dist.Coordinator
}

// DialCluster connects to worker processes (started with m3worker) at
// the given addresses. Shard order follows address order, so the same
// address list always reproduces the same fold order — and therefore
// the same model bits.
func DialCluster(ctx context.Context, addrs []string, opts ClusterOptions) (*Cluster, error) {
	c, err := dist.DialWorkers(ctx, addrs, opts)
	if err != nil {
		return nil, err
	}
	return &Cluster{c: c}, nil
}

// Close closes every worker connection; workers tear down their shard
// engines when the connection drops.
func (cl *Cluster) Close() error { return cl.c.Close() }

// Workers returns the number of dialed workers.
func (cl *Cluster) Workers() int { return cl.c.Workers() }

// Shards returns the number of workers actually holding a shard of
// the last opened dataset (small datasets may use fewer than dialed).
func (cl *Cluster) Shards() int { return cl.c.Shards() }

// Stats returns cumulative traffic counters.
func (cl *Cluster) Stats() ClusterStats { return cl.c.Stats() }

// Fit trains est on the dataset file at dataPath, sharded across the
// cluster's workers. Every worker must be able to open dataPath (a
// shared filesystem, or a copy of the file at the same path). The
// returned model is bit-identical — same predictions, same saved
// bytes — to eng.Fit on the whole file.
func (cl *Cluster) Fit(ctx context.Context, est Estimator, dataPath string) (Model, error) {
	spec, err := clusterSpec(est)
	if err != nil {
		return nil, err
	}
	inner, err := cl.c.Fit(ctx, dataPath, spec)
	if err != nil {
		return nil, err
	}
	return wrapLoaded(inner)
}

// clusterSpec maps a root estimator onto the wire spec the
// coordinator understands. Option defaults are NOT resolved here —
// the coordinator applies the same withDefaults the local trainers
// do, so a zero-valued Options means the same thing on both paths.
func clusterSpec(est Estimator) (dist.Spec, error) {
	switch e := est.(type) {
	case LogisticRegression:
		return dist.Spec{
			Algo: "logistic", Binarize: e.Binarize, Positive: e.Positive,
			Lambda: e.Options.Lambda, NoIntercept: e.Options.NoIntercept,
			MaxIterations: e.Options.MaxIterations, GradTol: e.Options.GradTol,
		}, nil
	case SoftmaxRegression:
		return dist.Spec{
			Algo: "softmax", Classes: e.Classes,
			Lambda: e.Options.Lambda, NoIntercept: e.Options.NoIntercept,
			MaxIterations: e.Options.MaxIterations, GradTol: e.Options.GradTol,
		}, nil
	case LinearRegression:
		algo := "linear"
		if e.Exact {
			algo = "linear-exact"
		}
		return dist.Spec{
			Algo:   algo,
			Lambda: e.Options.Lambda, NoIntercept: e.Options.NoIntercept,
			MaxIterations: e.Options.MaxIterations, GradTol: e.Options.GradTol,
		}, nil
	case NaiveBayes:
		return dist.Spec{
			Algo: "bayes", Classes: e.Classes,
			VarSmoothing: e.Options.VarSmoothing,
		}, nil
	case KMeansClustering:
		spec := dist.Spec{
			Algo: "kmeans", K: e.Options.K,
			MaxIterations: e.Options.MaxIterations, Tol: e.Options.Tol,
			Seed: e.Options.Seed, RandomInit: e.Options.RandomInit,
			RunAllIterations: e.Options.RunAllIterations,
		}
		if init := e.Options.InitCentroids; init != nil {
			k, d := init.Dims()
			flat := make([]float64, 0, k*d)
			for i := 0; i < k; i++ {
				flat = append(flat, init.RawRow(i)...)
			}
			spec.InitCentroids = flat
		}
		return spec, nil
	case PrincipalComponents:
		return dist.Spec{
			Algo: "pca", Components: e.Options.Components,
			MaxIterations: e.Options.MaxIterations, Tol: e.Options.Tol,
			Seed: e.Options.Seed,
		}, nil
	case SGDClassifier:
		// Passed through so the coordinator's rejection (with its
		// explanation) is the single source of truth.
		return dist.Spec{Algo: "sgd"}, nil
	case Pipeline:
		if e.Estimator == nil {
			return dist.Spec{}, errors.New("m3: pipeline has no estimator")
		}
		spec := dist.Spec{Algo: "pipeline"}
		for i, st := range e.Stages {
			ss, err := clusterStageSpec(st)
			if err != nil {
				return dist.Spec{}, fmt.Errorf("m3: pipeline stage %d: %w", i, err)
			}
			spec.Stages = append(spec.Stages, ss)
		}
		final, err := clusterSpec(e.Estimator)
		if err != nil {
			return dist.Spec{}, err
		}
		if final.Algo == "pipeline" {
			return dist.Spec{}, errors.New("m3: nested pipelines cannot be trained on a cluster")
		}
		spec.Final = &final
		return spec, nil
	}
	return dist.Spec{}, fmt.Errorf("m3: %T cannot be trained on a cluster", est)
}

// clusterStageSpec maps a pipeline transformer stage.
func clusterStageSpec(tr Transformer) (dist.Spec, error) {
	switch s := tr.(type) {
	case StandardScaler:
		return dist.Spec{Algo: "standard-scaler"}, nil
	case MinMaxScaler:
		return dist.Spec{Algo: "minmax-scaler"}, nil
	case PrincipalComponents:
		return dist.Spec{
			Algo: "pca", Components: s.Options.Components,
			MaxIterations: s.Options.MaxIterations, Tol: s.Options.Tol,
			Seed: s.Options.Seed,
		}, nil
	}
	return dist.Spec{}, fmt.Errorf("m3: %T is not a distributable transformer", tr)
}
