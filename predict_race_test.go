package m3

import (
	"context"
	"sync"
	"testing"

	"m3/internal/mat"
)

// TestConcurrentPredictMatrix pins the core.Model concurrency
// contract: PredictMatrix on one fitted model from many goroutines —
// fused pipelines and k-NN (whose reference matrix stays mmap-backed
// and pages on demand) included — is race-free and bit-identical to
// a sequential call. CI runs this under -race; the serving layer's
// micro-batcher depends on it to issue overlapping batches against a
// single model snapshot without locking.
func TestConcurrentPredictMatrix(t *testing.T) {
	path := digitsFile(t, 160)
	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cases := []struct {
		name string
		est  Estimator
	}{
		{"logreg", LogisticRegression{Binarize: true, Options: LogisticOptions{MaxIterations: 5}}},
		{"bayes", NaiveBayes{Classes: 10}},
		{"kmeans", KMeansClustering{Options: KMeansOptions{K: 4, MaxIterations: 4, Seed: 2}}},
		{"pca", PrincipalComponents{Options: PCAOptions{Components: 3, Seed: 1}}},
		{"knn", KNNClassifier{K: 3, Classes: 10}},
		{"pipeline", scalePCALogreg(4)},
	}

	// Queries live on the heap like a decoded serving batch would.
	const qn = 24
	cols := tbl.X.Cols()
	flat := make([]float64, 0, qn*cols)
	for i := 0; i < qn; i++ {
		flat = append(flat, tbl.X.RawRow(i)...)
	}
	queries := mat.NewDenseFrom(flat, qn, cols)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model, err := eng.Fit(ctx, tc.est, tbl)
			if err != nil {
				t.Fatal(err)
			}
			want, err := model.PredictMatrix(queries)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines, rounds = 16, 6
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						got, err := model.PredictMatrix(queries)
						if err != nil {
							t.Error(err)
							return
						}
						for i := range want {
							if got[i] != want[i] {
								t.Errorf("concurrent prediction %d = %v, want %v", i, got[i], want[i])
								return
							}
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
