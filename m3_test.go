package m3

import (
	"context"
	"path/filepath"
	"testing"
)

// TestTable1MinimalChange is experiment E3: the same training code
// runs unchanged against a heap matrix and a memory-mapped one, and
// produces the identical model — the paper's Table 1 in executable
// form.
func TestTable1MinimalChange(t *testing.T) {
	dir := t.TempDir()
	dsPath := filepath.Join(dir, "digits.m3")
	const n = 80
	if err := GenerateInfimnist(dsPath, n, 7); err != nil {
		t.Fatal(err)
	}

	est := LogisticRegression{
		Binarize: true, Positive: 0,
		Options: LogisticOptions{MaxIterations: 20},
	}
	train := func(eng *Engine, tbl *Table) *LogisticModel {
		t.Helper()
		m, err := eng.Fit(context.Background(), est, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return m.(*FittedLogistic).LogisticModel
	}

	// "Original": in-memory load.
	heapEng := New(Config{Mode: InMemory})
	defer heapEng.Close()
	heapTbl, err := heapEng.Open(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	heapModel := train(heapEng, heapTbl)

	// "M3": the one-line change — open memory-mapped instead.
	mapEng := New(Config{Mode: MemoryMapped})
	defer mapEng.Close()
	mapTbl, err := mapEng.Open(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !mapTbl.Mapped {
		t.Fatal("dataset not mapped")
	}
	mapModel := train(mapEng, mapTbl)

	// Identical data + identical algorithm ⇒ identical model.
	if heapModel.Intercept != mapModel.Intercept {
		t.Errorf("intercepts differ: %v vs %v", heapModel.Intercept, mapModel.Intercept)
	}
	for i := range heapModel.Weights {
		if heapModel.Weights[i] != mapModel.Weights[i] {
			t.Fatalf("weight %d differs: %v vs %v", i, heapModel.Weights[i], mapModel.Weights[i])
		}
	}
}

func TestAllocFloat64RoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "buf.bin")
	fs, closeFn, err := AllocFloat64(path, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		fs[i] = float64(i)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	got, closeFn2, err := MapFloat64(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn2()
	if got[42] != 42 {
		t.Errorf("value = %v", got[42])
	}
}

func TestWrapMatrixAndKMeans(t *testing.T) {
	// Tiny two-cluster problem through the public API.
	data := []float64{
		0, 0, 0.1, 0.1, 0.2, 0, // cluster A
		5, 5, 5.1, 5.2, 4.9, 5, // cluster B
	}
	x := WrapMatrix(data, 6, 2)
	model, err := Fit(context.Background(), KMeansClustering{Options: KMeansOptions{K: 2, Seed: 1}}, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := model.(*FittedKMeans).KMeansResult
	if res.Assignments[0] == res.Assignments[3] {
		t.Error("clusters not separated")
	}
	if res.Assignments[0] != res.Assignments[1] || res.Assignments[3] != res.Assignments[4] {
		t.Error("cluster members split")
	}
}

func TestTrainSoftmaxPublic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.m3")
	if err := GenerateInfimnist(path, 100, 3); err != nil {
		t.Fatal(err)
	}
	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]int, len(tbl.Labels))
	for i, v := range tbl.Labels {
		y[i] = int(v)
	}
	model, err := eng.Fit(context.Background(), SoftmaxRegression{
		Classes: 10, Options: LogisticOptions{MaxIterations: 15},
	}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if acc := model.(*FittedSoftmax).Accuracy(tbl.X, y); acc < 0.8 {
		t.Errorf("softmax accuracy over mapped data = %v", acc)
	}
}

func TestNewMatrix(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Errorf("dims %dx%d", m.Rows(), m.Cols())
	}
	if InfimnistFeatures != 784 {
		t.Errorf("InfimnistFeatures = %d", InfimnistFeatures)
	}
}
