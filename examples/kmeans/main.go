// This example clusters memory-mapped digit images with k-means
// (k-means++ init) and reports cluster purity against the true digit
// labels — the paper's second workload, run for real at laptop scale.
//
// Run:
//
//	go run ./examples/kmeans [-images 3000] [-k 10]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"m3"
)

func main() {
	log.SetFlags(0)
	images := flag.Int64("images", 3000, "images to cluster")
	k := flag.Int("k", 10, "cluster count (paper's Fig 1b uses 5)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "m3-kmeans")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "digits.m3")

	fmt.Printf("generating %d digit images...\n", *images)
	if err := m3.GenerateInfimnist(path, *images, 4); err != nil {
		log.Fatal(err)
	}

	eng := m3.New(m3.Config{Mode: m3.MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	est := m3.KMeansClustering{Options: m3.KMeansOptions{
		K:             *k,
		MaxIterations: 10, // the paper's protocol
		Seed:          7,
		FitOptions: m3.FitOptions{
			Callback: func(info m3.IterInfo) bool {
				fmt.Printf("  iter %2d: inertia %.1f\n", info.Iter, info.Value)
				return true
			},
		},
	}}
	fitted, err := eng.Fit(context.Background(), est, tbl)
	if err != nil {
		log.Fatal(err)
	}
	res := fitted.(*m3.FittedKMeans)
	fmt.Printf("\nclustered in %v (%d scans, converged=%v)\n",
		time.Since(start).Round(time.Millisecond), res.Scans, res.Converged)

	// Purity: fraction of points whose cluster's majority digit
	// matches their own label.
	counts := make([]map[int]int, *k)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i, c := range res.Assignments {
		counts[c][int(tbl.Labels[i])]++
	}
	pure := 0
	fmt.Println("\ncluster composition (majority digit, share):")
	for c, byDigit := range counts {
		total, best, bestDigit := 0, 0, -1
		for digit, n := range byDigit {
			total += n
			if n > best {
				best, bestDigit = n, digit
			}
		}
		pure += best
		if total > 0 {
			fmt.Printf("  cluster %2d: digit %d (%3.0f%% of %d points)\n",
				c, bestDigit, 100*float64(best)/float64(total), total)
		} else {
			fmt.Printf("  cluster %2d: empty\n", c)
		}
	}
	fmt.Printf("\noverall purity: %.3f\n", float64(pure)/float64(len(res.Assignments)))
}
