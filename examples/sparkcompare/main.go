// This example regenerates Figure 1b: the same logistic-regression
// and k-means workloads on one M3 PC versus simulated 4- and
// 8-instance Spark clusters, with the paper's reported numbers
// alongside for comparison. The distributed runs execute the real
// algorithm math (their models match M3's exactly); timing comes
// from the calibrated cluster cost model (see DESIGN.md §2).
//
// Run:
//
//	go run ./examples/sparkcompare [-size 190]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"m3/internal/bench"
)

func main() {
	log.SetFlags(0)
	sizeGB := flag.Float64("size", 190, "nominal dataset size in GB")
	flag.Parse()

	w := bench.Workload{
		NominalBytes: int64(*sizeGB * 1e9),
		ActualRows:   512,
		Seed:         3,
	}
	fmt.Printf("workload: %.0f GB Infimnist, logreg 10 L-BFGS iters, k-means 10 iters k=5\n\n", *sizeGB)

	rows, err := bench.Fig1b(bench.PaperPC(), w)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.RenderFig1b(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\npaper findings to check against the table:")
	fmt.Println("  - logreg: M3 ~30% faster than 8x Spark; 4x Spark ~4.2x M3")
	fmt.Println("  - kmeans: 8x Spark comparable (1.37x); 4x Spark > 2x M3")
}
