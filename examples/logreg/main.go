// This example trains logistic regression on a memory-mapped dataset
// end to end — generate, map, train, evaluate on held-out data — and
// reports real OS-level paging statistics, mirroring the workload of
// the paper's Figure 1a at laptop scale.
//
// Run:
//
//	go run ./examples/logreg [-images 5000]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"m3"
	"m3/internal/iostats"
)

func main() {
	log.SetFlags(0)
	images := flag.Int64("images", 5000, "training images to generate")
	flag.Parse()

	dir, err := os.MkdirTemp("", "m3-logreg")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	trainPath := filepath.Join(dir, "train.m3")
	testPath := filepath.Join(dir, "test.m3")

	fmt.Printf("generating %d training + 1000 test images...\n", *images)
	if err := m3.GenerateInfimnist(trainPath, *images, 1); err != nil {
		log.Fatal(err)
	}
	if err := m3.GenerateInfimnist(testPath, 1000, 2); err != nil {
		log.Fatal(err)
	}

	// Memory-map both datasets; opening costs no reads.
	eng := m3.New(m3.Config{Mode: m3.MemoryMapped})
	defer eng.Close()
	trainTbl, err := eng.Open(trainPath)
	if err != nil {
		log.Fatal(err)
	}
	testTbl, err := eng.Open(testPath)
	if err != nil {
		log.Fatal(err)
	}

	binary := func(labels []float64) []float64 {
		y := make([]float64, len(labels))
		for i, v := range labels {
			if v == 0 {
				y[i] = 1
			}
		}
		return y
	}
	yTrain := binary(trainTbl.Labels)
	yTest := binary(testTbl.Labels)

	before, procOK := iostats.ReadProc()
	start := time.Now()
	passes := 0
	// Estimator API: the engine threads its worker pool and storage
	// settings into the fit; the context could cancel it mid-scan.
	est := m3.LogisticRegression{
		Binarize: true, Positive: 0, // digit zero vs rest
		Options: m3.LogisticOptions{
			MaxIterations: 10, // the paper's protocol
			GradTol:       1e-12,
			FitOptions: m3.FitOptions{
				Callback: func(info m3.IterInfo) bool {
					passes = info.Evaluations
					fmt.Printf("  iter %2d: loss %.6f  |grad| %.2e\n", info.Iter, info.Value, info.GradNorm)
					return true
				},
			},
		},
	}
	fitted, err := eng.Fit(context.Background(), est, trainTbl)
	if err != nil {
		log.Fatal(err)
	}
	model := fitted.(*m3.FittedLogistic)
	elapsed := time.Since(start)

	fmt.Printf("\ntrained in %v (%d data passes over %.1f MB)\n",
		elapsed.Round(time.Millisecond), passes, float64(trainTbl.X.SizeBytes())/1e6)
	fmt.Printf("train accuracy: %.4f\n", model.Accuracy(trainTbl.X, yTrain))
	fmt.Printf("test accuracy:  %.4f\n", model.Accuracy(testTbl.X, yTest))

	if procOK == nil {
		if after, err := iostats.ReadProc(); err == nil {
			d := after.Sub(before)
			fmt.Printf("paging: %d major faults, %.1f MB read from storage\n",
				d.MajorFaults, float64(d.ReadBytes)/1e6)
		}
	}
}
