// This example fits a whole preprocess→train pipeline out-of-core
// with one Engine.Fit call: standardize → PCA → logistic regression
// over a memory-budgeted engine, so every intermediate matrix is
// materialized as mmap-backed scratch instead of heap — the paper's
// Table 1 property extended from training to the full workflow. It
// then saves the fitted chain and reloads it with m3.Load to show the
// round trip.
//
// Run:
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"m3"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "m3-pipeline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A dataset comfortably bigger than the engine's memory budget.
	const images = 2000
	path := filepath.Join(dir, "digits.m3")
	if err := m3.GenerateInfimnist(path, images, 1); err != nil {
		log.Fatal(err)
	}

	// Budget of 1 MB: the 12.5 MB dataset and the equally-sized scaled
	// intermediate exceed it, so both live in mmap-backed storage,
	// while the small 2000×16 PCA coordinate matrix drops back onto
	// the heap — materialization is mode-aware per intermediate.
	eng := m3.New(m3.Config{Mode: m3.Auto, MemoryBudget: 1 << 20, TempDir: dir})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d x %d, mapped=%v\n", tbl.X.Rows(), tbl.X.Cols(), tbl.Mapped)

	pipe := m3.Pipeline{
		Stages: []m3.Transformer{
			m3.StandardScaler{},
			m3.PrincipalComponents{Options: m3.PCAOptions{Components: 16, Seed: 1}},
		},
		Estimator: m3.LogisticRegression{
			Binarize: true, Positive: 0,
			Options: m3.LogisticOptions{MaxIterations: 20},
		},
	}
	model, err := eng.Fit(context.Background(), pipe, tbl)
	if err != nil {
		log.Fatal(err)
	}
	fp := model.(*m3.FittedPipeline)
	for i, fused := range fp.StageFused() {
		how := "materialized"
		if fused {
			how = "fused (no intermediate)"
		}
		fmt.Printf("stage %d ran %s\n", i, how)
	}
	where := "heap"
	if fp.CacheMapped() {
		where = "mmap scratch"
	}
	fmt.Printf("intermediate materializations: %d (training cache on %s)\n",
		fp.Materializations(), where)

	preds, err := model.PredictMatrix(tbl.X)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, p := range preds {
		want := 0.0
		if tbl.Labels[i] == 0 {
			want = 1
		}
		//m3vet:allow floateq -- predictions and labels are exact 0/1 ids
		if p == want {
			correct++
		}
	}
	fmt.Printf("train accuracy through the chain: %.4f\n", float64(correct)/float64(images))

	// The whole chain round-trips through one envelope.
	mp := filepath.Join(dir, "pipe.model")
	if err := model.Save(mp); err != nil {
		log.Fatal(err)
	}
	loaded, info, err := m3.Load(mp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %s model: %d input cols, %d classes, stages %v\n",
		info.Kind, info.InputCols, info.Classes, info.Stages)
	re, err := loaded.PredictMatrix(tbl.X)
	if err != nil {
		log.Fatal(err)
	}
	same := true
	for i := range preds {
		//m3vet:allow floateq -- bit-parity determinism check: exact by design
		if re[i] != preds[i] {
			same = false
			break
		}
	}
	fmt.Printf("reloaded pipeline predictions identical: %v\n", same)
}
