// This example reproduces the context the paper generalizes from:
// graph computation via memory mapping (its reference [3], "MMap:
// fast billion-scale graph computation on a PC"). It generates a
// scale-free R-MAT graph, writes it in the mappable edge-list format,
// memory-maps it, and runs PageRank and connected components —
// both pure sequential edge scans, the access pattern that M3 then
// carries over to machine learning.
//
// Run:
//
//	go run ./examples/pagerank [-scale 14] [-degree 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"m3/internal/graph"
)

func main() {
	log.SetFlags(0)
	scale := flag.Int("scale", 14, "log2 of node count")
	degree := flag.Int("degree", 8, "edges per node")
	flag.Parse()

	dir, err := os.MkdirTemp("", "m3-pagerank")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.m3g")

	g, err := graph.GenerateRMAT(*scale, *degree, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R-MAT graph: %d nodes, %d edges (%.1f MB on disk)\n",
		g.Nodes, g.EdgeCount(), float64(16*g.EdgeCount())/1e6)
	if err := g.Write(path); err != nil {
		log.Fatal(err)
	}

	// Memory-map and compute; the edge list pages in as it is
	// scanned.
	m, err := graph.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	start := time.Now()
	rank, iters, err := graph.PageRank(context.Background(), m, graph.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPageRank converged in %d iterations (%v)\n", iters, time.Since(start).Round(time.Millisecond))
	fmt.Println("top nodes:")
	for i, node := range graph.TopK(rank, 5) {
		fmt.Printf("  %d. node %6d  rank %.6f\n", i+1, node, rank[node])
	}

	start = time.Now()
	labels, scans, err := graph.ConnectedComponents(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconnected components: %d (in %d edge scans, %v)\n",
		graph.ComponentCount(labels), scans, time.Since(start).Round(time.Millisecond))
}
