// Quickstart reproduces Table 1 of the paper: converting in-memory
// training code to out-of-core M3 code is a one-line change, and the
// two paths produce identical models.
//
//	Original                          M3
//	--------------------------------  --------------------------------
//	eng := m3.New(m3.Config{          eng := m3.New(m3.Config{
//	    Mode: m3.InMemory})               Mode: m3.MemoryMapped})   // ← the change
//	tbl, _ := eng.Open("digits.m3")   tbl, _ := eng.Open("digits.m3")
//	eng.Fit(ctx, est, tbl)            eng.Fit(ctx, est, tbl)
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"m3"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "m3-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "digits.m3")

	// Generate a small Infimnist-style dataset (500 digit images).
	const images = 500
	if err := m3.GenerateInfimnist(path, images, 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d images x %d features at %s\n\n", images, m3.InfimnistFeatures, path)

	// Binary task: is the digit a zero? One estimator serves both
	// backends — the engine's mode is the only difference.
	est := m3.LogisticRegression{
		Binarize: true, Positive: 0,
		Options: m3.LogisticOptions{MaxIterations: 20},
	}
	train := func(mode m3.Mode, name string) *m3.FittedLogistic {
		eng := m3.New(m3.Config{Mode: mode})
		defer eng.Close()
		tbl, err := eng.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		fitted, err := eng.Fit(context.Background(), est, tbl)
		if err != nil {
			log.Fatal(err)
		}
		model := fitted.(*m3.FittedLogistic)
		y := make([]float64, len(tbl.Labels))
		for i, v := range tbl.Labels {
			if v == 0 {
				y[i] = 1
			}
		}
		fmt.Printf("%-12s mapped=%-5v  loss=%.6f  accuracy=%.3f\n",
			name, tbl.Mapped, model.Result.Value, model.Accuracy(tbl.X, y))
		return model
	}

	original := train(m3.InMemory, "Original:")
	viaM3 := train(m3.MemoryMapped, "M3:")

	// Identical data + identical algorithm ⇒ identical model.
	//m3vet:allow floateq -- bit-parity demo: exact equality is the point
	same := original.Intercept == viaM3.Intercept
	for i := range original.Weights {
		//m3vet:allow floateq -- bit-parity demo: exact equality is the point
		same = same && original.Weights[i] == viaM3.Weights[i]
	}
	fmt.Printf("\nmodels bit-identical across backends: %v\n", same)
	fmt.Println("→ Table 1: out-of-core support with no algorithm changes.")
}
