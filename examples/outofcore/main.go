// This example regenerates the shape of Figure 1a at your desk: it
// sweeps dataset sizes across the RAM boundary of the paper's 32 GB
// machine (simulated substrate, see DESIGN.md) and prints the
// two-slope linear curve with the knee at RAM size, then fits the
// runtime model and predicts an unseen size.
//
// Run:
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"

	"m3/internal/bench"
	"m3/internal/perfmodel"
)

func main() {
	log.SetFlags(0)
	machine := bench.PaperPC()
	fmt.Printf("machine: RAM %.0f GB, disk %.2f GB/s sequential\n\n",
		float64(machine.RAMBytes)/1e9, machine.Disk.BandwidthBytes/1e9)

	res, err := bench.Fig1a(bench.Fig1aConfig{
		Machine:  machine,
		Workload: bench.Workload{ActualRows: 256, Seed: 9},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.RenderFig1a(os.Stdout, res, machine.RAMBytes); err != nil {
		log.Fatal(err)
	}

	// The knee is discoverable from runtimes alone.
	pts := make([]perfmodel.Point, len(res.Points))
	for i, p := range res.Points {
		pts[i] = perfmodel.Point{SizeBytes: float64(p.SizeBytes), Seconds: p.Seconds}
	}
	auto, err := perfmodel.FitAutoKnee(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nknee recovered from measurements alone: %.0f GB (machine RAM: %.0f GB)\n",
		auto.KneeBytes/1e9, float64(machine.RAMBytes)/1e9)
	fmt.Printf("predicted runtime at 250 GB: %.0f s\n", res.Model.Predict(250e9))
}
