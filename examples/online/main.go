// This example demonstrates the paper's §4 extension to online
// learning: a streaming SGD learner consumes the infinite Infimnist
// digit stream one example at a time — no dataset is ever
// materialized, in memory or on disk — and its accuracy on unseen
// stream positions is tracked as it learns.
//
// Run:
//
//	go run ./examples/online [-stream 20000]
package main

import (
	"flag"
	"fmt"
	"log"

	"m3/internal/infimnist"
	"m3/internal/ml/sgd"
)

func main() {
	log.SetFlags(0)
	stream := flag.Int64("stream", 20000, "number of streamed training examples")
	flag.Parse()

	g := infimnist.Generator{Seed: 99}
	learner, err := sgd.NewLearner(infimnist.Features, 0.5, 1e-4)
	if err != nil {
		log.Fatal(err)
	}

	evaluate := func() float64 {
		row := make([]float64, infimnist.Features)
		correct := 0
		const testN = 400
		for i := int64(0); i < testN; i++ {
			label := g.Fill(row, 1_000_000+i) // unseen stream region
			want := 0.0
			if label == 0 {
				want = 1
			}
			//m3vet:allow floateq -- predictions and labels are exact 0/1 ids
			if learner.Predict(row) == want {
				correct++
			}
		}
		return float64(correct) / testN
	}

	fmt.Printf("online task: digit==0 vs rest, streaming %d examples\n\n", *stream)
	row := make([]float64, infimnist.Features)
	checkpoint := *stream / 8
	if checkpoint < 1 {
		checkpoint = 1
	}
	var runningLoss float64
	for i := int64(0); i < *stream; i++ {
		label := g.Fill(row, i)
		y := 0.0
		if label == 0 {
			y = 1
		}
		loss, err := learner.Update(row, y)
		if err != nil {
			log.Fatal(err)
		}
		runningLoss += loss
		if (i+1)%checkpoint == 0 {
			fmt.Printf("  seen %7d examples: mean loss %.4f, held-out accuracy %.3f\n",
				i+1, runningLoss/float64(checkpoint), evaluate())
			runningLoss = 0
		}
	}
	fmt.Printf("\nfinal held-out accuracy: %.3f after %d online updates\n", evaluate(), learner.Steps)
	fmt.Println("→ no dataset was materialized at any point.")
}
