package m3

import (
	"context"
	"errors"
	"testing"

	"m3/internal/obs"
)

// TestFitTraceSpans: a successful traced fit records the full span
// hierarchy — the engine fit span, per-stage pipeline spans, named
// scan spans, and per-worker block events — and closes every one.
func TestFitTraceSpans(t *testing.T) {
	path := digitsFile(t, 200)
	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.StartTrace()
	defer obs.StopTrace()
	if _, err := eng.Fit(context.Background(), scalePCALogreg(3), tbl); err != nil {
		t.Fatal(err)
	}
	if open := tr.OpenSpans(); open != 0 {
		t.Fatalf("OpenSpans after successful fit = %d, want 0", open)
	}
	cats := map[string]int{}
	workerEvents := 0
	for _, e := range tr.Events() {
		cats[e.Cat]++
		if e.Cat == "block" && e.Tid >= 1 {
			workerEvents++
		}
	}
	if cats["fit"] != 1 {
		t.Errorf("fit spans = %d, want 1", cats["fit"])
	}
	// scaler stage + PCA stage + final fit ≥ 3 pipeline spans.
	if cats["pipeline"] < 3 {
		t.Errorf("pipeline spans = %d, want >= 3", cats["pipeline"])
	}
	if cats["scan"] < 3 {
		t.Errorf("scan spans = %d, want >= 3 (scaler, pca, logreg)", cats["scan"])
	}
	if workerEvents == 0 {
		t.Error("no per-worker block events on tid >= 1")
	}
}

// TestSpansCloseUnderCancellation sweeps the cancellation point
// across the whole pipeline fit (scaler fit/transform, PCA passes,
// final training): wherever the abort lands, every opened span must
// close exactly once — no dangling "b"/unclosed durations in the
// trace. Runs under -race in CI alongside the serve span tests.
func TestSpansCloseUnderCancellation(t *testing.T) {
	path := digitsFile(t, 200)

	t.Run("pre-cancelled", func(t *testing.T) {
		eng := New(Config{Mode: MemoryMapped})
		defer eng.Close()
		tbl, err := eng.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		tr := obs.StartTrace()
		defer obs.StopTrace()
		if _, err := eng.Fit(ctx, scalePCALogreg(3), tbl); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if open := tr.OpenSpans(); open != 0 {
			t.Errorf("OpenSpans = %d, want 0", open)
		}
	})

	for _, after := range []int64{2, 4, 8, 16, 64} {
		t.Run("mid-fit", func(t *testing.T) {
			eng := New(Config{Mode: MemoryMapped})
			defer eng.Close()
			tbl, err := eng.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			ctx := &countCancelCtx{Context: context.Background(), after: after}
			tr := obs.StartTrace()
			if _, err := eng.Fit(ctx, scalePCALogreg(3), tbl); !errors.Is(err, context.Canceled) {
				obs.StopTrace()
				t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
			}
			obs.StopTrace()
			if begun, ended := tr.Counts(); begun != ended {
				t.Errorf("after=%d: %d spans begun, %d ended — %d left open",
					after, begun, ended, begun-ended)
			}
		})
	}
}
