package m3

// Pipeline API v3 tests: cross-backend parity for chained
// preprocess→train fits, Engine-mediated materialization of the
// intermediates (mode-aware heap/mmap), cancellation mid-transform
// with no scratch-file leak, and Load round-trips for every modelio
// kind including nested pipelines.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"m3/internal/ml/modelio"
)

// scalePCALogreg is the canonical end-to-end chain of the issue:
// standardize → project to k components → binary logistic regression.
func scalePCALogreg(k int) Pipeline {
	return Pipeline{
		Stages: []Transformer{
			StandardScaler{},
			PrincipalComponents{Options: PCAOptions{Components: k, Seed: 1}},
		},
		Estimator: LogisticRegression{
			Binarize: true, Positive: 0,
			Options: LogisticOptions{MaxIterations: 8},
		},
	}
}

// tempFiles lists engine scratch files (m3-alloc-*) in dir.
func tempFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "m3-alloc-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestPipelineBackendParity: the acceptance test of the pipeline
// redesign — the same scale→PCA→logreg chain fitted through Engine.Fit
// on heap, mmap and Auto engines yields bit-identical predictions and
// bit-identical saved envelopes.
func TestPipelineBackendParity(t *testing.T) {
	path := digitsFile(t, 200)
	backends := []struct {
		name string
		mode Mode
	}{
		{"heap", InMemory},
		{"mmap", MemoryMapped},
		{"auto", Auto},
	}
	var refPreds []float64
	var refSaved []byte
	for _, b := range backends {
		tmp := t.TempDir()
		eng := New(Config{Mode: b.mode, TempDir: tmp})
		tbl, err := eng.Open(path)
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		model, err := eng.Fit(context.Background(), scalePCALogreg(5), tbl)
		if err != nil {
			eng.Close()
			t.Fatalf("%s: %v", b.name, err)
		}
		fp := model.(*FittedPipeline)
		if got := len(fp.Stages()); got != 2 {
			t.Fatalf("%s: %d fitted stages, want 2", b.name, got)
		}
		// Intermediates are released as soon as they are consumed: no
		// scratch file survives the fit even on the mmap backend.
		if files := tempFiles(t, tmp); len(files) != 0 {
			t.Errorf("%s: scratch files leaked after fit: %v", b.name, files)
		}
		preds, err := model.PredictMatrix(tbl.X)
		if err != nil {
			eng.Close()
			t.Fatalf("%s: PredictMatrix: %v", b.name, err)
		}
		mp := filepath.Join(t.TempDir(), b.name+".pipeline")
		if err := model.Save(mp); err != nil {
			eng.Close()
			t.Fatalf("%s: Save: %v", b.name, err)
		}
		saved, err := os.ReadFile(mp)
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		eng.Close()

		if refPreds == nil {
			refPreds, refSaved = preds, saved
			continue
		}
		for i := range preds {
			if preds[i] != refPreds[i] {
				t.Fatalf("%s: prediction %d = %v, %s = %v — backends disagree",
					b.name, i, preds[i], backends[0].name, refPreds[i])
			}
		}
		if string(saved) != string(refSaved) {
			t.Errorf("%s: serialized pipeline differs from %s", b.name, backends[0].name)
		}
	}
}

// TestTransformMaterializationMode: transformed datasets are
// Engine-allocated, and the backend follows the engine's mode — heap
// below the memory budget, a temp-file mapping above it.
func TestTransformMaterializationMode(t *testing.T) {
	path := digitsFile(t, 200) // 200×784×8 ≈ 1.25 MB
	ctx := context.Background()

	run := func(cfg Config) (*Dataset, *Engine, func()) {
		t.Helper()
		eng := New(cfg)
		tbl, err := eng.Open(path)
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		ds := eng.Dataset(tbl)
		tm, err := StandardScaler{}.FitTransform(ctx, ds)
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		out, err := tm.Transform(ctx, ds)
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		return out, eng, func() { eng.Close() }
	}

	// Auto engine with a budget far below the transformed size: the
	// intermediate must be mmap-backed scratch in the temp dir.
	tmp := t.TempDir()
	out, _, done := run(Config{Mode: Auto, MemoryBudget: 4096, TempDir: tmp})
	if !out.Mapped {
		t.Error("intermediate above the budget not mmap-backed")
	}
	if files := tempFiles(t, tmp); len(files) != 1 {
		t.Errorf("want 1 scratch file backing the intermediate, found %v", files)
	}
	if err := out.Release(); err != nil {
		t.Fatal(err)
	}
	if files := tempFiles(t, tmp); len(files) != 0 {
		t.Errorf("Release left scratch files: %v", files)
	}
	if err := out.Release(); err != nil {
		t.Fatalf("second Release: %v", err)
	}
	done()

	// Default budget (1 GiB): the same transform lands on the heap.
	tmp2 := t.TempDir()
	out2, _, done2 := run(Config{Mode: Auto, TempDir: tmp2})
	defer done2()
	if out2.Mapped {
		t.Error("intermediate below the budget unexpectedly mapped")
	}
	if files := tempFiles(t, tmp2); len(files) != 0 {
		t.Errorf("heap intermediate created scratch files: %v", files)
	}
}

// TestPipelineOutOfCoreIntermediates: fitted through an Auto engine
// whose budget is below every intermediate, the pipeline fuses both
// stages (no per-stage materialization) and materializes exactly one
// mmap-backed training cache for the multi-epoch final estimator.
func TestPipelineOutOfCoreIntermediates(t *testing.T) {
	path := digitsFile(t, 200)
	tmp := t.TempDir()
	// The 200×5 training cache = 8000 B exceeds a 4 KiB budget.
	eng := New(Config{Mode: Auto, MemoryBudget: 4096, TempDir: tmp})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	model, err := eng.Fit(context.Background(), scalePCALogreg(5), tbl)
	if err != nil {
		t.Fatal(err)
	}
	fp := model.(*FittedPipeline)
	fused := fp.StageFused()
	if len(fused) != 2 || !fused[0] || !fused[1] {
		t.Errorf("StageFused = %v, want [true true]", fused)
	}
	if got := fp.Materializations(); got != 1 {
		t.Errorf("Materializations = %d, want 1 (logreg training cache)", got)
	}
	if !fp.CacheMapped() {
		t.Error("training cache above the budget not mmap-backed")
	}
	if st := eng.Stats(); st.Allocs != 1 {
		t.Errorf("engine scratch allocs = %d, want 1", st.Allocs)
	}
	if files := tempFiles(t, tmp); len(files) != 0 {
		t.Errorf("scratch files leaked after out-of-core fit: %v", files)
	}
}

// countCancelCtx cancels itself after a fixed number of Err checks —
// a deterministic way to abort a scan mid-pass, since the execution
// layer polls Err at block granularity.
type countCancelCtx struct {
	context.Context
	after int64
	n     atomic.Int64
}

func (c *countCancelCtx) Err() error {
	if c.n.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestTransformCancelMidPass: cancelling during a transform pass
// aborts within one block with context.Canceled and releases the
// engine scratch — no temp file survives while the engine stays open.
func TestTransformCancelMidPass(t *testing.T) {
	path := digitsFile(t, 200) // 5 blocks at the default block size
	tmp := t.TempDir()
	eng := New(Config{Mode: MemoryMapped, TempDir: tmp})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ds := eng.Dataset(tbl)
	tm, err := StandardScaler{}.FitTransform(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &countCancelCtx{Context: context.Background(), after: 2}
	out, err := tm.Transform(ctx, ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Error("got a dataset from a cancelled transform")
	}
	if files := tempFiles(t, tmp); len(files) != 0 {
		t.Errorf("cancelled transform leaked scratch files: %v", files)
	}
}

// TestPipelineCancellation: a pre-cancelled context stops the
// pipeline before any work, and a context cancelled mid-fit aborts in
// whichever stage is running — in both cases with context.Canceled
// and no scratch-file leak while the engine remains open.
func TestPipelineCancellation(t *testing.T) {
	path := digitsFile(t, 200)

	t.Run("pre-cancelled", func(t *testing.T) {
		tmp := t.TempDir()
		eng := New(Config{Mode: MemoryMapped, TempDir: tmp})
		defer eng.Close()
		tbl, err := eng.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		model, err := eng.Fit(ctx, scalePCALogreg(3), tbl)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if model != nil {
			t.Error("got a model from a cancelled fit")
		}
		if files := tempFiles(t, tmp); len(files) != 0 {
			t.Errorf("pre-cancelled fit leaked scratch files: %v", files)
		}
	})

	// Sweep the cancellation point across the whole fit: whichever
	// stage (scaler fit, scaler transform, PCA scans, final training)
	// the Err budget lands in must abort cleanly and release scratch.
	for _, after := range []int64{4, 8, 16, 64} {
		t.Run("mid-fit", func(t *testing.T) {
			tmp := t.TempDir()
			eng := New(Config{Mode: MemoryMapped, TempDir: tmp})
			defer eng.Close()
			tbl, err := eng.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			ctx := &countCancelCtx{Context: context.Background(), after: after}
			model, err := eng.Fit(ctx, scalePCALogreg(3), tbl)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
			}
			if model != nil {
				t.Errorf("after=%d: got a model from a cancelled fit", after)
			}
			if files := tempFiles(t, tmp); len(files) != 0 {
				t.Errorf("after=%d: cancelled fit leaked scratch files: %v", after, files)
			}
		})
	}
}

// TestLoadRoundTripEveryKind: m3.Load reconstructs a working fitted
// model from the saved envelope of every modelio kind, including a
// pipeline with nested stage envelopes, and the reloaded model's
// predictions match the original bit for bit.
func TestLoadRoundTripEveryKind(t *testing.T) {
	path := digitsFile(t, 150)
	eng := New(Config{Mode: MemoryMapped})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	fitT := func(tr Transformer) Model {
		t.Helper()
		tm, err := tr.FitTransform(ctx, eng.Dataset(tbl))
		if err != nil {
			t.Fatal(err)
		}
		return tm.(Model)
	}
	fitE := func(est Estimator) Model {
		t.Helper()
		m, err := eng.Fit(ctx, est, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	cases := []struct {
		kind  modelio.Kind
		model Model
	}{
		{modelio.KindLogistic, fitE(LogisticRegression{Binarize: true, Options: LogisticOptions{MaxIterations: 5}})},
		{modelio.KindSoftmax, fitE(SoftmaxRegression{Classes: 10, Options: LogisticOptions{MaxIterations: 3}})},
		{modelio.KindLinear, fitE(LinearRegression{Options: LinearOptions{MaxIterations: 4}})},
		{modelio.KindKMeans, fitE(KMeansClustering{Options: KMeansOptions{K: 3, MaxIterations: 4, Seed: 2}})},
		{modelio.KindBayes, fitE(NaiveBayes{Classes: 10})},
		{modelio.KindPCA, fitE(PrincipalComponents{Options: PCAOptions{Components: 3, Seed: 1}})},
		{modelio.KindStandardScaler, fitT(StandardScaler{})},
		{modelio.KindMinMaxScaler, fitT(MinMaxScaler{})},
		{modelio.KindPipeline, fitE(scalePCALogreg(4))},
	}
	covered := map[modelio.Kind]bool{}
	for _, tc := range cases {
		covered[tc.kind] = true
		t.Run(string(tc.kind), func(t *testing.T) {
			mp := filepath.Join(t.TempDir(), "m.model")
			if err := tc.model.Save(mp); err != nil {
				t.Fatal(err)
			}
			if _, kind, err := LoadModel(mp); err != nil || kind != tc.kind {
				t.Fatalf("LoadModel kind = %v (err %v), want %v", kind, err, tc.kind)
			}
			loaded, info, err := Load(mp)
			if err != nil {
				t.Fatal(err)
			}
			if info.Kind != tc.kind {
				t.Errorf("Load info kind = %v, want %v", info.Kind, tc.kind)
			}
			if info.InputCols != tbl.X.Cols() {
				t.Errorf("Load info input cols = %d, want %d", info.InputCols, tbl.X.Cols())
			}
			if dinfo, err := Describe(mp); err != nil || dinfo.Kind != info.Kind || dinfo.InputCols != info.InputCols {
				t.Errorf("Describe = %+v (err %v), disagrees with Load info %+v", dinfo, err, info)
			}
			want, err := tc.model.PredictMatrix(tbl.X)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.PredictMatrix(tbl.X)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("prediction %d = %v, want %v", i, got[i], want[i])
				}
			}
			// Saved bytes are stable through the round trip.
			mp2 := filepath.Join(t.TempDir(), "m2.model")
			if err := loaded.Save(mp2); err != nil {
				t.Fatal(err)
			}
			a, _ := os.ReadFile(mp)
			b, _ := os.ReadFile(mp2)
			if string(a) != string(b) {
				t.Error("re-saved bytes differ from the original envelope")
			}
		})
	}
	for _, k := range modelio.Kinds() {
		if !covered[k] {
			t.Errorf("kind %v has no round-trip case", k)
		}
	}
}

// TestPipelineStandalone: pipelines also run engine-less through
// m3.Fit on bare heap matrices, and agree with the engine-bound fit.
func TestPipelineStandalone(t *testing.T) {
	path := digitsFile(t, 120)
	eng := New(Config{Mode: InMemory})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	pipe := scalePCALogreg(4)
	viaEngine, err := eng.Fit(context.Background(), pipe, tbl)
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := Fit(context.Background(), pipe, tbl.X, tbl.Labels)
	if err != nil {
		t.Fatal(err)
	}
	a, err := viaEngine.PredictMatrix(tbl.X)
	if err != nil {
		t.Fatal(err)
	}
	b, err := standalone.PredictMatrix(tbl.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs between engine and standalone", i)
		}
	}
}

// TestPipelineValidation covers the construction error paths.
func TestPipelineValidation(t *testing.T) {
	path := digitsFile(t, 60)
	eng := New(Config{})
	defer eng.Close()
	tbl, err := eng.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Fit(ctx, Pipeline{Stages: []Transformer{StandardScaler{}}}, tbl); err == nil {
		t.Error("accepted pipeline without a final estimator")
	}
	if _, err := eng.Fit(ctx, Pipeline{
		Stages:    []Transformer{nil},
		Estimator: NaiveBayes{Classes: 10},
	}, tbl); err == nil {
		t.Error("accepted nil stage")
	}
	// KNN retains the training matrix, which pipelines release — both
	// the value and pointer estimator forms must be rejected.
	for _, est := range []Estimator{KNNClassifier{K: 3, Classes: 10}, &KNNClassifier{K: 3, Classes: 10}} {
		if _, err := eng.Fit(ctx, Pipeline{
			Stages:    []Transformer{StandardScaler{}},
			Estimator: est,
		}, tbl); err == nil {
			t.Errorf("accepted %T as a pipeline's final estimator", est)
		}
	}
	// Width mismatch at predict time is reported, not a panic.
	model, err := eng.Fit(ctx, scalePCALogreg(3), tbl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.PredictMatrix(NewMatrix(2, 3)); err == nil {
		t.Error("accepted a predict matrix with the wrong width")
	}
}
