package m3

// Pipeline: composition as the unit of the public API. A pipeline is
// an ordered chain of transformers ending in an estimator, and is
// itself an Estimator — so the algorithm-agnostic entry point fits a
// whole preprocess→train workflow unchanged:
//
//	pipe := m3.Pipeline{
//	    Stages:    []m3.Transformer{m3.StandardScaler{}, m3.PrincipalComponents{Options: m3.PCAOptions{Components: 16}}},
//	    Estimator: m3.LogisticRegression{Binarize: true},
//	}
//	model, err := eng.Fit(ctx, pipe, tbl) // scale → PCA → logreg, end to end
//
// Pipelines are fused: stages whose fitted form exposes a block
// kernel (BlockTransformer — every stage in this package) are never
// materialized. Each stage's statistics are fitted directly on a
// virtual fused view of all prior stages (core.FusedDataset), whose
// scans apply the chain between the block read and the consumer — so
// the fitting passes touch only the source data, at disk bandwidth.
// The final estimator is then classified: bounded-pass trainers
// (NaiveBayes, exact LinearRegression, PrincipalComponents) train
// straight off the fused view, while multi-epoch trainers (L-BFGS,
// SGD, k-means) get the final transformed matrix materialized exactly
// once as a cache — through Engine.AllocScratch (heap when it fits
// the memory budget, mmap-backed temp file above it), built by one
// fused pass. A K-stage pipeline therefore performs at most one
// intermediate materialization instead of K. Third-party stages
// without a block kernel fall back to the materializing Transform
// path; a failed or cancelled fit still leaves no temp file behind.

import (
	"context"
	"errors"
	"fmt"

	"m3/internal/core"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/ml/modelio"
	"m3/internal/ml/preprocess"
	"m3/internal/obs"
)

// Pipeline chains preprocessing transformers and a final estimator
// into one Estimator. Stages run in order; each stage is fitted on a
// fused view of the previous stages' output (materialized only for
// stages without a block kernel — see the package comment).
//
// The final estimator must not retain the training matrix beyond Fit:
// the training cache (when one is materialized) is released when Fit
// returns, and fused views borrow the caller's dataset. KNNClassifier
// — whose fitted model is the training matrix — is therefore rejected.
type Pipeline struct {
	// Stages are the preprocessing transformers, applied in order.
	Stages []Transformer
	// Estimator is the final training stage (required).
	Estimator Estimator
}

// streamingFitter is implemented by estimators whose Fit consumes the
// dataset in a bounded number of forward scans — pipelines train them
// straight off the fused view; everything else trains on a cache
// materialized by one fused pass.
type streamingFitter interface{ streamingFit() bool }

// isStreamingFit resolves the marker for value and pointer estimators.
func isStreamingFit(e Estimator) bool {
	if s, ok := e.(streamingFitter); ok {
		return s.streamingFit()
	}
	return false
}

// Fit implements Estimator: it fits every transformer stage on the
// fused view of its predecessors, then fits the final estimator —
// directly on the fused view for bounded-pass trainers, or on a
// once-materialized cache for multi-epoch trainers — returning a
// *FittedPipeline. ctx cancels within one data block of whichever
// scan is running; on any error every intermediate allocated so far
// is released.
func (p Pipeline) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	if p.Estimator == nil {
		return nil, errors.New("m3: pipeline has no final estimator")
	}
	switch p.Estimator.(type) {
	case KNNClassifier, *KNNClassifier:
		// FittedKNN retains the training matrix, but the pipeline's
		// training cache is released when Fit returns — the model
		// would read freed (possibly unmapped) memory.
		return nil, errors.New("m3: KNNClassifier cannot terminate a pipeline (it retains the training matrix, which pipelines release); transform the dataset explicitly and keep it open instead")
	}
	for i, st := range p.Stages {
		if st == nil {
			return nil, fmt.Errorf("m3: pipeline stage %d is nil", i)
		}
	}
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}

	// cur is the dataset the next stage fits on: ds, a fused view
	// over ds (or over owned), or a materialized fallback. owned is
	// the one materialized intermediate we hold, if any.
	cur := ds
	var owned *Dataset
	release := func() error {
		d := owned
		owned = nil
		if d == nil {
			return nil
		}
		return d.Release()
	}
	stages := make([]TransformerModel, 0, len(p.Stages))
	fused := make([]bool, 0, len(p.Stages))
	materializations := 0
	cacheMapped := false
	for i, st := range p.Stages {
		tm, err := func() (TransformerModel, error) {
			// The span closes on every exit (including cancellation mid
			// scan) via defer; End is idempotent and nil-safe.
			sp := obs.StartSpan("pipeline", fmt.Sprintf("stage %d fit %T", i, st))
			defer sp.End()
			return st.FitTransform(ctx, cur)
		}()
		if err != nil {
			return nil, errors.Join(fmt.Errorf("m3: pipeline stage %d: %w", i, err), release())
		}
		if bt, ok := tm.(BlockTransformer); ok {
			// Fuse: extend the virtual view — no materialization, no
			// extra pass. Nested views compose down to one chain, so
			// the source is still read once per row.
			next, err := core.FusedDataset(cur, []core.BlockTransformer{bt})
			if err != nil {
				return nil, errors.Join(fmt.Errorf("m3: pipeline stage %d: %w", i, err), release())
			}
			cur = next
			stages = append(stages, tm)
			fused = append(fused, true)
			continue
		}
		// Fallback for third-party stages without a block kernel:
		// materialize through the engine. The pass runs on the fused
		// view, so any pending chain is applied in the same scan.
		next, err := func() (*Dataset, error) {
			sp := obs.StartSpan("pipeline", fmt.Sprintf("stage %d materialize", i))
			defer sp.End()
			return tm.Transform(ctx, cur)
		}()
		if err != nil {
			return nil, errors.Join(fmt.Errorf("m3: pipeline stage %d: %w", i, err), release())
		}
		// The previous intermediate (if any) has been consumed; free
		// its backing (and temp file) before continuing.
		if err := release(); err != nil {
			return nil, errors.Join(err, next.Release())
		}
		cur, owned = next, next
		materializations++
		cacheMapped = next.Mapped
		stages = append(stages, tm)
		fused = append(fused, false)
	}

	// Classify the final estimator: bounded-pass trainers stream off
	// the fused view; multi-epoch trainers get the transformed matrix
	// materialized exactly once, by a single fused pass.
	if cur.X.IsFused() && !isStreamingFit(p.Estimator) {
		cache, err := func() (*Dataset, error) {
			sp := obs.StartSpan("pipeline", "materialize cache")
			defer sp.End()
			return core.Materialize(ctx, cur, 0)
		}()
		if err != nil {
			return nil, errors.Join(fmt.Errorf("m3: pipeline cache: %w", err), release())
		}
		if err := release(); err != nil {
			return nil, errors.Join(err, cache.Release())
		}
		cur, owned = cache, cache
		materializations++
		cacheMapped = cache.Mapped
	}

	final, ferr := func() (Model, error) {
		sp := obs.StartSpan("pipeline", fmt.Sprintf("final fit %T", p.Estimator))
		defer sp.End()
		return p.Estimator.Fit(ctx, cur)
	}()
	if err := errors.Join(ferr, release()); err != nil {
		return nil, err
	}
	return &FittedPipeline{
		stages:           stages,
		final:            final,
		fused:            fused,
		materializations: materializations,
		cacheMapped:      cacheMapped,
	}, nil
}

// FittedPipeline is a fitted chain: every prediction routes the row
// through each stage's kernel before the final model.
type FittedPipeline struct {
	stages []TransformerModel
	final  Model

	fused            []bool
	materializations int
	cacheMapped      bool
}

// Stages returns the fitted transformer stages in application order.
func (f *FittedPipeline) Stages() []TransformerModel { return f.stages }

// FinalModel returns the fitted final estimator (a concrete Fitted*
// type exposing the rich inner model).
func (f *FittedPipeline) FinalModel() Model { return f.final }

// StageFused reports, per stage, whether Fit ran the stage fused
// (virtual view, no intermediate materialization) — true for every
// stage implementing BlockTransformer. Nil for pipelines
// reconstructed by Load.
func (f *FittedPipeline) StageFused() []bool { return f.fused }

// Materializations returns how many intermediate matrices Fit
// materialized through the engine: 0 when every stage fused and the
// final estimator streamed, 1 when a multi-epoch final estimator
// needed the transformed cache, more only when third-party stages
// lacked a block kernel. Zero for pipelines reconstructed by Load.
func (f *FittedPipeline) Materializations() int { return f.materializations }

// CacheMapped reports whether the last materialized intermediate (the
// training cache, normally) was mmap-backed — true when it exceeded
// the engine's memory budget. False when nothing was materialized.
func (f *FittedPipeline) CacheMapped() bool { return f.cacheMapped }

// inputCols reports the feature width the first stage expects, when
// known.
func (f *FittedPipeline) inputCols() (int, bool) {
	if len(f.stages) == 0 {
		return 0, false
	}
	if nf, ok := f.stages[0].(interface{ NumFeatures() int }); ok {
		return nf.NumFeatures(), true
	}
	return 0, false
}

// Predict routes one row through every stage's TransformRow and the
// final model's Predict.
func (f *FittedPipeline) Predict(row []float64) float64 {
	for _, s := range f.stages {
		row = s.TransformRow(row)
	}
	return f.final.Predict(row)
}

// blockChain returns the stage chain as BlockTransformers, or nil if
// any stage lacks a block kernel.
func (f *FittedPipeline) blockChain() []core.BlockTransformer {
	chain := make([]core.BlockTransformer, len(f.stages))
	for i, s := range f.stages {
		bt, ok := s.(core.BlockTransformer)
		if !ok {
			return nil
		}
		chain[i] = bt
	}
	return chain
}

// PredictMatrix routes every row of x through the stage chain and the
// final model in one blocked parallel scan. When every stage exposes
// its block kernel (always, for stages from this package), prediction
// runs on a fused view of x through the same kernel contract as fit:
// one kernel chain per worker, zero per-row allocation. Third-party
// stages fall back to a per-worker closure chain.
func (f *FittedPipeline) PredictMatrix(x *Matrix) ([]float64, error) {
	if len(f.stages) == 0 {
		return f.final.PredictMatrix(x)
	}
	if x == nil {
		return nil, errors.New("m3: nil matrix")
	}
	if want, ok := f.inputCols(); ok && x.Cols() != want {
		return nil, fmt.Errorf("m3: matrix has %d features, pipeline wants %d", x.Cols(), want)
	}
	if chain := f.blockChain(); chain != nil {
		in := x.Cols()
		for i, bt := range chain {
			if bt.InCols() != in {
				return nil, fmt.Errorf("m3: pipeline stage %d expects %d features, previous stage yields %d", i, bt.InCols(), in)
			}
			in = bt.OutCols()
		}
		fx := mat.NewFused(x, in, core.FuseKernels(chain))
		return f.final.PredictMatrix(fx)
	}
	out := make([]float64, x.Rows())
	_, _, err := exec.ReduceRows(x.Scan(0).Named("pipeline predict"),
		func() []func([]float64) []float64 {
			chain := make([]func([]float64) []float64, len(f.stages))
			for i, s := range f.stages {
				chain[i] = stageFunc(s)
			}
			return chain
		},
		func(chain []func([]float64) []float64, i int, row []float64) {
			for _, fn := range chain {
				row = fn(row)
			}
			out[i] = f.final.Predict(row)
		},
		func(dst, src []func([]float64) []float64) {})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Save persists the whole chain as one KindPipeline envelope with one
// nested envelope per stage; Load reconstructs it.
func (f *FittedPipeline) Save(path string) error {
	p, err := f.inner()
	if err != nil {
		return err
	}
	return modelio.SaveFile(path, p)
}

// inner converts the fitted chain to modelio's neutral pipeline form.
func (f *FittedPipeline) inner() (*modelio.Pipeline, error) {
	vals := make([]any, 0, len(f.stages)+1)
	for i, s := range f.stages {
		v, err := innerModel(s)
		if err != nil {
			return nil, fmt.Errorf("m3: pipeline stage %d: %w", i, err)
		}
		vals = append(vals, v)
	}
	v, err := innerModel(f.final)
	if err != nil {
		return nil, err
	}
	return &modelio.Pipeline{Stages: append(vals, v)}, nil
}

// innerModel unwraps a fitted model to the inner value modelio
// persists.
func innerModel(m any) (any, error) {
	switch v := m.(type) {
	case *FittedLogistic:
		return v.LogisticModel, nil
	case *FittedSoftmax:
		return v.SoftmaxModel, nil
	case *FittedLinear:
		return v.LinearModel, nil
	case *FittedKMeans:
		return v.KMeansResult, nil
	case *FittedBayes:
		return v.BayesModel, nil
	case *FittedPCA:
		return v.PCAResult, nil
	case *FittedStandardScaler:
		return v.StandardScaler, nil
	case *FittedMinMaxScaler:
		return v.MinMaxScaler, nil
	case *FittedPipeline:
		return v.inner()
	}
	return nil, fmt.Errorf("m3: %T has no serial form", m)
}

// Load reads any model saved through Model.Save (or SaveModel) and
// reconstructs the fitted model — the round-trip counterpart of Save
// that the v1/v2 surface never had. Every modelio kind is supported,
// including whole pipelines (each nested stage envelope is rebuilt
// into its fitted transformer, transformers into TransformerModel
// stages and the last envelope into the final model). Loaded models
// predict with default parallelism (engine hints on the matrices they
// are applied to, then NumCPU).
//
// The returned ModelInfo carries the file-header metadata (kind,
// expected input width, class count, pipeline stage kinds) — what a
// serving layer needs to validate requests without poking at concrete
// model types. Describe returns the same ModelInfo without loading
// the payload.
func Load(path string) (Model, ModelInfo, error) {
	v, kind, meta, err := modelio.LoadFileMeta(path)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	m, err := wrapLoaded(v)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return m, modelInfo(kind, meta), nil
}

// wrapLoaded rebuilds the fitted wrapper for a modelio inner value.
func wrapLoaded(v any) (Model, error) {
	switch m := v.(type) {
	case *LogisticModel:
		return &FittedLogistic{LogisticModel: m}, nil
	case *SoftmaxModel:
		return &FittedSoftmax{SoftmaxModel: m}, nil
	case *LinearModel:
		return &FittedLinear{LinearModel: m}, nil
	case *KMeansResult:
		return &FittedKMeans{KMeansResult: m}, nil
	case *BayesModel:
		return &FittedBayes{BayesModel: m}, nil
	case *PCAResult:
		return &FittedPCA{PCAResult: m}, nil
	case *preprocess.StandardScaler:
		return &FittedStandardScaler{StandardScaler: m}, nil
	case *preprocess.MinMaxScaler:
		return &FittedMinMaxScaler{MinMaxScaler: m}, nil
	case *modelio.Pipeline:
		if len(m.Stages) == 0 {
			return nil, errors.New("m3: empty pipeline envelope")
		}
		stages := make([]TransformerModel, 0, len(m.Stages)-1)
		for i, s := range m.Stages[:len(m.Stages)-1] {
			w, err := wrapLoaded(s)
			if err != nil {
				return nil, fmt.Errorf("m3: pipeline stage %d: %w", i, err)
			}
			tm, ok := w.(TransformerModel)
			if !ok {
				return nil, fmt.Errorf("m3: pipeline stage %d (%T) is not a transformer", i, w)
			}
			stages = append(stages, tm)
		}
		final, err := wrapLoaded(m.Stages[len(m.Stages)-1])
		if err != nil {
			return nil, err
		}
		return &FittedPipeline{stages: stages, final: final}, nil
	}
	return nil, fmt.Errorf("m3: no fitted form for %T", v)
}
