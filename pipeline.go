package m3

// Pipeline: composition as the unit of the public API. A pipeline is
// an ordered chain of transformers ending in an estimator, and is
// itself an Estimator — so the algorithm-agnostic entry point fits a
// whole preprocess→train workflow unchanged:
//
//	pipe := m3.Pipeline{
//	    Stages:    []m3.Transformer{m3.StandardScaler{}, m3.PrincipalComponents{Options: m3.PCAOptions{Components: 16}}},
//	    Estimator: m3.LogisticRegression{Binarize: true},
//	}
//	model, err := eng.Fit(ctx, pipe, tbl) // scale → PCA → logreg, end to end
//
// Every intermediate matrix is materialized through the Engine
// (Engine.AllocScratch): heap when it fits the memory budget,
// mmap-backed temp files above it — so an out-of-core dataset stays
// out-of-core through every stage, and each stage's fitting and
// transform scans run blocked and parallel with ctx cancellation.
// Intermediates are released as soon as the next stage has consumed
// them (a failed or cancelled fit leaves no temp file behind).

import (
	"context"
	"errors"
	"fmt"

	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/ml/modelio"
	"m3/internal/ml/preprocess"
)

// Pipeline chains preprocessing transformers and a final estimator
// into one Estimator. Stages run in order; each stage is fitted on
// the previous stage's output and its transformed dataset is
// Engine-materialized before the next stage sees it.
//
// The final estimator must not retain the training matrix beyond Fit:
// the last intermediate is released when Fit returns. KNNClassifier —
// whose fitted model is the training matrix — is therefore rejected.
type Pipeline struct {
	// Stages are the preprocessing transformers, applied in order.
	Stages []Transformer
	// Estimator is the final training stage (required).
	Estimator Estimator
}

// Fit implements Estimator: it fits and applies every transformer
// stage, then fits the final estimator on the fully transformed
// dataset, returning a *FittedPipeline. ctx cancels within one data
// block of whichever scan is running; on any error every intermediate
// allocated so far is released.
func (p Pipeline) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	if p.Estimator == nil {
		return nil, errors.New("m3: pipeline has no final estimator")
	}
	switch p.Estimator.(type) {
	case KNNClassifier, *KNNClassifier:
		// FittedKNN retains the training matrix, but the pipeline's
		// last intermediate is released when Fit returns — the model
		// would read freed (possibly unmapped) memory.
		return nil, errors.New("m3: KNNClassifier cannot terminate a pipeline (it retains the training matrix, which pipelines release); transform the dataset explicitly and keep it open instead")
	}
	for i, st := range p.Stages {
		if st == nil {
			return nil, fmt.Errorf("m3: pipeline stage %d is nil", i)
		}
	}
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}

	cur := ds
	releaseCur := func() error {
		if cur == ds {
			return nil
		}
		return cur.Release()
	}
	stages := make([]TransformerModel, 0, len(p.Stages))
	mapped := make([]bool, 0, len(p.Stages))
	for i, st := range p.Stages {
		tm, err := st.FitTransform(ctx, cur)
		if err != nil {
			return nil, errors.Join(fmt.Errorf("m3: pipeline stage %d: %w", i, err), releaseCur())
		}
		next, err := tm.Transform(ctx, cur)
		if err != nil {
			return nil, errors.Join(fmt.Errorf("m3: pipeline stage %d: %w", i, err), releaseCur())
		}
		// The previous intermediate has been consumed; free its
		// backing (and temp file) before the next stage allocates.
		if err := releaseCur(); err != nil {
			return nil, errors.Join(err, next.Release())
		}
		cur = next
		stages = append(stages, tm)
		mapped = append(mapped, next.Mapped)
	}

	final, ferr := p.Estimator.Fit(ctx, cur)
	if err := errors.Join(ferr, releaseCur()); err != nil {
		return nil, err
	}
	return &FittedPipeline{stages: stages, final: final, mapped: mapped}, nil
}

// FittedPipeline is a fitted chain: every prediction routes the row
// through each stage's TransformRow before the final model.
type FittedPipeline struct {
	stages []TransformerModel
	final  Model
	mapped []bool
}

// Stages returns the fitted transformer stages in application order.
func (f *FittedPipeline) Stages() []TransformerModel { return f.stages }

// FinalModel returns the fitted final estimator (a concrete Fitted*
// type exposing the rich inner model).
func (f *FittedPipeline) FinalModel() Model { return f.final }

// IntermediateMapped reports, per stage, whether the materialized
// intermediate dataset was mmap-backed (true above the engine's
// memory budget) during Fit. Nil for pipelines reconstructed by Load.
func (f *FittedPipeline) IntermediateMapped() []bool { return f.mapped }

// inputCols reports the feature width the first stage expects, when
// known.
func (f *FittedPipeline) inputCols() (int, bool) {
	if len(f.stages) == 0 {
		return 0, false
	}
	if nf, ok := f.stages[0].(interface{ NumFeatures() int }); ok {
		return nf.NumFeatures(), true
	}
	return 0, false
}

// Predict routes one row through every stage's TransformRow and the
// final model's Predict.
func (f *FittedPipeline) Predict(row []float64) float64 {
	for _, s := range f.stages {
		row = s.TransformRow(row)
	}
	return f.final.Predict(row)
}

// PredictMatrix routes every row of x through the stage chain and the
// final model in one blocked parallel scan. Each block instantiates
// its own chain of buffer-reusing stage transforms, so batch
// prediction allocates per block, not per row — the same economy as
// the fit-time transform pass.
func (f *FittedPipeline) PredictMatrix(x *Matrix) ([]float64, error) {
	if len(f.stages) == 0 {
		return f.final.PredictMatrix(x)
	}
	if x == nil {
		return nil, errors.New("m3: nil matrix")
	}
	if want, ok := f.inputCols(); ok && x.Cols() != want {
		return nil, fmt.Errorf("m3: matrix has %d features, pipeline wants %d", x.Cols(), want)
	}
	out := make([]float64, x.Rows())
	_, _, err := exec.ReduceRows(x.Scan(0),
		func() []func([]float64) []float64 {
			chain := make([]func([]float64) []float64, len(f.stages))
			for i, s := range f.stages {
				chain[i] = stageFunc(s)
			}
			return chain
		},
		func(chain []func([]float64) []float64, i int, row []float64) {
			for _, fn := range chain {
				row = fn(row)
			}
			out[i] = f.final.Predict(row)
		},
		func(dst, src []func([]float64) []float64) {})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Save persists the whole chain as one KindPipeline envelope with one
// nested envelope per stage; Load reconstructs it.
func (f *FittedPipeline) Save(path string) error {
	p, err := f.inner()
	if err != nil {
		return err
	}
	return modelio.SaveFile(path, p)
}

// inner converts the fitted chain to modelio's neutral pipeline form.
func (f *FittedPipeline) inner() (*modelio.Pipeline, error) {
	vals := make([]any, 0, len(f.stages)+1)
	for i, s := range f.stages {
		v, err := innerModel(s)
		if err != nil {
			return nil, fmt.Errorf("m3: pipeline stage %d: %w", i, err)
		}
		vals = append(vals, v)
	}
	v, err := innerModel(f.final)
	if err != nil {
		return nil, err
	}
	return &modelio.Pipeline{Stages: append(vals, v)}, nil
}

// innerModel unwraps a fitted model to the inner value modelio
// persists.
func innerModel(m any) (any, error) {
	switch v := m.(type) {
	case *FittedLogistic:
		return v.LogisticModel, nil
	case *FittedSoftmax:
		return v.SoftmaxModel, nil
	case *FittedLinear:
		return v.LinearModel, nil
	case *FittedKMeans:
		return v.KMeansResult, nil
	case *FittedBayes:
		return v.BayesModel, nil
	case *FittedPCA:
		return v.PCAResult, nil
	case *FittedStandardScaler:
		return v.StandardScaler, nil
	case *FittedMinMaxScaler:
		return v.MinMaxScaler, nil
	case *FittedPipeline:
		return v.inner()
	}
	return nil, fmt.Errorf("m3: %T has no serial form", m)
}

// Load reads any model saved through Model.Save (or SaveModel) and
// reconstructs the fitted model — the round-trip counterpart of Save
// that the v1/v2 surface never had. Every modelio kind is supported,
// including whole pipelines (each nested stage envelope is rebuilt
// into its fitted transformer, transformers into TransformerModel
// stages and the last envelope into the final model). Loaded models
// predict with default parallelism (engine hints on the matrices they
// are applied to, then NumCPU).
func Load(path string) (Model, error) {
	v, _, err := modelio.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return wrapLoaded(v)
}

// wrapLoaded rebuilds the fitted wrapper for a modelio inner value.
func wrapLoaded(v any) (Model, error) {
	switch m := v.(type) {
	case *LogisticModel:
		return &FittedLogistic{LogisticModel: m}, nil
	case *SoftmaxModel:
		return &FittedSoftmax{SoftmaxModel: m}, nil
	case *LinearModel:
		return &FittedLinear{LinearModel: m}, nil
	case *KMeansResult:
		return &FittedKMeans{KMeansResult: m}, nil
	case *BayesModel:
		return &FittedBayes{BayesModel: m}, nil
	case *PCAResult:
		return &FittedPCA{PCAResult: m}, nil
	case *preprocess.StandardScaler:
		return &FittedStandardScaler{StandardScaler: m}, nil
	case *preprocess.MinMaxScaler:
		return &FittedMinMaxScaler{MinMaxScaler: m}, nil
	case *modelio.Pipeline:
		if len(m.Stages) == 0 {
			return nil, errors.New("m3: empty pipeline envelope")
		}
		stages := make([]TransformerModel, 0, len(m.Stages)-1)
		for i, s := range m.Stages[:len(m.Stages)-1] {
			w, err := wrapLoaded(s)
			if err != nil {
				return nil, fmt.Errorf("m3: pipeline stage %d: %w", i, err)
			}
			tm, ok := w.(TransformerModel)
			if !ok {
				return nil, fmt.Errorf("m3: pipeline stage %d (%T) is not a transformer", i, w)
			}
			stages = append(stages, tm)
		}
		final, err := wrapLoaded(m.Stages[len(m.Stages)-1])
		if err != nil {
			return nil, err
		}
		return &FittedPipeline{stages: stages, final: final}, nil
	}
	return nil, fmt.Errorf("m3: no fitted form for %T", v)
}
