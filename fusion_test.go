package m3

// Fusion parity suite: fused pipelines must be bit-identical to the
// eager (materialize-every-stage) path — same fitted stage bytes,
// same final model bytes, same predictions — across heap/mmap/Auto
// backends and worker counts; streaming finals must fit with zero
// materializations; and cancellation mid-scan through a fused chain
// must surface Canceled without leaking scratch files.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// savedBytes round-trips a model through Save and returns the
// envelope bytes.
func savedBytes(t *testing.T, m interface{ Save(string) error }) []byte {
	t.Helper()
	p := filepath.Join(t.TempDir(), "model.bin")
	if err := m.Save(p); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// eagerScalePCALogreg fits the scale→PCA→logreg chain the
// pre-fusion way: materializing every intermediate through the
// engine. It returns the fitted stages, the final model, and per-row
// reference predictions computed through TransformRow.
func eagerScalePCALogreg(t *testing.T, eng *Engine, tbl *Table, k int) ([]TransformerModel, Model, []float64) {
	t.Helper()
	ctx := context.Background()
	ds := eng.Dataset(tbl)
	tm1, err := StandardScaler{}.FitTransform(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := tm1.Transform(ctx, ds)
	if err != nil {
		t.Fatal(err)
	}
	tm2, err := PrincipalComponents{Options: PCAOptions{Components: k, Seed: 1}}.FitTransform(ctx, d1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := tm2.Transform(ctx, d1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Release(); err != nil {
		t.Fatal(err)
	}
	final, err := LogisticRegression{
		Binarize: true, Positive: 0,
		Options: LogisticOptions{MaxIterations: 8},
	}.Fit(ctx, d2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Release(); err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, tbl.X.Rows())
	tbl.X.ForEachRow(func(i int, row []float64) {
		preds[i] = final.Predict(tm2.TransformRow(tm1.TransformRow(row)))
	})
	return []TransformerModel{tm1, tm2}, final, preds
}

// TestFusedPipelineParityEager: the tentpole acceptance test — the
// fused Pipeline.Fit produces bit-identical fitted stages, final
// model and predictions to the eager materialize-every-stage chain,
// on every backend and for several worker counts, while performing
// exactly one materialization (the logreg training cache).
func TestFusedPipelineParityEager(t *testing.T) {
	path := digitsFile(t, 200)
	backends := []struct {
		name string
		cfg  Config
	}{
		{"heap", Config{Mode: InMemory}},
		{"mmap", Config{Mode: MemoryMapped}},
		{"auto-tiny-budget", Config{Mode: Auto, MemoryBudget: 4096}},
	}
	for _, b := range backends {
		for _, workers := range []int{1, 3} {
			t.Run(b.name, func(t *testing.T) {
				cfg := b.cfg
				cfg.Workers = workers
				cfg.TempDir = t.TempDir()
				eng := New(cfg)
				defer eng.Close()
				tbl, err := eng.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				refStages, refFinal, refPreds := eagerScalePCALogreg(t, eng, tbl, 4)
				allocsBefore := eng.Stats().Allocs

				model, err := eng.Fit(context.Background(), scalePCALogreg(4), tbl)
				if err != nil {
					t.Fatal(err)
				}
				fp := model.(*FittedPipeline)
				if got := fp.Materializations(); got != 1 {
					t.Errorf("Materializations = %d, want 1", got)
				}
				if got := eng.Stats().Allocs - allocsBefore; got != 1 {
					t.Errorf("fused fit made %d scratch allocs, want 1", got)
				}
				for i, st := range fp.Stages() {
					if string(savedBytes(t, st)) != string(savedBytes(t, refStages[i])) {
						t.Errorf("stage %d: fused and eager fitted bytes differ", i)
					}
				}
				if string(savedBytes(t, fp.FinalModel())) != string(savedBytes(t, refFinal)) {
					t.Error("final model: fused and eager fitted bytes differ")
				}
				preds, err := fp.PredictMatrix(tbl.X)
				if err != nil {
					t.Fatal(err)
				}
				for i := range preds {
					if preds[i] != refPreds[i] {
						t.Fatalf("prediction %d: fused %v != eager %v", i, preds[i], refPreds[i])
					}
				}
				if files := tempFiles(t, cfg.TempDir); len(files) != 0 {
					t.Errorf("scratch files leaked: %v", files)
				}
			})
		}
	}
}

// TestFusedPipelineStreamingFinals: bounded-pass final estimators
// (naive Bayes, exact linear regression, PCA) train straight off the
// fused view — the whole K-stage fit performs zero materializations
// and zero engine scratch allocations.
func TestFusedPipelineStreamingFinals(t *testing.T) {
	path := digitsFile(t, 150)
	finals := []struct {
		name string
		est  Estimator
	}{
		{"bayes", NaiveBayes{Classes: 10}},
		{"linreg-exact", LinearRegression{Exact: true}},
		{"pca", PrincipalComponents{Options: PCAOptions{Components: 3, Seed: 2}}},
	}
	for _, f := range finals {
		t.Run(f.name, func(t *testing.T) {
			tmp := t.TempDir()
			eng := New(Config{Mode: MemoryMapped, TempDir: tmp})
			defer eng.Close()
			tbl, err := eng.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			pipe := Pipeline{
				Stages:    []Transformer{StandardScaler{}, MinMaxScaler{}},
				Estimator: f.est,
			}
			model, err := eng.Fit(context.Background(), pipe, tbl)
			if err != nil {
				t.Fatal(err)
			}
			fp := model.(*FittedPipeline)
			if got := fp.Materializations(); got != 0 {
				t.Errorf("Materializations = %d, want 0 (streaming final)", got)
			}
			if st := eng.Stats(); st.Allocs != 0 {
				t.Errorf("streaming fit made %d scratch allocs, want 0", st.Allocs)
			}
			if fused := fp.StageFused(); len(fused) != 2 || !fused[0] || !fused[1] {
				t.Errorf("StageFused = %v, want [true true]", fused)
			}
			if files := tempFiles(t, tmp); len(files) != 0 {
				t.Errorf("scratch files leaked: %v", files)
			}

			// The fused fit must match fitting the same final on an
			// explicitly transformed dataset, bit for bit.
			ctx := context.Background()
			ds := eng.Dataset(tbl)
			tm1, err := (StandardScaler{}).FitTransform(ctx, ds)
			if err != nil {
				t.Fatal(err)
			}
			d1, err := tm1.Transform(ctx, ds)
			if err != nil {
				t.Fatal(err)
			}
			tm2, err := (MinMaxScaler{}).FitTransform(ctx, d1)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := tm2.Transform(ctx, d1)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := f.est.Fit(ctx, d2)
			if err != nil {
				t.Fatal(err)
			}
			if string(savedBytes(t, fp.FinalModel())) != string(savedBytes(t, ref)) {
				t.Error("fused and eager final model bytes differ")
			}
			if err := errors.Join(d1.Release(), d2.Release()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFusedPipelineCancelMidScan: cancelling while the fused chain is
// streaming — during fitting scans or the single cache
// materialization — surfaces context.Canceled and leaks no scratch
// file, on an Auto engine whose budget forces the cache to mmap.
func TestFusedPipelineCancelMidScan(t *testing.T) {
	path := digitsFile(t, 200)
	for _, after := range []int64{3, 6, 12, 48} {
		tmp := t.TempDir()
		eng := New(Config{Mode: Auto, MemoryBudget: 4096, TempDir: tmp})
		tbl, err := eng.Open(path)
		if err != nil {
			eng.Close()
			t.Fatal(err)
		}
		ctx := &countCancelCtx{Context: context.Background(), after: after}
		model, err := eng.Fit(ctx, scalePCALogreg(3), tbl)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v, want context.Canceled", after, err)
		}
		if model != nil {
			t.Errorf("after=%d: got a model from a cancelled fused fit", after)
		}
		if files := tempFiles(t, tmp); len(files) != 0 {
			t.Errorf("after=%d: cancelled fused fit leaked scratch files: %v", after, files)
		}
		eng.Close()
	}
}
