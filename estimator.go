package m3

// Estimator API v2: every M3 algorithm behind one interface pair.
//
//	est := m3.LogisticRegression{Binarize: true}
//	model, err := eng.Fit(ctx, est, tbl)   // engine-bound (heap or mmap)
//	model, err := m3.Fit(ctx, est, x, y)   // standalone heap matrices
//
// Fitting is context-aware (cancellation takes effect within one data
// block or iteration) and engine-threaded: the engine's Workers,
// store accounting and prefetch settings reach every trainer
// automatically. Concrete estimators below wrap the internal trainers;
// each returns a Fitted* model exposing the rich inner model alongside
// the uniform Model interface (Predict, PredictMatrix, Save).

import (
	"context"
	"errors"
	"fmt"
	"math"

	"m3/internal/core"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/knn"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/modelio"
	"m3/internal/ml/pca"
	"m3/internal/ml/sgd"
)

// Estimator is an unfitted algorithm configuration; Fit trains it on a
// Dataset and returns the fitted Model.
type Estimator = core.Estimator

// Model is a fitted model: Predict (single row), PredictMatrix
// (blocked parallel batch) and Save (modelio persistence).
type Model = core.Model

// Dataset carries a feature matrix, labels and the owning engine's
// execution settings into training.
type Dataset = core.Dataset

// FitOptions is the shared training surface embedded by every
// algorithm's options: Workers override, iteration Callback,
// Verbose logging.
type FitOptions = fit.FitOptions

// KNNOptions configures k-nearest-neighbor scans.
type KNNOptions = knn.Options

// BayesOptions configures Gaussian naive Bayes training.
type BayesOptions = bayes.Options

// Fit trains an estimator on a heap matrix and labels — the
// engine-less counterpart of Engine.Fit, for data that never touches a
// file. labels may be nil for unsupervised estimators.
func Fit(ctx context.Context, est Estimator, x *Matrix, labels []float64) (Model, error) {
	if est == nil {
		return nil, errors.New("m3: nil estimator")
	}
	if x == nil {
		return nil, errors.New("m3: nil matrix")
	}
	return est.Fit(ctx, &Dataset{X: x, Labels: labels})
}

// predictRows scores every row of x with f in one blocked parallel
// scan. Each out[i] is written by exactly one worker, so the result is
// identical to a sequential scan.
func predictRows(x *Matrix, workers, wantCols int, f func(row []float64) float64) ([]float64, error) {
	if x == nil {
		return nil, errors.New("m3: nil matrix")
	}
	if x.Cols() != wantCols {
		return nil, fmt.Errorf("m3: matrix has %d features, model wants %d", x.Cols(), wantCols)
	}
	out := make([]float64, x.Rows())
	x.ForEachRowParallel(workers, func(i int, row []float64) { out[i] = f(row) })
	return out, nil
}

// --- Logistic regression ---------------------------------------------

// LogisticRegression estimates a binary classifier with L-BFGS over
// blocked parallel data scans.
type LogisticRegression struct {
	// Binarize derives 0/1 labels from the dataset by comparing each
	// label to Positive (the paper's "digit d vs rest" tasks). When
	// false, labels must already be 0 or 1.
	Binarize bool
	// Positive is the label value mapped to 1 when Binarize is set.
	Positive float64
	// Options tunes the trainer (lambda, iterations, FitOptions...).
	Options LogisticOptions
}

// Fit implements Estimator.
func (e LogisticRegression) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	y := ds.Labels
	if e.Binarize {
		y = ds.BinaryLabels(e.Positive)
	}
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	m, err := logreg.Train(ctx, ds.X, y, opts)
	if err != nil {
		return nil, err
	}
	return &FittedLogistic{LogisticModel: m, workers: opts.Workers}, nil
}

// FittedLogistic is a fitted binary classifier; the embedded
// LogisticModel exposes weights, intercept and optimizer outcome.
type FittedLogistic struct {
	*LogisticModel
	workers int
}

// PredictMatrix returns the hard 0/1 label for every row of x.
func (f *FittedLogistic) PredictMatrix(x *Matrix) ([]float64, error) {
	return predictRows(x, f.workers, len(f.Weights), f.LogisticModel.Predict)
}

// Save persists the model via modelio.
func (f *FittedLogistic) Save(path string) error {
	return modelio.SaveFile(path, f.LogisticModel)
}

// --- Softmax (multinomial) regression --------------------------------

// SoftmaxRegression estimates a K-class classifier with L-BFGS over
// blocked parallel data scans.
type SoftmaxRegression struct {
	// Classes is K; labels must be whole numbers in [0, K).
	Classes int
	// Options tunes the trainer.
	Options LogisticOptions
}

// Fit implements Estimator.
func (e SoftmaxRegression) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	y, err := ds.IntLabels(e.Classes)
	if err != nil {
		return nil, err
	}
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	m, err := logreg.TrainSoftmax(ctx, ds.X, y, e.Classes, opts)
	if err != nil {
		return nil, err
	}
	return &FittedSoftmax{SoftmaxModel: m, workers: opts.Workers}, nil
}

// FittedSoftmax is a fitted multiclass classifier.
type FittedSoftmax struct {
	*SoftmaxModel
	workers int
}

// Predict returns the argmax class as a float64.
func (f *FittedSoftmax) Predict(row []float64) float64 {
	return float64(f.SoftmaxModel.Predict(row))
}

// PredictMatrix returns the argmax class for every row of x.
func (f *FittedSoftmax) PredictMatrix(x *Matrix) ([]float64, error) {
	return predictRows(x, f.workers, f.Features, f.Predict)
}

// Save persists the model via modelio.
func (f *FittedSoftmax) Save(path string) error {
	return modelio.SaveFile(path, f.SoftmaxModel)
}

// --- Linear (ridge) regression ---------------------------------------

// LinearRegression estimates a ridge regressor, either with streaming
// L-BFGS or, when Exact is set, the closed-form normal equations (one
// Gram scan + O(d³) solve).
type LinearRegression struct {
	// Exact selects the normal-equations path.
	Exact bool
	// Options tunes the trainer.
	Options LinearOptions
}

// streamingFit reports whether training is a bounded number of
// forward scans: the exact normal-equations path is one Gram scan, so
// pipelines train it straight off a fused view; L-BFGS re-scans every
// iteration and gets a materialized cache instead.
func (e LinearRegression) streamingFit() bool { return e.Exact }

// Fit implements Estimator; dataset labels are the regression targets.
func (e LinearRegression) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	var (
		m   *LinearModel
		err error
	)
	if e.Exact {
		m, err = linreg.TrainExact(ctx, ds.X, ds.Labels, opts)
	} else {
		m, err = linreg.Train(ctx, ds.X, ds.Labels, opts)
	}
	if err != nil {
		return nil, err
	}
	return &FittedLinear{LinearModel: m, workers: opts.Workers}, nil
}

// FittedLinear is a fitted ridge regressor.
type FittedLinear struct {
	*LinearModel
	workers int
}

// PredictMatrix returns w·row + b for every row of x.
func (f *FittedLinear) PredictMatrix(x *Matrix) ([]float64, error) {
	return predictRows(x, f.workers, len(f.Weights), f.LinearModel.Predict)
}

// Save persists the model via modelio.
func (f *FittedLinear) Save(path string) error {
	return modelio.SaveFile(path, f.LinearModel)
}

// --- K-means ----------------------------------------------------------

// KMeansClustering estimates a k-means clustering (Lloyd's algorithm,
// k-means++ init) over blocked parallel assignment scans.
type KMeansClustering struct {
	// Options tunes the clusterer (K is required).
	Options KMeansOptions
}

// Fit implements Estimator; labels are ignored.
func (e KMeansClustering) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	res, err := kmeans.Run(ctx, ds.X, opts)
	if err != nil {
		return nil, err
	}
	return &FittedKMeans{KMeansResult: res, workers: opts.Workers}, nil
}

// MiniBatchClustering estimates a k-means clustering with Sculley-
// style mini-batch updates — the I/O-frugal choice out-of-core.
type MiniBatchClustering struct {
	// Options tunes the clusterer (K is required).
	Options MiniBatchKMeansOptions
}

// Fit implements Estimator; labels are ignored.
func (e MiniBatchClustering) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	res, err := kmeans.MiniBatch(ctx, ds.X, opts)
	if err != nil {
		return nil, err
	}
	return &FittedKMeans{KMeansResult: res, workers: opts.Workers}, nil
}

// FittedKMeans is a completed clustering; the embedded KMeansResult
// exposes centroids, assignments and inertia.
type FittedKMeans struct {
	*KMeansResult
	workers int
}

// Predict returns the nearest-centroid cluster as a float64.
func (f *FittedKMeans) Predict(row []float64) float64 {
	return float64(f.KMeansResult.Predict(row))
}

// PredictMatrix returns the nearest-centroid cluster for every row.
func (f *FittedKMeans) PredictMatrix(x *Matrix) ([]float64, error) {
	return predictRows(x, f.workers, f.Centroids.Cols(), f.Predict)
}

// Save persists the centroids via modelio.
func (f *FittedKMeans) Save(path string) error {
	return modelio.SaveFile(path, f.KMeansResult)
}

// --- k-nearest neighbors ---------------------------------------------

// KNNClassifier "estimates" a k-NN classifier: fitting just validates
// and retains the reference matrix and labels; every prediction batch
// is one blocked parallel scan of the references.
type KNNClassifier struct {
	// K is the neighbor count (required, in [1, rows]).
	K int
	// Classes bounds the label alphabet; labels must be whole numbers
	// in [0, Classes).
	Classes int
	// Options tunes the scans.
	Options KNNOptions
}

// Fit implements Estimator.
func (e KNNClassifier) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	if e.K < 1 || e.K > ds.X.Rows() {
		return nil, fmt.Errorf("m3: k = %d outside [1,%d]", e.K, ds.X.Rows())
	}
	y, err := ds.IntLabels(e.Classes)
	if err != nil {
		return nil, err
	}
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	return &FittedKNN{refs: ds.X, labels: y, k: e.K, opts: opts}, nil
}

// FittedKNN answers queries against the retained reference matrix. It
// has no serial form: Save returns an error, and the model is only
// valid while the reference matrix (and its engine) stay open.
type FittedKNN struct {
	refs   *Matrix
	labels []int
	k      int
	opts   KNNOptions
}

// K returns the configured neighbor count.
func (f *FittedKNN) K() int { return f.k }

// Refs returns the retained reference matrix.
func (f *FittedKNN) Refs() *Matrix { return f.refs }

// Predict classifies a single query row by majority vote (one
// reference scan); it returns NaN on shape mismatch.
func (f *FittedKNN) Predict(row []float64) float64 {
	q := mat.NewDenseFrom(append([]float64(nil), row...), 1, len(row))
	out, err := f.PredictMatrix(q)
	if err != nil {
		return math.NaN()
	}
	return out[0]
}

// PredictMatrix classifies every row of x with one blocked parallel
// scan of the reference matrix.
func (f *FittedKNN) PredictMatrix(x *Matrix) ([]float64, error) {
	if x == nil {
		return nil, errors.New("m3: nil matrix")
	}
	preds, err := knn.Classify(nil, f.refs, f.labels, x, f.k, f.opts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(preds))
	for i, c := range preds {
		out[i] = float64(c)
	}
	return out, nil
}

// Save is unsupported: the "model" is the reference data itself.
func (f *FittedKNN) Save(path string) error {
	return errors.New("m3: k-NN models have no serial form; persist the reference dataset instead")
}

// --- SGD --------------------------------------------------------------

// SGDClassifier estimates a binary classifier with (mini-batch)
// stochastic gradient descent — the online-learning path of the
// paper's §4.
type SGDClassifier struct {
	// Binarize derives 0/1 labels by comparing to Positive.
	Binarize bool
	// Positive is the label value mapped to 1 when Binarize is set.
	Positive float64
	// Options tunes the trainer.
	Options SGDOptions
}

// Fit implements Estimator.
func (e SGDClassifier) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	y := ds.Labels
	if e.Binarize {
		y = ds.BinaryLabels(e.Positive)
	}
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	m, err := sgd.Train(ctx, ds.X, y, opts)
	if err != nil {
		return nil, err
	}
	return &FittedLogistic{LogisticModel: m, workers: opts.Workers}, nil
}

// --- Naive Bayes ------------------------------------------------------

// NaiveBayes estimates a Gaussian naive Bayes classifier in a single
// blocked parallel counting scan.
type NaiveBayes struct {
	// Classes is the class count; labels must be whole numbers in
	// [0, Classes).
	Classes int
	// Options tunes the trainer.
	Options BayesOptions
}

// streamingFit reports that training is a single counting scan, so
// pipelines train naive Bayes straight off a fused view.
func (NaiveBayes) streamingFit() bool { return true }

// Fit implements Estimator.
func (e NaiveBayes) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	y, err := ds.IntLabels(e.Classes)
	if err != nil {
		return nil, err
	}
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	m, err := bayes.Train(ctx, ds.X, y, e.Classes, opts)
	if err != nil {
		return nil, err
	}
	return &FittedBayes{BayesModel: m, workers: opts.Workers}, nil
}

// FittedBayes is a fitted Gaussian naive Bayes classifier.
type FittedBayes struct {
	*BayesModel
	workers int
}

// Predict returns the maximum-a-posteriori class as a float64.
func (f *FittedBayes) Predict(row []float64) float64 {
	return float64(f.BayesModel.Predict(row))
}

// PredictMatrix returns the MAP class for every row of x.
func (f *FittedBayes) PredictMatrix(x *Matrix) ([]float64, error) {
	return predictRows(x, f.workers, f.Features, f.Predict)
}

// Save persists the model via modelio.
func (f *FittedBayes) Save(path string) error {
	return modelio.SaveFile(path, f.BayesModel)
}

// --- PCA --------------------------------------------------------------

// PrincipalComponents estimates a PCA decomposition in two blocked
// parallel scans (mean + covariance).
type PrincipalComponents struct {
	// Options tunes the decomposition (Components is required).
	Options PCAOptions
}

// streamingFit reports that training is two forward scans (mean +
// covariance), so pipelines train PCA straight off a fused view.
func (PrincipalComponents) streamingFit() bool { return true }

// Fit implements Estimator; labels are ignored.
func (e PrincipalComponents) Fit(ctx context.Context, ds *Dataset) (Model, error) {
	opts := e.Options
	opts.Workers = opts.ResolveWorkers(ds.Workers)
	res, err := pca.Fit(ctx, ds.X, opts)
	if err != nil {
		return nil, err
	}
	return &FittedPCA{PCAResult: res, workers: opts.Workers}, nil
}

// FittedPCA is a fitted decomposition; the embedded PCAResult exposes
// Eigenvalues, ExplainedRatio and Reconstruct. Note the dataset-level
// Transform (TransformerModel) shadows PCAResult's row-level method —
// use TransformRow, or PCAResult.Transform directly, to project a
// single row.
type FittedPCA struct {
	*PCAResult
	workers int
}

// Predict returns the projection of row onto the leading principal
// component (the scalar summary of the uniform Model interface; use
// TransformRow for all coordinates).
func (f *FittedPCA) Predict(row []float64) float64 {
	coords := make([]float64, f.Components.Rows())
	f.PCAResult.Transform(row, coords)
	return coords[0]
}

// PredictMatrix returns the leading-component coordinate per row.
func (f *FittedPCA) PredictMatrix(x *Matrix) ([]float64, error) {
	return predictRows(x, f.workers, f.Components.Cols(), f.Predict)
}

// Save persists the decomposition via modelio.
func (f *FittedPCA) Save(path string) error {
	return modelio.SaveFile(path, f.PCAResult)
}
