module m3/tools

go 1.22
