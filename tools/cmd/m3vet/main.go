// Command m3vet runs m3's repo-specific static analyzers over Go
// package patterns and reports contract violations the stock
// toolchain cannot see: unpolled iteration loops, unended spans,
// unreleased pooled resources, map-order dependence in deterministic
// reduce code, and exact float comparisons.
//
// Usage:
//
//	go run ./tools/cmd/m3vet ./...
//	go run ./tools/cmd/m3vet -list
//
// Exit status is 1 when any diagnostic is reported, 2 on load or
// internal errors. Suppress an individual finding with a
// "//m3vet:allow <analyzer> -- <reason>" comment on (or just above)
// the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"m3/tools/analyzers/analysis"
	"m3/tools/analyzers/ctxpoll"
	"m3/tools/analyzers/floateq"
	"m3/tools/analyzers/load"
	"m3/tools/analyzers/maporder"
	"m3/tools/analyzers/pairedrelease"
	"m3/tools/analyzers/spanend"
)

var analyzers = []*analysis.Analyzer{
	ctxpoll.Analyzer,
	floateq.Analyzer,
	maporder.Analyzer,
	pairedrelease.Analyzer,
	spanend.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "m3vet: %v\n", err)
		os.Exit(2)
	}

	type located struct {
		pos  string
		line int
		diag analysis.Diagnostic
	}
	var found []located
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "m3vet: %s: %s: %v\n", pkg.Path, a.Name, err)
				os.Exit(2)
			}
			for _, d := range diags {
				p := pkg.Fset.Position(d.Pos)
				found = append(found, located{pos: p.String(), line: p.Line, diag: d})
			}
		}
	}

	sort.Slice(found, func(i, j int) bool {
		if found[i].pos != found[j].pos {
			return found[i].pos < found[j].pos
		}
		return found[i].diag.Analyzer < found[j].diag.Analyzer
	})
	for _, f := range found {
		fmt.Printf("%s: [%s] %s\n", f.pos, f.diag.Analyzer, f.diag.Message)
	}
	if len(found) > 0 {
		fmt.Fprintf(os.Stderr, "m3vet: %d finding(s)\n", len(found))
		os.Exit(1)
	}
}
