package maporder_test

import (
	"testing"

	"m3/tools/analyzers/analysistest"
	"m3/tools/analyzers/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer)
}
