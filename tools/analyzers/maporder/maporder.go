// Package maporder reports `range` statements over Go maps in code
// that must be deterministic.
//
// The invariant: m3's ordered-reduce contract promises that a fit is
// bit-identical for any worker count (and, for the planned sharded
// engine, any shard count). Go randomizes map iteration order, so a
// map range anywhere on a path that touches merged state silently
// breaks the contract — partial sums associate differently run to
// run. Reduce/merge code therefore iterates sorted keys (or avoids
// maps entirely). The analyzer enforces this in the execution layer
// (m3/internal/exec), the engine (m3/internal/core), every trainer
// (m3/internal/ml/...), the distributed coordinator and worker
// (m3/internal/dist — its refold replays the local grouped merge over
// the wire, so a map range there breaks shard-count bit-identity the
// same way), and — in any other package — every function reachable
// within its package from a callback passed to the exec layer's
// ordered-reduce entry points (MapReduce, ReduceRows,
// ReduceRowBlocks, ForEachRow).
package maporder

import (
	"go/ast"
	"go/types"
	"strings"

	"m3/tools/analyzers/analysis"
)

// Analyzer reports map ranges in determinism-critical code.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "reports range-over-map in internal/exec, internal/core, internal/ml, " +
		"internal/dist and in functions reachable from ordered-reduce callbacks; " +
		"map iteration order is randomized and would break the bit-identical " +
		"reduce contract",
	Run: run,
}

// execPath is the import path of the execution layer whose
// ordered-reduce entry points make their callbacks determinism-
// critical.
const execPath = "m3/internal/exec"

// reduceEntryPoints are the exec functions whose function-typed
// arguments (alloc/process/fn/merge) feed the ordered reduce.
var reduceEntryPoints = map[string]bool{
	"MapReduce":       true,
	"ReduceRows":      true,
	"ReduceRowBlocks": true,
	"ForEachRow":      true,
}

// wholePackage reports whether every function of the package at path
// is in scope.
func wholePackage(path string) bool {
	return path == execPath ||
		path == "m3/internal/core" ||
		path == "m3/internal/dist" ||
		path == "m3/internal/ml" ||
		strings.HasPrefix(path, "m3/internal/ml/")
}

func run(pass *analysis.Pass) error {
	if wholePackage(pass.Pkg.Path()) {
		for _, f := range pass.Files {
			checkMapRanges(pass, f)
		}
		return nil
	}

	// Elsewhere: functions reachable intra-package from ordered-reduce
	// callbacks. Roots are the function-typed arguments of calls to
	// the exec entry points; reachability follows same-package calls
	// to a fixpoint.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	inScope := make(map[ast.Node]bool)
	var enqueue func(n ast.Node)
	enqueue = func(n ast.Node) {
		if n == nil || inScope[n] {
			return
		}
		inScope[n] = true
		// Same-package calls made from in-scope code pull their
		// definitions in.
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fd := decls[calleeObj(pass, call)]; fd != nil {
				enqueue(fd)
			}
			return true
		})
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObj(pass, call)
			if callee == nil || callee.Pkg() == nil ||
				callee.Pkg().Path() != execPath || !reduceEntryPoints[callee.Name()] {
				return true
			}
			for _, arg := range call.Args {
				switch a := arg.(type) {
				case *ast.FuncLit:
					enqueue(a)
				case *ast.Ident, *ast.SelectorExpr:
					if fd := decls[usedObj(pass, a)]; fd != nil {
						enqueue(fd)
					}
				}
			}
			return true
		})
	}
	for n := range inScope {
		checkMapRanges(pass, n)
	}
	return nil
}

// checkMapRanges reports every range over a map value under n.
func checkMapRanges(pass *analysis.Pass, n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		rs, ok := m.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			pass.Reportf(rs.For,
				"range over map in deterministic reduce/merge code: iteration order is randomized; iterate sorted keys instead")
		}
		return true
	})
}

// calleeObj resolves the object a call's callee refers to (nil for
// indirect calls through function values of unknown origin).
func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	return usedObj(pass, ast.Unparen(call.Fun))
}

// usedObj resolves the object an identifier or selector refers to.
func usedObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch v := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[v]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[v.Sel]
	}
	return nil
}
