// Package exec stubs the execution layer's ordered-reduce entry
// points for the maporder golden suite: same import path and function
// names as the real m3/internal/exec, minimal signatures.
package exec

// Block is a half-open item range.
type Block struct{ Lo, Hi int }

// RowScan mirrors the real scan descriptor's shape.
type RowScan struct{ Rows, Cols, Workers int }

// MapReduce mimics the generic ordered map/reduce entry point.
func MapReduce(blocks []Block, alloc func() []float64, process func(state []float64, b Block), merge func(dst, src []float64)) []float64 {
	out := alloc()
	for _, b := range blocks {
		s := alloc()
		process(s, b)
		merge(out, s)
	}
	return out
}

// ReduceRows mimics the per-row reduce entry point.
func ReduceRows(s RowScan, alloc func() []float64, fn func(state []float64, i int, row []float64), merge func(dst, src []float64)) []float64 {
	return nil
}

// ReduceRowBlocks mimics the per-block reduce entry point.
func ReduceRowBlocks(s RowScan, alloc func() []float64, fn func(state []float64, lo, hi int, block []float64, stride int), merge func(dst, src []float64)) []float64 {
	return nil
}

// ForEachRow mimics the stateless row visitor.
func ForEachRow(s RowScan, fn func(i int, row []float64)) {}
