// Package dist is inside m3/internal/dist, so every function is in
// maporder scope: the coordinator's refold replays the local grouped
// merge over the wire, and a map range anywhere in it would make the
// model depend on Go's randomized iteration order — breaking the
// shard-count bit-identity contract.
package dist

import "sort"

// GroupPartial mirrors the wire shape of one merge group's state.
type GroupPartial struct {
	Group int
	State []float64
}

// refold merges worker partials in worker-then-group order — slice
// ranges only, the contract the analyzer protects.
func refold(workers [][]GroupPartial) []float64 {
	var out []float64
	for _, groups := range workers {
		for _, g := range groups {
			for i, v := range g.State {
				if i >= len(out) {
					out = append(out, v)
					continue
				}
				out[i] += v
			}
		}
	}
	return out
}

// mergeByGroup indexes partials by group id and then ranges the map —
// exactly the bug class the scope extension exists to catch.
func mergeByGroup(groups []GroupPartial) map[int][]float64 {
	byGroup := map[int][]float64{}
	for _, g := range groups {
		byGroup[g.Group] = append(byGroup[g.Group], g.State...)
	}
	merged := map[int][]float64{}
	for id, states := range byGroup { // want `maporder: range over map`
		merged[id] = states
	}
	return merged
}

// mergeByGroupSorted is the compliant version: collect keys (with the
// allow directive — the collection itself is order-insensitive), sort,
// then walk the sorted slice.
func mergeByGroupSorted(byGroup map[int][]float64) [][]float64 {
	ids := make([]int, 0, len(byGroup))
	//m3vet:allow maporder -- collecting keys to sort; order-insensitive
	for id := range byGroup {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([][]float64, 0, len(ids))
	for _, id := range ids {
		out = append(out, byGroup[id])
	}
	return out
}

// closeConns models the worker's shutdown sweep over its connection
// set: teardown order is irrelevant, so the directive applies.
func closeConns(conns map[int]func()) {
	//m3vet:allow maporder -- shutdown sweep; close order is irrelevant
	for _, closeFn := range conns {
		closeFn()
	}
}
