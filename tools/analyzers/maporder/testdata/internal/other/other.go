// Package other is outside the always-checked packages: only
// functions reachable from ordered-reduce callbacks are in scope.
package other

import "m3/internal/exec"

// mergeHelper is reachable from the merge callback below.
func mergeHelper(dst []float64, extra map[int]float64) {
	for k, v := range extra { // want `maporder: range over map`
		dst[k] += v
	}
}

// namedMerge is passed to MapReduce by name.
func namedMerge(dst, src []float64) {
	seen := map[int]float64{}
	for k := range seen { // want `maporder: range over map`
		_ = k
	}
	mergeHelper(dst, seen)
}

func reduce(blocks []exec.Block) []float64 {
	extras := map[int]float64{}
	return exec.MapReduce(blocks,
		func() []float64 { return make([]float64, 4) },
		func(state []float64, b exec.Block) {
			for k, v := range extras { // want `maporder: range over map`
				state[k] += v
			}
		},
		namedMerge)
}

// unrelated is never reached from a reduce callback: map ranges here
// are outside the deterministic contract and not reported.
func unrelated(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
