// Package trainer is inside m3/internal/ml/, so every function is in
// maporder scope.
package trainer

import "sort"

func mergeCounts(dst, src map[int]float64) {
	for k, v := range src { // want `maporder: range over map`
		dst[k] += v
	}
}

// mergeCountsSorted shows the recommended idiom: the key-collection
// range is order-insensitive (it only fills a slice that is sorted
// before use) and carries the directive saying so; the merge itself
// walks the sorted slice.
func mergeCountsSorted(dst, src map[int]float64) {
	keys := make([]int, 0, len(src))
	//m3vet:allow maporder -- collecting keys to sort; order-insensitive
	for k := range src {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys { // sorted slice: fine
		dst[k] += src[k]
	}
}

type hist map[string]int

func namedMapType(h hist) int {
	n := 0
	for range h { // want `maporder: range over map`
		n++
	}
	return n
}

func fineIterations(xs []float64, ch chan int, s string) {
	for i := range xs {
		_ = i
	}
	for v := range ch {
		_ = v
	}
	for _, r := range s {
		_ = r
	}
}

func allowedRange(m map[int]int) {
	//m3vet:allow maporder -- key order irrelevant: values are summed commutatively into ints
	for _, v := range m {
		_ = v
	}
}
