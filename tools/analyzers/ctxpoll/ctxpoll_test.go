package ctxpoll_test

import (
	"testing"

	"m3/tools/analyzers/analysistest"
	"m3/tools/analyzers/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, "testdata", ctxpoll.Analyzer)
}
