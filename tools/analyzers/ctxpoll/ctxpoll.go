// Package ctxpoll reports long-running iteration loops that never
// poll their context.
//
// m3's training entry points all take a context.Context and promise
// prompt cancellation (ROADMAP: "ctx plumbed through every fit
// loop"). The execution layer polls at block granularity on the
// caller's behalf, but solver-style inner loops — power iterations,
// epochs, refinement passes — run between those polls and can stall
// cancellation for unbounded time if they never check ctx themselves.
//
// Two patterns are reported:
//
//  1. A for-loop whose condition mentions an iteration-ish name
//     (iter, epoch, pass, round — case-insensitive substring match)
//     while a context.Context parameter is in scope, and whose body
//     never references that context. This is the pca.go power-
//     iteration bug class: bounded in theory, unbounded in practice
//     (MaxIterations is user-supplied).
//
//  2. A condition-less for-loop with no exit at all: no break
//     targeting the loop, no return, no goto anywhere in the body.
//     CAS retry loops, channel pumps, and drain loops all carry an
//     exit and are not reported.
//
// Additionally, inside function literals passed as kernels to the
// exec package's reduce entry points (MapReduce, ReduceRows,
// ReduceRowBlocks, ForEachRow), pattern 1 is reported even when no
// context is in scope: the scheduler only polls between kernel
// calls, so an iteration loop inside a kernel is a cancellation
// hole either way.
//
// Plain bounded loops (for i := 0; i < len(xs); i++) and range
// loops are data-bounded and never reported. Suppress a deliberate
// case with //m3vet:allow ctxpoll -- <reason>.
package ctxpoll

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"m3/tools/analyzers/analysis"
)

// Analyzer flags unbounded iteration loops that never poll ctx.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "report iteration loops that can outrun cancellation because they never poll a context",
	Run:  run,
}

const execPath = "m3/internal/exec"

// reduceEntryPoints are the exec functions whose kernel callbacks run
// between the scheduler's own cancellation polls.
var reduceEntryPoints = map[string]bool{
	"MapReduce":       true,
	"ReduceRows":      true,
	"ReduceRowBlocks": true,
	"ForEachRow":      true,
}

var iterWords = []string{"iter", "epoch", "pass", "round"}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.walk(fd.Body, ctxParams(pass, fd.Type), false)
		}
	}
	return nil
}

// walker carries the set of context.Context parameters in scope
// (accumulated across enclosing functions and closures) and whether
// the walk is inside an exec kernel literal.
type walker struct {
	pass *analysis.Pass
}

func (w *walker) walk(n ast.Node, ctxs []types.Object, kernel bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.FuncLit:
		w.walk(n.Body, addCtxParams(w.pass, ctxs, n.Type), kernel)
		return
	case *ast.CallExpr:
		kern := isReduceEntry(w.pass, n)
		w.walk(n.Fun, ctxs, kernel)
		for _, arg := range n.Args {
			if fl, ok := arg.(*ast.FuncLit); ok && kern {
				w.walk(fl.Body, addCtxParams(w.pass, ctxs, fl.Type), true)
			} else {
				w.walk(arg, ctxs, kernel)
			}
		}
		return
	case *ast.ForStmt:
		w.checkFor(n, ctxs, kernel)
	}
	// Visit each direct child; recursion stays in w.walk so the
	// ctx/kernel state threads through.
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			w.walk(c, ctxs, kernel)
		}
		return false
	})
}

func (w *walker) checkFor(fs *ast.ForStmt, ctxs []types.Object, kernel bool) {
	if fs.Cond == nil {
		if !hasExit(fs.Body, false) && !refsAny(w.pass, fs, ctxs) {
			w.pass.Reportf(fs.For, "infinite loop has no break, return, or goto and never polls a context; poll ctx each pass so it can be cancelled, or //m3vet:allow ctxpoll with a reason")
		}
		return
	}
	if !iterNamed(fs.Cond) {
		return
	}
	if len(ctxs) > 0 {
		if !refsAny(w.pass, fs, ctxs) {
			name := ctxs[0].Name()
			w.pass.Reportf(fs.For, "iteration loop never polls %s; check %s.Err() once per pass so long fits stay cancellable, or //m3vet:allow ctxpoll with a reason", name, name)
		}
		return
	}
	if kernel {
		w.pass.Reportf(fs.For, "iteration loop inside an exec kernel cannot be cancelled: the scheduler only polls between kernel calls, so capture a context and poll it here, or //m3vet:allow ctxpoll with a reason")
	}
}

// iterNamed reports whether the loop condition mentions an
// iteration-ish identifier (iter, epoch, pass, round).
func iterNamed(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		lower := strings.ToLower(id.Name)
		for _, word := range iterWords {
			if strings.Contains(lower, word) {
				found = true
			}
		}
		return true
	})
	return found
}

// hasExit reports whether the loop body can leave the loop: a return,
// a goto, a labeled break, or an unlabeled break not captured by a
// nested for/switch/select. Function literals are opaque — a return
// inside one does not exit the loop.
func hasExit(n ast.Node, nestedBreak bool) bool {
	switch s := n.(type) {
	case *ast.FuncLit:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.GOTO:
			return true
		case token.BREAK:
			return s.Label != nil || !nestedBreak
		}
		return false
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		nestedBreak = true
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil && !found && hasExit(c, nestedBreak) {
			found = true
		}
		return false
	})
	return found
}

// refsAny reports whether any identifier under n resolves to one of
// the given objects.
func refsAny(pass *analysis.Pass, n ast.Node, objs []types.Object) bool {
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok {
			return true
		}
		use := pass.TypesInfo.Uses[id]
		for _, o := range objs {
			if use == o {
				found = true
			}
		}
		return true
	})
	return found
}

// ctxParams returns the context.Context parameters declared by ft.
func ctxParams(pass *analysis.Pass, ft *ast.FuncType) []types.Object {
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []types.Object
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj := pass.TypesInfo.Defs[name]
			if obj != nil && isCtxType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// addCtxParams extends the in-scope set with ft's context parameters,
// copying so sibling branches don't alias.
func addCtxParams(pass *analysis.Pass, ctxs []types.Object, ft *ast.FuncType) []types.Object {
	more := ctxParams(pass, ft)
	if len(more) == 0 {
		return ctxs
	}
	out := make([]types.Object, 0, len(ctxs)+len(more))
	out = append(out, ctxs...)
	return append(out, more...)
}

func isCtxType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isReduceEntry(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn, ok := usedObj(pass, ast.Unparen(call.Fun)).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != execPath {
		return false
	}
	return reduceEntryPoints[fn.Name()]
}

func usedObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
