module m3

go 1.22
