// Package a exercises the ctxpoll analyzer: iteration-named loops
// must poll an in-scope context, condition-less loops must have an
// exit, and exec kernels must not hide unbounded inner loops.
package a

import (
	"context"

	"m3/internal/exec"
)

func work()                    {}
func swap(v *int32) bool       { return true }
func done() bool               { return true }
func alloc() []float64         { return nil }
func merge(dst, src []float64) {}

// powerIterate mirrors the pca.go power-iteration bug: bounded by a
// user-supplied MaxIterations, never polls ctx.
func powerIterate(ctx context.Context, maxIter int) {
	for iter := 0; iter < maxIter; iter++ { // want `ctxpoll: iteration loop never polls ctx`
		work()
	}
}

// epochNoPoll matches on the bound's name, not the index variable.
func epochNoPoll(ctx context.Context, epochs int) {
	for e := 0; e < epochs; e++ { // want `ctxpoll: iteration loop never polls ctx`
		work()
	}
}

// fieldBound matches an iteration-ish selector in the condition.
type opts struct{ MaxIterations int }

func fieldBound(ctx context.Context, o opts) {
	for i := 0; i < o.MaxIterations; i++ { // want `ctxpoll: iteration loop never polls ctx`
		work()
	}
}

// polled is the fixed form: ctx checked once per pass.
func polled(ctx context.Context, maxIter int) error {
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		work()
	}
	return nil
}

// dataBounded loops over data, not iterations: never reported.
func dataBounded(ctx context.Context, xs []float64) {
	for i := 0; i < len(xs); i++ {
		work()
	}
	for range xs {
		work()
	}
}

// rangeOverEpochs is data-bounded even though the name matches;
// range loops are out of scope by design.
func rangeOverEpochs(ctx context.Context, epochs []int) {
	for _, ep := range epochs {
		_ = ep
	}
}

// closureCapture polls the outer ctx from inside a closure: the
// captured reference counts.
func closureCapture(ctx context.Context, rounds int) {
	run := func() {
		for r := 0; r < rounds; r++ {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}
	run()
}

// closureNoPoll is the same shape without the poll: the outer ctx is
// still in scope inside the literal.
func closureNoPoll(ctx context.Context, rounds int) {
	run := func() {
		for r := 0; r < rounds; r++ { // want `ctxpoll: iteration loop never polls ctx`
			work()
		}
	}
	run()
}

// noCtxInScope has nothing to poll and is not an exec kernel: the
// caller owns cancellation.
func noCtxInScope(maxIter int) {
	for iter := 0; iter < maxIter; iter++ {
		work()
	}
}

// spin has no exit at all.
func spin(ctx context.Context) {
	for { // want `ctxpoll: infinite loop has no break, return, or goto`
		work()
	}
}

// spinNoCtx is reported even without a context in scope: a loop with
// no exit is wrong regardless.
func spinNoCtx() {
	for { // want `ctxpoll: infinite loop has no break, return, or goto`
		work()
	}
}

// casLoop is the classic compare-and-swap retry: the return is its
// exit.
func casLoop(v *int32) {
	for {
		if swap(v) {
			return
		}
	}
}

// drain exits via break.
func drain() {
	for {
		if done() {
			break
		}
		work()
	}
}

// selectSpin's break only leaves the select, not the loop.
func selectSpin(ch chan int) {
	for { // want `ctxpoll: infinite loop has no break, return, or goto`
		select {
		case <-ch:
			break
		}
	}
}

// labeledBreak exits the loop from inside the select.
func labeledBreak(ch chan int) {
pump:
	for {
		select {
		case v := <-ch:
			if v == 0 {
				break pump
			}
		}
	}
}

// closureReturnIsNotAnExit: the return leaves the literal, never the
// loop.
func closureReturnIsNotAnExit(fns chan func()) {
	for { // want `ctxpoll: infinite loop has no break, return, or goto`
		f := func() { return }
		f()
	}
}

// kernelInnerLoop hides an iteration loop inside a ReduceRows kernel
// with no context in scope: the scheduler cannot interrupt it.
func kernelInnerLoop(s exec.RowScan, innerIters int) []float64 {
	return exec.ReduceRows(s, alloc, func(state []float64, i int, row []float64) {
		for it := 0; it < innerIters; it++ { // want `ctxpoll: iteration loop inside an exec kernel`
			work()
		}
	}, merge)
}

// kernelRowLoop is data-bounded: fine.
func kernelRowLoop(s exec.RowScan) []float64 {
	return exec.ReduceRows(s, alloc, func(state []float64, i int, row []float64) {
		for j := 0; j < len(row); j++ {
			state[0] += row[j]
		}
	}, merge)
}

// kernelWithCtxPoll captures and polls ctx: fine even inside the
// kernel.
func kernelWithCtxPoll(ctx context.Context, s exec.RowScan, innerIters int) []float64 {
	return exec.ReduceRows(s, alloc, func(state []float64, i int, row []float64) {
		for it := 0; it < innerIters; it++ {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}, merge)
}

// allowed demonstrates the escape hatch for a loop that is bounded
// tightly in practice.
func allowed(ctx context.Context, maxPasses int) {
	//m3vet:allow ctxpoll -- refinement is bounded at 3 passes in practice; cancellation is checked by the caller per round
	for pass := 0; pass < maxPasses; pass++ {
		work()
	}
}
