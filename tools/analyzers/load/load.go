// Package load type-checks Go packages for the m3vet analyzers
// without golang.org/x/tools. It shells out to `go list -export
// -json -deps` for package metadata and compiled export data, parses
// the target packages' non-test sources, and type-checks them with
// go/types using the gc importer fed from the export files — so every
// import (standard library or in-module) resolves from the build
// cache and the loader works fully offline.
//
// Only non-test files are loaded: m3vet checks production sources.
// Test files are where the parity suites deliberately compare floats
// bit for bit and where map-order nondeterminism cannot leak into
// fitted models, so they are out of scope by construction.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns,
// resolved relative to dir (the module root to analyze). Dependencies
// are imported from compiled export data; the returned packages are
// the pattern matches themselves, type-checked from source with full
// syntax and type information.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// GOWORK=off keeps the analysis scoped to dir's own module even
	// when dir sits inside a workspace (the repo root has a go.work
	// tying the main module to this tools module; analysistest
	// testdata modules are not workspace members at all). GOPROXY=off
	// guarantees no network: everything resolves from the module
	// itself and the standard library.
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOPROXY=off")
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		var files []*ast.File
		for _, gf := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("load: type-checking %s: %w", p.ImportPath, errors.Join(typeErrs...))
		}
		if err != nil {
			return nil, fmt.Errorf("load: type-checking %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Dir:   p.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
