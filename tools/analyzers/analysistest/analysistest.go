// Package analysistest runs an analyzer over a golden testdata module
// and compares its diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the offline
// framework in the sibling analysis package.
//
// Each analyzer's testdata directory is a small self-contained Go
// module named `m3`, so stub packages placed under internal/ carry
// exactly the import paths (m3/internal/obs, m3/internal/exec, ...)
// the analyzers match on, and the internal-package visibility rules
// are satisfied. A line expecting diagnostics carries one trailing
// comment per expectation:
//
//	for k := range m {} // want `maporder: range over map`
//
// The quoted text is a regular expression matched against the
// diagnostic message. Diagnostics suppressed by //m3vet:allow
// directives are filtered before matching, so the escape hatch itself
// is testable: an allowed line simply carries no want comment.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"m3/tools/analyzers/analysis"
	"m3/tools/analyzers/load"
)

// expectation is one `// want` entry.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]+)`|\"([^\"]+)\"")

// parseWants extracts expectations from every comment in files.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// Run loads the module rooted at dir, applies a to every package
// matching patterns (default ./...), and fails t unless the filtered
// diagnostics exactly match the // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", dir)
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Errorf("%s: %v", pkg.Path, err)
			continue
		}
		wants := parseWants(t, pkg.Fset, pkg.Files)
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(wants, pos, d) {
				t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
			}
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's
// line whose pattern matches, returning false when there is none.
func claim(wants []*expectation, pos token.Position, d analysis.Diagnostic) bool {
	msg := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	for _, w := range wants {
		if w.matched || w.file != pos.Filename || w.line != pos.Line {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}
