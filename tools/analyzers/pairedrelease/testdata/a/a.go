// Package a exercises the pairedrelease analyzer: pooled scratch
// matrices and refcounted model snapshots must be released on every
// path.
package a

import (
	"errors"

	"m3/internal/core"
	"m3/internal/serve"
)

func use(m *core.ScratchMatrix) float64 { return 0 }

// dispatch mirrors batcher.go's dispatchGroup: acquire, bail on
// error, defer the release. Clean.
func dispatch(e *serve.Entry, xs []float64) (float64, error) {
	snap, err := e.Acquire()
	if err != nil {
		return 0, err
	}
	defer snap.Release()
	return snap.Predict(xs), nil
}

// forgottenRelease pins the snapshot forever.
func forgottenRelease(e *serve.Entry, xs []float64) (float64, error) {
	snap, err := e.Acquire() // want `pairedrelease: model snapshot is not released on every path`
	if err != nil {
		return 0, err
	}
	return snap.Predict(xs), nil
}

// leakOnSuccess releases nothing after the error check even though
// the error path itself is fine.
func leakOnSuccess(eng *core.Engine) error {
	m, err := eng.AllocScratch(4, 4) // want `pairedrelease: scratch matrix is not released on every path`
	if err != nil {
		return err
	}
	_ = m.Data()
	return nil
}

// passedToHelper hands the matrix to another function, which may
// release it: ownership transfers are left alone.
func passedToHelper(eng *core.Engine) error {
	m, err := eng.AllocScratch(4, 4)
	if err != nil {
		return err
	}
	use(m)
	return nil
}

// deferRelease is the canonical fix.
func deferRelease(eng *core.Engine) error {
	m, err := eng.AllocScratch(4, 4)
	if err != nil {
		return err
	}
	defer m.Release()
	use(m)
	return nil
}

// closeInstead releases through the io.Closer spelling.
func closeInstead(eng *core.Engine) error {
	m, err := eng.AllocScratch(4, 4)
	if err != nil {
		return err
	}
	use(m)
	return m.Close()
}

// joinedRelease mirrors transformer.go: the release rides the return
// expression, which counts as the caller-visible use of the handle.
func joinedRelease(eng *core.Engine) error {
	m, err := eng.AllocScratch(4, 4)
	if err != nil {
		return err
	}
	use(m)
	return errors.Join(err, m.Release())
}

// leakBeforeEarlyReturn releases at the end but not on the early
// return.
func leakBeforeEarlyReturn(eng *core.Engine, skip bool) error {
	m, err := eng.AllocScratch(4, 4) // want `pairedrelease: scratch matrix is not released on every path`
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	_ = m.Data()
	return m.Release()
}

// storedInField transfers ownership to the struct; the walker leaves
// it alone.
type holder struct{ m *core.ScratchMatrix }

func (h *holder) adopt(eng *core.Engine) error {
	var err error
	h.m, err = eng.AllocScratch(4, 4)
	return err
}

// handedToCleanup transfers ownership to a captured closure.
func handedToCleanup(eng *core.Engine) (func(), error) {
	m, err := eng.AllocScratch(4, 4)
	if err != nil {
		return nil, err
	}
	return func() { m.Release() }, nil
}

// discarded drops the snapshot on the floor without binding it.
func discarded(e *serve.Entry) {
	e.Acquire() // want `pairedrelease: model snapshot is opened and discarded`
}

// allowed keeps a snapshot pinned on purpose.
func allowed(e *serve.Entry) (*serve.Snapshot, error) {
	snap, err := e.Acquire() //m3vet:allow pairedrelease -- pinned for the life of the process by design
	if err != nil {
		return nil, err
	}
	_ = snap
	return nil, nil
}
