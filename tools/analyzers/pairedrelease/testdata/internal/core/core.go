// Package core stubs the engine's scratch-pool surface for the
// pairedrelease golden suite.
package core

import "errors"

// Engine is a stub of the compute engine.
type Engine struct{}

// ScratchMatrix is a pooled allocation; Release or Close must run on
// every path.
type ScratchMatrix struct{ Rows, Cols int }

// AllocScratch takes a matrix from the pool.
func (e *Engine) AllocScratch(rows, cols int) (*ScratchMatrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, errors.New("bad shape")
	}
	return &ScratchMatrix{Rows: rows, Cols: cols}, nil
}

// Release returns the matrix to the pool.
func (s *ScratchMatrix) Release() error { return nil }

// Close is the io.Closer spelling of Release.
func (s *ScratchMatrix) Close() error { return nil }

// Data mimics a neutral accessor.
func (s *ScratchMatrix) Data() []float64 { return nil }
