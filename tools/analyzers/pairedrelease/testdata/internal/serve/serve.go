// Package serve stubs the model registry surface for the
// pairedrelease golden suite.
package serve

import "errors"

// ErrModelClosed mirrors the real sentinel.
var ErrModelClosed = errors.New("model closed")

// Entry is a registered model slot.
type Entry struct{}

// Snapshot is a refcounted model version.
type Snapshot struct{}

// Acquire pins the current version; Release must run on every path.
func (e *Entry) Acquire() (*Snapshot, error) { return &Snapshot{}, nil }

// Release unpins the version.
func (s *Snapshot) Release() {}

// Predict mimics a neutral use of the snapshot.
func (s *Snapshot) Predict(x []float64) float64 { return 0 }
