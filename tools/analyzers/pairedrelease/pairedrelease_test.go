package pairedrelease_test

import (
	"testing"

	"m3/tools/analyzers/analysistest"
	"m3/tools/analyzers/pairedrelease"
)

func TestPairedRelease(t *testing.T) {
	analysistest.Run(t, "testdata", pairedrelease.Analyzer)
}
