// Package pairedrelease checks that pooled resources go back to
// their pools.
//
// Two acquire/release pairs in m3 are refcount- or pool-backed and
// leak capacity (not just memory) when the release half is skipped:
//
//   - (*core.Engine).AllocScratch → (*ScratchMatrix).Release/Close:
//     an unreleased scratch matrix permanently shrinks the engine's
//     scratch pool.
//   - (*serve.Entry).Acquire → (*Snapshot).Release: an unreleased
//     snapshot pins a model version in memory across hot-swaps.
//
// The walker in package lifetime does the path analysis, including
// the "if err != nil { return }" guard on the acquire's own error,
// which leaves the handle invalid on the error path.
package pairedrelease

import (
	"m3/tools/analyzers/analysis"
	"m3/tools/analyzers/lifetime"
)

// Analyzer flags acquired pool resources that are not released on
// every path.
var Analyzer = &analysis.Analyzer{
	Name: "pairedrelease",
	Doc:  "report scratch matrices and model snapshots that are acquired but not released on every path",
	Run:  run,
}

var spec = &lifetime.Spec{
	Opens: []lifetime.OpenSpec{
		{
			PkgPath: "m3/internal/core",
			Recv:    "Engine",
			Name:    "AllocScratch",
			Noun:    "scratch matrix",
			Verb:    "released",
			Fix:     "defer m.Release() (or Close) once the error is checked",
		},
		{
			PkgPath: "m3/internal/serve",
			Recv:    "Entry",
			Name:    "Acquire",
			Noun:    "model snapshot",
			Verb:    "released",
			Fix:     "defer snap.Release() once the error is checked",
		},
	},
	CloseMethods: map[string]bool{"Release": true, "Close": true},
	ChainMethods: map[string]bool{},
}

func run(pass *analysis.Pass) error {
	return lifetime.Run(pass, spec)
}
