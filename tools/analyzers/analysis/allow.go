package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// The //m3vet:allow escape hatch. A comment of the form
//
//	//m3vet:allow floateq -- labels are exact class ids
//	//m3vet:allow ctxpoll,maporder
//
// suppresses the named analyzers' diagnostics on the comment's own
// line and on the line immediately below it, so it works both as a
// trailing comment on the offending line and as a full-line comment
// above it. Everything after " -- " is a free-form justification; the
// convention (enforced by review, not the tool) is that every allow
// carries one.

const allowPrefix = "m3vet:allow"

// parseAllow extracts the analyzer names from one comment's text, or
// nil if the comment is not an allow directive.
func parseAllow(text string) []string {
	rest, ok := strings.CutPrefix(strings.TrimPrefix(text, "//"), allowPrefix)
	if !ok {
		return nil
	}
	rest = strings.TrimSpace(rest)
	if reason := strings.Index(rest, "--"); reason >= 0 {
		rest = strings.TrimSpace(rest[:reason])
	}
	if rest == "" {
		return nil
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// allowedLines maps "file:line" to the set of analyzer names allowed
// there for every directive in files.
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	allowed := make(map[string]map[string]bool)
	grant := func(pos token.Position, name string) {
		for _, line := range []int{pos.Line, pos.Line + 1} {
			key := posKey(pos.Filename, line)
			if allowed[key] == nil {
				allowed[key] = make(map[string]bool)
			}
			allowed[key][name] = true
		}
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if names == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, n := range names {
					grant(pos, n)
				}
			}
		}
	}
	return allowed
}

func posKey(filename string, line int) string {
	return filename + ":" + strconv.Itoa(line)
}

// Filter drops diagnostics suppressed by //m3vet:allow directives in
// files.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	allowed := allowedLines(fset, files)
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if names := allowed[posKey(pos.Filename, pos.Line)]; names != nil && names[d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
