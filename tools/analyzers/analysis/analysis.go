// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that m3's repo-specific
// vet passes are written against. The build environment for this repo
// is fully offline (the main module is deliberately zero-dependency),
// so instead of vendoring x/tools the tools module carries just the
// slice of the framework the m3vet analyzers need: an Analyzer is a
// named Run function over a type-checked package, diagnostics carry a
// position and a message, and a driver (cmd/m3vet, or the analysistest
// harness) owns loading, filtering and reporting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //m3vet:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant, shown by
	// m3vet -list.
	Doc string
	// Run checks one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes a on one package and returns its findings, already
// filtered through the //m3vet:allow directives in the package's
// files and sorted by position.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
	}
	diags := Filter(fset, files, pass.diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
