package lifetime

import (
	"go/ast"
	"go/token"
	"go/types"

	"m3/tools/analyzers/analysis"
)

// st is the handle's state along one path. Branch merges keep the
// most dangerous surviving state, so the ordering matters: an open
// handle on any fall-through path keeps the whole merge open.
type st int

const (
	stInactive st = iota // before the open statement runs
	stClosed             // closed (or known nil) on this path
	stDeferred           // a defer guarantees the close at exit
	stOpen               // open with no close scheduled
)

func merge(a, b st) st {
	if a > b {
		return a
	}
	return b
}

// checker walks one function body for one tracked open. escaped and
// leaked are global across paths: any escape silences the handle
// entirely (lenient), any unguarded return-while-open marks a leak.
type checker struct {
	pass    *analysis.Pass
	spec    *Spec
	open    *tracked
	escaped bool
	leaked  bool
}

// block walks stmts sequentially. It returns the state at the end and
// whether the block terminated (returned or panicked) rather than
// falling through.
func (c *checker) block(stmts []ast.Stmt, state st) (st, bool) {
	for _, s := range stmts {
		var terminated bool
		state, terminated = c.stmt(s, state)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func (c *checker) stmt(s ast.Stmt, state st) (st, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == c.open.assign {
			// The open itself. Arguments to the open call cannot use
			// the (not yet live) handle, so no use scan is needed.
			return stOpen, false
		}
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && identObj(c.pass, id) == c.open.handle {
				// Reassigned: the old value is unreachable, so an
				// open handle leaks here; whatever the variable holds
				// now is not the handle we track.
				if state == stOpen {
					c.leaked = true
				}
				return stClosed, false
			}
		}
		for i, rhs := range s.Rhs {
			// "_ = h" silences an unused variable; it moves nothing.
			if len(s.Lhs) == len(s.Rhs) {
				if lid, ok := s.Lhs[i].(*ast.Ident); ok && lid.Name == "_" {
					if rid, ok := ast.Unparen(rhs).(*ast.Ident); ok && identObj(c.pass, rid) == c.open.handle {
						continue
					}
				}
			}
			state = c.apply(state, c.scanExpr(rhs))
		}
		return state, false

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return state, true
			}
		}
		return c.apply(state, c.scanExpr(s.X)), false

	case *ast.DeferStmt:
		return c.deferStmt(s, state), false

	case *ast.GoStmt:
		if c.refs(s.Call) {
			c.escaped = true
		}
		return state, false

	case *ast.ReturnStmt:
		// scanExpr sorts the result expressions out: "return h" is an
		// escape to the caller, "return errors.Join(err, h.Release())"
		// is a close, "return h.Predict(x), nil" is a neutral use.
		for _, r := range s.Results {
			state = c.apply(state, c.scanExpr(r))
		}
		if state == stOpen && !c.escaped {
			c.leaked = true
		}
		return state, true

	case *ast.IfStmt:
		return c.ifStmt(s, state)

	case *ast.BlockStmt:
		return c.block(s.List, state)

	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, state)

	case *ast.ForStmt:
		state = c.walkParts(state, s.Init, s.Cond)
		if s.Post != nil {
			state, _ = c.stmt(s.Post, state)
		}
		out, _ := c.block(s.Body.List, state)
		// The body may run zero times: keep the more dangerous of
		// entry and exit states.
		return merge(state, out), false

	case *ast.RangeStmt:
		state = c.apply(state, c.scanExpr(s.X))
		out, _ := c.block(s.Body.List, state)
		return merge(state, out), false

	case *ast.SwitchStmt:
		state = c.walkParts(state, s.Init, s.Tag, nil)
		return c.clauses(s.Body, state, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			state, _ = c.stmt(s.Init, state)
		}
		return c.clauses(s.Body, state, true)

	case *ast.SelectStmt:
		// A select without a default blocks until some case runs, so
		// no default clause is needed for the clauses to cover every
		// path.
		return c.clauses(s.Body, state, false)

	case *ast.SendStmt:
		if c.refs(s.Value) {
			c.escaped = true
		}
		return state, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						state = c.apply(state, c.scanExpr(v))
					}
				}
			}
		}
		return state, false

	default:
		// IncDec, Branch, Empty, ...: nothing a handle flows through,
		// but scan defensively for stray uses.
		if c.refs(s) {
			c.escaped = true
		}
		return state, false
	}
}

// clauses merges the bodies of a switch/select. When needDefault is
// true (switch), the whole statement only terminates if every clause
// terminates AND a default clause exists — otherwise execution can
// fall through with the entry state.
func (c *checker) clauses(body *ast.BlockStmt, state st, needDefault bool) (st, bool) {
	out := stInactive
	allTerminated := len(body.List) > 0
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		clIn := state
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				clIn = c.apply(clIn, c.scanExpr(e))
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				clIn, _ = c.stmt(cl.Comm, clIn)
			}
			stmts = cl.Body
		}
		clOut, term := c.block(stmts, clIn)
		if !term {
			allTerminated = false
			out = merge(out, clOut)
		}
	}
	if allTerminated && (hasDefault || !needDefault) {
		return stClosed, true
	}
	if needDefault && !hasDefault {
		out = merge(out, state) // no clause may match
	}
	if out == stInactive {
		out = state
	}
	return out, false
}

func (c *checker) ifStmt(s *ast.IfStmt, state st) (st, bool) {
	if s.Init != nil {
		state, _ = c.stmt(s.Init, state)
	}

	thenIn, elseIn := state, state
	if obj, eqNil, ok := nilCheck(c.pass, s.Cond); ok {
		switch obj {
		case c.open.handle:
			// if h == nil → then-path h is nil; if h != nil →
			// else-path h is nil. "nil" counts as closed.
			if eqNil {
				thenIn = minState(thenIn)
			} else {
				elseIn = minState(elseIn)
			}
		case c.open.errObj:
			// err from the open assignment: err != nil means the
			// open failed and the handle is invalid on that path.
			if c.open.errObj != nil {
				if eqNil {
					elseIn = minState(elseIn)
				} else {
					thenIn = minState(thenIn)
				}
			}
		default:
			state = c.apply(state, c.scanExpr(s.Cond))
			thenIn, elseIn = state, state
		}
	} else {
		state = c.apply(state, c.scanExpr(s.Cond))
		thenIn, elseIn = state, state
	}

	thenOut, thenTerm := c.block(s.Body.List, thenIn)
	elseOut, elseTerm := elseIn, false
	if s.Else != nil {
		elseOut, elseTerm = c.stmt(s.Else, elseIn)
	}

	switch {
	case thenTerm && elseTerm:
		return stClosed, true
	case thenTerm:
		return elseOut, false
	case elseTerm:
		return thenOut, false
	default:
		return merge(thenOut, elseOut), false
	}
}

// minState maps any live state to closed: used for paths where the
// handle is known nil or invalid.
func minState(s st) st {
	if s == stInactive {
		return stInactive
	}
	return stClosed
}

func (c *checker) deferStmt(s *ast.DeferStmt, state st) st {
	call := s.Call
	// defer h.End() / defer h.Release()
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.spec.CloseMethods[sel.Sel.Name] {
		if id, ok := sel.X.(*ast.Ident); ok && identObj(c.pass, id) == c.open.handle {
			if state == stOpen {
				return stDeferred
			}
			return state
		}
	}
	// defer func() { ... h.End() ... }()
	if lit, ok := call.Fun.(*ast.FuncLit); ok && c.refs(lit) {
		if c.closesIn(lit.Body) {
			if state == stOpen {
				return stDeferred
			}
			return state
		}
		c.escaped = true
		return state
	}
	// defer cleanup(h): ownership handed to the cleanup.
	if c.refs(call) {
		c.escaped = true
	}
	return state
}

// closesIn reports whether any statement under n calls a close method
// directly on the handle.
func (c *checker) closesIn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.spec.CloseMethods[sel.Sel.Name] {
			if id, ok := sel.X.(*ast.Ident); ok && identObj(c.pass, id) == c.open.handle {
				found = true
			}
		}
		return true
	})
	return found
}

// use is the effect of an expression on the tracked handle.
type use int

const (
	useNone use = iota
	useNeutral
	useCloses
	useEscapes
)

func (c *checker) apply(state st, u use) st {
	switch u {
	case useCloses:
		if state == stOpen {
			return stClosed
		}
	case useEscapes:
		c.escaped = true
	}
	return state
}

// scanExpr classifies how e uses the handle. A close-method call on
// the handle closes it; other method calls and field reads are
// neutral; any other appearance (argument, composite literal, closure
// capture, address-of) is an escape.
func (c *checker) scanExpr(e ast.Expr) use {
	if e == nil {
		return useNone
	}
	out := useNone
	var visit func(n ast.Node)
	bump := func(u use) {
		if u > out {
			out = u
		}
	}
	children := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			if m != nil {
				visit(m)
			}
			return false
		})
	}
	visit = func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := c.chainReceiver(sel.X).(*ast.Ident); ok && identObj(c.pass, id) == c.open.handle {
					if c.spec.CloseMethods[sel.Sel.Name] {
						bump(useCloses)
					} else {
						bump(useNeutral) // receiver method call: neutral
					}
					for _, a := range n.Args {
						visit(a)
					}
					return
				}
			}
			children(n)
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok && identObj(c.pass, id) == c.open.handle {
				bump(useNeutral) // field read outside a call
				return
			}
			children(n)
		case *ast.FuncLit:
			if c.refs(n) {
				bump(useEscapes)
			}
		case *ast.Ident:
			if identObj(c.pass, n) == c.open.handle {
				bump(useEscapes)
			}
		default:
			children(n)
		}
	}
	visit(e)
	return out
}

// refs reports whether any identifier under n resolves to the handle.
func (c *checker) refs(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && identObj(c.pass, id) == c.open.handle {
			found = true
		}
		return true
	})
	return found
}

// walkParts scans loop/switch header expressions and the optional
// init statement for handle uses.
func (c *checker) walkParts(state st, init ast.Stmt, exprs ...ast.Expr) st {
	if init != nil {
		state, _ = c.stmt(init, state)
	}
	for _, e := range exprs {
		if e != nil {
			state = c.apply(state, c.scanExpr(e))
		}
	}
	return state
}

// chainReceiver unwraps fluent chain calls (sp.SetArg(...).End()) to
// the expression the chain started from.
func (c *checker) chainReceiver(e ast.Expr) ast.Expr {
	for {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return e
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !c.spec.ChainMethods[sel.Sel.Name] {
			return e
		}
		e = sel.X
	}
}

// nilCheck matches "x == nil" / "x != nil" and returns x's object.
func nilCheck(pass *analysis.Pass, e ast.Expr) (obj types.Object, eqNil, ok bool) {
	be, isBin := ast.Unparen(e).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
		// keep x
	} else if isNilIdent(x) {
		x = y
	} else {
		return nil, false, false
	}
	id, isIdent := x.(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	o := identObj(pass, id)
	if o == nil {
		return nil, false, false
	}
	return o, be.Op == token.EQL, true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
