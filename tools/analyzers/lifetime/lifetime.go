// Package lifetime is the shared flow walker behind the spanend and
// pairedrelease analyzers: it checks that a handle returned by an
// "open" call (a span start, a scratch allocation, a snapshot
// acquire) is closed on every path through the function that opened
// it.
//
// The walk is block-structured, not a full CFG, and deliberately
// lenient: whenever the handle's ownership plausibly moves somewhere
// else, analysis of that handle stops without a report. Ownership
// moves when the handle is passed as a call argument, returned,
// placed in a composite literal, captured by a (non-deferred)
// closure, assigned to another variable or field, or has its address
// taken. Receiver method calls on the handle are neutral.
//
// Closing is recognized three ways: a direct close-method call
// (sp.End(), m.Release()), a defer of that call, or a deferred
// closure whose body makes that call. The idiom
// "defer obs.StartSpan(...).End()" is recognized and never tracked.
//
// Nil handling mirrors how the codebase writes guarded opens:
//
//	if h != nil { ... }   // else-path treats h as already closed
//	if h == nil { ... }   // then-path treats h as already closed
//	if err != nil { ... } // err from the open's own assignment:
//	                      // then-path treats the handle as invalid
//
// so patterns like exec's conditionally-started scan span (open under
// "if tr != nil", ended under "if scanSpan != nil") check out clean.
//
// Diagnostics are reported at the open call, one per handle, so the
// //m3vet:allow directive goes on the line that opens the handle.
package lifetime

import (
	"go/ast"
	"go/types"

	"m3/tools/analyzers/analysis"
)

// Spec describes one analyzer's open/close pairing.
type Spec struct {
	Opens        []OpenSpec
	CloseMethods map[string]bool // method names on the handle that close it
	ChainMethods map[string]bool // fluent methods returning the same handle (SetArg)
}

// OpenSpec matches one open entry point by package path, optional
// receiver type, and name.
type OpenSpec struct {
	PkgPath string
	Recv    string // named receiver type ("" for a package-level function)
	Name    string
	Noun    string // "span", "scratch matrix", ...
	Verb    string // "ended", "released", ...
	Fix     string // suggested fix, e.g. "defer sp.End()"
}

// Run walks every function in the pass and checks each tracked open.
func Run(pass *analysis.Pass, spec *Spec) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeFunc(pass, spec, fd.Body)
			}
		}
	}
	return nil
}

// analyzeFunc finds the opens whose innermost enclosing function is
// body, checks each, then recurses into nested function literals.
func analyzeFunc(pass *analysis.Pass, spec *Spec, body *ast.BlockStmt) {
	for _, open := range collectOpens(pass, spec, body) {
		if open.discarded {
			os := open.spec
			pass.Reportf(open.call.Pos(), "%s is opened and discarded, so it is never %s; assign it and %s, or //m3vet:allow %s with a reason",
				os.Noun, os.Verb, os.Fix, pass.Analyzer.Name)
			continue
		}
		c := &checker{pass: pass, spec: spec, open: open}
		st, terminated := c.block(body.List, stInactive)
		if !terminated && st == stOpen {
			c.leaked = true
		}
		if c.leaked && !c.escaped {
			os := open.spec
			pass.Reportf(open.call.Pos(), "%s is not %s on every path through this function; %s, or //m3vet:allow %s with a reason",
				os.Noun, os.Verb, os.Fix, pass.Analyzer.Name)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			analyzeFunc(pass, spec, fl.Body)
			return false
		}
		return true
	})
}

// tracked is one open site: the assignment that received the handle
// (nil when discarded), the base open call, and the objects involved.
type tracked struct {
	spec      *OpenSpec
	assign    *ast.AssignStmt
	call      *ast.CallExpr
	handle    types.Object
	errObj    types.Object // second result of the open assignment, if any
	discarded bool
}

// collectOpens scans body — without descending into nested function
// literals — for open calls worth tracking or reporting.
func collectOpens(pass *analysis.Pass, spec *Spec, body *ast.BlockStmt) []*tracked {
	var opens []*tracked
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // belongs to the nested function's analysis
		case *ast.DeferStmt:
			// defer obs.StartSpan(...).End() — open and close in one
			// statement; skip the whole subtree.
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && spec.CloseMethods[sel.Sel.Name] {
				if inner, ok := sel.X.(*ast.CallExpr); ok && unwrapOpen(pass, spec, inner) != nil {
					return false
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			os, base := matchOpenChain(pass, spec, call)
			if os == nil {
				return true
			}
			t := &tracked{spec: os, assign: n, call: base}
			if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				t.handle = identObj(pass, id)
			}
			if t.handle == nil {
				// Discarded via _ or stored into a field/index: a
				// blank assign is a definite leak; a field store is
				// an ownership transfer we leave alone.
				if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					t.discarded = true
					opens = append(opens, t)
				}
				return false
			}
			if len(n.Lhs) > 1 {
				if id, ok := n.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
					t.errObj = identObj(pass, id)
				}
			}
			opens = append(opens, t)
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if os, base := matchOpenChain(pass, spec, call); os != nil {
					opens = append(opens, &tracked{spec: os, call: base, discarded: true})
					return false
				}
			}
		}
		return true
	})
	return opens
}

// matchOpenChain unwraps fluent chain methods (sp.SetArg(...)) and
// matches the base call against the spec's open entry points.
func matchOpenChain(pass *analysis.Pass, spec *Spec, call *ast.CallExpr) (*OpenSpec, *ast.CallExpr) {
	for {
		if os := matchOpen(pass, spec, call); os != nil {
			return os, call
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !spec.ChainMethods[sel.Sel.Name] {
			return nil, nil
		}
		inner, ok := sel.X.(*ast.CallExpr)
		if !ok {
			return nil, nil
		}
		call = inner
	}
}

func unwrapOpen(pass *analysis.Pass, spec *Spec, call *ast.CallExpr) *OpenSpec {
	os, _ := matchOpenChain(pass, spec, call)
	return os
}

func matchOpen(pass *analysis.Pass, spec *Spec, call *ast.CallExpr) *OpenSpec {
	fn, ok := calleeObj(pass, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := range spec.Opens {
		os := &spec.Opens[i]
		if fn.Pkg().Path() != os.PkgPath || fn.Name() != os.Name {
			continue
		}
		recv := sig.Recv()
		if os.Recv == "" {
			if recv == nil {
				return os
			}
			continue
		}
		if recv != nil && namedName(recv.Type()) == os.Recv {
			return os
		}
	}
	return nil
}

func namedName(t types.Type) string {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := types.Unalias(t).(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func calleeObj(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fun.Sel]
	}
	return nil
}

func identObj(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}
