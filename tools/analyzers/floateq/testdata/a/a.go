// Package a holds floateq golden cases. Regression cases at the
// bottom mirror in-tree violations the analyzer caught when it was
// introduced, so the fixes cannot silently regress.
package a

type temps []float64

const defaultStep = 0.5

func comparisons(a, b float64, f32, g32 float32, xs []float64, t temps) bool {
	if a == b { // want `floateq: == compares computed floating-point values`
		return true
	}
	if f32 == g32 { // want `floateq: == compares computed floating-point values`
		return true
	}
	if xs[0] == a { // want `floateq: == compares computed floating-point values`
		return true
	}
	// Named types with a float core type count too.
	if t[0] == a { // want `floateq: == compares computed floating-point values`
		return true
	}
	return false
}

func fine(a, b float64, n, m int, s string) bool {
	// Ordered comparisons and non-float equality are fine.
	if a < b || a >= b {
		return true
	}
	if n == m || s == "x" {
		return true
	}
	// Tolerance-style comparison, the recommended fix.
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// constComparisons are exempt: sparsity fast paths, option defaults,
// and binary-label encodings compare against values that were
// assigned exactly.
func constComparisons(alpha, beta, y float64, step float64) bool {
	if alpha == 0 { // BLAS skip-zero fast path
		return true
	}
	if beta != 1 { // scale-needed check
		return true
	}
	if y != 0 && y != 1 { // binary label validation
		return true
	}
	if step == defaultStep { // named constant
		return true
	}
	return 2.5 == alpha // constant on either side
}

// nanChecks use the portable x != x idiom, which is exempt.
func nanChecks(loss float64, grad []float64, i int) bool {
	if loss != loss {
		return true
	}
	return grad[i] != grad[i]
}

// nearlyNaNCheck compares two different elements, which is not the
// NaN idiom.
func nearlyNaNCheck(grad []float64, i, j int) bool {
	return grad[i] != grad[j] // want `floateq: != compares computed floating-point values`
}

func allowed(v, positive float64) bool {
	// The escape hatch: exactness is the point here.
	if v == positive { //m3vet:allow floateq -- labels are exact class ids
		return true
	}
	//m3vet:allow floateq -- bit-parity check, exact by design
	return v != positive
}

// Regression: internal/core Dataset.BinaryLabels compares raw labels
// against the positive class with ==; that one is deliberate (labels
// are exact ids) and carries an allow directive in-tree. The same
// comparison without the directive must be reported.
func binaryLabels(labels []float64, positive float64) []float64 {
	out := make([]float64, len(labels))
	for i, v := range labels {
		if v == positive { // want `floateq: == compares computed floating-point values`
			out[i] = 1
		}
	}
	return out
}

// Regression: internal/optimize's line search compared the found step
// against the moving bracket ends (alpha == lo || alpha == hi); both
// operands are computed, so the in-tree site carries an allow
// directive and the bare form must be reported.
func bracketHit(alpha, lo, hi float64) bool {
	if alpha == lo || alpha == hi { // want `floateq: == compares computed floating-point values` `floateq: == compares computed floating-point values`
		return true
	}
	return false
}

// Regression: internal/core Dataset.IntLabels validates integrality
// with float64(n) != v — a computed-vs-computed comparison that is
// deliberate in-tree (allow directive) but must be reported bare.
func intLabels(labels []float64) []int {
	out := make([]int, len(labels))
	for i, v := range labels {
		n := int(v)
		if float64(n) != v { // want `floateq: != compares computed floating-point values`
			return nil
		}
		out[i] = n
	}
	return out
}
