package floateq_test

import (
	"testing"

	"m3/tools/analyzers/analysistest"
	"m3/tools/analyzers/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "testdata", floateq.Analyzer)
}
