// Package floateq reports == and != comparisons between
// floating-point operands in production code.
//
// The invariant: m3's determinism story is that identical inputs give
// bit-identical outputs for any worker count — which the parity test
// suites pin by comparing floats exactly, deliberately. Outside those
// suites an equality between two computed floats is almost always a
// latent bug (a tolerance check miswritten, a sentinel that stops
// matching after one rounding change). Production code therefore
// never compares computed floats with ==/!=; deliberate exact
// comparisons carry a `//m3vet:allow floateq -- reason` directive.
//
// Two comparison shapes are exempt by design:
//
//   - Comparisons against a compile-time constant (v == 0, y != 1,
//     alpha == DefaultStep). These test sparsity fast paths, option
//     defaults, and binary-label encodings whose values were assigned
//     exactly; IEEE equality against such a constant is well-defined
//     and pervasive in the BLAS kernels.
//   - x != x (and x == x) where both operands are textually the same
//     expression: the portable NaN check used in the hot loops that
//     cannot afford math.IsNaN's abi boundary.
//
// Test files are out of scope by construction: the loader only feeds
// analyzers non-test sources.
package floateq

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"m3/tools/analyzers/analysis"
)

// Analyzer reports float ==/!= in non-test code.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "reports ==/!= between computed floating-point operands in non-test " +
		"code; constant comparisons and the x != x NaN idiom are exempt, and " +
		"deliberate exact comparisons (label matching, bit-parity) take a " +
		"//m3vet:allow floateq directive with a justification",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypesInfo.TypeOf(be.X)) && !isFloat(pass.TypesInfo.TypeOf(be.Y)) {
				return true
			}
			if isConst(pass, be.X) || isConst(pass, be.Y) {
				return true
			}
			if sameExpr(be.X, be.Y) {
				return true // x != x: the NaN check
			}
			pass.Reportf(be.OpPos,
				"%s compares computed floating-point values for exact equality; use a tolerance, or //m3vet:allow floateq with a reason if exactness is the point",
				be.Op)
			return true
		})
	}
	return nil
}

// isConst reports whether e is a compile-time constant expression.
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// sameExpr reports whether two expressions are textually identical —
// enough to recognize the x != x NaN idiom without a printer.
func sameExpr(a, b ast.Expr) bool {
	var fa, fb strings.Builder
	if printer.Fprint(&fa, token.NewFileSet(), a) != nil ||
		printer.Fprint(&fb, token.NewFileSet(), b) != nil {
		return false
	}
	return fa.String() == fb.String()
}

// isFloat reports whether t's core type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
