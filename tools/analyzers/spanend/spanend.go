// Package spanend checks that every trace span is ended.
//
// obs.StartSpan and (*obs.Trace).Start hand back a *Span that must be
// End()ed on every path: a span that is never ended keeps its trace's
// ring slot open and skews duration histograms silently, because End
// is what stamps the duration and publishes the record. The walker in
// package lifetime does the path analysis; this package only supplies
// the open/close vocabulary (SetArg chains count as the same span,
// "defer obs.StartSpan(...).End()" is the canonical idiom).
package spanend

import (
	"m3/tools/analyzers/analysis"
	"m3/tools/analyzers/lifetime"
)

// Analyzer flags spans that are not ended on every path.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "report trace spans that are started but not ended on every path",
	Run:  run,
}

var spec = &lifetime.Spec{
	Opens: []lifetime.OpenSpec{
		{
			PkgPath: "m3/internal/obs",
			Name:    "StartSpan",
			Noun:    "span",
			Verb:    "ended",
			Fix:     "defer sp.End() right after the start",
		},
		{
			PkgPath: "m3/internal/obs",
			Recv:    "Trace",
			Name:    "Start",
			Noun:    "span",
			Verb:    "ended",
			Fix:     "defer sp.End() right after the start",
		},
	},
	CloseMethods: map[string]bool{"End": true},
	ChainMethods: map[string]bool{"SetArg": true},
}

func run(pass *analysis.Pass) error {
	return lifetime.Run(pass, spec)
}
