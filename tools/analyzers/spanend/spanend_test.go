package spanend_test

import (
	"testing"

	"m3/tools/analyzers/analysistest"
	"m3/tools/analyzers/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata", spanend.Analyzer)
}
