// Package obs stubs the tracing surface for the spanend golden
// suite: same import path, type names, and signatures as the real
// m3/internal/obs, no behavior.
package obs

// Trace is a stub trace handle.
type Trace struct{}

// Span is a stub span; End must be called on every path.
type Span struct{}

// Enabled mimics the tracing on/off switch.
func Enabled() bool { return false }

// Default mimics the process-wide trace accessor.
func Default() *Trace { return nil }

// StartSpan opens a span on the default trace.
func StartSpan(cat, name string) *Span { return &Span{} }

// Start opens a span on a specific trace.
func (t *Trace) Start(cat, name string) *Span { return &Span{} }

// SetArg attaches an argument and returns the same span for chaining.
func (s *Span) SetArg(key string, v any) *Span { return s }

// End closes the span. Nil-safe and idempotent, like the real one.
func (s *Span) End() {}
