// Package a exercises the spanend analyzer: every started span must
// be ended on every path, with ownership transfers left alone.
package a

import "m3/internal/obs"

func work() {}

func register(sp *obs.Span) {}

// neverEnded is the plain leak.
func neverEnded() {
	sp := obs.StartSpan("a", "never") // want `spanend: span is not ended on every path`
	_ = sp
	work()
}

// deferEnd is the canonical fix.
func deferEnd() {
	sp := obs.StartSpan("a", "defer")
	defer sp.End()
	work()
}

// oneLiner opens and defers the close in a single statement.
func oneLiner() {
	defer obs.StartSpan("a", "oneliner").End()
	work()
}

// chainedOpen tracks through the SetArg chain to the start call.
func chainedOpen(rows int) {
	sp := obs.StartSpan("a", "chain").SetArg("rows", rows)
	defer sp.End()
	work()
}

// chainedLeak leaks even though SetArg touches the span later.
func chainedLeak(rows int) {
	sp := obs.StartSpan("a", "chainleak") // want `spanend: span is not ended on every path`
	sp.SetArg("rows", rows)
	work()
}

// earlyReturn ends the span on the fall-through path only.
func earlyReturn(skip bool) {
	sp := obs.StartSpan("a", "early") // want `spanend: span is not ended on every path`
	if skip {
		return
	}
	work()
	sp.End()
}

// bothPaths ends the span explicitly on each return path.
func bothPaths(skip bool) {
	sp := obs.StartSpan("a", "both")
	if skip {
		sp.End()
		return
	}
	work()
	sp.End()
}

// chainClose ends through a fluent chain.
func chainClose(n int) {
	sp := obs.StartSpan("a", "chainclose")
	work()
	sp.SetArg("n", n).End()
}

// discarded never even binds the span.
func discarded() {
	obs.StartSpan("a", "discarded") // want `spanend: span is opened and discarded`
	work()
}

// blankAssign is the same leak spelled with an underscore.
func blankAssign() {
	_ = obs.StartSpan("a", "blank") // want `spanend: span is opened and discarded`
	work()
}

// conditionalScanSpan mirrors exec.go's guarded span: opened under a
// trace-nil guard, ended under a span-nil guard. Clean.
func conditionalScanSpan(tr *obs.Trace, rows int) {
	var scanSpan *obs.Span
	if tr != nil {
		scanSpan = tr.Start("exec", "scan").SetArg("rows", rows)
	}
	work()
	if scanSpan != nil {
		scanSpan.End()
	}
}

// guardedDefer mirrors estimator.go: open and defer both live inside
// the enabled-guard, so the defer covers every path the span exists
// on. Clean.
func guardedDefer(rows int) {
	if obs.Enabled() {
		sp := obs.StartSpan("core", "fit").SetArg("rows", rows)
		defer sp.End()
	}
	work()
}

// conditionalDeferOnly defers the end on one branch but the span is
// open on both: the no-defer path leaks.
func conditionalDeferOnly(verbose bool) {
	sp := obs.StartSpan("a", "conddefer") // want `spanend: span is not ended on every path`
	if verbose {
		defer sp.End()
	}
	work()
}

// handedOff transfers ownership to register; not this function's
// leak.
func handedOff() {
	sp := obs.StartSpan("a", "handoff")
	register(sp)
}

// returned transfers ownership to the caller.
func returned() *obs.Span {
	sp := obs.StartSpan("a", "returned")
	return sp
}

// deferredClosure closes via a deferred closure.
func deferredClosure() {
	sp := obs.StartSpan("a", "closure")
	defer func() {
		sp.End()
	}()
	work()
}

// capturedClosure hands the span to a stored closure: ownership is
// ambiguous, so the walker stays quiet.
func capturedClosure() func() {
	sp := obs.StartSpan("a", "captured")
	return func() { sp.End() }
}

// insideLiteral checks that function literals are analyzed as their
// own functions.
func insideLiteral() func() {
	return func() {
		sp := obs.StartSpan("a", "inlit") // want `spanend: span is not ended on every path`
		_ = sp
		work()
	}
}

// switchFallThrough only ends the span when a case matches; with no
// default the span can fall through still open.
func switchFallThrough(v int) {
	sp := obs.StartSpan("a", "switch") // want `spanend: span is not ended on every path`
	switch v {
	case 1:
		sp.End()
	}
	work()
}

// switchAllPaths covers every case including default. Clean.
func switchAllPaths(v int) {
	sp := obs.StartSpan("a", "switchall")
	switch v {
	case 1:
		sp.End()
	default:
		sp.End()
	}
	work()
}

// allowed uses the escape hatch: the span is ended by the pool that
// adopts it.
func allowed() {
	sp := obs.StartSpan("a", "allowed") //m3vet:allow spanend -- adopted by the flush goroutine, which ends it
	_ = sp
	work()
}
