// Package m3 scales machine-learning algorithms to datasets that
// exceed RAM by memory-mapping them — a Go reproduction of "M3:
// Scaling Up Machine Learning via Memory Mapping" (Fang & Chau,
// SIGMOD 2016).
//
// The idea (the paper's Table 1): code written against an in-memory
// matrix keeps working when the matrix becomes a view over a
// memory-mapped file, because the OS pages data in and out of RAM on
// the program's behalf. Switching a workload out-of-core is a
// one-line change of how the engine is configured:
//
//	eng := m3.New(m3.Config{Mode: m3.MemoryMapped}) // ← the change
//	defer eng.Close()
//	tbl, err := eng.Open("digits.m3")
//
// # The estimator surface
//
// Training goes through one algorithm-agnostic entry point,
// Engine.Fit, which accepts any Estimator — logistic regression,
// k-means, PCA, ... — and returns a fitted Model (Predict,
// PredictMatrix, Save):
//
//	est := m3.LogisticRegression{Binarize: true, Positive: 0}
//	model, err := eng.Fit(ctx, est, tbl)
//
// Fits are cancellable: ctx takes effect within one data block of a
// scan or one optimizer iteration, so even minutes-long out-of-core
// passes stop promptly. The engine threads its Workers pool, store
// accounting and prefetch settings into every trainer; per-fit
// overrides live in the FitOptions each algorithm's options embed.
// Results are bit-identical for every worker count and every storage
// backend. For heap matrices that never touch an engine there is the
// standalone form:
//
//	model, err := m3.Fit(ctx, est, x, labels)
//
// # Transformers and pipelines
//
// Preprocessing shares the surface: StandardScaler, MinMaxScaler and
// PrincipalComponents are Transformers whose fitted stages
// materialize transformed datasets through the engine (heap below the
// memory budget, mmap-backed temp files above), and Pipeline chains
// transformers into a final estimator while remaining an Estimator
// itself:
//
//	pipe := m3.Pipeline{
//	    Stages:    []m3.Transformer{m3.StandardScaler{}},
//	    Estimator: m3.LogisticRegression{Binarize: true},
//	}
//	model, err := eng.Fit(ctx, pipe, tbl) // scale → train, out-of-core throughout
//
// Fitted models round-trip: Model.Save writes a self-describing
// envelope (nested per stage for pipelines) and m3.Load reconstructs
// the fitted model from it.
//
// The v1 free-function surface (TrainLogistic, KMeans, ...) was
// removed in v3; every workload goes through Engine.Fit / m3.Fit.
//
// See the examples/ directory for runnable end-to-end programs and
// cmd/m3bench for the harness that regenerates the paper's figures.
package m3

import (
	"context"

	"m3/internal/core"
	"m3/internal/dataset"
	"m3/internal/infimnist"
	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/knn"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/modelio"
	"m3/internal/ml/pca"
	"m3/internal/ml/sgd"
	"m3/internal/mmap"
	"m3/internal/optimize"
)

// Matrix is a dense row-major float64 matrix whose backing store may
// be the Go heap or a memory-mapped file; algorithms cannot tell the
// difference.
type Matrix = mat.Dense

// NewMatrix allocates a rows×cols heap matrix (the "Original" path).
func NewMatrix(rows, cols int) *Matrix { return mat.NewDense(rows, cols) }

// WrapMatrix views an existing slice (length >= rows*cols) as a
// matrix without copying; the slice may come from any source,
// including a raw memory mapping.
func WrapMatrix(data []float64, rows, cols int) *Matrix {
	return mat.NewDenseFrom(data, rows, cols)
}

// Engine manages M3 datasets: it opens files with transparent
// backend selection (heap below the memory budget, mmap above),
// trains any Estimator via Fit, and releases every resource on Close.
type Engine = core.Engine

// Config parameterizes an Engine.
type Config = core.Config

// Table is an opened dataset (matrix + optional labels).
type Table = core.Table

// Mode selects a storage backend explicitly.
type Mode = core.Mode

// Backend modes.
const (
	// Auto picks heap or mmap by file size against the budget.
	Auto = core.Auto
	// InMemory always loads to the heap.
	InMemory = core.InMemory
	// MemoryMapped always maps.
	MemoryMapped = core.MemoryMapped
)

// New creates an engine.
func New(cfg Config) *Engine { return core.New(cfg) }

// Advice hints the kernel about a mapping's access pattern.
type Advice = mmap.Advice

// Access-pattern hints (madvise).
const (
	AdviseNormal     = mmap.Normal
	AdviseSequential = mmap.Sequential
	AdviseRandom     = mmap.Random
	AdviseWillNeed   = mmap.WillNeed
	AdviseDontNeed   = mmap.DontNeed
)

// MapFloat64 memory-maps an existing raw file of float64 values
// read-only — the lowest-level M3 primitive. The returned closer
// unmaps.
func MapFloat64(path string) ([]float64, func() error, error) {
	fs, region, err := mmap.OpenFloat64(path)
	if err != nil {
		return nil, nil, err
	}
	return fs, region.Unmap, nil
}

// AllocFloat64 creates a file of n float64 and maps it read-write —
// the paper's mmapAlloc helper.
func AllocFloat64(path string, n int64) ([]float64, func() error, error) {
	fs, region, err := mmap.AllocFloat64(path, n)
	if err != nil {
		return nil, nil, err
	}
	return fs, region.Unmap, nil
}

// --- Datasets --------------------------------------------------------

// WriteDataset writes a row-major matrix (and optional labels, may be
// nil) as an M3 dataset file.
func WriteDataset(path string, data []float64, rows, cols int64, labels []float64) error {
	return dataset.WriteMatrix(path, data, rows, cols, labels)
}

// GenerateInfimnist streams n deterministic MNIST-like digit images
// (784 features each, labels 0–9) to an M3 dataset file — the
// workload generator for the paper's experiments.
func GenerateInfimnist(path string, n int64, seed uint64) error {
	return infimnist.Generator{Seed: seed}.WriteDataset(path, n)
}

// InfimnistFeatures is the per-image feature count (28×28 = 784).
const InfimnistFeatures = infimnist.Features

// --- Algorithm option and inner-model types ---------------------------

// LogisticOptions configures binary logistic regression training.
type LogisticOptions = logreg.Options

// LogisticModel is a trained binary classifier.
type LogisticModel = logreg.Model

// SoftmaxModel is a trained multiclass classifier.
type SoftmaxModel = logreg.SoftmaxModel

// KMeansOptions configures clustering.
type KMeansOptions = kmeans.Options

// KMeansResult is a completed clustering.
type KMeansResult = kmeans.Result

// MiniBatchKMeansOptions configures the mini-batch variant.
type MiniBatchKMeansOptions = kmeans.MiniBatchOptions

// Neighbor is one k-nearest-neighbor search result.
type Neighbor = knn.Neighbor

// SearchNeighbors answers a batch of queries with one blocked parallel
// scan of the reference matrix; ctx cancels within one block.
func SearchNeighbors(ctx context.Context, refs, queries *Matrix, k int, opts KNNOptions) ([][]Neighbor, error) {
	return knn.Search(ctx, refs, queries, k, opts)
}

// LinearOptions configures linear (ridge) regression.
type LinearOptions = linreg.Options

// LinearModel is a fitted linear regressor.
type LinearModel = linreg.Model

// SGDOptions configures stochastic gradient descent training.
type SGDOptions = sgd.Options

// OnlineLearner is a streaming logistic-regression learner: one
// Update per arriving example, no dataset required.
type OnlineLearner = sgd.Learner

// NewOnlineLearner creates a streaming learner for dim features.
func NewOnlineLearner(dim int, learningRate, lambda float64) (*OnlineLearner, error) {
	return sgd.NewLearner(dim, learningRate, lambda)
}

// BayesModel is a fitted Gaussian naive Bayes classifier.
type BayesModel = bayes.Model

// PCAOptions configures principal component analysis.
type PCAOptions = pca.Options

// PCAResult is a fitted decomposition.
type PCAResult = pca.Result

// SaveModel persists a trained inner model (logistic, softmax,
// linear, k-means, naive Bayes, PCA, a fitted scaler or a
// modelio-form pipeline) to path in a self-describing format. Fitted
// models from Engine.Fit expose this as Model.Save; the round-trip
// counterpart is Load.
func SaveModel(path string, model any) error {
	return modelio.SaveFile(path, model)
}

// LoadModel reads a model saved by SaveModel, returning the raw inner
// value (one of the model pointer types; the ModelKind tags which).
// Use Load to get the fitted Model wrapper instead.
func LoadModel(path string) (any, ModelKind, error) {
	return modelio.LoadFile(path)
}

// ModelKind tags a persisted model type.
type ModelKind = modelio.Kind

// ModelInfo describes a saved model: its kind plus the shape metadata
// stamped into the file header at save time. A serving layer uses it
// to validate request width and render model listings without
// touching concrete model types.
type ModelInfo struct {
	// Kind tags the persisted model type ("logistic", "pipeline", …).
	Kind ModelKind
	// InputCols is the feature width Predict expects.
	InputCols int
	// OutputCols is the transformed width for transformer kinds; 0
	// for pure predictors.
	OutputCols int
	// Classes counts distinct prediction values — classes for
	// classifiers, clusters for k-means, 0 for regression and
	// transformers.
	Classes int
	// Stages lists a pipeline's stage kinds in order, nil otherwise.
	Stages []ModelKind
}

func modelInfo(kind modelio.Kind, meta modelio.Meta) ModelInfo {
	return ModelInfo{
		Kind:       kind,
		InputCols:  meta.InputCols,
		OutputCols: meta.OutputCols,
		Classes:    meta.Classes,
		Stages:     meta.Stages,
	}
}

// Describe reads a saved model's kind and shape metadata from the
// file header alone — the payload (which for a big pipeline or PCA
// basis dominates the file) is never decoded.
func Describe(path string) (ModelInfo, error) {
	kind, meta, err := modelio.DescribeFile(path)
	if err != nil {
		return ModelInfo{}, err
	}
	return modelInfo(kind, meta), nil
}

// IterInfo is passed to optimizer and FitOptions callbacks.
type IterInfo = optimize.IterInfo
