// Package m3 scales machine-learning algorithms to datasets that
// exceed RAM by memory-mapping them — a Go reproduction of "M3:
// Scaling Up Machine Learning via Memory Mapping" (Fang & Chau,
// SIGMOD 2016).
//
// The idea (the paper's Table 1): code written against an in-memory
// matrix keeps working when the matrix becomes a view over a
// memory-mapped file, because the OS pages data in and out of RAM on
// the program's behalf. Switching a workload out-of-core is a
// one-line change of how the engine is configured:
//
//	eng := m3.New(m3.Config{Mode: m3.MemoryMapped}) // ← the change
//	defer eng.Close()
//	tbl, err := eng.Open("digits.m3")
//
// # The estimator surface
//
// Training goes through one algorithm-agnostic entry point,
// Engine.Fit, which accepts any Estimator — logistic regression,
// k-means, PCA, ... — and returns a fitted Model (Predict,
// PredictMatrix, Save):
//
//	est := m3.LogisticRegression{Binarize: true, Positive: 0}
//	model, err := eng.Fit(ctx, est, tbl)
//
// Fits are cancellable: ctx takes effect within one data block of a
// scan or one optimizer iteration, so even minutes-long out-of-core
// passes stop promptly. The engine threads its Workers pool, store
// accounting and prefetch settings into every trainer; per-fit
// overrides live in the FitOptions each algorithm's options embed.
// Results are bit-identical for every worker count and every storage
// backend. For heap matrices that never touch an engine there is the
// standalone form:
//
//	model, err := m3.Fit(ctx, est, x, labels)
//
// The v1 free functions (TrainLogistic, KMeans, ...) remain as thin
// deprecated wrappers over the same trainers.
//
// See the examples/ directory for runnable end-to-end programs and
// cmd/m3bench for the harness that regenerates the paper's figures.
package m3

import (
	"context"

	"m3/internal/core"
	"m3/internal/dataset"
	"m3/internal/infimnist"
	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/knn"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/modelio"
	"m3/internal/ml/pca"
	"m3/internal/ml/sgd"
	"m3/internal/mmap"
	"m3/internal/optimize"
)

// Matrix is a dense row-major float64 matrix whose backing store may
// be the Go heap or a memory-mapped file; algorithms cannot tell the
// difference.
type Matrix = mat.Dense

// NewMatrix allocates a rows×cols heap matrix (the "Original" path).
func NewMatrix(rows, cols int) *Matrix { return mat.NewDense(rows, cols) }

// WrapMatrix views an existing slice (length >= rows*cols) as a
// matrix without copying; the slice may come from any source,
// including a raw memory mapping.
func WrapMatrix(data []float64, rows, cols int) *Matrix {
	return mat.NewDenseFrom(data, rows, cols)
}

// Engine manages M3 datasets: it opens files with transparent
// backend selection (heap below the memory budget, mmap above),
// trains any Estimator via Fit, and releases every resource on Close.
type Engine = core.Engine

// Config parameterizes an Engine.
type Config = core.Config

// Table is an opened dataset (matrix + optional labels).
type Table = core.Table

// Mode selects a storage backend explicitly.
type Mode = core.Mode

// Backend modes.
const (
	// Auto picks heap or mmap by file size against the budget.
	Auto = core.Auto
	// InMemory always loads to the heap.
	InMemory = core.InMemory
	// MemoryMapped always maps.
	MemoryMapped = core.MemoryMapped
)

// New creates an engine.
func New(cfg Config) *Engine { return core.New(cfg) }

// Advice hints the kernel about a mapping's access pattern.
type Advice = mmap.Advice

// Access-pattern hints (madvise).
const (
	AdviseNormal     = mmap.Normal
	AdviseSequential = mmap.Sequential
	AdviseRandom     = mmap.Random
	AdviseWillNeed   = mmap.WillNeed
	AdviseDontNeed   = mmap.DontNeed
)

// MapFloat64 memory-maps an existing raw file of float64 values
// read-only — the lowest-level M3 primitive. The returned closer
// unmaps.
func MapFloat64(path string) ([]float64, func() error, error) {
	fs, region, err := mmap.OpenFloat64(path)
	if err != nil {
		return nil, nil, err
	}
	return fs, region.Unmap, nil
}

// AllocFloat64 creates a file of n float64 and maps it read-write —
// the paper's mmapAlloc helper.
func AllocFloat64(path string, n int64) ([]float64, func() error, error) {
	fs, region, err := mmap.AllocFloat64(path, n)
	if err != nil {
		return nil, nil, err
	}
	return fs, region.Unmap, nil
}

// --- Datasets --------------------------------------------------------

// WriteDataset writes a row-major matrix (and optional labels, may be
// nil) as an M3 dataset file.
func WriteDataset(path string, data []float64, rows, cols int64, labels []float64) error {
	return dataset.WriteMatrix(path, data, rows, cols, labels)
}

// GenerateInfimnist streams n deterministic MNIST-like digit images
// (784 features each, labels 0–9) to an M3 dataset file — the
// workload generator for the paper's experiments.
func GenerateInfimnist(path string, n int64, seed uint64) error {
	return infimnist.Generator{Seed: seed}.WriteDataset(path, n)
}

// InfimnistFeatures is the per-image feature count (28×28 = 784).
const InfimnistFeatures = infimnist.Features

// --- v1 training surface (deprecated thin wrappers) ------------------

// LogisticOptions configures binary logistic regression training.
type LogisticOptions = logreg.Options

// LogisticModel is a trained binary classifier.
type LogisticModel = logreg.Model

// TrainLogistic fits binary logistic regression with L-BFGS; labels
// must be 0 or 1. The matrix may be heap- or mmap-backed.
//
// Deprecated: use Engine.Fit (or Fit) with LogisticRegression, which
// adds cancellation and engine-threaded parallelism.
func TrainLogistic(x *Matrix, y []float64, opts LogisticOptions) (*LogisticModel, error) {
	return logreg.Train(context.Background(), x, y, opts)
}

// SoftmaxModel is a trained multiclass classifier.
type SoftmaxModel = logreg.SoftmaxModel

// TrainSoftmax fits K-class softmax regression with L-BFGS; labels
// must be in [0, classes).
//
// Deprecated: use Engine.Fit (or Fit) with SoftmaxRegression.
func TrainSoftmax(x *Matrix, y []int, classes int, opts LogisticOptions) (*SoftmaxModel, error) {
	return logreg.TrainSoftmax(context.Background(), x, y, classes, opts)
}

// KMeansOptions configures clustering.
type KMeansOptions = kmeans.Options

// KMeansResult is a completed clustering.
type KMeansResult = kmeans.Result

// KMeans clusters the rows of x with Lloyd's algorithm (k-means++
// initialization by default).
//
// Deprecated: use Engine.Fit (or Fit) with KMeansClustering.
func KMeans(x *Matrix, opts KMeansOptions) (*KMeansResult, error) {
	return kmeans.Run(context.Background(), x, opts)
}

// MiniBatchKMeansOptions configures the mini-batch variant.
type MiniBatchKMeansOptions = kmeans.MiniBatchOptions

// MiniBatchKMeans clusters with Sculley-style mini-batch updates —
// each step touches only a batch of rows, the I/O-frugal choice for
// out-of-core data.
//
// Deprecated: use Engine.Fit (or Fit) with MiniBatchClustering.
func MiniBatchKMeans(x *Matrix, opts MiniBatchKMeansOptions) (*KMeansResult, error) {
	return kmeans.MiniBatch(context.Background(), x, opts)
}

// Neighbor is one k-nearest-neighbor search result.
type Neighbor = knn.Neighbor

// NearestNeighbors answers a batch of queries with one blocked
// parallel scan of the (possibly mapped) reference matrix.
//
// Deprecated: use Engine.Fit (or Fit) with KNNClassifier, or
// SearchNeighbors for the raw neighbor lists with context and
// worker control.
func NearestNeighbors(refs, queries *Matrix, k int) ([][]Neighbor, error) {
	return knn.Search(context.Background(), refs, queries, k, knn.Options{})
}

// SearchNeighbors answers a batch of queries with one blocked parallel
// scan of the reference matrix; ctx cancels within one block.
func SearchNeighbors(ctx context.Context, refs, queries *Matrix, k int, opts KNNOptions) ([][]Neighbor, error) {
	return knn.Search(ctx, refs, queries, k, opts)
}

// KNNClassify predicts labels by majority vote among the k nearest
// labelled reference rows.
//
// Deprecated: use Engine.Fit (or Fit) with KNNClassifier.
func KNNClassify(refs *Matrix, labels []int, queries *Matrix, k int) ([]int, error) {
	return knn.Classify(context.Background(), refs, labels, queries, k, knn.Options{})
}

// TrainLogisticParallel fits binary logistic regression on a
// worker-pool of the given size.
//
// Deprecated: TrainLogistic (and LogisticRegression) are
// block-parallel themselves; set FitOptions.Workers — or configure
// Config.Workers on the engine — instead of passing a pool size here.
func TrainLogisticParallel(x *Matrix, y []float64, opts LogisticOptions, workers int) (*LogisticModel, error) {
	opts.FitOptions.Workers = workers
	return logreg.Train(context.Background(), x, y, opts)
}

// LinearOptions configures linear (ridge) regression.
type LinearOptions = linreg.Options

// LinearModel is a fitted linear regressor.
type LinearModel = linreg.Model

// TrainLinear fits ridge linear regression with streaming L-BFGS.
//
// Deprecated: use Engine.Fit (or Fit) with LinearRegression.
func TrainLinear(x *Matrix, y []float64, opts LinearOptions) (*LinearModel, error) {
	return linreg.Train(context.Background(), x, y, opts)
}

// TrainLinearExact solves the ridge normal equations directly (one
// data scan + O(d³) solve); suitable when the feature count is small.
//
// Deprecated: use Engine.Fit (or Fit) with LinearRegression{Exact: true}.
func TrainLinearExact(x *Matrix, y []float64, opts LinearOptions) (*LinearModel, error) {
	return linreg.TrainExact(context.Background(), x, y, opts)
}

// SGDOptions configures stochastic gradient descent training.
type SGDOptions = sgd.Options

// TrainSGD fits binary logistic regression with (mini-batch) SGD —
// the online-learning path of the paper's §4.
//
// Deprecated: use Engine.Fit (or Fit) with SGDClassifier.
func TrainSGD(x *Matrix, y []float64, opts SGDOptions) (*LogisticModel, error) {
	return sgd.Train(context.Background(), x, y, opts)
}

// OnlineLearner is a streaming logistic-regression learner: one
// Update per arriving example, no dataset required.
type OnlineLearner = sgd.Learner

// NewOnlineLearner creates a streaming learner for dim features.
func NewOnlineLearner(dim int, learningRate, lambda float64) (*OnlineLearner, error) {
	return sgd.NewLearner(dim, learningRate, lambda)
}

// BayesModel is a fitted Gaussian naive Bayes classifier.
type BayesModel = bayes.Model

// TrainBayes fits Gaussian naive Bayes in a single data scan; labels
// must be integers in [0, classes).
//
// Deprecated: use Engine.Fit (or Fit) with NaiveBayes.
func TrainBayes(x *Matrix, y []int, classes int) (*BayesModel, error) {
	return bayes.Train(context.Background(), x, y, classes, bayes.Options{})
}

// PCAOptions configures principal component analysis.
type PCAOptions = pca.Options

// PCAResult is a fitted decomposition.
type PCAResult = pca.Result

// PCA extracts the leading principal components in two data scans
// (mean + covariance) regardless of the component count.
//
// Deprecated: use Engine.Fit (or Fit) with PrincipalComponents.
func PCA(x *Matrix, opts PCAOptions) (*PCAResult, error) {
	return pca.Fit(context.Background(), x, opts)
}

// SaveModel persists a trained model (logistic, softmax, linear,
// k-means, naive Bayes or PCA) to path in a self-describing format.
// Fitted models from Engine.Fit also expose this as Model.Save.
func SaveModel(path string, model any) error {
	return modelio.SaveFile(path, model)
}

// LoadModel reads a model saved by SaveModel. The first return value
// is one of the model pointer types; the ModelKind tags which.
func LoadModel(path string) (any, ModelKind, error) {
	return modelio.LoadFile(path)
}

// ModelKind tags a persisted model type.
type ModelKind = modelio.Kind

// IterInfo is passed to optimizer and FitOptions callbacks.
type IterInfo = optimize.IterInfo
