package mmap

import (
	"syscall"
	"unsafe"
)

// msync flushes dirty pages of b synchronously (MS_SYNC).
func msync(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}

// mincore fills vec with per-page residency flags for b.
func mincore(b []byte, vec []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return errno
	}
	return nil
}
