package mmap

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAllocWriteReadBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.bin")
	r, err := Alloc(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	b := r.Bytes()
	for i := range b {
		b[i] = byte(i % 251)
	}
	if err := r.Unmap(); err != nil {
		t.Fatal(err)
	}
	// Re-open read-only and verify persistence through the page cache.
	r2, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Unmap()
	for i, v := range r2.Bytes() {
		if v != byte(i%251) {
			t.Fatalf("byte %d = %d, want %d", i, v, i%251)
		}
	}
}

func TestFloat64View(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f64.bin")
	fs, r, err := AllocFloat64(path, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1000 {
		t.Fatalf("len = %d want 1000", len(fs))
	}
	for i := range fs {
		fs[i] = float64(i) * 1.5
	}
	if err := r.Unmap(); err != nil {
		t.Fatal(err)
	}
	got, r2, err := OpenFloat64(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Unmap()
	for i, v := range got {
		if v != float64(i)*1.5 {
			t.Fatalf("fs[%d] = %v want %v", i, v, float64(i)*1.5)
		}
	}
}

func TestFloat64ViewRejectsUnaligned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "odd.bin")
	if err := os.WriteFile(path, make([]byte, 13), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := MapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Unmap()
	if _, err := r.Float64(); err == nil {
		t.Fatal("expected error for 13-byte file")
	}
}

func TestMapFileErrors(t *testing.T) {
	if _, err := MapFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected error for missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MapFile(empty); err == nil {
		t.Error("expected error for empty file")
	}
}

func TestAllocRejectsBadSize(t *testing.T) {
	if _, err := Alloc(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Error("expected error for size 0")
	}
	if _, err := Alloc(filepath.Join(t.TempDir(), "y"), -5); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestAnon(t *testing.T) {
	r, err := Anon(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Unmap()
	b := r.Bytes()
	if len(b) != 1<<16 {
		t.Fatalf("len = %d", len(b))
	}
	// Anonymous pages must be zeroed.
	for i := 0; i < len(b); i += 4097 {
		if b[i] != 0 {
			t.Fatalf("anon byte %d not zero", i)
		}
	}
	b[0], b[len(b)-1] = 1, 2
	if r.Path() != "" {
		t.Errorf("anon path = %q", r.Path())
	}
	if err := r.Sync(); err != nil {
		t.Errorf("anon sync: %v", err)
	}
}

func TestAdviseAllHints(t *testing.T) {
	r, err := Anon(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Unmap()
	for _, a := range []Advice{Normal, Sequential, Random, WillNeed, DontNeed} {
		if err := r.Advise(a); err != nil {
			t.Errorf("Advise(%s): %v", a, err)
		}
	}
	if err := r.Advise(Advice(99)); err == nil {
		t.Error("expected error for unknown advice")
	}
}

func TestAdviceString(t *testing.T) {
	want := map[Advice]string{
		Normal: "normal", Sequential: "sequential", Random: "random",
		WillNeed: "willneed", DontNeed: "dontneed", Advice(42): "advice(42)",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("Advice(%d).String() = %q want %q", int(a), a.String(), s)
		}
	}
}

func TestUnmapIdempotent(t *testing.T) {
	r, err := Anon(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Unmap(); err != nil {
		t.Fatal(err)
	}
	if err := r.Unmap(); err != nil {
		t.Fatalf("second Unmap: %v", err)
	}
	if err := r.Advise(Sequential); err != ErrClosed {
		t.Errorf("Advise after Unmap = %v, want ErrClosed", err)
	}
	if _, err := r.Float64(); err != ErrClosed {
		t.Errorf("Float64 after Unmap = %v, want ErrClosed", err)
	}
	if _, _, err := r.Residency(); err != ErrClosed {
		t.Errorf("Residency after Unmap = %v, want ErrClosed", err)
	}
}

func TestResidency(t *testing.T) {
	path := filepath.Join(t.TempDir(), "res.bin")
	r, err := Alloc(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Unmap()
	// Touch every page; afterwards everything should be resident.
	b := r.Bytes()
	ps := PageSize()
	for i := 0; i < len(b); i += ps {
		b[i] = 1
	}
	res, total, err := r.Residency()
	if err != nil {
		t.Fatal(err)
	}
	if total != (1<<20)/ps {
		t.Errorf("total pages = %d want %d", total, (1<<20)/ps)
	}
	if res != total {
		t.Errorf("resident = %d/%d after touching all pages", res, total)
	}
}

func TestOpenRW(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rw.bin")
	r, err := Alloc(path, 8192)
	if err != nil {
		t.Fatal(err)
	}
	r.Bytes()[100] = 42
	if err := r.Unmap(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenRW(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Unmap()
	if r2.Bytes()[100] != 42 {
		t.Error("OpenRW did not see prior write")
	}
	r2.Bytes()[100] = 43 // must not fault
	if !r2.Writable() {
		t.Error("OpenRW region not writable")
	}
}

func TestLockUnlock(t *testing.T) {
	r, err := Anon(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Unmap()
	if err := r.Lock(); err != nil {
		t.Skipf("mlock unavailable (RLIMIT_MEMLOCK?): %v", err)
	}
	// Locked pages are resident by definition.
	res, total, err := r.Residency()
	if err != nil {
		t.Fatal(err)
	}
	if res != total {
		t.Errorf("locked region %d/%d resident", res, total)
	}
	if err := r.Unlock(); err != nil {
		t.Errorf("unlock: %v", err)
	}
	r.Unmap()
	if err := r.Lock(); err != ErrClosed {
		t.Errorf("Lock after Unmap = %v", err)
	}
	if err := r.Unlock(); err != ErrClosed {
		t.Errorf("Unlock after Unmap = %v", err)
	}
}

func TestRoundUp(t *testing.T) {
	ps := int64(PageSize())
	cases := map[int64]int64{0: 0, 1: ps, ps: ps, ps + 1: 2 * ps}
	for in, want := range cases {
		if got := RoundUp(in); got != want {
			t.Errorf("RoundUp(%d) = %d want %d", in, got, want)
		}
	}
}

func TestMapRejectsBadOffset(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Truncate(1 << 16); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(f, 3, 4096, false); err == nil {
		t.Error("expected error for unaligned offset")
	}
	if _, err := Map(f, 0, 0, false); err == nil {
		t.Error("expected error for zero length")
	}
}

func TestLargeSparseAlloc(t *testing.T) {
	// A mapping far larger than the heap should succeed instantly
	// because pages materialize lazily — the essence of M3.
	path := filepath.Join(t.TempDir(), "big.bin")
	const size = 1 << 31 // 2 GiB address space, ~0 bytes touched
	r, err := Alloc(path, size)
	if err != nil {
		t.Skipf("large alloc unavailable: %v", err)
	}
	defer r.Unmap()
	b := r.Bytes()
	// Touch one byte per 256 MiB.
	for i := 0; i < len(b); i += 1 << 28 {
		b[i] = 7
	}
	res, total, err := r.Residency()
	if err != nil {
		t.Fatal(err)
	}
	if res >= total/2 {
		t.Errorf("sparse mapping unexpectedly dense: %d/%d resident", res, total)
	}
}
