// Package mmap implements the memory-mapping substrate of M3: it maps
// dataset files into the process's virtual address space so that the
// operating system — not the algorithm author — decides which parts of
// the data are resident in RAM.
//
// The central entry points mirror the paper's Table 1:
//
//	Original                        M3
//	--------                        --------------------------------
//	Mat data;                       m, _ := mmap.AllocFloat64(file, rows*cols)
//	                                data := mat.NewDenseFrom(m, rows, cols)
//
// A mapped region is an ordinary []byte (or []float64 view) backed by
// the page cache; reads fault pages in on demand and the kernel evicts
// them under memory pressure using LRU-like reclamation and read-ahead,
// exactly the mechanism the paper leverages.
package mmap

import (
	"errors"
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// Advice hints the kernel about the expected access pattern of a
// mapped region (madvise(2)).
type Advice int

const (
	// Normal resets the kernel to default read-ahead behaviour.
	Normal Advice = iota
	// Sequential requests aggressive read-ahead; ideal for the
	// full-matrix scans performed by each L-BFGS or k-means iteration.
	Sequential
	// Random disables read-ahead for pointer-chasing access.
	Random
	// WillNeed asks the kernel to populate pages ahead of use.
	WillNeed
	// DontNeed tells the kernel the pages may be reclaimed.
	DontNeed
)

func (a Advice) String() string {
	switch a {
	case Normal:
		return "normal"
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case WillNeed:
		return "willneed"
	case DontNeed:
		return "dontneed"
	}
	return fmt.Sprintf("advice(%d)", int(a))
}

func (a Advice) sysAdvice() (int, error) {
	switch a {
	case Normal:
		return syscall.MADV_NORMAL, nil
	case Sequential:
		return syscall.MADV_SEQUENTIAL, nil
	case Random:
		return syscall.MADV_RANDOM, nil
	case WillNeed:
		return syscall.MADV_WILLNEED, nil
	case DontNeed:
		return syscall.MADV_DONTNEED, nil
	}
	return 0, fmt.Errorf("mmap: unknown advice %d", int(a))
}

// ErrClosed is returned by operations on an unmapped Region.
var ErrClosed = errors.New("mmap: region is closed")

// Region is a mapped span of a file (or anonymous memory).
// It is not safe for concurrent mutation with Unmap.
type Region struct {
	data     []byte
	writable bool
	anon     bool
	path     string
}

// PageSize returns the system page size.
func PageSize() int { return os.Getpagesize() }

// RoundUp rounds n up to a multiple of the system page size.
func RoundUp(n int64) int64 {
	ps := int64(PageSize())
	return (n + ps - 1) / ps * ps
}

// Map maps length bytes of f starting at offset. If writable is true
// the mapping is MAP_SHARED read-write, so stores propagate to the
// file; otherwise it is a read-only shared mapping.
func Map(f *os.File, offset int64, length int, writable bool) (*Region, error) {
	if length <= 0 {
		return nil, fmt.Errorf("mmap: non-positive length %d", length)
	}
	if offset < 0 || offset%int64(PageSize()) != 0 {
		return nil, fmt.Errorf("mmap: offset %d must be a non-negative page multiple", offset)
	}
	prot := syscall.PROT_READ
	if writable {
		prot |= syscall.PROT_WRITE
	}
	b, err := syscall.Mmap(int(f.Fd()), offset, length, prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: mapping %q (%d bytes @ %d): %w", f.Name(), length, offset, err)
	}
	return &Region{data: b, writable: writable, path: f.Name()}, nil
}

// MapFile opens path and maps its entire contents read-only.
func MapFile(path string) (*Region, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return nil, fmt.Errorf("mmap: %q is empty", path)
	}
	if fi.Size() > int64(maxInt) {
		return nil, fmt.Errorf("mmap: %q too large for address space (%d bytes)", path, fi.Size())
	}
	return Map(f, 0, int(fi.Size()), false)
}

// Alloc is the paper's mmapAlloc: it creates (or truncates) path to
// size bytes and maps it read-write. The returned region behaves like
// a freshly allocated buffer whose backing store is the file, so it
// can exceed RAM.
func Alloc(path string, size int64) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mmap: non-positive size %d", size)
	}
	if size > int64(maxInt) {
		return nil, fmt.Errorf("mmap: size %d exceeds address space", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return nil, fmt.Errorf("mmap: truncating %q to %d bytes: %w", path, size, err)
	}
	return Map(f, 0, int(size), true)
}

// OpenRW opens an existing file and maps it read-write without
// truncation.
func OpenRW(path string) (*Region, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() == 0 {
		return nil, fmt.Errorf("mmap: %q is empty", path)
	}
	return Map(f, 0, int(fi.Size()), true)
}

// Anon returns an anonymous (not file-backed) writable mapping of
// size bytes, useful for scratch space that should not count against
// the Go heap.
func Anon(size int64) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mmap: non-positive size %d", size)
	}
	b, err := syscall.Mmap(-1, 0, int(size),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_PRIVATE|syscall.MAP_ANON)
	if err != nil {
		return nil, fmt.Errorf("mmap: anonymous mapping of %d bytes: %w", size, err)
	}
	return &Region{data: b, writable: true, anon: true}, nil
}

// Bytes returns the mapped bytes. The slice is invalid after Unmap.
func (r *Region) Bytes() []byte { return r.data }

// Len returns the length of the mapping in bytes.
func (r *Region) Len() int { return len(r.data) }

// Writable reports whether stores to the region are permitted.
func (r *Region) Writable() bool { return r.writable }

// Path returns the backing file path ("" for anonymous mappings).
func (r *Region) Path() string { return r.path }

// Float64 returns the mapping viewed as a []float64. The region
// length must be a multiple of 8 bytes.
func (r *Region) Float64() ([]float64, error) {
	if r.data == nil {
		return nil, ErrClosed
	}
	if len(r.data)%8 != 0 {
		return nil, fmt.Errorf("mmap: length %d is not a multiple of 8", len(r.data))
	}
	if len(r.data) == 0 {
		return nil, nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&r.data[0])), len(r.data)/8), nil
}

// Advise applies an access-pattern hint to the whole region.
func (r *Region) Advise(a Advice) error {
	if r.data == nil {
		return ErrClosed
	}
	adv, err := a.sysAdvice()
	if err != nil {
		return err
	}
	if err := syscall.Madvise(r.data, adv); err != nil {
		return fmt.Errorf("mmap: madvise(%s): %w", a, err)
	}
	return nil
}

// AdviseRange applies a hint to bytes [off, off+length) of the region.
// The range is widened to page boundaries, as madvise(2) requires; a
// range that falls outside the mapping is clamped. This is the
// primitive behind block prefetch: a scanner working on block k can
// issue WillNeed for block k+1 so the kernel overlaps its read with
// the current block's compute.
func (r *Region) AdviseRange(a Advice, off, length int64) error {
	if r.data == nil {
		return ErrClosed
	}
	adv, err := a.sysAdvice()
	if err != nil {
		return err
	}
	if off < 0 {
		length += off
		off = 0
	}
	if off >= int64(len(r.data)) || length <= 0 {
		return nil
	}
	ps := int64(PageSize())
	start := off / ps * ps // mapping base is page-aligned
	end := off + length
	if end > int64(len(r.data)) {
		end = int64(len(r.data))
	}
	if err := syscall.Madvise(r.data[start:end], adv); err != nil {
		return fmt.Errorf("mmap: madvise(%s, [%d,%d)): %w", a, start, end, err)
	}
	return nil
}

// Lock pins the region's pages in RAM (mlock(2)), exempting them
// from reclaim — useful for model parameters that must never fault
// while the data matrix churns the page cache. It may fail with
// ENOMEM when the region exceeds RLIMIT_MEMLOCK.
func (r *Region) Lock() error {
	if r.data == nil {
		return ErrClosed
	}
	if err := syscall.Mlock(r.data); err != nil {
		return fmt.Errorf("mmap: mlock: %w", err)
	}
	return nil
}

// Unlock releases a Lock.
func (r *Region) Unlock() error {
	if r.data == nil {
		return ErrClosed
	}
	if err := syscall.Munlock(r.data); err != nil {
		return fmt.Errorf("mmap: munlock: %w", err)
	}
	return nil
}

// Sync flushes dirty pages of a writable file-backed mapping to disk
// (msync(2), MS_SYNC).
func (r *Region) Sync() error {
	if r.data == nil {
		return ErrClosed
	}
	if r.anon || !r.writable {
		return nil
	}
	if err := msync(r.data); err != nil {
		return fmt.Errorf("mmap: msync %q: %w", r.path, err)
	}
	return nil
}

// Unmap releases the mapping. Writable file-backed regions are synced
// first. Unmap is idempotent.
func (r *Region) Unmap() error {
	if r.data == nil {
		return nil
	}
	var firstErr error
	if r.writable && !r.anon {
		firstErr = r.Sync()
	}
	if err := syscall.Munmap(r.data); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("mmap: munmap: %w", err)
	}
	r.data = nil
	return firstErr
}

// Close makes Region satisfy io.Closer; it is equivalent to Unmap.
func (r *Region) Close() error { return r.Unmap() }

// Residency reports how many of the region's pages are currently
// resident in RAM, using mincore(2). It returns resident and total
// page counts.
func (r *Region) Residency() (resident, total int, err error) {
	if r.data == nil {
		return 0, 0, ErrClosed
	}
	ps := PageSize()
	total = (len(r.data) + ps - 1) / ps
	vec := make([]byte, total)
	if err := mincore(r.data, vec); err != nil {
		return 0, total, fmt.Errorf("mmap: mincore: %w", err)
	}
	for _, v := range vec {
		if v&1 != 0 {
			resident++
		}
	}
	return resident, total, nil
}

const maxInt = int(^uint(0) >> 1)

// AllocFloat64 creates a file-backed mapping sized for n float64
// values and returns both the element view and the region for
// lifecycle management. It is the direct analogue of the paper's
//
//	double *m = mmapAlloc(file, rows * cols);
func AllocFloat64(path string, n int64) ([]float64, *Region, error) {
	r, err := Alloc(path, n*8)
	if err != nil {
		return nil, nil, err
	}
	fs, err := r.Float64()
	if err != nil {
		r.Unmap()
		return nil, nil, err
	}
	return fs, r, nil
}

// OpenFloat64 maps an existing file read-only as float64 values.
func OpenFloat64(path string) ([]float64, *Region, error) {
	r, err := MapFile(path)
	if err != nil {
		return nil, nil, err
	}
	fs, err := r.Float64()
	if err != nil {
		r.Unmap()
		return nil, nil, err
	}
	return fs, r, nil
}
