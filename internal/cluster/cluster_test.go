package cluster

import (
	"math"
	"testing"
)

func testSpec() InstanceSpec {
	return InstanceSpec{
		Name:                "test",
		VCPUs:               4,
		MemoryBytes:         1000,
		HDFSScanBytesPerSec: 100,
		ComputeBytesPerSec:  400,
		NetworkBytesPerSec:  50,
	}
}

func testCost() CostModel {
	return CostModel{
		TaskOverheadSeconds:  0,
		StageOverheadSeconds: 0,
		AggLatencySeconds:    0,
		CacheFraction:        0.5,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, testSpec(), testCost()); err == nil {
		t.Error("accepted 0 instances")
	}
	bad := testSpec()
	bad.VCPUs = 0
	if _, err := New(2, bad, testCost()); err == nil {
		t.Error("accepted 0 vCPUs")
	}
	badCost := testCost()
	badCost.CacheFraction = 0
	if _, err := New(2, testSpec(), badCost); err == nil {
		t.Error("accepted zero cache fraction")
	}
	badCost2 := testCost()
	badCost2.StageOverheadSeconds = -1
	if _, err := New(2, testSpec(), badCost2); err == nil {
		t.Error("accepted negative overhead")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := M32XLarge().Validate(); err != nil {
		t.Errorf("M32XLarge invalid: %v", err)
	}
	if err := DefaultCostModel().Validate(); err != nil {
		t.Errorf("default cost model invalid: %v", err)
	}
}

func TestCacheCapacity(t *testing.T) {
	c, err := New(4, testSpec(), testCost())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CacheCapacityBytes(); got != 2000 {
		t.Errorf("cache capacity = %d want 2000 (4×1000×0.5)", got)
	}
}

func TestNewRDDDefaults(t *testing.T) {
	c, _ := New(2, testSpec(), testCost())
	r, err := c.NewRDD(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Partitions != 2*2*4 {
		t.Errorf("default partitions = %d want 16", r.Partitions)
	}
	if _, err := c.NewRDD(0, 1); err == nil {
		t.Error("accepted empty dataset")
	}
}

func TestScanStageColdVsWarm(t *testing.T) {
	// Dataset 1000 bytes fits in cache (capacity 2000). Cold pass is
	// scan-bound at 100 B/s/instance; warm pass is compute-bound at
	// 400 B/s/instance.
	c, _ := New(4, testSpec(), testCost())
	r, _ := c.NewRDD(1000, 8)
	cold := c.ScanStage(r)
	if math.Abs(cold-1000.0/(4*100)) > 1e-9 {
		t.Errorf("cold scan = %v want 2.5", cold)
	}
	if r.CachedFraction() != 1 {
		t.Errorf("cached fraction after cold pass = %v want 1", r.CachedFraction())
	}
	warm := c.ScanStage(r)
	if math.Abs(warm-1000.0/(4*400)) > 1e-9 {
		t.Errorf("warm scan = %v want 0.625", warm)
	}
	if warm >= cold {
		t.Errorf("warm (%v) not faster than cold (%v)", warm, cold)
	}
}

func TestScanStagePartialCache(t *testing.T) {
	// Dataset 4000 bytes, cache 2000: after the first pass half the
	// partitions stay cached and every later pass pays HDFS for the
	// other half.
	c, _ := New(4, testSpec(), testCost())
	r, _ := c.NewRDD(4000, 8)
	c.ScanStage(r)
	if got := r.CachedFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("cached fraction = %v want 0.5", got)
	}
	warm := c.ScanStage(r)
	// 4 cold partitions (500B each) scan-paced + 4 warm compute-paced,
	// over 16 slots: (4*5 + 4*1.25)/16
	want := (4*(500.0/25) + 4*(500.0/100)) / 16
	if math.Abs(warm-want) > 1e-9 {
		t.Errorf("partial-cache scan = %v want %v", warm, want)
	}
}

func TestMoreInstancesScanFaster(t *testing.T) {
	small, _ := New(4, testSpec(), testCost())
	big, _ := New(8, testSpec(), testCost())
	rs, _ := small.NewRDD(100000, 64)
	rb, _ := big.NewRDD(100000, 64)
	ts := small.ScanStage(rs)
	tb := big.ScanStage(rb)
	if tb >= ts {
		t.Errorf("8 instances (%v) not faster than 4 (%v)", tb, ts)
	}
	if math.Abs(ts/tb-2) > 0.01 {
		t.Errorf("cold scan speedup = %v want ~2", ts/tb)
	}
}

func TestStageOverheadCharged(t *testing.T) {
	cost := testCost()
	cost.StageOverheadSeconds = 10
	c, _ := New(2, testSpec(), cost)
	r, _ := c.NewRDD(100, 2)
	tm := c.ScanStage(r)
	if tm < 10 {
		t.Errorf("stage time %v does not include overhead", tm)
	}
	if c.Stages() != 1 {
		t.Errorf("stages = %d", c.Stages())
	}
}

func TestAggregateStageScalesWithLevels(t *testing.T) {
	cost := testCost()
	cost.AggLatencySeconds = 1
	c2, _ := New(2, testSpec(), cost)
	c8, _ := New(8, testSpec(), cost)
	t2 := c2.AggregateStage(0)
	t8 := c8.AggregateStage(0)
	if t8 <= t2 {
		t.Errorf("8-instance aggregate (%v) not deeper than 2-instance (%v)", t8, t2)
	}
	// Network term: 50 bytes at 50 B/s = 1s per level.
	c2b, _ := New(2, testSpec(), testCost())
	if got := c2b.AggregateStage(50); math.Abs(got-1) > 1e-9 {
		t.Errorf("aggregate transfer = %v want 1", got)
	}
}

func TestBroadcastStage(t *testing.T) {
	c, _ := New(8, testSpec(), testCost())
	tm := c.BroadcastStage(50)
	// 4 rounds (1→2→4→8 plus initial) × 1s transfer
	if tm <= 0 {
		t.Errorf("broadcast = %v", tm)
	}
	before := c.Clock()
	c.BroadcastStage(50)
	if c.Clock() <= before {
		t.Error("clock did not advance")
	}
}

func TestDriverCompute(t *testing.T) {
	c, _ := New(2, testSpec(), testCost())
	// Per-core speed = 400/4 = 100 B/s.
	if got := c.DriverCompute(200); math.Abs(got-2) > 1e-9 {
		t.Errorf("driver compute = %v want 2", got)
	}
}

func TestResetClock(t *testing.T) {
	c, _ := New(2, testSpec(), testCost())
	r, _ := c.NewRDD(1000, 4)
	c.ScanStage(r)
	if c.Clock() == 0 {
		t.Fatal("clock did not advance")
	}
	c.ResetClock()
	if c.Clock() != 0 || c.Stages() != 0 {
		t.Error("reset failed")
	}
	// Cache state survives reset: next scan is warm.
	warm := c.ScanStage(r)
	if math.Abs(warm-1000.0/(2*400)) > 1e-9 {
		t.Errorf("post-reset scan = %v, cache should persist", warm)
	}
}

// The structural property behind Figure 1b: for an out-of-core-sized
// dataset, doubling the cluster more than doubles iteration speed
// (cache crossover), and per-iteration fixed costs keep the small
// cluster far behind a single fast-disk machine.
func TestCacheCrossoverBetween4And8Instances(t *testing.T) {
	spec := M32XLarge()
	cost := DefaultCostModel()
	const dataset = 190e9

	iterTime := func(n int) float64 {
		c, err := New(n, spec, cost)
		if err != nil {
			t.Fatal(err)
		}
		r, _ := c.NewRDD(int64(dataset), 0)
		c.ScanStage(r) // warm-up pass fills cache
		c.ResetClock()
		var total float64
		for i := 0; i < 10; i++ {
			total += c.ScanStage(r)
		}
		return total
	}
	t4 := iterTime(4)
	t8 := iterTime(8)
	ratio := t4 / t8
	if ratio <= 2 {
		t.Errorf("4→8 instance speedup = %v; cache crossover should make it superlinear (> 2)", ratio)
	}
}
