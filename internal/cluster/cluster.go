// Package cluster simulates the Spark-on-EMR clusters the paper
// compares against (Figure 1b: 4 and 8 m3.2xlarge instances reading
// from HDFS). It is a deterministic cost-model simulator: distributed
// algorithms execute their real math on partitioned data while the
// cluster accounts simulated seconds for HDFS scans, RDD cache hits,
// task/stage scheduling overhead, and treeAggregate network traffic.
//
// The model captures the structure that produces the paper's ratios:
//
//   - An 8-instance cluster has 240 GB of aggregate memory, so a
//     190 GB dataset is (mostly) cached after the first pass and
//     later iterations are compute-bound.
//   - A 4-instance cluster (120 GB) cannot cache it all, so every
//     iteration re-reads the uncached remainder from HDFS.
//   - Every iteration pays fixed per-stage scheduling plus
//     aggregation costs, which is why small clusters don't scale
//     down gracefully and why one well-fed PC can win.
package cluster

import "fmt"

// InstanceSpec describes one worker instance.
type InstanceSpec struct {
	// Name labels the instance type in reports.
	Name string
	// VCPUs is the number of task slots (hyperthreads).
	VCPUs int
	// MemoryBytes is the instance RAM.
	MemoryBytes int64
	// HDFSScanBytesPerSec is the effective per-instance throughput
	// when reading RDD partitions from HDFS (disk + deserialization).
	HDFSScanBytesPerSec float64
	// ComputeBytesPerSec is the per-instance throughput of the ML
	// inner loop over cached, deserialized data (all vCPUs busy).
	ComputeBytesPerSec float64
	// NetworkBytesPerSec is the NIC bandwidth used by shuffles,
	// broadcasts and aggregation.
	NetworkBytesPerSec float64
}

// Validate reports whether the spec is usable.
func (s InstanceSpec) Validate() error {
	if s.VCPUs <= 0 {
		return fmt.Errorf("cluster: instance needs >= 1 vCPU")
	}
	if s.MemoryBytes <= 0 {
		return fmt.Errorf("cluster: instance needs positive memory")
	}
	if s.HDFSScanBytesPerSec <= 0 || s.ComputeBytesPerSec <= 0 || s.NetworkBytesPerSec <= 0 {
		return fmt.Errorf("cluster: instance throughputs must be positive")
	}
	return nil
}

// M32XLarge returns the paper's worker profile: an EC2 m3.2xlarge
// (8 vCPUs, 30 GB RAM, 2×80 GB SSD) running Spark on EMR with data
// in HDFS. Throughput constants are calibration values (documented
// in EXPERIMENTS.md) chosen to land in the regime the paper reports;
// the comparison's *shape* is insensitive to moderate changes.
func M32XLarge() InstanceSpec {
	return InstanceSpec{
		Name:                "m3.2xlarge",
		VCPUs:               8,
		MemoryBytes:         30e9,
		HDFSScanBytesPerSec: 75e6,  // HDFS read + deserialize
		ComputeBytesPerSec:  230e6, // JVM ML inner loop, all cores
		NetworkBytesPerSec:  125e6, // 1 Gb/s
	}
}

// CostModel holds the fixed overheads of the Spark execution model.
type CostModel struct {
	// TaskOverheadSeconds is the per-task launch/teardown cost.
	TaskOverheadSeconds float64
	// StageOverheadSeconds is the per-stage scheduling cost paid by
	// the driver for every job stage.
	StageOverheadSeconds float64
	// AggLatencySeconds is the per-level latency of treeAggregate.
	AggLatencySeconds float64
	// CacheFraction is the fraction of instance memory usable for
	// RDD caching (spark.memory.fraction × storage share).
	CacheFraction float64
}

// DefaultCostModel returns Spark-like defaults.
func DefaultCostModel() CostModel {
	return CostModel{
		TaskOverheadSeconds:  0.02,
		StageOverheadSeconds: 0.8,
		AggLatencySeconds:    0.15,
		CacheFraction:        0.55,
	}
}

// Validate reports whether the cost model is usable.
func (c CostModel) Validate() error {
	if c.TaskOverheadSeconds < 0 || c.StageOverheadSeconds < 0 || c.AggLatencySeconds < 0 {
		return fmt.Errorf("cluster: negative overhead")
	}
	if c.CacheFraction <= 0 || c.CacheFraction > 1 {
		return fmt.Errorf("cluster: cache fraction %v outside (0,1]", c.CacheFraction)
	}
	return nil
}

// Cluster is a simulated Spark cluster with a monotonically advancing
// simulated clock.
type Cluster struct {
	instances int
	spec      InstanceSpec
	cost      CostModel
	clock     float64
	stages    int
}

// New creates a cluster of n identical instances.
func New(n int, spec InstanceSpec, cost CostModel) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need >= 1 instance, got %d", n)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{instances: n, spec: spec, cost: cost}, nil
}

// Instances returns the worker count.
func (c *Cluster) Instances() int { return c.instances }

// Spec returns the instance profile.
func (c *Cluster) Spec() InstanceSpec { return c.spec }

// Clock returns the simulated elapsed seconds.
func (c *Cluster) Clock() float64 { return c.clock }

// Stages returns the number of stages executed.
func (c *Cluster) Stages() int { return c.stages }

// ResetClock zeroes the simulated clock and stage counter (cache
// state of datasets is unaffected).
func (c *Cluster) ResetClock() { c.clock, c.stages = 0, 0 }

// CacheCapacityBytes is the aggregate RDD cache across the cluster.
func (c *Cluster) CacheCapacityBytes() int64 {
	return int64(float64(c.instances) * float64(c.spec.MemoryBytes) * c.cost.CacheFraction)
}

// advance adds simulated seconds to the clock.
func (c *Cluster) advance(t float64) {
	if t > 0 {
		c.clock += t
	}
}

// RDD is a partitioned dataset resident in the cluster, with nominal
// size accounting and cache state. Partition contents (for the real
// math) live with the algorithm; the RDD tracks only sizes.
type RDD struct {
	// NominalBytes is the modelled dataset size.
	NominalBytes int64
	// Partitions is the partition count (Spark default: 2–3 tasks
	// per core).
	Partitions int
	// cachedBytes of the dataset currently in the RDD cache.
	cachedBytes int64
}

// NewRDD registers a dataset of nominalBytes split into partitions.
// A non-positive partition count defaults to 2 tasks per core.
func (c *Cluster) NewRDD(nominalBytes int64, partitions int) (*RDD, error) {
	if nominalBytes <= 0 {
		return nil, fmt.Errorf("cluster: non-positive dataset size %d", nominalBytes)
	}
	if partitions <= 0 {
		partitions = 2 * c.instances * c.spec.VCPUs
	}
	return &RDD{NominalBytes: nominalBytes, Partitions: partitions}, nil
}

// CachedFraction reports how much of the RDD is cache-resident.
func (r *RDD) CachedFraction() float64 {
	return float64(r.cachedBytes) / float64(r.NominalBytes)
}

// ScanStage simulates one full pass over the RDD (e.g. a gradient or
// assignment stage): uncached bytes stream from HDFS, cached bytes
// are processed at compute speed, and the slower of I/O and compute
// paces each task (Spark pipelines the read into the task). After
// the pass, as much of the dataset as fits is cached (MEMORY_ONLY
// semantics with LRU keeping a stable prefix).
//
// It returns the stage's simulated seconds (also added to the clock).
func (c *Cluster) ScanStage(r *RDD) float64 {
	perPartition := float64(r.NominalBytes) / float64(r.Partitions)
	cachedParts := int(float64(r.cachedBytes) / perPartition)
	if cachedParts > r.Partitions {
		cachedParts = r.Partitions
	}

	// Per-task seconds: cached tasks are compute-paced; uncached
	// tasks are paced by max(HDFS scan, compute) because Spark
	// overlaps read and compute within a task. Throughputs are
	// per-instance, shared by the VCPUs slots of one wave.
	slotScan := c.spec.HDFSScanBytesPerSec / float64(c.spec.VCPUs)
	slotCompute := c.spec.ComputeBytesPerSec / float64(c.spec.VCPUs)
	coldTask := perPartition/minf(slotScan, slotCompute) + c.cost.TaskOverheadSeconds
	warmTask := perPartition/slotCompute + c.cost.TaskOverheadSeconds

	// Greedy wave scheduling over identical slots: total work time
	// divided by slot count, plus one tail wave approximation.
	slots := float64(c.instances * c.spec.VCPUs)
	coldWork := float64(r.Partitions-cachedParts) * coldTask
	warmWork := float64(cachedParts) * warmTask
	stage := (coldWork+warmWork)/slots + c.cost.StageOverheadSeconds

	// Cache fill after the pass.
	capacity := c.CacheCapacityBytes()
	if r.NominalBytes <= capacity {
		r.cachedBytes = r.NominalBytes
	} else {
		r.cachedBytes = capacity
	}

	c.advance(stage)
	c.stages++
	return stage
}

// AggregateStage simulates a treeAggregate of a vectorBytes-sized
// value (gradients, centroid sums): ceil(log2(instances)) levels,
// each paying network transfer plus fixed latency, then the final
// hop to the driver.
func (c *Cluster) AggregateStage(vectorBytes int64) float64 {
	levels := 1
	for n := c.instances; n > 2; n = (n + 1) / 2 {
		levels++
	}
	per := c.cost.AggLatencySeconds + float64(vectorBytes)/c.spec.NetworkBytesPerSec
	t := float64(levels) * per
	c.advance(t)
	return t
}

// BroadcastStage simulates broadcasting vectorBytes to every
// instance (BitTorrent-style: log2 rounds).
func (c *Cluster) BroadcastStage(vectorBytes int64) float64 {
	rounds := 1
	for n := 1; n < c.instances; n *= 2 {
		rounds++
	}
	t := float64(rounds) * (c.cost.AggLatencySeconds/2 + float64(vectorBytes)/c.spec.NetworkBytesPerSec)
	c.advance(t)
	return t
}

// DriverCompute accounts driver-local work (e.g. the L-BFGS update),
// which is serial and uses one instance's single-core speed.
func (c *Cluster) DriverCompute(bytes int64) float64 {
	perCore := c.spec.ComputeBytesPerSec / float64(c.spec.VCPUs)
	t := float64(bytes) / perCore
	c.advance(t)
	return t
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
