package iostats

import (
	"strings"
	"testing"

	"m3/internal/vm"
)

func TestUtilizationPercents(t *testing.T) {
	u := Utilization{ElapsedSeconds: 100, CPUSeconds: 13, DiskSeconds: 100}
	if got := u.CPUPercent(); got != 13 {
		t.Errorf("CPU%% = %v", got)
	}
	if got := u.DiskPercent(); got != 100 {
		t.Errorf("Disk%% = %v", got)
	}
	if !u.IOBound() {
		t.Error("paper's observed profile not classified as I/O bound")
	}
	var zero Utilization
	if zero.CPUPercent() != 0 || zero.DiskPercent() != 0 || zero.IOBound() {
		t.Error("zero utilization misbehaves")
	}
}

func TestUtilizationNotIOBound(t *testing.T) {
	u := Utilization{ElapsedSeconds: 100, CPUSeconds: 100, DiskSeconds: 20}
	if u.IOBound() {
		t.Error("CPU-bound phase classified as I/O bound")
	}
}

func TestFromTimeline(t *testing.T) {
	var tl vm.Timeline
	tl.AddCPU(13)
	tl.AddDisk(100)
	u := FromTimeline(&tl)
	if u.ElapsedSeconds != 100 || u.CPUSeconds != 13 || u.DiskSeconds != 100 {
		t.Errorf("FromTimeline = %+v", u)
	}
	if !strings.Contains(u.String(), "disk 100%") {
		t.Errorf("String = %q", u.String())
	}
}

func TestReadProcReal(t *testing.T) {
	snap, err := ReadProc()
	if err != nil {
		t.Skipf("proc unavailable: %v", err)
	}
	// CPU time must be non-negative and finite; burn some cycles and
	// observe monotonicity.
	var sink float64
	for i := 0; i < 1e7; i++ {
		sink += float64(i)
	}
	_ = sink
	later, err := ReadProc()
	if err != nil {
		t.Fatal(err)
	}
	d := later.Sub(snap)
	if d.UserSeconds < 0 || d.SystemSeconds < 0 || d.MajorFaults < 0 {
		t.Errorf("negative deltas: %+v", d)
	}
}
