// Package iostats reproduces the paper's resource-utilization
// observation (§3.1: out-of-core M3 is I/O bound — "disk I/O was 100%
// utilized while CPU was only utilized at around 13%"). It converts
// simulated timelines into utilization reports and, on Linux, reads
// best-effort real counters from /proc for runs over real mmap.
package iostats

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"m3/internal/vm"
)

// Utilization summarizes how busy each resource was during a phase.
type Utilization struct {
	// ElapsedSeconds is the wall-clock (or simulated) duration.
	ElapsedSeconds float64
	// CPUSeconds is the compute busy time.
	CPUSeconds float64
	// DiskSeconds is the storage busy time.
	DiskSeconds float64
}

// CPUPercent returns CPU busy time as a percentage of elapsed.
func (u Utilization) CPUPercent() float64 {
	if u.ElapsedSeconds == 0 {
		return 0
	}
	return 100 * u.CPUSeconds / u.ElapsedSeconds
}

// DiskPercent returns disk busy time as a percentage of elapsed.
func (u Utilization) DiskPercent() float64 {
	if u.ElapsedSeconds == 0 {
		return 0
	}
	return 100 * u.DiskSeconds / u.ElapsedSeconds
}

// IOBound reports whether the phase was I/O bound: the disk near
// saturation and clearly busier than the CPU.
func (u Utilization) IOBound() bool {
	return u.DiskPercent() > 90 && u.DiskPercent() > u.CPUPercent()
}

// String renders the report in the paper's terms.
func (u Utilization) String() string {
	return fmt.Sprintf("elapsed %.1fs, disk %.0f%% utilized, CPU %.0f%%",
		u.ElapsedSeconds, u.DiskPercent(), u.CPUPercent())
}

// FromTimeline converts a simulated timeline into a utilization
// report.
func FromTimeline(tl *vm.Timeline) Utilization {
	return Utilization{
		ElapsedSeconds: tl.Elapsed(),
		CPUSeconds:     tl.CPUSeconds(),
		DiskSeconds:    tl.DiskSeconds(),
	}
}

// ProcSnapshot captures real process counters from /proc (Linux).
type ProcSnapshot struct {
	// UserSeconds and SystemSeconds are cumulative CPU times.
	UserSeconds   float64
	SystemSeconds float64
	// ReadBytes is cumulative storage-layer read traffic
	// (/proc/self/io read_bytes); zero when unavailable.
	ReadBytes int64
	// MajorFaults is the cumulative major page-fault count.
	MajorFaults int64
}

// Sub returns the delta between two snapshots (s - earlier).
func (s ProcSnapshot) Sub(earlier ProcSnapshot) ProcSnapshot {
	return ProcSnapshot{
		UserSeconds:   s.UserSeconds - earlier.UserSeconds,
		SystemSeconds: s.SystemSeconds - earlier.SystemSeconds,
		ReadBytes:     s.ReadBytes - earlier.ReadBytes,
		MajorFaults:   s.MajorFaults - earlier.MajorFaults,
	}
}

// ReadProc takes a best-effort snapshot of the current process.
// Fields that cannot be read are left zero; the error is non-nil only
// when nothing could be read at all.
func ReadProc() (ProcSnapshot, error) {
	var snap ProcSnapshot
	statErr := readStat(&snap)
	ioErr := readIO(&snap)
	if statErr != nil && ioErr != nil {
		return snap, fmt.Errorf("iostats: stat: %v; io: %v", statErr, ioErr)
	}
	return snap, nil
}

// readStat parses /proc/self/stat for utime, stime and majflt.
func readStat(snap *ProcSnapshot) error {
	b, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return err
	}
	// Field 2 (comm) may contain spaces; it is parenthesized, so cut
	// at the last ')'.
	s := string(b)
	idx := strings.LastIndexByte(s, ')')
	if idx < 0 || idx+2 > len(s) {
		return fmt.Errorf("iostats: malformed stat")
	}
	fields := strings.Fields(s[idx+2:])
	// After comm/state, fields (1-based from "state"): majflt is the
	// 10th overall (index 9 in the full layout) → index 9-3=... use
	// the documented positions: state is field 3 overall, so
	// fields[0] is field 3. utime = field 14 → fields[11];
	// stime = field 15 → fields[12]; majflt = field 12 → fields[9].
	if len(fields) < 13 {
		return fmt.Errorf("iostats: short stat (%d fields)", len(fields))
	}
	hz := float64(100) // USER_HZ is 100 on all supported platforms
	if v, err := strconv.ParseInt(fields[9], 10, 64); err == nil {
		snap.MajorFaults = v
	}
	if v, err := strconv.ParseFloat(fields[11], 64); err == nil {
		snap.UserSeconds = v / hz
	}
	if v, err := strconv.ParseFloat(fields[12], 64); err == nil {
		snap.SystemSeconds = v / hz
	}
	return nil
}

// readIO parses /proc/self/io for read_bytes.
func readIO(snap *ProcSnapshot) error {
	b, err := os.ReadFile("/proc/self/io")
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, "read_bytes: "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return err
			}
			snap.ReadBytes = v
			return nil
		}
	}
	return fmt.Errorf("iostats: read_bytes not found")
}
