// Package iostats reproduces the paper's resource-utilization
// observation (§3.1: out-of-core M3 is I/O bound — "disk I/O was 100%
// utilized while CPU was only utilized at around 13%") for simulated
// timelines. The underlying types and the real /proc collection now
// live in internal/obs (shared with tracing and the metrics
// registry); this package keeps the simulator-facing surface so vm
// users don't need to know about obs.
package iostats

import (
	"m3/internal/obs"
	"m3/internal/vm"
)

// Utilization summarizes how busy each resource was during a phase.
// It is obs.Utilization; see that type for the accessors.
type Utilization = obs.Utilization

// ProcSnapshot captures real process counters from /proc (Linux).
// It is obs.ProcSnapshot.
type ProcSnapshot = obs.ProcSnapshot

// ReadProc takes a best-effort snapshot of the current process.
// Fields that cannot be read are left zero; the error is non-nil only
// when nothing could be read at all.
func ReadProc() (ProcSnapshot, error) { return obs.ReadProc() }

// FromTimeline converts a simulated timeline into a utilization
// report.
func FromTimeline(tl *vm.Timeline) Utilization {
	return Utilization{
		ElapsedSeconds: tl.Elapsed(),
		CPUSeconds:     tl.CPUSeconds(),
		DiskSeconds:    tl.DiskSeconds(),
	}
}
