// Package trace records the page-access sequences of algorithms and
// analyzes their locality — the paper's §4 program: "extensively
// study the memory access patterns and locality of algorithms (e.g.,
// sequential scans vs random access) to better understand how they
// affect performance".
//
// The central tool is the Mattson reuse-distance analysis: from one
// recorded trace, MissRatioCurve computes the exact LRU miss ratio
// for every cache size simultaneously. In M3 terms this predicts,
// from a single small-scale instrumented run, where the Figure 1a
// knee will fall for any RAM budget — no re-running required.
package trace

import (
	"fmt"
	"sort"

	"m3/internal/mmap"
	"m3/internal/store"
)

// Trace is a recorded sequence of page references.
type Trace struct {
	// PageSize is the granularity in bytes.
	PageSize int64
	// Pages is the reference string: one entry per page touch, in
	// access order.
	Pages []int64
}

// Recorder wraps a store.Store and appends every Touch/TouchWrite to
// a trace while forwarding to the underlying backend. It implements
// store.Store.
type Recorder struct {
	store.Store
	trace Trace
}

// NewRecorder wraps s, recording at the given page size (default
// 4096).
func NewRecorder(s store.Store, pageSize int64) *Recorder {
	if pageSize <= 0 {
		pageSize = 4096
	}
	return &Recorder{Store: s, trace: Trace{PageSize: pageSize}}
}

// record expands an element range into page references.
func (r *Recorder) record(start, n int) {
	if n <= 0 {
		return
	}
	first := int64(start) * 8 / r.trace.PageSize
	last := (int64(start+n)*8 - 1) / r.trace.PageSize
	for p := first; p <= last; p++ {
		r.trace.Pages = append(r.trace.Pages, p)
	}
}

// Touch records and forwards.
func (r *Recorder) Touch(start, n int) float64 {
	r.record(start, n)
	return r.Store.Touch(start, n)
}

// TouchWrite records and forwards.
func (r *Recorder) TouchWrite(start, n int) float64 {
	r.record(start, n)
	return r.Store.TouchWrite(start, n)
}

// Advise forwards.
func (r *Recorder) Advise(a mmap.Advice) error { return r.Store.Advise(a) }

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.trace }

// Len returns the number of recorded page references.
func (t *Trace) Len() int { return len(t.Pages) }

// DistinctPages returns the working-set size in pages.
func (t *Trace) DistinctPages() int {
	seen := make(map[int64]struct{})
	for _, p := range t.Pages {
		seen[p] = struct{}{}
	}
	return len(seen)
}

// SequentialFraction reports the fraction of references whose page is
// the same as or successor of the previous reference — a cheap
// locality fingerprint (1.0 for a pure scan).
func (t *Trace) SequentialFraction() float64 {
	if len(t.Pages) < 2 {
		return 1
	}
	seq := 0
	for i := 1; i < len(t.Pages); i++ {
		d := t.Pages[i] - t.Pages[i-1]
		if d == 0 || d == 1 {
			seq++
		}
	}
	return float64(seq) / float64(len(t.Pages)-1)
}

// ColdMiss marks a first-time reference in the reuse-distance array.
const ColdMiss = int64(-1)

// ReuseDistances computes the LRU stack distance of every reference:
// the number of distinct pages touched since the previous reference
// to the same page (ColdMiss for first touches). O(n log n) via a
// Fenwick tree over reference positions.
func (t *Trace) ReuseDistances() []int64 {
	n := len(t.Pages)
	out := make([]int64, n)
	bit := newFenwick(n)
	lastPos := make(map[int64]int, 1024)
	for i, page := range t.Pages {
		if prev, ok := lastPos[page]; ok {
			// Marks strictly between the two references are the
			// latest positions of the distinct pages touched in
			// between; an LRU cache of capacity C hits iff that
			// count is below C.
			out[i] = int64(bit.rangeSum(prev+1, i-1))
			bit.add(prev, -1)
		} else {
			out[i] = ColdMiss
		}
		bit.add(i, 1)
		lastPos[page] = i
	}
	return out
}

// fenwick is a binary indexed tree over positions.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefixSum returns sum of [0, i].
func (f *fenwick) prefixSum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns sum of [lo, hi] (0 if empty).
func (f *fenwick) rangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	s := f.prefixSum(hi)
	if lo > 0 {
		s -= f.prefixSum(lo - 1)
	}
	return s
}

// MissRatioPoint pairs a cache size with its exact LRU miss ratio.
type MissRatioPoint struct {
	CachePages int64
	MissRatio  float64
}

// MissRatioCurve evaluates the exact LRU miss ratio at each cache
// size (in pages) from the trace's reuse distances: a reference
// misses iff it is cold or its stack distance >= the cache size.
func (t *Trace) MissRatioCurve(cachePages []int64) ([]MissRatioPoint, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	dists := t.ReuseDistances()
	// Histogram distances once, then integrate per cache size.
	var cold int64
	hist := make(map[int64]int64)
	for _, d := range dists {
		if d == ColdMiss {
			cold++
		} else {
			hist[d]++
		}
	}
	keys := make([]int64, 0, len(hist))
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	out := make([]MissRatioPoint, 0, len(cachePages))
	total := float64(len(dists))
	for _, c := range cachePages {
		if c < 1 {
			return nil, fmt.Errorf("trace: non-positive cache size %d", c)
		}
		// Misses: cold + references with distance >= c.
		misses := cold
		for _, k := range keys {
			if k >= c {
				misses += hist[k]
			}
		}
		out = append(out, MissRatioPoint{CachePages: c, MissRatio: float64(misses) / total})
	}
	return out, nil
}

// KneePages estimates the cache size (in pages) at which the miss
// ratio first drops below threshold — the predicted RAM requirement
// for in-memory behaviour. Returns 0 when no evaluated size achieves
// it.
func KneePages(curve []MissRatioPoint, threshold float64) int64 {
	for _, p := range curve {
		if p.MissRatio < threshold {
			return p.CachePages
		}
	}
	return 0
}
