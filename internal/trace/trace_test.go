package trace

import (
	"math"
	"testing"
	"testing/quick"

	"m3/internal/mat"
	"m3/internal/store"
)

func pageTrace(pages ...int64) *Trace {
	return &Trace{PageSize: 4096, Pages: pages}
}

func TestReuseDistancesBasic(t *testing.T) {
	// a b a: second 'a' has one distinct page (b) in between.
	tr := pageTrace(0, 1, 0)
	d := tr.ReuseDistances()
	if d[0] != ColdMiss || d[1] != ColdMiss {
		t.Errorf("cold misses wrong: %v", d)
	}
	if d[2] != 1 {
		t.Errorf("distance = %d want 1", d[2])
	}
}

func TestReuseDistancesImmediateRepeat(t *testing.T) {
	tr := pageTrace(5, 5, 5)
	d := tr.ReuseDistances()
	if d[1] != 0 || d[2] != 0 {
		t.Errorf("immediate repeats: %v", d)
	}
}

func TestReuseDistancesCyclicScan(t *testing.T) {
	// Scanning P pages twice: every second-pass reference has
	// distance P-1 (all other pages touched in between).
	const p = 8
	var pages []int64
	for pass := 0; pass < 2; pass++ {
		for i := int64(0); i < p; i++ {
			pages = append(pages, i)
		}
	}
	d := pageTrace(pages...).ReuseDistances()
	for i := p; i < 2*p; i++ {
		if d[i] != p-1 {
			t.Errorf("second pass ref %d: distance %d want %d", i, d[i], p-1)
		}
	}
}

func TestMissRatioCurveCyclicScan(t *testing.T) {
	// The canonical LRU cliff: a repeated scan of P pages hits 0%
	// with cache >= P and ~100% below — the mechanism behind the
	// Figure 1a knee.
	const p = 16
	var pages []int64
	for pass := 0; pass < 4; pass++ {
		for i := int64(0); i < p; i++ {
			pages = append(pages, i)
		}
	}
	tr := pageTrace(pages...)
	curve, err := tr.MissRatioCurve([]int64{1, p - 1, p, p + 1})
	if err != nil {
		t.Fatal(err)
	}
	// Below capacity: everything misses (cold + evict-before-reuse).
	if curve[0].MissRatio != 1 || curve[1].MissRatio != 1 {
		t.Errorf("undersized cache miss ratios: %v %v", curve[0].MissRatio, curve[1].MissRatio)
	}
	// At capacity: only the cold first pass misses (16 of 64).
	if want := 0.25; math.Abs(curve[2].MissRatio-want) > 1e-12 {
		t.Errorf("exact-fit miss ratio = %v want %v", curve[2].MissRatio, want)
	}
	if curve[3].MissRatio != curve[2].MissRatio {
		t.Errorf("oversized cache should match exact fit")
	}
	if knee := KneePages(curve, 0.5); knee != p {
		t.Errorf("knee = %d pages want %d", knee, p)
	}
}

func TestMissRatioCurveValidation(t *testing.T) {
	if _, err := pageTrace().MissRatioCurve([]int64{1}); err == nil {
		t.Error("accepted empty trace")
	}
	if _, err := pageTrace(1).MissRatioCurve([]int64{0}); err == nil {
		t.Error("accepted cache size 0")
	}
}

func TestSequentialFraction(t *testing.T) {
	if got := pageTrace(0, 1, 2, 3).SequentialFraction(); got != 1 {
		t.Errorf("scan fraction = %v", got)
	}
	if got := pageTrace(0, 7, 3, 9).SequentialFraction(); got != 0 {
		t.Errorf("random fraction = %v", got)
	}
	if got := pageTrace(5).SequentialFraction(); got != 1 {
		t.Errorf("single ref fraction = %v", got)
	}
}

func TestDistinctPages(t *testing.T) {
	if got := pageTrace(1, 2, 1, 3, 2).DistinctPages(); got != 3 {
		t.Errorf("distinct = %d", got)
	}
}

func TestRecorderCapturesMatrixScan(t *testing.T) {
	// Instrument a real training-style scan: a matrix over a
	// recorded store; MulVec produces a pure sequential trace.
	const rows, cols = 32, 64 // 64 elements = 512 B per row, 8 rows/page
	h := store.NewHeap(rows * cols)
	rec := NewRecorder(h, 4096)
	x, err := mat.NewDenseStore(rec, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, rows)
	v := make([]float64, cols)
	x.MulVec(y, v)
	tr := rec.Trace()
	if tr.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	if got := tr.SequentialFraction(); got != 1 {
		t.Errorf("matrix scan sequential fraction = %v", got)
	}
	if got := tr.DistinctPages(); got != rows*cols*8/4096 {
		t.Errorf("distinct pages = %d want %d", got, rows*cols*8/4096)
	}

	// Second scan: the recorder predicts the two-regime behaviour.
	x.MulVec(y, v)
	pages := int64(tr.DistinctPages())
	curve, err := tr.MissRatioCurve([]int64{pages / 2, pages, pages * 2})
	if err != nil {
		t.Fatal(err)
	}
	if !(curve[0].MissRatio > curve[1].MissRatio) {
		t.Errorf("undersized cache (%v) not worse than fitting cache (%v)",
			curve[0].MissRatio, curve[1].MissRatio)
	}
}

func TestRecorderForwardsWrites(t *testing.T) {
	h := store.NewHeap(1024)
	rec := NewRecorder(h, 0) // default page size
	rec.TouchWrite(0, 512)
	if rec.Trace().Len() != 1 {
		t.Errorf("write refs = %d want 1", rec.Trace().Len())
	}
	if h.Stats().BytesTouched != 512*8 {
		t.Errorf("underlying store not forwarded: %d", h.Stats().BytesTouched)
	}
}

// Property: miss ratio is monotonically non-increasing in cache size
// (LRU is a stack algorithm — Mattson's inclusion property).
func TestPropertyMissRatioMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		pages := make([]int64, len(raw))
		for i, v := range raw {
			pages[i] = int64(v % 32)
		}
		tr := pageTrace(pages...)
		sizes := []int64{1, 2, 4, 8, 16, 32, 64}
		curve, err := tr.MissRatioCurve(sizes)
		if err != nil {
			return false
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].MissRatio > curve[i-1].MissRatio+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the reuse-distance based miss count at capacity C equals
// a direct LRU simulation's miss count.
func TestPropertyMatchesDirectLRUSimulation(t *testing.T) {
	f := func(raw []uint8, capRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		capacity := int64(capRaw%16) + 1
		pages := make([]int64, len(raw))
		for i, v := range raw {
			pages[i] = int64(v % 24)
		}
		tr := pageTrace(pages...)
		curve, err := tr.MissRatioCurve([]int64{capacity})
		if err != nil {
			return false
		}
		// Direct LRU simulation.
		type node struct{ page int64 }
		var stack []node
		misses := 0
		for _, p := range pages {
			found := -1
			for i, nd := range stack {
				if nd.page == p {
					found = i
					break
				}
			}
			if found < 0 {
				misses++
				stack = append([]node{{p}}, stack...)
				if int64(len(stack)) > capacity {
					stack = stack[:capacity]
				}
			} else {
				nd := stack[found]
				stack = append(stack[:found], stack[found+1:]...)
				stack = append([]node{nd}, stack...)
			}
		}
		want := float64(misses) / float64(len(pages))
		return math.Abs(curve[0].MissRatio-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
