package core

// The estimator surface: a Spark-MLlib-shaped interface pair that
// makes every M3 algorithm interchangeable behind Engine.Fit. The
// concrete estimators live in the public root package (they wrap the
// internal/ml trainers); core only defines the contract and the
// Dataset value that carries a table into training together with the
// engine's execution settings.

import (
	"context"
	"errors"
	"fmt"

	"m3/internal/mat"
	"m3/internal/obs"
)

// Dataset is what an Estimator trains on: a feature matrix, its
// labels, and the execution context the owning engine established
// (worker pool, storage backend). Engine.Fit builds one from a Table;
// engine-less callers (plain heap matrices) can construct it directly
// or through the root package's Fit helper.
type Dataset struct {
	// X is the feature matrix (heap- or mmap-backed; estimators
	// cannot tell the difference).
	X *mat.Dense
	// Labels is the raw label vector from the dataset file (nil when
	// the data is unlabelled). Use BinaryLabels / IntLabels for typed
	// views.
	Labels []float64
	// Workers is the engine-resolved worker-pool size estimators
	// inherit unless their FitOptions override it. 0 lets the
	// execution layer pick runtime.NumCPU().
	Workers int
	// Mapped reports whether X is backed by a memory mapping.
	Mapped bool
	// Path is the source file, when the dataset came from one.
	Path string
	// Engine is the owning engine (nil for engine-less datasets).
	Engine *Engine

	// scratch is the engine allocation backing a transformed dataset
	// (nil for opened tables and caller-built datasets); Release frees
	// it early.
	scratch *ScratchMatrix
}

// BinaryLabels returns a 0/1 view of the labels: entries equal to
// positive become 1, everything else 0 — the "digit d vs rest" tasks
// of the paper's experiments. Returns nil when the dataset is
// unlabelled.
func (ds *Dataset) BinaryLabels(positive float64) []float64 {
	if ds.Labels == nil {
		return nil
	}
	out := make([]float64, len(ds.Labels))
	for i, v := range ds.Labels {
		//m3vet:allow floateq -- class labels are exact ids, never computed
		if v == positive {
			out[i] = 1
		}
	}
	return out
}

// IntLabels returns the labels as class indices, validating that every
// entry is a whole number in [0, classes).
func (ds *Dataset) IntLabels(classes int) ([]int, error) {
	if ds.Labels == nil {
		return nil, errors.New("core: dataset has no labels")
	}
	out := make([]int, len(ds.Labels))
	for i, v := range ds.Labels {
		n := int(v)
		//m3vet:allow floateq -- integrality check: exact comparison is the test
		if float64(n) != v || n < 0 || n >= classes {
			return nil, fmt.Errorf("core: label[%d] = %v not an integer in [0,%d)", i, v, classes)
		}
		out[i] = n
	}
	return out, nil
}

// Model is a fitted model: single-row and batch prediction plus
// persistence. Prediction returns a float64 whatever the task —
// classifiers return the class index, regressors the value, clusterers
// the cluster, transformers the leading coordinate — so models stay
// interchangeable behind the interface; richer accessors live on the
// concrete fitted types.
//
// Concurrency contract: once fitted, a Model's state is read-only,
// and Predict and PredictMatrix must be safe for concurrent use from
// many goroutines on the one model value — each call works on
// caller-provided input and per-call outputs/scratch (per-worker
// kernels for fused pipelines, per-scan search state for k-NN, atomic
// store Touch counters underneath). The serving layer relies on this:
// it issues overlapping PredictMatrix batches against a single model
// snapshot without locking.
type Model interface {
	// Predict scores a single feature row.
	Predict(row []float64) float64
	// PredictMatrix scores every row of x in one blocked parallel
	// scan, returning one value per row.
	PredictMatrix(x *mat.Dense) ([]float64, error)
	// Save persists the model to path in the self-describing modelio
	// format. Models without a serial form (k-NN) return an error.
	Save(path string) error
}

// Estimator is an unfitted algorithm configuration: Fit trains it on a
// dataset and returns the fitted model. Implementations must honor
// ctx (cancellation takes effect within one data block or iteration)
// and the dataset's Workers unless their own options override it.
type Estimator interface {
	Fit(ctx context.Context, ds *Dataset) (Model, error)
}

// Dataset builds the training view of an opened table, carrying the
// engine's worker configuration so estimators inherit it.
func (e *Engine) Dataset(t *Table) *Dataset {
	return &Dataset{
		X:       t.X,
		Labels:  t.Labels,
		Workers: e.Workers(),
		Mapped:  t.Mapped,
		Path:    t.Path,
		Engine:  e,
	}
}

// Fit trains an estimator on an opened table — the algorithm-agnostic
// entry point of the M3 API: the same call fits logistic regression,
// k-means or PCA, in-memory or out-of-core, and the engine's worker
// pool, store accounting and prefetch settings reach the trainer
// automatically. ctx cancels the fit within one data block or
// iteration, returning ctx.Err().
func (e *Engine) Fit(ctx context.Context, est Estimator, t *Table) (Model, error) {
	if err := e.checkOpen(); err != nil {
		return nil, err
	}
	if est == nil {
		return nil, errors.New("core: nil estimator")
	}
	if t == nil || t.X == nil {
		return nil, errors.New("core: nil table")
	}
	if obs.Enabled() {
		sp := obs.StartSpan("fit", fmt.Sprintf("fit %T", est)).
			SetArg("rows", t.X.Rows()).SetArg("cols", t.X.Cols()).
			SetArg("mapped", t.Mapped)
		defer sp.End()
	}
	return est.Fit(ctx, e.Dataset(t))
}
