package core

import (
	"os"
	"path/filepath"
	"testing"

	"m3/internal/infimnist"
)

func writeTestDataset(t *testing.T, n int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.m3")
	if err := (infimnist.Generator{Seed: 5}).WriteDataset(path, n); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenAutoSmallLoadsHeap(t *testing.T) {
	path := writeTestDataset(t, 10)
	e := New(Config{MemoryBudget: 1 << 30})
	defer e.Close()
	tbl, err := e.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Mapped {
		t.Error("small dataset was mapped in Auto mode")
	}
	if tbl.X.Rows() != 10 || tbl.X.Cols() != infimnist.Features {
		t.Errorf("dims %dx%d", tbl.X.Rows(), tbl.X.Cols())
	}
	if len(tbl.Labels) != 10 {
		t.Errorf("labels %d", len(tbl.Labels))
	}
}

func TestOpenAutoLargeMaps(t *testing.T) {
	path := writeTestDataset(t, 10)
	e := New(Config{MemoryBudget: 1024}) // tiny budget forces mapping
	defer e.Close()
	tbl, err := e.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Mapped {
		t.Error("large dataset not mapped in Auto mode")
	}
}

func TestOpenExplicitModes(t *testing.T) {
	path := writeTestDataset(t, 5)
	for _, mode := range []Mode{InMemory, MemoryMapped} {
		e := New(Config{Mode: mode})
		tbl, err := e.Open(path)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if got := tbl.Mapped; got != (mode == MemoryMapped) {
			t.Errorf("%v: Mapped = %v", mode, got)
		}
		// Both backends expose identical data.
		img, _ := (infimnist.Generator{Seed: 5}).Image(3)
		for j := 0; j < 20; j++ {
			if tbl.X.At(3, j) != img[j] {
				t.Fatalf("%v: X(3,%d) = %v want %v", mode, j, tbl.X.At(3, j), img[j])
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenMissing(t *testing.T) {
	e := New(Config{})
	defer e.Close()
	if _, err := e.Open(filepath.Join(t.TempDir(), "nope.m3")); err == nil {
		t.Error("opened missing file")
	}
}

func TestAllocScratch(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{TempDir: dir})
	m, err := e.Alloc(100, 50)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(99, 49, 7)
	if m.At(99, 49) != 7 {
		t.Error("scratch write failed")
	}
	// Backing file exists while open…
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp entries = %d", len(entries))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// …and is removed on Close.
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("temp files left after Close: %v", entries)
	}
}

func TestAllocValidation(t *testing.T) {
	e := New(Config{TempDir: t.TempDir()})
	defer e.Close()
	if _, err := e.Alloc(0, 5); err == nil {
		t.Error("accepted zero rows")
	}
}

func TestClosedEngineRefuses(t *testing.T) {
	path := writeTestDataset(t, 3)
	e := New(Config{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Open(path); err != ErrClosed {
		t.Errorf("Open after Close = %v", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("double Close = %v", err)
	}
}

func TestTableCloseIdempotent(t *testing.T) {
	path := writeTestDataset(t, 3)
	e := New(Config{Mode: MemoryMapped})
	defer e.Close()
	tbl, err := e.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Errorf("second table Close: %v", err)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Auto: "auto", InMemory: "in-memory", MemoryMapped: "memory-mapped", Mode(9): "mode(9)",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d) = %q want %q", int(m), m.String(), want)
		}
	}
}
