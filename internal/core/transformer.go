package core

// The transformer surface: preprocessing stages behind the same
// engine-bound contract as estimators, so a scale→reduce→train
// pipeline is one Engine.Fit call and its intermediate matrices are
// materialized through the engine — heap when they fit the budget,
// temp-file mappings when they don't. Concrete transformers live in
// the public root package; core defines the contract and the shared
// blocked transform pass every stage runs on.

import (
	"context"
	"errors"
	"fmt"

	"m3/internal/exec"
	"m3/internal/mat"
)

// RowKernel is the per-worker fused transform kernel shared with the
// execution layer: it writes the transformed row into dst and returns
// the row the consumer sees (see exec.RowKernel).
type RowKernel = exec.RowKernel

// TransformerModel is a fitted preprocessing stage. Transform
// materializes a whole dataset through the owning engine (see
// TransformDataset); TransformRow maps a single feature row — the
// prediction-time path, which pipelines chain before the final
// model's Predict. Save persists the stage in the self-describing
// modelio format.
type TransformerModel interface {
	// Transform materializes the transformed dataset. The returned
	// dataset's matrix is engine-allocated scratch (mode-aware: heap
	// below the memory budget, mmap-backed above); the caller frees it
	// early with Dataset.Release, or leaves it to Engine.Close.
	Transform(ctx context.Context, ds *Dataset) (*Dataset, error)
	// TransformRow maps one feature row, returning a fresh slice whose
	// width may differ from the input (dimensionality reduction).
	TransformRow(row []float64) []float64
	// Save persists the fitted stage to path.
	Save(path string) error
}

// Transformer is an unfitted preprocessing configuration: FitTransform
// learns the stage's statistics from a dataset (one or more blocked
// scans) and returns the fitted stage. Implementations must honor ctx
// within one data block and the dataset's Workers unless their own
// options override it.
type Transformer interface {
	FitTransform(ctx context.Context, ds *Dataset) (TransformerModel, error)
}

// BlockTransformer is the operator-fusion contract: a fitted stage
// that exposes its per-worker block kernel, so scans can apply the
// stage between the block read and the consumer callback instead of
// materializing a transformed matrix. Pipelines fuse every
// BlockTransformer stage (FusedDataset); stages lacking it fall back
// to the materializing Transform path.
type BlockTransformer interface {
	TransformerModel
	// InCols is the source row width the kernel consumes.
	InCols() int
	// OutCols is the transformed row width the kernel produces.
	OutCols() int
	// BlockKernel returns a fresh kernel for one scan worker. The
	// kernel writes each transformed row into dst (OutCols wide,
	// reused across calls) and must not write through src; any
	// reusable scratch belongs to the returned closure.
	BlockKernel() RowKernel
}

// Release frees the engine scratch backing a transformed dataset —
// the matrix (and its temp file, when mapped) become invalid. A no-op
// for datasets that did not come from TransformDataset. Idempotent.
func (ds *Dataset) Release() error {
	s := ds.scratch
	if s == nil {
		return nil
	}
	ds.scratch = nil
	return s.Release()
}

// TransformDataset materializes a row function applied to every row
// of ds as a new dataset, through the owning engine: the output
// matrix is Engine.AllocScratch scratch (heap below the memory
// budget, mmap-backed above — out-of-core pipelines never force an
// intermediate onto the heap), and the pass runs blocked on the
// shared execution layer with ctx cancellation at block granularity.
// newFn is called once per block to instantiate the row kernel —
// giving each a private home for reusable scratch (a centering
// buffer, say) with no cross-worker sharing; the kernel receives the
// destination row (outCols wide, reused within the block) and the
// source row, and returns the row to store (dst, or src for identity
// kernels). Each output row is written by exactly one worker, so the
// result is identical to a sequential pass. workers <= 0 inherits
// the dataset's engine setting. Labels carry through unchanged. On
// error — including cancellation — the scratch is released before
// returning, so an aborted pipeline leaves no temp file behind.
func TransformDataset(ctx context.Context, ds *Dataset, outCols, workers int, newFn func() RowKernel) (*Dataset, error) {
	if ds == nil || ds.X == nil {
		return nil, errors.New("core: nil dataset")
	}
	if outCols < 1 {
		return nil, fmt.Errorf("core: non-positive output width %d", outCols)
	}
	// Check ctx before allocating: a pre-cancelled context must not
	// create (and then have to delete) an mmap-backed temp file.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	rows := ds.X.Rows()
	var out *ScratchMatrix
	if ds.Engine != nil {
		var err error
		if out, err = ds.Engine.AllocScratch(rows, outCols); err != nil {
			return nil, err
		}
	} else {
		// Engine-less datasets (m3.Fit on bare heap matrices)
		// materialize on the heap.
		out = &ScratchMatrix{X: mat.NewDense(rows, outCols)}
		out.X.SetWorkersHint(ds.Workers)
	}

	type blockState struct {
		buf []float64
		fn  RowKernel
	}
	_, _, err := exec.ReduceRows(ds.X.ScanCtx(ctx, workers),
		func() *blockState { return &blockState{buf: make([]float64, outCols), fn: newFn()} },
		func(st *blockState, i int, row []float64) {
			out.X.SetRow(i, st.fn(st.buf, row))
		},
		func(dst, src *blockState) {})
	if err != nil {
		return nil, errors.Join(err, out.Release())
	}
	return &Dataset{
		X:       out.X,
		Labels:  ds.Labels,
		Workers: ds.Workers,
		Mapped:  out.Mapped,
		Engine:  ds.Engine,
		scratch: out,
	}, nil
}
