package core

// Operator fusion for transformer chains: instead of materializing a
// full intermediate matrix per pipeline stage, a fused dataset is a
// virtual view whose scans run each stage's per-worker block kernel
// between the block read and the consumer callback. A K-stage
// pipeline's fitting passes then touch only the source data — the
// paper's streaming thesis applied to preprocessing: intermediates
// exist one row at a time in per-worker buffers, never in memory or
// on disk as whole matrices.

import (
	"context"
	"errors"
	"fmt"

	"m3/internal/mat"
)

// FuseKernels composes a transformer chain into a single per-worker
// kernel factory: each returned kernel threads a row through every
// stage, staging intermediates in private buffers so one kernel call
// performs the whole chain with zero allocation. The chain must be
// non-empty and width-compatible (validated by FusedDataset).
func FuseKernels(chain []BlockTransformer) func() RowKernel {
	if len(chain) == 1 {
		bt := chain[0]
		return bt.BlockKernel
	}
	stages := append([]BlockTransformer(nil), chain...)
	return func() RowKernel {
		kerns := make([]RowKernel, len(stages))
		bufs := make([][]float64, len(stages)-1)
		for i, bt := range stages {
			kerns[i] = bt.BlockKernel()
			if i < len(bufs) {
				bufs[i] = make([]float64, bt.OutCols())
			}
		}
		return func(dst, src []float64) []float64 {
			cur := src
			for i, k := range kerns[:len(kerns)-1] {
				cur = k(bufs[i], cur)
			}
			return kerns[len(kerns)-1](dst, cur)
		}
	}
}

// FusedDataset returns a virtual dataset that applies chain on the
// fly: its matrix is a fused view (mat.NewFused) whose scans deliver
// transformed rows straight from the source blocks, so fitting the
// next stage's statistics — or a single-pass trainer — costs no
// intermediate materialization. Fusing an already-fused dataset
// composes the chains (the source store is still read exactly once
// per row). The view shares the source backing: it stays valid
// exactly as long as ds does, and Release on it is a no-op.
func FusedDataset(ds *Dataset, chain []BlockTransformer) (*Dataset, error) {
	if ds == nil || ds.X == nil {
		return nil, errors.New("core: nil dataset")
	}
	if len(chain) == 0 {
		return nil, errors.New("core: empty transformer chain")
	}
	in := ds.X.Cols()
	for i, bt := range chain {
		if bt == nil {
			return nil, fmt.Errorf("core: nil transformer at chain position %d", i)
		}
		if got := bt.InCols(); got != in {
			return nil, fmt.Errorf("core: chain stage %d expects %d columns, previous stage yields %d", i, got, in)
		}
		in = bt.OutCols()
		if in < 1 {
			return nil, fmt.Errorf("core: chain stage %d yields non-positive width %d", i, in)
		}
	}
	x := mat.NewFused(ds.X, in, FuseKernels(chain))
	return &Dataset{
		X:       x,
		Labels:  ds.Labels,
		Workers: ds.Workers,
		Mapped:  ds.Mapped,
		Path:    ds.Path,
		Engine:  ds.Engine,
	}, nil
}

// Materialize runs one fused pass that writes ds's rows — transformed
// rows, when ds is a fused view — into engine scratch, returning a
// concrete dataset. This is the single materialization a pipeline
// performs for multi-epoch trainers: the cache is built by streaming
// the source through the whole fused chain once. For an already
// concrete dataset it is a plain copy. workers <= 0 inherits the
// dataset's engine setting.
func Materialize(ctx context.Context, ds *Dataset, workers int) (*Dataset, error) {
	if ds == nil || ds.X == nil {
		return nil, errors.New("core: nil dataset")
	}
	return TransformDataset(ctx, ds, ds.X.Cols(), workers, func() RowKernel {
		// Identity: the scan already applied any fused chain, so the
		// delivered row is the transformed row; SetRow copies it.
		return func(dst, src []float64) []float64 { return src }
	})
}
