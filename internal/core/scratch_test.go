package core

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"m3/internal/mat"
)

func scratchFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "m3-alloc-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestAllocScratchModeAware: the scratch backend follows the engine's
// policy — heap for InMemory and under-budget Auto, temp-file mapping
// for MemoryMapped and over-budget Auto.
func TestAllocScratchModeAware(t *testing.T) {
	cases := []struct {
		name       string
		cfg        Config
		rows, cols int
		mapped     bool
	}{
		{"in-memory", Config{Mode: InMemory}, 100, 10, false},
		{"mapped", Config{Mode: MemoryMapped}, 100, 10, true},
		{"auto-under-budget", Config{Mode: Auto, MemoryBudget: 1 << 20}, 100, 10, false},
		{"auto-over-budget", Config{Mode: Auto, MemoryBudget: 1024}, 100, 10, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.cfg.TempDir = dir
			e := New(tc.cfg)
			defer e.Close()
			s, err := e.AllocScratch(tc.rows, tc.cols)
			if err != nil {
				t.Fatal(err)
			}
			if s.Mapped != tc.mapped {
				t.Errorf("Mapped = %v, want %v", s.Mapped, tc.mapped)
			}
			if r, c := s.X.Dims(); r != tc.rows || c != tc.cols {
				t.Errorf("dims %dx%d", r, c)
			}
			if !s.X.Store().Writable() {
				t.Error("scratch not writable")
			}
			wantFiles := 0
			if tc.mapped {
				wantFiles = 1
			}
			if files := scratchFiles(t, dir); len(files) != wantFiles {
				t.Errorf("%d scratch files, want %d", len(files), wantFiles)
			}
			if err := s.Release(); err != nil {
				t.Fatal(err)
			}
			if files := scratchFiles(t, dir); len(files) != 0 {
				t.Errorf("files remain after Release: %v", files)
			}
			if err := s.Release(); err != nil {
				t.Errorf("second Release: %v", err)
			}
		})
	}
}

// TestAllocScratchEngineCloseAfterRelease: a released scratch is
// untracked, so engine Close neither double-frees nor errors; an
// unreleased one is freed by Close.
func TestAllocScratchEngineCloseAfterRelease(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{Mode: MemoryMapped, TempDir: dir})
	released, err := e.AllocScratch(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := e.AllocScratch(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := released.Release(); err != nil {
		t.Fatal(err)
	}
	if files := scratchFiles(t, dir); len(files) != 1 {
		t.Fatalf("want the kept scratch's file, found %v", files)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if files := scratchFiles(t, dir); len(files) != 0 {
		t.Errorf("files remain after engine Close: %v", files)
	}
	if err := kept.Release(); err != nil {
		t.Errorf("Release after engine Close: %v", err)
	}
}

// TestAllocScratchClosedEngine: allocation on a closed engine fails
// without leaving files.
func TestAllocScratchClosedEngine(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{Mode: MemoryMapped, TempDir: dir})
	e.Close()
	if _, err := e.AllocScratch(4, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	e2 := New(Config{Mode: InMemory})
	e2.Close()
	if _, err := e2.AllocScratch(4, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("heap path err = %v, want ErrClosed", err)
	}
	if files := scratchFiles(t, dir); len(files) != 0 {
		t.Errorf("closed-engine alloc left files: %v", files)
	}
	if _, err := e.AllocScratch(0, 4); err == nil {
		t.Error("accepted non-positive dimensions")
	}
}

// TestTransformDatasetEngineless: TransformDataset without an engine
// materializes on the heap, carries labels through, and matches a
// sequential computation.
func TestTransformDatasetEngineless(t *testing.T) {
	const n, d = 50, 3
	x := mat.NewDense(n, d)
	labels := make([]float64, n)
	for i := 0; i < n; i++ {
		labels[i] = float64(i % 2)
		for j := 0; j < d; j++ {
			x.Set(i, j, float64(i*d+j))
		}
	}
	ds := &Dataset{X: x, Labels: labels}
	out, err := TransformDataset(context.Background(), ds, d, 2, func() RowKernel {
		return func(dst, src []float64) []float64 {
			for j := range dst {
				dst[j] = 2 * src[j]
			}
			return dst
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Mapped {
		t.Error("engine-less transform claims a mapping")
	}
	if &out.Labels[0] != &labels[0] {
		t.Error("labels not carried through")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if got := out.X.At(i, j); got != 2*x.At(i, j) {
				t.Fatalf("out[%d,%d] = %v", i, j, got)
			}
		}
	}
	if err := out.Release(); err != nil {
		t.Fatal(err)
	}
	if err := (&Dataset{X: x}).Release(); err != nil {
		t.Errorf("Release on a plain dataset: %v", err)
	}
}

// TestTransformDatasetPreCancelled: a pre-cancelled context stops
// TransformDataset before AllocScratch — regression for the bug where
// the scratch (and its mmap temp file) was created first and then had
// to be deleted. The engine's alloc counter is the authoritative
// witness that no allocation ever happened.
func TestTransformDatasetPreCancelled(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{Mode: MemoryMapped, TempDir: dir})
	defer e.Close()
	x := mat.NewDense(20, 3)
	ds := &Dataset{X: x, Engine: e}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := TransformDataset(ctx, ds, 3, 1, func() RowKernel {
		return func(dst, src []float64) []float64 { copy(dst, src); return dst }
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Error("got a dataset from a pre-cancelled transform")
	}
	if st := e.Stats(); st.Allocs != 0 {
		t.Errorf("pre-cancelled transform allocated scratch (%d allocs)", st.Allocs)
	}
	if files := scratchFiles(t, dir); len(files) != 0 {
		t.Errorf("pre-cancelled transform left files: %v", files)
	}
}
