package core

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
)

// countScratch returns the number of m3-alloc scratch files in dir.
func countScratch(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "m3-alloc-") {
			n++
		}
	}
	return n
}

func TestAllocAfterCloseRefusesWithoutScratchFile(t *testing.T) {
	dir := t.TempDir()
	e := New(Config{TempDir: dir})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Alloc(4, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("Alloc on closed engine: err = %v, want ErrClosed", err)
	}
	if n := countScratch(t, dir); n != 0 {
		t.Errorf("closed engine left %d scratch files", n)
	}
}

func TestOpenAfterCloseRefuses(t *testing.T) {
	path := writeTestDataset(t, 4)
	e := New(Config{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Open(path); !errors.Is(err, ErrClosed) {
		t.Fatalf("Open on closed engine: err = %v, want ErrClosed", err)
	}
}

// TestCloseVsOpenAllocRace hammers Open and Alloc against a
// concurrent Close. Whatever interleaving occurs, every resource must
// end up released: either the operation won the race (and Close frees
// it) or it lost (and track frees it, reporting ErrClosed) — with no
// scratch file surviving either way. Run under -race this also
// exercises the engine's lock discipline.
func TestCloseVsOpenAllocRace(t *testing.T) {
	path := writeTestDataset(t, 8)
	for round := 0; round < 20; round++ {
		dir := t.TempDir()
		e := New(Config{TempDir: dir, Mode: MemoryMapped})

		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 8; i++ {
					if _, err := e.Open(path); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("Open: %v", err)
					}
					if _, err := e.Alloc(8, 8); err != nil && !errors.Is(err, ErrClosed) {
						t.Errorf("Alloc: %v", err)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := e.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		close(start)
		wg.Wait()
		// Everything that won the race was released by Close; late
		// losers were released by track. No scratch files remain.
		if err := e.Close(); err != nil {
			t.Errorf("idempotent Close: %v", err)
		}
		if n := countScratch(t, dir); n != 0 {
			t.Fatalf("round %d: %d scratch files leaked", round, n)
		}
	}
}
