// Package core ties M3 together: it manages dataset lifecycles and
// picks storage backends so that algorithm code never changes when a
// dataset outgrows RAM. This is the paper's contribution in API form —
// the "M3" column of Table 1.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"m3/internal/dataset"
	"m3/internal/exec"
	"m3/internal/mat"
	"m3/internal/mmap"
	"m3/internal/store"
)

// Mode selects a storage backend explicitly.
type Mode int

const (
	// Auto maps files larger than the memory budget and loads
	// smaller ones onto the heap.
	Auto Mode = iota
	// InMemory always loads onto the Go heap (Table 1 "Original").
	InMemory
	// MemoryMapped always maps (Table 1 "M3").
	MemoryMapped
)

func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case InMemory:
		return "in-memory"
	case MemoryMapped:
		return "memory-mapped"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config parameterizes an Engine.
type Config struct {
	// MemoryBudget is the heap budget used by Auto mode to decide
	// between loading and mapping (default: 1 GiB).
	MemoryBudget int64
	// Mode overrides backend selection.
	Mode Mode
	// Advise is applied to new mappings (default Sequential — ML
	// training scans).
	Advise mmap.Advice
	// TempDir hosts scratch allocations (default os.TempDir()).
	TempDir string
	// Workers sizes the chunked-execution worker pool (internal/exec)
	// that parallel scans over this engine's matrices use: <= 0
	// selects runtime.NumCPU(), 1 forces sequential scans. The engine
	// threads it through to trainers via Workers(); results are
	// identical for every value.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 1 << 30
	}
	if c.TempDir == "" {
		c.TempDir = os.TempDir()
	}
	return c
}

// Engine is an M3 session: it opens datasets with transparent backend
// selection and tracks every resource for a single Close.
type Engine struct {
	cfg Config

	mu     sync.Mutex
	closed bool
	open   []closer
	stats  ScratchStats

	// releases is atomic (not under mu): ScratchMatrix.Close runs
	// inside Engine.Close's resource loop, which holds mu.
	releases atomic.Int64
}

// allocSeq numbers mapped temp files across every engine in the
// process (see allocMapped).
var allocSeq atomic.Int64

// ScratchStats counts the engine's intermediate materializations —
// the traffic operator fusion exists to eliminate. Allocs and Bytes
// cover every AllocScratch call (heap or mapped); MappedBytes is the
// subset written through temp-file mappings, i.e. scratch disk
// traffic. Counters are cumulative for the engine's lifetime.
type ScratchStats struct {
	// Allocs is the number of AllocScratch calls that succeeded.
	Allocs int64
	// Bytes is the total size of those allocations.
	Bytes int64
	// MappedBytes is the portion of Bytes backed by temp-file
	// mappings (out-of-core scratch).
	MappedBytes int64
	// Releases is the number of scratch matrices whose backing has
	// been freed (Close or Release, including the engine's own Close).
	// Allocs - Releases is the engine's live scratch count.
	Releases int64
}

// Stats returns a snapshot of the engine's scratch counters.
func (e *Engine) Stats() ScratchStats {
	e.mu.Lock()
	s := e.stats
	e.mu.Unlock()
	s.Releases = e.releases.Load()
	return s
}

// countScratch records a successful scratch materialization.
func (e *Engine) countScratch(rows, cols int, mapped bool) {
	n := int64(rows) * int64(cols) * 8
	e.mu.Lock()
	e.stats.Allocs++
	e.stats.Bytes += n
	if mapped {
		e.stats.MappedBytes += n
	}
	e.mu.Unlock()
}

type closer interface{ Close() error }

// New creates an engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults()}
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("core: engine is closed")

// Workers returns the resolved chunked-execution pool size for this
// engine (Config.Workers, with <= 0 meaning runtime.NumCPU()).
func (e *Engine) Workers() int { return exec.Workers(e.cfg.Workers) }

// forget removes a resource from the Close list — used by scratch
// matrices released early, so a long-lived engine running many
// pipeline fits does not accumulate dead closers. A no-op when the
// resource is not tracked (heap scratches) or the engine is closed
// (Close owns the list then).
func (e *Engine) forget(c closer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	for i, o := range e.open {
		if o == c {
			e.open = append(e.open[:i], e.open[i+1:]...)
			return
		}
	}
}

// track registers a resource for Close. If the engine was closed
// between resource creation and registration, the resource is closed
// here — under the same lock that Close holds, so exactly one of
// track and Close releases it — and ErrClosed is returned, joined
// with any error from the release so nothing is silently dropped.
func (e *Engine) track(c closer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return errors.Join(ErrClosed, c.Close())
	}
	e.open = append(e.open, c)
	return nil
}

// checkOpen is the advisory fast-fail used at operation entry; track
// remains the authoritative gate for resources created afterwards.
func (e *Engine) checkOpen() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	return nil
}

// Table is an opened dataset: a feature matrix plus optional labels,
// backed by heap or mapping according to the engine's policy.
type Table struct {
	// X is the feature matrix.
	X *mat.Dense
	// Labels is the label vector (nil if the file has none).
	Labels []float64
	// Mapped reports whether the backing is a memory mapping.
	Mapped bool
	// Path is the source file.
	Path string

	res closer
}

// Close releases the table's backing store (idempotent).
func (t *Table) Close() error {
	if t.res == nil {
		return nil
	}
	err := t.res.Close()
	t.res = nil
	return err
}

type heapTable struct{}

func (heapTable) Close() error { return nil }

// Open opens an M3 dataset file, choosing the backend per the
// engine's mode, and returns its matrix view.
func (e *Engine) Open(path string) (*Table, error) {
	if err := e.checkOpen(); err != nil {
		return nil, err
	}

	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	mode := e.cfg.Mode
	if mode == Auto {
		if fi.Size() > e.cfg.MemoryBudget {
			mode = MemoryMapped
		} else {
			mode = InMemory
		}
	}

	switch mode {
	case InMemory:
		x, labels, hdr, err := dataset.ReadAll(path)
		if err != nil {
			return nil, err
		}
		t := &Table{
			X:      mat.NewDenseFrom(x, int(hdr.Rows), int(hdr.Cols)),
			Labels: labels,
			Path:   path,
			res:    heapTable{},
		}
		t.X.SetWorkersHint(e.cfg.Workers)
		if err := e.track(t); err != nil {
			return nil, err
		}
		return t, nil

	case MemoryMapped:
		ds, err := dataset.Open(path)
		if err != nil {
			return nil, err
		}
		if err := ds.Advise(e.cfg.Advise); err != nil {
			ds.Close()
			return nil, err
		}
		t := &Table{
			X:      ds.X(),
			Labels: ds.Labels(),
			Mapped: true,
			Path:   path,
			res:    ds,
		}
		t.X.SetWorkersHint(e.cfg.Workers)
		if err := e.track(t); err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, fmt.Errorf("core: unknown mode %v", mode)
}

// Alloc creates a rows×cols scratch matrix backed by a file-backed
// mapping in the engine's temp dir — the paper's mmapAlloc: a buffer
// that can exceed RAM. The matrix is writable; the backing file is
// removed on Close.
func (e *Engine) Alloc(rows, cols int) (*mat.Dense, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("core: non-positive dimensions %dx%d", rows, cols)
	}
	d, sc, err := e.allocMapped(rows, cols)
	if err != nil {
		return nil, err
	}
	if err := e.trackAlloc(sc, sc.path); err != nil {
		return nil, err
	}
	return d, nil
}

// allocMapped creates the temp-file-backed matrix Alloc and
// AllocScratch share: closed-check before the backing file exists (a
// closed engine must never leave scratch files behind), unique temp
// path, mapping, and teardown of a half-built allocation. The caller
// registers its own closer around the returned scratch via trackAlloc.
func (e *Engine) allocMapped(rows, cols int) (*mat.Dense, *scratch, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, nil, ErrClosed
	}
	// The sequence is process-global, not per-engine: engines sharing
	// a temp dir (e.g. several in-process dist workers) must never
	// reuse a live allocation's path — CreateMapped truncates, which
	// would shear pages out from under the other engine's mapping.
	path := filepath.Join(e.cfg.TempDir, fmt.Sprintf("m3-alloc-%d-%d.bin", os.Getpid(), allocSeq.Add(1)))
	e.mu.Unlock()

	ms, err := store.CreateMapped(path, int64(rows)*int64(cols))
	if err != nil {
		return nil, nil, err
	}
	d, err := mat.NewDenseStore(ms, rows, cols)
	if err != nil {
		ms.Close()
		os.Remove(path)
		return nil, nil, err
	}
	d.SetWorkersHint(e.cfg.Workers)
	return d, &scratch{Mapped: ms, path: path}, nil
}

// trackAlloc registers an allocation's closer for Engine.Close. If
// registration lost the race with Close, track already released the
// resource (unmapping and removing the file) under the engine lock;
// the fallback remove only covers removal failures surfaced through
// the joined error.
func (e *Engine) trackAlloc(c closer, path string) error {
	err := e.track(c)
	if err != nil {
		if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
			err = errors.Join(err, rmErr)
		}
	}
	return err
}

// ScratchMatrix is an engine-allocated intermediate matrix — the
// materialization target of a transformer stage. Unlike Alloc, the
// backend is chosen by the engine's mode: heap when the matrix fits
// the memory budget (or the engine is InMemory), a file-backed
// mapping in the temp dir when it would exceed it (or the engine is
// MemoryMapped) — so a preprocess→train pipeline stays out-of-core at
// every stage exactly when its inputs do. Release frees the backing
// early (pipelines release each intermediate as soon as the next
// stage has consumed it); an unreleased scratch is freed by
// Engine.Close like every other resource.
type ScratchMatrix struct {
	// X is the writable rows×cols matrix.
	X *mat.Dense
	// Mapped reports whether the backing is a temp-file mapping.
	Mapped bool

	eng      *Engine
	mu       sync.Mutex
	released bool
	res      closer // backing mapping + temp file; nil for heap
}

// Close frees the backing store and removes the temp file (mapped
// scratches). Idempotent, so the engine's Close after an early
// Release is a no-op. It does not untrack the scratch; use Release.
func (s *ScratchMatrix) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.released {
		return nil
	}
	s.released = true
	if s.eng != nil {
		s.eng.releases.Add(1)
	}
	if s.res == nil {
		return nil
	}
	return s.res.Close()
}

// Release frees the backing store and untracks the scratch from its
// engine, so releasing intermediates eagerly keeps the engine's
// resource list — and the temp dir — bounded. Idempotent.
func (s *ScratchMatrix) Release() error {
	err := s.Close()
	if s.eng != nil {
		s.eng.forget(s)
	}
	return err
}

// AllocScratch allocates a rows×cols intermediate matrix through the
// engine's backend policy: InMemory engines (and Auto engines when
// the matrix fits MemoryBudget) return a heap matrix with nothing to
// clean up; MemoryMapped engines (and Auto above the budget) return a
// temp-file mapping exactly like Alloc. Transformer stages
// materialize through this call, which is what keeps a pipeline's
// intermediates out-of-core when they outgrow RAM.
func (e *Engine) AllocScratch(rows, cols int) (*ScratchMatrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("core: non-positive dimensions %dx%d", rows, cols)
	}
	mode := e.cfg.Mode
	if mode == Auto {
		if int64(rows)*int64(cols)*8 > e.cfg.MemoryBudget {
			mode = MemoryMapped
		} else {
			mode = InMemory
		}
	}

	if mode == InMemory {
		if err := e.checkOpen(); err != nil {
			return nil, err
		}
		d := mat.NewDense(rows, cols)
		d.SetWorkersHint(e.cfg.Workers)
		e.countScratch(rows, cols, false)
		return &ScratchMatrix{X: d, eng: e}, nil
	}

	d, sc, err := e.allocMapped(rows, cols)
	if err != nil {
		return nil, err
	}
	sm := &ScratchMatrix{X: d, Mapped: true, eng: e, res: sc}
	if err := e.trackAlloc(sm, sc.path); err != nil {
		return nil, err
	}
	e.countScratch(rows, cols, true)
	return sm, nil
}

// scratch couples a mapped store with its backing file for cleanup.
type scratch struct {
	*store.Mapped
	path string
}

func (s *scratch) Close() error {
	err := s.Mapped.Close()
	if rmErr := os.Remove(s.path); rmErr != nil && err == nil && !os.IsNotExist(rmErr) {
		err = rmErr
	}
	return err
}

// Close releases every resource the engine opened, returning the
// first error. It is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var first error
	for i := len(e.open) - 1; i >= 0; i-- {
		if err := e.open[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	e.open = nil
	return first
}
