// Package obs is M3's zero-dependency observability layer: spans,
// unified metrics and /proc collection for *real* runs — the
// counterpart of the simulated instrumentation in internal/vm and
// internal/iostats. The paper's core methodology is measurement
// (§3.1: out-of-core M3 is I/O bound — disk 100% busy, CPU ~13%);
// this package makes the same observations cheap to take on live
// engines, trainers and servers.
//
// Three surfaces:
//
//   - Tracing (trace.go): a process-wide tracer behind one atomic
//     pointer. When no tracer is installed every hook is a single
//     atomic load plus a nil check — cheap enough to leave in the
//     per-block hot path of internal/exec. When installed
//     (StartTrace, or m3train/m3bench/m3serve -trace), spans record a
//     Fit → stage → scan → per-worker block hierarchy that exports as
//     Chrome trace-event JSON (WriteJSON) and opens directly in
//     Perfetto, mirroring the per-worker CPU tracks vm.Timeline draws
//     for simulated runs.
//
//   - Metrics (metrics.go): Registry aggregates counters from any
//     source — store bytes touched/resident, engine scratch
//     allocs/releases, per-iteration optimizer progress, serving
//     counters — behind one Gather/Snapshot/diff surface with
//     Prometheus text exposition (WritePrometheus). The process-wide
//     Default registry carries fit progress and /proc counters;
//     subsystem registries (serve.Server) Include it.
//
//   - /proc collection (proc.go): best-effort real counters on Linux —
//     process CPU seconds, read bytes and major faults
//     (/proc/self/stat, /proc/self/io) plus per-device disk busy time
//     (/proc/diskstats) — so a real out-of-core run can reproduce the
//     paper's §3.1 utilization profile, not just a simulated one.
package obs
