package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one Chrome trace-event (the JSON Array / trace-event
// format consumed by Perfetto and chrome://tracing). Ts and Dur are
// microseconds since the trace epoch.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePid is the single synthetic process id all events share.
const tracePid = 1

// Tid layout: the control track carries fit / stage / scan spans
// (emitted from the caller's goroutine); pool worker w's block events
// land on tid 1+w, mirroring vm.Timeline's per-worker CPU tracks.
const (
	// ControlTid is the track for fit/stage/scan spans.
	ControlTid int64 = 0
)

// WorkerTid returns the track for pool worker w's block events.
func WorkerTid(worker int) int64 { return int64(worker) + 1 }

// Trace collects events for one tracing session. All methods are safe
// for concurrent use; event append takes one short mutex.
type Trace struct {
	epoch time.Time

	mu     sync.Mutex
	events []Event

	begun atomic.Int64 // spans + async events opened
	ended atomic.Int64 // spans + async events closed
	ids   atomic.Int64 // async id allocator
}

// NewTrace returns a trace whose clock starts now. It is not
// installed as the process tracer; use StartTrace for that.
func NewTrace() *Trace { return &Trace{epoch: time.Now()} }

// current is the process-wide tracer. The disabled path is exactly
// one atomic pointer load (see Current / Enabled) — cheap enough for
// per-block hot paths.
var current atomic.Pointer[Trace]

// StartTrace installs a fresh trace as the process tracer and returns
// it. Instrumented code (exec scans, Engine.Fit, serve batches) emits
// into it until StopTrace.
func StartTrace() *Trace {
	t := NewTrace()
	current.Store(t)
	return t
}

// StopTrace uninstalls the process tracer and returns it (nil if none
// was installed). The returned trace can still be written with
// WriteJSON.
func StopTrace() *Trace { return current.Swap(nil) }

// Current returns the installed process tracer, or nil when tracing
// is disabled. Callers on hot paths should load it once per
// operation, not per event.
func Current() *Trace { return current.Load() }

// Enabled reports whether a process tracer is installed.
func Enabled() bool { return current.Load() != nil }

// Now returns the time since the trace epoch. Use it to timestamp the
// start of work whose completion will be reported via WorkerEvent.
func (t *Trace) Now() time.Duration { return time.Since(t.epoch) }

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func (t *Trace) append(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Span is an open duration on the control track. A nil *Span is valid
// and inert, so call sites read naturally when tracing is disabled:
//
//	sp := obs.StartSpan("fit", name) // nil when disabled
//	defer sp.End()
//
// Spans are owned by one goroutine; End is idempotent.
type Span struct {
	t     *Trace
	name  string
	cat   string
	start time.Duration
	args  map[string]any
	ended bool
}

// StartSpan opens a span on the process tracer's control track, or
// returns nil when tracing is disabled.
func StartSpan(cat, name string) *Span {
	t := current.Load()
	if t == nil {
		return nil
	}
	return t.Start(cat, name)
}

// Start opens a span on t's control track.
func (t *Trace) Start(cat, name string) *Span {
	t.begun.Add(1)
	return &Span{t: t, name: name, cat: cat, start: t.Now()}
}

// SetArg attaches a key/value shown in the trace viewer's args pane.
// Nil-safe; returns s for chaining.
func (s *Span) SetArg(key string, v any) *Span {
	if s == nil {
		return s
	}
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = v
	return s
}

// End closes the span and records it as one complete ("X") event.
// Nil-safe and idempotent: a span closed on an error path and again
// by a deferred End is recorded exactly once.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.t.Now()
	s.t.ended.Add(1)
	s.t.append(Event{
		Name: s.name, Cat: s.cat, Ph: "X",
		Ts: us(s.start), Dur: us(end - s.start),
		Pid: tracePid, Tid: ControlTid, Args: s.args,
	})
}

// WorkerEvent records a completed slice of work on worker w's track
// as one complete event spanning [start, now). start must come from
// t.Now() on the same trace.
func (t *Trace) WorkerEvent(worker int, name string, start time.Duration, args map[string]any) {
	end := t.Now()
	t.append(Event{
		Name: name, Cat: "block", Ph: "X",
		Ts: us(start), Dur: us(end - start),
		Pid: tracePid, Tid: WorkerTid(worker), Args: args,
	})
}

// NextID allocates an id for an async begin/end pair.
func (t *Trace) NextID() int64 { return t.ids.Add(1) }

// AsyncBegin opens an async ("b") event. Async events tie together
// work that migrates across goroutines — a serve request and the
// batch that carries it — and are matched by (cat, id).
func (t *Trace) AsyncBegin(cat, name string, id int64, args map[string]any) {
	t.begun.Add(1)
	t.append(Event{
		Name: name, Cat: cat, Ph: "b",
		Ts: us(t.Now()), Pid: tracePid, Tid: ControlTid,
		ID: fmt.Sprintf("0x%x", id), Args: args,
	})
}

// AsyncEnd closes the async event opened with the same (cat, id).
func (t *Trace) AsyncEnd(cat, name string, id int64, args map[string]any) {
	t.ended.Add(1)
	t.append(Event{
		Name: name, Cat: cat, Ph: "e",
		Ts: us(t.Now()), Pid: tracePid, Tid: ControlTid,
		ID: fmt.Sprintf("0x%x", id), Args: args,
	})
}

// Counts returns the number of spans/async events begun and ended.
func (t *Trace) Counts() (begun, ended int64) {
	return t.begun.Load(), t.ended.Load()
}

// OpenSpans returns begun minus ended: zero once every span opened on
// this trace has been closed (the invariant cancellation tests pin).
func (t *Trace) OpenSpans() int64 { return t.begun.Load() - t.ended.Load() }

// Events returns a copy of the events recorded so far.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSON writes the trace in Chrome trace-event JSON ("JSON
// Object" flavor: {"traceEvents": [...]}) with process/thread-name
// metadata so Perfetto labels the control and worker tracks.
func (t *Trace) WriteJSON(w io.Writer) error {
	events := t.Events()

	tids := map[int64]bool{ControlTid: true}
	for _, e := range events {
		tids[e.Tid] = true
	}
	order := make([]int64, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	meta := []Event{{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "m3"},
	}}
	for _, tid := range order {
		name := "control"
		if tid != ControlTid {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		meta = append(meta, Event{
			Name: "thread_name", Ph: "M", Pid: tracePid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	out := struct {
		TraceEvents     []Event `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
	}{append(meta, events...), "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
