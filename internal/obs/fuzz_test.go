package obs

import (
	"strings"
	"testing"
)

// FuzzParseProcStat feeds arbitrary /proc/<pid>/stat lines to the
// parser. The parser must never panic: malformed field counts,
// comm fields with embedded spaces and parens, and non-numeric
// clock-tick fields all have to come back as errors or zero values.
func FuzzParseProcStat(f *testing.F) {
	f.Add("1234 (m3train) S 1 1234 1234 0 -1 4194560 2491 0 0 0 13 5 0 0 20 0 9 0 172844 11468800 1282")
	f.Add("1 (a b) R 0 0")
	f.Add("(no pid")
	f.Add("9 ((deep (parens))) Z " + strings.Repeat("7 ", 50))
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		snap, err := ParseProcStat(line)
		if err == nil && (snap.UserSeconds < 0 || snap.SystemSeconds < 0) {
			t.Fatalf("negative cpu seconds %v/%v from %q", snap.UserSeconds, snap.SystemSeconds, line)
		}
	})
}

// FuzzParseDiskstats feeds arbitrary /proc/diskstats content to the
// parser. Lines with too few fields, overflowing counters, or
// non-numeric columns must not panic.
func FuzzParseDiskstats(f *testing.F) {
	f.Add("   8       0 sda 9412 2863 771022 3764 7052 5024 138061 4230 0 6812 8926\n" +
		"   8       1 sda1 300 0 2404 52 1 0 8 0 0 60 52\n")
	f.Add("253 0 dm-0 1 2 3\n")
	f.Add("x y z\n\n\n")
	f.Add("8 0 sda " + strings.Repeat("18446744073709551615 ", 11) + "\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, content string) {
		_, _ = ParseDiskstats(content)
	})
}
