package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %v, want 8000 (lost updates)", got)
	}
	c.Add(0.5)
	if got := c.Value(); got != 8000.5 {
		t.Errorf("counter after fractional Add = %v, want 8000.5", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.25)
	if got := g.Value(); got != 3.25 {
		t.Errorf("gauge = %v, want 3.25", got)
	}
}

func TestVecCollectSorted(t *testing.T) {
	v := NewCounterVec("m3_test_total", "help", "algo")
	v.With("kmeans").Inc()
	v.With("bayes").Add(2)
	var got []Metric
	v.Collect(func(m Metric) { got = append(got, m) })
	if len(got) != 2 {
		t.Fatalf("got %d samples, want 2", len(got))
	}
	if got[0].Labels[0][1] != "bayes" || got[1].Labels[0][1] != "kmeans" {
		t.Errorf("label order = %s, %s, want bayes, kmeans", got[0].Labels[0][1], got[1].Labels[0][1])
	}
	if got[0].Value != 2 || got[1].Value != 1 {
		t.Errorf("values = %v, %v, want 2, 1", got[0].Value, got[1].Value)
	}
}

func TestMetricKeyEscaping(t *testing.T) {
	m := Metric{Name: "m3_x", Labels: [][2]string{{"path", `a\b"c` + "\n"}}}
	want := `m3_x{path="a\\b\"c\n"}`
	if got := m.Key(); got != want {
		t.Errorf("Key = %q, want %q", got, want)
	}
	if got := (Metric{Name: "m3_y"}).Key(); got != "m3_y" {
		t.Errorf("unlabeled Key = %q, want m3_y", got)
	}
}

// Histogram buckets must come out of Gather in the collector's
// emission order: a sort on the full sample key would place le="+Inf"
// first ('+' < digits) and "1024" before "128", which Prometheus
// clients reject.
func TestGatherPreservesBucketOrder(t *testing.T) {
	r := NewRegistry()
	les := []string{"1", "128", "1024", "+Inf"}
	r.Register(func(emit func(Metric)) {
		// Interleave another family to force regrouping.
		emit(Metric{Name: "m3_zzz_total", Type: TypeCounter, Value: 1})
		for _, le := range les {
			emit(Metric{Name: "m3_lat_bucket", Type: TypeCounter,
				Labels: [][2]string{{"le", le}}, Value: 1})
		}
		emit(Metric{Name: "m3_lat_sum", Type: TypeCounter, Value: 5})
		emit(Metric{Name: "m3_lat_count", Type: TypeCounter, Value: 4})
	})
	var gotLes []string
	for _, m := range r.Gather() {
		if m.Name == "m3_lat_bucket" {
			gotLes = append(gotLes, m.Labels[0][1])
		}
	}
	if strings.Join(gotLes, ",") != strings.Join(les, ",") {
		t.Errorf("bucket order = %v, want %v", gotLes, les)
	}
	// The family groups together and before m3_zzz despite emission order.
	fams := []string{}
	for _, m := range r.Gather() {
		if f := familyOf(m.Name); len(fams) == 0 || fams[len(fams)-1] != f {
			fams = append(fams, f)
		}
	}
	if strings.Join(fams, ",") != "m3_lat,m3_zzz_total" {
		t.Errorf("family grouping = %v, want [m3_lat m3_zzz_total]", fams)
	}
}

func TestGatherDedupFirstWins(t *testing.T) {
	r := NewRegistry()
	r.Register(func(emit func(Metric)) {
		emit(Metric{Name: "m3_dup", Value: 1})
	})
	r.Register(func(emit func(Metric)) {
		emit(Metric{Name: "m3_dup", Value: 2})
	})
	got := r.Gather()
	if len(got) != 1 || got[0].Value != 1 {
		t.Errorf("Gather = %+v, want single m3_dup with value 1", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.Register(func(emit func(Metric)) {
		emit(Metric{Name: "m3_s_total", Type: TypeCounter, Value: c.Value()})
	})
	before := r.Snapshot()
	c.Add(7)
	d := r.Snapshot().Sub(before)
	if d["m3_s_total"] != 7 {
		t.Errorf("delta = %v, want m3_s_total: 7", d)
	}
	// Keys absent from earlier count from zero.
	d2 := Snapshot{"new": 3}.Sub(Snapshot{})
	if d2["new"] != 3 {
		t.Errorf("Sub with missing key = %v, want 3", d2["new"])
	}
}

func TestInclude(t *testing.T) {
	inner := NewRegistry()
	inner.Register(func(emit func(Metric)) {
		emit(Metric{Name: "m3_inner", Value: 42})
	})
	outer := NewRegistry()
	outer.Include(inner)
	if got := outer.Snapshot()["m3_inner"]; got != 42 {
		t.Errorf("included metric = %v, want 42", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Register(func(emit func(Metric)) {
		emit(Metric{Name: "m3_reqs_total", Help: "Requests.", Type: TypeCounter,
			Labels: [][2]string{{"model", "digits"}}, Value: 3})
		emit(Metric{Name: "m3_lat_bucket", Help: "Latency.", Type: TypeCounter,
			Labels: [][2]string{{"le", "+Inf"}}, Value: 3})
		emit(Metric{Name: "m3_nan", Value: math.NaN()})
		emit(Metric{Name: "m3_inf", Value: math.Inf(1)})
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP m3_reqs_total Requests.\n",
		"# TYPE m3_reqs_total counter\n",
		`m3_reqs_total{model="digits"} 3` + "\n",
		"# TYPE m3_lat histogram\n",
		`m3_lat_bucket{le="+Inf"} 3` + "\n",
		"m3_nan NaN\n",
		"m3_inf +Inf\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Untyped metrics default to gauge.
	if !strings.Contains(out, "# TYPE m3_nan gauge\n") {
		t.Errorf("untyped metric not defaulted to gauge:\n%s", out)
	}
}

func TestFitProgressFeedsDefault(t *testing.T) {
	progress := FitProgress("testalgo")
	progress(0.75)
	progress(0.5)
	s := Default().Snapshot()
	if got := s[`m3_fit_iterations_total{algo="testalgo"}`]; got != 2 {
		t.Errorf("iterations = %v, want 2", got)
	}
	if got := s[`m3_fit_last_value{algo="testalgo"}`]; got != 0.5 {
		t.Errorf("last value = %v, want 0.5", got)
	}
}
