package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType tags a metric for Prometheus exposition.
type MetricType string

const (
	TypeCounter MetricType = "counter"
	TypeGauge   MetricType = "gauge"
)

// Metric is one gathered sample: a name, optional ordered labels, and
// a value. Histograms are expressed as counter series with the
// conventional _bucket{le=...}/_sum/_count names by their collectors.
type Metric struct {
	Name   string
	Help   string
	Type   MetricType
	Labels [][2]string // ordered key/value pairs
	Value  float64
}

// Key returns the exposition identity of the sample:
// name{k1="v1",k2="v2"} (just the name when unlabeled). Snapshot maps
// are keyed by it.
func (m Metric) Key() string {
	if len(m.Labels) == 0 {
		return m.Name
	}
	var b strings.Builder
	b.WriteString(m.Name)
	b.WriteByte('{')
	for i, kv := range m.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// escapeLabel already produced the exposition escaping; %q here
		// would escape the escapes.
		b.WriteString(kv[0])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Collector emits zero or more metrics when the registry gathers.
// Collectors are pull-based: they read live counters at gather time,
// so registering one is free until someone asks.
type Collector func(emit func(Metric))

// Registry aggregates metrics from independent subsystems behind one
// Gather/Snapshot/exposition surface.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector. Safe for concurrent use.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Include makes every metric of other part of r's gather, so a
// subsystem registry (a serve.Server's) can fold in the process-wide
// Default registry without owning its collectors.
func (r *Registry) Include(other *Registry) {
	r.Register(func(emit func(Metric)) {
		for _, m := range other.Gather() {
			emit(m)
		}
	})
}

// Gather runs every collector and returns the samples grouped by
// family name (stable: a collector's emission order is preserved
// within a name, so histogram buckets stay in increasing le order)
// with exact-duplicate keys dropped (first wins).
func (r *Registry) Gather() []Metric {
	r.mu.Lock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	var out []Metric
	for _, c := range cs {
		c(func(m Metric) { out = append(out, m) })
	}
	sort.SliceStable(out, func(i, j int) bool {
		return familyOf(out[i].Name) < familyOf(out[j].Name)
	})
	dedup := out[:0]
	seen := make(map[string]bool, len(out))
	for _, m := range out {
		k := m.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		dedup = append(dedup, m)
	}
	return dedup
}

// Snapshot is a point-in-time reading: exposition key -> value.
type Snapshot map[string]float64

// Snapshot gathers the registry into a flat map.
func (r *Registry) Snapshot() Snapshot {
	s := make(Snapshot)
	for _, m := range r.Gather() {
		s[m.Key()] = m.Value
	}
	return s
}

// Sub returns s minus earlier, key by key; keys absent from earlier
// are treated as zero. Meaningful for counters (the delta over an
// interval); for gauges the difference is the net change.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for k, v := range s {
		d[k] = v - earlier[k]
	}
	return d
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE pair per metric family,
// then its samples. Values are rendered with %g; NaN/±Inf use the
// Prometheus spellings.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for _, m := range r.Gather() {
		family := familyOf(m.Name)
		if family != lastFamily {
			lastFamily = family
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, m.Help); err != nil {
					return err
				}
			}
			typ := m.Type
			if typ == "" {
				typ = TypeGauge
			}
			ft := string(typ)
			if isHistogramSuffix(m.Name) {
				ft = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, ft); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", m.Key(), formatValue(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

// familyOf strips the conventional histogram sample suffixes so
// name_bucket/_sum/_count group under one # TYPE name histogram.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func isHistogramSuffix(name string) bool { return familyOf(name) != name }

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// Counter is a monotonically increasing float64, safe for concurrent
// use (CAS on the raw bits — no mutex on the increment path).
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d float64) {
	for {
		old := c.bits.Load()
		v := math.Float64frombits(old) + d
		if c.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a settable float64, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	name, help, label string

	mu sync.Mutex
	m  map[string]*Counter
}

// NewCounterVec declares a counter family with a single label
// dimension.
func NewCounterVec(name, help, label string) *CounterVec {
	return &CounterVec{name: name, help: help, label: label, m: make(map[string]*Counter)}
}

// With returns the counter for the given label value, creating it on
// first use. Hot loops should capture the result once.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.m[value]
	if c == nil {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// Collect emits one sample per label value; register it on a Registry.
func (v *CounterVec) Collect(emit func(Metric)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	samples := make([]Metric, 0, len(keys))
	for _, k := range keys {
		samples = append(samples, Metric{
			Name: v.name, Help: v.help, Type: TypeCounter,
			Labels: [][2]string{{v.label, k}}, Value: v.m[k].Value(),
		})
	}
	v.mu.Unlock()
	for _, m := range samples {
		emit(m)
	}
}

// GaugeVec is a family of gauges keyed by one label value.
type GaugeVec struct {
	name, help, label string

	mu sync.Mutex
	m  map[string]*Gauge
}

// NewGaugeVec declares a gauge family with a single label dimension.
func NewGaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{name: name, help: help, label: label, m: make(map[string]*Gauge)}
}

// With returns the gauge for the given label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	g := v.m[value]
	if g == nil {
		g = &Gauge{}
		v.m[value] = g
	}
	return g
}

// Collect emits one sample per label value; register it on a Registry.
func (v *GaugeVec) Collect(emit func(Metric)) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	samples := make([]Metric, 0, len(keys))
	for _, k := range keys {
		samples = append(samples, Metric{
			Name: v.name, Help: v.help, Type: TypeGauge,
			Labels: [][2]string{{v.label, k}}, Value: v.m[k].Value(),
		})
	}
	v.mu.Unlock()
	for _, m := range samples {
		emit(m)
	}
}

// Process-wide default registry: optimizer fit progress (fed by
// fit.FitOptions.Hook via FitProgress) and /proc process counters.
var (
	defaultRegistry = NewRegistry()

	fitIterations = NewCounterVec("m3_fit_iterations_total",
		"Optimizer iterations completed, by algorithm.", "algo")
	fitLastValue = NewGaugeVec("m3_fit_last_value",
		"Objective value at the most recent optimizer iteration, by algorithm.", "algo")
)

func init() {
	defaultRegistry.Register(fitIterations.Collect)
	defaultRegistry.Register(fitLastValue.Collect)
	defaultRegistry.Register(ProcCollector())
}

// Default returns the process-wide registry. Subsystem registries
// fold it in with Include.
func Default() *Registry { return defaultRegistry }

// FitProgress returns a recorder for one fit's per-iteration
// progress: each call counts one iteration and records the objective
// value in the Default registry. The label lookup happens once here,
// not per iteration.
func FitProgress(algo string) func(value float64) {
	c := fitIterations.With(algo)
	g := fitLastValue.With(algo)
	return func(value float64) {
		c.Inc()
		g.Set(value)
	}
}
