package obs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ProcSnapshot captures process-level resource counters from the
// Linux /proc filesystem. All fields are cumulative since process
// start; diff two snapshots with Sub to measure an interval.
type ProcSnapshot struct {
	UserSeconds   float64 // CPU time in user mode (/proc/self/stat utime)
	SystemSeconds float64 // CPU time in kernel mode (/proc/self/stat stime)
	ReadBytes     int64   // bytes fetched from storage (/proc/self/io read_bytes)
	MajorFaults   int64   // page faults that hit disk (/proc/self/stat majflt)
}

// Sub returns the delta s - earlier.
func (s ProcSnapshot) Sub(earlier ProcSnapshot) ProcSnapshot {
	return ProcSnapshot{
		UserSeconds:   s.UserSeconds - earlier.UserSeconds,
		SystemSeconds: s.SystemSeconds - earlier.SystemSeconds,
		ReadBytes:     s.ReadBytes - earlier.ReadBytes,
		MajorFaults:   s.MajorFaults - earlier.MajorFaults,
	}
}

// ReadProc takes a best-effort snapshot of the current process.
// Fields that cannot be read are left zero; the error is non-nil only
// when nothing could be read at all (no /proc, or restricted).
func ReadProc() (ProcSnapshot, error) {
	var snap ProcSnapshot
	var statErr, ioErr error
	if b, err := os.ReadFile("/proc/self/stat"); err != nil {
		statErr = err
	} else if s, err := ParseProcStat(string(b)); err != nil {
		statErr = err
	} else {
		snap = s
	}
	if b, err := os.ReadFile("/proc/self/io"); err != nil {
		ioErr = err
	} else if rb, err := ParseProcIO(string(b)); err != nil {
		ioErr = err
	} else {
		snap.ReadBytes = rb
	}
	if statErr != nil && ioErr != nil {
		return snap, fmt.Errorf("obs: stat: %v; io: %v", statErr, ioErr)
	}
	return snap, nil
}

// clockTicksPerSecond is the kernel USER_HZ unit of the stat utime /
// stime fields; 100 on every mainstream Linux configuration.
const clockTicksPerSecond = 100

// ParseProcStat parses a /proc/<pid>/stat line into the CPU and
// major-fault fields. The comm field (2) is parenthesized and may
// contain spaces and parentheses, so fields are counted after the
// *last* ')'. ReadBytes is left zero (it lives in /proc/<pid>/io).
func ParseProcStat(line string) (ProcSnapshot, error) {
	i := strings.LastIndexByte(line, ')')
	if i < 0 {
		return ProcSnapshot{}, fmt.Errorf("obs: /proc stat: no comm field in %q", line)
	}
	// After ") " the next fields are numbered 3 (state) onward; stat(5):
	// majflt is field 12, utime 14, stime 15 → indexes 9, 11, 12 here.
	fields := strings.Fields(line[i+1:])
	if len(fields) < 13 {
		return ProcSnapshot{}, fmt.Errorf("obs: /proc stat: %d fields after comm, need 13", len(fields))
	}
	majflt, err := strconv.ParseInt(fields[9], 10, 64)
	if err != nil {
		return ProcSnapshot{}, fmt.Errorf("obs: /proc stat majflt: %w", err)
	}
	utime, err := strconv.ParseUint(fields[11], 10, 64)
	if err != nil {
		return ProcSnapshot{}, fmt.Errorf("obs: /proc stat utime: %w", err)
	}
	stime, err := strconv.ParseUint(fields[12], 10, 64)
	if err != nil {
		return ProcSnapshot{}, fmt.Errorf("obs: /proc stat stime: %w", err)
	}
	return ProcSnapshot{
		UserSeconds:   float64(utime) / clockTicksPerSecond,
		SystemSeconds: float64(stime) / clockTicksPerSecond,
		MajorFaults:   majflt,
	}, nil
}

// ParseProcIO extracts read_bytes from /proc/<pid>/io content.
func ParseProcIO(content string) (int64, error) {
	for _, line := range strings.Split(content, "\n") {
		if rest, ok := strings.CutPrefix(line, "read_bytes:"); ok {
			return strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		}
	}
	return 0, fmt.Errorf("obs: /proc io: no read_bytes field")
}

// DiskStat is the subset of one /proc/diskstats row the utilization
// report needs. BusySeconds is the device's io_ticks counter: the
// cumulative wall time the device had at least one request in flight —
// the same "disk busy" the paper's §3.1 iostat study reports.
type DiskStat struct {
	Device      string
	ReadIOs     uint64
	WriteIOs    uint64
	BusySeconds float64
}

// DiskSnapshot maps device name -> cumulative counters.
type DiskSnapshot map[string]DiskStat

// ReadDisks reads /proc/diskstats. Loop and ram pseudo-devices are
// skipped; partitions are kept (callers usually want Busiest anyway).
func ReadDisks() (DiskSnapshot, error) {
	b, err := os.ReadFile("/proc/diskstats")
	if err != nil {
		return nil, err
	}
	return ParseDiskstats(string(b))
}

// ParseDiskstats parses /proc/diskstats content. Per the kernel's
// Documentation/admin-guide/iostats.rst the fields after major, minor
// and device name are: reads completed, reads merged, sectors read,
// ms reading, writes completed, writes merged, sectors written,
// ms writing, ios in progress, ms doing I/O (io_ticks), ...
func ParseDiskstats(content string) (DiskSnapshot, error) {
	snap := make(DiskSnapshot)
	for _, line := range strings.Split(content, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 13 {
			continue
		}
		dev := fields[2]
		if strings.HasPrefix(dev, "loop") || strings.HasPrefix(dev, "ram") {
			continue
		}
		reads, err1 := strconv.ParseUint(fields[3], 10, 64)
		writes, err2 := strconv.ParseUint(fields[7], 10, 64)
		ioTicksMs, err3 := strconv.ParseUint(fields[12], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("obs: /proc diskstats: bad counters for %s", dev)
		}
		snap[dev] = DiskStat{
			Device:      dev,
			ReadIOs:     reads,
			WriteIOs:    writes,
			BusySeconds: float64(ioTicksMs) / 1000,
		}
	}
	return snap, nil
}

// Sub returns the per-device delta d - earlier for devices present in
// both snapshots.
func (d DiskSnapshot) Sub(earlier DiskSnapshot) DiskSnapshot {
	out := make(DiskSnapshot, len(d))
	for name, cur := range d {
		prev, ok := earlier[name]
		if !ok {
			continue
		}
		out[name] = DiskStat{
			Device:      name,
			ReadIOs:     cur.ReadIOs - prev.ReadIOs,
			WriteIOs:    cur.WriteIOs - prev.WriteIOs,
			BusySeconds: cur.BusySeconds - prev.BusySeconds,
		}
	}
	return out
}

// Busiest returns the device with the most busy time in the snapshot
// (useful on a delta to find the disk that served an out-of-core
// run). Returns the zero DiskStat when the snapshot is empty.
func (d DiskSnapshot) Busiest() DiskStat {
	var best DiskStat
	for _, s := range d {
		if s.BusySeconds > best.BusySeconds ||
			//m3vet:allow floateq -- tie-break for a stable device choice: exact ties only
			(s.BusySeconds == best.BusySeconds && (best.Device == "" || s.Device < best.Device)) {
			best = s
		}
	}
	return best
}

// Utilization summarizes an interval the way the paper's §3.1 study
// does: how busy were the CPU and the disk while the run was going.
type Utilization struct {
	ElapsedSeconds float64
	CPUSeconds     float64
	DiskSeconds    float64
}

// CPUPercent is CPU busy time over wall time, in percent. May exceed
// 100 on multi-core runs.
func (u Utilization) CPUPercent() float64 {
	if u.ElapsedSeconds == 0 {
		return 0
	}
	return 100 * u.CPUSeconds / u.ElapsedSeconds
}

// DiskPercent is disk busy time over wall time, in percent.
func (u Utilization) DiskPercent() float64 {
	if u.ElapsedSeconds == 0 {
		return 0
	}
	return 100 * u.DiskSeconds / u.ElapsedSeconds
}

// IOBound reports whether the interval looks like the paper's
// out-of-core profile (§3.1): the disk near saturation and clearly
// busier than the CPU.
func (u Utilization) IOBound() bool {
	return u.DiskPercent() > 90 && u.DiskPercent() > u.CPUPercent()
}

// String renders the report in the paper's terms.
func (u Utilization) String() string {
	return fmt.Sprintf("elapsed %.1fs, disk %.0f%% utilized, CPU %.0f%%",
		u.ElapsedSeconds, u.DiskPercent(), u.CPUPercent())
}

// ProcCollector returns a Collector emitting the process /proc
// counters (CPU seconds, read bytes, major faults). Registered on the
// Default registry; emits nothing when /proc is unavailable.
func ProcCollector() Collector {
	return func(emit func(Metric)) {
		s, err := ReadProc()
		if err != nil {
			return
		}
		emit(Metric{Name: "m3_process_user_cpu_seconds_total",
			Help: "Process CPU time spent in user mode.", Type: TypeCounter, Value: s.UserSeconds})
		emit(Metric{Name: "m3_process_system_cpu_seconds_total",
			Help: "Process CPU time spent in kernel mode.", Type: TypeCounter, Value: s.SystemSeconds})
		emit(Metric{Name: "m3_process_read_bytes_total",
			Help: "Bytes the process caused to be fetched from storage.", Type: TypeCounter, Value: float64(s.ReadBytes)})
		emit(Metric{Name: "m3_process_major_faults_total",
			Help: "Major page faults (faults that required disk I/O).", Type: TypeCounter, Value: float64(s.MajorFaults)})
	}
}
