package obs

import (
	"strings"
	"testing"
)

// A realistic stat line whose comm contains spaces and parentheses —
// the case that breaks naive strings.Fields parsing. Fields after the
// last ')': state ppid pgrp session tty tpgid flags minflt cminflt
// majflt cmajflt utime stime → majflt=9, utime=250, stime=50.
const statFixture = `42 (m3 train (v2)) S 1 2 3 4 5 6 7 8 9 10 250 50 0 0 20 0 8 0 12345 67890`

func TestParseProcStat(t *testing.T) {
	s, err := ParseProcStat(statFixture)
	if err != nil {
		t.Fatal(err)
	}
	if s.MajorFaults != 9 {
		t.Errorf("MajorFaults = %d, want 9", s.MajorFaults)
	}
	if s.UserSeconds != 2.5 {
		t.Errorf("UserSeconds = %v, want 2.5 (250 ticks at USER_HZ=100)", s.UserSeconds)
	}
	if s.SystemSeconds != 0.5 {
		t.Errorf("SystemSeconds = %v, want 0.5", s.SystemSeconds)
	}
	if s.ReadBytes != 0 {
		t.Errorf("ReadBytes = %d, want 0 (stat does not carry it)", s.ReadBytes)
	}
}

func TestParseProcStatMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"42 no-comm-parens S 1 2",
		"42 (x) S 1 2 3", // too few fields
		"42 (x) S 1 2 3 4 5 6 7 8 NaN 10 250 50 0", // non-numeric majflt
	} {
		if _, err := ParseProcStat(bad); err == nil {
			t.Errorf("ParseProcStat(%q) = nil error, want failure", bad)
		}
	}
}

func TestParseProcIO(t *testing.T) {
	fixture := "rchar: 100\nwchar: 200\nsyscr: 3\nsyscw: 4\nread_bytes: 4096\nwrite_bytes: 8192\n"
	rb, err := ParseProcIO(fixture)
	if err != nil {
		t.Fatal(err)
	}
	if rb != 4096 {
		t.Errorf("read_bytes = %d, want 4096", rb)
	}
	if _, err := ParseProcIO("rchar: 100\n"); err == nil {
		t.Error("missing read_bytes should be an error")
	}
}

const diskstatsFixture = `   8       0 sda 1000 5 2000 300 500 2 4000 100 0 7000 400
   8       1 sda1 900 4 1800 280 450 1 3600 90 0 6500 370
   7       0 loop0 50 0 100 10 0 0 0 0 0 20 10
   1       0 ram0 10 0 20 1 0 0 0 0 0 5 2
 259       0 nvme0n1 8000 10 90000 600 100 0 800 50 0 1500 650
   8      16 sdb bad counters here x x x x x x x x
short line`

func TestParseDiskstats(t *testing.T) {
	snap, err := ParseDiskstats(diskstatsFixture)
	if err == nil {
		t.Fatal("bad counters row should surface as an error")
	}
	// With the corrupt row removed the rest parses.
	clean := strings.ReplaceAll(diskstatsFixture,
		"   8      16 sdb bad counters here x x x x x x x x\n", "")
	snap, err = ParseDiskstats(clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, skipped := range []string{"loop0", "ram0"} {
		if _, ok := snap[skipped]; ok {
			t.Errorf("%s should be skipped as a pseudo-device", skipped)
		}
	}
	sda, ok := snap["sda"]
	if !ok {
		t.Fatal("sda missing")
	}
	if sda.ReadIOs != 1000 || sda.WriteIOs != 500 {
		t.Errorf("sda IOs = %d/%d, want 1000/500", sda.ReadIOs, sda.WriteIOs)
	}
	if sda.BusySeconds != 7.0 {
		t.Errorf("sda busy = %v s, want 7.0 (7000 ms io_ticks)", sda.BusySeconds)
	}
	if _, ok := snap["sda1"]; !ok {
		t.Error("partitions should be kept")
	}
}

func TestDiskSnapshotSubAndBusiest(t *testing.T) {
	before := DiskSnapshot{
		"sda":  {Device: "sda", ReadIOs: 100, WriteIOs: 10, BusySeconds: 1},
		"gone": {Device: "gone", ReadIOs: 5},
	}
	after := DiskSnapshot{
		"sda": {Device: "sda", ReadIOs: 400, WriteIOs: 30, BusySeconds: 9},
		"new": {Device: "new", ReadIOs: 7, BusySeconds: 2},
	}
	d := after.Sub(before)
	if _, ok := d["new"]; ok {
		t.Error("device absent from earlier snapshot should be dropped")
	}
	if got := d["sda"]; got.ReadIOs != 300 || got.WriteIOs != 20 || got.BusySeconds != 8 {
		t.Errorf("sda delta = %+v, want 300/20/8", got)
	}
	if b := d.Busiest(); b.Device != "sda" {
		t.Errorf("Busiest = %q, want sda", b.Device)
	}
	// Ties break toward the lexicographically smaller device name.
	tie := DiskSnapshot{
		"zzz": {Device: "zzz", BusySeconds: 3},
		"aaa": {Device: "aaa", BusySeconds: 3},
	}
	if b := tie.Busiest(); b.Device != "aaa" {
		t.Errorf("tie Busiest = %q, want aaa", b.Device)
	}
	if b := (DiskSnapshot{}).Busiest(); b.Device != "" {
		t.Errorf("empty Busiest = %+v, want zero value", b)
	}
}

// ReadProc against the live /proc: counters must be non-negative and
// monotonic across a delta.
func TestReadProcSmoke(t *testing.T) {
	before, err := ReadProc()
	if err != nil {
		t.Skipf("/proc unavailable: %v", err)
	}
	// Burn a little CPU so the delta has a chance to move.
	x := 0.0
	for i := 0; i < 1_000_000; i++ {
		x += float64(i)
	}
	_ = x
	after, err := ReadProc()
	if err != nil {
		t.Fatal(err)
	}
	d := after.Sub(before)
	if d.UserSeconds < 0 || d.SystemSeconds < 0 || d.ReadBytes < 0 || d.MajorFaults < 0 {
		t.Errorf("counters went backwards: %+v", d)
	}
}

func TestProcCollectorEmitsCounters(t *testing.T) {
	if _, err := ReadProc(); err != nil {
		t.Skipf("/proc unavailable: %v", err)
	}
	var names []string
	ProcCollector()(func(m Metric) { names = append(names, m.Name) })
	want := map[string]bool{
		"m3_process_user_cpu_seconds_total":   true,
		"m3_process_system_cpu_seconds_total": true,
		"m3_process_read_bytes_total":         true,
		"m3_process_major_faults_total":       true,
	}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("collector missing %v (got %v)", want, names)
	}
}
