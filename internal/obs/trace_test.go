package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// When no tracer is installed the whole span surface must be inert:
// StartSpan returns nil and every method on a nil span is a no-op.
func TestNilSpanIsInert(t *testing.T) {
	if Current() != nil {
		t.Fatal("tracer installed at test start")
	}
	sp := StartSpan("fit", "nothing")
	if sp != nil {
		t.Fatalf("StartSpan with tracing disabled = %v, want nil", sp)
	}
	sp.SetArg("k", 1) // must not panic
	sp.End()          // must not panic
}

func TestSpanLifecycle(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("fit", "fit logreg").SetArg("rows", 128)
	if got := tr.OpenSpans(); got != 1 {
		t.Fatalf("OpenSpans after Start = %d, want 1", got)
	}
	sp.End()
	if got := tr.OpenSpans(); got != 0 {
		t.Fatalf("OpenSpans after End = %d, want 0", got)
	}
	// End is idempotent: the error path closing a span a deferred End
	// will close again must record exactly one event.
	sp.End()
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events after double End, want 1", len(events))
	}
	e := events[0]
	if e.Name != "fit logreg" || e.Cat != "fit" || e.Ph != "X" {
		t.Errorf("event = %+v, want name 'fit logreg' cat fit ph X", e)
	}
	if e.Tid != ControlTid {
		t.Errorf("span tid = %d, want control track %d", e.Tid, ControlTid)
	}
	if e.Args["rows"] != 128 {
		t.Errorf("args = %v, want rows:128", e.Args)
	}
	if begun, ended := tr.Counts(); begun != 1 || ended != 1 {
		t.Errorf("Counts = (%d, %d), want (1, 1)", begun, ended)
	}
}

func TestWorkerEventTracks(t *testing.T) {
	if WorkerTid(0) == ControlTid {
		t.Fatal("worker 0 must not share the control track")
	}
	tr := NewTrace()
	t0 := tr.Now()
	time.Sleep(time.Millisecond)
	tr.WorkerEvent(3, "scan", t0, map[string]any{"lo": 0, "hi": 64})
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	e := events[0]
	if e.Tid != WorkerTid(3) {
		t.Errorf("tid = %d, want %d", e.Tid, WorkerTid(3))
	}
	if e.Cat != "block" || e.Ph != "X" {
		t.Errorf("event = %+v, want cat block ph X", e)
	}
	if e.Dur <= 0 {
		t.Errorf("dur = %v, want > 0", e.Dur)
	}
}

func TestAsyncPairing(t *testing.T) {
	tr := NewTrace()
	id := tr.NextID()
	tr.AsyncBegin("serve", "request", id, map[string]any{"rows": 4})
	if got := tr.OpenSpans(); got != 1 {
		t.Fatalf("OpenSpans after AsyncBegin = %d, want 1", got)
	}
	tr.AsyncEnd("serve", "request", id, nil)
	if got := tr.OpenSpans(); got != 0 {
		t.Fatalf("OpenSpans after AsyncEnd = %d, want 0", got)
	}
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	b, e := events[0], events[1]
	if b.Ph != "b" || e.Ph != "e" {
		t.Errorf("phases = %q, %q, want b, e", b.Ph, e.Ph)
	}
	if b.ID == "" || b.ID != e.ID || b.Cat != e.Cat {
		t.Errorf("pairing keys differ: begin (%s, %s) vs end (%s, %s)", b.Cat, b.ID, e.Cat, e.ID)
	}
	if id2 := tr.NextID(); id2 == id {
		t.Errorf("NextID repeated %d", id)
	}
}

func TestStartStopTrace(t *testing.T) {
	if Enabled() {
		t.Fatal("tracer installed at test start")
	}
	tr := StartTrace()
	defer StopTrace()
	if Current() != tr || !Enabled() {
		t.Fatal("StartTrace did not install the tracer")
	}
	if sp := StartSpan("fit", "x"); sp == nil {
		t.Fatal("StartSpan with tracing enabled = nil")
	} else {
		sp.End()
	}
	if got := StopTrace(); got != tr {
		t.Fatalf("StopTrace = %p, want %p", got, tr)
	}
	if Enabled() {
		t.Fatal("tracer still installed after StopTrace")
	}
	if StopTrace() != nil {
		t.Fatal("second StopTrace should return nil")
	}
}

// WriteJSON must produce the Chrome trace-event "JSON Object" flavor
// with process/thread-name metadata, so the file opens directly in
// Perfetto.
func TestWriteJSON(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("fit", "fit")
	t0 := tr.Now()
	tr.WorkerEvent(0, "scan", t0, nil)
	tr.WorkerEvent(2, "scan", t0, nil)
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", out.DisplayTimeUnit)
	}
	names := map[int64]string{} // thread_name tid -> label
	var haveProcess bool
	for _, e := range out.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			haveProcess = true
		case e.Ph == "M" && e.Name == "thread_name":
			names[e.Tid] = e.Args["name"].(string)
		}
	}
	if !haveProcess {
		t.Error("missing process_name metadata")
	}
	if names[0] != "control" {
		t.Errorf("tid 0 labeled %q, want control", names[0])
	}
	if names[1] != "worker 0" {
		t.Errorf("tid 1 labeled %q, want 'worker 0'", names[1])
	}
	if names[3] != "worker 2" {
		t.Errorf("tid 3 labeled %q, want 'worker 2'", names[3])
	}
	// 3 real events + metadata.
	if got := len(out.TraceEvents); got < 3+4 {
		t.Errorf("got %d events, want at least 7 (3 real + process + 3 threads)", got)
	}
}
