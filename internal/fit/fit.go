// Package fit defines the algorithm-agnostic slice of every trainer's
// option surface: the worker-pool override, the iteration callback and
// verbosity. Each algorithm's Options struct embeds FitOptions, so the
// knobs spell the same everywhere and the engine can thread its
// configuration into any trainer without knowing which one it is.
package fit

import (
	"context"
	"fmt"
	"os"

	"m3/internal/obs"
	"m3/internal/optimize"
)

// Canceled reports the cancellation state of an optional context (nil
// means the fit is not cancellable) — the entry check every trainer
// runs before touching data.
func Canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// FitOptions is the shared training surface embedded by each
// algorithm's Options struct (logreg, linreg, kmeans, knn, sgd, bayes,
// pca, preprocess). The zero value inherits every engine default.
type FitOptions struct {
	// Workers overrides the chunked-execution worker pool for this fit
	// only: > 0 forces that many workers, <= 0 inherits the dataset's
	// engine setting (core.Config.Workers), falling back to
	// runtime.NumCPU() without one. Results are bit-identical for
	// every value — parallelism changes wall time, not answers.
	Workers int
	// Callback, when non-nil, runs after every iteration (L-BFGS
	// iteration, Lloyd pass, SGD epoch, ...); returning false stops
	// the fit early with a partial model.
	Callback func(optimize.IterInfo) bool
	// Verbose logs one line per iteration to stderr.
	Verbose bool
}

// ResolveWorkers applies the override chain: an explicit per-fit
// Workers beats the dataset/engine default; zero lets the execution
// layer pick runtime.NumCPU().
func (o FitOptions) ResolveWorkers(datasetWorkers int) int {
	if o.Workers > 0 {
		return o.Workers
	}
	return datasetWorkers
}

// Hook returns the iteration callback a trainer should invoke: a
// wrapper that records per-iteration optimizer progress into the obs
// Default registry (m3_fit_iterations_total / m3_fit_last_value,
// labeled by algo), runs verbose logging when requested, and
// delegates to the user callback. Always non-nil — the obs recording
// is how the unified metrics registry sees fit progress — and
// observation-only beyond the user callback's early-stop decision, so
// trainer results are unchanged.
func (o FitOptions) Hook(algo string) func(optimize.IterInfo) bool {
	progress := obs.FitProgress(algo)
	return func(info optimize.IterInfo) bool {
		progress(info.Value)
		if o.Verbose {
			fmt.Fprintf(os.Stderr, "%s: iter %d f=%.6g |g|=%.3g step=%.3g evals=%d\n",
				algo, info.Iter, info.Value, info.GradNorm, info.Step, info.Evaluations)
		}
		if o.Callback != nil {
			return o.Callback(info)
		}
		return true
	}
}
