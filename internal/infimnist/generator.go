package infimnist

import (
	"fmt"
	"math"

	"m3/internal/dataset"
)

// splitmix64 advances a 64-bit state and returns a well-mixed value;
// it is the standard seeding generator of the xoshiro family and
// gives image i an independent random stream from (seed, i) alone.
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// rng is a tiny deterministic PRNG seeded per image.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	var v uint64
	r.s, v = splitmix64(r.s)
	return v
}

// uniform returns a float64 in [0, 1).
func (r *rng) uniform() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// symmetric returns a float64 in [-scale, scale).
func (r *rng) symmetric(scale float64) float64 {
	return (2*r.uniform() - 1) * scale
}

// Generator produces deformed digit images. The zero value is valid
// (seed 0, default deformation strengths).
type Generator struct {
	// Seed namespaces the whole stream; two generators with equal
	// seeds produce identical images.
	Seed uint64
	// MaxShift is the translation amplitude in pixels (default 2.5).
	MaxShift float64
	// MaxRotate is the rotation amplitude in radians (default 0.18).
	MaxRotate float64
	// MaxScale is the log-scale amplitude (default 0.12).
	MaxScale float64
	// Noise is the additive pixel noise amplitude (default 0.08).
	Noise float64
}

func (g Generator) withDefaults() Generator {
	if g.MaxShift == 0 {
		g.MaxShift = 2.5
	}
	if g.MaxRotate == 0 {
		g.MaxRotate = 0.18
	}
	if g.MaxScale == 0 {
		g.MaxScale = 0.12
	}
	if g.Noise == 0 {
		g.Noise = 0.08
	}
	return g
}

// Label returns the digit class of image index: classes are balanced
// round-robin, like cycling through the MNIST base set.
func (g Generator) Label(index int64) int {
	return int(index % Classes)
}

// Fill renders image index into dst (length Features) and returns its
// label. Rendering is a pure function of (Seed, index).
func (g Generator) Fill(dst []float64, index int64) int {
	if len(dst) != Features {
		panic(fmt.Sprintf("infimnist: dst length %d, want %d", len(dst), Features))
	}
	gg := g.withDefaults()
	label := gg.Label(index)

	r := rng{s: gg.Seed ^ (uint64(index)+1)*0xd1342543de82ef95}
	dx := r.symmetric(gg.MaxShift) / Side
	dy := r.symmetric(gg.MaxShift) / Side
	angle := r.symmetric(gg.MaxRotate)
	scale := math.Exp(r.symmetric(gg.MaxScale))
	sin, cos := math.Sincos(angle)

	// Inverse affine map: for each output pixel, sample the prototype
	// at the pre-image of the deformation (rotate+scale about the
	// image center, then translate).
	for py := 0; py < Side; py++ {
		for px := 0; px < Side; px++ {
			x := (float64(px)+0.5)/Side - 0.5 - dx
			y := (float64(py)+0.5)/Side - 0.5 - dy
			sx := (cos*x+sin*y)/scale + 0.5
			sy := (-sin*x+cos*y)/scale + 0.5
			v := 0.0
			if sx >= 0 && sx < 1 && sy >= 0 && sy < 1 {
				v = intensityAt(label, sx, sy)
			}
			if gg.Noise > 0 {
				v += r.symmetric(gg.Noise)
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
			}
			dst[py*Side+px] = v
		}
	}
	return label
}

// Image allocates and renders image index.
func (g Generator) Image(index int64) ([]float64, int) {
	dst := make([]float64, Features)
	label := g.Fill(dst, index)
	return dst, label
}

// Matrix renders images [first, first+n) into a fresh row-major
// matrix with one image per row, returning the labels alongside.
func (g Generator) Matrix(first, n int64) (x []float64, labels []float64) {
	x = make([]float64, n*Features)
	labels = make([]float64, n)
	for i := int64(0); i < n; i++ {
		label := g.Fill(x[i*Features:(i+1)*Features], first+i)
		labels[i] = float64(label)
	}
	return x, labels
}

// WriteDataset streams n images (starting at index 0) into an M3
// dataset file with labels, using constant memory. This is how the
// paper's 10–190 GB files are materialized for the real-mmap runs.
func (g Generator) WriteDataset(path string, n int64) error {
	w, err := dataset.Create(path, n, Features, true)
	if err != nil {
		return err
	}
	row := make([]float64, Features)
	for i := int64(0); i < n; i++ {
		label := g.Fill(row, i)
		if err := w.WriteRow(row, float64(label)); err != nil {
			return err
		}
	}
	return w.Close()
}

// BytesPerImage is the on-disk footprint of one image's features
// (784 float64 = 6272 bytes, the figure quoted in the paper).
const BytesPerImage = Features * 8

// ImagesForBytes returns how many images produce approximately the
// given payload size — e.g. 190 GB → ~32M images, matching the paper.
func ImagesForBytes(bytes int64) int64 {
	n := bytes / BytesPerImage
	if n < 1 {
		n = 1
	}
	return n
}
