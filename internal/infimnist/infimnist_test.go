package infimnist

import (
	"math"
	"path/filepath"
	"testing"
	"testing/quick"

	"m3/internal/blas"
	"m3/internal/dataset"
)

func TestPrototypesHaveInk(t *testing.T) {
	for d := 0; d < Classes; d++ {
		img := Prototype(d)
		if len(img) != Features {
			t.Fatalf("digit %d: %d features", d, len(img))
		}
		ink := blas.Sum(img)
		if ink < 20 {
			t.Errorf("digit %d has almost no ink (%v)", d, ink)
		}
		if ink > Features/2 {
			t.Errorf("digit %d is mostly ink (%v) — strokes too thick", d, ink)
		}
		for i, v := range img {
			if v < 0 || v > 1 {
				t.Fatalf("digit %d pixel %d = %v outside [0,1]", d, i, v)
			}
		}
	}
}

func TestPrototypesAreDistinct(t *testing.T) {
	// Pairwise distances between prototypes must be substantial;
	// otherwise classification is meaningless.
	protos := make([][]float64, Classes)
	for d := range protos {
		protos[d] = Prototype(d)
	}
	for a := 0; a < Classes; a++ {
		for b := a + 1; b < Classes; b++ {
			if d2 := blas.SqDist(protos[a], protos[b]); d2 < 5 {
				t.Errorf("digits %d and %d nearly identical (sqdist %v)", a, b, d2)
			}
		}
	}
}

func TestPrototypePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Prototype(10)
}

func TestGeneratorDeterminism(t *testing.T) {
	g := Generator{Seed: 7}
	a, la := g.Image(12345)
	b, lb := g.Image(12345)
	if la != lb {
		t.Fatalf("labels differ: %d vs %d", la, lb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
	// Different index ⇒ different image (same class 12345 vs 12355).
	c, _ := g.Image(12355)
	if blas.SqDist(a, c) == 0 {
		t.Error("distinct indices produced identical images")
	}
	// Different seed ⇒ different image.
	g2 := Generator{Seed: 8}
	d, _ := g2.Image(12345)
	if blas.SqDist(a, d) == 0 {
		t.Error("distinct seeds produced identical images")
	}
}

func TestGeneratorLabelsBalanced(t *testing.T) {
	g := Generator{}
	counts := make([]int, Classes)
	for i := int64(0); i < 1000; i++ {
		counts[g.Label(i)]++
	}
	for d, c := range counts {
		if c != 100 {
			t.Errorf("class %d count = %d want 100", d, c)
		}
	}
}

func TestGeneratedStaysNearClass(t *testing.T) {
	// A deformed digit must stay closer to its own prototype than to
	// the average other prototype most of the time; this is the
	// separability k-means and logreg rely on.
	g := Generator{Seed: 3}
	protos := make([][]float64, Classes)
	for d := range protos {
		protos[d] = Prototype(d)
	}
	good := 0
	const trials = 200
	for i := int64(0); i < trials; i++ {
		img, label := g.Image(i)
		own := blas.SqDist(img, protos[label])
		var others float64
		for d := 0; d < Classes; d++ {
			if d != label {
				others += blas.SqDist(img, protos[d])
			}
		}
		others /= Classes - 1
		if own < others {
			good++
		}
	}
	if good < trials*3/4 {
		t.Errorf("only %d/%d deformed digits closer to own prototype", good, trials)
	}
}

func TestFillPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generator{}.Fill(make([]float64, 10), 0)
}

func TestMatrix(t *testing.T) {
	g := Generator{Seed: 1}
	x, labels := g.Matrix(5, 20)
	if len(x) != 20*Features || len(labels) != 20 {
		t.Fatalf("matrix shape %d,%d", len(x), len(labels))
	}
	// Row i of the matrix equals Image(5+i).
	img, label := g.Image(5)
	if labels[0] != float64(label) {
		t.Errorf("label[0] = %v want %d", labels[0], label)
	}
	for j := range img {
		if x[j] != img[j] {
			t.Fatalf("matrix row 0 diverges at %d", j)
		}
	}
}

func TestWriteDatasetRoundTrip(t *testing.T) {
	g := Generator{Seed: 9}
	path := filepath.Join(t.TempDir(), "digits.m3")
	const n = 30
	if err := g.WriteDataset(path, n); err != nil {
		t.Fatal(err)
	}
	d, err := dataset.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Rows != n || d.Cols != Features || !d.HasLabels {
		t.Fatalf("header %+v", d.Header)
	}
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	// File contents must match direct generation.
	img, label := g.Image(17)
	row := d.RawX()[17*Features : 18*Features]
	for j := range img {
		if row[j] != img[j] {
			t.Fatalf("stored row 17 diverges at pixel %d", j)
		}
	}
	if d.Labels()[17] != float64(label) {
		t.Errorf("stored label = %v want %d", d.Labels()[17], label)
	}
}

func TestImagesForBytes(t *testing.T) {
	if got := ImagesForBytes(190e9); got != int64(190e9)/6272 {
		t.Errorf("ImagesForBytes(190GB) = %d", got)
	}
	if got := ImagesForBytes(1); got != 1 {
		t.Errorf("ImagesForBytes(1) = %d want 1 (clamped)", got)
	}
	if BytesPerImage != 6272 {
		t.Errorf("BytesPerImage = %d want 6272 (paper)", BytesPerImage)
	}
}

// Property: every generated pixel lies in [0,1] and every image has
// some ink, for arbitrary indices and seeds.
func TestPropertyPixelRangeAndInk(t *testing.T) {
	f := func(seed uint64, idx int64) bool {
		if idx < 0 {
			idx = -idx
		}
		g := Generator{Seed: seed}
		img, label := g.Image(idx)
		if label != int(idx%Classes) {
			return false
		}
		for _, v := range img {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return blas.Sum(img) > 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
