// Package infimnist generates an unbounded, deterministic stream of
// MNIST-like digit images, standing in for the Infimnist dataset the
// paper trains on (28×28 grayscale, 784 features per image, digits
// 0–9 produced by pseudo-random deformations of base images).
//
// The paper uses Infimnist purely as a large dense numeric workload
// ("we are primarily interested in runtimes"), so what this package
// preserves is exactly what the experiments need: shape (N×784
// float64), class structure (10 separable digit classes so logistic
// regression and k-means do meaningful work), determinism (image i is
// a pure function of seed and i), and unbounded supply.
package infimnist

import "math"

// Side is the image edge length in pixels.
const Side = 28

// Features is the number of pixels per image (28×28 = 784, matching
// the paper's 6272 bytes per image at 8 bytes per value).
const Features = Side * Side

// Classes is the number of digit classes.
const Classes = 10

type point struct{ x, y float64 }

// stroke is a polyline in the unit square.
type stroke []point

// arc approximates an elliptical arc with a polyline. Angles are in
// radians; n segments.
func arc(cx, cy, rx, ry, a0, a1 float64, n int) stroke {
	s := make(stroke, n+1)
	for i := 0; i <= n; i++ {
		a := a0 + (a1-a0)*float64(i)/float64(n)
		s[i] = point{cx + rx*math.Cos(a), cy + ry*math.Sin(a)}
	}
	return s
}

func line(x0, y0, x1, y1 float64) stroke {
	return stroke{{x0, y0}, {x1, y1}}
}

// digitStrokes defines each digit as a set of strokes in the unit
// square, y growing downward (like raster order).
var digitStrokes = [Classes][]stroke{
	// 0: full ellipse
	{arc(0.5, 0.5, 0.26, 0.36, 0, 2*math.Pi, 24)},
	// 1: vertical bar with a small flag and base
	{
		line(0.52, 0.14, 0.52, 0.86),
		line(0.38, 0.28, 0.52, 0.14),
		line(0.38, 0.86, 0.66, 0.86),
	},
	// 2: open top arc, diagonal, bottom bar
	{
		arc(0.5, 0.32, 0.24, 0.18, math.Pi, 2.25*math.Pi, 12),
		line(0.70, 0.42, 0.28, 0.84),
		line(0.28, 0.84, 0.74, 0.84),
	},
	// 3: two right-facing half-ellipses
	{
		arc(0.46, 0.32, 0.24, 0.18, 1.25*math.Pi, 2.6*math.Pi, 12),
		arc(0.46, 0.68, 0.26, 0.19, 1.45*math.Pi, 2.8*math.Pi, 12),
	},
	// 4: diagonal, horizontal, vertical
	{
		line(0.62, 0.12, 0.24, 0.62),
		line(0.24, 0.62, 0.80, 0.62),
		line(0.62, 0.12, 0.62, 0.88),
	},
	// 5: top bar, upper-left vertical, lower bowl
	{
		line(0.72, 0.14, 0.32, 0.14),
		line(0.32, 0.14, 0.30, 0.46),
		arc(0.48, 0.64, 0.24, 0.22, 1.35*math.Pi, 2.75*math.Pi, 14),
	},
	// 6: sweeping left curve into a lower loop
	{
		arc(0.56, 0.40, 0.26, 0.30, 0.75*math.Pi, 1.5*math.Pi, 10),
		arc(0.50, 0.66, 0.20, 0.20, 0, 2*math.Pi, 18),
	},
	// 7: top bar and steep diagonal
	{
		line(0.26, 0.16, 0.76, 0.16),
		line(0.76, 0.16, 0.42, 0.86),
	},
	// 8: stacked loops
	{
		arc(0.5, 0.32, 0.20, 0.17, 0, 2*math.Pi, 18),
		arc(0.5, 0.68, 0.23, 0.20, 0, 2*math.Pi, 18),
	},
	// 9: upper loop with a tail
	{
		arc(0.5, 0.36, 0.21, 0.20, 0, 2*math.Pi, 18),
		line(0.70, 0.40, 0.60, 0.86),
	},
}

// strokeWidth is the half-thickness of a stroke in unit coordinates.
const strokeWidth = 0.055

// distToSegment returns the distance from p to segment ab.
func distToSegment(p, a, b point) float64 {
	abx, aby := b.x-a.x, b.y-a.y
	apx, apy := p.x-a.x, p.y-a.y
	den := abx*abx + aby*aby
	t := 0.0
	if den > 0 {
		t = (apx*abx + apy*aby) / den
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	dx := p.x - (a.x + t*abx)
	dy := p.y - (a.y + t*aby)
	return math.Sqrt(dx*dx + dy*dy)
}

// intensityAt returns the ink intensity in [0,1] of digit d at unit
// coordinates (x, y): 1 on a stroke centerline, falling smoothly to 0
// past the stroke width (a cheap anti-aliasing).
func intensityAt(d int, x, y float64) float64 {
	p := point{x, y}
	best := math.Inf(1)
	for _, s := range digitStrokes[d] {
		for i := 0; i+1 < len(s); i++ {
			if dist := distToSegment(p, s[i], s[i+1]); dist < best {
				best = dist
			}
		}
	}
	const feather = 0.035
	switch {
	case best <= strokeWidth:
		return 1
	case best >= strokeWidth+feather:
		return 0
	default:
		t := (best - strokeWidth) / feather
		return 1 - t*t*(3-2*t) // smoothstep fade
	}
}

// Prototype renders the undeformed digit d into a Features-length
// buffer (row-major, values in [0,1]). It panics for d outside 0–9.
func Prototype(d int) []float64 {
	if d < 0 || d >= Classes {
		panic("infimnist: digit out of range")
	}
	img := make([]float64, Features)
	for py := 0; py < Side; py++ {
		for px := 0; px < Side; px++ {
			x := (float64(px) + 0.5) / Side
			y := (float64(py) + 0.5) / Side
			img[py*Side+px] = intensityAt(d, x, y)
		}
	}
	return img
}
