// Package sparkml implements the distributed baselines of Figure 1b:
// logistic regression (driver-side L-BFGS with distributed gradient
// computation, MLlib-style) and k-means (broadcast centroids,
// partition-local assignment, treeAggregate of sums) running on the
// simulated Spark cluster of internal/cluster.
//
// The algorithms execute their real math on the partitioned data —
// so their models/centroids can be compared numerically with M3's —
// while the cluster accounts simulated seconds for the nominal
// (paper-scale) dataset size.
package sparkml

import (
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/cluster"
	"m3/internal/mat"
)

// PartitionedData is an RDD whose partition contents are real rows.
type PartitionedData struct {
	// Parts are row windows of the source matrix, one per partition.
	Parts []*mat.Dense
	// Labels are per-partition label slices (may be nil).
	Labels [][]float64
	// RDD tracks nominal size and cache state in the cluster.
	RDD *cluster.RDD

	rows, cols int
}

// Partition splits x (and optional labels y) across the cluster's
// default partition count and registers an RDD of nominalBytes for
// timing. If nominalBytes is zero the actual data size is used.
func Partition(c *cluster.Cluster, x *mat.Dense, y []float64, nominalBytes int64) (*PartitionedData, error) {
	n, d := x.Dims()
	if y != nil && len(y) != n {
		return nil, fmt.Errorf("sparkml: %d labels for %d rows", len(y), n)
	}
	if nominalBytes <= 0 {
		nominalBytes = x.SizeBytes()
	}
	rdd, err := c.NewRDD(nominalBytes, 0)
	if err != nil {
		return nil, err
	}
	parts := rdd.Partitions
	if parts > n {
		parts = n
		rdd.Partitions = n
	}
	pd := &PartitionedData{RDD: rdd, rows: n, cols: d}
	for p := 0; p < parts; p++ {
		lo := n * p / parts
		hi := n * (p + 1) / parts
		pd.Parts = append(pd.Parts, x.RowWindow(lo, hi))
		if y != nil {
			pd.Labels = append(pd.Labels, y[lo:hi])
		}
	}
	return pd, nil
}

// Rows returns the total row count.
func (pd *PartitionedData) Rows() int { return pd.rows }

// Cols returns the feature count.
func (pd *PartitionedData) Cols() int { return pd.cols }

// --- Distributed logistic regression ---------------------------------

// LogRegJob is an optimize.Objective whose every evaluation is one
// distributed pass: a gradient scan stage over all partitions
// followed by a treeAggregate of the (d+1)-vector. Spark MLlib's
// LogisticRegressionWithLBFGS has exactly this structure.
type LogRegJob struct {
	c         *cluster.Cluster
	data      *PartitionedData
	lambda    float64
	intercept bool
	// Passes counts distributed scans (= objective evaluations).
	Passes int
}

// NewLogRegJob validates labels (0/1) and builds the job.
func NewLogRegJob(c *cluster.Cluster, data *PartitionedData, lambda float64, intercept bool) (*LogRegJob, error) {
	if data.Labels == nil {
		return nil, fmt.Errorf("sparkml: logistic regression needs labels")
	}
	for _, part := range data.Labels {
		for _, v := range part {
			if v != 0 && v != 1 {
				return nil, fmt.Errorf("sparkml: label %v, want 0 or 1", v)
			}
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("sparkml: negative lambda")
	}
	return &LogRegJob{c: c, data: data, lambda: lambda, intercept: intercept}, nil
}

// Dim returns the parameter count.
func (j *LogRegJob) Dim() int {
	d := j.data.cols
	if j.intercept {
		d++
	}
	return d
}

// Eval runs the distributed loss+gradient pass.
func (j *LogRegJob) Eval(params, grad []float64) float64 {
	d := j.data.cols
	w := params[:d]
	var b float64
	if j.intercept {
		b = params[d]
	}
	blas.Fill(grad, 0)
	gw := grad[:d]
	var gb, loss float64

	// Partition-local partial sums (the "map" side).
	for p, part := range j.data.Parts {
		yp := j.data.Labels[p]
		part.ForEachRow(func(i int, row []float64) {
			z := blas.Dot(row, w) + b
			var prob float64
			if z >= 0 {
				ez := math.Exp(-z)
				prob = 1 / (1 + ez)
				if yp[i] == 1 {
					loss += math.Log1p(ez)
				} else {
					loss += z + math.Log1p(ez)
				}
			} else {
				ez := math.Exp(z)
				prob = ez / (1 + ez)
				if yp[i] == 1 {
					loss += -z + math.Log1p(ez)
				} else {
					loss += math.Log1p(ez)
				}
			}
			diff := prob - yp[i]
			blas.Axpy(diff, row, gw)
			gb += diff
		})
	}

	// Timing: one scan stage + one treeAggregate of the gradient.
	j.c.ScanStage(j.data.RDD)
	j.c.AggregateStage(int64(j.Dim()+1) * 8) // grad + loss scalar
	j.c.DriverCompute(int64(j.Dim()) * 8)
	j.Passes++

	n := float64(j.data.rows)
	loss /= n
	blas.Scal(1/n, gw)
	if j.intercept {
		grad[d] = gb / n
	}
	loss += 0.5 * j.lambda * blas.Dot(w, w)
	blas.Axpy(j.lambda, w, gw)
	return loss
}

// --- Distributed k-means ----------------------------------------------

// KMeansOptions configures the distributed k-means run.
type KMeansOptions struct {
	// K is the cluster count (the paper: 5).
	K int
	// Iterations is the exact Lloyd iteration count (the paper: 10).
	Iterations int
	// InitCentroids supplies the K×D starting centroids.
	InitCentroids *mat.Dense
}

// KMeansResult reports the distributed clustering outcome.
type KMeansResult struct {
	// Centroids is the final K×D matrix.
	Centroids *mat.Dense
	// Inertia is the final within-cluster sum of squares.
	Inertia float64
	// Iterations completed.
	Iterations int
}

// KMeans runs Lloyd iterations Spark-style: each iteration broadcasts
// the centroids, scans every partition once computing local sums and
// counts, treeAggregates them, and updates centroids on the driver.
func KMeans(c *cluster.Cluster, data *PartitionedData, opts KMeansOptions) (*KMeansResult, error) {
	if opts.K < 1 {
		return nil, fmt.Errorf("sparkml: K = %d", opts.K)
	}
	if opts.Iterations < 1 {
		return nil, fmt.Errorf("sparkml: iterations = %d", opts.Iterations)
	}
	if opts.InitCentroids == nil {
		return nil, fmt.Errorf("sparkml: InitCentroids required")
	}
	ik, id := opts.InitCentroids.Dims()
	if ik != opts.K || id != data.cols {
		return nil, fmt.Errorf("sparkml: InitCentroids %dx%d, want %dx%d", ik, id, opts.K, data.cols)
	}

	k, d := opts.K, data.cols
	centroids := opts.InitCentroids.Clone()
	sums := make([]float64, k*d)
	counts := make([]int, k)
	res := &KMeansResult{Centroids: centroids}
	centroidBytes := int64(k*d) * 8

	for iter := 1; iter <= opts.Iterations; iter++ {
		c.BroadcastStage(centroidBytes)
		blas.Fill(sums, 0)
		for i := range counts {
			counts[i] = 0
		}
		inertia := 0.0
		for _, part := range data.Parts {
			part.ForEachRow(func(i int, row []float64) {
				best, bestC := math.Inf(1), 0
				for cc := 0; cc < k; cc++ {
					if d2 := blas.SqDist(row, centroids.RawRow(cc)); d2 < best {
						best, bestC = d2, cc
					}
				}
				inertia += best
				blas.Axpy(1, row, sums[bestC*d:(bestC+1)*d])
				counts[bestC]++
			})
		}
		c.ScanStage(data.RDD)
		c.AggregateStage(centroidBytes + int64(k)*8)

		row := make([]float64, d)
		for cc := 0; cc < k; cc++ {
			if counts[cc] == 0 {
				continue // Spark keeps the old centroid
			}
			copy(row, sums[cc*d:(cc+1)*d])
			blas.Scal(1/float64(counts[cc]), row)
			centroids.SetRow(cc, row)
		}
		c.DriverCompute(centroidBytes)
		res.Inertia = inertia
		res.Iterations = iter
	}
	return res, nil
}
