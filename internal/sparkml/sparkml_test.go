package sparkml

import (
	"context"
	"math"
	"testing"

	"m3/internal/cluster"
	"m3/internal/mat"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/logreg"
	"m3/internal/optimize"
)

func newTestCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.New(n, cluster.M32XLarge(), cluster.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// blobs builds a linearly separable binary problem.
func blobs(n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	r := uint64(99)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000)/1000 - 0.5
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x.Set(i, 0, next()+2)
			x.Set(i, 1, next()+2)
			y[i] = 1
		} else {
			x.Set(i, 0, next()-2)
			x.Set(i, 1, next()-2)
		}
	}
	return x, y
}

func TestPartition(t *testing.T) {
	c := newTestCluster(t, 4)
	x, y := blobs(1000)
	pd, err := Partition(c, x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Parts) != pd.RDD.Partitions {
		t.Fatalf("parts %d != partitions %d", len(pd.Parts), pd.RDD.Partitions)
	}
	total := 0
	for p, part := range pd.Parts {
		total += part.Rows()
		if part.Rows() != len(pd.Labels[p]) {
			t.Fatalf("partition %d rows/labels mismatch", p)
		}
	}
	if total != 1000 {
		t.Errorf("partitions cover %d rows", total)
	}
	if pd.RDD.NominalBytes != x.SizeBytes() {
		t.Errorf("nominal bytes = %d want %d", pd.RDD.NominalBytes, x.SizeBytes())
	}
}

func TestPartitionFewRows(t *testing.T) {
	c := newTestCluster(t, 8)
	x, y := blobs(10) // fewer rows than default partitions
	pd, err := Partition(c, x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Parts) != 10 {
		t.Errorf("parts = %d want 10", len(pd.Parts))
	}
	for _, part := range pd.Parts {
		if part.Rows() != 1 {
			t.Errorf("partition with %d rows", part.Rows())
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	c := newTestCluster(t, 2)
	x, _ := blobs(10)
	if _, err := Partition(c, x, make([]float64, 3), 0); err == nil {
		t.Error("accepted label mismatch")
	}
}

func TestLogRegJobValidation(t *testing.T) {
	c := newTestCluster(t, 2)
	x, y := blobs(10)
	pd, _ := Partition(c, x, y, 0)
	if _, err := NewLogRegJob(c, pd, -1, true); err == nil {
		t.Error("accepted negative lambda")
	}
	pdNoLabels, _ := Partition(c, x, nil, 0)
	if _, err := NewLogRegJob(c, pdNoLabels, 0.1, true); err == nil {
		t.Error("accepted missing labels")
	}
	bad := []float64{0, 2, 1, 0, 1, 0, 1, 0, 1, 0}
	pdBad, _ := Partition(c, x, bad, 0)
	if _, err := NewLogRegJob(c, pdBad, 0.1, true); err == nil {
		t.Error("accepted label 2")
	}
}

func TestDistributedGradientMatchesLocal(t *testing.T) {
	// The distributed objective must compute exactly the same value
	// and gradient as the single-machine objective — only timing
	// differs. This is the correctness anchor for Figure 1b.
	x, y := blobs(200)
	c := newTestCluster(t, 4)
	pd, err := Partition(c, x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewLogRegJob(c, pd, 0.03, true)
	if err != nil {
		t.Fatal(err)
	}
	local, err := logreg.NewObjective(x, y, 0.03, true)
	if err != nil {
		t.Fatal(err)
	}

	params := []float64{0.2, -0.4, 0.1}
	gd := make([]float64, 3)
	gl := make([]float64, 3)
	fd := job.Eval(params, gd)
	fl := local.Eval(params, gl)
	if math.Abs(fd-fl) > 1e-12 {
		t.Errorf("distributed loss %v != local %v", fd, fl)
	}
	for i := range gd {
		if math.Abs(gd[i]-gl[i]) > 1e-12 {
			t.Errorf("grad[%d]: %v != %v", i, gd[i], gl[i])
		}
	}
	if job.Passes != 1 {
		t.Errorf("passes = %d", job.Passes)
	}
	if c.Clock() <= 0 {
		t.Error("cluster clock did not advance")
	}
}

func TestDistributedTrainingConverges(t *testing.T) {
	x, y := blobs(400)
	c := newTestCluster(t, 4)
	pd, err := Partition(c, x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewLogRegJob(c, pd, 1e-4, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimize.LBFGS(context.Background(), job, make([]float64, job.Dim()), optimize.LBFGSParams{MaxIterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	m := &logreg.Model{Weights: res.X[:2], Intercept: res.X[2]}
	if acc := m.Accuracy(x, y); acc < 0.99 {
		t.Errorf("distributed model accuracy = %v", acc)
	}
	if job.Passes != res.Evaluations {
		t.Errorf("passes %d != evaluations %d", job.Passes, res.Evaluations)
	}
}

func TestKMeansValidation(t *testing.T) {
	c := newTestCluster(t, 2)
	x, _ := blobs(20)
	pd, _ := Partition(c, x, nil, 0)
	init := mat.NewDense(2, 2)
	if _, err := KMeans(c, pd, KMeansOptions{K: 0, Iterations: 1, InitCentroids: init}); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := KMeans(c, pd, KMeansOptions{K: 2, Iterations: 0, InitCentroids: init}); err == nil {
		t.Error("accepted 0 iterations")
	}
	if _, err := KMeans(c, pd, KMeansOptions{K: 2, Iterations: 1}); err == nil {
		t.Error("accepted nil init")
	}
	if _, err := KMeans(c, pd, KMeansOptions{K: 3, Iterations: 1, InitCentroids: init}); err == nil {
		t.Error("accepted mismatched init shape")
	}
}

func TestKMeansMatchesLocalLloyd(t *testing.T) {
	// With identical initial centroids and iteration counts, the
	// distributed k-means must land on the same centroids as the
	// local implementation.
	x, _ := blobs(300)
	init := mat.NewDense(2, 2)
	init.SetRow(0, []float64{1, 1})
	init.SetRow(1, []float64{-1, -1})
	const iters = 8

	c := newTestCluster(t, 4)
	pd, err := Partition(c, x, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := KMeans(c, pd, KMeansOptions{K: 2, Iterations: iters, InitCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	local, err := kmeans.Run(context.Background(), x, kmeans.Options{K: 2, MaxIterations: iters, InitCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	for cc := 0; cc < 2; cc++ {
		dr := dist.Centroids.RawRow(cc)
		lr := local.Centroids.RawRow(cc)
		for j := range dr {
			if math.Abs(dr[j]-lr[j]) > 1e-9 {
				t.Errorf("centroid %d[%d]: distributed %v local %v", cc, j, dr[j], lr[j])
			}
		}
	}
	if math.Abs(dist.Inertia-local.Inertia) > 1e-6*math.Max(1, local.Inertia) {
		t.Errorf("inertia: distributed %v local %v", dist.Inertia, local.Inertia)
	}
}

func TestClusterTimingStructure(t *testing.T) {
	// At paper scale, the 8-instance cluster must beat the
	// 4-instance cluster superlinearly on iteration time (cache
	// crossover), for the same distributed computation.
	x, y := blobs(256)
	const nominal = int64(190e9)

	runClock := func(n int) float64 {
		c := newTestCluster(t, n)
		pd, err := Partition(c, x, y, nominal)
		if err != nil {
			t.Fatal(err)
		}
		job, err := NewLogRegJob(c, pd, 1e-4, true)
		if err != nil {
			t.Fatal(err)
		}
		// Warm the cache with one pass, then measure 10 passes.
		g := make([]float64, job.Dim())
		p := make([]float64, job.Dim())
		job.Eval(p, g)
		c.ResetClock()
		for i := 0; i < 10; i++ {
			job.Eval(p, g)
		}
		return c.Clock()
	}
	t4 := runClock(4)
	t8 := runClock(8)
	if ratio := t4 / t8; ratio <= 2 {
		t.Errorf("4→8 speedup = %v, want superlinear (cache crossover)", ratio)
	}
}
