// Package blas provides the dense float64 linear-algebra kernels that
// every layer of the M3 reproduction is built on: level-1 vector
// operations, level-2 matrix-vector products over row-major storage,
// and a blocked level-3 matrix-matrix multiply.
//
// All kernels operate on plain []float64 so they work identically on
// heap-allocated slices and on slices that view a memory-mapped region
// (the core idea of M3: mapped data is indistinguishable from
// in-memory data).
package blas

import "math"

// Dot returns the inner product of x and y.
// It panics if the slices have different lengths.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	n := len(x)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// Axpy computes y += alpha*x in place.
// It panics if the slices have different lengths.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: axpy length mismatch")
	}
	if alpha == 0 {
		return
	}
	for i, xv := range x {
		y[i] += alpha * xv
	}
}

// Scal scales x by alpha in place.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst. It panics if lengths differ.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("blas: copy length mismatch")
	}
	copy(dst, src)
}

// Nrm2 returns the Euclidean norm of x, guarding against overflow for
// very large components in the style of the reference BLAS.
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Asum returns the sum of absolute values of x.
func Asum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Iamax returns the index of the element with the largest absolute
// value, or -1 for an empty slice. Ties resolve to the lowest index.
func Iamax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := math.Abs(x[0]), 0
	for i := 1; i < len(x); i++ {
		if a := math.Abs(x[i]); a > best {
			best, bi = a, i
		}
	}
	return bi
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s0, s1 float64
	n := len(x)
	i := 0
	for ; i+2 <= n; i += 2 {
		s0 += x[i]
		s1 += x[i+1]
	}
	if i < n {
		s0 += x[i]
	}
	return s0 + s1
}

// AddScaled computes dst[i] = x[i] + alpha*y[i]. The destination may
// alias x. It panics on length mismatch.
func AddScaled(dst []float64, x []float64, alpha float64, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("blas: addscaled length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + alpha*y[i]
	}
}

// SqDist returns the squared Euclidean distance between x and y.
// It panics on length mismatch.
func SqDist(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: sqdist length mismatch")
	}
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

// Gemv computes y = alpha*A*x + beta*y for a row-major m×n matrix A
// stored in a with leading dimension lda. It panics if the operand
// shapes are inconsistent.
func Gemv(m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	checkMatrix(m, n, a, lda)
	if len(x) < n || len(y) < m {
		panic("blas: gemv vector too short")
	}
	if beta != 1 {
		if beta == 0 {
			Fill(y[:m], 0)
		} else {
			Scal(beta, y[:m])
		}
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < m; i++ {
		row := a[i*lda : i*lda+n]
		y[i] += alpha * Dot(row, x[:n])
	}
}

// GemvTrans computes y = alpha*Aᵀ*x + beta*y for a row-major m×n
// matrix A; the result y has length n. Implemented as a sequence of
// axpy updates so the matrix is still scanned row-by-row in storage
// order (critical for M3: sequential scans page well).
func GemvTrans(m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	checkMatrix(m, n, a, lda)
	if len(x) < m || len(y) < n {
		panic("blas: gemvtrans vector too short")
	}
	if beta != 1 {
		if beta == 0 {
			Fill(y[:n], 0)
		} else {
			Scal(beta, y[:n])
		}
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < m; i++ {
		row := a[i*lda : i*lda+n]
		Axpy(alpha*x[i], row, y[:n])
	}
}

// Ger performs the rank-1 update A += alpha * x * yᵀ on a row-major
// m×n matrix.
func Ger(m, n int, alpha float64, x, y []float64, a []float64, lda int) {
	checkMatrix(m, n, a, lda)
	if len(x) < m || len(y) < n {
		panic("blas: ger vector too short")
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < m; i++ {
		Axpy(alpha*x[i], y[:n], a[i*lda:i*lda+n])
	}
}

// gemmBlock is the cache-blocking tile edge for Gemm.
const gemmBlock = 64

// Gemm computes C = alpha*A*B + beta*C for row-major matrices:
// A is m×k (lda), B is k×n (ldb), C is m×n (ldc). The inner loops are
// tiled so large multiplies stay cache-resident.
func Gemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	checkMatrix(m, k, a, lda)
	checkMatrix(k, n, b, ldb)
	checkMatrix(m, n, c, ldc)
	if beta != 1 {
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			if beta == 0 {
				Fill(row, 0)
			} else {
				Scal(beta, row)
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	for i0 := 0; i0 < m; i0 += gemmBlock {
		iMax := min(i0+gemmBlock, m)
		for p0 := 0; p0 < k; p0 += gemmBlock {
			pMax := min(p0+gemmBlock, k)
			for j0 := 0; j0 < n; j0 += gemmBlock {
				jMax := min(j0+gemmBlock, n)
				for i := i0; i < iMax; i++ {
					crow := c[i*ldc : i*ldc+n]
					arow := a[i*lda : i*lda+k]
					for p := p0; p < pMax; p++ {
						av := alpha * arow[p]
						if av == 0 {
							continue
						}
						brow := b[p*ldb : p*ldb+n]
						for j := j0; j < jMax; j++ {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
}

// --- Row-block kernels ------------------------------------------------
//
// These operate on a contiguous block of rows — the unit of work the
// chunked-execution layer (internal/exec) hands to each worker — so
// trainers can express their per-block map step as one call.

// SumRows accumulates the column sums of a row-major m×n block into y
// (y[j] += sum_i a[i][j]).
func SumRows(m, n int, a []float64, lda int, y []float64) {
	checkMatrix(m, n, a, lda)
	if len(y) < n {
		panic("blas: sumrows destination too short")
	}
	for i := 0; i < m; i++ {
		Axpy(1, a[i*lda:i*lda+n], y[:n])
	}
}

// Syr performs the symmetric rank-1 update A += alpha * x * xᵀ on the
// upper triangle of a row-major n×n matrix — the covariance
// accumulation kernel. Only entries a[i][j] with j >= i are written.
func Syr(n int, alpha float64, x []float64, a []float64, lda int) {
	checkMatrix(n, n, a, lda)
	if len(x) < n {
		panic("blas: syr vector too short")
	}
	if alpha == 0 {
		return
	}
	for i := 0; i < n; i++ {
		v := alpha * x[i]
		if v == 0 {
			continue
		}
		Axpy(v, x[i:n], a[i*lda+i:i*lda+n])
	}
}

// NearestRow returns the index of the row of the row-major k×n matrix
// c closest (squared Euclidean distance) to x, and that distance —
// the k-means assignment kernel. Ties resolve to the lowest index.
func NearestRow(x []float64, k, n int, c []float64, ldc int) (best int, dist float64) {
	checkMatrix(k, n, c, ldc)
	if len(x) < n {
		panic("blas: nearestrow vector too short")
	}
	dist = math.Inf(1)
	for i := 0; i < k; i++ {
		if d2 := SqDist(x[:n], c[i*ldc:i*ldc+n]); d2 < dist {
			best, dist = i, d2
		}
	}
	return best, dist
}

func checkMatrix(m, n int, a []float64, lda int) {
	if m < 0 || n < 0 {
		panic("blas: negative dimension")
	}
	if lda < n {
		panic("blas: leading dimension smaller than row width")
	}
	if m > 0 && len(a) < (m-1)*lda+n {
		panic("blas: matrix storage too short")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
