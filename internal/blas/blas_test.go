package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func almostEqual(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= eps {
		return true
	}
	return d <= eps*math.Max(math.Abs(a), math.Abs(b))
}

func TestDot(t *testing.T) {
	cases := []struct {
		x, y []float64
		want float64
	}{
		{nil, nil, 0},
		{[]float64{1}, []float64{2}, 2},
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{1, 2, 3, 4, 5}, []float64{5, 4, 3, 2, 1}, 35},
		{[]float64{-1, 1, -1, 1}, []float64{1, 1, 1, 1}, 0},
	}
	for _, c := range cases {
		if got := Dot(c.x, c.y); !almostEqual(got, c.want, tol) {
			t.Errorf("Dot(%v,%v)=%v want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Axpy got %v want %v", y, want)
		}
	}
}

func TestAxpyZeroAlphaNoop(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{5, 6}
	Axpy(0, x, y)
	if y[0] != 5 || y[1] != 6 {
		t.Fatalf("Axpy(0,...) modified y: %v", y)
	}
}

func TestScal(t *testing.T) {
	x := []float64{1, -2, 4}
	Scal(-0.5, x)
	want := []float64{-0.5, 1, -2}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Scal got %v want %v", x, want)
		}
	}
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); !almostEqual(got, 5, tol) {
		t.Errorf("Nrm2(3,4)=%v want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Errorf("Nrm2(nil)=%v want 0", got)
	}
	// Overflow guard: components near MaxFloat64 must not overflow.
	big := math.MaxFloat64 / 2
	got := Nrm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Nrm2 overflowed: %v", got)
	}
	if want := big * math.Sqrt2; !almostEqual(got, want, 1e-10) {
		t.Errorf("Nrm2 big = %v want %v", got, want)
	}
}

func TestAsumIamax(t *testing.T) {
	x := []float64{-1, 3, -2}
	if got := Asum(x); !almostEqual(got, 6, tol) {
		t.Errorf("Asum=%v want 6", got)
	}
	if got := Iamax(x); got != 1 {
		t.Errorf("Iamax=%d want 1", got)
	}
	if got := Iamax(nil); got != -1 {
		t.Errorf("Iamax(nil)=%d want -1", got)
	}
	if got := Iamax([]float64{2, -2}); got != 0 {
		t.Errorf("Iamax tie=%d want 0", got)
	}
}

func TestSumFill(t *testing.T) {
	x := make([]float64, 7)
	Fill(x, 1.5)
	if got := Sum(x); !almostEqual(got, 10.5, tol) {
		t.Errorf("Sum after Fill = %v want 10.5", got)
	}
}

func TestAddScaledAliasing(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 10, 10}
	AddScaled(x, x, 0.1, y) // x = x + 0.1*y
	want := []float64{2, 3, 4}
	for i := range want {
		if !almostEqual(x[i], want[i], tol) {
			t.Fatalf("AddScaled got %v want %v", x, want)
		}
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist([]float64{0, 0}, []float64{3, 4}); !almostEqual(got, 25, tol) {
		t.Errorf("SqDist=%v want 25", got)
	}
	if got := SqDist([]float64{1, 1}, []float64{1, 1}); got != 0 {
		t.Errorf("SqDist identical = %v want 0", got)
	}
}

func TestGemv(t *testing.T) {
	// A = [1 2; 3 4; 5 6], x = [1, 1] → Ax = [3, 7, 11]
	a := []float64{1, 2, 3, 4, 5, 6}
	x := []float64{1, 1}
	y := make([]float64, 3)
	Gemv(3, 2, 1, a, 2, x, 0, y)
	want := []float64{3, 7, 11}
	for i := range want {
		if !almostEqual(y[i], want[i], tol) {
			t.Fatalf("Gemv got %v want %v", y, want)
		}
	}
	// beta accumulate: y = 2*A*x + 1*y → [9, 21, 33]
	Gemv(3, 2, 2, a, 2, x, 1, y)
	want = []float64{9, 21, 33}
	for i := range want {
		if !almostEqual(y[i], want[i], tol) {
			t.Fatalf("Gemv beta got %v want %v", y, want)
		}
	}
}

func TestGemvTrans(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 3x2
	x := []float64{1, 1, 1}
	y := make([]float64, 2)
	GemvTrans(3, 2, 1, a, 2, x, 0, y)
	want := []float64{9, 12}
	for i := range want {
		if !almostEqual(y[i], want[i], tol) {
			t.Fatalf("GemvTrans got %v want %v", y, want)
		}
	}
}

func TestGemvTransMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 17, 9
	a := randSlice(rng, m*n)
	x := randSlice(rng, m)
	// Explicit transpose.
	at := make([]float64, n*m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			at[j*m+i] = a[i*n+j]
		}
	}
	want := make([]float64, n)
	Gemv(n, m, 1, at, m, x, 0, want)
	got := make([]float64, n)
	GemvTrans(m, n, 1, a, n, x, 0, got)
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-10) {
			t.Fatalf("GemvTrans mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestGer(t *testing.T) {
	a := make([]float64, 6) // 2x3
	Ger(2, 3, 2, []float64{1, 2}, []float64{1, 2, 3}, a, 3)
	want := []float64{2, 4, 6, 4, 8, 12}
	for i := range want {
		if !almostEqual(a[i], want[i], tol) {
			t.Fatalf("Ger got %v want %v", a, want)
		}
	}
}

func naiveGemm(m, n, k int, a, b []float64) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {64, 64, 64}, {65, 63, 70}, {128, 5, 100}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		c := make([]float64, m*n)
		Gemm(m, n, k, 1, a, k, b, n, 0, c, n)
		want := naiveGemm(m, n, k, a, b)
		for i := range want {
			if !almostEqual(c[i], want[i], 1e-9) {
				t.Fatalf("Gemm(%dx%dx%d) mismatch at %d: %v vs %v", m, n, k, i, c[i], want[i])
			}
		}
	}
}

func TestGemmBeta(t *testing.T) {
	a := []float64{1, 0, 0, 1} // I
	b := []float64{1, 2, 3, 4}
	c := []float64{10, 10, 10, 10}
	Gemm(2, 2, 2, 1, a, 2, b, 2, 0.5, c, 2)
	want := []float64{6, 7, 8, 9}
	for i := range want {
		if !almostEqual(c[i], want[i], tol) {
			t.Fatalf("Gemm beta got %v want %v", c, want)
		}
	}
}

func TestCheckMatrixPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"short storage": func() { Gemv(3, 2, 1, []float64{1, 2, 3}, 2, []float64{1, 1}, 0, make([]float64, 3)) },
		"bad lda":       func() { Gemv(2, 3, 1, make([]float64, 6), 2, make([]float64, 3), 0, make([]float64, 2)) },
		"neg dim":       func() { Gemv(-1, 2, 1, nil, 2, nil, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotPropertySymmetry(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		x, y := raw[:half], raw[half:half*2]
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				raw[i] = 0
			}
		}
		return almostEqual(Dot(x, y), Dot(y, x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Nrm2(x)² ≈ Dot(x,x) for well-scaled inputs.
func TestNrm2PropertyDotConsistency(t *testing.T) {
	f := func(x []float64) bool {
		for i, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				x[i] = 0
			}
		}
		n := Nrm2(x)
		return almostEqual(n*n, Dot(x, x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SqDist(x,y) == Nrm2(x-y)².
func TestSqDistPropertyNormConsistency(t *testing.T) {
	f := func(raw []float64) bool {
		half := len(raw) / 2
		x, y := raw[:half], raw[half:half*2]
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) || math.Abs(raw[i]) > 1e100 {
				raw[i] = 1
			}
		}
		d := make([]float64, half)
		AddScaled(d, x, -1, y)
		n := Nrm2(d)
		return almostEqual(SqDist(x, y), n*n, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSumRows(t *testing.T) {
	// 3x2 block with stride 3 (one padding column).
	a := []float64{1, 2, 99, 3, 4, 99, 5, 6, 99}
	y := []float64{10, 20}
	SumRows(3, 2, a, 3, y)
	if y[0] != 19 || y[1] != 32 {
		t.Errorf("SumRows = %v, want [19 32]", y)
	}
}

func TestSyrUpperTriangle(t *testing.T) {
	x := []float64{1, 2, 3}
	a := make([]float64, 9)
	Syr(3, 2, x, a, 3)
	want := []float64{2, 4, 6, 0, 8, 12, 0, 0, 18}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("Syr a = %v, want %v", a, want)
		}
	}
	// alpha == 0 is a no-op.
	Syr(3, 0, x, a, 3)
	if a[0] != 2 {
		t.Errorf("Syr alpha=0 modified a")
	}
}

func TestNearestRow(t *testing.T) {
	c := []float64{0, 0, 10, 10, 1, 1}
	best, dist := NearestRow([]float64{1.2, 0.9}, 3, 2, c, 2)
	if best != 2 {
		t.Errorf("NearestRow best = %d, want 2", best)
	}
	if !almostEqual(dist, 0.2*0.2+0.1*0.1, 1e-12) {
		t.Errorf("NearestRow dist = %v", dist)
	}
	// Ties resolve to the lowest index.
	tie := []float64{1, 0, 1, 0}
	if best, _ := NearestRow([]float64{0, 0}, 2, 2, tie, 2); best != 0 {
		t.Errorf("tie best = %d, want 0", best)
	}
}
