package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"m3"
)

// TestHotSwapUnderLoad swaps a model between two generations while
// clients hammer it: zero requests may fail, and every response must
// be bit-consistent with exactly one generation — never a blend.
func TestHotSwapUnderLoad(t *testing.T) {
	dir := t.TempDir()
	genA := saveConstLinear(t, dir, "a.model", 4, 100)
	genB := saveConstLinear(t, dir, "b.model", 4, 200)

	reg := NewRegistry()
	if _, err := reg.LoadFile("lin", genA); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Config{BatchSize: 16, BatchDelay: 200 * time.Microsecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	stop := make(chan struct{})
	var swaps atomic.Int64
	var swapErr atomic.Value
	var wg sync.WaitGroup

	// Swapper: flip between generations as fast as the server allows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		paths := []string{genB, genA}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body, _ := json.Marshal(map[string]string{"path": paths[i%2]})
			resp, err := http.Post(ts.URL+"/models/lin/swap", "application/json", bytes.NewReader(body))
			if err != nil {
				swapErr.Store(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				swapErr.Store(fmt.Errorf("swap status %d", resp.StatusCode))
				return
			}
			swaps.Add(1)
		}
	}()

	// Clients: multi-row requests so a blend would be visible within
	// one response.
	const clients = 8
	var requests, blends, failures atomic.Int64
	reqBody, _ := json.Marshal(map[string][][]float64{
		"rows": {{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10, 11, 12}},
	})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/models/lin/predict", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					failures.Add(1)
					return
				}
				var out predictResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || err != nil {
					failures.Add(1)
					return
				}
				requests.Add(1)
				if len(out.Predictions) != 3 {
					failures.Add(1)
					return
				}
				p := out.Predictions
				if p[0] != p[1] || p[1] != p[2] || (p[0] != 100 && p[0] != 200) {
					blends.Add(1)
					return
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if err, _ := swapErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed during swaps", failures.Load())
	}
	if blends.Load() != 0 {
		t.Fatalf("%d responses blended model generations", blends.Load())
	}
	if requests.Load() == 0 || swaps.Load() == 0 {
		t.Fatalf("load never ran: %d requests, %d swaps", requests.Load(), swaps.Load())
	}
	t.Logf("%d requests across %d swaps, zero failures", requests.Load(), swaps.Load())
}

// TestSwapWaitsForInFlightBatch pins the old generation inside
// PredictMatrix, swaps it out, and checks its closer (the engine mmap
// teardown in production) runs only after the batch releases it.
func TestSwapWaitsForInFlightBatch(t *testing.T) {
	gate := make(chan struct{})
	var closes atomic.Int64
	old := &constModel{val: 1, gate: gate}
	oldSnap := NewSnapshot(old, m3.ModelInfo{InputCols: 1}, "", func() error {
		closes.Add(1)
		return nil
	})
	reg := NewRegistry()
	e := reg.Set("m", oldSnap)

	// Dispatch a batch that blocks inside the old model's
	// PredictMatrix (driving dispatchGroup directly — the batcher
	// serializes flushes, which would hide the overlap under test).
	req := newReq(e, 1, 1)
	go dispatchGroup(e, []*batchRequest{req})
	deadline := time.Now().Add(5 * time.Second)
	for old.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("batch never reached the model")
		}
		time.Sleep(time.Millisecond)
	}

	// Swap mid-batch: the old snapshot must stay open.
	reg.Set("m", NewSnapshot(&constModel{val: 2}, m3.ModelInfo{InputCols: 1}, "", nil))
	time.Sleep(10 * time.Millisecond)
	if closes.Load() != 0 {
		t.Fatal("old snapshot closed while its batch was still predicting")
	}
	select {
	case <-oldSnap.Retired():
		t.Fatal("old snapshot retired while its batch was still predicting")
	default:
	}

	// A batch after the swap is answered by the new generation even
	// though the old batch is still stuck.
	req2 := newReq(e, 1, 1)
	dispatchGroup(e, []*batchRequest{req2})
	if res := mustReply(t, req2); res.err != nil || res.preds[0] != 2 {
		t.Fatalf("post-swap request: %+v", res)
	}

	// Release the gate: the old batch completes on the old model, and
	// only then does the closer run.
	close(gate)
	if res := mustReply(t, req); res.err != nil || res.preds[0] != 1 {
		t.Fatalf("in-flight request: %+v", res)
	}
	waitRetired(t, oldSnap)
	if closes.Load() != 1 {
		t.Fatalf("closer ran %d times, want 1", closes.Load())
	}
}
