// Package serve is the model-serving subsystem behind cmd/m3serve:
// an HTTP/JSON prediction server over m3.Load-ed models of any saved
// kind, including whole pipelines (which predict through their fused
// per-worker kernel views — no per-request stage materialization).
//
// The moving parts:
//
//   - Registry: named models behind atomic snapshot pointers, so a
//     hot-swap (POST /models/{name}/swap, or SIGHUP) is one pointer
//     flip — zero dropped requests, old resources (e.g. the engine
//     mmap backing a k-NN table) closed only after the last in-flight
//     batch releases them.
//   - Batcher: accumulates requests and flushes them as single
//     PredictMatrix calls (micro-batching), splitting mixed-model
//     flushes into per-model groups.
//   - Metrics: per-model request/error counts, batch-size histogram
//     and p50/p90/p99 latency at GET /metrics — Prometheus text by
//     default (through a per-server obs.Registry that also folds in
//     the process-wide obs counters), the legacy JSON document with
//     ?format=json or Accept: application/json.
//
// Routes:
//
//	POST /models/{name}/predict  {"rows": [[...], ...]} → {"model", "predictions"}
//	POST /models/{name}/swap     {"path": "..."}        → load + atomic flip
//	GET  /models                 registered models and their metadata
//	GET  /models/{name}          one model's metadata + metrics
//	GET  /metrics                Prometheus text (JSON via ?format=json)
//	GET  /healthz                200 while serving, 503 once draining
//	GET  /debug/pprof/...        net/http/pprof profiling endpoints
//
// When a process tracer is installed (obs.StartTrace, m3serve
// -trace), every prediction request and every flushed batch become
// linked async spans in the Chrome trace-event export.
package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	nhpprof "net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"m3"
	"m3/internal/obs"
)

// maxBodyBytes bounds a predict/swap request body (64 MiB — a
// 4096-row batch of 784 float64 features is ~26 MiB of JSON).
const maxBodyBytes = 64 << 20

// Config tunes the server's micro-batcher.
type Config struct {
	// BatchSize flushes a batch when this many rows are pending
	// (minimum 1).
	BatchSize int
	// BatchDelay flushes a smaller batch once its oldest request has
	// waited this long; 0 flushes as soon as the dispatcher is free.
	BatchDelay time.Duration
	// QueueRows caps the rows waiting in the batcher queue; a request
	// that would exceed it is refused with HTTP 429 instead of queued
	// (admission control). 0 leaves the queue unbounded.
	QueueRows int
}

// Server ties the registry, batcher and metrics to HTTP routes.
type Server struct {
	reg      *Registry
	batcher  *Batcher
	mux      *http.ServeMux
	start    time.Time
	draining atomic.Bool
	obsReg   *obs.Registry
}

// NewServer builds a server over reg. The caller owns reg's lifetime;
// Drain stops the batcher but leaves the registry open so in-flight
// snapshots release normally.
func NewServer(reg *Registry, cfg Config) *Server {
	s := &Server{
		reg:     reg,
		batcher: NewBatcher(cfg.BatchSize, cfg.BatchDelay, cfg.QueueRows),
		start:   time.Now(),
	}
	// The server owns its own obs registry (per-model counters, store
	// stats, uptime) and folds in the process-wide Default registry
	// (fit progress, /proc counters) at gather time — so two servers
	// in one process never double-register collectors.
	s.obsReg = obs.NewRegistry()
	s.obsReg.Register(s.collectObs)
	s.obsReg.Include(obs.Default())
	mux := http.NewServeMux()
	mux.HandleFunc("POST /models/{name}/predict", s.handlePredict)
	mux.HandleFunc("POST /models/{name}/swap", s.handleSwap)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("GET /models/{name}", s.handleModel)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/pprof/", nhpprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", nhpprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", nhpprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", nhpprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", nhpprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

// ObsRegistry returns the server's metrics registry — what GET
// /metrics exposes in Prometheus text. Useful for embedding the
// server's counters into another report (m3bench serve records).
func (s *Server) ObsRegistry() *obs.Registry { return s.obsReg }

// Drain begins graceful shutdown: health flips to 503 (so load
// balancers stop routing here), new predictions are refused, and the
// call blocks until every in-flight batch has been answered.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.batcher.Drain()
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// predictRequest is the wire form of a prediction call.
type predictRequest struct {
	Rows [][]float64 `json:"rows"`
}

// predictResponse carries one value per request row.
type predictResponse struct {
	Model       string    `json:"model"`
	Predictions []float64 `json:"predictions"`
}

// parsePredict validates and flattens the request body against the
// entry's current metadata.
func parsePredict(r *http.Request, w http.ResponseWriter, e *Entry) (*batchRequest, *httpError) {
	var body predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&body); err != nil {
		return nil, &httpError{http.StatusBadRequest, "decoding body: " + err.Error()}
	}
	if len(body.Rows) == 0 {
		return nil, &httpError{http.StatusBadRequest, "empty rows"}
	}
	info, err := e.Info()
	if err != nil {
		return nil, &httpError{http.StatusServiceUnavailable, err.Error()}
	}
	cols := len(body.Rows[0])
	if info.InputCols > 0 && cols != info.InputCols {
		return nil, &httpError{http.StatusBadRequest,
			"model " + e.Name() + " expects " + strconv.Itoa(info.InputCols) + " columns, request has " + strconv.Itoa(cols)}
	}
	flat := make([]float64, 0, len(body.Rows)*cols)
	for i, row := range body.Rows {
		if len(row) != cols {
			return nil, &httpError{http.StatusBadRequest,
				"ragged rows: row " + strconv.Itoa(i) + " has " + strconv.Itoa(len(row)) + " values, row 0 has " + strconv.Itoa(cols)}
		}
		flat = append(flat, row...)
	}
	return &batchRequest{
		entry: e,
		rows:  flat,
		n:     len(body.Rows),
		cols:  cols,
		out:   make(chan result, 1),
	}, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	entry, ok := s.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("unknown model "+name))
		return
	}
	req, herr := parsePredict(r, w, entry)
	if herr != nil {
		entry.metrics.requestErrors(1)
		writeErr(w, herr.status, herr)
		return
	}
	if tr := obs.Current(); tr != nil {
		req.obsID = tr.NextID()
		tr.AsyncBegin("serve", "request "+name, req.obsID, map[string]any{"rows": req.n})
		defer tr.AsyncEnd("serve", "request "+name, req.obsID, nil)
	}
	start := time.Now()
	entry.metrics.request(req.n)
	if err := s.batcher.Submit(req); err != nil {
		entry.metrics.requestErrors(1)
		status := http.StatusServiceUnavailable
		if errors.Is(err, ErrQueueFull) {
			// Shed load, don't signal outage: 429 tells clients to back
			// off and retry, while draining stays a 503.
			status = http.StatusTooManyRequests
		}
		writeErr(w, status, err)
		return
	}
	res := <-req.out
	entry.metrics.observeLatency(time.Since(start))
	if res.err != nil {
		status := http.StatusInternalServerError
		if errors.Is(res.err, ErrModelClosed) || errors.Is(res.err, ErrDraining) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, res.err)
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{Model: name, Predictions: res.preds})
}

// swapRequest points a model name at a newly saved file.
type swapRequest struct {
	Path string `json:"path"`
}

func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var body swapRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if body.Path == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing path"))
		return
	}
	entry, err := s.reg.LoadFile(name, body.Path)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	info, _ := entry.Info()
	writeJSON(w, http.StatusOK, modelSummary(entry, info))
}

// modelInfo is the wire form of a registered model.
type modelInfoJSON struct {
	Name      string         `json:"name"`
	Kind      string         `json:"kind"`
	InputCols int            `json:"input_cols"`
	Classes   int            `json:"classes,omitempty"`
	Stages    []m3.ModelKind `json:"stages,omitempty"`
	Path      string         `json:"path,omitempty"`
	Swaps     int64          `json:"swaps"`
}

func modelSummary(e *Entry, info m3.ModelInfo) modelInfoJSON {
	return modelInfoJSON{
		Name:      e.Name(),
		Kind:      string(info.Kind),
		InputCols: info.InputCols,
		Classes:   info.Classes,
		Stages:    info.Stages,
		Path:      e.Path(),
		Swaps:     e.Metrics().Snapshot().Swaps,
	}
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.Entries()
	out := make([]modelInfoJSON, 0, len(entries))
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, modelSummary(e, info))
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": out})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	entry, ok := s.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, errors.New("unknown model "+name))
		return
	}
	info, err := entry.Info()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":   modelSummary(entry, info),
		"metrics": entry.Metrics().Snapshot(),
	})
}

// modelMetrics is one model's /metrics block.
type modelMetrics struct {
	MetricsSnapshot
	Store map[string]int64 `json:"store,omitempty"`
}

// collectObs emits the server-level gauges plus every model's
// counters and store stats into the server's obs registry.
func (s *Server) collectObs(emit func(obs.Metric)) {
	emit(obs.Metric{Name: "m3_serve_uptime_seconds",
		Help: "Seconds since the server started.", Type: obs.TypeGauge,
		Value: time.Since(s.start).Seconds()})
	drain := 0.0
	if s.draining.Load() {
		drain = 1
	}
	emit(obs.Metric{Name: "m3_serve_draining",
		Help: "1 while the server is draining, 0 otherwise.", Type: obs.TypeGauge,
		Value: drain})
	emit(obs.Metric{Name: "m3_serve_queue_rows",
		Help: "Rows currently waiting in the batcher queue.", Type: obs.TypeGauge,
		Value: float64(s.batcher.QueueRows())})
	for _, e := range s.reg.Entries() {
		e.Metrics().Collect(e.Name(), emit)
		stats := e.stats()
		keys := make([]string, 0, len(stats))
		for k := range stats {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			emit(obs.Metric{Name: "m3_store_" + k,
				Help: "Model store counter " + k + ".", Type: obs.TypeGauge,
				Labels: [][2]string{{"model", e.Name()}}, Value: float64(stats[k])})
		}
	}
}

// handleMetrics serves Prometheus text exposition by default; the
// original JSON document remains available with ?format=json or
// Accept: application/json for existing scrapers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	if wantJSON {
		models := map[string]modelMetrics{}
		for _, e := range s.reg.Entries() {
			models[e.Name()] = modelMetrics{
				MetricsSnapshot: e.Metrics().Snapshot(),
				Store:           e.stats(),
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"uptime_seconds": time.Since(s.start).Seconds(),
			"draining":       s.draining.Load(),
			"models":         models,
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obsReg.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": len(s.reg.Entries()),
	})
}
