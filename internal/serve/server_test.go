package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"m3"
	"m3/internal/mat"
)

// digitsFixture is a served scale→PCA→logreg pipeline over generated
// digits, plus everything a test needs to check parity against it.
type digitsFixture struct {
	ts      *httptest.Server
	srv     *Server
	reg     *Registry
	model   m3.Model  // the same saved pipeline, loaded directly
	queries []float64 // qn×cols sample rows from the dataset
	qn      int
	cols    int
	dir     string
}

func newDigitsFixture(t *testing.T) *digitsFixture {
	t.Helper()
	dir := t.TempDir()
	dsPath := filepath.Join(dir, "digits.m3")
	if err := m3.GenerateInfimnist(dsPath, 240, 11); err != nil {
		t.Fatal(err)
	}
	eng := m3.New(m3.Config{Mode: m3.InMemory})
	defer eng.Close()
	tbl, err := eng.Open(dsPath)
	if err != nil {
		t.Fatal(err)
	}
	pipe := m3.Pipeline{
		Stages: []m3.Transformer{
			m3.StandardScaler{},
			m3.PrincipalComponents{Options: m3.PCAOptions{Components: 4, Seed: 1}},
		},
		Estimator: m3.LogisticRegression{
			Binarize: true, Positive: 0,
			Options: m3.LogisticOptions{MaxIterations: 8},
		},
	}
	fitted, err := eng.Fit(context.Background(), pipe, tbl)
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "pipe.model")
	if err := fitted.Save(modelPath); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := m3.Load(modelPath)
	if err != nil {
		t.Fatal(err)
	}

	const qn = 8
	cols := tbl.X.Cols()
	queries := make([]float64, 0, qn*cols)
	for i := 0; i < qn; i++ {
		queries = append(queries, tbl.X.RawRow(i)...)
	}

	reg := NewRegistry()
	if _, err := reg.LoadFile("digits", modelPath); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, Config{BatchSize: 32, BatchDelay: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
		reg.Close()
	})
	return &digitsFixture{ts: ts, srv: srv, reg: reg, model: loaded, queries: queries, qn: qn, cols: cols, dir: dir}
}

// rowsJSON renders the fixture queries as a predict body.
func (f *digitsFixture) rowsJSON(t *testing.T) []byte {
	t.Helper()
	rows := make([][]float64, f.qn)
	for i := range rows {
		rows[i] = f.queries[i*f.cols : (i+1)*f.cols]
	}
	body, err := json.Marshal(map[string][][]float64{"rows": rows})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// post sends a JSON body and decodes the JSON reply into out.
func post(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s reply: %v", url, err)
		}
	}
	return resp.StatusCode
}

// get fetches a URL and decodes the JSON reply into out.
func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s reply: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServerPredictParity: predictions served over HTTP through the
// micro-batcher are bit-identical to calling the loaded pipeline's
// PredictMatrix directly.
func TestServerPredictParity(t *testing.T) {
	f := newDigitsFixture(t)
	want, err := f.model.PredictMatrix(mat.NewDenseFrom(append([]float64(nil), f.queries...), f.qn, f.cols))
	if err != nil {
		t.Fatal(err)
	}

	var out predictResponse
	if code := post(t, f.ts.URL+"/models/digits/predict", f.rowsJSON(t), &out); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	if out.Model != "digits" || len(out.Predictions) != f.qn {
		t.Fatalf("reply = %+v", out)
	}
	for i := range want {
		if out.Predictions[i] != want[i] {
			t.Fatalf("prediction %d: served %v, direct %v", i, out.Predictions[i], want[i])
		}
	}
}

func TestServerValidation(t *testing.T) {
	f := newDigitsFixture(t)
	base := f.ts.URL + "/models/digits/predict"

	if code := post(t, f.ts.URL+"/models/nope/predict", f.rowsJSON(t), nil); code != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", code)
	}
	if code := post(t, base, []byte(`{"rows": [[1, 2, 3]]}`), nil); code != http.StatusBadRequest {
		t.Errorf("wrong width: status %d, want 400", code)
	}
	if code := post(t, base, []byte(`{"rows": []}`), nil); code != http.StatusBadRequest {
		t.Errorf("empty rows: status %d, want 400", code)
	}
	if code := post(t, base, []byte(`{"rows": [[`), nil); code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", code)
	}

	// Ragged rows: row 0 sets the width, so make row 0 valid.
	rows := make([][]float64, 2)
	rows[0] = make([]float64, f.cols)
	rows[1] = make([]float64, f.cols-1)
	body, _ := json.Marshal(map[string][][]float64{"rows": rows})
	if code := post(t, base, body, nil); code != http.StatusBadRequest {
		t.Errorf("ragged rows: status %d, want 400", code)
	}
}

func TestServerModelsAndMetrics(t *testing.T) {
	f := newDigitsFixture(t)
	if code := post(t, f.ts.URL+"/models/digits/predict", f.rowsJSON(t), nil); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}

	var models struct {
		Models []modelInfoJSON `json:"models"`
	}
	if code := get(t, f.ts.URL+"/models", &models); code != http.StatusOK {
		t.Fatalf("/models status %d", code)
	}
	if len(models.Models) != 1 {
		t.Fatalf("models = %+v", models)
	}
	m := models.Models[0]
	if m.Name != "digits" || m.Kind != "pipeline" || m.InputCols != f.cols || len(m.Stages) != 3 {
		t.Errorf("model summary = %+v", m)
	}

	var one struct {
		Model   modelInfoJSON   `json:"model"`
		Metrics MetricsSnapshot `json:"metrics"`
	}
	if code := get(t, f.ts.URL+"/models/digits", &one); code != http.StatusOK {
		t.Fatalf("/models/digits status %d", code)
	}
	if one.Metrics.Requests != 1 || one.Metrics.Rows != int64(f.qn) {
		t.Errorf("metrics = %+v", one.Metrics)
	}
	if code := get(t, f.ts.URL+"/models/nope", nil); code != http.StatusNotFound {
		t.Errorf("/models/nope status %d, want 404", code)
	}

	var metrics struct {
		UptimeSeconds float64                 `json:"uptime_seconds"`
		Draining      bool                    `json:"draining"`
		Models        map[string]modelMetrics `json:"models"`
	}
	if code := get(t, f.ts.URL+"/metrics?format=json", &metrics); code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	dm, ok := metrics.Models["digits"]
	if !ok || dm.Requests != 1 || dm.Batches < 1 || dm.Errors != 0 {
		t.Errorf("/metrics digits = %+v", dm)
	}
	if dm.LatencyMs.P50 <= 0 || dm.LatencyMs.P99 < dm.LatencyMs.P50 {
		t.Errorf("latency quantiles = %+v", dm.LatencyMs)
	}
	if metrics.Draining {
		t.Error("/metrics reports draining on a live server")
	}

	var health struct {
		Status string `json:"status"`
		Models int    `json:"models"`
	}
	if code := get(t, f.ts.URL+"/healthz", &health); code != http.StatusOK || health.Status != "ok" || health.Models != 1 {
		t.Errorf("/healthz = %d %+v", code, health)
	}
}

func TestServerSwapEndpoint(t *testing.T) {
	f := newDigitsFixture(t)
	genA := saveConstLinear(t, f.dir, "gen-a.model", 3, 100)
	genB := saveConstLinear(t, f.dir, "gen-b.model", 3, 200)

	// Swap can also register a brand-new name.
	body, _ := json.Marshal(map[string]string{"path": genA})
	var swapped modelInfoJSON
	if code := post(t, f.ts.URL+"/models/lin/swap", body, &swapped); code != http.StatusOK {
		t.Fatalf("swap status %d", code)
	}
	if swapped.Kind != "linear" || swapped.Path != genA || swapped.Swaps != 0 {
		t.Errorf("swap reply = %+v", swapped)
	}

	predictBody := []byte(`{"rows": [[1, 2, 3]]}`)
	var out predictResponse
	if code := post(t, f.ts.URL+"/models/lin/predict", predictBody, &out); code != http.StatusOK || out.Predictions[0] != 100 {
		t.Fatalf("pre-swap predict = %d %+v", code, out)
	}

	body, _ = json.Marshal(map[string]string{"path": genB})
	if code := post(t, f.ts.URL+"/models/lin/swap", body, &swapped); code != http.StatusOK {
		t.Fatalf("swap status %d", code)
	}
	if swapped.Swaps != 1 {
		t.Errorf("swaps = %d, want 1", swapped.Swaps)
	}
	if code := post(t, f.ts.URL+"/models/lin/predict", predictBody, &out); code != http.StatusOK || out.Predictions[0] != 200 {
		t.Fatalf("post-swap predict = %d %+v", code, out)
	}

	// A bad path must fail the swap and keep the current generation.
	body, _ = json.Marshal(map[string]string{"path": filepath.Join(f.dir, "missing.model")})
	if code := post(t, f.ts.URL+"/models/lin/swap", body, nil); code != http.StatusBadRequest {
		t.Errorf("swap to missing file: status %d, want 400", code)
	}
	if code := post(t, f.ts.URL+"/models/lin/swap", []byte(`{}`), nil); code != http.StatusBadRequest {
		t.Errorf("swap without path: status %d, want 400", code)
	}
	if code := post(t, f.ts.URL+"/models/lin/predict", predictBody, &out); code != http.StatusOK || out.Predictions[0] != 200 {
		t.Fatalf("predict after failed swap = %d %+v", code, out)
	}
}

func TestServerDrain(t *testing.T) {
	f := newDigitsFixture(t)
	f.srv.Drain()

	if code := get(t, f.ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining: status %d, want 503", code)
	}
	if code := post(t, f.ts.URL+"/models/digits/predict", f.rowsJSON(t), nil); code != http.StatusServiceUnavailable {
		t.Errorf("predict while draining: status %d, want 503", code)
	}
	var metrics struct {
		Draining bool `json:"draining"`
	}
	if code := get(t, f.ts.URL+"/metrics?format=json", &metrics); code != http.StatusOK || !metrics.Draining {
		t.Errorf("/metrics while draining = %d %+v", code, metrics)
	}
}

// TestServerQueueFull429 drives the admission-control path end to
// end: with the dispatcher stuck in a slow model and the queue at its
// row cap, the next predict gets 429 Too Many Requests (not 503 —
// the server is healthy, just saturated), the queue-depth gauge shows
// the backlog at /metrics, and every admitted request still completes
// once the model unblocks.
func TestServerQueueFull429(t *testing.T) {
	reg := NewRegistry()
	gate := make(chan struct{})
	model := &constModel{val: 4, gate: gate}
	newEntry(t, reg, "m", model, 2)
	srv := NewServer(reg, Config{BatchSize: 1, QueueRows: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Drain()
		reg.Close()
	})

	url := ts.URL + "/models/m/predict"
	body := []byte(`{"rows": [[1, 2]]}`)
	statuses := make(chan int, 3)
	fire := func() {
		go func() {
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				statuses <- 0
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}

	// One request in flight (blocked inside PredictMatrix), then two
	// more filling the 2-row queue behind it.
	fire()
	waitFor(t, func() bool { return model.calls.Load() == 1 })
	fire()
	waitFor(t, func() bool { return srv.batcher.QueueRows() == 1 })
	fire()
	waitFor(t, func() bool { return srv.batcher.QueueRows() == 2 })

	var errBody struct {
		Error string `json:"error"`
	}
	if code := post(t, url, body, &errBody); code != http.StatusTooManyRequests {
		t.Fatalf("predict over cap: status %d (%s), want 429", code, errBody.Error)
	}
	if !strings.Contains(errBody.Error, "queue is full") {
		t.Errorf("429 body = %q, want a queue-full explanation", errBody.Error)
	}

	// The backlog is visible on the Prometheus endpoint.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "m3_serve_queue_rows 2") {
		t.Errorf("/metrics missing queue gauge; got:\n%s", text)
	}

	close(gate)
	for i := 0; i < 3; i++ {
		select {
		case code := <-statuses:
			if code != http.StatusOK {
				t.Errorf("admitted request %d finished with status %d", i, code)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("admitted request never completed")
		}
	}
}
