package serve

import (
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"time"

	"m3/internal/obs"
)

// latencySamples bounds per-model latency memory: quantiles come from
// a ring of the most recent samples, so a long-lived server reports
// current behavior, not its all-time history. This is a sampling
// window, not a sketch: reported quantiles describe the last 8192
// requests exactly, but tail quantiles of the *all-time* distribution
// are biased toward recent behavior — in particular P99 rests on the
// ~82 slowest samples in the window, so a rare slow mode that last
// occurred more than 8192 requests ago has aged out of the report
// entirely.
const latencySamples = 8192

// batchBuckets covers batch sizes 1 … 2^15 rows and above.
const batchBuckets = 16

// Metrics collects one served model's counters. All methods are safe
// for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	requests int64
	rows     int64
	errors   int64
	batches  int64
	swaps    int64
	// batchHist[i] counts flushed batches of 2^(i-1) < rows ≤ 2^i
	// (bucket 0: single-row batches).
	batchHist [batchBuckets]int64
	// batchRows sums rows over flushed batches — the histogram's _sum
	// in Prometheus terms (rows counts accepted request rows, which
	// includes rows still pending in the batcher).
	batchRows int64
	latMs     [latencySamples]float64
	latN      int // total samples ever observed
}

// NewMetrics returns zeroed counters.
func NewMetrics() *Metrics { return &Metrics{} }

// request counts an accepted prediction request of n rows.
func (m *Metrics) request(n int) {
	m.mu.Lock()
	m.requests++
	m.rows += int64(n)
	m.mu.Unlock()
}

// requestErrors counts n failed requests (validation, draining,
// prediction failure).
func (m *Metrics) requestErrors(n int) {
	m.mu.Lock()
	m.errors += int64(n)
	m.mu.Unlock()
}

// swapped counts a hot-swap of the model snapshot.
func (m *Metrics) swapped() {
	m.mu.Lock()
	m.swaps++
	m.mu.Unlock()
}

// observeBatch records one flushed batch of reqs requests totalling
// rows matrix rows; err is the PredictMatrix outcome.
func (m *Metrics) observeBatch(reqs, rows int, err error) {
	bucket := 0
	if rows > 1 {
		bucket = bits.Len64(uint64(rows - 1))
		if bucket >= batchBuckets {
			bucket = batchBuckets - 1
		}
	}
	m.mu.Lock()
	m.batches++
	m.batchHist[bucket]++
	m.batchRows += int64(rows)
	if err != nil {
		m.errors += int64(reqs)
	}
	m.mu.Unlock()
}

// observeLatency records one request's end-to-end service time.
func (m *Metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.latMs[m.latN%latencySamples] = ms
	m.latN++
	m.mu.Unlock()
}

// LatencyQuantiles are the standard serving percentiles in
// milliseconds, computed over the ring of the most recent
// latencySamples observations (see that constant for the bias this
// implies on tail quantiles). Edge cases are pinned: with no samples
// yet all three quantiles are exactly 0; with a single sample all
// three equal that sample.
type LatencyQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// MetricsSnapshot is the JSON form of a model's counters.
type MetricsSnapshot struct {
	Requests      int64            `json:"requests"`
	Rows          int64            `json:"rows"`
	Errors        int64            `json:"errors"`
	Batches       int64            `json:"batches"`
	Swaps         int64            `json:"swaps"`
	MeanBatchRows float64          `json:"mean_batch_rows"`
	BatchRowsHist map[string]int64 `json:"batch_rows_hist,omitempty"`
	LatencyMs     LatencyQuantiles `json:"latency_ms"`
}

// Snapshot returns a point-in-time copy for /metrics.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	s := MetricsSnapshot{
		Requests: m.requests,
		Rows:     m.rows,
		Errors:   m.errors,
		Batches:  m.batches,
		Swaps:    m.swaps,
	}
	if m.batches > 0 {
		s.MeanBatchRows = float64(m.rows) / float64(m.batches)
	}
	hist := map[string]int64{}
	for i, c := range m.batchHist {
		if c > 0 {
			hist["le_"+strconv.Itoa(1<<i)] = c
		}
	}
	if len(hist) > 0 {
		s.BatchRowsHist = hist
	}
	n := m.latN
	if n > latencySamples {
		n = latencySamples
	}
	samples := append([]float64(nil), m.latMs[:n]...)
	m.mu.Unlock()

	if len(samples) > 0 {
		sort.Float64s(samples)
		s.LatencyMs = LatencyQuantiles{
			P50: Percentile(samples, 0.50),
			P90: Percentile(samples, 0.90),
			P99: Percentile(samples, 0.99),
		}
	}
	return s
}

// Collect emits the model's counters as obs metrics, labeled
// model=name: request/row/error/batch/swap counters, the batch-size
// histogram in Prometheus histogram form (cumulative
// m3_serve_batch_rows_bucket{le=...} with _sum/_count), and the
// latency quantiles from the sampling ring (m3_serve_latency_ms
// {quantile=...}; see latencySamples for the window bias).
func (m *Metrics) Collect(model string, emit func(obs.Metric)) {
	m.mu.Lock()
	requests, rows, errs := m.requests, m.rows, m.errors
	batches, swaps, batchRows := m.batches, m.swaps, m.batchRows
	hist := m.batchHist
	n := m.latN
	if n > latencySamples {
		n = latencySamples
	}
	samples := append([]float64(nil), m.latMs[:n]...)
	m.mu.Unlock()

	lbl := [][2]string{{"model", model}}
	counter := func(name, help string, v float64) {
		emit(obs.Metric{Name: name, Help: help, Type: obs.TypeCounter, Labels: lbl, Value: v})
	}
	counter("m3_serve_requests_total", "Prediction requests accepted.", float64(requests))
	counter("m3_serve_request_rows_total", "Rows across accepted prediction requests.", float64(rows))
	counter("m3_serve_errors_total", "Failed requests (validation, draining, prediction failure).", float64(errs))
	counter("m3_serve_batches_total", "Batches flushed by the micro-batcher.", float64(batches))
	counter("m3_serve_swaps_total", "Model hot-swaps.", float64(swaps))

	// The top histogram bucket is clamped (it also counts batches past
	// 2^(batchBuckets-1) rows), so only +Inf represents it honestly.
	const histName = "m3_serve_batch_rows"
	const histHelp = "Rows per flushed batch."
	cum := 0.0
	for i := 0; i < batchBuckets-1; i++ {
		cum += float64(hist[i])
		emit(obs.Metric{Name: histName + "_bucket", Help: histHelp, Type: obs.TypeCounter,
			Labels: [][2]string{{"model", model}, {"le", strconv.Itoa(1 << i)}}, Value: cum})
	}
	emit(obs.Metric{Name: histName + "_bucket", Help: histHelp, Type: obs.TypeCounter,
		Labels: [][2]string{{"model", model}, {"le", "+Inf"}}, Value: float64(batches)})
	emit(obs.Metric{Name: histName + "_sum", Help: histHelp, Type: obs.TypeCounter,
		Labels: lbl, Value: float64(batchRows)})
	emit(obs.Metric{Name: histName + "_count", Help: histHelp, Type: obs.TypeCounter,
		Labels: lbl, Value: float64(batches)})

	sort.Float64s(samples)
	for _, q := range []struct {
		label string
		q     float64
	}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
		emit(obs.Metric{Name: "m3_serve_latency_ms",
			Help:   "Request latency quantiles over the last " + strconv.Itoa(latencySamples) + " samples.",
			Type:   obs.TypeGauge,
			Labels: [][2]string{{"model", model}, {"quantile", q.label}},
			Value:  Percentile(samples, q.q)})
	}
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of sorted samples by
// linear interpolation between closest ranks. Edge cases are pinned:
// an empty slice yields 0 (a server that has answered nothing reports
// zero latency rather than NaN), and a single sample is every
// quantile of itself.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
