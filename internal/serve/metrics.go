package serve

import (
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencySamples bounds per-model latency memory: quantiles come from
// a ring of the most recent samples, so a long-lived server reports
// current behavior, not its all-time history.
const latencySamples = 8192

// batchBuckets covers batch sizes 1 … 2^15 rows and above.
const batchBuckets = 16

// Metrics collects one served model's counters. All methods are safe
// for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	requests int64
	rows     int64
	errors   int64
	batches  int64
	swaps    int64
	// batchHist[i] counts flushed batches of 2^(i-1) < rows ≤ 2^i
	// (bucket 0: single-row batches).
	batchHist [batchBuckets]int64
	latMs     [latencySamples]float64
	latN      int // total samples ever observed
}

// NewMetrics returns zeroed counters.
func NewMetrics() *Metrics { return &Metrics{} }

// request counts an accepted prediction request of n rows.
func (m *Metrics) request(n int) {
	m.mu.Lock()
	m.requests++
	m.rows += int64(n)
	m.mu.Unlock()
}

// requestErrors counts n failed requests (validation, draining,
// prediction failure).
func (m *Metrics) requestErrors(n int) {
	m.mu.Lock()
	m.errors += int64(n)
	m.mu.Unlock()
}

// swapped counts a hot-swap of the model snapshot.
func (m *Metrics) swapped() {
	m.mu.Lock()
	m.swaps++
	m.mu.Unlock()
}

// observeBatch records one flushed batch of reqs requests totalling
// rows matrix rows; err is the PredictMatrix outcome.
func (m *Metrics) observeBatch(reqs, rows int, err error) {
	bucket := 0
	if rows > 1 {
		bucket = bits.Len64(uint64(rows - 1))
		if bucket >= batchBuckets {
			bucket = batchBuckets - 1
		}
	}
	m.mu.Lock()
	m.batches++
	m.batchHist[bucket]++
	if err != nil {
		m.errors += int64(reqs)
	}
	m.mu.Unlock()
}

// observeLatency records one request's end-to-end service time.
func (m *Metrics) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	m.latMs[m.latN%latencySamples] = ms
	m.latN++
	m.mu.Unlock()
}

// LatencyQuantiles are the standard serving percentiles in
// milliseconds.
type LatencyQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// MetricsSnapshot is the JSON form of a model's counters.
type MetricsSnapshot struct {
	Requests      int64            `json:"requests"`
	Rows          int64            `json:"rows"`
	Errors        int64            `json:"errors"`
	Batches       int64            `json:"batches"`
	Swaps         int64            `json:"swaps"`
	MeanBatchRows float64          `json:"mean_batch_rows"`
	BatchRowsHist map[string]int64 `json:"batch_rows_hist,omitempty"`
	LatencyMs     LatencyQuantiles `json:"latency_ms"`
}

// Snapshot returns a point-in-time copy for /metrics.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	s := MetricsSnapshot{
		Requests: m.requests,
		Rows:     m.rows,
		Errors:   m.errors,
		Batches:  m.batches,
		Swaps:    m.swaps,
	}
	if m.batches > 0 {
		s.MeanBatchRows = float64(m.rows) / float64(m.batches)
	}
	hist := map[string]int64{}
	for i, c := range m.batchHist {
		if c > 0 {
			hist["le_"+strconv.Itoa(1<<i)] = c
		}
	}
	if len(hist) > 0 {
		s.BatchRowsHist = hist
	}
	n := m.latN
	if n > latencySamples {
		n = latencySamples
	}
	samples := append([]float64(nil), m.latMs[:n]...)
	m.mu.Unlock()

	if len(samples) > 0 {
		sort.Float64s(samples)
		s.LatencyMs = LatencyQuantiles{
			P50: Percentile(samples, 0.50),
			P90: Percentile(samples, 0.90),
			P99: Percentile(samples, 0.99),
		}
	}
	return s
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) of sorted samples by
// linear interpolation between closest ranks.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
