package serve

import (
	"errors"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	cases := []struct {
		sorted []float64
		q      float64
		want   float64
	}{
		{nil, 0.5, 0},
		{[]float64{7}, 0.99, 7},
		{[]float64{1, 2, 3, 4}, 0, 1},
		{[]float64{1, 2, 3, 4}, 1, 4},
		{[]float64{1, 2, 3, 4}, 0.5, 2.5},
		{[]float64{1, 2, 3, 4, 5}, 0.5, 3},
		{[]float64{0, 10}, 0.9, 9},
	}
	for _, c := range cases {
		if got := Percentile(c.sorted, c.q); got != c.want {
			t.Errorf("Percentile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
		}
	}
}

func TestMetricsSnapshot(t *testing.T) {
	m := NewMetrics()
	m.request(3)
	m.request(5)
	m.requestErrors(1)
	m.swapped()
	m.observeBatch(2, 8, nil)
	m.observeLatency(2 * time.Millisecond)
	m.observeLatency(4 * time.Millisecond)

	s := m.Snapshot()
	if s.Requests != 2 || s.Rows != 8 || s.Errors != 1 || s.Batches != 1 || s.Swaps != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.MeanBatchRows != 8 {
		t.Errorf("mean batch rows = %v, want 8", s.MeanBatchRows)
	}
	// 8 rows lands in the le_8 bucket (2^2 < 8 ≤ 2^3).
	if s.BatchRowsHist["le_8"] != 1 || len(s.BatchRowsHist) != 1 {
		t.Errorf("batch hist = %v", s.BatchRowsHist)
	}
	if s.LatencyMs.P50 < 2 || s.LatencyMs.P50 > 4 || s.LatencyMs.P99 < s.LatencyMs.P50 {
		t.Errorf("latency = %+v", s.LatencyMs)
	}
}

func TestMetricsBatchHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	for _, rows := range []int{1, 2, 3, 4, 100000} {
		m.observeBatch(1, rows, nil)
	}
	s := m.Snapshot()
	want := map[string]int64{
		"le_1":     1, // rows=1
		"le_2":     1, // rows=2
		"le_4":     2, // rows=3, 4
		"le_32768": 1, // rows=100000 clamps into the top bucket
	}
	if len(s.BatchRowsHist) != len(want) {
		t.Fatalf("hist = %v, want %v", s.BatchRowsHist, want)
	}
	for k, v := range want {
		if s.BatchRowsHist[k] != v {
			t.Errorf("hist[%s] = %d, want %d", k, s.BatchRowsHist[k], v)
		}
	}
}

func TestMetricsBatchErrorCountsAllRequests(t *testing.T) {
	m := NewMetrics()
	m.observeBatch(3, 7, errors.New("boom"))
	if s := m.Snapshot(); s.Errors != 3 {
		t.Errorf("errors = %d, want 3 (one per request in the failed batch)", s.Errors)
	}
}

func TestMetricsLatencyRingWraps(t *testing.T) {
	m := NewMetrics()
	// Overfill the ring: early huge samples must be evicted.
	for i := 0; i < latencySamples; i++ {
		m.observeLatency(time.Hour)
	}
	for i := 0; i < latencySamples; i++ {
		m.observeLatency(time.Millisecond)
	}
	s := m.Snapshot()
	if s.LatencyMs.P99 > 2 {
		t.Errorf("p99 = %v ms — ring kept evicted samples", s.LatencyMs.P99)
	}
}
