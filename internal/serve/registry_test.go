package serve

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"m3"
	"m3/internal/ml/linreg"
)

// saveConstLinear writes a linear model predicting val for any input
// of the given width and returns its path.
func saveConstLinear(t *testing.T, dir, name string, cols int, val float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := m3.SaveModel(path, &linreg.Model{Weights: make([]float64, cols), Intercept: val}); err != nil {
		t.Fatal(err)
	}
	return path
}

// waitRetired asserts the snapshot retires promptly.
func waitRetired(t *testing.T, s *Snapshot) {
	t.Helper()
	select {
	case <-s.Retired():
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot not retired within 5s")
	}
}

func TestSnapshotCloserRunsOnlyAfterLastRelease(t *testing.T) {
	var closes atomic.Int64
	old := NewSnapshot(&constModel{val: 1}, m3.ModelInfo{}, "", func() error {
		closes.Add(1)
		return nil
	})
	reg := NewRegistry()
	e := reg.Set("m", old)

	// An in-flight batch holds a reference.
	held, err := e.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if held != old {
		t.Fatal("acquired a different snapshot")
	}

	// Swap: registry drops its reference, but the batch still holds one.
	reg.Set("m", NewSnapshot(&constModel{val: 2}, m3.ModelInfo{}, "", nil))
	select {
	case <-old.Retired():
		t.Fatal("snapshot retired while a batch still held it")
	default:
	}
	if closes.Load() != 0 {
		t.Fatal("closer ran while a batch still held the snapshot")
	}

	// New acquisitions must see the new generation.
	cur, err := e.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if cur == old {
		t.Fatal("Acquire returned the swapped-out snapshot")
	}
	cur.Release()

	held.Release()
	waitRetired(t, old)
	if closes.Load() != 1 {
		t.Fatalf("closer ran %d times, want 1", closes.Load())
	}
	if old.CloseErr() != nil {
		t.Fatal(old.CloseErr())
	}
}

func TestSnapshotCloseErr(t *testing.T) {
	boom := errors.New("close boom")
	s := NewSnapshot(&constModel{}, m3.ModelInfo{}, "", func() error { return boom })
	s.Release()
	waitRetired(t, s)
	if !errors.Is(s.CloseErr(), boom) {
		t.Fatalf("CloseErr = %v", s.CloseErr())
	}
}

func TestRegistryCloseRetiresEntries(t *testing.T) {
	var closes atomic.Int64
	reg := NewRegistry()
	snap := NewSnapshot(&constModel{val: 1}, m3.ModelInfo{}, "", func() error {
		closes.Add(1)
		return nil
	})
	e := reg.Set("m", snap)
	reg.Close()
	waitRetired(t, snap)
	if closes.Load() != 1 {
		t.Fatalf("closer ran %d times, want 1", closes.Load())
	}
	if _, err := e.Acquire(); !errors.Is(err, ErrModelClosed) {
		t.Fatalf("Acquire after Close = %v, want ErrModelClosed", err)
	}
	if _, err := e.Info(); !errors.Is(err, ErrModelClosed) {
		t.Fatalf("Info after Close = %v, want ErrModelClosed", err)
	}
}

func TestRegistryLoadFileAndReloadAll(t *testing.T) {
	dir := t.TempDir()
	path := saveConstLinear(t, dir, "m.model", 2, 100)
	reg := NewRegistry()
	e, err := reg.LoadFile("lin", path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := e.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "linear" || info.InputCols != 2 {
		t.Fatalf("info = %+v", info)
	}
	if e.Path() != path {
		t.Fatalf("path = %q", e.Path())
	}

	predict := func() float64 {
		snap, err := e.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		defer snap.Release()
		return snap.Model.Predict([]float64{3, 4})
	}
	if got := predict(); got != 100 {
		t.Fatalf("predict = %v, want 100", got)
	}

	// Overwrite the file and SIGHUP-style reload: same path, new model.
	saveConstLinear(t, dir, "m.model", 2, 200)
	if err := reg.ReloadAll(); err != nil {
		t.Fatal(err)
	}
	if got := predict(); got != 200 {
		t.Fatalf("predict after reload = %v, want 200", got)
	}
	if s := e.Metrics().Snapshot(); s.Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", s.Swaps)
	}

	// A bad file keeps the old generation serving and reports the error.
	badDir := t.TempDir()
	bad := filepath.Join(badDir, "bad.model")
	if _, err := reg.LoadFile("bad", bad); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	if _, ok := reg.Get("bad"); ok {
		t.Fatal("failed load registered an entry")
	}
}

func TestRegistryEntriesOrder(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"c", "a", "b"} {
		reg.Set(name, NewSnapshot(&constModel{}, m3.ModelInfo{}, "", nil))
	}
	// Re-setting an existing name must not duplicate it.
	reg.Set("a", NewSnapshot(&constModel{}, m3.ModelInfo{}, "", nil))
	var got []string
	for _, e := range reg.Entries() {
		got = append(got, e.Name())
	}
	want := []string{"c", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("entries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entries = %v, want %v", got, want)
		}
	}
}
