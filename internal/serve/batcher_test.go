package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"m3"
	"m3/internal/mat"
)

// constModel is a fake m3.Model: every prediction is val, calls and
// rows are counted, and an optional gate blocks PredictMatrix so
// tests can hold a batch in flight.
type constModel struct {
	val   float64
	calls atomic.Int64
	rows  atomic.Int64
	gate  chan struct{}
	fail  error
}

func (m *constModel) Predict(row []float64) float64 { return m.val }

func (m *constModel) PredictMatrix(x *mat.Dense) ([]float64, error) {
	m.calls.Add(1)
	m.rows.Add(int64(x.Rows()))
	if m.gate != nil {
		<-m.gate
	}
	if m.fail != nil {
		return nil, m.fail
	}
	out := make([]float64, x.Rows())
	for i := range out {
		out[i] = m.val
	}
	return out, nil
}

func (m *constModel) Save(string) error { return errors.New("constModel: no serial form") }

var _ m3.Model = (*constModel)(nil)

// newEntry registers a fake model and returns its entry.
func newEntry(t *testing.T, reg *Registry, name string, model m3.Model, cols int) *Entry {
	t.Helper()
	return reg.Set(name, NewSnapshot(model, m3.ModelInfo{Kind: "fake", InputCols: cols}, "", nil))
}

// newReq builds an n-row request for e.
func newReq(e *Entry, n, cols int) *batchRequest {
	return &batchRequest{
		entry: e,
		rows:  make([]float64, n*cols),
		n:     n,
		cols:  cols,
		out:   make(chan result, 1),
	}
}

// waitFor polls cond until it holds or 10s pass.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// mustReply reads a request's single reply with a timeout.
func mustReply(t *testing.T, req *batchRequest) result {
	t.Helper()
	select {
	case res := <-req.out:
		return res
	case <-time.After(10 * time.Second):
		t.Fatal("no reply within 10s")
		return result{}
	}
}

func TestBatcherFlushOnSize(t *testing.T) {
	reg := NewRegistry()
	model := &constModel{val: 7}
	e := newEntry(t, reg, "m", model, 3)
	// Deadline far away: only the size threshold can flush.
	b := NewBatcher(4, time.Hour, 0)
	defer b.Drain()

	reqs := make([]*batchRequest, 4)
	for i := range reqs {
		reqs[i] = newReq(e, 1, 3)
		if err := b.Submit(reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, req := range reqs {
		res := mustReply(t, req)
		if res.err != nil {
			t.Fatal(res.err)
		}
		if len(res.preds) != 1 || res.preds[0] != 7 {
			t.Fatalf("preds = %v", res.preds)
		}
	}
	if c, r := model.calls.Load(), model.rows.Load(); c != 1 || r != 4 {
		t.Errorf("model saw %d calls / %d rows, want one 4-row batch", c, r)
	}
}

func TestBatcherFlushOnDeadline(t *testing.T) {
	reg := NewRegistry()
	model := &constModel{val: 1}
	e := newEntry(t, reg, "m", model, 2)
	const delay = 30 * time.Millisecond
	// Size threshold unreachable: only the deadline can flush.
	b := NewBatcher(1<<20, delay, 0)
	defer b.Drain()

	start := time.Now()
	r1, r2 := newReq(e, 1, 2), newReq(e, 2, 2)
	if err := b.Submit(r1); err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(r2); err != nil {
		t.Fatal(err)
	}
	mustReply(t, r1)
	mustReply(t, r2)
	elapsed := time.Since(start)
	if elapsed < delay-time.Millisecond {
		t.Errorf("flushed after %s, before the %s deadline", elapsed, delay)
	}
	if c, r := model.calls.Load(), model.rows.Load(); c != 1 || r != 3 {
		t.Errorf("model saw %d calls / %d rows, want one 3-row batch", c, r)
	}
}

func TestBatcherSingleRequestLatencyBound(t *testing.T) {
	reg := NewRegistry()
	e := newEntry(t, reg, "m", &constModel{val: 2}, 1)
	const delay = 25 * time.Millisecond
	b := NewBatcher(1<<20, delay, 0)
	defer b.Drain()

	start := time.Now()
	req := newReq(e, 1, 1)
	if err := b.Submit(req); err != nil {
		t.Fatal(err)
	}
	mustReply(t, req)
	elapsed := time.Since(start)
	if elapsed < delay-time.Millisecond {
		t.Errorf("lone request answered after %s, before the deadline", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("lone request waited %s — deadline flush did not fire", elapsed)
	}
}

func TestBatcherGreedyFlushWithZeroDelay(t *testing.T) {
	reg := NewRegistry()
	e := newEntry(t, reg, "m", &constModel{val: 3}, 1)
	// delay 0: a lone request must not wait for the size threshold.
	b := NewBatcher(1<<20, 0, 0)
	defer b.Drain()

	req := newReq(e, 1, 1)
	start := time.Now()
	if err := b.Submit(req); err != nil {
		t.Fatal(err)
	}
	mustReply(t, req)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("greedy dispatch took %s", elapsed)
	}
}

func TestBatcherSplitsMixedModelTargets(t *testing.T) {
	reg := NewRegistry()
	ma, mb := &constModel{val: 1}, &constModel{val: 2}
	ea := newEntry(t, reg, "a", ma, 2)
	eb := newEntry(t, reg, "b", mb, 2)
	b := NewBatcher(4, time.Hour, 0)
	defer b.Drain()

	// Interleave targets within one flush.
	reqs := []*batchRequest{newReq(ea, 1, 2), newReq(eb, 1, 2), newReq(ea, 1, 2), newReq(eb, 1, 2)}
	for _, r := range reqs {
		if err := b.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range reqs {
		res := mustReply(t, r)
		if res.err != nil {
			t.Fatal(res.err)
		}
		want := float64(1 + i%2)
		if res.preds[0] != want {
			t.Errorf("request %d got %v, want %v", i, res.preds[0], want)
		}
	}
	// One flush, two per-model PredictMatrix calls of 2 rows each.
	if c, r := ma.calls.Load(), ma.rows.Load(); c != 1 || r != 2 {
		t.Errorf("model a saw %d calls / %d rows", c, r)
	}
	if c, r := mb.calls.Load(), mb.rows.Load(); c != 1 || r != 2 {
		t.Errorf("model b saw %d calls / %d rows", c, r)
	}
}

func TestBatcherRejectsMismatchedWidth(t *testing.T) {
	reg := NewRegistry()
	model := &constModel{val: 1}
	e := newEntry(t, reg, "m", model, 3)
	b := NewBatcher(2, time.Hour, 0)
	defer b.Drain()

	good, bad := newReq(e, 1, 3), newReq(e, 1, 2)
	if err := b.Submit(good); err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(bad); err != nil {
		t.Fatal(err)
	}
	if res := mustReply(t, good); res.err != nil || res.preds[0] != 1 {
		t.Errorf("good request: %+v", res)
	}
	if res := mustReply(t, bad); res.err == nil {
		t.Error("2-wide request against a 3-wide model was answered")
	}
	if r := model.rows.Load(); r != 1 {
		t.Errorf("model saw %d rows, want only the valid one", r)
	}
}

func TestBatcherPredictErrorFansOut(t *testing.T) {
	reg := NewRegistry()
	boom := errors.New("boom")
	e := newEntry(t, reg, "m", &constModel{fail: boom}, 1)
	b := NewBatcher(2, time.Hour, 0)
	defer b.Drain()

	r1, r2 := newReq(e, 1, 1), newReq(e, 1, 1)
	if err := b.Submit(r1); err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(r2); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*batchRequest{r1, r2} {
		if res := mustReply(t, r); !errors.Is(res.err, boom) {
			t.Errorf("err = %v, want boom", res.err)
		}
	}
	if s := e.Metrics().Snapshot(); s.Errors != 2 {
		t.Errorf("errors = %d, want 2", s.Errors)
	}
}

// TestBatcherQueueFull saturates a capped queue while the dispatcher
// is stuck in a slow model: submits up to the cap are admitted, the
// one past it is shed with ErrQueueFull, and every admitted request
// is still answered once the model unblocks.
func TestBatcherQueueFull(t *testing.T) {
	reg := NewRegistry()
	gate := make(chan struct{})
	model := &constModel{val: 1, gate: gate}
	e := newEntry(t, reg, "m", model, 1)
	b := NewBatcher(1, 0, 3)
	defer b.Drain()

	// The dispatcher takes the first request immediately and blocks in
	// PredictMatrix, leaving the queue empty behind it.
	inflight := newReq(e, 1, 1)
	if err := b.Submit(inflight); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return model.calls.Load() == 1 })

	// Fill the queue to its 3-row cap.
	queued := []*batchRequest{newReq(e, 2, 1), newReq(e, 1, 1)}
	for _, r := range queued {
		if err := b.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.QueueRows(); got != 3 {
		t.Fatalf("QueueRows = %d, want 3", got)
	}

	// One more row must be shed, not queued, and a shed request must
	// never receive a reply.
	over := newReq(e, 1, 1)
	if err := b.Submit(over); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit over cap: %v, want ErrQueueFull", err)
	}
	select {
	case res := <-over.out:
		t.Fatalf("shed request got a reply: %+v", res)
	default:
	}

	close(gate)
	for _, r := range append([]*batchRequest{inflight}, queued...) {
		if res := mustReply(t, r); res.err != nil {
			t.Fatal(res.err)
		}
	}
	if got := b.QueueRows(); got != 0 {
		t.Errorf("QueueRows after drain-down = %d, want 0", got)
	}
}

// TestBatcherOversizedRequestAdmitted: a single request larger than
// the whole cap still enters an empty queue — rejecting it forever
// would strand the client, and bounding the largest request is the
// HTTP body limit's job, not the queue's.
func TestBatcherOversizedRequestAdmitted(t *testing.T) {
	reg := NewRegistry()
	e := newEntry(t, reg, "m", &constModel{val: 2}, 1)
	b := NewBatcher(1, 0, 2)
	defer b.Drain()

	req := newReq(e, 5, 1)
	if err := b.Submit(req); err != nil {
		t.Fatalf("oversized request into empty queue: %v", err)
	}
	if res := mustReply(t, req); res.err != nil || len(res.preds) != 5 {
		t.Fatalf("oversized request reply: %+v", res)
	}
}

// TestBatcherDrainNoRequestLostOrAnsweredTwice hammers Submit from
// many goroutines while Drain lands mid-stream: every accepted
// request gets exactly one reply, every rejected one gets ErrDraining,
// and nothing is dropped.
func TestBatcherDrainNoRequestLostOrAnsweredTwice(t *testing.T) {
	reg := NewRegistry()
	model := &constModel{val: 5}
	e := newEntry(t, reg, "m", model, 1)
	b := NewBatcher(8, 200*time.Microsecond, 0)

	const workers = 8
	var accepted, answered, rejected atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := newReq(e, 1, 1)
				if err := b.Submit(req); err != nil {
					if !errors.Is(err, ErrDraining) {
						t.Errorf("unexpected submit error: %v", err)
					}
					rejected.Add(1)
					// Rejected requests must never be answered.
					select {
					case res := <-req.out:
						t.Errorf("rejected request got a reply: %+v", res)
					default:
					}
					return
				}
				accepted.Add(1)
				res := mustReply(t, req)
				if res.err != nil {
					t.Errorf("accepted request failed: %v", res.err)
				}
				answered.Add(1)
				// Exactly one reply: the channel must now be empty.
				select {
				case res := <-req.out:
					t.Errorf("request answered twice: %+v", res)
				default:
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond)
	b.Drain()
	close(stop)
	wg.Wait()

	if accepted.Load() != answered.Load() {
		t.Errorf("accepted %d requests but answered %d", accepted.Load(), answered.Load())
	}
	if accepted.Load() == 0 {
		t.Error("no requests accepted — hammer never ran")
	}
	// Submits after Drain returned must be rejected.
	if err := b.Submit(newReq(e, 1, 1)); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit: %v", err)
	}
	if model.rows.Load() != accepted.Load() {
		t.Errorf("model saw %d rows, want %d", model.rows.Load(), accepted.Load())
	}
}
