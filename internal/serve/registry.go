package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"m3"
)

// ErrModelClosed is returned for requests against an entry whose
// registry has shut down.
var ErrModelClosed = errors.New("serve: model closed")

// Snapshot is one immutable generation of a served model: the fitted
// model, its header metadata, and an optional closer for resources
// the model pins (an engine whose mmap backs a k-NN reference table,
// say). Snapshots are reference-counted: the registry holds one
// reference for the current generation, every in-flight batch holds
// one while predicting, and the closer runs only when the last
// reference drops — so a hot-swap never unmaps a file while a batch
// is still reading it.
type Snapshot struct {
	Model m3.Model
	Info  m3.ModelInfo
	// Path is the saved-model file this snapshot was loaded from;
	// empty for programmatically registered models.
	Path string
	// Stats optionally reports storage counters for the model's
	// backing data (bytes touched, resident bytes, engine scratch)
	// for /metrics.
	Stats func() map[string]int64

	closer   func() error
	refs     atomic.Int64
	retired  chan struct{}
	closeErr error
}

// NewSnapshot wraps a model for registration. closer (may be nil)
// runs exactly once, after the registry has replaced or dropped the
// snapshot and the last in-flight batch has released it.
func NewSnapshot(model m3.Model, info m3.ModelInfo, path string, closer func() error) *Snapshot {
	s := &Snapshot{Model: model, Info: info, Path: path, closer: closer, retired: make(chan struct{})}
	s.refs.Store(1)
	return s
}

// acquire takes a reference, failing if the snapshot already retired.
func (s *Snapshot) acquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops a reference; the last one out runs the closer.
func (s *Snapshot) Release() {
	if s.refs.Add(-1) == 0 {
		if s.closer != nil {
			s.closeErr = s.closer()
		}
		close(s.retired)
	}
}

// Retired is closed once the snapshot's last reference is gone and
// its closer has run.
func (s *Snapshot) Retired() <-chan struct{} { return s.retired }

// CloseErr reports the closer's error; valid after Retired is closed.
func (s *Snapshot) CloseErr() error { return s.closeErr }

// Entry is a served model name. The current snapshot hangs off an
// atomic pointer, so a swap is one pointer flip: requests that
// already acquired the old snapshot finish on it, later requests see
// the new one, and nothing blocks.
type Entry struct {
	name    string
	cur     atomic.Pointer[Snapshot]
	metrics *Metrics
}

// Name returns the registered model name.
func (e *Entry) Name() string { return e.name }

// Metrics returns the entry's counters (never nil).
func (e *Entry) Metrics() *Metrics { return e.metrics }

// Info returns the current snapshot's model metadata.
func (e *Entry) Info() (m3.ModelInfo, error) {
	p := e.cur.Load()
	if p == nil {
		return m3.ModelInfo{}, ErrModelClosed
	}
	return p.Info, nil
}

// Path returns the current snapshot's source file ("" when none).
func (e *Entry) Path() string {
	if p := e.cur.Load(); p != nil {
		return p.Path
	}
	return ""
}

// Acquire returns the current snapshot with a reference held; the
// caller must Release it. A snapshot that retires between the load
// and the acquire just means a swap won the race — retry on the
// replacement.
func (e *Entry) Acquire() (*Snapshot, error) {
	for {
		p := e.cur.Load()
		if p == nil {
			return nil, ErrModelClosed
		}
		if p.acquire() {
			return p, nil
		}
	}
}

// stats returns the current snapshot's storage counters, if any.
func (e *Entry) stats() map[string]int64 {
	if p := e.cur.Load(); p != nil && p.Stats != nil {
		return p.Stats()
	}
	return nil
}

// Registry maps model names to entries. Set (and the /swap endpoint
// and SIGHUP reload built on it) replaces a name's snapshot with a
// single atomic pointer flip and releases the registry's reference on
// the old generation — zero requests dropped, old resources closed
// only after the last in-flight batch finishes.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*Entry
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*Entry{}}
}

// Set registers snap under name, creating the entry or hot-swapping
// the previous snapshot out.
func (r *Registry) Set(name string, snap *Snapshot) *Entry {
	r.mu.Lock()
	e := r.entries[name]
	if e == nil {
		e = &Entry{name: name, metrics: NewMetrics()}
		r.entries[name] = e
		r.order = append(r.order, name)
	}
	old := e.cur.Swap(snap)
	r.mu.Unlock()
	if old != nil {
		e.metrics.swapped()
		old.Release()
	}
	return e
}

// LoadFile loads the saved model at path (any modelio kind, including
// whole pipelines) and registers it under name — the swap entry
// point: an existing name flips to the new file atomically.
func (r *Registry) LoadFile(name, path string) (*Entry, error) {
	model, info, err := m3.Load(path)
	if err != nil {
		return nil, fmt.Errorf("serve: loading %s from %s: %w", name, path, err)
	}
	return r.Set(name, NewSnapshot(model, info, path, nil)), nil
}

// Get looks a model name up.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	return e, ok
}

// Entries lists entries in registration order.
func (r *Registry) Entries() []*Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Entry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.entries[name])
	}
	return out
}

// ReloadAll re-loads every file-backed entry from its current path —
// the SIGHUP handler: retrain, save over the file, signal.
func (r *Registry) ReloadAll() error {
	var errs []error
	for _, e := range r.Entries() {
		path := e.Path()
		if path == "" {
			continue
		}
		if _, err := r.LoadFile(e.Name(), path); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close retires every entry: the registry reference is released, and
// each snapshot's closer runs as soon as its in-flight batches drain.
// Requests arriving after Close fail with ErrModelClosed.
func (r *Registry) Close() {
	for _, e := range r.Entries() {
		if old := e.cur.Swap(nil); old != nil {
			old.Release()
		}
	}
}
