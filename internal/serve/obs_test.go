package serve

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"m3/internal/obs"
)

// TestLatencyQuantileEdges pins the documented edge behavior of the
// sampling ring: no samples → all quantiles exactly 0; one sample →
// every quantile equals it.
func TestLatencyQuantileEdges(t *testing.T) {
	m := NewMetrics()
	s := m.Snapshot()
	if s.LatencyMs != (LatencyQuantiles{}) {
		t.Errorf("empty ring quantiles = %+v, want all zero", s.LatencyMs)
	}

	m.observeLatency(3 * time.Millisecond)
	s = m.Snapshot()
	want := LatencyQuantiles{P50: 3, P90: 3, P99: 3}
	if s.LatencyMs != want {
		t.Errorf("single-sample quantiles = %+v, want %+v", s.LatencyMs, want)
	}
}

// TestLatencyRingWraps: past latencySamples observations the ring
// keeps only the most recent window, so quantiles track current
// behavior — old slow modes age out (the documented P99 bias).
func TestLatencyRingWraps(t *testing.T) {
	m := NewMetrics()
	// A slow era, fully displaced by a fast era.
	for i := 0; i < latencySamples; i++ {
		m.observeLatency(100 * time.Millisecond)
	}
	for i := 0; i < latencySamples; i++ {
		m.observeLatency(time.Millisecond)
	}
	s := m.Snapshot()
	if s.LatencyMs.P99 != 1 {
		t.Errorf("P99 after full wrap = %v, want 1 (slow era aged out)", s.LatencyMs.P99)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if got := Percentile(sorted, 0.5); got != 2.5 {
		t.Errorf("median of 1..4 = %v, want 2.5", got)
	}
	if got := Percentile(sorted, 0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := Percentile(sorted, 1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single = %v, want 7", got)
	}
}

// TestMetricsCollectHistogram: the obs exposition of the batch
// histogram must be cumulative, in increasing le order, with +Inf
// equal to _count (the top clamped bucket is represented only there).
func TestMetricsCollectHistogram(t *testing.T) {
	m := NewMetrics()
	m.observeBatch(1, 1, nil)   // bucket le=1
	m.observeBatch(2, 3, nil)   // bucket le=4
	m.observeBatch(4, 100, nil) // bucket le=128

	var buckets []obs.Metric
	var sum, count float64
	m.Collect("digits", func(mt obs.Metric) {
		switch mt.Name {
		case "m3_serve_batch_rows_bucket":
			buckets = append(buckets, mt)
		case "m3_serve_batch_rows_sum":
			sum = mt.Value
		case "m3_serve_batch_rows_count":
			count = mt.Value
		}
	})
	if len(buckets) != batchBuckets {
		t.Fatalf("got %d buckets, want %d (finite le values + one +Inf)", len(buckets), batchBuckets)
	}
	last := buckets[len(buckets)-1]
	if last.Labels[1][1] != "+Inf" || last.Value != 3 {
		t.Errorf("top bucket = %+v, want le=+Inf value 3", last)
	}
	if sum != 104 || count != 3 {
		t.Errorf("sum/count = %v/%v, want 104/3", sum, count)
	}
	// Cumulative and monotone: each finite bucket counts batches at or
	// below its le.
	prev := 0.0
	for _, b := range buckets[:len(buckets)-1] {
		if b.Value < prev {
			t.Errorf("bucket %v not cumulative: %v < %v", b.Labels, b.Value, prev)
		}
		prev = b.Value
		le, err := strconv.Atoi(b.Labels[1][1])
		if err != nil {
			t.Fatalf("finite bucket has le %q", b.Labels[1][1])
		}
		wantCum := 0.0
		for _, rows := range []int{1, 3, 100} {
			if rows <= le {
				wantCum++
			}
		}
		if b.Value != wantCum {
			t.Errorf("bucket le=%d = %v, want %v", le, b.Value, wantCum)
		}
	}
}

// TestServerPrometheusMetrics: the default /metrics is Prometheus
// text exposition carrying the serve counters, batch histogram, store
// gauges and process counters; JSON stays available by negotiation.
func TestServerPrometheusMetrics(t *testing.T) {
	f := newDigitsFixture(t)
	if code := post(t, f.ts.URL+"/models/digits/predict", f.rowsJSON(t), nil); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}

	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE m3_serve_requests_total counter",
		`m3_serve_requests_total{model="digits"} 1`,
		"# TYPE m3_serve_batch_rows histogram",
		`m3_serve_batch_rows_bucket{model="digits",le="+Inf"}`,
		`m3_serve_latency_ms{model="digits",quantile="0.99"}`,
		"m3_serve_uptime_seconds",
		"m3_serve_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Buckets appear in increasing le order (Prometheus clients reject
	// +Inf-first orderings).
	infAt := strings.Index(text, `le="+Inf"`)
	oneAt := strings.Index(text, `le="1"`)
	if oneAt < 0 || infAt < oneAt {
		t.Errorf("bucket order wrong: le=1 at %d, le=+Inf at %d", oneAt, infAt)
	}

	// Content negotiation keeps the legacy JSON shape reachable.
	req, _ := http.NewRequest("GET", f.ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("Accept: application/json got Content-Type %q", ct)
	}
}

// TestServerPprofRoutes: the profiling endpoints ride on the same mux.
func TestServerPprofRoutes(t *testing.T) {
	f := newDigitsFixture(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(f.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestServeSpansLinkRequestsToBatches: with tracing enabled, each
// predict request opens an async span and the batch that carries it
// opens another listing the request ids — and all of them close.
func TestServeSpansLinkRequestsToBatches(t *testing.T) {
	f := newDigitsFixture(t)
	tr := obs.StartTrace()
	defer obs.StopTrace()

	if code := post(t, f.ts.URL+"/models/digits/predict", f.rowsJSON(t), nil); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}

	if open := tr.OpenSpans(); open != 0 {
		t.Errorf("OpenSpans after request = %d, want 0", open)
	}
	var reqBegin, reqEnd, batchBegin, batchEnd int
	var reqIDs []string
	var linked []int64
	for _, e := range tr.Events() {
		switch {
		case e.Name == "request digits" && e.Ph == "b":
			reqBegin++
			reqIDs = append(reqIDs, e.ID)
		case e.Name == "request digits" && e.Ph == "e":
			reqEnd++
		case e.Name == "batch digits" && e.Ph == "b":
			batchBegin++
			if ids, ok := e.Args["req_ids"].([]int64); ok {
				linked = append(linked, ids...)
			}
		case e.Name == "batch digits" && e.Ph == "e":
			batchEnd++
		}
	}
	if reqBegin != 1 || reqEnd != 1 {
		t.Errorf("request spans = %d begin / %d end, want 1/1", reqBegin, reqEnd)
	}
	if batchBegin < 1 || batchBegin != batchEnd {
		t.Errorf("batch spans = %d begin / %d end, want matched >= 1", batchBegin, batchEnd)
	}
	if len(linked) == 0 {
		t.Error("batch span lists no req_ids")
	}
	if len(reqIDs) == 1 && reqIDs[0] == "" {
		t.Error("request async span has empty id")
	}
}
