package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"m3/internal/mat"
	"m3/internal/obs"
)

// ErrDraining is returned for requests submitted after shutdown
// began.
var ErrDraining = errors.New("serve: server is draining")

// ErrQueueFull is returned when admitting a request would push the
// queue past its row cap — the server sheds load (HTTP 429) instead
// of letting latency grow without bound.
var ErrQueueFull = errors.New("serve: request queue is full")

// result is one request's reply.
type result struct {
	preds []float64
	err   error
}

// batchRequest is one enqueued prediction unit: n rows for one model
// entry. The reply channel is buffered, so dispatch never blocks on a
// slow reader; every submitted request receives exactly one result.
type batchRequest struct {
	entry *Entry
	rows  []float64 // n×cols, row-major
	n     int
	cols  int
	out   chan result
	enq   time.Time
	// obsID is the request's async-span id when tracing is enabled
	// (zero otherwise); batch spans list the ids of the requests they
	// carried, linking the two levels in the trace viewer.
	obsID int64
}

// Batcher accumulates prediction requests and flushes them as single
// PredictMatrix calls — the paper's row-blocked scan economics applied
// to serving: one pass over a model's reference data (or one fused
// pipeline view) answers a whole batch instead of one query.
//
// Flush policy: a batch flushes when pending rows reach size or when
// the oldest request has waited delay, whichever comes first — both
// flag-tunable. A flush takes at most size rows (requests are never
// split; the remainder stays queued), so size 1 degenerates to a true
// one-request-per-PredictMatrix server. With delay 0 the dispatcher is
// greedy: it takes whatever queued while the previous batch was
// predicting, so batches form under load without adding idle latency.
// Requests for different models in one flush are split into per-model
// PredictMatrix calls, each answered by exactly one model snapshot.
type Batcher struct {
	size    int
	delay   time.Duration
	maxRows int

	mu     sync.Mutex
	q      []*batchRequest
	qrows  int
	closed bool

	notify chan struct{}
	done   chan struct{}
}

// NewBatcher starts a batcher flushing at size pending rows or after
// delay, whichever comes first. size < 1 means 1 (no batching);
// delay 0 flushes as soon as the dispatcher is free. maxRows bounds
// the queue: a Submit that would push pending rows past it returns
// ErrQueueFull (admission control); maxRows <= 0 leaves the queue
// unbounded.
func NewBatcher(size int, delay time.Duration, maxRows int) *Batcher {
	if size < 1 {
		size = 1
	}
	b := &Batcher{
		size:    size,
		delay:   delay,
		maxRows: maxRows,
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go b.run()
	return b
}

// Submit enqueues a request. On nil error the request's out channel
// receives exactly one result; after Drain has begun, ErrDraining;
// when admitting the request would exceed the row cap, ErrQueueFull.
// A single request larger than the whole cap is still admitted into
// an empty queue — rejecting it forever would deadlock the client.
func (b *Batcher) Submit(req *batchRequest) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrDraining
	}
	if b.maxRows > 0 && b.qrows > 0 && b.qrows+req.n > b.maxRows {
		b.mu.Unlock()
		return ErrQueueFull
	}
	req.enq = time.Now()
	b.q = append(b.q, req)
	b.qrows += req.n
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
	return nil
}

// QueueRows reports the rows currently waiting in the queue — the
// admission-control gauge exported at /metrics.
func (b *Batcher) QueueRows() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.qrows
}

// Drain stops intake and blocks until every already-submitted request
// has been answered. Safe to call more than once.
func (b *Batcher) Drain() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	select {
	case b.notify <- struct{}{}:
	default:
	}
	<-b.done
}

// run is the dispatcher loop: wait for work, optionally linger for a
// fuller batch, take everything pending, dispatch, repeat. On drain
// the queue empties before the loop exits, so no request is lost.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		b.mu.Lock()
		if b.qrows == 0 {
			closed := b.closed
			b.mu.Unlock()
			if closed {
				return
			}
			<-b.notify
			continue
		}
		for b.qrows < b.size && !b.closed && b.delay > 0 {
			wait := b.delay - time.Since(b.q[0].enq)
			if wait <= 0 {
				break
			}
			b.mu.Unlock()
			timer := time.NewTimer(wait)
			select {
			case <-b.notify:
				timer.Stop()
			case <-timer.C:
			}
			b.mu.Lock()
		}
		// Take requests up to the size cap (always at least one; a
		// request is never split). Anything beyond stays queued for the
		// next flush, so size 1 really is one request per PredictMatrix.
		n, taken := 0, 0
		for n < len(b.q) && (n == 0 || taken < b.size) {
			taken += b.q[n].n
			n++
		}
		batch := b.q[:n:n]
		b.q = b.q[n:]
		b.qrows -= taken
		b.mu.Unlock()
		b.dispatch(batch)
	}
}

// dispatch splits a flushed batch by target entry and predicts each
// group concurrently.
func (b *Batcher) dispatch(batch []*batchRequest) {
	type group struct {
		entry *Entry
		reqs  []*batchRequest
		rows  int
	}
	byEntry := map[*Entry]*group{}
	var order []*group
	for _, r := range batch {
		g := byEntry[r.entry]
		if g == nil {
			g = &group{entry: r.entry}
			byEntry[r.entry] = g
			order = append(order, g)
		}
		g.reqs = append(g.reqs, r)
		g.rows += r.n
	}
	var wg sync.WaitGroup
	for _, g := range order {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			dispatchGroup(g.entry, g.reqs)
		}(g)
	}
	wg.Wait()
}

// dispatchGroup answers one entry's share of a batch with a single
// PredictMatrix call on a single model snapshot — a hot-swap landing
// mid-batch never blends two model generations into one flush, and
// the old generation's resources stay alive until Release.
func dispatchGroup(e *Entry, reqs []*batchRequest) {
	if tr := obs.Current(); tr != nil {
		rows := 0
		ids := make([]int64, 0, len(reqs))
		for _, r := range reqs {
			rows += r.n
			if r.obsID != 0 {
				ids = append(ids, r.obsID)
			}
		}
		args := map[string]any{"requests": len(reqs), "rows": rows}
		if len(ids) > 0 {
			args["req_ids"] = ids
		}
		name := "batch " + e.Name()
		id := tr.NextID()
		tr.AsyncBegin("serve", name, id, args)
		defer tr.AsyncEnd("serve", name, id, nil)
	}
	snap, err := e.Acquire()
	if err != nil {
		for _, r := range reqs {
			r.out <- result{err: err}
		}
		return
	}
	defer snap.Release()

	want := snap.Info.InputCols
	if want == 0 {
		want = reqs[0].cols
	}
	good := reqs[:0:0]
	rows := 0
	for _, r := range reqs {
		if r.cols != want {
			e.metrics.requestErrors(1)
			r.out <- result{err: fmt.Errorf("serve: model %s expects %d columns, request has %d", e.Name(), want, r.cols)}
			continue
		}
		good = append(good, r)
		rows += r.n
	}
	if len(good) == 0 {
		return
	}

	flat := make([]float64, 0, rows*want)
	for _, r := range good {
		flat = append(flat, r.rows...)
	}
	x := mat.NewDenseFrom(flat, rows, want)
	preds, err := snap.Model.PredictMatrix(x)
	e.metrics.observeBatch(len(good), rows, err)
	if err != nil {
		for _, r := range good {
			r.out <- result{err: err}
		}
		return
	}
	off := 0
	for _, r := range good {
		r.out <- result{preds: preds[off : off+r.n : off+r.n]}
		off += r.n
	}
}
