package graph

import "fmt"

// GenerateRMAT produces a deterministic scale-free directed graph by
// recursive quadrant sampling (R-MAT, Chakrabarti et al. 2004) — the
// standard synthetic stand-in for web/social graphs like those the
// MMap prior work processes. Node count is 2^scale.
func GenerateRMAT(scale int, edgesPerNode int, seed uint64) (*Graph, error) {
	if scale < 1 || scale > 30 {
		return nil, fmt.Errorf("graph: scale %d outside [1,30]", scale)
	}
	if edgesPerNode < 1 {
		return nil, fmt.Errorf("graph: edgesPerNode %d < 1", edgesPerNode)
	}
	nodes := int64(1) << scale
	edges := nodes * int64(edgesPerNode)

	// R-MAT quadrant probabilities (the canonical 57/19/19/5 split).
	const a, b, c = 0.57, 0.19, 0.19

	s := seed ^ 0x9e3779b97f4a7c15
	if s == 0 {
		s = 1
	}
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s>>11) / float64(1<<53)
	}

	g := &Graph{Nodes: nodes, Edges: make([]int64, 0, 2*edges)}
	for e := int64(0); e < edges; e++ {
		var src, dst int64
		for bit := scale - 1; bit >= 0; bit-- {
			r := next()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				dst |= 1 << bit
			case r < a+b+c:
				src |= 1 << bit
			default:
				src |= 1 << bit
				dst |= 1 << bit
			}
		}
		g.Edges = append(g.Edges, src, dst)
	}
	return g, nil
}

// GenerateRing returns a directed cycle over n nodes — a graph with
// one component and uniform PageRank, useful as a test oracle.
func GenerateRing(n int64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: ring needs >= 2 nodes")
	}
	g := &Graph{Nodes: n, Edges: make([]int64, 0, 2*n)}
	for i := int64(0); i < n; i++ {
		g.Edges = append(g.Edges, i, (i+1)%n)
	}
	return g, nil
}
