// Package graph reproduces the substrate the paper generalizes from:
// virtual-memory graph computation on a single PC (Lin et al., "MMap:
// Fast billion-scale graph computation on a PC via memory mapping",
// IEEE BigData 2014 — the paper's reference [3]). It provides a
// mappable on-disk edge-list format and the two algorithms that work
// evaluates: PageRank and connected components, both implemented as
// sequential edge scans so they page exactly like M3's ML workloads.
package graph

import (
	"encoding/binary"
	"fmt"
	"os"

	"m3/internal/mmap"
)

// GraphMagic identifies an M3 edge-list file.
const GraphMagic = "M3GRAPH\n"

// graphHeaderSize is the page-aligned header length.
const graphHeaderSize = 4096

// Graph is a directed graph as a (possibly memory-mapped) edge list
// sorted by source. Edges are stored as consecutive int64 pairs
// (src, dst), so a scan of the file is one pass over all edges.
type Graph struct {
	// Nodes is the node count; node ids are [0, Nodes).
	Nodes int64
	// Edges holds 2*EdgeCount int64 values: src0,dst0,src1,dst1,...
	Edges []int64

	region *mmap.Region
}

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int64 { return int64(len(g.Edges) / 2) }

// Edge returns the i-th edge.
func (g *Graph) Edge(i int64) (src, dst int64) {
	return g.Edges[2*i], g.Edges[2*i+1]
}

// Close unmaps a mapped graph (no-op for in-memory graphs).
func (g *Graph) Close() error {
	if g.region == nil {
		return nil
	}
	err := g.region.Unmap()
	g.region = nil
	g.Edges = nil
	return err
}

// Validate checks that all endpoints are in range.
func (g *Graph) Validate() error {
	if g.Nodes <= 0 {
		return fmt.Errorf("graph: non-positive node count %d", g.Nodes)
	}
	if len(g.Edges)%2 != 0 {
		return fmt.Errorf("graph: odd edge array length %d", len(g.Edges))
	}
	for i := int64(0); i < g.EdgeCount(); i++ {
		s, d := g.Edge(i)
		if s < 0 || s >= g.Nodes || d < 0 || d >= g.Nodes {
			return fmt.Errorf("graph: edge %d = (%d,%d) outside %d nodes", i, s, d, g.Nodes)
		}
	}
	return nil
}

// FromEdges builds an in-memory graph from (src, dst) pairs.
func FromEdges(nodes int64, pairs [][2]int64) (*Graph, error) {
	g := &Graph{Nodes: nodes, Edges: make([]int64, 0, 2*len(pairs))}
	for _, p := range pairs {
		g.Edges = append(g.Edges, p[0], p[1])
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Write stores the graph in the mappable on-disk format:
// header page (magic, version, nodes, edge count), then the raw
// little-endian edge array.
func (g *Graph) Write(path string) error {
	if err := g.Validate(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	hdr := make([]byte, graphHeaderSize)
	copy(hdr, GraphMagic)
	binary.LittleEndian.PutUint32(hdr[8:], 1)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(g.Nodes))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.EdgeCount()))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, 1<<16)
	pos := 0
	flush := func() error {
		_, err := f.Write(buf[:pos])
		pos = 0
		return err
	}
	for _, v := range g.Edges {
		if pos+8 > len(buf) {
			if err := flush(); err != nil {
				f.Close()
				return err
			}
		}
		binary.LittleEndian.PutUint64(buf[pos:], uint64(v))
		pos += 8
	}
	if err := flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Open memory-maps an edge-list file. Edge data pages in lazily as
// algorithms scan it.
func Open(path string) (*Graph, error) {
	region, err := mmap.MapFile(path)
	if err != nil {
		return nil, err
	}
	b := region.Bytes()
	if len(b) < graphHeaderSize {
		region.Unmap()
		return nil, fmt.Errorf("graph: %q truncated header", path)
	}
	if string(b[:8]) != GraphMagic {
		region.Unmap()
		return nil, fmt.Errorf("graph: %q bad magic", path)
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != 1 {
		region.Unmap()
		return nil, fmt.Errorf("graph: %q unsupported version %d", path, v)
	}
	nodes := int64(binary.LittleEndian.Uint64(b[16:]))
	edges := int64(binary.LittleEndian.Uint64(b[24:]))
	need := graphHeaderSize + 16*edges
	if int64(len(b)) < need {
		region.Unmap()
		return nil, fmt.Errorf("graph: %q has %d bytes, header implies %d", path, len(b), need)
	}
	payload := b[graphHeaderSize : graphHeaderSize+16*edges]
	g := &Graph{
		Nodes:  nodes,
		Edges:  int64View(payload),
		region: region,
	}
	if err := g.Validate(); err != nil {
		region.Unmap()
		return nil, err
	}
	return g, nil
}
