package graph

import (
	"context"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestFromEdgesValidate(t *testing.T) {
	if _, err := FromEdges(3, [][2]int64{{0, 1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := FromEdges(2, [][2]int64{{0, 5}}); err == nil {
		t.Error("accepted out-of-range endpoint")
	}
	if _, err := FromEdges(0, nil); err == nil {
		t.Error("accepted zero nodes")
	}
}

func TestWriteOpenRoundTrip(t *testing.T) {
	g, err := FromEdges(4, [][2]int64{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.m3g")
	if err := g.Write(path); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Nodes != 4 || m.EdgeCount() != 5 {
		t.Fatalf("mapped graph: %d nodes, %d edges", m.Nodes, m.EdgeCount())
	}
	for i := int64(0); i < g.EdgeCount(); i++ {
		s1, d1 := g.Edge(i)
		s2, d2 := m.Edge(i)
		if s1 != s2 || d1 != d2 {
			t.Fatalf("edge %d: (%d,%d) vs (%d,%d)", i, s1, d1, s2, d2)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("opened missing file")
	}
}

func TestPageRankRingIsUniform(t *testing.T) {
	g, err := GenerateRing(10)
	if err != nil {
		t.Fatal(err)
	}
	rank, iters, err := PageRank(context.Background(), g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 {
		t.Errorf("iters = %d", iters)
	}
	for i, r := range rank {
		if math.Abs(r-0.1) > 1e-6 {
			t.Errorf("rank[%d] = %v want 0.1 (symmetric ring)", i, r)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g, err := GenerateRMAT(8, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := PageRank(context.Background(), g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rank {
		sum += r
		if r < 0 {
			t.Fatal("negative rank")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v", sum)
	}
}

func TestPageRankHubGetsHighRank(t *testing.T) {
	// Star graph: everyone points at node 0.
	pairs := make([][2]int64, 0, 9)
	for i := int64(1); i < 10; i++ {
		pairs = append(pairs, [2]int64{i, 0})
	}
	g, err := FromEdges(10, pairs)
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := PageRank(context.Background(), g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	top := TopK(rank, 3)
	if top[0] != 0 {
		t.Errorf("top node = %d want 0 (the hub)", top[0])
	}
	if rank[0] < 5*rank[1] {
		t.Errorf("hub rank %v not dominant over %v", rank[0], rank[1])
	}
}

func TestPageRankDanglingMassConserved(t *testing.T) {
	// Node 2 has no out-edges; total rank must still be 1.
	g, err := FromEdges(3, [][2]int64{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rank, _, err := PageRank(context.Background(), g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %v with dangling node", sum)
	}
}

func TestTopK(t *testing.T) {
	rank := []float64{0.1, 0.5, 0.2, 0.9}
	top := TopK(rank, 2)
	if top[0] != 3 || top[1] != 1 {
		t.Errorf("TopK = %v", top)
	}
	if got := TopK(rank, 100); len(got) != 4 {
		t.Errorf("TopK clamp = %v", got)
	}
}

func TestConnectedComponentsTwoCliques(t *testing.T) {
	// Nodes 0-2 form one component, 3-5 another.
	g, err := FromEdges(6, [][2]int64{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	labels, scans, err := ConnectedComponents(g)
	if err != nil {
		t.Fatal(err)
	}
	if scans < 1 {
		t.Errorf("scans = %d", scans)
	}
	if ComponentCount(labels) != 2 {
		t.Errorf("components = %d want 2 (labels %v)", ComponentCount(labels), labels)
	}
	if labels[0] != labels[2] || labels[3] != labels[5] {
		t.Errorf("component members split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Errorf("components merged: %v", labels)
	}
}

func TestConnectedComponentsSingletons(t *testing.T) {
	g := &Graph{Nodes: 5}
	labels, _, err := ConnectedComponents(g)
	if err != nil {
		t.Fatal(err)
	}
	if ComponentCount(labels) != 5 {
		t.Errorf("isolated nodes: %d components", ComponentCount(labels))
	}
}

func TestGenerateRMATDeterministic(t *testing.T) {
	a, err := GenerateRMAT(6, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRMAT(6, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCount() != b.EdgeCount() {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge array differs at %d", i)
		}
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated graph invalid: %v", err)
	}
	if _, err := GenerateRMAT(0, 3, 1); err == nil {
		t.Error("accepted scale 0")
	}
	if _, err := GenerateRMAT(5, 0, 1); err == nil {
		t.Error("accepted 0 edges per node")
	}
}

func TestGenerateRMATSkewed(t *testing.T) {
	// R-MAT graphs are scale-free-ish: the max in-degree should far
	// exceed the mean.
	g, err := GenerateRMAT(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	inDeg := make([]int64, g.Nodes)
	for i := int64(0); i < g.EdgeCount(); i++ {
		_, dst := g.Edge(i)
		inDeg[dst]++
	}
	var maxDeg int64
	for _, d := range inDeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(g.EdgeCount()) / float64(g.Nodes)
	if float64(maxDeg) < 4*mean {
		t.Errorf("max in-degree %d not skewed vs mean %.1f", maxDeg, mean)
	}
}

func TestPageRankOverMappedGraph(t *testing.T) {
	// The MMap reproduction end-to-end: generate, write, map, rank —
	// results identical to in-memory.
	g, err := GenerateRMAT(7, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := PageRank(context.Background(), g, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rmat.m3g")
	if err := g.Write(path); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	got, _, err := PageRank(context.Background(), m, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("rank[%d]: mapped %v vs in-memory %v", i, got[i], want[i])
		}
	}
}

// Property: component labels are always the minimum node id reachable
// in the undirected sense, so every label is <= its node id.
func TestPropertyComponentLabelsMinimal(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := GenerateRMAT(5, 2, seed)
		if err != nil {
			return false
		}
		labels, _, err := ConnectedComponents(g)
		if err != nil {
			return false
		}
		for i, l := range labels {
			if l > int64(i) {
				return false
			}
			// A label must itself be labelled with itself (root).
			if labels[l] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
