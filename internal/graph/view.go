package graph

import "unsafe"

// int64View reinterprets a byte slice (length a multiple of 8) as
// int64 values without copying — the same zero-copy trick that turns
// mapped bytes into matrices in internal/mmap. On-disk byte order is
// little-endian, which matches every platform this package builds on
// (amd64/arm64).
func int64View(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}
