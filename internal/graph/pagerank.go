package graph

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/mmap"
)

// PageRankOptions configures the power iteration.
type PageRankOptions struct {
	// Damping is the teleport factor (default 0.85).
	Damping float64
	// MaxIterations bounds power iterations (default 100).
	MaxIterations int
	// Tol stops when the L1 change between iterations falls below it
	// (default 1e-9).
	Tol float64
	// Workers sizes the chunked-execution pool for the per-iteration
	// edge scan (<= 0: runtime.NumCPU(), 1: sequential). Ranks are
	// identical for every value.
	Workers int
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// edgeBytes is the on-disk footprint of one (src, dst) edge pair.
const edgeBytes = 16

// PageRank computes node ranks by power iteration over the edge list.
// Each iteration is one blocked scan of the (possibly mapped) edges
// on the shared chunked-execution layer: edge blocks run on a worker
// pool, each block scatters into its own partial rank vector, and
// partials merge in ascending block order — so ranks are bit-identical
// for any worker count. When the edge list is memory-mapped, each
// worker issues WillNeed advice for the following edge block before
// scanning its own, overlapping page-in with compute — the access
// pattern that made the MMap work [3] viable on a PC, and the same
// pattern M3's ML workloads exhibit.
//
// ctx cancels the computation within one edge block; the error is
// then ctx.Err(). A nil ctx never cancels.
func PageRank(ctx context.Context, g *Graph, opts PageRankOptions) ([]float64, int, error) {
	o := opts.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	n := g.Nodes
	// Each block reduces through its own n-length partial vector, so
	// blocks must hold at least ~n edges: zeroing + merging the
	// partial then costs O(1) amortized per edge instead of O(n) per
	// tiny block. The partition still depends only on the graph shape,
	// never on the worker count — determinism is preserved.
	blockBytes := exec.DefaultBlockBytes
	if minBytes := int(n) * edgeBytes; blockBytes < minBytes {
		blockBytes = minBytes
	}
	blocks := exec.Partition(int(g.EdgeCount()), edgeBytes, blockBytes)

	// Out-degrees: one scan.
	outDeg := make([]int64, n)
	for i := int64(0); i < g.EdgeCount(); i++ {
		src, _ := g.Edge(i)
		outDeg[src]++
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}

	for iter := 1; iter <= o.MaxIterations; iter++ {
		base := (1 - o.Damping) / float64(n)
		// Dangling mass is redistributed uniformly (standard fix).
		var dangling float64
		for v := int64(0); v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		danglingShare := o.Damping * dangling / float64(n)
		for i := range next {
			next[i] = base + danglingShare
		}
		// One blocked edge scan; per-block partial vectors reduce in
		// block order into next.
		contrib, err := exec.MapReduce(ctx, blocks, exec.Workers(o.Workers),
			func() []float64 { return make([]float64, n) },
			func(part []float64, b exec.Block) {
				g.adviseEdges(mmap.WillNeed, b.Hi, b.Hi+b.Len())
				for i := b.Lo; i < b.Hi; i++ {
					src, dst := g.Edge(int64(i))
					part[dst] += o.Damping * rank[src] / float64(outDeg[src])
				}
			},
			func(dst, src []float64) { blas.Axpy(1, src, dst) })
		if err != nil {
			return nil, iter - 1, err
		}
		blas.Axpy(1, contrib, next)
		// L1 convergence check.
		var delta float64
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < o.Tol {
			return rank, iter, nil
		}
	}
	return rank, o.MaxIterations, nil
}

// adviseEdges forwards an madvise hint for edges [lo, hi) when the
// edge list is memory-mapped (no-op for in-memory graphs).
func (g *Graph) adviseEdges(a mmap.Advice, lo, hi int) {
	if g.region == nil || lo >= hi || int64(lo) >= g.EdgeCount() {
		return
	}
	off := int64(graphHeaderSize) + int64(lo)*edgeBytes
	_ = g.region.AdviseRange(a, off, int64(hi-lo)*edgeBytes)
}

// TopK returns the indices of the k highest-ranked nodes in
// descending rank order (simple selection; k is small in practice).
func TopK(rank []float64, k int) []int64 {
	if k > len(rank) {
		k = len(rank)
	}
	taken := make([]bool, len(rank))
	out := make([]int64, 0, k)
	for len(out) < k {
		best, bi := math.Inf(-1), -1
		for i, r := range rank {
			if !taken[i] && r > best {
				best, bi = r, i
			}
		}
		taken[bi] = true
		out = append(out, int64(bi))
	}
	return out
}

// ConnectedComponents labels weakly connected components by iterative
// label propagation over edge scans (both directions per edge),
// converging when a full scan changes nothing — the second algorithm
// evaluated by the MMap prior work. Returns component labels (the
// minimum node id in each component) and the number of scans used.
func ConnectedComponents(g *Graph) ([]int64, int, error) {
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	label := make([]int64, g.Nodes)
	for i := range label {
		label[i] = int64(i)
	}
	scans := 0
	for {
		scans++
		changed := false
		for i := int64(0); i < g.EdgeCount(); i++ {
			src, dst := g.Edge(i)
			switch {
			case label[src] < label[dst]:
				label[dst] = label[src]
				changed = true
			case label[dst] < label[src]:
				label[src] = label[dst]
				changed = true
			}
		}
		if !changed {
			return label, scans, nil
		}
		if scans > int(g.Nodes)+1 {
			return nil, scans, fmt.Errorf("graph: component propagation did not converge")
		}
	}
}

// ComponentCount returns the number of distinct labels.
func ComponentCount(labels []int64) int {
	seen := make(map[int64]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
