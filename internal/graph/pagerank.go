package graph

import (
	"fmt"
	"math"
)

// PageRankOptions configures the power iteration.
type PageRankOptions struct {
	// Damping is the teleport factor (default 0.85).
	Damping float64
	// MaxIterations bounds power iterations (default 100).
	MaxIterations int
	// Tol stops when the L1 change between iterations falls below it
	// (default 1e-9).
	Tol float64
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping <= 0 || o.Damping >= 1 {
		o.Damping = 0.85
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// PageRank computes node ranks by power iteration over the edge list.
// Each iteration is one sequential scan of the (possibly mapped)
// edges — the access pattern that made the MMap work [3] viable on a
// PC, and the same pattern M3's ML workloads exhibit.
func PageRank(g *Graph, opts PageRankOptions) ([]float64, int, error) {
	o := opts.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	n := g.Nodes

	// Out-degrees: one scan.
	outDeg := make([]int64, n)
	for i := int64(0); i < g.EdgeCount(); i++ {
		src, _ := g.Edge(i)
		outDeg[src]++
	}

	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}

	for iter := 1; iter <= o.MaxIterations; iter++ {
		base := (1 - o.Damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		// Dangling mass is redistributed uniformly (standard fix).
		var dangling float64
		for v := int64(0); v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		danglingShare := o.Damping * dangling / float64(n)
		for i := range next {
			next[i] += danglingShare
		}
		// One sequential edge scan.
		for i := int64(0); i < g.EdgeCount(); i++ {
			src, dst := g.Edge(i)
			next[dst] += o.Damping * rank[src] / float64(outDeg[src])
		}
		// L1 convergence check.
		var delta float64
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < o.Tol {
			return rank, iter, nil
		}
	}
	return rank, o.MaxIterations, nil
}

// TopK returns the indices of the k highest-ranked nodes in
// descending rank order (simple selection; k is small in practice).
func TopK(rank []float64, k int) []int64 {
	if k > len(rank) {
		k = len(rank)
	}
	taken := make([]bool, len(rank))
	out := make([]int64, 0, k)
	for len(out) < k {
		best, bi := math.Inf(-1), -1
		for i, r := range rank {
			if !taken[i] && r > best {
				best, bi = r, i
			}
		}
		taken[bi] = true
		out = append(out, int64(bi))
	}
	return out
}

// ConnectedComponents labels weakly connected components by iterative
// label propagation over edge scans (both directions per edge),
// converging when a full scan changes nothing — the second algorithm
// evaluated by the MMap prior work. Returns component labels (the
// minimum node id in each component) and the number of scans used.
func ConnectedComponents(g *Graph) ([]int64, int, error) {
	if err := g.Validate(); err != nil {
		return nil, 0, err
	}
	label := make([]int64, g.Nodes)
	for i := range label {
		label[i] = int64(i)
	}
	scans := 0
	for {
		scans++
		changed := false
		for i := int64(0); i < g.EdgeCount(); i++ {
			src, dst := g.Edge(i)
			switch {
			case label[src] < label[dst]:
				label[dst] = label[src]
				changed = true
			case label[dst] < label[src]:
				label[src] = label[dst]
				changed = true
			}
		}
		if !changed {
			return label, scans, nil
		}
		if scans > int(g.Nodes)+1 {
			return nil, scans, fmt.Errorf("graph: component propagation did not converge")
		}
	}
}

// ComponentCount returns the number of distinct labels.
func ComponentCount(labels []int64) int {
	seen := make(map[int64]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
