// Package mat provides a dense row-major matrix view over a
// store.Store. It is the data structure the paper's Table 1 sketches:
// construct it over a heap slice and you have "Mat data;", construct
// it over a memory-mapped region and the same algorithm code runs
// out-of-core.
//
// Row-granular accessors (Row, ForEachRow, MulVec, ...) route their
// accesses through the store's Touch hooks so the paged backend can
// account faults; element accessors (At, Set) are unaccounted fast
// paths for small matrices such as model parameters.
package mat

import (
	"context"
	"fmt"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/store"
)

// Dense is a row-major matrix view over a store.
type Dense struct {
	s          store.Store
	data       []float64
	rows, cols int
	stride     int
	off        int // element offset of row 0 within the store
	// workersHint is the default chunked-execution pool size for scans
	// that do not choose one themselves; engines stamp it on the
	// matrices they open so trainers inherit the engine configuration
	// automatically. 0 means "no preference" (NumCPU at the exec layer).
	workersHint int
	// fused, when non-nil, marks this matrix as a virtual transformed
	// view (NewFused): rows/cols describe the transformed geometry
	// while reads go to the source store through a row-kernel chain.
	fused *fusedView
}

// fusedView carries the source geometry and kernel factory of a
// virtual transformed matrix.
type fusedView struct {
	srcCols, srcStride, srcOff int
	newKernel                  func() exec.RowKernel
}

// NewFused returns a read-only virtual view over src: it reports
// src's row count and outCols columns, and every scan reads source
// rows and pushes them through a kernel chain on the fly — operator
// fusion, so a transformed matrix is consumed at disk bandwidth with
// no materialized intermediate. newKernel is an alloc-style factory
// invoked once per scan worker (or once per sequential scan); the
// kernel writes each transformed row into its dst argument (outCols
// wide) and must not write through the source row.
//
// Blocked scans (Scan/ScanCtx and everything built on them:
// ForEachRowParallel, exec.ReduceRows/ReduceRowBlocks/ForEachRow) and
// the sequential row reads (ForEachRow, Row, At, MulVec, MulTransVec,
// Clone, Equal) all see transformed data; blocked reductions over a
// fused view are bit-identical to the same reduction over the
// materialized transform output. Fusing over an already-fused src
// composes the chains. Writes and raw-aliasing accessors (Set,
// SetRow, RawRow, RowWindow, Fill, Contiguous) are invalid on fused
// views; materialize first.
func NewFused(src *Dense, outCols int, newKernel func() exec.RowKernel) *Dense {
	checkDims(src.rows, outCols)
	if newKernel == nil {
		panic("mat: NewFused with nil kernel factory")
	}
	fv := &fusedView{
		srcCols:   src.cols,
		srcStride: src.stride,
		srcOff:    src.off,
		newKernel: newKernel,
	}
	if inner := src.fused; inner != nil {
		// Fusing over a fused view: compose the chains so the new view
		// still reads the original store exactly once per row.
		fv.srcCols = inner.srcCols
		fv.srcStride = inner.srcStride
		fv.srcOff = inner.srcOff
		innerCols := src.cols
		fv.newKernel = func() exec.RowKernel {
			ik := inner.newKernel()
			ibuf := make([]float64, innerCols)
			ok := newKernel()
			return func(dst, row []float64) []float64 {
				return ok(dst, ik(ibuf, row))
			}
		}
	}
	return &Dense{
		s: src.s, data: src.data,
		rows: src.rows, cols: outCols, stride: outCols,
		workersHint: src.workersHint,
		fused:       fv,
	}
}

// IsFused reports whether the matrix is a virtual transformed view.
func (d *Dense) IsFused() bool { return d.fused != nil }

// fusedRow applies a fresh kernel chain to source row i — the slow
// (allocating) random-access path of a fused view; scans use
// per-worker kernels instead.
func (d *Dense) fusedRow(i int) (row []float64, stall float64) {
	fv := d.fused
	start := fv.srcOff + i*fv.srcStride
	stall = d.s.Touch(start, fv.srcCols)
	return fv.newKernel()(make([]float64, d.cols), d.data[start:start+fv.srcCols]), stall
}

// noFused panics when op is unsupported on a virtual transformed view.
func (d *Dense) noFused(op string) {
	if d.fused != nil {
		panic("mat: " + op + " on a fused view; materialize the transform first")
	}
}

// NewDense allocates a rows×cols heap-backed matrix.
func NewDense(rows, cols int) *Dense {
	checkDims(rows, cols)
	s := store.NewHeap(rows * cols)
	return &Dense{s: s, data: s.Data(), rows: rows, cols: cols, stride: cols}
}

// NewDenseFrom wraps an existing slice (length >= rows*cols) as a
// matrix without copying — the "M3" column of Table 1, where the
// slice came from mmapAlloc.
func NewDenseFrom(data []float64, rows, cols int) *Dense {
	checkDims(rows, cols)
	if len(data) < rows*cols {
		panic(fmt.Sprintf("mat: slice of %d elements cannot hold %dx%d", len(data), rows, cols))
	}
	s := store.FromSlice(data)
	return &Dense{s: s, data: s.Data(), rows: rows, cols: cols, stride: cols}
}

// NewDenseStore builds a matrix view over an arbitrary store backend.
func NewDenseStore(s store.Store, rows, cols int) (*Dense, error) {
	checkDims(rows, cols)
	if s.Len() < rows*cols {
		return nil, fmt.Errorf("mat: store of %d elements cannot hold %dx%d", s.Len(), rows, cols)
	}
	return &Dense{s: s, data: s.Data(), rows: rows, cols: cols, stride: cols}, nil
}

func checkDims(rows, cols int) {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: non-positive dimensions %dx%d", rows, cols))
	}
}

// Dims returns (rows, cols).
func (d *Dense) Dims() (rows, cols int) { return d.rows, d.cols }

// Rows returns the row count.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the column count.
func (d *Dense) Cols() int { return d.cols }

// Store returns the backing store.
func (d *Dense) Store() store.Store { return d.s }

// SizeBytes returns the matrix payload size in bytes.
func (d *Dense) SizeBytes() int64 { return int64(d.rows) * int64(d.cols) * 8 }

// At returns element (i, j). No paging accounting (fast path); on a
// fused view the whole source row is transformed per call (slow path).
func (d *Dense) At(i, j int) float64 {
	d.check(i, j)
	if d.fused != nil {
		row, _ := d.fusedRow(i)
		return row[j]
	}
	return d.data[d.off+i*d.stride+j]
}

// Set stores v at element (i, j). No paging accounting (fast path).
func (d *Dense) Set(i, j int, v float64) {
	d.noFused("Set")
	d.check(i, j)
	d.data[d.off+i*d.stride+j] = v
}

func (d *Dense) check(i, j int) {
	if i < 0 || i >= d.rows || j < 0 || j >= d.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of %dx%d", i, j, d.rows, d.cols))
	}
}

// Row returns row i as a slice aliasing the backing store, accounting
// the access as a read. The returned stall is the simulated seconds
// spent paging (zero for real backends).
func (d *Dense) Row(i int) (row []float64, stall float64) {
	if i < 0 || i >= d.rows {
		panic(fmt.Sprintf("mat: row %d out of %d", i, d.rows))
	}
	if d.fused != nil {
		return d.fusedRow(i)
	}
	start := d.off + i*d.stride
	stall = d.s.Touch(start, d.cols)
	return d.data[start : start+d.cols], stall
}

// RawRow returns row i without touching the paging accounting. Use it
// only for matrices known to be resident (e.g. model parameters).
func (d *Dense) RawRow(i int) []float64 {
	d.noFused("RawRow")
	if i < 0 || i >= d.rows {
		panic(fmt.Sprintf("mat: row %d out of %d", i, d.rows))
	}
	start := d.off + i*d.stride
	return d.data[start : start+d.cols]
}

// SetRow copies src into row i, accounting a write.
func (d *Dense) SetRow(i int, src []float64) (stall float64) {
	d.noFused("SetRow")
	if len(src) != d.cols {
		panic(fmt.Sprintf("mat: SetRow of %d values into %d columns", len(src), d.cols))
	}
	start := d.off + i*d.stride
	stall = d.s.TouchWrite(start, d.cols)
	copy(d.data[start:start+d.cols], src)
	return stall
}

// Contiguous returns the matrix's backing elements as one row-major
// slice when rows are stored back to back (stride == cols); ok is
// false for strided views, whose rows are not adjacent in memory.
func (d *Dense) Contiguous() (data []float64, ok bool) {
	if d.fused != nil || d.stride != d.cols {
		return nil, false
	}
	return d.data[d.off : d.off+d.rows*d.cols], true
}

// RowWindow returns a view of rows [i0, i1) sharing the same backing
// store; no data is copied.
func (d *Dense) RowWindow(i0, i1 int) *Dense {
	d.noFused("RowWindow")
	if i0 < 0 || i1 > d.rows || i0 >= i1 {
		panic(fmt.Sprintf("mat: window [%d,%d) out of %d rows", i0, i1, d.rows))
	}
	return &Dense{
		s: d.s, data: d.data,
		rows: i1 - i0, cols: d.cols,
		stride: d.stride,
		off:    d.off + i0*d.stride,
		// Views inherit the engine's worker preference.
		workersHint: d.workersHint,
	}
}

// SetWorkersHint records the default worker-pool size scans over this
// matrix use when the caller does not pick one (workers <= 0). Engines
// stamp their Config.Workers here on Open and Alloc, which is how
// engine-backed matrices reach every trainer with the engine's
// parallelism without any per-call plumbing. n <= 0 clears the hint.
func (d *Dense) SetWorkersHint(n int) {
	if n < 0 {
		n = 0
	}
	d.workersHint = n
}

// WorkersHint returns the stamped default pool size (0 = none).
func (d *Dense) WorkersHint() int { return d.workersHint }

// ForEachRow invokes fn for every row in storage order — the
// sequential scan at the heart of each training iteration. It returns
// the total simulated stall.
func (d *Dense) ForEachRow(fn func(i int, row []float64)) (stall float64) {
	if fv := d.fused; fv != nil {
		// One kernel chain and one row buffer serve the whole
		// sequential scan.
		kern := fv.newKernel()
		buf := make([]float64, d.cols)
		for i := 0; i < d.rows; i++ {
			start := fv.srcOff + i*fv.srcStride
			stall += d.s.Touch(start, fv.srcCols)
			fn(i, kern(buf, d.data[start:start+fv.srcCols]))
		}
		return stall
	}
	for i := 0; i < d.rows; i++ {
		start := d.off + i*d.stride
		stall += d.s.Touch(start, d.cols)
		fn(i, d.data[start:start+d.cols])
	}
	return stall
}

// Scan returns a chunked-execution descriptor over d's rows for the
// shared parallel layer (internal/exec): workers <= 0 falls back to
// the matrix's workers hint (stamped by the owning engine), and then
// to runtime.NumCPU(). The partition depends only on the matrix shape —
// never the worker count — so reductions built on it are
// deterministic.
func (d *Dense) Scan(workers int) exec.RowScan {
	if workers <= 0 {
		workers = d.workersHint
	}
	if fv := d.fused; fv != nil {
		// Fused view: the scan reads source rows and applies the
		// per-worker kernel chain; the partition follows the
		// transformed geometry (see exec.RowScan).
		return exec.RowScan{
			Store:     d.s,
			Off:       fv.srcOff,
			Rows:      d.rows,
			Cols:      d.cols,
			Stride:    fv.srcStride,
			Workers:   workers,
			Transform: fv.newKernel,
			SrcCols:   fv.srcCols,
		}
	}
	return exec.RowScan{
		Store:   d.s,
		Off:     d.off,
		Rows:    d.rows,
		Cols:    d.cols,
		Stride:  d.stride,
		Workers: workers,
	}
}

// ScanCtx is Scan with a cancellation context attached: the scan stops
// within one block of ctx being cancelled and reports ctx.Err().
func (d *Dense) ScanCtx(ctx context.Context, workers int) exec.RowScan {
	s := d.Scan(workers)
	s.Ctx = ctx
	return s
}

// ForEachRowParallel invokes fn for every row using the shared block
// scheduler: page-sized blocks, bulk Touch accounting, WillNeed
// prefetch on mapped backings. fn runs concurrently across blocks and
// must write only to per-row disjoint locations. Row order within a
// block is ascending; blocks interleave. It returns the total
// simulated stall.
func (d *Dense) ForEachRowParallel(workers int, fn func(i int, row []float64)) (stall float64) {
	stall, _ = exec.ForEachRow(d.Scan(workers), fn) // nil ctx: never cancels
	return stall
}

// MulVecParallel computes y = A·x over the shared parallel layer,
// running the blas.Gemv row-block kernel on each block. Each y[i] is
// written by exactly one worker, so the result is bit-identical to
// MulVec — per-row dot products do not reassociate. It returns the
// simulated stall.
func (d *Dense) MulVecParallel(y, x []float64, workers int) (stall float64) {
	if len(x) != d.cols || len(y) != d.rows {
		panic(fmt.Sprintf("mat: MulVecParallel shapes y[%d] = A(%dx%d)·x[%d]", len(y), d.rows, d.cols, len(x)))
	}
	_, stall, _ = exec.ReduceRowBlocks(d.Scan(workers).Named("mulvec"),
		func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int, block []float64, stride int) {
			blas.Gemv(hi-lo, d.cols, 1, block, stride, x, 0, y[lo:hi])
		},
		func(_, _ struct{}) {})
	return stall
}

// MulVec computes y = A·x, scanning A once sequentially.
// It returns the simulated stall.
func (d *Dense) MulVec(y, x []float64) (stall float64) {
	if len(x) != d.cols || len(y) != d.rows {
		panic(fmt.Sprintf("mat: MulVec shapes y[%d] = A(%dx%d)·x[%d]", len(y), d.rows, d.cols, len(x)))
	}
	return d.ForEachRow(func(i int, row []float64) {
		y[i] = blas.Dot(row, x)
	})
}

// MulTransVec computes y = Aᵀ·x, still scanning A in row order so the
// access pattern remains sequential. It returns the simulated stall.
func (d *Dense) MulTransVec(y, x []float64) (stall float64) {
	if len(x) != d.rows || len(y) != d.cols {
		panic(fmt.Sprintf("mat: MulTransVec shapes y[%d] = A(%dx%d)ᵀ·x[%d]", len(y), d.rows, d.cols, len(x)))
	}
	blas.Fill(y, 0)
	return d.ForEachRow(func(i int, row []float64) {
		blas.Axpy(x[i], row, y)
	})
}

// ColTo copies column j into dst (length rows), accounting one
// element read per row. On a row-major mapped matrix this is the
// pathological access pattern: every element lives on a different
// page region, so out-of-core column traversals thrash where row
// scans stream — the layout lesson behind M3's "store in scan order".
func (d *Dense) ColTo(j int, dst []float64) (stall float64) {
	d.noFused("ColTo")
	if j < 0 || j >= d.cols {
		panic(fmt.Sprintf("mat: column %d out of %d", j, d.cols))
	}
	if len(dst) != d.rows {
		panic(fmt.Sprintf("mat: ColTo dst length %d, want %d", len(dst), d.rows))
	}
	for i := 0; i < d.rows; i++ {
		idx := d.off + i*d.stride + j
		stall += d.s.Touch(idx, 1)
		dst[i] = d.data[idx]
	}
	return stall
}

// Fill sets every element to v, accounting writes row by row.
func (d *Dense) Fill(v float64) (stall float64) {
	d.noFused("Fill")
	for i := 0; i < d.rows; i++ {
		start := d.off + i*d.stride
		stall += d.s.TouchWrite(start, d.cols)
		blas.Fill(d.data[start:start+d.cols], v)
	}
	return stall
}

// CopyFrom copies src (same shape) into d, accounting reads on src
// and writes on d.
func (d *Dense) CopyFrom(src *Dense) (stall float64) {
	d.noFused("CopyFrom")
	if src.rows != d.rows || src.cols != d.cols {
		panic(fmt.Sprintf("mat: CopyFrom %dx%d into %dx%d", src.rows, src.cols, d.rows, d.cols))
	}
	for i := 0; i < d.rows; i++ {
		srow, s1 := src.Row(i)
		s2 := d.SetRow(i, srow)
		stall += s1 + s2
	}
	return stall
}

// Clone returns a heap-backed deep copy; cloning a fused view
// materializes the transform.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.rows, d.cols)
	if d.fused != nil {
		d.ForEachRow(func(i int, row []float64) { out.SetRow(i, row) })
		return out
	}
	out.CopyFrom(d)
	return out
}

// Equal reports whether two matrices have identical shape and
// elements (exact comparison).
func (d *Dense) Equal(other *Dense) bool {
	if d.rows != other.rows || d.cols != other.cols {
		return false
	}
	if d.fused != nil || other.fused != nil {
		for i := 0; i < d.rows; i++ {
			a, _ := d.Row(i)
			b, _ := other.Row(i)
			for j := range a {
				//m3vet:allow floateq -- Equal is the exact bit-parity comparison API
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < d.rows; i++ {
		a := d.RawRow(i)
		b := other.RawRow(i)
		for j := range a {
			//m3vet:allow floateq -- Equal is the exact bit-parity comparison API
			if a[j] != b[j] {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large ones are
// summarized.
func (d *Dense) String() string {
	if d.rows*d.cols > 64 {
		return fmt.Sprintf("Dense(%dx%d, %d bytes)", d.rows, d.cols, d.SizeBytes())
	}
	s := fmt.Sprintf("Dense(%dx%d)[", d.rows, d.cols)
	for i := 0; i < d.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < d.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%g", d.At(i, j))
		}
	}
	return s + "]"
}
