package mat

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"m3/internal/exec"
	"m3/internal/store"
	"m3/internal/vm"
)

func TestNewDenseAtSet(t *testing.T) {
	d := NewDense(3, 4)
	r, c := d.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
	d.Set(1, 2, 7.5)
	if got := d.At(1, 2); got != 7.5 {
		t.Errorf("At = %v", got)
	}
	if d.SizeBytes() != 96 {
		t.Errorf("SizeBytes = %d", d.SizeBytes())
	}
}

func TestNewDenseFromAliases(t *testing.T) {
	backing := make([]float64, 6)
	d := NewDenseFrom(backing, 2, 3)
	d.Set(1, 1, 5)
	if backing[4] != 5 {
		t.Error("NewDenseFrom copied instead of aliasing")
	}
}

func TestNewDenseFromTooShortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDenseFrom(make([]float64, 5), 2, 3)
}

func TestNewDensePanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v: expected panic", dims)
				}
			}()
			NewDense(dims[0], dims[1])
		}()
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	d := NewDense(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d): expected panic", idx[0], idx[1])
				}
			}()
			d.At(idx[0], idx[1])
		}()
	}
}

func TestNewDenseStoreValidates(t *testing.T) {
	s := store.NewHeap(5)
	if _, err := NewDenseStore(s, 2, 3); err == nil {
		t.Error("expected error for short store")
	}
	d, err := NewDenseStore(store.NewHeap(6), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Store() == nil {
		t.Error("Store() nil")
	}
}

func fillSeq(d *Dense) {
	r, c := d.Dims()
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			d.Set(i, j, float64(i*c+j))
		}
	}
}

func TestRowAndRawRow(t *testing.T) {
	d := NewDense(3, 2)
	fillSeq(d)
	row, stall := d.Row(1)
	if stall != 0 {
		t.Errorf("heap stall = %v", stall)
	}
	if row[0] != 2 || row[1] != 3 {
		t.Errorf("Row(1) = %v", row)
	}
	row[0] = 42 // aliases
	if d.At(1, 0) != 42 {
		t.Error("Row does not alias storage")
	}
	if raw := d.RawRow(2); raw[1] != 5 {
		t.Errorf("RawRow(2) = %v", raw)
	}
}

func TestSetRow(t *testing.T) {
	d := NewDense(2, 3)
	d.SetRow(1, []float64{7, 8, 9})
	if d.At(1, 2) != 9 {
		t.Error("SetRow failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong width")
		}
	}()
	d.SetRow(0, []float64{1})
}

func TestRowWindow(t *testing.T) {
	d := NewDense(4, 2)
	fillSeq(d)
	w := d.RowWindow(1, 3)
	if w.Rows() != 2 || w.Cols() != 2 {
		t.Fatalf("window dims %dx%d", w.Rows(), w.Cols())
	}
	if w.At(0, 0) != 2 || w.At(1, 1) != 5 {
		t.Errorf("window content wrong: %v %v", w.At(0, 0), w.At(1, 1))
	}
	w.Set(0, 0, 99)
	if d.At(1, 0) != 99 {
		t.Error("window does not alias parent")
	}
	// Window of a window.
	w2 := w.RowWindow(1, 2)
	if w2.At(0, 0) != 4 {
		t.Errorf("nested window = %v", w2.At(0, 0))
	}
}

func TestForEachRowOrder(t *testing.T) {
	d := NewDense(5, 1)
	fillSeq(d)
	var seen []int
	d.ForEachRow(func(i int, row []float64) {
		seen = append(seen, i)
		if row[0] != float64(i) {
			t.Errorf("row %d = %v", i, row[0])
		}
	})
	for i, v := range seen {
		if v != i {
			t.Fatalf("rows visited out of order: %v", seen)
		}
	}
}

func TestMulVec(t *testing.T) {
	d := NewDense(2, 3)
	fillSeq(d) // [0 1 2; 3 4 5]
	y := make([]float64, 2)
	d.MulVec(y, []float64{1, 1, 1})
	if y[0] != 3 || y[1] != 12 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestMulTransVec(t *testing.T) {
	d := NewDense(2, 3)
	fillSeq(d)
	y := make([]float64, 3)
	d.MulTransVec(y, []float64{1, 1})
	want := []float64{3, 5, 7}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("MulTransVec = %v want %v", y, want)
		}
	}
}

func TestMulVecShapePanics(t *testing.T) {
	d := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.MulVec(make([]float64, 2), make([]float64, 2))
}

func TestFillCloneEqual(t *testing.T) {
	d := NewDense(3, 3)
	d.Fill(2.5)
	if d.At(2, 2) != 2.5 {
		t.Error("Fill failed")
	}
	c := d.Clone()
	if !c.Equal(d) {
		t.Error("Clone not equal")
	}
	c.Set(0, 0, -1)
	if c.Equal(d) {
		t.Error("Equal missed difference")
	}
	if d.Equal(NewDense(3, 2)) {
		t.Error("Equal ignored shape")
	}
}

func TestString(t *testing.T) {
	d := NewDense(2, 2)
	fillSeq(d)
	if got := d.String(); got != "Dense(2x2)[0 1; 2 3]" {
		t.Errorf("String = %q", got)
	}
	big := NewDense(100, 100)
	if !strings.Contains(big.String(), "100x100") {
		t.Errorf("big String = %q", big.String())
	}
}

func TestDenseOverMappedStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mat.bin")
	ms, err := store.CreateMapped(path, 12)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDenseStore(ms, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	fillSeq(d)
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := store.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	d2, err := NewDenseStore(ro, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The mapped matrix must be indistinguishable from the heap one.
	y := make([]float64, 3)
	d2.MulVec(y, []float64{1, 0, 0, 0})
	if y[0] != 0 || y[1] != 4 || y[2] != 8 {
		t.Errorf("mapped MulVec = %v", y)
	}
}

func TestDenseOverPagedStoreAccountsStalls(t *testing.T) {
	data := make([]float64, 4096) // 8 pages at 4 KiB
	ps, err := store.NewPaged(data, store.PagedConfig{VM: vm.Config{
		PageSize:          4096,
		CacheBytes:        2 * 4096, // 2-page cache → thrash
		Disk:              vm.DiskModel{BandwidthBytes: 1e6},
		MinReadAheadPages: 1, MaxReadAheadPages: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDenseStore(ps, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 64)
	x := make([]float64, 64)
	stall1 := d.MulVec(y, x)
	stall2 := d.MulVec(y, x)
	if stall1 <= 0 || stall2 <= 0 {
		t.Errorf("paged scans did not stall: %v, %v", stall1, stall2)
	}
	if ps.Stats().MajorFaults == 0 {
		t.Error("no faults recorded")
	}
}

func TestColTo(t *testing.T) {
	d := NewDense(3, 2)
	fillSeq(d) // [0 1; 2 3; 4 5]
	col := make([]float64, 3)
	d.ColTo(1, col)
	if col[0] != 1 || col[1] != 3 || col[2] != 5 {
		t.Errorf("ColTo = %v", col)
	}
	for _, bad := range []func(){
		func() { d.ColTo(2, col) },
		func() { d.ColTo(0, make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestColumnTraversalThrashesPagedStore(t *testing.T) {
	// Row-major matrix, tiny page cache: a full column traversal
	// must fault far more than a row scan of the same element count.
	data := make([]float64, 64*64)
	newPaged := func() *store.Paged {
		ps, err := store.NewPaged(data, store.PagedConfig{VM: vm.Config{
			PageSize:          512, // 64 elements per page = one row
			CacheBytes:        4 * 512,
			Disk:              vm.DiskModel{BandwidthBytes: 1e6},
			MinReadAheadPages: 1, MaxReadAheadPages: 1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}

	psRow := newPaged()
	xRow, err := NewDenseStore(psRow, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	xRow.Row(0) // 64 elements along a row: 1 page
	rowFaults := psRow.Stats().MajorFaults

	psCol := newPaged()
	xCol, err := NewDenseStore(psCol, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 64)
	xCol.ColTo(0, dst) // 64 elements down a column: 64 pages
	colFaults := psCol.Stats().MajorFaults

	if colFaults < 16*rowFaults {
		t.Errorf("column faults (%d) not dramatically worse than row faults (%d)", colFaults, rowFaults)
	}
}

// Property: MulVec over a paged store returns the same numbers as over
// the heap — the M3 transparency invariant.
func TestPropertyBackendTransparency(t *testing.T) {
	f := func(seed int64) bool {
		rng := newRand(seed)
		rows := 1 + int(abs(seed)%16)
		cols := 1 + int(abs(seed/7)%16)
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = rng.next()
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.next()
		}

		heap := NewDenseFrom(data, rows, cols)
		yh := make([]float64, rows)
		heap.MulVec(yh, x)

		cp := make([]float64, len(data))
		copy(cp, data)
		ps, err := store.NewPaged(cp, store.PagedConfig{VM: vm.Config{
			PageSize: 64, CacheBytes: 128,
			Disk: vm.DiskModel{BandwidthBytes: 1e6},
		}})
		if err != nil {
			return false
		}
		paged, err := NewDenseStore(ps, rows, cols)
		if err != nil {
			return false
		}
		yp := make([]float64, rows)
		paged.MulVec(yp, x)

		for i := range yh {
			if math.Abs(yh[i]-yp[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// tiny deterministic PRNG for property tests
type xorshift struct{ s uint64 }

func newRand(seed int64) *xorshift {
	u := uint64(seed)
	if u == 0 {
		u = 0x9e3779b97f4a7c15
	}
	return &xorshift{s: u}
}

func (x *xorshift) next() float64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return float64(x.s%2000)/1000 - 1
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// fusedPanics asserts op panics (fused views reject writes and
// raw-aliasing accessors).
func fusedPanics(t *testing.T, name string, op func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s on a fused view did not panic", name)
		}
	}()
	op()
}

// TestNewFusedView: the virtual transformed view agrees with the
// materialized transform on every read path (At, Row, ForEachRow,
// Clone, Equal), composes when fused over a fused view, and rejects
// writes.
func TestNewFusedView(t *testing.T) {
	const rows, dIn, dOut = 37, 5, 4
	src := NewDense(rows, dIn)
	for i := 0; i < rows; i++ {
		for j := 0; j < dIn; j++ {
			src.Set(i, j, float64(i)+float64(j)/8)
		}
	}
	kernel := func() exec.RowKernel {
		return func(dst, row []float64) []float64 {
			for j := 0; j < dOut; j++ {
				dst[j] = row[j] - row[j+1]
			}
			return dst
		}
	}
	f := NewFused(src, dOut, kernel)
	if !f.IsFused() || src.IsFused() {
		t.Fatal("IsFused: view false or source true")
	}
	if r, c := f.Dims(); r != rows || c != dOut {
		t.Fatalf("fused dims %dx%d, want %dx%d", r, c, rows, dOut)
	}

	// Materialized reference.
	want := NewDense(rows, dOut)
	k := kernel()
	buf := make([]float64, dOut)
	for i := 0; i < rows; i++ {
		row, _ := src.Row(i)
		want.SetRow(i, k(buf, row))
	}

	for i := 0; i < rows; i++ {
		for j := 0; j < dOut; j++ {
			if got := f.At(i, j); got != want.At(i, j) {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, want.At(i, j))
			}
		}
	}
	row3, _ := f.Row(3)
	wrow3, _ := want.Row(3)
	for j := range row3 {
		if row3[j] != wrow3[j] {
			t.Fatalf("Row(3)[%d] = %v, want %v", j, row3[j], wrow3[j])
		}
	}
	next := 0
	f.ForEachRow(func(i int, row []float64) {
		if i != next {
			t.Fatalf("ForEachRow out of order: %d, want %d", i, next)
		}
		next++
		wr, _ := want.Row(i)
		for j := range row {
			if row[j] != wr[j] {
				t.Fatalf("ForEachRow(%d)[%d] = %v, want %v", i, j, row[j], wr[j])
			}
		}
	})
	if next != rows {
		t.Fatalf("ForEachRow visited %d rows, want %d", next, rows)
	}

	clone := f.Clone()
	if clone.IsFused() {
		t.Error("Clone of a fused view is still fused")
	}
	if !clone.Equal(want) || !f.Equal(want) || !f.Equal(clone) {
		t.Error("fused view, clone and materialized reference disagree")
	}

	// Nested fusion composes: a second stage over the fused view.
	f2 := NewFused(f, dOut-1, func() exec.RowKernel {
		return func(dst, row []float64) []float64 {
			for j := 0; j < dOut-1; j++ {
				dst[j] = 10 * row[j+1]
			}
			return dst
		}
	})
	for i := 0; i < rows; i++ {
		for j := 0; j < dOut-1; j++ {
			if got, wantv := f2.At(i, j), 10*want.At(i, j+1); got != wantv {
				t.Fatalf("nested At(%d,%d) = %v, want %v", i, j, got, wantv)
			}
		}
	}

	fusedPanics(t, "Set", func() { f.Set(0, 0, 1) })
	fusedPanics(t, "SetRow", func() { f.SetRow(0, make([]float64, dOut)) })
	fusedPanics(t, "RawRow", func() { f.RawRow(0) })
	fusedPanics(t, "Fill", func() { f.Fill(1) })
	if _, ok := f.Contiguous(); ok {
		t.Error("fused view claims contiguous data")
	}
}
