package exec_test

import (
	"context"
	"testing"
	"time"

	"m3/internal/exec"
	"m3/internal/mat"
	"m3/internal/obs"
)

// TestScanEmitsTraceEvents: with a tracer installed, a blocked scan
// records one named span on the control track plus one block event per
// block on the worker tracks, and every opened span closes.
func TestScanEmitsTraceEvents(t *testing.T) {
	const rows, cols = 4096, 32
	_, _, x := newTestPaged(t, rows, cols)
	scan := x.Scan(4).Named("testscan")
	blocks := len(scan.Blocks())
	workers := scan.EffectiveWorkers()

	tr := obs.StartTrace()
	defer obs.StopTrace()
	_, _, err := exec.ReduceRows(scan,
		func() *float64 { return new(float64) },
		func(s *float64, i int, row []float64) { *s += row[0] },
		func(dst, src *float64) { *dst += *src })
	if err != nil {
		t.Fatal(err)
	}
	if open := tr.OpenSpans(); open != 0 {
		t.Errorf("OpenSpans after scan = %d, want 0", open)
	}

	var scanSpans, blockEvents int
	coveredRows := 0
	for _, e := range tr.Events() {
		switch {
		case e.Cat == "scan" && e.Name == "testscan":
			scanSpans++
			if e.Tid != obs.ControlTid {
				t.Errorf("scan span on tid %d, want control %d", e.Tid, obs.ControlTid)
			}
			if e.Args["rows"] != rows || e.Args["blocks"] != blocks {
				t.Errorf("scan args = %v, want rows %d blocks %d", e.Args, rows, blocks)
			}
		case e.Cat == "block" && e.Name == "testscan":
			blockEvents++
			w := int(e.Tid) - 1
			if w < 0 || w >= workers {
				t.Errorf("block event on tid %d, want worker tracks [1, %d]", e.Tid, workers)
			}
			lo, hi := e.Args["lo"].(int), e.Args["hi"].(int)
			coveredRows += hi - lo
		}
	}
	if scanSpans != 1 {
		t.Errorf("scan spans = %d, want 1", scanSpans)
	}
	if blockEvents != blocks {
		t.Errorf("block events = %d, want %d", blockEvents, blocks)
	}
	if coveredRows != rows {
		t.Errorf("block events cover %d rows, want %d", coveredRows, rows)
	}
}

// TestScanTraceDefaultName: an unnamed scan still traces, under the
// generic "scan" label.
func TestScanTraceDefaultName(t *testing.T) {
	x := mat.NewDense(64, 8)
	tr := obs.StartTrace()
	defer obs.StopTrace()
	if _, err := exec.ForEachRow(x.Scan(2), func(i int, row []float64) {}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range tr.Events() {
		if e.Cat == "scan" && e.Name == "scan" {
			found = true
		}
	}
	if !found {
		t.Error("unnamed scan produced no 'scan' span")
	}
}

// TestScanTraceClosedOnCancellation: a cancelled scan must still close
// its span (recording the error) — no dangling open spans.
func TestScanTraceClosedOnCancellation(t *testing.T) {
	x := mat.NewDense(4096, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := obs.StartTrace()
	defer obs.StopTrace()
	_, _, err := exec.ReduceRows(x.ScanCtx(ctx, 4).Named("cancelled"),
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, row []float64) {},
		func(_, _ struct{}) {})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if open := tr.OpenSpans(); open != 0 {
		t.Errorf("OpenSpans after cancelled scan = %d, want 0", open)
	}
	for _, e := range tr.Events() {
		if e.Cat == "scan" && e.Name == "cancelled" {
			if e.Args["err"] == nil {
				t.Errorf("cancelled scan span has no err arg: %v", e.Args)
			}
			return
		}
	}
	t.Error("cancelled scan recorded no span")
}

// TestDisabledTracerOverhead is the CI overhead guard: the disabled
// tracing path is one atomic pointer load, so its per-check cost must
// stay in the low nanoseconds. The bound is ~100x a bare atomic load —
// far above timer noise, far below anything that would indicate a
// mutex, map lookup, or allocation sneaking onto the disabled path.
func TestDisabledTracerOverhead(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("tracer installed at test start")
	}
	const ops = 1 << 21
	best := time.Duration(1<<63 - 1)
	for trial := 0; trial < 5; trial++ {
		live := 0
		start := time.Now()
		for i := 0; i < ops; i++ {
			if obs.Current() != nil {
				live++
			}
		}
		if el := time.Since(start); el < best {
			best = el
		}
		if live != 0 {
			t.Fatalf("tracer appeared mid-measurement")
		}
	}
	perOp := best / ops
	if perOp > 150*time.Nanosecond {
		t.Errorf("disabled tracer check costs %v per op, want <= 150ns", perOp)
	}
}
