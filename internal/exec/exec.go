// Package exec is M3's shared parallel chunked-execution layer: a
// block scheduler plus worker pool that every trainer sits on.
//
// The design follows the streaming-operator shape of FDB (Bakibayev
// et al., VLDB 2012) applied to M3's substrate: the row space of a
// (possibly memory-mapped) matrix is partitioned into blocks sized to
// a whole number of pages, a map runs over blocks on a pool of workers, and
// per-block partial states are combined by an ordered reduce. Because
// the partition depends only on the data geometry — never on the
// worker count — and partials are merged in ascending block order,
// results are bit-identical run to run regardless of how many workers
// execute the map. Parallelism changes wall time, not answers.
//
// Row scans additionally fix a canonical *grouped* merge association:
// rows are cut into merge groups of GroupRows(n) rows (a function of
// the row count alone), blocks never straddle a group boundary, each
// group folds its blocks into a zero-valued group state, and the root
// folds the group states in ascending row order. The two-level shape
// is what makes the reduction shippable: a distributed worker holding
// a group-aligned row shard computes exactly the group states the
// local scan would (ReduceRowGroups), and a coordinator that refolds
// them in global row order performs literally the same sequence of
// floating-point merges as a single-process fit — K-shard results are
// bit-identical to local ones, not merely close.
//
// The layer integrates with the storage stack rather than sitting on
// top of it:
//
//   - every block's access is declared through store.Store Touch
//     accounting, so the simulated paged backend keeps exact fault
//     counts and stall seconds;
//   - when the backing store supports ranged madvise
//     (store.RangeAdviser — the real mmap backend), each worker
//     issues mmap.WillNeed for the next block before computing on the
//     current one, overlapping kernel read-ahead with compute;
//   - backends whose accounting is not safe under concurrency (trace
//     recorders) are detected via store.ConcurrentToucher and scanned
//     by a single worker — same blocks, same ordered reduce,
//     identical results;
//   - backends whose paging model keeps per-scanner read-ahead state
//     (store.StreamToucher — the simulated Paged store) hand each
//     pool worker a private stream, so parallel faulting can be
//     studied without concurrent scanners destroying one another's
//     sequential-detection state. With one worker the store's default
//     Touch path is used, keeping single-stream simulated timings
//     bit-identical to a sequential scan.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"m3/internal/mmap"
	"m3/internal/obs"
	"m3/internal/store"
)

// DefaultBlockBytes is the target block payload size. 256 KiB spans
// 64 pages at 4 KiB — large enough to amortize scheduling and touch
// accounting, small enough that a handful of blocks exist even for
// modest matrices.
const DefaultBlockBytes = 256 << 10

// Block is a half-open range [Lo, Hi) of items (rows, edges, ...).
type Block struct {
	Lo, Hi int
}

// Len returns the number of items in the block.
func (b Block) Len() int { return b.Hi - b.Lo }

// Workers resolves a worker-count knob: n <= 0 selects
// runtime.NumCPU(), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Partition splits n items of itemBytes bytes each into equal-size
// blocks (the last one keeps the remainder). The block budget is
// snapped up to a whole number of pages and then filled with whole
// items, so a block spans at least one page; block boundaries land on
// item boundaries and coincide with page boundaries only when
// itemBytes divides the budget.
// targetBlockBytes <= 0 selects DefaultBlockBytes. The
// result depends only on (n, itemBytes, targetBlockBytes) — never on
// the worker count — which is what makes downstream reductions
// deterministic under any parallelism.
func Partition(n, itemBytes, targetBlockBytes int) []Block {
	if n <= 0 {
		return nil
	}
	if itemBytes <= 0 {
		itemBytes = 8
	}
	if targetBlockBytes <= 0 {
		targetBlockBytes = DefaultBlockBytes
	}
	ps := mmap.PageSize()
	// Snap the block budget to a whole number of pages, then convert
	// to items, rounding up so a block always covers >= 1 page.
	blockBytes := (targetBlockBytes + ps - 1) / ps * ps
	itemsPerBlock := blockBytes / itemBytes
	if itemsPerBlock < 1 {
		itemsPerBlock = 1
	}
	blocks := make([]Block, 0, (n+itemsPerBlock-1)/itemsPerBlock)
	for lo := 0; lo < n; lo += itemsPerBlock {
		hi := lo + itemsPerBlock
		if hi > n {
			hi = n
		}
		blocks = append(blocks, Block{Lo: lo, Hi: hi})
	}
	return blocks
}

// Merge-group geometry. Groups bound the number of partial states a
// distributed round ships (and a coordinator buffers) at MaxRowGroups,
// while MinGroupRows keeps groups page-scale so the per-group fold
// overhead stays negligible next to the block kernels.
const (
	// MinGroupRows is the smallest canonical merge-group height.
	MinGroupRows = 256
	// MaxRowGroups bounds how many merge groups a scan produces.
	MaxRowGroups = 64
)

// GroupRows returns the canonical merge-group height for a scan of n
// rows: the smallest power of two >= MinGroupRows whose group count
// stays within MaxRowGroups. It depends only on n — never on worker
// count, block size or shard layout — so every participant in a
// distributed fit derives the same group boundaries from the global
// row count alone.
func GroupRows(n int) int {
	g := MinGroupRows
	for n > g*MaxRowGroups {
		g <<= 1
	}
	return g
}

// ctxErr reports the cancellation state of an optional context (nil
// means the scan is not cancellable).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// MapReduce runs process over every block on up to workers goroutines
// and merges the per-block partial states into a fresh root state in
// ascending block order. alloc must return a zero-valued state;
// process must not retain its state after returning; merge folds src
// into dst. The reduction order — and therefore every floating-point
// association — is independent of the worker count.
//
// ctx cancels the scan at block granularity: no new block starts after
// cancellation (blocks already in flight finish), and the returned
// error is ctx.Err(). The partial root state accompanying a non-nil
// error is incomplete and must be discarded. A nil ctx never cancels.
func MapReduce[T any](ctx context.Context, blocks []Block, workers int, alloc func() T, process func(state T, b Block), merge func(dst, src T)) (T, error) {
	return mapReduceWorker(ctx, blocks, workers,
		alloc, func(state T, _ int, b Block) { process(state, b) }, merge)
}

// mapReduceWorker is MapReduce with the pool-worker index threaded to
// process: worker w runs on exactly one goroutine at a time, so
// per-worker resources (a store.TouchStream, a CPU accumulator) can
// be indexed by w without further synchronization. The sequential
// path always reports worker 0.
func mapReduceWorker[T any](ctx context.Context, blocks []Block, workers int, alloc func() T, process func(state T, worker int, b Block), merge func(dst, src T)) (T, error) {
	out := alloc()
	if len(blocks) == 0 {
		return out, ctxErr(ctx)
	}
	workers = Workers(workers)
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers == 1 {
		// Same block structure and merge association as the parallel
		// path, so one worker and N workers agree bit for bit.
		for _, b := range blocks {
			if err := ctxErr(ctx); err != nil {
				return out, err
			}
			s := alloc()
			process(s, 0, b)
			merge(out, s)
		}
		return out, ctxErr(ctx)
	}

	type item struct {
		i int
		s T
	}
	// The in-flight window bounds live partial states at O(workers):
	// a worker takes a token before claiming a block and the reducer
	// returns it after the merge, so one slow block (a major-fault
	// stall on block 0, say) cannot let the rest of the pool race
	// ahead and pile up unmerged partials — which matters when a
	// partial is a whole vector, as in PageRank.
	window := 2 * workers
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}
	ch := make(chan item, window)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				<-tokens
				i := int(next.Add(1)) - 1
				if i >= len(blocks) || ctxErr(ctx) != nil {
					// Cancelled workers stop claiming blocks; the
					// block just taken (if any) is abandoned, which
					// leaves a gap the reducer never merges past —
					// fine, because the partial result is discarded
					// alongside the returned error.
					tokens <- struct{}{}
					return
				}
				s := alloc()
				process(s, w, blocks[i])
				ch <- item{i: i, s: s}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	// Ordered streaming reduce: merge block k only after blocks
	// 0..k-1. Progress is guaranteed: blocks are claimed in order, so
	// the lowest unmerged block is always either in pending (merged
	// immediately below) or being processed by a token-holding worker.
	pending := make(map[int]T, window)
	nextMerge := 0
	for it := range ch {
		pending[it.i] = it.s
		for {
			s, ok := pending[nextMerge]
			if !ok {
				break
			}
			delete(pending, nextMerge)
			merge(out, s)
			nextMerge++
			tokens <- struct{}{}
		}
	}
	return out, ctxErr(ctx)
}

// RowKernel is one link of a fused transform chain: it maps a source
// row into dst (sized to the transformed width) and returns the row
// the consumer sees — dst after writing it, or src unchanged for
// identity links. Kernels are created per worker through an
// alloc-style factory, so a kernel may own reusable scratch (a
// centering buffer, say) without synchronization; it must never
// write through src, which may alias a read-only mapping.
type RowKernel func(dst, src []float64) []float64

// RowScan describes a blocked scan over the rows of a row-major,
// store-backed matrix. Zero-valued knobs pick defaults: Workers <= 0
// means runtime.NumCPU(), BlockBytes <= 0 means DefaultBlockBytes.
//
// A scan with Transform set is a fused pipeline: workers read source
// rows (SrcCols wide, at Off/Stride in the store) and push each
// through a per-worker kernel chain before the consumer callback, so
// ReduceRows/ReduceRowBlocks/ForEachRow consumers observe virtual
// transformed rows of width Cols with no intermediate materialization
// beyond one per-worker row buffer. The row partition is computed
// from the transformed geometry (Rows × Cols), exactly the partition
// a scan of the materialized output matrix would use — and per-block
// partials still merge in ascending block order — so a fused
// reduction is bit-identical to transforming first and scanning the
// result.
type RowScan struct {
	// Ctx, when non-nil, cancels the scan at block granularity: no new
	// block starts after cancellation and the scan returns Ctx.Err().
	Ctx context.Context
	// Store backs the matrix; Data() must remain valid for the scan.
	Store store.Store
	// Off is the element offset of row 0 within the store.
	Off int
	// Rows and Cols give the scanned shape; Stride is the element
	// distance between row starts.
	Rows, Cols, Stride int
	// Workers caps the pool (<= 0: NumCPU). Stores that are not
	// store.ConcurrentToucher-safe are always scanned by one worker;
	// stream-capable stores (store.StreamToucher, e.g. the simulated
	// Paged backend) run fully parallel with one private stream per
	// worker.
	Workers int
	// BlockBytes overrides the target block payload size.
	BlockBytes int
	// NoPrefetch disables WillNeed advice for upcoming blocks.
	NoPrefetch bool
	// Transform, when non-nil, is the per-worker factory for the fused
	// row-kernel chain applied between the block read and the consumer
	// callback. Each pool worker instantiates the chain exactly once
	// (not per block), so kernel-owned scratch is reused across the
	// worker's whole scan. With Transform set, Cols is the transformed
	// (consumer-visible) row width and SrcCols the source width.
	Transform func() RowKernel
	// SrcCols is the width of the source rows read from the store when
	// Transform is set (<= 0 defaults to Cols, an in-place chain).
	SrcCols int
	// GroupRows overrides the canonical merge-group height (<= 0
	// derives GroupRows(Rows)). A distributed worker scanning a
	// group-aligned shard of a larger matrix sets this to the
	// coordinator's GroupRows(globalRows): the shard then partitions
	// and groups exactly as those rows do inside the global scan, so
	// its group partials are interchangeable with local ones.
	GroupRows int
	// OnBlock, when non-nil, is invoked by the processing worker after
	// each block completes (Touch accounting and the block computation
	// both done) with the pool-worker index, the block and the block's
	// simulated stall. A given worker index never runs concurrently
	// with itself, so callbacks may write to worker-indexed state
	// without locking; different workers do run concurrently. The
	// multicore bench uses this to account per-worker CPU tracks.
	OnBlock func(worker int, b Block, stall float64)
	// Name labels the scan in obs traces: the scan span and its
	// per-worker block events carry it. Empty means "scan". It is the
	// tracing generalization of OnBlock — when a process tracer is
	// installed (obs.StartTrace) every scan reports per-worker block
	// timings without the caller wiring a callback.
	Name string
}

// Named returns a copy of the scan labeled name for obs traces.
func (s RowScan) Named(name string) RowScan {
	s.Name = name
	return s
}

// Blocks returns the scan's row partition (page-budgeted, row-
// boundary blocks). Worker count does not influence it. For fused
// scans the partition is computed from the transformed width (Cols),
// matching the partition of the materialized output matrix so fused
// reductions associate identically.
//
// Blocks never straddle a merge-group boundary: each group of
// groupRows() rows is partitioned independently, so the block pattern
// restarts at every group boundary. That is what makes a shard-local
// partition equal the global partition restricted to the shard when
// the shard starts on a group boundary.
func (s RowScan) Blocks() []Block {
	gr := s.groupRows()
	if s.Rows <= gr {
		return Partition(s.Rows, s.Cols*8, s.BlockBytes)
	}
	blocks := make([]Block, 0, 2*MaxRowGroups)
	for glo := 0; glo < s.Rows; glo += gr {
		ghi := glo + gr
		if ghi > s.Rows {
			ghi = s.Rows
		}
		for _, b := range Partition(ghi-glo, s.Cols*8, s.BlockBytes) {
			blocks = append(blocks, Block{Lo: glo + b.Lo, Hi: glo + b.Hi})
		}
	}
	return blocks
}

// groupRows resolves the merge-group height: the explicit override
// for shard scans, the canonical derivation otherwise.
func (s RowScan) groupRows() int {
	if s.GroupRows > 0 {
		return s.GroupRows
	}
	return GroupRows(s.Rows)
}

// srcCols resolves the width of the rows actually read from the
// store: the transformed width unless a fused chain narrows or widens
// it via SrcCols.
func (s RowScan) srcCols() int {
	if s.Transform != nil && s.SrcCols > 0 {
		return s.SrcCols
	}
	return s.Cols
}

// EffectiveWorkers resolves the pool size this scan will actually
// run with: the Workers knob (<= 0: NumCPU), clamped to 1 for
// backends whose accounting cannot race (no store.ConcurrentToucher,
// or one reporting false), and to the block count — a pool larger
// than the partition has idle workers. The simulated Paged store is
// concurrent-safe (per-worker streams), so it is NOT clamped.
func (s RowScan) EffectiveWorkers() int {
	return s.effectiveWorkers(len(s.Blocks()))
}

// effectiveWorkers is EffectiveWorkers with the block count already
// in hand, so callers that hold the partition don't recompute it.
func (s RowScan) effectiveWorkers(nblocks int) int {
	if c, ok := s.Store.(store.ConcurrentToucher); !ok || !c.ConcurrentSafe() {
		return 1
	}
	w := Workers(s.Workers)
	if nblocks > 0 && w > nblocks {
		w = nblocks
	}
	return w
}

// blockState pairs a user partial with its accounted stall and its
// block's first row so all three reduce in block order.
type blockState[T any] struct {
	user  T
	lo    int
	stall float64
}

// GroupPartial is one canonical merge group's folded state: the rows
// [Lo, Hi) it covers and the zero-rooted fold of its blocks' partials.
// Refolding a scan's GroupPartials in ascending Lo order with the same
// merge function reproduces the ReduceRowBlocks root bit for bit —
// the seam the distributed layer ships across the network.
type GroupPartial[T any] struct {
	Lo, Hi int
	State  T
}

// ReduceRowBlocks applies fn to whole row blocks and merges per-block
// partial states in canonical grouped order — blocks fold into their
// merge group's state, groups fold into the root, both in ascending
// row order — returning the root state and the total simulated
// stall. Each block declares its access with one bulk Store.Touch
// and, on prefetch-capable stores, first advises WillNeed for the
// following block so the kernel overlaps its faults with this block's
// compute. fn receives the row range [lo, hi), the backing slice of
// those rows (starting at row lo) and the row stride, sized for
// direct use with the row-block kernels in internal/blas (Gemv,
// SumRows, ...).
//
// On a fused scan (s.Transform non-nil) fn instead receives each
// transformed row as a single-row block ([i, i+1), stride s.Cols):
// transformed rows live in a per-worker buffer and are not contiguous
// across rows, and per-row delivery in ascending order keeps every
// accumulation associating exactly as it would over the materialized
// transform output.
//
// When s.Ctx is cancelled the scan stops within one block and returns
// s.Ctx.Err(); the partial state must then be discarded.
func ReduceRowBlocks[T any](s RowScan, alloc func() T, fn func(state T, lo, hi int, block []float64, stride int), merge func(dst, src T)) (T, float64, error) {
	root := alloc()
	stall, err := reduceRowScan(s, alloc, fn, merge,
		func(_, _ int, group T) { merge(root, group) })
	return root, stall, err
}

// ReduceRowGroups is ReduceRowBlocks stopped one fold short: it
// returns the per-group partial states, in ascending row order,
// instead of folding them into a root. A distributed worker calls
// this on its shard scan (with RowScan.GroupRows set to the global
// group height) and ships the partials; the coordinator refolds all
// shards' groups in global row order and obtains the exact bits a
// local ReduceRowBlocks would have produced. On error the partials
// are withheld (nil) — an interrupted scan has incomplete groups.
func ReduceRowGroups[T any](s RowScan, alloc func() T, fn func(state T, lo, hi int, block []float64, stride int), merge func(dst, src T)) ([]GroupPartial[T], float64, error) {
	groups := make([]GroupPartial[T], 0, MaxRowGroups)
	stall, err := reduceRowScan(s, alloc, fn, merge,
		func(lo, hi int, group T) {
			groups = append(groups, GroupPartial[T]{Lo: lo, Hi: hi, State: group})
		})
	if err != nil {
		return nil, stall, err
	}
	return groups, stall, nil
}

// reduceRowScan runs the blocked scan shared by ReduceRowBlocks and
// ReduceRowGroups: per-block partials fold into zero-rooted group
// states in ascending block order, and each completed group is handed
// to emit (ascending, from the single reducing goroutine). emit is
// not called for groups left incomplete by cancellation.
func reduceRowScan[T any](s RowScan, alloc func() T, fn func(state T, lo, hi int, block []float64, stride int), merge func(dst, src T), emit func(lo, hi int, group T)) (float64, error) {
	blocks := s.Blocks()
	data := s.Store.Data()
	adviser, _ := s.Store.(store.RangeAdviser)
	prefetch := adviser != nil && !s.NoPrefetch
	workers := s.effectiveWorkers(len(blocks))
	srcCols := s.srcCols()

	// Tracing: loaded once per scan, so the disabled cost is one atomic
	// load here plus one nil check per block. With a tracer installed,
	// the scan itself is a control-track span and every block becomes a
	// complete event on its pool worker's track — the real-run mirror
	// of vm.Timeline's per-worker CPU tracks.
	tr := obs.Current()
	spanName := s.Name
	if spanName == "" {
		spanName = "scan"
	}
	var scanSpan *obs.Span
	if tr != nil {
		scanSpan = tr.Start("scan", spanName).
			SetArg("rows", s.Rows).SetArg("cols", s.Cols).
			SetArg("workers", workers).SetArg("blocks", len(blocks))
	}

	// Fused chains are instantiated once per pool worker (worker w
	// runs on exactly one goroutine at a time, so kerns[w]/rowbuf[w]
	// need no locking) and rows are handed to fn one at a time as
	// single-row blocks. Consumers accumulate per-row in ascending
	// order either way, so the fused reduction is bit-identical to
	// scanning the materialized transform output.
	var kerns []RowKernel
	var rowbuf [][]float64
	if s.Transform != nil {
		kerns = make([]RowKernel, workers)
		rowbuf = make([][]float64, workers)
	}

	// Stream-capable stores give every pool worker a private stream,
	// so concurrent block scans keep their own sequential-detection
	// state (read-ahead windows survive interleaving). Everything
	// else — and any single-worker scan — goes through the store's
	// default Touch path, which keeps one-worker simulated timings
	// bit-identical to a plain sequential scan.
	touch := func(_ int, start, n int) float64 { return s.Store.Touch(start, n) }
	if st, ok := s.Store.(store.StreamToucher); ok && workers > 1 {
		streams := make([]store.TouchStream, workers)
		for i := range streams {
			streams[i] = st.OpenStream()
		}
		touch = func(w int, start, n int) float64 { return streams[w].Touch(start, n) }
	}

	// Grouped fold bookkeeping. The merge callback below runs on a
	// single goroutine in ascending block order (mapReduceWorker's
	// contract), so plain captured state suffices: when a block from a
	// new group arrives, the finished group is emitted and a fresh
	// zero-valued group state begins.
	gr := s.groupRows()
	var group T
	groupIdx := -1
	flush := func() {
		if groupIdx < 0 {
			return
		}
		lo := groupIdx * gr
		hi := lo + gr
		if hi > s.Rows {
			hi = s.Rows
		}
		emit(lo, hi, group)
	}

	root, err := mapReduceWorker(s.Ctx, blocks, workers,
		func() *blockState[T] { return &blockState[T]{user: alloc()} },
		func(st *blockState[T], w int, b Block) {
			st.lo = b.Lo
			var t0 time.Duration
			if tr != nil {
				t0 = tr.Now()
			}
			if prefetch {
				// Advise the block this worker will likely claim
				// next: with W workers, blocks b..b+W-1 are already
				// in flight, so W blocks ahead is the nearest range
				// with actual lead time (W=1 degenerates to the
				// following block). Advising an already-claimed
				// block is harmless (madvise is idempotent).
				if nb := b.Lo + workers*b.Len(); nb < s.Rows {
					end := nb + b.Len()
					if end > s.Rows {
						end = s.Rows
					}
					start := s.Off + nb*s.Stride
					n := (end-nb-1)*s.Stride + srcCols
					_ = adviser.AdviseRange(mmap.WillNeed, start, n)
				}
			}
			start := s.Off + b.Lo*s.Stride
			n := (b.Len()-1)*s.Stride + srcCols
			st.stall = touch(w, start, n)
			if s.Transform == nil {
				fn(st.user, b.Lo, b.Hi, data[start:start+n], s.Stride)
			} else {
				k := kerns[w]
				if k == nil {
					k = s.Transform()
					kerns[w] = k
					rowbuf[w] = make([]float64, s.Cols)
				}
				buf := rowbuf[w]
				for i := b.Lo; i < b.Hi; i++ {
					rs := s.Off + i*s.Stride
					row := k(buf, data[rs:rs+srcCols])
					fn(st.user, i, i+1, row, s.Cols)
				}
			}
			if s.OnBlock != nil {
				s.OnBlock(w, b, st.stall)
			}
			if tr != nil {
				tr.WorkerEvent(w, spanName, t0, map[string]any{
					"lo": b.Lo, "hi": b.Hi, "stall_s": st.stall,
				})
			}
		},
		func(dst, src *blockState[T]) {
			dst.stall += src.stall
			if g := src.lo / gr; g != groupIdx {
				flush()
				group = alloc()
				groupIdx = g
			}
			merge(group, src.user)
		})
	if err == nil {
		flush()
	}
	if scanSpan != nil {
		scanSpan.SetArg("stall_s", root.stall)
		if err != nil {
			scanSpan.SetArg("err", err.Error())
		}
		scanSpan.End()
	}
	return root.stall, err
}

// ReduceRows applies fn to every row of the scan and merges per-block
// partial states in ascending block order, returning the root state
// and the total simulated stall. fn receives the row index and the
// row slice aliasing the backing store; it must only write to state
// (or to per-row disjoint locations such as an output slice). A
// cancelled s.Ctx stops the scan within one block (see
// ReduceRowBlocks).
func ReduceRows[T any](s RowScan, alloc func() T, fn func(state T, i int, row []float64), merge func(dst, src T)) (T, float64, error) {
	return ReduceRowBlocks(s, alloc,
		func(state T, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				rs := (i - lo) * stride
				fn(state, i, block[rs:rs+s.Cols])
			}
		}, merge)
}

// ForEachRow runs fn over every row of the scan on the worker pool,
// with block-granular Touch accounting and prefetch, and returns the
// total stall. fn must write only to per-row disjoint locations; no
// state is reduced. Row visit order within a block is ascending, but
// blocks run concurrently. A cancelled s.Ctx stops the scan within
// one block and returns s.Ctx.Err(); rows of unprocessed blocks are
// then never visited.
func ForEachRow(s RowScan, fn func(i int, row []float64)) (float64, error) {
	_, stall, err := ReduceRows(s,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, row []float64) { fn(i, row) },
		func(_, _ struct{}) {})
	return stall, err
}
