package exec_test

import (
	"testing"

	"m3/internal/exec"
	"m3/internal/store"
)

// fill writes deterministic values of wildly mixed magnitudes so that
// any change of floating-point association changes the folded bits —
// the tests below then prove association equality, not approximate
// agreement.
func fillMixed(data []float64) {
	rng := uint64(0x9e3779b97f4a7c15)
	for i := range data {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		mag := []float64{1e-8, 1, 1e8}[rng%3]
		data[i] = (float64(rng%2000)/1000 - 1) * mag
	}
}

func sumScan(rows, cols int) (exec.RowScan, []float64) {
	data := make([]float64, rows*cols)
	fillMixed(data)
	return exec.RowScan{
		Store: store.FromSlice(data),
		Rows:  rows, Cols: cols, Stride: cols,
	}, data
}

// TestGroupRowsDerivation pins the canonical group-height function:
// a power-of-two multiple of MinGroupRows, group count bounded by
// MaxRowGroups, derived from the row count alone.
func TestGroupRowsDerivation(t *testing.T) {
	for _, n := range []int{0, 1, 255, 256, 1000, 16384, 16385, 100000, 1 << 22} {
		g := exec.GroupRows(n)
		if g < exec.MinGroupRows {
			t.Errorf("GroupRows(%d) = %d below MinGroupRows", n, g)
		}
		if g&(g-1) != 0 {
			t.Errorf("GroupRows(%d) = %d not a power of two", n, g)
		}
		if n > 0 {
			if groups := (n + g - 1) / g; groups > exec.MaxRowGroups {
				t.Errorf("GroupRows(%d) = %d yields %d groups > max %d", n, g, groups, exec.MaxRowGroups)
			}
		}
		if g > exec.MinGroupRows && (n+g/2-1)/(g/2) <= exec.MaxRowGroups {
			t.Errorf("GroupRows(%d) = %d is not minimal", n, g)
		}
	}
}

// TestBlocksRespectGroupBoundaries: no block straddles a merge-group
// boundary, the pattern restarts at each boundary, and the partition
// still tiles [0, rows) exactly.
func TestBlocksRespectGroupBoundaries(t *testing.T) {
	for _, tc := range []struct{ rows, cols, blockBytes int }{
		{100, 8, 0},
		{17000, 8, 0},
		{17000, 784, 0},
		{1 << 20, 16, 0},
		{50000, 10, 4096},
	} {
		s := exec.RowScan{Rows: tc.rows, Cols: tc.cols, Stride: tc.cols, BlockBytes: tc.blockBytes}
		gr := exec.GroupRows(tc.rows)
		prev := 0
		for _, b := range s.Blocks() {
			if b.Lo != prev {
				t.Fatalf("rows=%d: gap/overlap at %d (want %d)", tc.rows, b.Lo, prev)
			}
			if b.Lo/gr != (b.Hi-1)/gr {
				t.Fatalf("rows=%d: block [%d,%d) straddles group boundary (group height %d)", tc.rows, b.Lo, b.Hi, gr)
			}
			prev = b.Hi
		}
		if prev != tc.rows {
			t.Fatalf("rows=%d: partition ends at %d", tc.rows, prev)
		}
	}
}

// TestGroupRefoldMatchesRoot: refolding ReduceRowGroups partials in
// ascending order reproduces the ReduceRowBlocks root bit for bit, at
// every worker count — the wire contract of the distributed layer.
func TestGroupRefoldMatchesRoot(t *testing.T) {
	const rows, cols = 3000, 7
	scan, _ := sumScan(rows, cols)
	alloc := func() *float64 { return new(float64) }
	fn := func(s *float64, lo, hi int, block []float64, stride int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				*s += block[(i-lo)*stride+j]
			}
		}
	}
	merge := func(dst, src *float64) { *dst += *src }

	ref := scan
	ref.Workers = 1
	root, _, err := exec.ReduceRowBlocks(ref, alloc, fn, merge)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 5; workers++ {
		s := scan
		s.Workers = workers
		groups, _, err := exec.ReduceRowGroups(s, alloc, fn, merge)
		if err != nil {
			t.Fatal(err)
		}
		if want := (rows + exec.GroupRows(rows) - 1) / exec.GroupRows(rows); len(groups) != want {
			t.Fatalf("workers=%d: %d groups, want %d", workers, len(groups), want)
		}
		refold := alloc()
		prev := 0
		for _, g := range groups {
			if g.Lo != prev {
				t.Fatalf("workers=%d: group starts at %d, want %d", workers, g.Lo, prev)
			}
			merge(refold, g.State)
			prev = g.Hi
		}
		if prev != rows {
			t.Fatalf("workers=%d: groups end at %d, want %d", workers, prev, rows)
		}
		if *refold != *root {
			t.Errorf("workers=%d: refolded groups = %x, root = %x", workers, *refold, *root)
		}
	}
}

// TestShardGroupsMatchGlobal: scanning group-aligned shards with the
// global GroupRows override yields exactly the group partials the
// global scan produces for those rows — the property that makes a
// K-shard distributed fit bit-identical to a local one.
func TestShardGroupsMatchGlobal(t *testing.T) {
	const rows, cols = 3000, 7
	scan, data := sumScan(rows, cols)
	alloc := func() *float64 { return new(float64) }
	fn := func(s *float64, lo, hi int, block []float64, stride int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				*s += block[(i-lo)*stride+j]
			}
		}
	}
	merge := func(dst, src *float64) { *dst += *src }

	global, _, err := exec.ReduceRowGroups(scan, alloc, fn, merge)
	if err != nil {
		t.Fatal(err)
	}

	gr := exec.GroupRows(rows)
	cuts := []int{0, 4 * gr, 8 * gr, rows} // 3 group-aligned shards
	var shardGroups []exec.GroupPartial[*float64]
	for s := 0; s+1 < len(cuts); s++ {
		lo, hi := cuts[s], cuts[s+1]
		shard := exec.RowScan{
			Store: store.FromSlice(data),
			Off:   lo * cols,
			Rows:  hi - lo, Cols: cols, Stride: cols,
			GroupRows: gr,
			Workers:   3,
		}
		groups, _, err := exec.ReduceRowGroups(shard, alloc, fn, merge)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range groups {
			shardGroups = append(shardGroups, exec.GroupPartial[*float64]{
				Lo: g.Lo + lo, Hi: g.Hi + lo, State: g.State,
			})
		}
	}
	if len(shardGroups) != len(global) {
		t.Fatalf("shards produced %d groups, global %d", len(shardGroups), len(global))
	}
	for i := range global {
		g, s := global[i], shardGroups[i]
		if g.Lo != s.Lo || g.Hi != s.Hi {
			t.Errorf("group %d range: shard [%d,%d) vs global [%d,%d)", i, s.Lo, s.Hi, g.Lo, g.Hi)
		}
		if *g.State != *s.State {
			t.Errorf("group %d state: shard %x vs global %x", i, *s.State, *g.State)
		}
	}
}
