package exec_test

import (
	"context"
	"m3/internal/fit"
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"m3/internal/exec"
	"m3/internal/infimnist"
	"m3/internal/mat"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/logreg"
	"m3/internal/mmap"
	"m3/internal/store"
)

func TestPartitionCoversExactlyOnce(t *testing.T) {
	cases := []struct{ n, itemBytes, target int }{
		{1, 8, 0},
		{100, 784 * 8, 0},
		{4096, 8, 4096},
		{17, 16, 1},
		{1000, 100000, 0}, // item larger than a block
	}
	for _, c := range cases {
		blocks := exec.Partition(c.n, c.itemBytes, c.target)
		next := 0
		for _, b := range blocks {
			if b.Lo != next || b.Hi <= b.Lo {
				t.Fatalf("Partition(%v): bad block %+v after %d", c, b, next)
			}
			next = b.Hi
		}
		if next != c.n {
			t.Errorf("Partition(%v): covered %d of %d items", c, next, c.n)
		}
	}
	if got := exec.Partition(0, 8, 0); got != nil {
		t.Errorf("Partition(0) = %v, want nil", got)
	}
}

// TestPartitionIsPageAligned covers the divisible case: when the
// item size divides the page-rounded budget, interior block spans are
// exact page multiples.
func TestPartitionIsPageAligned(t *testing.T) {
	ps := mmap.PageSize()
	blocks := exec.Partition(1<<20, 8, 0)
	if len(blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(blocks))
	}
	for _, b := range blocks[:len(blocks)-1] {
		if (b.Len()*8)%ps != 0 {
			t.Errorf("block %+v spans %d bytes, not a page multiple", b, b.Len()*8)
		}
	}
}

// TestMapReduceDeterministicAcrossWorkers checks the core contract:
// the reduce result is bit-identical for every worker count, because
// the partition and merge order never consult it.
func TestMapReduceDeterministicAcrossWorkers(t *testing.T) {
	blocks := exec.Partition(10000, 8, 4096)
	run := func(workers int) float64 {
		sum, _ := exec.MapReduce(context.Background(), blocks, workers,
			func() *float64 { return new(float64) },
			func(s *float64, b exec.Block) {
				for i := b.Lo; i < b.Hi; i++ {
					*s += 1.0 / float64(i+1)
				}
			},
			func(dst, src *float64) { *dst += *src })
		return *sum
	}
	want := run(1)
	for _, workers := range []int{2, 3, 7, runtime.NumCPU(), 64} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: %v != %v (workers=1)", workers, got, want)
		}
	}
}

// digits builds a labelled heap matrix for the trainer determinism
// tests.
func digits(t *testing.T, n int) (*mat.Dense, []float64) {
	t.Helper()
	g := infimnist.Generator{Seed: 11}
	xs, labels := g.Matrix(0, int64(n))
	x := mat.NewDenseFrom(xs, n, infimnist.Features)
	y := make([]float64, n)
	for i, v := range labels {
		if v == 0 {
			y[i] = 1
		}
	}
	return x, y
}

// TestLogregGradientDeterministicAcrossWorkers is the ISSUE's table
// test: the block-parallel logreg loss and gradient are bit-identical
// for workers ∈ {1, 2, 7, NumCPU}.
func TestLogregGradientDeterministicAcrossWorkers(t *testing.T) {
	const n = 200
	x, y := digits(t, n)
	params := make([]float64, infimnist.Features+1)
	for i := range params {
		params[i] = 0.01 * float64(i%17-8)
	}

	eval := func(workers int) (float64, []float64) {
		obj, err := logreg.NewParallelObjective(x, y, 1e-3, true, workers)
		if err != nil {
			t.Fatal(err)
		}
		grad := make([]float64, obj.Dim())
		return obj.Eval(params, grad), grad
	}
	refLoss, refGrad := eval(1)
	for _, workers := range []int{2, 7, runtime.NumCPU()} {
		loss, grad := eval(workers)
		if loss != refLoss {
			t.Errorf("workers=%d: loss %v != %v", workers, loss, refLoss)
		}
		for j := range grad {
			if grad[j] != refGrad[j] {
				t.Fatalf("workers=%d: grad[%d] %v != %v", workers, j, grad[j], refGrad[j])
			}
		}
	}
}

// TestKMeansAssignmentDeterministicAcrossWorkers: one Lloyd iteration
// from fixed centroids produces identical assignments, centroids and
// inertia for every worker count.
func TestKMeansAssignmentDeterministicAcrossWorkers(t *testing.T) {
	const n, k = 200, 5
	x, _ := digits(t, n)
	g := infimnist.Generator{Seed: 12}
	init := mat.NewDense(k, infimnist.Features)
	row := make([]float64, infimnist.Features)
	for c := 0; c < k; c++ {
		g.Fill(row, int64(c*3+1))
		init.SetRow(c, row)
	}

	run := func(workers int) *kmeans.Result {
		res, err := kmeans.Run(context.Background(), x, kmeans.Options{
			K: k, MaxIterations: 3, InitCentroids: init,
			RunAllIterations: true,
			FitOptions:       fit.FitOptions{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 7, runtime.NumCPU()} {
		res := run(workers)
		if res.Inertia != ref.Inertia {
			t.Errorf("workers=%d: inertia %v != %v", workers, res.Inertia, ref.Inertia)
		}
		for i := range res.Assignments {
			if res.Assignments[i] != ref.Assignments[i] {
				t.Fatalf("workers=%d: assignment[%d] differs", workers, i)
			}
		}
		if !res.Centroids.Equal(ref.Centroids) {
			t.Errorf("workers=%d: centroids differ", workers)
		}
	}
}

// TestConcurrentScanMappedStore drives many concurrent blocked scans
// through one shared mmap-backed store; under -race this verifies the
// Touch accounting and block scheduler are data-race free.
func TestConcurrentScanMappedStore(t *testing.T) {
	const rows, cols = 512, 64
	path := filepath.Join(t.TempDir(), "scan.bin")
	ms, err := store.CreateMapped(path, rows*cols)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	data := ms.Data()
	for i := range data {
		data[i] = float64(i % 97)
	}
	x, err := mat.NewDenseStore(ms, rows, cols)
	if err != nil {
		t.Fatal(err)
	}

	vec := make([]float64, cols)
	for j := range vec {
		vec[j] = 1 / float64(j+1)
	}
	want := make([]float64, rows)
	x.MulVec(want, vec)

	done := make(chan []float64, 8)
	for g := 0; g < 8; g++ {
		go func() {
			y := make([]float64, rows)
			x.MulVecParallel(y, vec, 4)
			done <- y
		}()
	}
	for g := 0; g < 8; g++ {
		y := <-done
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("concurrent scan diverged at row %d: %v != %v", i, y[i], want[i])
			}
		}
	}
	if got := ms.Stats().BytesTouched; got <= 0 {
		t.Errorf("no bytes accounted: %d", got)
	}
}

// newTestPaged builds a paged store plus matrix view for scan tests.
func newTestPaged(t *testing.T, rows, cols int) ([]float64, *store.Paged, *mat.Dense) {
	t.Helper()
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = float64(i)
	}
	ps, err := store.NewPaged(data, store.PagedConfig{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	x, err := mat.NewDenseStore(ps, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return data, ps, x
}

// TestPagedStoreScansParallel: the simulated Paged store is
// concurrent-safe via per-worker streams, so a multi-worker scan
// really runs with more than one effective worker — and still reduces
// to bit-identical values with intact fault accounting.
func TestPagedStoreScansParallel(t *testing.T) {
	const rows, cols = 4096, 32 // many pages so the partition has >4 blocks
	data, ps, x := newTestPaged(t, rows, cols)

	scan := x.Scan(4)
	if got := scan.EffectiveWorkers(); got != 4 {
		t.Fatalf("EffectiveWorkers = %d, want 4 (Paged must not clamp)", got)
	}
	sum, stall, _ := exec.ReduceRows(scan,
		func() *float64 { return new(float64) },
		func(s *float64, i int, row []float64) { *s += row[0] },
		func(dst, src *float64) { *dst += *src })
	if stall <= 0 {
		t.Errorf("paged scan reported no stall: %v", stall)
	}
	var want float64
	for i := 0; i < rows; i++ {
		want += data[i*cols]
	}
	if *sum != want {
		t.Errorf("paged reduce = %v, want %v", *sum, want)
	}
	if ps.Stats().MajorFaults == 0 {
		t.Error("paged scan recorded no faults")
	}

	// The same scan single-worker agrees bit for bit on values.
	seq, _, _ := exec.ReduceRows(x.Scan(1),
		func() *float64 { return new(float64) },
		func(s *float64, i int, row []float64) { *s += row[0] },
		func(dst, src *float64) { *dst += *src })
	if *seq != *sum {
		t.Errorf("parallel paged reduce %v != sequential %v", *sum, *seq)
	}
}

// unsafeStore wraps a Store, hiding any ConcurrentToucher /
// StreamToucher it might implement — a stand-in for order-dependent
// backends like trace recorders.
type unsafeStore struct{ store.Store }

// TestEffectiveWorkersClamping: stores without concurrent-safe
// accounting still clamp to one worker; concurrent-safe ones clamp to
// the block count.
func TestEffectiveWorkersClamping(t *testing.T) {
	_, _, x := newTestPaged(t, 64, 32)
	one := exec.RowScan{Store: unsafeStore{store.NewHeap(64 * 32)}, Rows: 64, Cols: 32, Stride: 32, Workers: 8}
	if got := one.EffectiveWorkers(); got != 1 {
		t.Errorf("non-concurrent-safe store: EffectiveWorkers = %d want 1", got)
	}
	small := x.Scan(64) // 64 rows of 32 cols: one page-budget block
	if got, blocks := small.EffectiveWorkers(), len(small.Blocks()); got != blocks {
		t.Errorf("EffectiveWorkers = %d want block count %d", got, blocks)
	}
}

// TestOnBlockReportsEveryBlock: the per-block hook fires exactly once
// per block with a valid worker index and the block's stall.
func TestOnBlockReportsEveryBlock(t *testing.T) {
	const rows, cols = 2048, 32
	_, _, x := newTestPaged(t, rows, cols)
	scan := x.Scan(4)
	workers := scan.EffectiveWorkers()

	var mu sync.Mutex
	seen := map[int]int{}
	var stallSum float64
	scan.OnBlock = func(w int, b exec.Block, stall float64) {
		mu.Lock()
		defer mu.Unlock()
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of [0,%d)", w, workers)
		}
		seen[b.Lo]++
		stallSum += stall
	}
	stall, err := exec.ForEachRow(scan, func(int, []float64) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range scan.Blocks() {
		if seen[b.Lo] != 1 {
			t.Errorf("block at row %d seen %d times, want 1", b.Lo, seen[b.Lo])
		}
	}
	// stallSum accumulates in completion order, the scan's total in
	// block order — same addends, different association, so compare
	// with a tolerance rather than bit-exactly.
	if math.Abs(stallSum-stall) > 1e-9*math.Max(1, stall) {
		t.Errorf("OnBlock stalls sum to %v, scan reported %v", stallSum, stall)
	}
}

// TestForEachRowParallelVisitsAllRows checks the non-reducing path.
func TestForEachRowParallelVisitsAllRows(t *testing.T) {
	const rows, cols = 300, 16
	x := mat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		x.Set(i, 0, float64(i))
	}
	seen := make([]float64, rows)
	x.ForEachRowParallel(4, func(i int, row []float64) {
		seen[i] = row[0] + 1
	})
	for i := range seen {
		if seen[i] != float64(i)+1 {
			t.Fatalf("row %d not visited correctly: %v", i, seen[i])
		}
	}
}

// TestMapReduceCancellation: a cancelled context stops the sequential
// path before the next block and surfaces ctx.Err().
func TestMapReduceCancellation(t *testing.T) {
	blocks := exec.Partition(1000, 8, 4096)
	if len(blocks) < 2 {
		t.Fatalf("want multiple blocks, got %d", len(blocks))
	}
	ctx, cancel := context.WithCancel(context.Background())
	processed := 0
	_, err := exec.MapReduce(ctx, blocks, 1,
		func() struct{} { return struct{}{} },
		func(_ struct{}, b exec.Block) {
			processed++
			cancel() // cancel from inside the first block
		},
		func(_, _ struct{}) {})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if processed != 1 {
		t.Errorf("processed %d blocks after cancellation, want 1", processed)
	}

	// Pre-cancelled parallel path: no block runs at all.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	ran := false
	_, err = exec.MapReduce(ctx2, blocks, 4,
		func() struct{} { return struct{}{} },
		func(_ struct{}, b exec.Block) { ran = true },
		func(_, _ struct{}) {})
	if err != context.Canceled {
		t.Fatalf("pre-cancelled err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("a block ran under a pre-cancelled context")
	}
}

// TestReduceRowsCancellation: the row-scan wrappers propagate the
// context error and leave unvisited rows untouched.
func TestReduceRowsCancellation(t *testing.T) {
	const rows, cols = 4096, 16
	x := mat.NewDense(rows, cols)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	visited := 0
	_, _, err := exec.ReduceRows(x.ScanCtx(ctx, 4),
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, row []float64) { visited++ },
		func(_, _ struct{}) {})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if visited != 0 {
		t.Errorf("visited %d rows under a pre-cancelled context", visited)
	}
}

// fusedTestKernel is a width-changing transform for the fusion tests:
// dOut = dIn-1, dst[j] = 2*src[j] + src[j+1]. Width change exercises
// the SrcCols read geometry against the Cols partition geometry.
func fusedTestKernel(dOut int) exec.RowKernel {
	return func(dst, src []float64) []float64 {
		for j := 0; j < dOut; j++ {
			dst[j] = 2*src[j] + src[j+1]
		}
		return dst
	}
}

// TestFusedScanParityAcrossWorkers: a fused scan must be bit-identical
// to materializing the transform and scanning the result — for every
// worker count. The consumer's per-block partials only merge equally
// if the fused partition follows the transformed width, so this pins
// the partition geometry too.
func TestFusedScanParityAcrossWorkers(t *testing.T) {
	const rows, dIn = 3000, 9
	const dOut = dIn - 1
	x := mat.NewDense(rows, dIn)
	for i := 0; i < rows; i++ {
		for j := 0; j < dIn; j++ {
			x.Set(i, j, 1/float64(i*dIn+j+1))
		}
	}
	// Reference: materialize, then reduce over the concrete matrix.
	m := mat.NewDense(rows, dOut)
	k := fusedTestKernel(dOut)
	buf := make([]float64, dOut)
	for i := 0; i < rows; i++ {
		row, _ := x.Row(i)
		m.SetRow(i, k(buf, row))
	}
	reduce := func(s exec.RowScan) []float64 {
		sum, _, err := exec.ReduceRows(s,
			func() []float64 { return make([]float64, dOut) },
			func(acc []float64, i int, row []float64) {
				if len(row) != dOut {
					t.Fatalf("row %d has width %d, want %d", i, len(row), dOut)
				}
				for j, v := range row {
					acc[j] += v * float64(i%17+1)
				}
			},
			func(dst, src []float64) {
				for j := range dst {
					dst[j] += src[j]
				}
			})
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	for _, workers := range []int{1, 2, 3, runtime.NumCPU()} {
		// Fused scan built by hand over the source geometry.
		s := x.Scan(workers)
		s.SrcCols = s.Cols
		s.Cols = dOut
		s.Transform = func() exec.RowKernel { return fusedTestKernel(dOut) }
		// Small blocks so worker interleaving is real.
		s.BlockBytes = 4096
		ref := m.Scan(workers)
		ref.BlockBytes = 4096
		if got, want := reduce(s), reduce(ref); !equalSlices(got, want) {
			t.Errorf("workers=%d: fused reduce %v != materialized %v", workers, got, want)
		}
	}
}

func equalSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFusedScanBlockDelivery: fused scans deliver single-row blocks
// with the transformed stride to block consumers, in ascending order
// within each partition block.
func TestFusedScanBlockDelivery(t *testing.T) {
	const rows, dIn = 257, 5
	const dOut = dIn - 1
	x := mat.NewDense(rows, dIn)
	for i := 0; i < rows; i++ {
		for j := 0; j < dIn; j++ {
			x.Set(i, j, float64(i*dIn+j))
		}
	}
	s := x.Scan(1)
	s.SrcCols = s.Cols
	s.Cols = dOut
	s.Transform = func() exec.RowKernel { return fusedTestKernel(dOut) }
	last := -1
	_, _, err := exec.ReduceRowBlocks(s,
		func() struct{} { return struct{}{} },
		func(_ struct{}, lo, hi int, block []float64, stride int) {
			if hi != lo+1 {
				t.Fatalf("fused block [%d,%d), want single row", lo, hi)
			}
			if stride != dOut || len(block) < dOut {
				t.Fatalf("fused block stride %d len %d, want %d", stride, len(block), dOut)
			}
			if lo != last+1 {
				t.Fatalf("rows out of order: %d after %d", lo, last)
			}
			last = lo
			want := 2*float64(lo*dIn) + float64(lo*dIn+1)
			if block[0] != want {
				t.Fatalf("row %d transformed to %v, want %v", lo, block[0], want)
			}
		},
		func(_, _ struct{}) {})
	if err != nil {
		t.Fatal(err)
	}
	if last != rows-1 {
		t.Errorf("visited up to row %d, want %d", last, rows-1)
	}
}

// TestFusedScanCancellation: cancellation mid-scan stops a fused chain
// within one block and surfaces ctx.Err(); a pre-cancelled context
// never invokes the kernel.
func TestFusedScanCancellation(t *testing.T) {
	const rows, dIn = 4096, 8
	x := mat.NewDense(rows, dIn)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	kernelRuns := 0
	s := x.ScanCtx(ctx, 4)
	s.SrcCols = s.Cols
	s.Cols = dIn - 1
	s.Transform = func() exec.RowKernel {
		return func(dst, src []float64) []float64 {
			kernelRuns++
			return dst
		}
	}
	_, _, err := exec.ReduceRows(s,
		func() struct{} { return struct{}{} },
		func(_ struct{}, i int, row []float64) {},
		func(_, _ struct{}) {})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if kernelRuns != 0 {
		t.Errorf("kernel ran %d times under a pre-cancelled context", kernelRuns)
	}
}
