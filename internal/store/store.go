// Package store defines M3's central abstraction: a linear array of
// float64 whose backing medium — Go heap, a real memory-mapped file,
// or a simulated paged address space — is invisible to the algorithms
// above it.
//
// This transparency is the paper's whole point: logistic regression
// and k-means are written once against mat.Dense, and switching a
// dataset from in-memory to out-of-core is a one-line change of
// backend (Table 1).
package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"m3/internal/mmap"
	"m3/internal/vm"
)

// ErrReadOnly is returned by write accessors of read-only stores.
var ErrReadOnly = errors.New("store: read-only")

// ConcurrentToucher is implemented by backends whose Touch accounting
// (and Data reads) are safe from multiple goroutines at once. The
// parallel execution layer (internal/exec) consults it: backends that
// do not implement it — or report false — are scanned by a single
// worker, which keeps order-dependent accounting (trace recorders)
// exact.
type ConcurrentToucher interface {
	// ConcurrentSafe reports whether Touch/TouchWrite may race.
	ConcurrentSafe() bool
}

// TouchStream is a per-scanner access handle: Touch/TouchWrite with
// the same element semantics as the owning Store, but with private
// sequential-detection state so one scanner's access pattern is
// invisible to the others.
type TouchStream interface {
	// Touch declares a read of elements [start, start+n) and returns
	// the simulated stall in seconds.
	Touch(start, n int) float64
	// TouchWrite declares a write of elements [start, start+n).
	TouchWrite(start, n int) float64
}

// StreamToucher is implemented by backends whose paging model keeps
// read-ahead state per stream (the simulated Paged store, mirroring
// the kernel's per-struct-file readahead). The parallel execution
// layer opens one stream per pool worker so concurrent block scans
// keep their sequentiality — interleaved faults from other workers do
// not reset a stream's read-ahead window.
type StreamToucher interface {
	// OpenStream returns a stream with fresh private read-ahead state
	// over the store's shared cache. Streams are safe for concurrent
	// use but are meant to be owned by a single scanner.
	OpenStream() TouchStream
}

// RangeAdviser is implemented by backends that can apply an madvise
// hint to a sub-range of elements — the hook block schedulers use to
// prefetch the next block (mmap.WillNeed) while the current one is
// being computed on.
type RangeAdviser interface {
	// AdviseRange hints the access pattern for elements
	// [start, start+n).
	AdviseRange(a mmap.Advice, start, n int) error
}

// Stats summarizes access activity for a store. Real backends report
// best-effort OS numbers; the paged backend reports exact simulated
// counts.
type Stats struct {
	// BytesTouched counts bytes of element accesses routed through
	// Touch/TouchWrite.
	BytesTouched int64
	// MajorFaults and BytesRead are populated by the paged backend.
	MajorFaults uint64
	BytesRead   int64
	// StallSeconds is simulated disk stall (paged backend only).
	StallSeconds float64
	// ResidentBytes is the currently RAM-resident portion, when the
	// backend can determine it (mmap via mincore, paged exactly).
	ResidentBytes int64
}

// Store is a 1-D float64 array with access-pattern hooks.
//
// Touch and TouchWrite declare an upcoming access to elements
// [start, start+n); they return the simulated stall in seconds (zero
// for real backends, where the hardware pays the cost instead).
// Algorithms call them once per row or block, not per element.
type Store interface {
	// Data returns the full element slice. It remains valid until
	// Close.
	Data() []float64
	// Len returns the number of elements.
	Len() int
	// Writable reports whether element stores are permitted.
	Writable() bool
	// Touch declares a read of elements [start, start+n).
	Touch(start, n int) float64
	// TouchWrite declares a write of elements [start, start+n).
	TouchWrite(start, n int) float64
	// Advise hints the expected access pattern.
	Advise(a mmap.Advice) error
	// Stats snapshots access statistics.
	Stats() Stats
	// Close releases resources. The Data slice is invalid afterwards.
	Close() error
}

// --- Heap backend ---------------------------------------------------

// Heap is the ordinary in-memory baseline: a plain slice with no-op
// paging hooks. It is what "Original" code in Table 1 uses.
type Heap struct {
	data    []float64
	touched atomic.Int64
}

// NewHeap allocates an n-element heap store.
func NewHeap(n int) *Heap {
	return &Heap{data: make([]float64, n)}
}

// FromSlice wraps an existing slice without copying.
func FromSlice(s []float64) *Heap {
	return &Heap{data: s}
}

// Data returns the underlying slice.
func (h *Heap) Data() []float64 { return h.data }

// Len returns the element count.
func (h *Heap) Len() int { return len(h.data) }

// Writable always reports true for heap stores.
func (h *Heap) Writable() bool { return true }

// Touch records the access for statistics and returns zero stall.
func (h *Heap) Touch(start, n int) float64 {
	h.touched.Add(int64(n) * 8)
	return 0
}

// TouchWrite records the access and returns zero stall.
func (h *Heap) TouchWrite(start, n int) float64 {
	h.touched.Add(int64(n) * 8)
	return 0
}

// Advise is a no-op for heap memory.
func (h *Heap) Advise(mmap.Advice) error { return nil }

// ConcurrentSafe reports true: heap accounting is atomic.
func (h *Heap) ConcurrentSafe() bool { return true }

// Stats reports bytes touched; heap data is always resident.
func (h *Heap) Stats() Stats {
	return Stats{BytesTouched: h.touched.Load(), ResidentBytes: int64(len(h.data)) * 8}
}

// Close drops the reference to the slice.
func (h *Heap) Close() error {
	h.data = nil
	return nil
}

// --- Mapped backend (real mmap) --------------------------------------

// Mapped is the real M3 backend: elements live in a memory-mapped
// file and the operating system pages them.
type Mapped struct {
	region  *mmap.Region
	data    []float64
	off     int64 // byte offset of data[0] within the region
	view    bool  // region owned by someone else; Close must not unmap
	touched atomic.Int64
}

// OpenMapped maps an existing file of float64 values read-only.
func OpenMapped(path string) (*Mapped, error) {
	data, region, err := mmap.OpenFloat64(path)
	if err != nil {
		return nil, err
	}
	return &Mapped{region: region, data: data}, nil
}

// CreateMapped creates a file sized for n float64 elements and maps
// it read-write — the paper's mmapAlloc.
func CreateMapped(path string, n int64) (*Mapped, error) {
	data, region, err := mmap.AllocFloat64(path, n)
	if err != nil {
		return nil, err
	}
	return &Mapped{region: region, data: data}, nil
}

// ViewMapped wraps an element slice of an already-mapped region as a
// store, with byteOff giving the slice's byte offset within the
// region — how dataset files expose their payload (which sits behind
// a header page) with full paging hooks. The caller keeps ownership
// of the region: Close drops the reference without unmapping.
func ViewMapped(region *mmap.Region, data []float64, byteOff int64) *Mapped {
	return &Mapped{region: region, data: data, off: byteOff, view: true}
}

// OpenMappedRW maps an existing file read-write.
func OpenMappedRW(path string) (*Mapped, error) {
	region, err := mmap.OpenRW(path)
	if err != nil {
		return nil, err
	}
	data, err := region.Float64()
	if err != nil {
		region.Unmap()
		return nil, err
	}
	return &Mapped{region: region, data: data}, nil
}

// Data returns the mapped element view.
func (m *Mapped) Data() []float64 { return m.data }

// Len returns the element count.
func (m *Mapped) Len() int { return len(m.data) }

// Writable reports whether the mapping is read-write.
func (m *Mapped) Writable() bool { return m.region.Writable() }

// Touch records statistics; the OS services the actual fault.
func (m *Mapped) Touch(start, n int) float64 {
	m.touched.Add(int64(n) * 8)
	return 0
}

// TouchWrite records statistics.
func (m *Mapped) TouchWrite(start, n int) float64 {
	m.touched.Add(int64(n) * 8)
	return 0
}

// Advise forwards the hint to madvise(2) — for views, restricted to
// the viewed byte range.
func (m *Mapped) Advise(a mmap.Advice) error {
	if m.view {
		return m.region.AdviseRange(a, m.off, int64(len(m.data))*8)
	}
	return m.region.Advise(a)
}

// AdviseRange hints the pattern for elements [start, start+n) —
// typically mmap.WillNeed issued by the block scheduler for the block
// after the one in flight.
func (m *Mapped) AdviseRange(a mmap.Advice, start, n int) error {
	return m.region.AdviseRange(a, m.off+int64(start)*8, int64(n)*8)
}

// ConcurrentSafe reports true: faults are serviced by the OS and the
// byte accounting is atomic.
func (m *Mapped) ConcurrentSafe() bool { return true }

// Region exposes the underlying mapping for callers that need Sync
// or Residency directly.
func (m *Mapped) Region() *mmap.Region { return m.region }

// Stats reports bytes touched plus real page residency via mincore.
func (m *Mapped) Stats() Stats {
	s := Stats{BytesTouched: m.touched.Load()}
	if resident, _, err := m.region.Residency(); err == nil {
		s.ResidentBytes = int64(resident) * int64(mmap.PageSize())
	}
	return s
}

// Close unmaps the region (syncing dirty pages first). A view store
// only drops its reference; the region's owner unmaps.
func (m *Mapped) Close() error {
	m.data = nil
	if m.view {
		return nil
	}
	return m.region.Unmap()
}

// --- Paged backend (simulated out-of-core) ---------------------------

// Paged couples a real element slice with a simulated virtual-memory
// subsystem, so out-of-core behaviour (RAM budget, LRU eviction,
// read-ahead, disk stalls) can be studied deterministically at any
// nominal scale. The element data itself is heap-resident — the
// simulation governs *timing*, not values.
//
// NominalBytes may exceed 8*len(data): the store then models a
// dataset of the nominal size whose access pattern is the scaled
// pattern of the real slice. This is how the 10–190 GB sweep of
// Figure 1a runs on a laptop: the computation runs on a congruent
// small matrix while paging is accounted at full scale.
//
// Paged is safe for concurrent use and implements StreamToucher: the
// parallel execution layer gives each pool worker a private stream
// (per-stream read-ahead over the shared simulated cache), so the
// multi-core out-of-core regime can be studied. Touch/TouchWrite on
// the store itself run on the simulator's default stream; a
// single-scanner sequence through them is exactly deterministic,
// while totals under concurrent streams depend on goroutine
// interleaving (values computed from the data never do).
type Paged struct {
	data  []float64
	mem   *vm.Memory
	scale float64 // nominal bytes per actual element byte
	ro    bool

	mu      sync.Mutex // guards tl and touched; mem locks itself
	tl      *vm.Timeline
	touched int64
}

// PagedConfig configures a Paged store.
type PagedConfig struct {
	// VM configures the simulated memory (RAM budget, disk, pages).
	VM vm.Config
	// NominalBytes is the modelled dataset size; if zero it defaults
	// to the actual data size (8 bytes per element).
	NominalBytes int64
	// ReadOnly marks the store read-only.
	ReadOnly bool
}

// NewPaged wraps data in a simulated paged store.
func NewPaged(data []float64, cfg PagedConfig) (*Paged, error) {
	actual := int64(len(data)) * 8
	if actual == 0 {
		return nil, fmt.Errorf("store: empty data")
	}
	nominal := cfg.NominalBytes
	if nominal <= 0 {
		nominal = actual
	}
	mem, err := vm.NewMemory(nominal, cfg.VM)
	if err != nil {
		return nil, err
	}
	return &Paged{
		data:  data,
		mem:   mem,
		tl:    &vm.Timeline{},
		scale: float64(nominal) / float64(actual),
		ro:    cfg.ReadOnly,
	}, nil
}

// Data returns the element slice.
func (p *Paged) Data() []float64 { return p.data }

// Len returns the element count.
func (p *Paged) Len() int { return len(p.data) }

// Writable reports whether the store accepts writes.
func (p *Paged) Writable() bool { return !p.ro }

// Touch simulates paging for a read of elements [start, start+n) on
// the default stream and returns the simulated stall seconds (also
// accumulated on the store's Timeline).
func (p *Paged) Touch(start, n int) float64 {
	off, length := p.scaleRange(start, n)
	stall := p.mem.Touch(off, length)
	p.account(n, stall)
	return stall
}

// TouchWrite simulates paging for a write on the default stream.
func (p *Paged) TouchWrite(start, n int) float64 {
	off, length := p.scaleRange(start, n)
	stall := p.mem.TouchWrite(off, length)
	p.account(n, stall)
	return stall
}

// account folds one access into the shared byte counter and timeline.
func (p *Paged) account(n int, stall float64) {
	p.mu.Lock()
	p.touched += int64(n) * 8
	p.tl.AddDisk(stall)
	p.mu.Unlock()
}

// scaleRange maps the element range [start, start+n) to the nominal
// byte range. The end offset is derived by scaling start+n — not by
// rounding a scaled length separately — so adjacent element ranges
// map to adjacent nominal ranges: block scans neither double-touch
// nor skip nominal pages at block boundaries. Offsets are clamped
// into the nominal store so float64 rounding at extreme scales can
// never reach vm's out-of-range panic.
func (p *Paged) scaleRange(start, n int) (off, length int64) {
	if n < 0 {
		n = 0
	}
	size := p.mem.Size()
	fsize := float64(size)
	// Clamp in the float domain first: converting an out-of-range
	// float64 to int64 is not a saturating operation in Go, so a huge
	// declared start must never reach the conversion unclamped.
	fo := float64(start) * 8 * p.scale
	if fo < 0 {
		fo = 0
	}
	if fo > fsize {
		fo = fsize
	}
	fe := float64(start+n) * 8 * p.scale
	if fe > fsize {
		fe = fsize
	}
	if fe < fo {
		fe = fo
	}
	off = int64(fo)
	if off < 0 || off > size { // float64(size) can round up past size
		off = size
	}
	end := int64(fe)
	if end < 0 || end > size {
		end = size
	}
	if end < off {
		end = off
	}
	length = end - off
	// A non-empty element range always touches at least one byte,
	// even when downscaling collapses it.
	if n > 0 && length == 0 && off < size {
		length = 1
	}
	return off, length
}

// pagedStream is a per-scanner handle over a Paged store: element
// scaling and shared accounting from the store, read-ahead state from
// its own vm.Stream.
type pagedStream struct {
	p *Paged
	s *vm.Stream
}

// Touch simulates paging for a read on this stream.
func (ps *pagedStream) Touch(start, n int) float64 {
	off, length := ps.p.scaleRange(start, n)
	stall := ps.s.Touch(off, length)
	ps.p.account(n, stall)
	return stall
}

// TouchWrite simulates paging for a write on this stream.
func (ps *pagedStream) TouchWrite(start, n int) float64 {
	off, length := ps.p.scaleRange(start, n)
	stall := ps.s.TouchWrite(off, length)
	ps.p.account(n, stall)
	return stall
}

// OpenStream returns a stream with private read-ahead state over the
// store's shared simulated cache — one per concurrent scanner.
func (p *Paged) OpenStream() TouchStream {
	return &pagedStream{p: p, s: p.mem.NewStream()}
}

// ConcurrentSafe reports true: the simulated memory serializes cache
// updates internally, and scanners that need their own sequentiality
// open per-worker streams via OpenStream.
func (p *Paged) ConcurrentSafe() bool { return true }

// Advise adjusts simulated behaviour: DontNeed drops the whole cache;
// other hints are accepted silently (read-ahead adapts on its own).
func (p *Paged) Advise(a mmap.Advice) error {
	if a == mmap.DontNeed {
		p.mem.Drop(0, p.mem.Size())
	}
	return nil
}

// Timeline returns the store's simulated timeline, shared with the
// compute layer so CPU and disk seconds merge into one elapsed model.
func (p *Paged) Timeline() *vm.Timeline { return p.tl }

// Memory exposes the simulated memory for detailed inspection.
func (p *Paged) Memory() *vm.Memory { return p.mem }

// Stats converts simulated paging counters into store statistics.
func (p *Paged) Stats() Stats {
	vs := p.mem.Stats()
	resident := int64(p.mem.ResidentPages()) * p.mem.PageSize()
	p.mu.Lock()
	touched := p.touched
	p.mu.Unlock()
	return Stats{
		BytesTouched:  touched,
		MajorFaults:   vs.MajorFaults,
		BytesRead:     vs.BytesRead,
		StallSeconds:  vs.DiskSeconds,
		ResidentBytes: resident,
	}
}

// Close drops references.
func (p *Paged) Close() error {
	p.data = nil
	return nil
}
