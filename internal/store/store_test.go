package store

import (
	"path/filepath"
	"sync"
	"testing"

	"m3/internal/mmap"
	"m3/internal/vm"
)

// compile-time interface checks
var (
	_ Store = (*Heap)(nil)
	_ Store = (*Mapped)(nil)
	_ Store = (*Paged)(nil)
)

func TestHeapStore(t *testing.T) {
	h := NewHeap(100)
	if h.Len() != 100 {
		t.Fatalf("Len = %d", h.Len())
	}
	if !h.Writable() {
		t.Error("heap not writable")
	}
	h.Data()[5] = 3.14
	if stall := h.Touch(0, 100); stall != 0 {
		t.Errorf("heap touch stall = %v", stall)
	}
	h.TouchWrite(0, 10)
	s := h.Stats()
	if s.BytesTouched != 110*8 {
		t.Errorf("bytes touched = %d want %d", s.BytesTouched, 110*8)
	}
	if s.ResidentBytes != 800 {
		t.Errorf("resident = %d want 800", s.ResidentBytes)
	}
	if err := h.Advise(mmap.Sequential); err != nil {
		t.Errorf("advise: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if h.Data() != nil {
		t.Error("data not released")
	}
}

func TestFromSlice(t *testing.T) {
	s := []float64{1, 2, 3}
	h := FromSlice(s)
	h.Data()[0] = 9
	if s[0] != 9 {
		t.Error("FromSlice copied instead of wrapping")
	}
}

func TestMappedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bin")
	m, err := CreateMapped(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Writable() {
		t.Error("CreateMapped not writable")
	}
	for i := range m.Data() {
		m.Data()[i] = float64(i)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.Writable() {
		t.Error("OpenMapped should be read-only")
	}
	if ro.Len() != 512 {
		t.Fatalf("Len = %d", ro.Len())
	}
	for i, v := range ro.Data() {
		if v != float64(i) {
			t.Fatalf("data[%d] = %v", i, v)
		}
	}
	if err := ro.Advise(mmap.Sequential); err != nil {
		t.Errorf("advise: %v", err)
	}
	ro.Touch(0, 512)
	s := ro.Stats()
	if s.BytesTouched != 512*8 {
		t.Errorf("bytes touched = %d", s.BytesTouched)
	}
	if s.ResidentBytes <= 0 {
		t.Errorf("resident bytes = %d, want > 0 after touching", s.ResidentBytes)
	}
}

func TestOpenMappedRW(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rw.bin")
	m, err := CreateMapped(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	m.Data()[0] = 1
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	rw, err := OpenMappedRW(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	rw.Data()[0] = 2
	if !rw.Writable() {
		t.Error("not writable")
	}
}

func TestOpenMappedMissing(t *testing.T) {
	if _, err := OpenMapped(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("expected error")
	}
}

func newPagedTest(t *testing.T, elems int, cfg PagedConfig) *Paged {
	t.Helper()
	data := make([]float64, elems)
	for i := range data {
		data[i] = float64(i)
	}
	p, err := NewPaged(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPagedStallsAndStats(t *testing.T) {
	// 1024 elements = 8192 bytes = 2 pages at 4096; cache 1 page →
	// scanning twice faults every page.
	p := newPagedTest(t, 1024, PagedConfig{VM: vm.Config{
		PageSize:          4096,
		CacheBytes:        4096,
		Disk:              vm.DiskModel{BandwidthBytes: 4096, SeekSeconds: 0, RequestSeconds: 0},
		MinReadAheadPages: 1, MaxReadAheadPages: 1,
	}})
	stall := p.Touch(0, 1024)
	if stall <= 0 {
		t.Error("expected stall on cold scan")
	}
	s := p.Stats()
	if s.MajorFaults != 2 {
		t.Errorf("major faults = %d want 2", s.MajorFaults)
	}
	if s.BytesRead != 8192 {
		t.Errorf("bytes read = %d want 8192", s.BytesRead)
	}
	if s.StallSeconds != stall {
		t.Errorf("stats stall %v != returned %v", s.StallSeconds, stall)
	}
	if p.Timeline().DiskSeconds() != stall {
		t.Errorf("timeline disk %v != %v", p.Timeline().DiskSeconds(), stall)
	}
}

func TestPagedNominalScaling(t *testing.T) {
	// 1024 elements (8 KiB actual) modelling a 8 MiB dataset with a
	// 1 MiB cache: out-of-core by 8x, so repeated scans must keep
	// faulting.
	p := newPagedTest(t, 1024, PagedConfig{
		NominalBytes: 8 << 20,
		VM: vm.Config{
			PageSize:          4096,
			CacheBytes:        1 << 20,
			Disk:              vm.DiskModel{BandwidthBytes: 1e6},
			MinReadAheadPages: 1, MaxReadAheadPages: 1,
		},
	})
	p.Touch(0, 1024)
	first := p.Stats().BytesRead
	if first != 8<<20 {
		t.Errorf("cold scan read %d nominal bytes, want %d", first, 8<<20)
	}
	p.Touch(0, 1024)
	second := p.Stats().BytesRead - first
	if second != 8<<20 {
		t.Errorf("warm scan re-read %d bytes, want full re-read %d (working set > cache)", second, 8<<20)
	}
}

func TestPagedFitsInCacheNoRereads(t *testing.T) {
	p := newPagedTest(t, 1024, PagedConfig{
		NominalBytes: 1 << 20, // 1 MiB dataset
		VM: vm.Config{
			PageSize:   4096,
			CacheBytes: 4 << 20, // 4 MiB cache: fits
			Disk:       vm.DiskModel{BandwidthBytes: 1e6},
		},
	})
	p.Touch(0, 1024)
	cold := p.Stats().BytesRead
	p.Touch(0, 1024)
	if got := p.Stats().BytesRead; got != cold {
		t.Errorf("in-RAM dataset re-read from disk: %d -> %d", cold, got)
	}
	stall := p.Touch(0, 1024)
	if stall != 0 {
		t.Errorf("warm scan stalled %v", stall)
	}
}

func TestPagedAdviseDontNeed(t *testing.T) {
	p := newPagedTest(t, 1024, PagedConfig{VM: vm.Config{
		PageSize:   4096,
		CacheBytes: 1 << 20,
		Disk:       vm.DiskModel{BandwidthBytes: 1e6},
	}})
	p.Touch(0, 1024)
	if p.Stats().ResidentBytes == 0 {
		t.Fatal("nothing resident after scan")
	}
	if err := p.Advise(mmap.DontNeed); err != nil {
		t.Fatal(err)
	}
	if p.Stats().ResidentBytes != 0 {
		t.Error("DontNeed did not drop cache")
	}
}

func TestPagedReadOnly(t *testing.T) {
	p := newPagedTest(t, 8, PagedConfig{ReadOnly: true, VM: vm.Config{CacheBytes: 1 << 20}})
	if p.Writable() {
		t.Error("read-only store reports writable")
	}
}

func TestPagedRejectsEmpty(t *testing.T) {
	if _, err := NewPaged(nil, PagedConfig{}); err == nil {
		t.Error("expected error for empty data")
	}
}

// TestPagedScaleRangeSeamless pins the scaleRange bugfix: with a
// non-integral nominal scale, element-by-element touches must cover
// every nominal byte exactly once — the old independent rounding of
// off and length both skipped and double-touched bytes at range
// boundaries.
func TestPagedScaleRangeSeamless(t *testing.T) {
	// 10 elements (80 actual bytes) modelling 56 nominal bytes:
	// scale = 0.7, so every element boundary lands mid-byte.
	p := newPagedTest(t, 10, PagedConfig{
		NominalBytes: 56,
		VM: vm.Config{
			PageSize:          1, // byte-granular pages make gaps visible
			CacheBytes:        1024,
			Disk:              vm.DiskModel{BandwidthBytes: 1e6},
			MinReadAheadPages: 1, MaxReadAheadPages: 1,
		},
	})
	for i := 0; i < 10; i++ {
		p.Touch(i, 1)
	}
	s := p.Stats()
	if s.BytesRead != 56 {
		t.Errorf("element-wise scan read %d nominal bytes, want exactly 56 (no skips, no double reads)", s.BytesRead)
	}
	if s.ResidentBytes != 56 {
		t.Errorf("resident = %d want 56 (every nominal byte cached)", s.ResidentBytes)
	}
	// Adjacent block pairs cover the same bytes as one big touch.
	q := newPagedTest(t, 10, PagedConfig{
		NominalBytes: 56,
		VM: vm.Config{
			PageSize:          1,
			CacheBytes:        1024,
			Disk:              vm.DiskModel{BandwidthBytes: 1e6},
			MinReadAheadPages: 1, MaxReadAheadPages: 1,
		},
	})
	q.Touch(0, 7)
	q.Touch(7, 3)
	if got := q.Stats().BytesRead; got != 56 {
		t.Errorf("blocked scan read %d nominal bytes, want 56", got)
	}
}

// TestPagedTouchBeyondRangeClamps: a declared access past the nominal
// end is clamped instead of reaching vm's out-of-range panic.
func TestPagedTouchBeyondRangeClamps(t *testing.T) {
	p := newPagedTest(t, 8, PagedConfig{VM: vm.Config{CacheBytes: 1 << 20}})
	if stall := p.Touch(1<<60, 4); stall != 0 {
		t.Errorf("beyond-range touch stalled %v, want 0 (clamped to empty)", stall)
	}
	p.Touch(6, 100) // overlaps the end: clamped to the tail
	if p.Stats().BytesRead <= 0 {
		t.Error("tail touch read nothing")
	}
}

// Interface contract: Paged is concurrent-safe and stream-capable.
var (
	_ ConcurrentToucher = (*Paged)(nil)
	_ StreamToucher     = (*Paged)(nil)
)

func TestPagedConcurrentStreams(t *testing.T) {
	if !(*Paged)(nil).ConcurrentSafe() {
		t.Error("Paged must report ConcurrentSafe")
	}
	const workers, elems = 8, 8192
	p := newPagedTest(t, elems, PagedConfig{VM: vm.Config{
		PageSize:   4096,
		CacheBytes: 4 * elems * 8,
		Disk:       vm.DiskModel{BandwidthBytes: 1e6},
	}})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := p.OpenStream()
			lo := w * elems / workers
			for i := 0; i < elems/workers; i += 64 {
				s.Touch(lo+i, 64)
			}
		}(w)
	}
	wg.Wait()
	s := p.Stats()
	if s.BytesTouched != elems*8 {
		t.Errorf("bytes touched = %d want %d", s.BytesTouched, elems*8)
	}
	if s.BytesRead != elems*8 {
		t.Errorf("bytes read = %d want %d (cache fits: each page once)", s.BytesRead, elems*8)
	}
	if got := p.Timeline().DiskSeconds(); got != s.StallSeconds {
		t.Errorf("timeline disk %v != stats stall %v", got, s.StallSeconds)
	}
}

func TestPagedWriteBackOnEvict(t *testing.T) {
	p := newPagedTest(t, 1024, PagedConfig{VM: vm.Config{
		PageSize:          4096,
		CacheBytes:        4096, // 1 page
		Disk:              vm.DiskModel{BandwidthBytes: 1e6},
		MinReadAheadPages: 1, MaxReadAheadPages: 1,
	}})
	p.TouchWrite(0, 512) // dirty page 0
	p.Touch(512, 512)    // evicts page 0 → write-back
	if p.Memory().Stats().DirtyWrittenBack == 0 {
		t.Error("expected dirty write-back")
	}
}
