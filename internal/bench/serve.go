package bench

// Serving experiment shapes: the load client and rendering live here;
// the runner (model training, in-process servers) lives in
// cmd/m3bench, which can import the public m3 and serve packages —
// this package cannot (the root package's tests import bench).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ServeOptions drives one load-harness measurement against a running
// prediction endpoint.
type ServeOptions struct {
	// URL is the full predict endpoint, e.g.
	// http://127.0.0.1:8080/models/digits/predict.
	URL string
	// Queries is the request pool; each query is one feature row and
	// each request carries exactly one query.
	Queries [][]float64
	// Workers is the number of concurrent closed-loop clients.
	Workers int
	// Duration is how long the load runs.
	Duration time.Duration
	// Seed makes each worker's query sequence deterministic.
	Seed uint64
	// TargetQPS throttles each worker to TargetQPS/Workers requests
	// per second; 0 means unthrottled (closed-loop).
	TargetQPS float64
}

// ServeResult is one measured load run.
type ServeResult struct {
	Requests        int64
	Errors          int64
	DurationSeconds float64
	QPS             float64
	P50Ms           float64
	P90Ms           float64
	P99Ms           float64
}

// ServePoint is one cell of the serving sweep: a (model, regime,
// batching, workers) measurement plus the server-side mean batch size
// observed during the run.
type ServePoint struct {
	// Model is the served model name ("pipeline", "knn", ...).
	Model string
	// Regime is the storage regime of the model's backing data:
	// "in-ram" or "out-of-core".
	Regime string
	// Batching is "micro" (size/deadline micro-batching) or "single"
	// (one request per PredictMatrix call — the baseline).
	Batching string
	// Workers is the concurrent client count.
	Workers int
	// Result is the client-side measurement.
	Result ServeResult
	// MeanBatchRows is the server-side mean rows per flushed batch
	// during this run (1.0 for the single baseline).
	MeanBatchRows float64
}

// ServeLoad runs Workers closed-loop clients against URL for Duration,
// each posting one pool query per request, and reports throughput and
// latency quantiles. The query sequence is deterministic per
// (Seed, worker).
func ServeLoad(opts ServeOptions) (ServeResult, error) {
	if len(opts.Queries) == 0 {
		return ServeResult{}, fmt.Errorf("bench: ServeLoad needs a non-empty query pool")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	// Pre-marshal one body per pool entry so workers measure serving,
	// not client-side JSON encoding.
	bodies := make([][]byte, len(opts.Queries))
	for i, q := range opts.Queries {
		b, err := json.Marshal(map[string][][]float64{"rows": {q}})
		if err != nil {
			return ServeResult{}, err
		}
		bodies[i] = b
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.Workers * 2,
		MaxIdleConnsPerHost: opts.Workers * 2,
	}}
	defer client.CloseIdleConnections()

	var requests, errs atomic.Int64
	latencies := make([][]float64, opts.Workers)
	deadline := time.Now().Add(opts.Duration)
	var pace time.Duration
	if opts.TargetQPS > 0 {
		pace = time.Duration(float64(opts.Workers) * float64(time.Second) / opts.TargetQPS)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(opts.Seed) + int64(w)))
			var lats []float64
			next := time.Now()
			for time.Now().Before(deadline) {
				if pace > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(pace)
				}
				body := bodies[rng.Intn(len(bodies))]
				t0 := time.Now()
				resp, err := client.Post(opts.URL, "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				lats = append(lats, float64(time.Since(t0))/float64(time.Millisecond))
				requests.Add(1)
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Float64s(all)
	res := ServeResult{
		Requests:        requests.Load(),
		Errors:          errs.Load(),
		DurationSeconds: elapsed,
		P50Ms:           percentile(all, 0.50),
		P90Ms:           percentile(all, 0.90),
		P99Ms:           percentile(all, 0.99),
	}
	if elapsed > 0 {
		res.QPS = float64(res.Requests) / elapsed
	}
	return res, nil
}

// percentile returns the q-quantile of sorted samples by linear
// interpolation (duplicated from internal/serve, which this package
// cannot import).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// RenderServe prints the serving sweep, one block per (model, regime)
// group, with a micro-vs-single throughput summary per worker count.
func RenderServe(w io.Writer, points []ServePoint) error {
	type key struct{ model, regime string }
	groups := make(map[key][]ServePoint)
	var order []key
	for _, p := range points {
		k := key{p.Model, p.Regime}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	for _, k := range order {
		g := groups[k]
		if _, err := fmt.Fprintf(w, "%s (%s):\n", k.model, k.regime); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %-8s %8s %9s %10s %9s %9s %9s %10s %6s\n",
			"batching", "workers", "requests", "qps", "p50 ms", "p90 ms", "p99 ms", "mean batch", "errs"); err != nil {
			return err
		}
		micro := map[int]ServePoint{}
		single := map[int]ServePoint{}
		var workerOrder []int
		for _, p := range g {
			if _, err := fmt.Fprintf(w, "  %-8s %8d %9d %10.0f %9.2f %9.2f %9.2f %10.1f %6d\n",
				p.Batching, p.Workers, p.Result.Requests, p.Result.QPS,
				p.Result.P50Ms, p.Result.P90Ms, p.Result.P99Ms, p.MeanBatchRows, p.Result.Errors); err != nil {
				return err
			}
			switch p.Batching {
			case "micro":
				if _, seen := micro[p.Workers]; !seen {
					workerOrder = append(workerOrder, p.Workers)
				}
				micro[p.Workers] = p
			case "single":
				single[p.Workers] = p
			}
		}
		for _, workers := range workerOrder {
			m, okM := micro[workers]
			s, okS := single[workers]
			if okM && okS && s.Result.QPS > 0 {
				if _, err := fmt.Fprintf(w, "  → %d workers: micro-batching %.2fx throughput (%.0f vs %.0f qps)\n",
					workers, m.Result.QPS/s.Result.QPS, m.Result.QPS, s.Result.QPS); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
