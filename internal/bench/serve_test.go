package bench

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestServeLoadAgainstStub(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Rows [][]float64 `json:"rows"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Rows) != 1 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		hits++
		json.NewEncoder(w).Encode(map[string]any{"model": "stub", "predictions": []float64{1}})
	}))
	defer ts.Close()

	res, err := ServeLoad(ServeOptions{
		URL:      ts.URL,
		Queries:  [][]float64{{1, 2}, {3, 4}},
		Workers:  2,
		Duration: 100 * time.Millisecond,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.QPS <= 0 || res.P50Ms <= 0 || res.P99Ms < res.P50Ms || res.P90Ms < res.P50Ms {
		t.Errorf("throughput/latency = %+v", res)
	}
	if res.DurationSeconds < 0.09 {
		t.Errorf("duration = %v", res.DurationSeconds)
	}
}

func TestServeLoadCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	res, err := ServeLoad(ServeOptions{
		URL:      ts.URL,
		Queries:  [][]float64{{1}},
		Workers:  1,
		Duration: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.Requests != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestServeLoadEmptyPool(t *testing.T) {
	if _, err := ServeLoad(ServeOptions{URL: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("empty query pool accepted")
	}
}

func TestRenderServe(t *testing.T) {
	points := []ServePoint{
		{Model: "knn", Regime: "out-of-core", Batching: "micro", Workers: 4,
			Result: ServeResult{Requests: 800, QPS: 400, P50Ms: 8, P90Ms: 11, P99Ms: 14}, MeanBatchRows: 3.7},
		{Model: "knn", Regime: "out-of-core", Batching: "single", Workers: 4,
			Result: ServeResult{Requests: 200, QPS: 100, P50Ms: 35, P90Ms: 50, P99Ms: 70}, MeanBatchRows: 1},
	}
	var sb strings.Builder
	if err := RenderServe(&sb, points); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"knn (out-of-core)", "micro", "single", "4.00x", "micro-batching"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPercentileBench(t *testing.T) {
	cases := []struct {
		sorted []float64
		q      float64
		want   float64
	}{
		{nil, 0.5, 0},
		{[]float64{5}, 0.1, 5},
		{[]float64{1, 2, 3, 4}, 0.5, 2.5},
		{[]float64{1, 2, 3, 4}, 1, 4},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.q); got != c.want {
			t.Errorf("percentile(%v, %v) = %v, want %v", c.sorted, c.q, got, c.want)
		}
	}
}
