package bench

import (
	"fmt"
	"sync"

	"m3/internal/exec"
	"m3/internal/store"
	"m3/internal/vm"
)

// MultiCoreConfig parameterizes the multi-core out-of-core sweep: the
// paper observes that out-of-core M3 leaves the CPU ~13% utilized on
// an 8-thread machine because the disk is the bottleneck; this
// experiment makes that observation explorable by scanning one paged
// dataset with W parallel workers (per-worker read-ahead streams) and
// modelling elapsed time as max(slowest worker CPU, disk busy).
type MultiCoreConfig struct {
	// Machine is the M3 platform (default PaperPC).
	Machine Machine
	// Workload template; NominalBytes is overridden per point.
	Workload Workload
	// WorkerCounts are the pool sizes to sweep (default 1, 2, 4, 8 —
	// the paper PC has 8 hyperthreads).
	WorkerCounts []int
	// SizesBytes are the nominal dataset sizes; the default spans both
	// regimes around the 32 GB RAM budget.
	SizesBytes []int64
	// Passes counts measured steady-state scans per point (default 10,
	// the paper's iteration budget). One warm-up scan always precedes
	// them so the in-RAM regime is measured warm, like an iterative
	// trainer's steady state.
	Passes int
	// BlockBytes overrides the scan block size (<= 0: exec default).
	// Smaller blocks reduce tail imbalance when ActualRows is small.
	BlockBytes int
}

func (c MultiCoreConfig) withDefaults() (MultiCoreConfig, error) {
	if c.Machine == (Machine{}) {
		c.Machine = PaperPC()
	}
	if len(c.WorkerCounts) == 0 {
		c.WorkerCounts = []int{1, 2, 4, 8}
	}
	if len(c.SizesBytes) == 0 {
		c.SizesBytes = []int64{8e9, 16e9, 28e9, 64e9, 128e9, 190e9}
	}
	if c.Passes <= 0 {
		c.Passes = 10
	}
	if c.Workload.NominalBytes == 0 {
		c.Workload.NominalBytes = 1 // placeholder; overridden per point
	}
	w, err := c.Workload.withDefaults()
	c.Workload = w
	return c, err
}

// MultiCorePoint is one (workers, size) measurement.
type MultiCorePoint struct {
	Workers   int
	SizeBytes int64
	// Seconds is the simulated steady-state elapsed time: the sum over
	// passes of max(slowest worker CPU, disk busy).
	Seconds float64
	// CPUUtil is the busy fraction of the Workers cores; DiskUtil is
	// the device busy fraction.
	CPUUtil  float64
	DiskUtil float64
	// Speedup is elapsed at the sweep's first worker count over this
	// point's elapsed, same size.
	Speedup float64
}

// MultiCore sweeps workers × nominal dataset size over a simulated
// paged store scanned through the shared parallel execution layer,
// with one read-ahead stream per worker. In the in-RAM regime the
// steady-state passes never fault, so elapsed time is the slowest CPU
// track and speedup approaches the worker count; out-of-core every
// pass re-faults the whole dataset, the disk stays the bottleneck and
// extra cores buy almost nothing — the regime where the paper
// measured 100% disk and ~13% CPU utilization.
func MultiCore(cfg MultiCoreConfig) ([]MultiCorePoint, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	data, _ := c.Workload.materialize()

	var out []MultiCorePoint
	for _, size := range c.SizesBytes {
		var base float64
		for i, workers := range c.WorkerCounts {
			pt, err := c.runPoint(data, size, workers)
			if err != nil {
				return nil, fmt.Errorf("bench: multicore at %d bytes, %d workers: %w", size, workers, err)
			}
			if i == 0 {
				base = pt.Seconds
			}
			if pt.Seconds > 0 {
				pt.Speedup = base / pt.Seconds
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// runPoint measures one (size, workers) cell on a fresh paged store.
func (c MultiCoreConfig) runPoint(data []float64, size int64, workers int) (MultiCorePoint, error) {
	w := c.Workload
	ps, err := store.NewPaged(data, store.PagedConfig{
		NominalBytes: size,
		VM:           c.Machine.vmConfig(size),
		ReadOnly:     true,
	})
	if err != nil {
		return MultiCorePoint{}, err
	}
	defer ps.Close()

	// Each scanned row stands for size/ActualRows nominal bytes. Its
	// compute cost is accounted on a CPU track chosen by block ordinal
	// — static striped scheduling, like OpenMP's — rather than by
	// which pool goroutine happened to claim the block: the simulated
	// per-block compute takes ~zero real time, so dynamic claiming
	// reflects the host scheduler, not the modelled machine, and a
	// static assignment keeps the CPU model deterministic.
	cpuPerRow := float64(size) / float64(w.ActualRows) / c.Machine.CPUScanBytesPerSec
	cpu := make([]float64, workers)
	var mu sync.Mutex
	scan := exec.RowScan{
		Store:      ps,
		Rows:       w.ActualRows,
		Cols:       w.Features,
		Stride:     w.Features,
		Workers:    workers,
		BlockBytes: c.BlockBytes,
	}
	trackOf := make(map[int]int) // block Lo -> assigned CPU track
	for i, b := range scan.Blocks() {
		trackOf[b.Lo] = i % workers
	}
	scan.OnBlock = func(_ int, b exec.Block, _ float64) {
		mu.Lock()
		cpu[trackOf[b.Lo]] += float64(b.Len()) * cpuPerRow
		mu.Unlock()
	}
	nop := func(int, []float64) {}

	// Warm-up pass: unmeasured, so the in-RAM regime starts with a hot
	// cache (the trainer steady state) instead of billing the one-off
	// cold load against every worker count.
	if _, err := exec.ForEachRow(scan, nop); err != nil {
		return MultiCorePoint{}, err
	}

	var elapsed, totalCPU, totalDisk float64
	for pass := 0; pass < c.Passes; pass++ {
		for i := range cpu {
			cpu[i] = 0
		}
		stall, err := exec.ForEachRow(scan, nop)
		if err != nil {
			return MultiCorePoint{}, err
		}
		// Per-pass phase model: all worker tracks overlap the disk;
		// the slowest resource sets the pass's wall time, and passes
		// compose sequentially.
		var tl vm.Timeline
		tl.AddDisk(stall)
		for i, t := range cpu {
			tl.AddWorkerCPU(i, t)
			totalCPU += t
		}
		elapsed += tl.Elapsed()
		totalDisk += stall
	}

	pt := MultiCorePoint{Workers: workers, SizeBytes: size, Seconds: elapsed}
	if elapsed > 0 {
		pt.CPUUtil = totalCPU / (elapsed * float64(workers))
		pt.DiskUtil = totalDisk / elapsed
	}
	return pt, nil
}
