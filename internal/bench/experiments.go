package bench

import (
	"fmt"

	"m3/internal/iostats"
	"m3/internal/perfmodel"
)

// Fig1aConfig parameterizes the scaling sweep of Figure 1a.
type Fig1aConfig struct {
	// Machine is the M3 platform (default PaperPC).
	Machine Machine
	// SizesBytes are the dataset sizes; default spans 8–190 GB
	// around the paper's 10 GB–190 GB axis with extra in-RAM points
	// so both regimes can be fitted.
	SizesBytes []int64
	// Workload template; NominalBytes is overridden per point.
	Workload Workload
}

func (c Fig1aConfig) withDefaults() Fig1aConfig {
	if c.Machine == (Machine{}) {
		c.Machine = PaperPC()
	}
	// Note the in-RAM points stay strictly below the 32 GB budget: a
	// dataset exactly the size of RAM already thrashes (the cache
	// cannot hold the last page), so 32 GB behaves out-of-core —
	// the paper's dotted line starts right at the RAM mark.
	if len(c.SizesBytes) == 0 {
		c.SizesBytes = []int64{8e9, 16e9, 24e9, 28e9, 40e9, 70e9, 100e9, 130e9, 160e9, 190e9}
	}
	if c.Workload.NominalBytes == 0 {
		c.Workload.NominalBytes = 1 // placeholder; overridden per point
	}
	return c
}

// Fig1aPoint is one sweep measurement.
type Fig1aPoint struct {
	SizeBytes int64
	Seconds   float64
	Util      iostats.Utilization
	Passes    int
}

// Fig1aResult bundles the sweep with its fitted two-regime model.
type Fig1aResult struct {
	Points []Fig1aPoint
	Model  perfmodel.Model
}

// Fig1a regenerates Figure 1a: logistic regression (10 iterations of
// L-BFGS) across dataset sizes on one machine, plus the
// piecewise-linear fit demonstrating the paper's two-slope linearity.
func Fig1a(cfg Fig1aConfig) (Fig1aResult, error) {
	c := cfg.withDefaults()
	var out Fig1aResult
	pts := make([]perfmodel.Point, 0, len(c.SizesBytes))
	for _, size := range c.SizesBytes {
		w := c.Workload
		w.NominalBytes = size
		rep, err := RunLogRegM3(c.Machine, w)
		if err != nil {
			return Fig1aResult{}, fmt.Errorf("bench: fig1a at %d bytes: %w", size, err)
		}
		out.Points = append(out.Points, Fig1aPoint{
			SizeBytes: size, Seconds: rep.Seconds, Util: rep.Util, Passes: rep.Passes,
		})
		pts = append(pts, perfmodel.Point{SizeBytes: float64(size), Seconds: rep.Seconds})
	}
	model, err := perfmodel.Fit(pts, float64(c.Machine.RAMBytes))
	if err != nil {
		return Fig1aResult{}, err
	}
	out.Model = model
	return out, nil
}

// Fig1bRow is one bar of Figure 1b.
type Fig1bRow struct {
	// System is "M3", "Spark x4" or "Spark x8".
	System string
	// Algorithm is "logreg" or "kmeans".
	Algorithm string
	// Seconds is the simulated runtime of the full job.
	Seconds float64
	// PaperSeconds is the figure's reported value for reference.
	PaperSeconds float64
	// RatioToM3 is Seconds / (M3 Seconds for the same algorithm).
	RatioToM3 float64
}

// PaperFig1bSeconds are the runtimes reported in Figure 1b.
var PaperFig1bSeconds = map[string]map[string]float64{
	"logreg": {"M3": 1950, "Spark x4": 8256, "Spark x8": 2864},
	"kmeans": {"M3": 1164, "Spark x4": 3491, "Spark x8": 1604},
}

// Fig1b regenerates Figure 1b: M3 (one PC) versus 4- and 8-instance
// Spark for logistic regression and k-means at the given workload
// scale (the paper's full dataset: 190 GB).
func Fig1b(machine Machine, w Workload) ([]Fig1bRow, error) {
	type runner struct {
		system string
		run    func(Workload) (Report, error)
	}
	algos := []struct {
		name    string
		runners []runner
	}{
		{"logreg", []runner{
			{"M3", func(w Workload) (Report, error) { return RunLogRegM3(machine, w) }},
			{"Spark x4", func(w Workload) (Report, error) { return RunLogRegSpark(4, w) }},
			{"Spark x8", func(w Workload) (Report, error) { return RunLogRegSpark(8, w) }},
		}},
		{"kmeans", []runner{
			{"M3", func(w Workload) (Report, error) { return RunKMeansM3(machine, w) }},
			{"Spark x4", func(w Workload) (Report, error) { return RunKMeansSpark(4, w) }},
			{"Spark x8", func(w Workload) (Report, error) { return RunKMeansSpark(8, w) }},
		}},
	}

	var rows []Fig1bRow
	for _, algo := range algos {
		var m3Seconds float64
		for _, r := range algo.runners {
			rep, err := r.run(w)
			if err != nil {
				return nil, fmt.Errorf("bench: fig1b %s/%s: %w", algo.name, r.system, err)
			}
			if r.system == "M3" {
				m3Seconds = rep.Seconds
			}
			rows = append(rows, Fig1bRow{
				System:       r.system,
				Algorithm:    algo.name,
				Seconds:      rep.Seconds,
				PaperSeconds: PaperFig1bSeconds[algo.name][r.system],
			})
		}
		for i := range rows {
			if rows[i].Algorithm == algo.name && m3Seconds > 0 {
				rows[i].RatioToM3 = rows[i].Seconds / m3Seconds
			}
		}
	}
	return rows, nil
}

// IOBound regenerates the §3.1 utilization finding: an out-of-core
// logistic regression run whose disk is saturated while the CPU
// idles.
func IOBound(machine Machine, w Workload) (iostats.Utilization, error) {
	rep, err := RunLogRegM3(machine, w)
	if err != nil {
		return iostats.Utilization{}, err
	}
	return rep.Util, nil
}

// Predict regenerates the §4 prediction experiment: fit the runtime
// model on measurements up to trainMaxBytes, then compare predictions
// against actual runs at the held-out sizes. Returns per-size
// (predicted, actual) pairs.
type PredictPoint struct {
	SizeBytes int64
	Predicted float64
	Actual    float64
}

// Predict fits on small sizes and extrapolates to large ones.
func Predict(machine Machine, w Workload, trainSizes, testSizes []int64) ([]PredictPoint, perfmodel.Model, error) {
	var pts []perfmodel.Point
	for _, s := range trainSizes {
		wl := w
		wl.NominalBytes = s
		rep, err := RunLogRegM3(machine, wl)
		if err != nil {
			return nil, perfmodel.Model{}, err
		}
		pts = append(pts, perfmodel.Point{SizeBytes: float64(s), Seconds: rep.Seconds})
	}
	model, err := perfmodel.Fit(pts, float64(machine.RAMBytes))
	if err != nil {
		return nil, perfmodel.Model{}, err
	}
	var out []PredictPoint
	for _, s := range testSizes {
		wl := w
		wl.NominalBytes = s
		rep, err := RunLogRegM3(machine, wl)
		if err != nil {
			return nil, perfmodel.Model{}, err
		}
		out = append(out, PredictPoint{
			SizeBytes: s,
			Predicted: model.Predict(float64(s)),
			Actual:    rep.Seconds,
		})
	}
	return out, model, nil
}
