package bench

import (
	"context"

	"fmt"
	"io"
	"text/tabwriter"

	"m3/internal/mat"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/logreg"
	"m3/internal/optimize"
	"m3/internal/store"
	"m3/internal/trace"
)

// LocalityReport characterizes one algorithm's recorded access
// pattern — the paper's §4 locality study, produced by instrumenting
// the real implementations rather than by assumption.
type LocalityReport struct {
	// Algorithm is "logreg" or "kmeans".
	Algorithm string
	// References is the recorded page-touch count.
	References int
	// WorkingSetPages is the distinct page count.
	WorkingSetPages int
	// SequentialFraction is the same/successor-page reference share.
	SequentialFraction float64
	// Curve is the exact LRU miss-ratio at cache sizes expressed as
	// fractions of the working set.
	Curve []trace.MissRatioPoint
	// KneeFraction is the cache size (as a fraction of the working
	// set) at which the miss ratio first falls below 50% — the
	// predicted RAM requirement for in-memory behaviour.
	KneeFraction float64
}

// Locality records page-access traces of logistic regression and
// k-means over an instrumented store, then derives their locality
// profile and miss-ratio curves. Everything comes from one
// small-scale run per algorithm; Mattson analysis extrapolates to
// every cache size at once.
func Locality(w Workload) ([]LocalityReport, error) {
	w, err := w.withDefaults()
	if err != nil {
		return nil, err
	}
	data, y := w.materialize()

	record := func(name string, run func(x *mat.Dense) error) (LocalityReport, error) {
		cp := make([]float64, len(data))
		copy(cp, data)
		rec := trace.NewRecorder(store.FromSlice(cp), 4096)
		x, err := mat.NewDenseStore(rec, w.ActualRows, w.Features)
		if err != nil {
			return LocalityReport{}, err
		}
		if err := run(x); err != nil {
			return LocalityReport{}, err
		}
		tr := rec.Trace()
		if tr.Len() == 0 {
			return LocalityReport{}, fmt.Errorf("bench: %s recorded no references", name)
		}
		ws := int64(tr.DistinctPages())
		sizes := []int64{
			max64(1, ws/8), max64(1, ws/4), max64(1, ws/2),
			max64(1, ws*3/4), ws, ws * 2,
		}
		curve, err := tr.MissRatioCurve(sizes)
		if err != nil {
			return LocalityReport{}, err
		}
		knee := trace.KneePages(curve, 0.5)
		return LocalityReport{
			Algorithm:          name,
			References:         tr.Len(),
			WorkingSetPages:    int(ws),
			SequentialFraction: tr.SequentialFraction(),
			Curve:              curve,
			KneeFraction:       float64(knee) / float64(ws),
		}, nil
	}

	logregRep, err := record("logreg", func(x *mat.Dense) error {
		obj, err := logreg.NewObjective(x, y, 1e-4, true)
		if err != nil {
			return err
		}
		_, err = optimize.LBFGS(context.Background(), obj, make([]float64, obj.Dim()), optimize.LBFGSParams{
			MaxIterations: 3, GradTol: 1e-12,
		})
		return err
	})
	if err != nil {
		return nil, err
	}

	kmeansRep, err := record("kmeans", func(x *mat.Dense) error {
		_, err := kmeans.Run(context.Background(), x, kmeans.Options{
			K: w.K, MaxIterations: 3,
			InitCentroids:    w.InitialCentroids(),
			RunAllIterations: true,
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	return []LocalityReport{logregRep, kmeansRep}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RenderLocality writes the locality study as tables.
func RenderLocality(w io.Writer, reports []LocalityReport) error {
	for _, r := range reports {
		fmt.Fprintf(w, "%s: %d page references, working set %d pages, sequential fraction %.3f\n",
			r.Algorithm, r.References, r.WorkingSetPages, r.SequentialFraction)
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  cache (x working set)\tmiss ratio")
		for _, p := range r.Curve {
			fmt.Fprintf(tw, "  %.2f\t%.3f\n", float64(p.CachePages)/float64(r.WorkingSetPages), p.MissRatio)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(w, "  → in-memory behaviour predicted at cache >= %.2fx working set\n\n", r.KneeFraction)
	}
	return nil
}
