package bench

import (
	"context"

	"fmt"

	"m3/internal/infimnist"
	"m3/internal/iostats"
	"m3/internal/mat"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/logreg"
	"m3/internal/optimize"
	"m3/internal/store"
	"m3/internal/vm"
)

// Workload fixes the training configuration shared by M3 and Spark
// runs so comparisons are apples-to-apples.
type Workload struct {
	// NominalBytes is the modelled dataset size (e.g. 190e9).
	NominalBytes int64
	// ActualRows is the scaled-down row count the math really runs
	// on (default 512).
	ActualRows int
	// Features per row (default 784, Infimnist).
	Features int
	// Iterations of the algorithm (the paper: 10).
	Iterations int
	// K is the k-means cluster count (the paper: 5).
	K int
	// Seed drives data generation and k-means init.
	Seed uint64
}

func (w Workload) withDefaults() (Workload, error) {
	if w.NominalBytes <= 0 {
		return w, fmt.Errorf("bench: non-positive nominal size")
	}
	if w.ActualRows <= 0 {
		w.ActualRows = 512
	}
	if w.Features <= 0 {
		w.Features = infimnist.Features
	}
	if w.Iterations <= 0 {
		w.Iterations = 10
	}
	if w.K <= 0 {
		w.K = 5
	}
	return w, nil
}

// materialize renders the scaled-down matrix and binary labels
// (digit 0 vs rest, so logistic regression has a real signal).
func (w Workload) materialize() (x []float64, yBinary []float64) {
	g := infimnist.Generator{Seed: w.Seed}
	var labels []float64
	x, labels = g.Matrix(0, int64(w.ActualRows))
	yBinary = make([]float64, w.ActualRows)
	for i, v := range labels {
		if v == 0 {
			yBinary[i] = 1
		}
	}
	return x, yBinary
}

// InitialCentroids returns deterministic K×D starting centroids for
// k-means (sampled rows), shared by the M3 and Spark runs.
func (w Workload) InitialCentroids() *mat.Dense {
	g := infimnist.Generator{Seed: w.Seed + 1}
	c := mat.NewDense(w.K, w.Features)
	row := make([]float64, infimnist.Features)
	for k := 0; k < w.K; k++ {
		g.Fill(row, int64(k*7+1))
		c.SetRow(k, row[:w.Features])
	}
	return c
}

// Report is the outcome of one simulated run.
type Report struct {
	// Name labels the run ("M3", "Spark x4", ...).
	Name string
	// Seconds is the simulated elapsed time.
	Seconds float64
	// Passes counts full scans over the data.
	Passes int
	// Util is the resource-utilization profile (M3 runs only).
	Util iostats.Utilization
	// Model quality numbers for cross-run validation.
	FinalValue float64
}

// pagedMatrix builds the nominally-sized paged store over the actual
// matrix.
func pagedMatrix(machine Machine, w Workload, data []float64) (*mat.Dense, *store.Paged, error) {
	ps, err := store.NewPaged(data, store.PagedConfig{
		NominalBytes: w.NominalBytes,
		VM:           machine.vmConfig(w.NominalBytes),
		ReadOnly:     true,
	})
	if err != nil {
		return nil, nil, err
	}
	x, err := mat.NewDenseStore(ps, w.ActualRows, w.Features)
	if err != nil {
		return nil, nil, err
	}
	// The paper's timed runs are modelled as one scanner: a single
	// stream keeps the simulated timings exactly deterministic, which
	// the figure-regeneration suite (and the runtime-prediction fits)
	// rely on. The multicore experiment opts into parallel faulting
	// explicitly with per-worker streams.
	x.SetWorkersHint(1)
	return x, ps, nil
}

// finishReport folds CPU accounting into the store's timeline and
// produces the report. CPU seconds = passes × nominal bytes / scan
// throughput: each pass streams the full nominal dataset through the
// inner loop.
func finishReport(name string, machine Machine, w Workload, ps *store.Paged, passes int, finalValue float64) Report {
	tl := ps.Timeline()
	cpu := float64(passes) * float64(w.NominalBytes) / machine.CPUScanBytesPerSec
	tl.AddCPU(cpu)
	return Report{
		Name:       name,
		Seconds:    tl.Elapsed(),
		Passes:     passes,
		Util:       iostats.FromTimeline(tl),
		FinalValue: finalValue,
	}
}

// RunLogRegM3 trains logistic regression (L-BFGS, w.Iterations) on a
// nominally-sized paged dataset and reports simulated time.
func RunLogRegM3(machine Machine, w Workload) (Report, error) {
	w, err := w.withDefaults()
	if err != nil {
		return Report{}, err
	}
	data, y := w.materialize()
	x, ps, err := pagedMatrix(machine, w, data)
	if err != nil {
		return Report{}, err
	}
	obj, err := logreg.NewObjective(x, y, 1e-4, true)
	if err != nil {
		return Report{}, err
	}
	res, err := optimize.LBFGS(context.Background(), obj, make([]float64, obj.Dim()), optimize.LBFGSParams{
		MaxIterations: w.Iterations,
		GradTol:       1e-12, // run the full iteration budget, like the paper
	})
	if err != nil {
		return Report{}, err
	}
	return finishReport("M3", machine, w, ps, obj.Scans, res.Value), nil
}

// RunKMeansM3 runs w.Iterations of Lloyd k-means on a nominally-sized
// paged dataset.
func RunKMeansM3(machine Machine, w Workload) (Report, error) {
	w, err := w.withDefaults()
	if err != nil {
		return Report{}, err
	}
	data, _ := w.materialize()
	x, ps, err := pagedMatrix(machine, w, data)
	if err != nil {
		return Report{}, err
	}
	res, err := kmeans.Run(context.Background(), x, kmeans.Options{
		K:                w.K,
		MaxIterations:    w.Iterations,
		InitCentroids:    w.InitialCentroids(),
		RunAllIterations: true, // the paper's fixed 10-iteration protocol
	})
	if err != nil {
		return Report{}, err
	}
	return finishReport("M3", machine, w, ps, res.Scans, res.Inertia), nil
}

// RunAccessPattern compares a sequential scan to random page access
// at the same volume — the paper's §4 locality study. It drives the
// virtual-memory simulator directly at true page (4 KiB) granularity:
// the sequential pass enjoys read-ahead batching, the random pass
// pays a seek plus per-request overhead for every page. Both touch
// exactly the same number of pages per pass.
//
// The study runs at a reduced absolute scale (2 GB dataset, 512 MB
// RAM: the same 4x out-of-core ratio as 128 GB against 32 GB) so the
// page-level simulation stays tractable; the penalty ratio depends on
// the page size and disk latencies, not on the absolute scale.
func RunAccessPattern(machine Machine, w Workload, passes int) (sequential, random Report, err error) {
	w, err = w.withDefaults()
	if err != nil {
		return Report{}, Report{}, err
	}
	const (
		studyBytes = int64(2 << 30)
		studyRAM   = int64(512 << 20)
		pageSize   = int64(4096)
	)
	pages := studyBytes / pageSize

	run := func(name string, pageAt func(pass, i int64) int64) (Report, error) {
		mem, err := vm.NewMemory(studyBytes, vm.Config{
			PageSize:   pageSize,
			CacheBytes: studyRAM,
			Disk:       machine.Disk,
		})
		if err != nil {
			return Report{}, err
		}
		var tl vm.Timeline
		for p := 0; p < passes; p++ {
			for i := int64(0); i < pages; i++ {
				tl.AddDisk(mem.Touch(pageAt(int64(p), i)*pageSize, 1))
			}
		}
		tl.AddCPU(float64(passes) * float64(studyBytes) / machine.CPUScanBytesPerSec)
		return Report{
			Name:    name,
			Seconds: tl.Elapsed(),
			Passes:  passes,
			Util:    iostats.FromTimeline(&tl),
		}, nil
	}

	sequential, err = run("sequential", func(_, i int64) int64 { return i })
	if err != nil {
		return Report{}, Report{}, err
	}
	// Deterministic pseudo-random permutation by multiplicative
	// stride (odd stride is coprime with the power-of-two page
	// count, so each pass visits every page exactly once).
	const stride = 2654435761 // Knuth's multiplicative-hash constant, odd
	random, err = run("random", func(p, i int64) int64 {
		return ((i + p) * stride) & (pages - 1)
	})
	if err != nil {
		return Report{}, Report{}, err
	}
	return sequential, random, nil
}

// RAMAblation reruns the logistic-regression workload across RAM
// budgets at a fixed dataset size — the Figure 1a knee viewed from
// the other axis. Runtime collapses once the budget exceeds the
// dataset: the cheapest "scale-up" is often just more DIMMs.
func RAMAblation(w Workload, ramBytes []int64) ([]Report, error) {
	out := make([]Report, 0, len(ramBytes))
	for _, ram := range ramBytes {
		machine := PaperPC()
		machine.RAMBytes = ram
		rep, err := RunLogRegM3(machine, w)
		if err != nil {
			return nil, fmt.Errorf("bench: ram ablation at %d: %w", ram, err)
		}
		rep.Name = fmt.Sprintf("ram=%dGB", ram/1e9)
		out = append(out, rep)
	}
	return out, nil
}

// ReadAheadAblation measures what kernel-style sequential read-ahead
// is worth: the same out-of-core sequential scans (2 GiB data,
// 512 MiB cache, 4 KiB pages) with the adaptive read-ahead window
// enabled versus disabled (window pinned to one page). Read-ahead
// amortizes per-request overhead across up to 512 pages, which is
// most of why M3's sequential scans run at device bandwidth.
func ReadAheadAblation(machine Machine, passes int) (with, without Report, err error) {
	const (
		studyBytes = int64(2 << 30)
		studyRAM   = int64(512 << 20)
		pageSize   = int64(4096)
	)
	run := func(name string, maxRA int) (Report, error) {
		mem, err := vm.NewMemory(studyBytes, vm.Config{
			PageSize:          pageSize,
			CacheBytes:        studyRAM,
			Disk:              machine.Disk,
			MinReadAheadPages: 1,
			MaxReadAheadPages: maxRA,
		})
		if err != nil {
			return Report{}, err
		}
		var tl vm.Timeline
		for p := 0; p < passes; p++ {
			tl.AddDisk(mem.Touch(0, studyBytes))
		}
		tl.AddCPU(float64(passes) * float64(studyBytes) / machine.CPUScanBytesPerSec)
		return Report{
			Name:    name,
			Seconds: tl.Elapsed(),
			Passes:  passes,
			Util:    iostats.FromTimeline(&tl),
		}, nil
	}
	with, err = run("readahead", 512)
	if err != nil {
		return Report{}, Report{}, err
	}
	without, err = run("no-readahead", 1)
	if err != nil {
		return Report{}, Report{}, err
	}
	return with, without, nil
}

// DiskAblation reruns logistic regression across disk models (HDD,
// SSD, RAID0 stripes) to quantify the paper's "faster disks would
// lift M3" claim.
func DiskAblation(w Workload) (map[string]Report, error) {
	disks := map[string]vm.DiskModel{
		"hdd":     vm.HDD(),
		"ssd":     vm.SSD(),
		"raid0x2": vm.RAID0(vm.SSD(), 2),
		"raid0x4": vm.RAID0(vm.SSD(), 4),
	}
	out := make(map[string]Report, len(disks))
	for name, d := range disks {
		rep, err := RunLogRegM3(PaperPC().WithDisk(d), w)
		if err != nil {
			return nil, fmt.Errorf("bench: disk ablation %s: %w", name, err)
		}
		rep.Name = name
		out[name] = rep
	}
	return out, nil
}
