package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// RenderFig1a writes the scaling sweep as a table plus an ASCII
// series, in the spirit of the paper's Figure 1a.
func RenderFig1a(w io.Writer, res Fig1aResult, ramBytes int64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\truntime (s)\tdisk util\tcpu util\tregime")
	var maxSec float64
	for _, p := range res.Points {
		if p.Seconds > maxSec {
			maxSec = p.Seconds
		}
	}
	for _, p := range res.Points {
		regime := "in-RAM"
		if p.SizeBytes > ramBytes {
			regime = "out-of-core"
		}
		fmt.Fprintf(tw, "%dG\t%.0f\t%.0f%%\t%.0f%%\t%s\n",
			p.SizeBytes/1e9, p.Seconds, p.Util.DiskPercent(), p.Util.CPUPercent(), regime)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	// ASCII bar series.
	for _, p := range res.Points {
		bar := 0
		if maxSec > 0 {
			bar = int(50 * p.Seconds / maxSec)
		}
		marker := " "
		if p.SizeBytes > ramBytes {
			marker = "*" // out-of-core
		}
		fmt.Fprintf(w, "%4dG |%s%s %.0fs\n", p.SizeBytes/1e9, strings.Repeat("#", bar), marker, p.Seconds)
	}
	fmt.Fprintf(w, "\nfit: %s\n", res.Model)
	return nil
}

// RenderFig1b writes the comparison table of Figure 1b with the
// paper's reference numbers alongside.
func RenderFig1b(w io.Writer, rows []Fig1bRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tsystem\truntime (s)\tx of M3\tpaper (s)\tpaper x of M3")
	for _, r := range rows {
		paperRatio := 0.0
		if m3 := PaperFig1bSeconds[r.Algorithm]["M3"]; m3 > 0 {
			paperRatio = r.PaperSeconds / m3
		}
		fmt.Fprintf(tw, "%s\t%s\t%.0f\t%.2f\t%.0f\t%.2f\n",
			r.Algorithm, r.System, r.Seconds, r.RatioToM3, r.PaperSeconds, paperRatio)
	}
	return tw.Flush()
}

// RenderReports writes a generic named-runtimes table sorted by name.
func RenderReports(w io.Writer, reports map[string]Report) error {
	names := make([]string, 0, len(reports))
	for n := range reports {
		names = append(names, n)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\truntime (s)\tpasses\tdisk util\tcpu util")
	for _, n := range names {
		r := reports[n]
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%.0f%%\t%.0f%%\n",
			n, r.Seconds, r.Passes, r.Util.DiskPercent(), r.Util.CPUPercent())
	}
	return tw.Flush()
}

// RenderEnergy writes the energy comparison table.
func RenderEnergy(w io.Writer, rows []EnergyRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "system\truntime (s)\tenergy (kWh)\tx of M3")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.0f\t%.3f\t%.1f\n", r.System, r.Seconds, r.KWh, r.RatioToM3)
	}
	return tw.Flush()
}

// RenderMultiCore writes the workers × size sweep grouped by size, so
// each group reads as "what did extra cores buy at this scale".
func RenderMultiCore(w io.Writer, points []MultiCorePoint, ramBytes int64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\tworkers\truntime (s)\tcpu util\tdisk util\tspeedup\tregime")
	var lastSize int64 = -1
	for _, p := range points {
		if lastSize >= 0 && p.SizeBytes != lastSize {
			fmt.Fprintln(tw, "\t\t\t\t\t\t")
		}
		lastSize = p.SizeBytes
		regime := "in-RAM"
		if p.SizeBytes > ramBytes {
			regime = "out-of-core"
		}
		fmt.Fprintf(tw, "%dG\t%d\t%.0f\t%.0f%%\t%.0f%%\t%.2fx\t%s\n",
			p.SizeBytes/1e9, p.Workers, p.Seconds,
			100*p.CPUUtil, 100*p.DiskUtil, p.Speedup, regime)
	}
	return tw.Flush()
}

// RenderPredict writes the prediction-vs-actual table.
func RenderPredict(w io.Writer, points []PredictPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size\tpredicted (s)\tactual (s)\terror")
	for _, p := range points {
		errPct := 0.0
		if p.Actual > 0 {
			errPct = 100 * (p.Predicted - p.Actual) / p.Actual
		}
		fmt.Fprintf(tw, "%dG\t%.0f\t%.0f\t%+.1f%%\n", p.SizeBytes/1e9, p.Predicted, p.Actual, errPct)
	}
	return tw.Flush()
}
