// Package bench is the experiment harness that regenerates every
// table and figure of the paper's evaluation:
//
//	Figure 1a — M3 runtime vs dataset size (10–190 GB, RAM = 32 GB)
//	Figure 1b — M3 vs 4- and 8-instance Spark, logreg and k-means
//	Table 1   — exercised by examples/quickstart (API surface)
//	§3.1      — I/O-bound utilization report
//	§4        — access-pattern study and runtime prediction
//
// Simulated runs execute the real algorithms (L-BFGS logistic
// regression, Lloyd k-means) on a scaled-down matrix while paging and
// cluster costs are accounted at nominal (paper) scale; see DESIGN.md
// for why this preserves the paper's runtime structure.
package bench

import (
	"m3/internal/vm"
)

// Machine describes the single-PC platform M3 runs on. The paper's
// desktop: Intel i7-4770K (8 hyperthreads), 32 GB RAM, OCZ RevoDrive
// 350 PCIe SSD.
type Machine struct {
	// RAMBytes is the page-cache budget (32 GB in the paper).
	RAMBytes int64
	// Disk models the storage device.
	Disk vm.DiskModel
	// CPUScanBytesPerSec is the aggregate throughput of the ML inner
	// loop over resident data. Calibrated so that out-of-core runs
	// show ≈13% CPU utilization against the saturated disk, matching
	// the paper's observation (§3.1).
	CPUScanBytesPerSec float64
}

// PaperPC returns the paper's experiment machine.
func PaperPC() Machine {
	return Machine{
		RAMBytes:           32e9,
		Disk:               vm.SSD(),
		CPUScanBytesPerSec: 12.6e9,
	}
}

// WithDisk returns a copy of the machine with a different disk — the
// paper's "faster disks or RAID 0" speculation, used by ablations.
func (m Machine) WithDisk(d vm.DiskModel) Machine {
	m.Disk = d
	return m
}

// vmConfig builds the simulated-memory configuration for a nominal
// dataset size. Page size scales with the dataset (~64Ki pages per
// sweep point) to keep simulation cost flat across 10–190 GB.
func (m Machine) vmConfig(nominalBytes int64) vm.Config {
	page := nominalBytes / (64 << 10)
	if page < 4096 {
		page = 4096
	}
	return vm.Config{
		PageSize:   page,
		CacheBytes: m.RAMBytes,
		Disk:       m.Disk,
	}
}
