package bench

import (
	"fmt"

	"m3/internal/perfmodel"
)

// EnergyRow is one system's energy estimate for the Figure 1b
// logistic-regression job.
type EnergyRow struct {
	// System is "M3", "Spark x4" or "Spark x8".
	System string
	// Seconds is the job runtime.
	Seconds float64
	// Joules is the estimated energy.
	Joules float64
	// KWh is Joules in kilowatt-hours.
	KWh float64
	// RatioToM3 is Joules / M3 Joules.
	RatioToM3 float64
}

// Spark executor utilization during iterative ML jobs is mixed scan
// and compute; these coarse busy fractions follow the cost model's
// warm-iteration split at 190 GB (≈69 % of partitions compute-paced).
const (
	sparkCPUBusyFrac  = 0.6
	sparkDiskBusyFrac = 0.3
)

// Energy extends the Figure 1b comparison to the paper's §4 goal of
// predicting "energy usage": the same logreg job costed under a
// desktop power model (M3) and a per-server model times the cluster
// size (Spark). The cluster pays idle draw on every instance for the
// whole job — the structural reason scale-out loses on energy even
// when it ties on time.
func Energy(machine Machine, w Workload) ([]EnergyRow, error) {
	m3rep, err := RunLogRegM3(machine, w)
	if err != nil {
		return nil, err
	}
	desktop := perfmodel.DesktopPower()
	m3J := desktop.EnergyJoules(m3rep.Seconds, m3rep.Util.CPUSeconds, m3rep.Util.DiskSeconds)

	rows := []EnergyRow{{
		System:  "M3",
		Seconds: m3rep.Seconds,
		Joules:  m3J,
		KWh:     m3J / 3.6e6,
	}}
	server := perfmodel.ServerPower()
	for _, n := range []int{4, 8} {
		rep, err := RunLogRegSpark(n, w)
		if err != nil {
			return nil, err
		}
		j := perfmodel.ClusterEnergyJoules(server, n, rep.Seconds, sparkCPUBusyFrac, sparkDiskBusyFrac)
		rows = append(rows, EnergyRow{
			System:  fmt.Sprintf("Spark x%d", n),
			Seconds: rep.Seconds,
			Joules:  j,
			KWh:     j / 3.6e6,
		})
	}
	for i := range rows {
		rows[i].RatioToM3 = rows[i].Joules / m3J
	}
	return rows, nil
}
