package bench

// Fusion experiment shapes: the runner lives in cmd/m3bench (it
// drives the public pipeline API, which this package cannot import —
// the root package's tests import bench), while the record layout and
// rendering live here with the other experiments.

import (
	"fmt"
	"io"
)

// FusionPoint is one measured pipeline fit: a (mode, variant) cell of
// the fused-vs-eager comparison.
type FusionPoint struct {
	// Mode is the storage regime: "in-ram" or "out-of-core".
	Mode string
	// Pipeline names the chain and final estimator, e.g.
	// "scale→minmax→pca→logreg".
	Pipeline string
	// Variant is "fused" (Pipeline.Fit) or "eager" (materialize every
	// stage — the pre-fusion behavior).
	Variant string
	// SizeBytes is the source dataset size.
	SizeBytes int64
	// WallSeconds is the wall-clock fit time.
	WallSeconds float64
	// HeapAllocBytes is the Go heap allocated during the fit
	// (runtime TotalAlloc delta).
	HeapAllocBytes int64
	// ScratchAllocs and ScratchBytes count engine intermediate
	// materializations (core.ScratchStats delta).
	ScratchAllocs int64
	ScratchBytes  int64
	// Materializations is the pipeline-reported intermediate count.
	Materializations int
}

// RenderFusion prints the fused-vs-eager table, one block per
// (mode, pipeline) group, with speedup and scratch-reduction summary
// lines per group.
func RenderFusion(w io.Writer, points []FusionPoint) error {
	type key struct{ mode, pipeline string }
	groups := make(map[key][]FusionPoint)
	var order []key
	for _, p := range points {
		k := key{p.Mode, p.Pipeline}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], p)
	}
	for _, k := range order {
		g := groups[k]
		if _, err := fmt.Fprintf(w, "%s, %s (%.1f MB source):\n", k.mode, k.pipeline, float64(g[0].SizeBytes)/1e6); err != nil {
			return err
		}
		var fused, eager *FusionPoint
		for i := range g {
			p := &g[i]
			if _, err := fmt.Fprintf(w, "  %-6s %9.3fs  heap %8.1f MB  scratch %d allocs / %8.1f MB  materializations %d\n",
				p.Variant, p.WallSeconds, float64(p.HeapAllocBytes)/1e6,
				p.ScratchAllocs, float64(p.ScratchBytes)/1e6, p.Materializations); err != nil {
				return err
			}
			switch p.Variant {
			case "fused":
				fused = p
			case "eager":
				eager = p
			}
		}
		if fused != nil && eager != nil && fused.WallSeconds > 0 {
			reduction := "all"
			if eager.ScratchBytes > 0 {
				reduction = fmt.Sprintf("%.0f%%", 100*(1-float64(fused.ScratchBytes)/float64(eager.ScratchBytes)))
			}
			if _, err := fmt.Fprintf(w, "  → fused: %.2fx wall, %s less scratch, %d vs %d materializations\n",
				eager.WallSeconds/fused.WallSeconds, reduction,
				fused.Materializations, eager.Materializations); err != nil {
				return err
			}
		}
	}
	return nil
}
