package bench

import (
	"strings"
	"testing"
)

// smallWorkload keeps simulated runs fast: 128 real rows.
func smallWorkload(nominal int64) Workload {
	return Workload{NominalBytes: nominal, ActualRows: 128, Seed: 3}
}

func TestRunLogRegM3OutOfCoreIsIOBound(t *testing.T) {
	rep, err := RunLogRegM3(PaperPC(), smallWorkload(190e9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passes < 10 {
		t.Errorf("passes = %d, want >= 10 (one per iteration)", rep.Passes)
	}
	if !rep.Util.IOBound() {
		t.Errorf("out-of-core run not I/O bound: %s", rep.Util)
	}
	// §3.1: CPU around 13%.
	if cpu := rep.Util.CPUPercent(); cpu < 5 || cpu > 30 {
		t.Errorf("CPU utilization = %.0f%%, paper observed ≈13%%", cpu)
	}
	if disk := rep.Util.DiskPercent(); disk < 95 {
		t.Errorf("disk utilization = %.0f%%, paper observed ≈100%%", disk)
	}
}

func TestRunLogRegM3InRAMIsCPUBound(t *testing.T) {
	rep, err := RunLogRegM3(PaperPC(), smallWorkload(8e9))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Util.IOBound() {
		t.Errorf("in-RAM run classified I/O bound: %s", rep.Util)
	}
	if rep.Util.CPUPercent() < 90 {
		t.Errorf("in-RAM CPU utilization = %.0f%%, want ~100%%", rep.Util.CPUPercent())
	}
}

func TestRunKMeansM3(t *testing.T) {
	w := smallWorkload(190e9)
	rep, err := RunKMeansM3(PaperPC(), w)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passes != w.Iterations && rep.Passes != 10 {
		t.Errorf("passes = %d, want 10 (one scan per Lloyd iteration)", rep.Passes)
	}
	if !rep.Util.IOBound() {
		t.Errorf("out-of-core k-means not I/O bound: %s", rep.Util)
	}
}

func TestWorkloadValidation(t *testing.T) {
	if _, err := RunLogRegM3(PaperPC(), Workload{}); err == nil {
		t.Error("accepted zero workload")
	}
}

func TestFig1aShape(t *testing.T) {
	res, err := Fig1a(Fig1aConfig{Workload: Workload{ActualRows: 128, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 10 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Runtime grows monotonically with size.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Seconds <= res.Points[i-1].Seconds {
			t.Errorf("runtime not increasing at %dG: %v -> %v",
				res.Points[i].SizeBytes/1e9, res.Points[i-1].Seconds, res.Points[i].Seconds)
		}
	}
	// Both regimes linear (paper finding 1).
	if res.Model.InRAM.R2 < 0.98 {
		t.Errorf("in-RAM R² = %v", res.Model.InRAM.R2)
	}
	if res.Model.OutOfCore.R2 < 0.98 {
		t.Errorf("out-of-core R² = %v", res.Model.OutOfCore.R2)
	}
	// Out-of-core slope is steeper, substantially.
	if r := res.Model.SlopeRatio(); r < 2 {
		t.Errorf("slope ratio = %v, want > 2 (paper shows a marked kink)", r)
	}
}

func TestFig1bShape(t *testing.T) {
	rows, err := Fig1b(PaperPC(), smallWorkload(190e9))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d want 6", len(rows))
	}
	get := func(algo, sys string) Fig1bRow {
		for _, r := range rows {
			if r.Algorithm == algo && r.System == sys {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", algo, sys)
		return Fig1bRow{}
	}

	// Paper finding 2, logistic regression: M3 beats 8x Spark by
	// ~30%, and 4x Spark is ~4.2x slower than M3.
	lr4 := get("logreg", "Spark x4")
	lr8 := get("logreg", "Spark x8")
	if lr8.RatioToM3 < 1.1 || lr8.RatioToM3 > 2.0 {
		t.Errorf("logreg Spark x8 / M3 = %.2f, paper ≈ 1.47", lr8.RatioToM3)
	}
	if lr4.RatioToM3 < 3 || lr4.RatioToM3 > 6 {
		t.Errorf("logreg Spark x4 / M3 = %.2f, paper ≈ 4.2", lr4.RatioToM3)
	}

	// k-means: 8x comparable (paper 1.37x), 4x more than 2x slower.
	km4 := get("kmeans", "Spark x4")
	km8 := get("kmeans", "Spark x8")
	if km8.RatioToM3 < 1.0 || km8.RatioToM3 > 2.0 {
		t.Errorf("kmeans Spark x8 / M3 = %.2f, paper ≈ 1.37", km8.RatioToM3)
	}
	if km4.RatioToM3 < 2 {
		t.Errorf("kmeans Spark x4 / M3 = %.2f, paper ≈ 3.0 (>2 required)", km4.RatioToM3)
	}

	// Ordering: M3 < Spark x8 < Spark x4 for both algorithms.
	for _, algo := range []string{"logreg", "kmeans"} {
		m3 := get(algo, "M3")
		s8 := get(algo, "Spark x8")
		s4 := get(algo, "Spark x4")
		if !(m3.Seconds < s8.Seconds && s8.Seconds < s4.Seconds) {
			t.Errorf("%s ordering violated: M3 %.0f, x8 %.0f, x4 %.0f",
				algo, m3.Seconds, s8.Seconds, s4.Seconds)
		}
	}
}

func TestIOBoundExperiment(t *testing.T) {
	util, err := IOBound(PaperPC(), smallWorkload(190e9))
	if err != nil {
		t.Fatal(err)
	}
	if !util.IOBound() {
		t.Errorf("not I/O bound: %s", util)
	}
}

func TestAccessPatternSequentialWins(t *testing.T) {
	seq, rnd, err := RunAccessPattern(PaperPC(), smallWorkload(190e9), 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Seconds >= rnd.Seconds {
		t.Errorf("sequential (%.0fs) not faster than random (%.0fs)", seq.Seconds, rnd.Seconds)
	}
	// Random 4 KiB access pays a seek per page against read-ahead
	// batching; the penalty should be substantial.
	if ratio := rnd.Seconds / seq.Seconds; ratio < 5 {
		t.Errorf("random/sequential penalty = %.1fx, want >= 5x", ratio)
	}
}

func TestPredictExtrapolates(t *testing.T) {
	w := Workload{ActualRows: 128, Seed: 3}
	train := []int64{8e9, 16e9, 24e9, 40e9, 60e9, 80e9}
	test := []int64{120e9, 190e9}
	points, model, err := Predict(PaperPC(), w, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if model.OutOfCore.N != 3 {
		t.Errorf("out-of-core training points = %d", model.OutOfCore.N)
	}
	for _, p := range points {
		errFrac := (p.Predicted - p.Actual) / p.Actual
		if errFrac < -0.15 || errFrac > 0.15 {
			t.Errorf("prediction at %dG off by %.0f%% (pred %.0f, actual %.0f)",
				p.SizeBytes/1e9, 100*errFrac, p.Predicted, p.Actual)
		}
	}
}

func TestLocalityStudy(t *testing.T) {
	reports, err := Locality(Workload{NominalBytes: 1, ActualRows: 96, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		// Both algorithms are scan workloads: near-perfectly
		// sequential, with the LRU cliff at the full working set.
		if r.SequentialFraction < 0.95 {
			t.Errorf("%s sequential fraction = %v", r.Algorithm, r.SequentialFraction)
		}
		if r.KneeFraction != 1 {
			t.Errorf("%s knee = %vx working set, want exactly 1 (cyclic scan)", r.Algorithm, r.KneeFraction)
		}
		if r.WorkingSetPages <= 0 || r.References <= r.WorkingSetPages {
			t.Errorf("%s suspicious counts: %d refs, %d pages", r.Algorithm, r.References, r.WorkingSetPages)
		}
		// Monotone curve with a drop at the knee.
		last := r.Curve[len(r.Curve)-1].MissRatio
		first := r.Curve[0].MissRatio
		if !(last < first) {
			t.Errorf("%s curve flat: %v .. %v", r.Algorithm, first, last)
		}
	}
	var sb strings.Builder
	if err := RenderLocality(&sb, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "working set") {
		t.Error("locality render missing content")
	}
}

func TestEnergyComparison(t *testing.T) {
	rows, err := Energy(PaperPC(), smallWorkload(190e9))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].System != "M3" || rows[0].RatioToM3 != 1 {
		t.Errorf("first row = %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.RatioToM3 < 5 {
			t.Errorf("%s energy only %.1fx of M3; clusters should burn far more", r.System, r.RatioToM3)
		}
		if r.Joules <= 0 || r.KWh <= 0 {
			t.Errorf("%s non-positive energy", r.System)
		}
	}
	var sb strings.Builder
	if err := RenderEnergy(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "kWh") {
		t.Error("energy table missing header")
	}
}

func TestDiskAblationOrdering(t *testing.T) {
	reports, err := DiskAblation(smallWorkload(190e9))
	if err != nil {
		t.Fatal(err)
	}
	if !(reports["hdd"].Seconds > reports["ssd"].Seconds) {
		t.Errorf("hdd (%.0f) not slower than ssd (%.0f)", reports["hdd"].Seconds, reports["ssd"].Seconds)
	}
	if !(reports["ssd"].Seconds > reports["raid0x2"].Seconds) {
		t.Errorf("ssd (%.0f) not slower than raid0x2 (%.0f)", reports["ssd"].Seconds, reports["raid0x2"].Seconds)
	}
	if !(reports["raid0x2"].Seconds >= reports["raid0x4"].Seconds) {
		t.Errorf("raid0x2 (%.0f) not slower than raid0x4 (%.0f)", reports["raid0x2"].Seconds, reports["raid0x4"].Seconds)
	}
}

func TestRAMAblationCliff(t *testing.T) {
	// Fixed 64 GB dataset; RAM sweep crossing it.
	w := smallWorkload(64e9)
	reports, err := RAMAblation(w, []int64{16e9, 32e9, 48e9, 80e9, 128e9})
	if err != nil {
		t.Fatal(err)
	}
	// Runtime is non-increasing in RAM.
	for i := 1; i < len(reports); i++ {
		if reports[i].Seconds > reports[i-1].Seconds*1.001 {
			t.Errorf("more RAM slower: %s %.0fs -> %s %.0fs",
				reports[i-1].Name, reports[i-1].Seconds, reports[i].Name, reports[i].Seconds)
		}
	}
	// The cliff: crossing the dataset size cuts runtime by > 3x.
	below := reports[2].Seconds // 48 GB < 64 GB dataset
	above := reports[3].Seconds // 80 GB > dataset
	if below/above < 3 {
		t.Errorf("RAM cliff ratio = %.1f, want > 3 (out-of-core %.0fs vs in-RAM %.0fs)",
			below/above, below, above)
	}
}

func TestReadAheadAblation(t *testing.T) {
	with, without, err := ReadAheadAblation(PaperPC(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := without.Seconds / with.Seconds; ratio < 2 {
		t.Errorf("disabling read-ahead only %.1fx slower; batching should dominate at 4 KiB pages", ratio)
	}
}

func TestRenderers(t *testing.T) {
	res, err := Fig1a(Fig1aConfig{
		SizesBytes: []int64{8e9, 16e9, 40e9, 80e9},
		Workload:   Workload{ActualRows: 64, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := RenderFig1a(&sb, res, 32e9); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"8G", "80G", "out-of-core", "fit:"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1a output missing %q:\n%s", want, out)
		}
	}

	rows, err := Fig1b(PaperPC(), Workload{NominalBytes: 190e9, ActualRows: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := RenderFig1b(&sb, rows); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"M3", "Spark x4", "Spark x8", "kmeans", "logreg"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("fig1b output missing %q", want)
		}
	}

	reports := map[string]Report{"a": {Name: "a", Seconds: 1}, "b": {Name: "b", Seconds: 2}}
	sb.Reset()
	if err := RenderReports(&sb, reports); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "config") {
		t.Error("reports header missing")
	}

	sb.Reset()
	if err := RenderPredict(&sb, []PredictPoint{{SizeBytes: 100e9, Predicted: 90, Actual: 100}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-10.0%") {
		t.Errorf("predict output: %s", sb.String())
	}
}

// TestMultiCoreRegimes: with per-worker streams and per-worker CPU
// tracks, the in-RAM regime scales with the core count while the
// out-of-core regime stays pinned to the disk — the paper's 13%-CPU
// observation made sweepable.
func TestMultiCoreRegimes(t *testing.T) {
	points, err := MultiCore(MultiCoreConfig{
		Workload:     Workload{ActualRows: 64, Seed: 3, NominalBytes: 1},
		WorkerCounts: []int{1, 4},
		SizesBytes:   []int64{8e9, 190e9},
		Passes:       4,
		BlockBytes:   16 << 10, // 2 rows/block: fine-grained static schedule
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d want 4", len(points))
	}
	get := func(size int64, workers int) MultiCorePoint {
		for _, p := range points {
			if p.SizeBytes == size && p.Workers == workers {
				return p
			}
		}
		t.Fatalf("missing point %d/%d", size, workers)
		return MultiCorePoint{}
	}

	// In-RAM steady state: no faults after warm-up, so elapsed is the
	// slowest CPU track and four cores cut it ~4x deterministically.
	inRAM := get(8e9, 4)
	if inRAM.Speedup < 2.5 {
		t.Errorf("in-RAM speedup at 4 workers = %.2fx, want > 2.5x", inRAM.Speedup)
	}
	if inRAM.DiskUtil != 0 {
		t.Errorf("in-RAM steady-state disk util = %v, want 0 (no re-faults)", inRAM.DiskUtil)
	}

	// Out-of-core: every pass re-faults the dataset; the disk is the
	// bottleneck, so extra cores buy ~nothing and the CPUs idle.
	ooc1, ooc4 := get(190e9, 1), get(190e9, 4)
	if ooc4.Speedup < 0.5 || ooc4.Speedup > 1.5 {
		t.Errorf("out-of-core speedup at 4 workers = %.2fx, want ~1x (disk bound)", ooc4.Speedup)
	}
	if ooc4.DiskUtil < 0.9 {
		t.Errorf("out-of-core disk util = %.2f, want > 0.9", ooc4.DiskUtil)
	}
	if ooc4.CPUUtil > 0.1 {
		t.Errorf("out-of-core CPU util at 4 workers = %.2f, want < 0.1 (the paper's idle-CPU regime)", ooc4.CPUUtil)
	}
	if ooc1.CPUUtil < 0.05 || ooc1.CPUUtil > 0.3 {
		t.Errorf("out-of-core CPU util at 1 worker = %.2f, paper observed ≈0.13", ooc1.CPUUtil)
	}

	var sb strings.Builder
	if err := RenderMultiCore(&sb, points, PaperPC().RAMBytes); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"workers", "speedup", "out-of-core", "in-RAM"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("multicore render missing %q:\n%s", want, sb.String())
		}
	}
}

func TestSparkRunsProduceSameModelQuality(t *testing.T) {
	// M3 and Spark train on the same data with the same algorithm;
	// their final objective values must agree closely (they may take
	// slightly different line-search paths is NOT possible here:
	// identical math, identical optimizer — values must match).
	w := smallWorkload(190e9)
	m3, err := RunLogRegM3(PaperPC(), w)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := RunLogRegSpark(8, w)
	if err != nil {
		t.Fatal(err)
	}
	if m3.FinalValue != sp.FinalValue {
		t.Errorf("final objective differs: M3 %v vs Spark %v", m3.FinalValue, sp.FinalValue)
	}

	km3, err := RunKMeansM3(PaperPC(), w)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := RunKMeansSpark(8, w)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(km3.FinalValue, ks.FinalValue) > 1e-9 {
		t.Errorf("final inertia differs: M3 %v vs Spark %v", km3.FinalValue, ks.FinalValue)
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// TestDistScale pins the dist experiment's acceptance shape: ≥2× at
// 4 shards on an out-of-core dataset (each 47.5 GB shard still
// exceeds the 32 GB worker RAM, so the win is pure parallel disk),
// wire traffic that scales with shards but never with dataset size,
// and a pass count identical across shard counts (the fit is
// bit-identical, so the iterate sequence cannot depend on sharding).
func TestDistScale(t *testing.T) {
	w := smallWorkload(1) // NominalBytes overridden per cell
	points, err := DistScale(PaperPC(), w, []int{1, 4}, []int64{48e9, 190e9}, DefaultDistNet())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	byKey := map[[2]int64]DistScalePoint{}
	for _, p := range points {
		byKey[[2]int64{p.SizeBytes, int64(p.Shards)}] = p
	}
	big4 := byKey[[2]int64{190e9, 4}]
	if big4.Speedup < 2 {
		t.Errorf("190GB at 4 shards: speedup %.2fx, want >= 2x", big4.Speedup)
	}
	if byKey[[2]int64{190e9, 1}].Speedup != 1 {
		t.Errorf("1-shard baseline speedup = %v, want 1", byKey[[2]int64{190e9, 1}].Speedup)
	}
	// Per-round bytes depend on shards and model width only.
	if a, b := byKey[[2]int64{48e9, 4}].BytesPerRound, big4.BytesPerRound; a != b {
		t.Errorf("bytes/round varies with dataset size: %d vs %d", a, b)
	}
	if s1, s4 := byKey[[2]int64{190e9, 1}].Rounds, big4.Rounds; s1 != s4 {
		t.Errorf("rounds differ across shard counts: %d vs %d", s1, s4)
	}

	if _, err := DistScale(PaperPC(), w, []int{2, 4}, []int64{48e9}, DefaultDistNet()); err == nil {
		t.Error("missing 1-shard baseline not rejected")
	}
	if _, err := DistScale(PaperPC(), w, []int{1}, []int64{48e9}, DistNetModel{}); err == nil {
		t.Error("zero-bandwidth net model not rejected")
	}
}
