package bench

// The dist experiment's simulated half: K M3 machines (each the
// paper's PC) holding contiguous size/K row shards of one dataset,
// driven by the coordinator protocol internal/dist implements for
// real. Because the distributed fit is bit-identical to local (the
// ordered per-group refold), the iterate sequence — and therefore the
// pass count — is exactly the local one; sharding changes only where
// the scan bytes live. Each round ships the model state down and one
// per-group partial aggregate up per shard, so wire traffic scales
// with the feature count and the merge-group cap, never with the
// dataset — the "ship the aggregate, not the data" rule this
// simulation quantifies.

import (
	"fmt"

	"m3/internal/infimnist"
)

// DistNetModel is the coordinator-worker link.
type DistNetModel struct {
	// BytesPerSec is the coordinator's NIC bandwidth; gathers
	// serialize on the coordinator side of the star.
	BytesPerSec float64
	// RoundTripSeconds is the per-round latency floor (dial is
	// amortized; this is one request/response pair).
	RoundTripSeconds float64
}

// DefaultDistNet is 1 Gb/s with a 1 ms round trip — the same link the
// Spark simulator charges for treeAggregate.
func DefaultDistNet() DistNetModel {
	return DistNetModel{BytesPerSec: 125e6, RoundTripSeconds: 1e-3}
}

// distMaxGroups mirrors exec's merge-group cap: a shard's partial is
// at most 64 per-group states regardless of how many rows it holds.
const distMaxGroups = 64

// DistScalePoint is one (shards, size) cell of the sweep.
type DistScalePoint struct {
	Shards    int
	SizeBytes int64
	// Seconds is the simulated wall clock of the whole fit: the
	// per-shard scan timeline (all shards advance in parallel) plus
	// the per-round network cost.
	Seconds    float64
	NetSeconds float64
	// BytesPerRound is the total wire traffic of one broadcast round
	// across every shard, both directions.
	BytesPerRound int64
	Rounds        int
	// Speedup is Seconds of the 1-shard fit at this size divided by
	// this point's Seconds (1.0 for the 1-shard row itself).
	Speedup float64
}

// DistScale simulates the row-sharded logistic-regression fit across
// shard counts and dataset sizes. shardCounts must include 1 (the
// speedup baseline). The real L-BFGS math runs once per cell on the
// scaled-down matrix; per-shard paging is accounted at size/shards
// nominal bytes, so the RAM knee moves exactly the way aggregate
// cluster memory moves it.
func DistScale(machine Machine, w Workload, shardCounts []int, sizes []int64, net DistNetModel) ([]DistScalePoint, error) {
	if net.BytesPerSec <= 0 {
		return nil, fmt.Errorf("bench: dist net bandwidth must be positive")
	}
	feat := w.Features
	if feat <= 0 {
		feat = infimnist.Features
	}
	var out []DistScalePoint
	for _, size := range sizes {
		base := -1.0
		first := len(out)
		for _, k := range shardCounts {
			if k < 1 {
				return nil, fmt.Errorf("bench: dist shard count %d", k)
			}
			wl := w
			wl.NominalBytes = size / int64(k)
			rep, err := RunLogRegM3(machine, wl)
			if err != nil {
				return nil, fmt.Errorf("bench: dist %d shards at %d bytes: %w", k, size, err)
			}
			// One round = state down to every shard plus one partial
			// (≤ 64 per-group gradient states) back from each.
			down := int64(k) * int64(feat+1) * 8
			up := int64(k) * distMaxGroups * int64(feat+2) * 8
			perRound := down + up
			netSec := float64(rep.Passes) * (net.RoundTripSeconds + float64(perRound)/net.BytesPerSec)
			secs := rep.Seconds + netSec
			if k == 1 {
				base = secs
			}
			out = append(out, DistScalePoint{
				Shards: k, SizeBytes: size,
				Seconds: secs, NetSeconds: netSec,
				BytesPerRound: perRound, Rounds: rep.Passes,
			})
		}
		if base < 0 {
			return nil, fmt.Errorf("bench: dist shard counts %v lack the 1-shard baseline", shardCounts)
		}
		for i := first; i < len(out); i++ {
			out[i].Speedup = base / out[i].Seconds
		}
	}
	return out, nil
}
