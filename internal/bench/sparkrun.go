package bench

import (
	"context"

	"fmt"

	"m3/internal/cluster"
	"m3/internal/mat"
	"m3/internal/optimize"
	"m3/internal/sparkml"
)

// newCluster builds the paper's EMR cluster of n m3.2xlarge workers.
func newCluster(n int) (*cluster.Cluster, error) {
	return cluster.New(n, cluster.M32XLarge(), cluster.DefaultCostModel())
}

// RunLogRegSpark trains the same logistic regression workload on a
// simulated Spark cluster of n instances and reports the simulated
// job time (cold start: the first pass reads HDFS).
func RunLogRegSpark(instances int, w Workload) (Report, error) {
	w, err := w.withDefaults()
	if err != nil {
		return Report{}, err
	}
	c, err := newCluster(instances)
	if err != nil {
		return Report{}, err
	}
	data, y := w.materialize()
	x := mat.NewDenseFrom(data, w.ActualRows, w.Features)
	pd, err := sparkml.Partition(c, x, y, w.NominalBytes)
	if err != nil {
		return Report{}, err
	}
	job, err := sparkml.NewLogRegJob(c, pd, 1e-4, true)
	if err != nil {
		return Report{}, err
	}
	res, err := optimize.LBFGS(context.Background(), job, make([]float64, job.Dim()), optimize.LBFGSParams{
		MaxIterations: w.Iterations,
		GradTol:       1e-12,
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Name:       fmt.Sprintf("Spark x%d", instances),
		Seconds:    c.Clock(),
		Passes:     job.Passes,
		FinalValue: res.Value,
	}, nil
}

// RunKMeansSpark runs the same k-means workload on a simulated Spark
// cluster of n instances.
func RunKMeansSpark(instances int, w Workload) (Report, error) {
	w, err := w.withDefaults()
	if err != nil {
		return Report{}, err
	}
	c, err := newCluster(instances)
	if err != nil {
		return Report{}, err
	}
	data, _ := w.materialize()
	x := mat.NewDenseFrom(data, w.ActualRows, w.Features)
	pd, err := sparkml.Partition(c, x, nil, w.NominalBytes)
	if err != nil {
		return Report{}, err
	}
	res, err := sparkml.KMeans(c, pd, sparkml.KMeansOptions{
		K:             w.K,
		Iterations:    w.Iterations,
		InitCentroids: w.InitialCentroids(),
	})
	if err != nil {
		return Report{}, err
	}
	return Report{
		Name:       fmt.Sprintf("Spark x%d", instances),
		Seconds:    c.Clock(),
		Passes:     res.Iterations,
		FinalValue: res.Inertia,
	}, nil
}
