package eval

import (
	"context"
	"math"
	"testing"

	"m3/internal/mat"
	"m3/internal/ml/logreg"
)

func TestConfusionMatrixBasics(t *testing.T) {
	c, err := NewConfusionMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	// 2 correct class 0, 1 correct class 1, one 0→1 error.
	for _, pair := range [][2]int{{0, 0}, {0, 0}, {1, 1}, {0, 1}} {
		if err := c.Add(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
	// Class 0: precision 2/2, recall 2/3.
	if got := c.Precision(0); got != 1 {
		t.Errorf("precision(0) = %v", got)
	}
	if got := c.Recall(0); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("recall(0) = %v", got)
	}
	// Class 1: precision 1/2, recall 1/1.
	if got := c.Precision(1); got != 0.5 {
		t.Errorf("precision(1) = %v", got)
	}
	if got := c.Recall(1); got != 1 {
		t.Errorf("recall(1) = %v", got)
	}
	// F1 for class 1 = 2*0.5*1/1.5.
	if got := c.F1(1); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1(1) = %v", got)
	}
	// Untouched class 2 has zero metrics, no NaN.
	if c.F1(2) != 0 || c.Precision(2) != 0 || c.Recall(2) != 0 {
		t.Error("empty class produced nonzero metrics")
	}
	if got := c.MacroF1(); math.IsNaN(got) {
		t.Error("MacroF1 NaN")
	}
}

func TestConfusionMatrixValidation(t *testing.T) {
	if _, err := NewConfusionMatrix(1); err == nil {
		t.Error("accepted 1 class")
	}
	c, _ := NewConfusionMatrix(2)
	if err := c.Add(2, 0); err == nil {
		t.Error("accepted out-of-range actual")
	}
	if c.Accuracy() != 0 {
		t.Error("empty accuracy not 0")
	}
}

func TestLogLoss(t *testing.T) {
	// Perfect confident predictions → tiny loss.
	loss, err := LogLoss([]float64{0.999999, 0.000001}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-5 {
		t.Errorf("confident loss = %v", loss)
	}
	// Uniform predictions → ln 2.
	loss, err = LogLoss([]float64{0.5, 0.5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Ln2) > 1e-12 {
		t.Errorf("uniform loss = %v want ln2", loss)
	}
	// Clipping prevents infinities.
	loss, err = LogLoss([]float64{0, 1}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(loss, 0) {
		t.Error("loss not clipped")
	}
	if _, err := LogLoss([]float64{0.5}, []float64{1, 0}); err == nil {
		t.Error("accepted length mismatch")
	}
	if _, err := LogLoss([]float64{0.5}, []float64{2}); err == nil {
		t.Error("accepted label 2")
	}
	if _, err := LogLoss(nil, nil); err == nil {
		t.Error("accepted empty input")
	}
}

func TestAUC(t *testing.T) {
	// Perfect separation → AUC 1.
	auc, err := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []float64{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Errorf("perfect AUC = %v", auc)
	}
	// Inverted → 0.
	auc, err = AUC([]float64{0.9, 0.8, 0.2, 0.1}, []float64{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0 {
		t.Errorf("inverted AUC = %v", auc)
	}
	// All-tied scores → 0.5.
	auc, err = AUC([]float64{0.5, 0.5, 0.5, 0.5}, []float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v", auc)
	}
	if _, err := AUC([]float64{0.5}, []float64{1}); err == nil {
		t.Error("accepted single-class input")
	}
	if _, err := AUC([]float64{1, 2}, []float64{1, 3}); err == nil {
		t.Error("accepted non-binary label")
	}
}

func TestKFoldCoversAllRowsOnce(t *testing.T) {
	for _, shuffle := range []bool{false, true} {
		splits, err := KFold(103, 5, shuffle, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(splits) != 5 {
			t.Fatalf("folds = %d", len(splits))
		}
		seen := make(map[int]int)
		for _, sp := range splits {
			for _, r := range sp.Test {
				seen[r]++
			}
			if len(sp.Train)+len(sp.Test) != 103 {
				t.Errorf("fold sizes %d+%d != 103", len(sp.Train), len(sp.Test))
			}
			// Train and test are disjoint.
			inTest := make(map[int]bool, len(sp.Test))
			for _, r := range sp.Test {
				inTest[r] = true
			}
			for _, r := range sp.Train {
				if inTest[r] {
					t.Fatalf("row %d in both train and test", r)
				}
			}
		}
		if len(seen) != 103 {
			t.Errorf("test folds cover %d rows", len(seen))
		}
		for r, n := range seen {
			if n != 1 {
				t.Errorf("row %d appears in %d test folds", r, n)
			}
		}
	}
}

func TestKFoldValidation(t *testing.T) {
	if _, err := KFold(10, 1, false, 0); err == nil {
		t.Error("accepted 1 fold")
	}
	if _, err := KFold(3, 5, false, 0); err == nil {
		t.Error("accepted more folds than rows")
	}
}

func TestCrossValidateLogreg(t *testing.T) {
	// Separable problem: every fold should score ~1.0.
	n := 200
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	r := uint64(1)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000)/1000 - 0.5
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x.Set(i, 0, next()+2)
			x.Set(i, 1, next()+2)
			y[i] = 1
		} else {
			x.Set(i, 0, next()-2)
			x.Set(i, 1, next()-2)
		}
	}
	accs, err := CrossValidate(x, y, 5, 3, func(xt *mat.Dense, yt []float64) (func([]float64) float64, error) {
		m, err := logreg.Train(context.Background(), xt, yt, logreg.Options{MaxIterations: 20})
		if err != nil {
			return nil, err
		}
		return m.Predict, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("fold accuracies = %d", len(accs))
	}
	mean, std := MeanStd(accs)
	if mean < 0.97 {
		t.Errorf("cv mean accuracy = %v ± %v", mean, std)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 || std != 2 {
		t.Errorf("MeanStd = %v, %v want 5, 2", mean, std)
	}
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty MeanStd = %v, %v", m, s)
	}
}

func TestGatherRows(t *testing.T) {
	x := mat.NewDense(4, 2)
	for i := 0; i < 4; i++ {
		x.Set(i, 0, float64(i))
	}
	y := []float64{10, 11, 12, 13}
	sub, suby := GatherRows(x, y, []int{3, 1})
	if sub.At(0, 0) != 3 || sub.At(1, 0) != 1 {
		t.Errorf("gathered rows wrong")
	}
	if suby[0] != 13 || suby[1] != 11 {
		t.Errorf("gathered labels wrong: %v", suby)
	}
	subNil, labels := GatherRows(x, nil, []int{0})
	if labels != nil || subNil.Rows() != 1 {
		t.Error("nil-label gather wrong")
	}
}
