// Package eval provides model-evaluation utilities — confusion
// matrices, classification metrics, and k-fold cross-validation —
// written against the same storage-transparent matrix API as the
// trainers, so evaluation scans page exactly like training scans.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// ConfusionMatrix counts predictions by (actual, predicted) class.
type ConfusionMatrix struct {
	// Classes is the class count.
	Classes int
	// Counts is row-major: Counts[actual*Classes+predicted].
	Counts []int64
}

// NewConfusionMatrix creates an empty k-class matrix.
func NewConfusionMatrix(k int) (*ConfusionMatrix, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: need >= 2 classes, got %d", k)
	}
	return &ConfusionMatrix{Classes: k, Counts: make([]int64, k*k)}, nil
}

// Add records one observation.
func (c *ConfusionMatrix) Add(actual, predicted int) error {
	if actual < 0 || actual >= c.Classes || predicted < 0 || predicted >= c.Classes {
		return fmt.Errorf("eval: labels (%d,%d) outside %d classes", actual, predicted, c.Classes)
	}
	c.Counts[actual*c.Classes+predicted]++
	return nil
}

// Total returns the number of recorded observations.
func (c *ConfusionMatrix) Total() int64 {
	var t int64
	for _, v := range c.Counts {
		t += v
	}
	return t
}

// Accuracy returns the trace ratio.
func (c *ConfusionMatrix) Accuracy() float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	var hit int64
	for k := 0; k < c.Classes; k++ {
		hit += c.Counts[k*c.Classes+k]
	}
	return float64(hit) / float64(total)
}

// Precision returns TP/(TP+FP) for one class (0 when undefined).
func (c *ConfusionMatrix) Precision(class int) float64 {
	var predicted int64
	for a := 0; a < c.Classes; a++ {
		predicted += c.Counts[a*c.Classes+class]
	}
	if predicted == 0 {
		return 0
	}
	return float64(c.Counts[class*c.Classes+class]) / float64(predicted)
}

// Recall returns TP/(TP+FN) for one class (0 when undefined).
func (c *ConfusionMatrix) Recall(class int) float64 {
	var actual int64
	for p := 0; p < c.Classes; p++ {
		actual += c.Counts[class*c.Classes+p]
	}
	if actual == 0 {
		return 0
	}
	return float64(c.Counts[class*c.Classes+class]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for one class.
func (c *ConfusionMatrix) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 over classes.
func (c *ConfusionMatrix) MacroF1() float64 {
	var s float64
	for k := 0; k < c.Classes; k++ {
		s += c.F1(k)
	}
	return s / float64(c.Classes)
}

// LogLoss computes mean negative log-likelihood from predicted
// probabilities of the positive class for binary labels (0/1).
// Probabilities are clipped to [eps, 1-eps].
func LogLoss(probs, labels []float64) (float64, error) {
	if len(probs) != len(labels) {
		return 0, fmt.Errorf("eval: %d probs for %d labels", len(probs), len(labels))
	}
	if len(probs) == 0 {
		return 0, fmt.Errorf("eval: empty input")
	}
	const eps = 1e-15
	var s float64
	for i, p := range probs {
		if labels[i] != 0 && labels[i] != 1 {
			return 0, fmt.Errorf("eval: label[%d] = %v, want 0 or 1", i, labels[i])
		}
		if p < eps {
			p = eps
		} else if p > 1-eps {
			p = 1 - eps
		}
		if labels[i] == 1 {
			s -= math.Log(p)
		} else {
			s -= math.Log(1 - p)
		}
	}
	return s / float64(len(probs)), nil
}

// AUC computes the area under the ROC curve for binary labels via the
// rank statistic (ties get the average rank).
func AUC(scores, labels []float64) (float64, error) {
	if len(scores) != len(labels) {
		return 0, fmt.Errorf("eval: %d scores for %d labels", len(scores), len(labels))
	}
	var pos, neg int64
	for _, v := range labels {
		switch v {
		case 1:
			pos++
		case 0:
			neg++
		default:
			return 0, fmt.Errorf("eval: label %v, want 0 or 1", v)
		}
	}
	if pos == 0 || neg == 0 {
		return 0, fmt.Errorf("eval: need both classes (pos=%d neg=%d)", pos, neg)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Average ranks with tie handling.
	ranks := make([]float64, len(scores))
	for i := 0; i < len(idx); {
		j := i
		//m3vet:allow floateq -- tied scores must group exactly to share an average rank
		for j+1 < len(idx) && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	var rankSum float64
	for i, v := range labels {
		if v == 1 {
			rankSum += ranks[i]
		}
	}
	p, n := float64(pos), float64(neg)
	return (rankSum - p*(p+1)/2) / (p * n), nil
}
