package eval

import (
	"fmt"
	"math"

	"m3/internal/mat"
)

// Split holds train/test row indices for one fold.
type Split struct {
	Train []int
	Test  []int
}

// KFold partitions n rows into k contiguous folds, optionally
// shuffled by seed. Contiguous folds matter under M3: each fold's
// training set is two sequential ranges, so cross-validation over a
// mapped dataset still scans mostly sequentially.
func KFold(n, k int, shuffle bool, seed uint64) ([]Split, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: need >= 2 folds, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("eval: %d rows for %d folds", n, k)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if shuffle {
		s := seed ^ 0x9e3779b97f4a7c15
		if s == 0 {
			s = 1
		}
		for i := n - 1; i > 0; i-- {
			s ^= s << 13
			s ^= s >> 7
			s ^= s << 17
			j := int(s % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
	}
	splits := make([]Split, k)
	for f := 0; f < k; f++ {
		lo := n * f / k
		hi := n * (f + 1) / k
		splits[f].Test = append([]int(nil), order[lo:hi]...)
		splits[f].Train = append(append([]int(nil), order[:lo]...), order[hi:]...)
	}
	return splits, nil
}

// GatherRows copies the selected rows of x (and labels) into fresh
// heap matrices — used to materialize folds.
func GatherRows(x *mat.Dense, y []float64, rows []int) (*mat.Dense, []float64) {
	_, d := x.Dims()
	out := mat.NewDense(len(rows), d)
	var labels []float64
	if y != nil {
		labels = make([]float64, len(rows))
	}
	for i, r := range rows {
		src, _ := x.Row(r)
		out.SetRow(i, src)
		if y != nil {
			labels[i] = y[r]
		}
	}
	return out, labels
}

// CrossValidate runs k-fold cross-validation: train receives each
// fold's training data and returns a predictor; the predictor is
// scored on the held-out fold. Returns per-fold accuracies.
func CrossValidate(x *mat.Dense, y []float64, k int, seed uint64,
	train func(x *mat.Dense, y []float64) (func(row []float64) float64, error)) ([]float64, error) {

	n, _ := x.Dims()
	if n != len(y) {
		return nil, fmt.Errorf("eval: %d rows but %d labels", n, len(y))
	}
	splits, err := KFold(n, k, true, seed)
	if err != nil {
		return nil, err
	}
	accs := make([]float64, 0, k)
	for _, sp := range splits {
		xTrain, yTrain := GatherRows(x, y, sp.Train)
		predict, err := train(xTrain, yTrain)
		if err != nil {
			return nil, err
		}
		correct := 0
		for _, r := range sp.Test {
			row, _ := x.Row(r)
			//m3vet:allow floateq -- predictions and labels are exact class ids
			if predict(row) == y[r] {
				correct++
			}
		}
		accs = append(accs, float64(correct)/float64(len(sp.Test)))
	}
	return accs, nil
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	std /= float64(len(xs))
	return mean, math.Sqrt(std)
}
