// Package logreg implements logistic regression trained with L-BFGS —
// the first of the paper's two evaluation workloads. The objective
// streams the (possibly memory-mapped) data matrix row by row once
// per evaluation, so each L-BFGS iteration performs the sequential
// full-data scans whose paging behaviour Figure 1a measures.
package logreg

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/optimize"
)

// Options configures binary logistic regression training.
type Options struct {
	// FitOptions carries the shared training surface: worker-pool
	// override, iteration callback, verbosity.
	fit.FitOptions
	// Lambda is the L2 regularization strength (default 1e-4).
	Lambda float64
	// FitIntercept adds an unregularized bias term (default true via
	// NoIntercept=false).
	NoIntercept bool
	// MaxIterations bounds L-BFGS iterations (default 100; the
	// paper's experiments run exactly 10).
	MaxIterations int
	// GradTol is the L-BFGS gradient tolerance (default 1e-6).
	GradTol float64
}

func (o Options) withDefaults() Options {
	if o.Lambda == 0 {
		o.Lambda = 1e-4
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-6
	}
	return o
}

// ResolveOptions applies the defaults Train would — exported so the
// distributed coordinator builds its remote objective with the same
// lambda and optimizer bounds a local fit uses.
func ResolveOptions(opts Options) Options { return opts.withDefaults() }

// Model is a trained binary logistic regression classifier.
type Model struct {
	// Weights has one coefficient per feature.
	Weights []float64
	// Intercept is the bias term (0 when trained without one).
	Intercept float64
	// Result is the optimizer outcome.
	Result optimize.Result
}

// Objective is the regularized negative log-likelihood of binary
// logistic regression over a data matrix. It implements
// optimize.Objective; the parameter vector is [w₀..w_{d-1}, b] when
// intercept is enabled, [w₀..w_{d-1}] otherwise.
type Objective struct {
	x         *mat.Dense
	y         []float64
	lambda    float64
	intercept bool
	// Stall accumulates simulated paging stall seconds across Evals
	// (zero on real backends).
	Stall float64
	// Scans counts full passes over the data.
	Scans int
}

// NewObjective validates shapes and constructs the streaming
// objective. Labels must be 0 or 1.
func NewObjective(x *mat.Dense, y []float64, lambda float64, intercept bool) (*Objective, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", x.Rows(), len(y))
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("logreg: label[%d] = %v, want 0 or 1", i, v)
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("logreg: negative lambda %v", lambda)
	}
	return &Objective{x: x, y: y, lambda: lambda, intercept: intercept}, nil
}

// Dim returns the parameter count (features + optional bias).
func (o *Objective) Dim() int {
	d := o.x.Cols()
	if o.intercept {
		d++
	}
	return d
}

// Eval computes the mean negative log-likelihood plus L2 penalty and
// its gradient, streaming the data matrix exactly once.
func (o *Objective) Eval(params, grad []float64) float64 {
	d := o.x.Cols()
	w := params[:d]
	var b float64
	if o.intercept {
		b = params[d]
	}
	blas.Fill(grad, 0)
	gw := grad[:d]
	var gb, loss float64

	stall := o.x.ForEachRow(func(i int, row []float64) {
		z := blas.Dot(row, w) + b
		// Numerically stable: log(1+e^{-|z|}) + max(0, ±z).
		var p float64
		if z >= 0 {
			ez := math.Exp(-z)
			p = 1 / (1 + ez)
			if o.y[i] == 1 {
				loss += math.Log1p(ez)
			} else {
				loss += z + math.Log1p(ez)
			}
		} else {
			ez := math.Exp(z)
			p = ez / (1 + ez)
			if o.y[i] == 1 {
				loss += -z + math.Log1p(ez)
			} else {
				loss += math.Log1p(ez)
			}
		}
		diff := p - o.y[i]
		blas.Axpy(diff, row, gw)
		gb += diff
	})
	o.Stall += stall
	o.Scans++

	n := float64(o.x.Rows())
	loss /= n
	blas.Scal(1/n, gw)
	if o.intercept {
		grad[d] = gb / n
	}
	// L2 penalty on weights only (not the intercept), matching
	// standard practice and mlpack.
	loss += 0.5 * o.lambda * blas.Dot(w, w)
	blas.Axpy(o.lambda, w, gw)
	return loss
}

// Train fits a binary logistic regression model with L-BFGS. Every
// objective evaluation is one blocked, worker-pooled pass over the
// (possibly memory-mapped) data on the shared execution layer; the
// model is bit-identical for every worker count and every storage
// backend. ctx cancels the fit within one data block (the returned
// error is then ctx.Err()).
func Train(ctx context.Context, x *mat.Dense, y []float64, opts Options) (*Model, error) {
	o := opts.withDefaults()
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	obj, err := NewParallelObjective(x, y, o.Lambda, !o.NoIntercept, o.Workers)
	if err != nil {
		return nil, err
	}
	obj.Ctx = ctx
	return TrainWith(ctx, obj, x.Cols(), opts)
}

// TrainWith runs the L-BFGS driver over any objective using logreg's
// parameterization ([w₀..w_{d-1}, b] with an intercept) — the half of
// Train shared with the distributed path, so a coordinator driving a
// RemoteObjective builds a Model through the exact optimizer steps a
// local fit takes.
func TrainWith(ctx context.Context, obj optimize.Objective, d int, opts Options) (*Model, error) {
	o := opts.withDefaults()
	x0 := make([]float64, obj.Dim())
	res, err := optimize.LBFGS(ctx, obj, x0, optimize.LBFGSParams{
		MaxIterations: o.MaxIterations,
		GradTol:       o.GradTol,
		Callback:      o.Hook("logreg"),
	})
	if err != nil {
		return nil, err
	}
	m := &Model{Weights: res.X[:d], Result: res}
	if !o.NoIntercept {
		m.Intercept = res.X[d]
	}
	return m, nil
}

// DecisionFunction returns the raw score w·row + b.
func (m *Model) DecisionFunction(row []float64) float64 {
	return blas.Dot(row, m.Weights) + m.Intercept
}

// Prob returns P(y=1 | row).
func (m *Model) Prob(row []float64) float64 {
	z := m.DecisionFunction(row)
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	ez := math.Exp(z)
	return ez / (1 + ez)
}

// Predict returns the hard 0/1 label for row.
func (m *Model) Predict(row []float64) float64 {
	if m.DecisionFunction(row) >= 0 {
		return 1
	}
	return 0
}

// Accuracy scores the model on a labelled matrix.
func (m *Model) Accuracy(x *mat.Dense, y []float64) float64 {
	if x.Rows() == 0 {
		return 0
	}
	correct := 0
	x.ForEachRow(func(i int, row []float64) {
		//m3vet:allow floateq -- predictions and labels are exact class ids
		if m.Predict(row) == y[i] {
			correct++
		}
	})
	return float64(correct) / float64(x.Rows())
}
