package logreg

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"m3/internal/blas"
	"m3/internal/mat"
	"m3/internal/optimize"
)

// ParallelObjective evaluates the binary logistic-regression loss
// with row-sharded goroutines — the configuration the paper's
// machine actually runs (8 hyperthreads; M3 was still I/O bound).
//
// Each worker owns a contiguous row shard, so every shard is itself
// a sequential scan and the access pattern stays read-ahead friendly.
// Partial losses and gradients are reduced in fixed shard order, so
// results are deterministic for a given worker count (they may
// differ from the serial objective in the last bits, as any
// floating-point re-association does).
//
// ParallelObjective requires a store whose Data slice may be read
// concurrently (heap or real mmap); the simulated Paged store is not
// safe for concurrent access and is rejected by NewParallelObjective
// only through documentation — accounting there is meaningless under
// sharding anyway.
type ParallelObjective struct {
	x         *mat.Dense
	y         []float64
	lambda    float64
	intercept bool
	workers   int

	// Scans counts full passes over the data.
	Scans int

	shards []shard
}

type shard struct {
	lo, hi int
	grad   []float64 // d+1: weights then bias partial
	loss   float64
}

// NewParallelObjective builds a sharded objective. workers <= 0
// selects GOMAXPROCS.
func NewParallelObjective(x *mat.Dense, y []float64, lambda float64, intercept bool, workers int) (*ParallelObjective, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", x.Rows(), len(y))
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("logreg: label[%d] = %v, want 0 or 1", i, v)
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("logreg: negative lambda %v", lambda)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > x.Rows() {
		workers = x.Rows()
	}
	o := &ParallelObjective{x: x, y: y, lambda: lambda, intercept: intercept, workers: workers}
	d := x.Cols()
	n := x.Rows()
	for w := 0; w < workers; w++ {
		o.shards = append(o.shards, shard{
			lo:   n * w / workers,
			hi:   n * (w + 1) / workers,
			grad: make([]float64, d+1),
		})
	}
	return o, nil
}

// Workers returns the shard count in use.
func (o *ParallelObjective) Workers() int { return o.workers }

// Dim returns the parameter count.
func (o *ParallelObjective) Dim() int {
	d := o.x.Cols()
	if o.intercept {
		d++
	}
	return d
}

// Eval computes the loss and gradient with one parallel pass.
func (o *ParallelObjective) Eval(params, grad []float64) float64 {
	d := o.x.Cols()
	w := params[:d]
	var b float64
	if o.intercept {
		b = params[d]
	}

	// Account the full-matrix read once (bulk, not per row — the
	// shards below use RawRow).
	o.x.Store().Touch(0, o.x.Rows()*d)
	o.Scans++

	var wg sync.WaitGroup
	for si := range o.shards {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			blas.Fill(s.grad, 0)
			s.loss = 0
			gw := s.grad[:d]
			for i := s.lo; i < s.hi; i++ {
				row := o.x.RawRow(i)
				z := blas.Dot(row, w) + b
				prob, l := sigmoidLoss(z, o.y[i])
				s.loss += l
				diff := prob - o.y[i]
				blas.Axpy(diff, row, gw)
				s.grad[d] += diff
			}
		}(&o.shards[si])
	}
	wg.Wait()

	// Deterministic reduction in shard order.
	blas.Fill(grad, 0)
	var loss float64
	for si := range o.shards {
		s := &o.shards[si]
		loss += s.loss
		blas.Axpy(1, s.grad[:d], grad[:d])
		if o.intercept {
			grad[d] += s.grad[d]
		}
	}

	n := float64(o.x.Rows())
	loss /= n
	blas.Scal(1/n, grad[:d])
	if o.intercept {
		grad[d] /= n
	}
	loss += 0.5 * o.lambda * blas.Dot(w, w)
	blas.Axpy(o.lambda, w, grad[:d])
	return loss
}

// sigmoidLoss returns (P(y=1|z), per-example log-loss) with the
// numerically stable split on the sign of z.
func sigmoidLoss(z, y float64) (prob, loss float64) {
	if z >= 0 {
		ez := math.Exp(-z)
		prob = 1 / (1 + ez)
		if y == 1 {
			loss = math.Log1p(ez)
		} else {
			loss = z + math.Log1p(ez)
		}
		return prob, loss
	}
	ez := math.Exp(z)
	prob = ez / (1 + ez)
	if y == 1 {
		loss = -z + math.Log1p(ez)
	} else {
		loss = math.Log1p(ez)
	}
	return prob, loss
}

// TrainParallel fits binary logistic regression using the sharded
// objective. workers <= 0 selects GOMAXPROCS.
func TrainParallel(x *mat.Dense, y []float64, opts Options, workers int) (*Model, error) {
	o := opts.withDefaults()
	obj, err := NewParallelObjective(x, y, o.Lambda, !o.NoIntercept, workers)
	if err != nil {
		return nil, err
	}
	x0 := make([]float64, obj.Dim())
	res, err := optimize.LBFGS(obj, x0, optimize.LBFGSParams{
		MaxIterations: o.MaxIterations,
		GradTol:       o.GradTol,
		Callback:      o.Callback,
	})
	if err != nil {
		return nil, err
	}
	m := &Model{Weights: res.X[:x.Cols()], Result: res}
	if !o.NoIntercept {
		m.Intercept = res.X[x.Cols()]
	}
	return m, nil
}
