package logreg

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/mat"
)

// ParallelObjective evaluates the binary logistic-regression loss on
// the shared chunked-execution layer (internal/exec): the row space is
// partitioned into page-aligned blocks, blocks run on a worker pool,
// and per-block partial losses and gradients reduce in block order.
// Because the partition never depends on the worker count, results
// are bit-identical for any workers value (they may differ from the
// serial Objective in the last bits, as any floating-point
// re-association does).
//
// Backends whose accounting is unsafe under concurrency (the
// simulated Paged store, trace recorders) are detected by the layer
// and scanned with one worker — same blocks, same reduce, identical
// numbers.
type ParallelObjective struct {
	x         *mat.Dense
	y         []float64
	lambda    float64
	intercept bool
	workers   int

	// Ctx, when non-nil, cancels data scans at block granularity; the
	// optimizer driving this objective must watch the same context,
	// because Eval's return value after cancellation is a discarded
	// partial.
	Ctx context.Context
	// Stall accumulates simulated paging stall seconds across Evals.
	Stall float64
	// Scans counts full passes over the data.
	Scans int
}

// GradPartial is one merge group's (or block's) contribution to the
// binary logistic loss and gradient — the shardable aggregate a
// distributed evaluation ships. Fields are exported for gob.
type GradPartial struct {
	Loss float64
	Grad []float64 // d weights then bias
}

// NewGradPartial returns a zero partial for d features.
func NewGradPartial(d int) *GradPartial { return &GradPartial{Grad: make([]float64, d+1)} }

// MergeGrad folds src into dst — the exact merge the local objective
// uses, exported so a coordinator refolds shipped partials with the
// same floating-point operations.
func MergeGrad(dst, src *GradPartial) {
	dst.Loss += src.Loss
	blas.Axpy(1, src.Grad, dst.Grad)
}

// gradKernel returns the per-row accumulation at parameters (w, b).
func gradKernel(y []float64, w []float64, b float64, d int) func(p *GradPartial, i int, row []float64) {
	return func(p *GradPartial, i int, row []float64) {
		z := blas.Dot(row, w) + b
		prob, l := sigmoidLoss(z, y[i])
		p.Loss += l
		diff := prob - y[i]
		blas.Axpy(diff, row, p.Grad[:d])
		p.Grad[d] += diff
	}
}

// GradGroups computes the per-merge-group loss/gradient partials of
// the binary logistic objective at params — the worker half of a
// distributed evaluation. groupRows must be the coordinator's global
// group height (exec.GroupRows of the global row count) so the shard
// partials align with the canonical grouped fold.
func GradGroups(ctx context.Context, x *mat.Dense, y []float64, params []float64, intercept bool, workers, groupRows int) ([]exec.GroupPartial[*GradPartial], float64, error) {
	d := x.Cols()
	w := params[:d]
	var b float64
	if intercept {
		b = params[d]
	}
	scan := x.ScanCtx(ctx, workers).Named("logreg grad")
	scan.GroupRows = groupRows
	kern := gradKernel(y, w, b, d)
	return exec.ReduceRowGroups(scan,
		func() *GradPartial { return NewGradPartial(d) },
		func(p *GradPartial, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				kern(p, i, block[(i-lo)*stride:(i-lo)*stride+d])
			}
		},
		MergeGrad)
}

// FinishGrad turns the folded total partial into the mean regularized
// loss and gradient — the post-reduce arithmetic shared verbatim by
// the local and distributed objectives.
func FinishGrad(total *GradPartial, n, d int, lambda float64, intercept bool, params, grad []float64) float64 {
	w := params[:d]
	blas.Fill(grad, 0)
	nf := float64(n)
	loss := total.Loss / nf
	blas.AddScaled(grad[:d], grad[:d], 1/nf, total.Grad[:d])
	if intercept {
		grad[d] = total.Grad[d] / nf
	}
	loss += 0.5 * lambda * blas.Dot(w, w)
	blas.Axpy(lambda, w, grad[:d])
	return loss
}

// NewParallelObjective builds a block-parallel objective. workers <= 0
// defers to the matrix's engine hint and then runtime.NumCPU(); the
// execution layer clamps to the block count either way.
func NewParallelObjective(x *mat.Dense, y []float64, lambda float64, intercept bool, workers int) (*ParallelObjective, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", x.Rows(), len(y))
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("logreg: label[%d] = %v, want 0 or 1", i, v)
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("logreg: negative lambda %v", lambda)
	}
	return &ParallelObjective{x: x, y: y, lambda: lambda, intercept: intercept, workers: workers}, nil
}

// Workers returns the configured worker knob (0 = inherit).
func (o *ParallelObjective) Workers() int { return o.workers }

// Dim returns the parameter count.
func (o *ParallelObjective) Dim() int {
	d := o.x.Cols()
	if o.intercept {
		d++
	}
	return d
}

// Eval computes the loss and gradient with one blocked parallel pass.
func (o *ParallelObjective) Eval(params, grad []float64) float64 {
	d := o.x.Cols()
	w := params[:d]
	var b float64
	if o.intercept {
		b = params[d]
	}

	kern := gradKernel(o.y, w, b, d)
	total, stall, _ := exec.ReduceRows(o.x.ScanCtx(o.Ctx, o.workers).Named("logreg grad"),
		func() *GradPartial { return NewGradPartial(d) },
		func(p *GradPartial, i int, row []float64) { kern(p, i, row) },
		MergeGrad)
	o.Stall += stall
	o.Scans++
	return FinishGrad(total, o.x.Rows(), d, o.lambda, o.intercept, params, grad)
}

// RemoteObjective is the distributed half of the objective: Dim and
// the FinishGrad arithmetic are local, while the data reduction is
// delegated to Reduce — a coordinator's broadcast-params,
// gather-group-partials, refold-in-row-order round. Because Reduce
// returns the same folded GradPartial bits the local scan produces,
// L-BFGS over a RemoteObjective retraces the local optimization
// exactly. A Reduce error is recorded in Err and surfaces as a NaN
// loss, which stops the optimizer; drivers must check Err first.
type RemoteObjective struct {
	N, D      int
	Lambda    float64
	Intercept bool
	Reduce    func(params []float64) (*GradPartial, error)
	Err       error
}

// Dim implements optimize.Objective.
func (o *RemoteObjective) Dim() int {
	if o.Intercept {
		return o.D + 1
	}
	return o.D
}

// Eval implements optimize.Objective via the remote reduction.
func (o *RemoteObjective) Eval(params, grad []float64) float64 {
	if o.Err != nil {
		return math.NaN()
	}
	total, err := o.Reduce(params)
	if err != nil {
		o.Err = err
		return math.NaN()
	}
	return FinishGrad(total, o.N, o.D, o.Lambda, o.Intercept, params, grad)
}

// sigmoidLoss returns (P(y=1|z), per-example log-loss) with the
// numerically stable split on the sign of z. Train is block-parallel
// through this objective; parallelism is configured with
// Options.Workers (or the engine), not a separate entry point.
func sigmoidLoss(z, y float64) (prob, loss float64) {
	if z >= 0 {
		ez := math.Exp(-z)
		prob = 1 / (1 + ez)
		if y == 1 {
			loss = math.Log1p(ez)
		} else {
			loss = z + math.Log1p(ez)
		}
		return prob, loss
	}
	ez := math.Exp(z)
	prob = ez / (1 + ez)
	if y == 1 {
		loss = -z + math.Log1p(ez)
	} else {
		loss = math.Log1p(ez)
	}
	return prob, loss
}
