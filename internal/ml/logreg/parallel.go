package logreg

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/mat"
)

// ParallelObjective evaluates the binary logistic-regression loss on
// the shared chunked-execution layer (internal/exec): the row space is
// partitioned into page-aligned blocks, blocks run on a worker pool,
// and per-block partial losses and gradients reduce in block order.
// Because the partition never depends on the worker count, results
// are bit-identical for any workers value (they may differ from the
// serial Objective in the last bits, as any floating-point
// re-association does).
//
// Backends whose accounting is unsafe under concurrency (the
// simulated Paged store, trace recorders) are detected by the layer
// and scanned with one worker — same blocks, same reduce, identical
// numbers.
type ParallelObjective struct {
	x         *mat.Dense
	y         []float64
	lambda    float64
	intercept bool
	workers   int

	// Ctx, when non-nil, cancels data scans at block granularity; the
	// optimizer driving this objective must watch the same context,
	// because Eval's return value after cancellation is a discarded
	// partial.
	Ctx context.Context
	// Stall accumulates simulated paging stall seconds across Evals.
	Stall float64
	// Scans counts full passes over the data.
	Scans int
}

// partial is one block's contribution to the loss and gradient.
type partial struct {
	loss float64
	grad []float64 // d weights then bias
}

// NewParallelObjective builds a block-parallel objective. workers <= 0
// defers to the matrix's engine hint and then runtime.NumCPU(); the
// execution layer clamps to the block count either way.
func NewParallelObjective(x *mat.Dense, y []float64, lambda float64, intercept bool, workers int) (*ParallelObjective, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", x.Rows(), len(y))
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("logreg: label[%d] = %v, want 0 or 1", i, v)
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("logreg: negative lambda %v", lambda)
	}
	return &ParallelObjective{x: x, y: y, lambda: lambda, intercept: intercept, workers: workers}, nil
}

// Workers returns the configured worker knob (0 = inherit).
func (o *ParallelObjective) Workers() int { return o.workers }

// Dim returns the parameter count.
func (o *ParallelObjective) Dim() int {
	d := o.x.Cols()
	if o.intercept {
		d++
	}
	return d
}

// Eval computes the loss and gradient with one blocked parallel pass.
func (o *ParallelObjective) Eval(params, grad []float64) float64 {
	d := o.x.Cols()
	w := params[:d]
	var b float64
	if o.intercept {
		b = params[d]
	}

	total, stall, _ := exec.ReduceRows(o.x.ScanCtx(o.Ctx, o.workers).Named("logreg grad"),
		func() *partial { return &partial{grad: make([]float64, d+1)} },
		func(p *partial, i int, row []float64) {
			z := blas.Dot(row, w) + b
			prob, l := sigmoidLoss(z, o.y[i])
			p.loss += l
			diff := prob - o.y[i]
			blas.Axpy(diff, row, p.grad[:d])
			p.grad[d] += diff
		},
		func(dst, src *partial) {
			dst.loss += src.loss
			blas.Axpy(1, src.grad, dst.grad)
		})
	o.Stall += stall
	o.Scans++

	blas.Fill(grad, 0)
	n := float64(o.x.Rows())
	loss := total.loss / n
	blas.AddScaled(grad[:d], grad[:d], 1/n, total.grad[:d])
	if o.intercept {
		grad[d] = total.grad[d] / n
	}
	loss += 0.5 * o.lambda * blas.Dot(w, w)
	blas.Axpy(o.lambda, w, grad[:d])
	return loss
}

// sigmoidLoss returns (P(y=1|z), per-example log-loss) with the
// numerically stable split on the sign of z. Train is block-parallel
// through this objective; parallelism is configured with
// Options.Workers (or the engine), not a separate entry point.
func sigmoidLoss(z, y float64) (prob, loss float64) {
	if z >= 0 {
		ez := math.Exp(-z)
		prob = 1 / (1 + ez)
		if y == 1 {
			loss = math.Log1p(ez)
		} else {
			loss = z + math.Log1p(ez)
		}
		return prob, loss
	}
	ez := math.Exp(z)
	prob = ez / (1 + ez)
	if y == 1 {
		loss = -z + math.Log1p(ez)
	} else {
		loss = math.Log1p(ez)
	}
	return prob, loss
}
