package logreg

import (
	"context"
	"math"
	"testing"

	"m3/internal/infimnist"
	"m3/internal/mat"
)

func TestParallelObjectiveMatchesSerial(t *testing.T) {
	g := infimnist.Generator{Seed: 8}
	const n = 100
	xs, labels := g.Matrix(0, n)
	x := mat.NewDenseFrom(xs, n, infimnist.Features)
	y := make([]float64, n)
	for i, v := range labels {
		if v == 0 {
			y[i] = 1
		}
	}

	serial, err := NewObjective(x, y, 0.01, true)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, serial.Dim())
	for i := range params {
		params[i] = math.Sin(float64(i)) * 0.02
	}
	gs := make([]float64, serial.Dim())
	fs := serial.Eval(params, gs)

	for _, workers := range []int{1, 2, 4, 7} {
		par, err := NewParallelObjective(x, y, 0.01, true, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Workers() != workers {
			t.Errorf("workers = %d want %d", par.Workers(), workers)
		}
		gp := make([]float64, par.Dim())
		fp := par.Eval(params, gp)
		if math.Abs(fp-fs) > 1e-12*math.Max(1, math.Abs(fs)) {
			t.Errorf("workers=%d: loss %v vs serial %v", workers, fp, fs)
		}
		for i := range gs {
			if math.Abs(gp[i]-gs[i]) > 1e-10*math.Max(1, math.Abs(gs[i])) {
				t.Errorf("workers=%d: grad[%d] %v vs %v", workers, i, gp[i], gs[i])
				break
			}
		}
		if par.Scans != 1 {
			t.Errorf("workers=%d: scans = %d", workers, par.Scans)
		}
	}
}

func TestParallelObjectiveDeterministic(t *testing.T) {
	g := infimnist.Generator{Seed: 9}
	const n = 64
	xs, labels := g.Matrix(0, n)
	x := mat.NewDenseFrom(xs, n, infimnist.Features)
	y := make([]float64, n)
	for i, v := range labels {
		if v == 1 {
			y[i] = 1
		}
	}
	par, err := NewParallelObjective(x, y, 0.01, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	params := make([]float64, par.Dim())
	g1 := make([]float64, par.Dim())
	g2 := make([]float64, par.Dim())
	f1 := par.Eval(params, g1)
	f2 := par.Eval(params, g2)
	if f1 != f2 {
		t.Errorf("repeated eval differs: %v vs %v", f1, f2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("grad[%d] not deterministic", i)
		}
	}
}

func TestTrainParallelLearns(t *testing.T) {
	xh, y := twoBlobs(300)
	opts := Options{MaxIterations: 30}
	opts.FitOptions.Workers = 4
	m, err := Train(context.Background(), xh, y, opts)
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(xh, y); acc < 0.99 {
		t.Errorf("parallel training accuracy = %v", acc)
	}
}

func TestParallelValidation(t *testing.T) {
	x := mat.NewDense(4, 2)
	if _, err := NewParallelObjective(x, []float64{0, 1}, 0.1, true, 2); err == nil {
		t.Error("accepted mismatched labels")
	}
	if _, err := NewParallelObjective(x, []float64{0, 1, 2, 0}, 0.1, true, 2); err == nil {
		t.Error("accepted label 2")
	}
	if _, err := NewParallelObjective(x, []float64{0, 1, 1, 0}, -1, true, 2); err == nil {
		t.Error("accepted negative lambda")
	}
	// The workers knob is kept as configured; the execution layer
	// clamps to the block count at scan time.
	obj, err := NewParallelObjective(x, []float64{0, 1, 1, 0}, 0, true, 100)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Workers() != 100 {
		t.Errorf("workers = %d want 100 (exec clamps at scan time)", obj.Workers())
	}
}

func TestSigmoidLossStableAtExtremes(t *testing.T) {
	for _, z := range []float64{-750, -50, 0, 50, 750} {
		for _, y := range []float64{0, 1} {
			p, l := sigmoidLoss(z, y)
			if math.IsNaN(p) || math.IsNaN(l) || math.IsInf(l, 0) && math.Abs(z) < 700 {
				t.Errorf("sigmoidLoss(%v,%v) = %v, %v", z, y, p, l)
			}
			if p < 0 || p > 1 {
				t.Errorf("prob out of range: sigmoidLoss(%v,%v) = %v", z, y, p)
			}
			if l < 0 {
				t.Errorf("negative loss: sigmoidLoss(%v,%v) = %v", z, y, l)
			}
		}
	}
}
