package logreg

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"m3/internal/infimnist"
	"m3/internal/mat"
	"m3/internal/store"
	"m3/internal/vm"
)

// twoBlobs builds a linearly separable 2-D binary problem.
func twoBlobs(n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	r := uint64(12345)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000)/1000 - 0.5
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x.Set(i, 0, next()+2)
			x.Set(i, 1, next()+2)
			y[i] = 1
		} else {
			x.Set(i, 0, next()-2)
			x.Set(i, 1, next()-2)
			y[i] = 0
		}
	}
	return x, y
}

func TestTrainSeparable(t *testing.T) {
	x, y := twoBlobs(200)
	m, err := Train(context.Background(), x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.99 {
		t.Errorf("training accuracy = %v", acc)
	}
	// Decision direction must be positive for both features.
	if m.Weights[0] <= 0 || m.Weights[1] <= 0 {
		t.Errorf("weights = %v, expected positive", m.Weights)
	}
	// Probabilities are calibrated around the boundary.
	if p := m.Prob([]float64{2, 2}); p < 0.9 {
		t.Errorf("P(blob1 center) = %v", p)
	}
	if p := m.Prob([]float64{-2, -2}); p > 0.1 {
		t.Errorf("P(blob0 center) = %v", p)
	}
}

func TestTrainNoIntercept(t *testing.T) {
	x, y := twoBlobs(100)
	m, err := Train(context.Background(), x, y, Options{NoIntercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Intercept != 0 {
		t.Errorf("intercept = %v, want 0", m.Intercept)
	}
	if acc := m.Accuracy(x, y); acc < 0.95 {
		t.Errorf("accuracy = %v", acc)
	}
}

func TestObjectiveValidation(t *testing.T) {
	x := mat.NewDense(3, 2)
	if _, err := NewObjective(x, []float64{0, 1}, 0.1, true); err == nil {
		t.Error("accepted label/row mismatch")
	}
	if _, err := NewObjective(x, []float64{0, 1, 2}, 0.1, true); err == nil {
		t.Error("accepted label 2")
	}
	if _, err := NewObjective(x, []float64{0, 1, 1}, -1, true); err == nil {
		t.Error("accepted negative lambda")
	}
}

// numericGradCheck compares the analytic gradient to central
// differences.
func numericGradCheck(t *testing.T, obj interface {
	Dim() int
	Eval(x, g []float64) float64
}, x []float64, tol float64) {
	t.Helper()
	n := obj.Dim()
	g := make([]float64, n)
	obj.Eval(x, g)
	h := 1e-6
	gp := make([]float64, n)
	for i := 0; i < n; i++ {
		orig := x[i]
		x[i] = orig + h
		fp := obj.Eval(x, gp)
		x[i] = orig - h
		fm := obj.Eval(x, gp)
		x[i] = orig
		want := (fp - fm) / (2 * h)
		if math.Abs(g[i]-want) > tol*math.Max(1, math.Abs(want)) {
			t.Errorf("grad[%d] = %v, numeric %v", i, g[i], want)
		}
	}
}

func TestObjectiveGradient(t *testing.T) {
	x, y := twoBlobs(40)
	obj, err := NewObjective(x, y, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0.3, -0.2, 0.1}
	numericGradCheck(t, obj, params, 1e-5)
}

func TestObjectiveCountsScans(t *testing.T) {
	x, y := twoBlobs(10)
	obj, err := NewObjective(x, y, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, obj.Dim())
	obj.Eval(make([]float64, obj.Dim()), g)
	obj.Eval(make([]float64, obj.Dim()), g)
	if obj.Scans != 2 {
		t.Errorf("Scans = %d want 2", obj.Scans)
	}
}

func TestObjectiveAtZeroIsLog2(t *testing.T) {
	x, y := twoBlobs(50)
	obj, err := NewObjective(x, y, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, obj.Dim())
	if got := obj.Eval(make([]float64, obj.Dim()), g); math.Abs(got-math.Ln2) > 1e-12 {
		t.Errorf("f(0) = %v want ln2", got)
	}
}

func TestTrainOverPagedStoreSameModel(t *testing.T) {
	// The M3 claim: training over a paged (out-of-core) store yields
	// bit-identical models to heap training.
	xh, y := twoBlobs(60)
	data := make([]float64, 120)
	for i := 0; i < 60; i++ {
		data[i*2] = xh.At(i, 0)
		data[i*2+1] = xh.At(i, 1)
	}
	ps, err := store.NewPaged(data, store.PagedConfig{VM: vm.Config{
		PageSize:   256,
		CacheBytes: 512, // force paging
		Disk:       vm.DiskModel{BandwidthBytes: 1e6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	xp, err := mat.NewDenseStore(ps, 60, 2)
	if err != nil {
		t.Fatal(err)
	}

	mh, err := Train(context.Background(), xh, y, Options{MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Train(context.Background(), xp, y, Options{MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mh.Weights {
		if mh.Weights[i] != mp.Weights[i] {
			t.Errorf("weight %d differs: %v vs %v", i, mh.Weights[i], mp.Weights[i])
		}
	}
	if mh.Intercept != mp.Intercept {
		t.Errorf("intercepts differ: %v vs %v", mh.Intercept, mp.Intercept)
	}
	if ps.Stats().MajorFaults == 0 {
		t.Error("paged training never faulted — cache config wrong")
	}
}

func TestSoftmaxGradient(t *testing.T) {
	g := infimnist.Generator{Seed: 4}
	xs, labels := g.Matrix(0, 20)
	y := make([]int, 20)
	for i, v := range labels {
		y[i] = int(v)
	}
	x := mat.NewDenseFrom(xs, 20, infimnist.Features)
	obj, err := NewSoftmaxObjective(x, y, 10, 0.01, true)
	if err != nil {
		t.Fatal(err)
	}
	// Check a subset of coordinates (full 7850-dim check is slow).
	params := make([]float64, obj.Dim())
	for i := range params {
		params[i] = math.Sin(float64(i)) * 0.01
	}
	gr := make([]float64, obj.Dim())
	obj.Eval(params, gr)
	h := 1e-6
	scratch := make([]float64, obj.Dim())
	for _, i := range []int{0, 5, 783, 784, 4000, obj.Dim() - 11, obj.Dim() - 1} {
		orig := params[i]
		params[i] = orig + h
		fp := obj.Eval(params, scratch)
		params[i] = orig - h
		fm := obj.Eval(params, scratch)
		params[i] = orig
		want := (fp - fm) / (2 * h)
		if math.Abs(gr[i]-want) > 1e-4*math.Max(1, math.Abs(want)) {
			t.Errorf("softmax grad[%d] = %v, numeric %v", i, gr[i], want)
		}
	}
}

func TestSoftmaxValidation(t *testing.T) {
	x := mat.NewDense(2, 3)
	if _, err := NewSoftmaxObjective(x, []int{0, 1}, 1, 0, true); err == nil {
		t.Error("accepted 1 class")
	}
	if _, err := NewSoftmaxObjective(x, []int{0}, 3, 0, true); err == nil {
		t.Error("accepted mismatched labels")
	}
	if _, err := NewSoftmaxObjective(x, []int{0, 3}, 3, 0, true); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestSoftmaxLearnsDigits(t *testing.T) {
	g := infimnist.Generator{Seed: 11}
	const n = 300
	xs, labels := g.Matrix(0, n)
	y := make([]int, n)
	for i, v := range labels {
		y[i] = int(v)
	}
	x := mat.NewDenseFrom(xs, n, infimnist.Features)
	m, err := TrainSoftmax(context.Background(), x, y, 10, Options{MaxIterations: 40, Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.9 {
		t.Errorf("training accuracy on digits = %v, want >= 0.9", acc)
	}
	// Held-out digits from the same generator.
	xt, tl := g.Matrix(10000, 100)
	yt := make([]int, 100)
	for i, v := range tl {
		yt[i] = int(v)
	}
	xm := mat.NewDenseFrom(xt, 100, infimnist.Features)
	if acc := m.Accuracy(xm, yt); acc < 0.8 {
		t.Errorf("held-out accuracy = %v, want >= 0.8", acc)
	}
}

func TestSoftmaxScoresMatchPredict(t *testing.T) {
	g := infimnist.Generator{Seed: 2}
	xs, labels := g.Matrix(0, 50)
	y := make([]int, 50)
	for i, v := range labels {
		y[i] = int(v)
	}
	x := mat.NewDenseFrom(xs, 50, infimnist.Features)
	m, err := TrainSoftmax(context.Background(), x, y, 10, Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, 10)
	row := xs[:infimnist.Features]
	m.Scores(row, scores)
	best, bestC := math.Inf(-1), -1
	for c, s := range scores {
		if s > best {
			best, bestC = s, c
		}
	}
	if got := m.Predict(row); got != bestC {
		t.Errorf("Predict = %d, argmax Scores = %d", got, bestC)
	}
}

func TestTrainMappedDataset(t *testing.T) {
	// End-to-end: generate → write → map → train, all through the
	// public paths (the quickstart flow).
	g := infimnist.Generator{Seed: 21}
	path := filepath.Join(t.TempDir(), "digits.m3")
	if err := g.WriteDataset(path, 100); err != nil {
		t.Fatal(err)
	}
	ms, err := store.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	// Payload layout: header page (512 floats), then X, then labels.
	const headerElems = 512
	n, d := 100, infimnist.Features
	xAll := ms.Data()[headerElems : headerElems+n*d]
	lbl := ms.Data()[headerElems+n*d : headerElems+n*d+n]
	x := mat.NewDenseFrom(xAll, n, d)
	// Binary task: digit 0 vs rest.
	y := make([]float64, n)
	for i, v := range lbl {
		if v == 0 {
			y[i] = 1
		}
	}
	m, err := Train(context.Background(), x, y, Options{MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.95 {
		t.Errorf("mapped training accuracy = %v", acc)
	}
}
