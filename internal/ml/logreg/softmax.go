package logreg

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/optimize"
)

// SoftmaxObjective is the multinomial (softmax) generalization used
// for the 10-class digit problem. Parameters are a row-major K×D
// weight block followed by K biases when intercept is enabled.
type SoftmaxObjective struct {
	x         *mat.Dense
	y         []int
	classes   int
	lambda    float64
	intercept bool
	// Workers sizes the chunked-execution pool per scan (<= 0: engine
	// hint, then NumCPU). The result is bit-identical for every value.
	Workers int
	// Ctx, when non-nil, cancels data scans at block granularity.
	Ctx context.Context
	// Stall accumulates simulated paging stall seconds.
	Stall float64
	// Scans counts full data passes.
	Scans int
}

// NewSoftmaxObjective validates inputs; labels must be in [0, classes).
func NewSoftmaxObjective(x *mat.Dense, y []int, classes int, lambda float64, intercept bool) (*SoftmaxObjective, error) {
	if classes < 2 {
		return nil, fmt.Errorf("logreg: need >= 2 classes, got %d", classes)
	}
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("logreg: %d rows but %d labels", x.Rows(), len(y))
	}
	for i, v := range y {
		if v < 0 || v >= classes {
			return nil, fmt.Errorf("logreg: label[%d] = %d outside [0,%d)", i, v, classes)
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("logreg: negative lambda %v", lambda)
	}
	return &SoftmaxObjective{
		x: x, y: y, classes: classes, lambda: lambda, intercept: intercept,
	}, nil
}

// Dim returns K*D (+K with intercept).
func (o *SoftmaxObjective) Dim() int {
	d := o.classes * o.x.Cols()
	if o.intercept {
		d += o.classes
	}
	return d
}

// SoftmaxPartial is one merge group's (or block's) share of the
// cross-entropy loss and gradient — the shardable aggregate a
// distributed evaluation ships. The scores scratch is per state and
// unexported, so gob ships only the aggregate fields.
type SoftmaxPartial struct {
	Loss   float64
	Grad   []float64
	scores []float64
}

// NewSoftmaxPartial returns a zero partial for a dim-parameter,
// k-class objective.
func NewSoftmaxPartial(dim, k int) *SoftmaxPartial {
	return &SoftmaxPartial{Grad: make([]float64, dim), scores: make([]float64, k)}
}

// MergeSoftmax folds src into dst with the local objective's exact
// merge operations.
func MergeSoftmax(dst, src *SoftmaxPartial) {
	dst.Loss += src.Loss
	blas.Axpy(1, src.Grad, dst.Grad)
}

// softmaxKernel returns the per-row accumulation at the given
// parameter block (wAll row-major K×D, bias nil without intercept).
func softmaxKernel(y []int, wAll, bias []float64, d, k int) func(p *SoftmaxPartial, i int, row []float64) {
	return func(p *SoftmaxPartial, i int, row []float64) {
		gw := p.Grad[:k*d]
		// scores_c = w_c · row + b_c
		maxScore := math.Inf(-1)
		for c := 0; c < k; c++ {
			s := blas.Dot(wAll[c*d:(c+1)*d], row)
			if bias != nil {
				s += bias[c]
			}
			p.scores[c] = s
			if s > maxScore {
				maxScore = s
			}
		}
		// log-sum-exp with max shift
		var sum float64
		for c := 0; c < k; c++ {
			p.scores[c] = math.Exp(p.scores[c] - maxScore)
			sum += p.scores[c]
		}
		logSum := math.Log(sum) + maxScore
		yi := y[i]
		// loss_i = logSum - score_{yi}; recover shifted score.
		p.Loss += logSum - (math.Log(p.scores[yi]) + maxScore)
		inv := 1 / sum
		for c := 0; c < k; c++ {
			prob := p.scores[c] * inv
			diff := prob
			if c == yi {
				diff -= 1
			}
			if diff != 0 {
				blas.Axpy(diff, row, gw[c*d:(c+1)*d])
				if bias != nil {
					p.Grad[k*d+c] += diff
				}
			}
		}
	}
}

// SoftmaxGroups computes the per-merge-group partials of the softmax
// objective at params — the worker half of a distributed evaluation.
// groupRows must be the coordinator's global group height.
func SoftmaxGroups(ctx context.Context, x *mat.Dense, y []int, classes int, params []float64, intercept bool, workers, groupRows int) ([]exec.GroupPartial[*SoftmaxPartial], float64, error) {
	d := x.Cols()
	k := classes
	wAll := params[:k*d]
	var bias []float64
	dim := k * d
	if intercept {
		bias = params[k*d : k*d+k]
		dim += k
	}
	scan := x.ScanCtx(ctx, workers).Named("softmax grad")
	scan.GroupRows = groupRows
	kern := softmaxKernel(y, wAll, bias, d, k)
	return exec.ReduceRowGroups(scan,
		func() *SoftmaxPartial { return NewSoftmaxPartial(dim, k) },
		func(p *SoftmaxPartial, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				kern(p, i, block[(i-lo)*stride:(i-lo)*stride+d])
			}
		},
		MergeSoftmax)
}

// FinishSoftmax turns the folded total into the mean regularized loss
// and gradient — post-reduce arithmetic shared by the local and
// distributed objectives.
func FinishSoftmax(total *SoftmaxPartial, n, d, k int, lambda float64, intercept bool, params, grad []float64) float64 {
	wAll := params[:k*d]
	blas.Fill(grad, 0)
	gw := grad[:k*d]
	nf := float64(n)
	loss := total.Loss / nf
	blas.AddScaled(gw, gw, 1/nf, total.Grad[:k*d])
	if intercept {
		gb := grad[k*d : k*d+k]
		blas.AddScaled(gb, gb, 1/nf, total.Grad[k*d:k*d+k])
	}
	loss += 0.5 * lambda * blas.Dot(wAll, wAll)
	blas.Axpy(lambda, wAll, gw)
	return loss
}

// RemoteSoftmaxObjective mirrors RemoteObjective for the multiclass
// loss: local Dim/finish, remote reduction.
type RemoteSoftmaxObjective struct {
	N, D, Classes int
	Lambda        float64
	Intercept     bool
	Reduce        func(params []float64) (*SoftmaxPartial, error)
	Err           error
}

// Dim implements optimize.Objective.
func (o *RemoteSoftmaxObjective) Dim() int {
	dim := o.Classes * o.D
	if o.Intercept {
		dim += o.Classes
	}
	return dim
}

// Eval implements optimize.Objective via the remote reduction.
func (o *RemoteSoftmaxObjective) Eval(params, grad []float64) float64 {
	if o.Err != nil {
		return math.NaN()
	}
	total, err := o.Reduce(params)
	if err != nil {
		o.Err = err
		return math.NaN()
	}
	return FinishSoftmax(total, o.N, o.D, o.Classes, o.Lambda, o.Intercept, params, grad)
}

// Eval computes mean cross-entropy plus L2 penalty in one blocked
// pass over the data on the shared execution layer.
func (o *SoftmaxObjective) Eval(params, grad []float64) float64 {
	d := o.x.Cols()
	k := o.classes
	wAll := params[:k*d]
	var bias []float64
	if o.intercept {
		bias = params[k*d : k*d+k]
	}

	kern := softmaxKernel(o.y, wAll, bias, d, k)
	total, stall, _ := exec.ReduceRows(o.x.ScanCtx(o.Ctx, o.Workers).Named("softmax grad"),
		func() *SoftmaxPartial { return NewSoftmaxPartial(o.Dim(), k) },
		func(p *SoftmaxPartial, i int, row []float64) { kern(p, i, row) },
		MergeSoftmax)
	o.Stall += stall
	o.Scans++
	return FinishSoftmax(total, o.x.Rows(), d, k, o.lambda, o.intercept, params, grad)
}

// SoftmaxModel is a trained multiclass classifier.
type SoftmaxModel struct {
	// Weights is row-major K×D.
	Weights []float64
	// Bias has one entry per class (nil without intercept).
	Bias []float64
	// Classes is K.
	Classes int
	// Features is D.
	Features int
	// Result is the optimizer outcome.
	Result optimize.Result
}

// TrainSoftmax fits a K-class softmax regression model with L-BFGS on
// blocked, worker-pooled data scans. ctx cancels the fit within one
// data block.
func TrainSoftmax(ctx context.Context, x *mat.Dense, y []int, classes int, opts Options) (*SoftmaxModel, error) {
	o := opts.withDefaults()
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	obj, err := NewSoftmaxObjective(x, y, classes, o.Lambda, !o.NoIntercept)
	if err != nil {
		return nil, err
	}
	obj.Workers = o.Workers
	obj.Ctx = ctx
	return TrainSoftmaxWith(ctx, obj, x.Cols(), classes, opts)
}

// TrainSoftmaxWith runs the softmax L-BFGS driver over any objective
// with the package's parameterization — shared by the local and
// distributed paths so both build identical SoftmaxModels.
func TrainSoftmaxWith(ctx context.Context, obj optimize.Objective, d, classes int, opts Options) (*SoftmaxModel, error) {
	o := opts.withDefaults()
	x0 := make([]float64, obj.Dim())
	res, err := optimize.LBFGS(ctx, obj, x0, optimize.LBFGSParams{
		MaxIterations: o.MaxIterations,
		GradTol:       o.GradTol,
		Callback:      o.Hook("softmax"),
	})
	if err != nil {
		return nil, err
	}
	m := &SoftmaxModel{
		Weights: res.X[:classes*d], Classes: classes, Features: d, Result: res,
	}
	if !o.NoIntercept {
		m.Bias = res.X[classes*d : classes*d+classes]
	}
	return m, nil
}

// Scores writes per-class raw scores for row into dst (length K).
func (m *SoftmaxModel) Scores(row []float64, dst []float64) {
	for c := 0; c < m.Classes; c++ {
		s := blas.Dot(m.Weights[c*m.Features:(c+1)*m.Features], row)
		if m.Bias != nil {
			s += m.Bias[c]
		}
		dst[c] = s
	}
}

// Predict returns the argmax class for row.
func (m *SoftmaxModel) Predict(row []float64) int {
	best, bestC := math.Inf(-1), 0
	for c := 0; c < m.Classes; c++ {
		s := blas.Dot(m.Weights[c*m.Features:(c+1)*m.Features], row)
		if m.Bias != nil {
			s += m.Bias[c]
		}
		if s > best {
			best, bestC = s, c
		}
	}
	return bestC
}

// Accuracy scores the model on a labelled matrix.
func (m *SoftmaxModel) Accuracy(x *mat.Dense, y []int) float64 {
	if x.Rows() == 0 {
		return 0
	}
	correct := 0
	x.ForEachRow(func(i int, row []float64) {
		if m.Predict(row) == y[i] {
			correct++
		}
	})
	return float64(correct) / float64(x.Rows())
}
