// Package bayes implements Gaussian naive Bayes classification.
// Training is a single streaming pass computing per-class feature
// means and variances — the cheapest possible M3 workload (one scan
// total, against one scan *per iteration* for the optimizers), which
// makes it a useful lower-bound baseline in scan-count ablations.
package bayes

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
)

// Options configures training.
type Options struct {
	// FitOptions carries the shared training surface; Workers sizes
	// the counting scan's pool (<= 0: engine hint, then NumCPU). The
	// fitted model is identical for every value.
	fit.FitOptions
	// VarSmoothing is added to every variance for numerical safety,
	// scaled by the largest feature variance (default 1e-9, the
	// scikit-learn convention).
	VarSmoothing float64
}

func (o Options) withDefaults() Options {
	if o.VarSmoothing <= 0 {
		o.VarSmoothing = 1e-9
	}
	return o
}

// Model is a fitted Gaussian naive Bayes classifier.
type Model struct {
	// Classes is the class count.
	Classes int
	// Features is the feature count.
	Features int
	// Mean is row-major Classes×Features.
	Mean []float64
	// Var is row-major Classes×Features (smoothed).
	Var []float64
	// LogPrior has one entry per class.
	LogPrior []float64
}

// Train fits the model in one pass over x. Labels must be integers in
// [0, classes). ctx cancels the counting scan within one data block.
func Train(ctx context.Context, x *mat.Dense, y []int, classes int, opts Options) (*Model, error) {
	o := opts.withDefaults()
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	n, d := x.Dims()
	if n != len(y) {
		return nil, fmt.Errorf("bayes: %d rows but %d labels", n, len(y))
	}
	if classes < 2 {
		return nil, fmt.Errorf("bayes: need >= 2 classes, got %d", classes)
	}
	for i, v := range y {
		if v < 0 || v >= classes {
			return nil, fmt.Errorf("bayes: label[%d] = %d outside [0,%d)", i, v, classes)
		}
	}

	// Single blocked scan on the shared execution layer: each block
	// accumulates per-class count, sum and sum-of-squares partials,
	// merged in block order so the model is identical for any worker
	// count.
	acc, _, err := exec.ReduceRows(x.ScanCtx(ctx, o.Workers).Named("bayes moments"),
		func() *CountPartial { return NewCountPartial(classes, d) },
		func(p *CountPartial, i int, row []float64) { p.Add(y[i], row) },
		MergeCounts)
	if err != nil {
		return nil, err
	}
	return ModelFromCounts(acc, n, classes, d, o.VarSmoothing)
}

// CountPartial is one merge group's (or block's) share of the class
// statistics — the shardable aggregate of a naive-Bayes fit. Fields
// are exported for gob.
type CountPartial struct {
	Counts, Sum, SumSq []float64
}

// NewCountPartial returns a zero partial for classes×d statistics.
func NewCountPartial(classes, d int) *CountPartial {
	return &CountPartial{
		Counts: make([]float64, classes),
		Sum:    make([]float64, classes*d),
		SumSq:  make([]float64, classes*d),
	}
}

// Add accumulates one row of class c.
func (p *CountPartial) Add(c int, row []float64) {
	p.Counts[c]++
	base := c * len(row)
	for j, v := range row {
		p.Sum[base+j] += v
		p.SumSq[base+j] += v * v
	}
}

// MergeCounts folds src into dst with the local scan's exact merge
// operations.
func MergeCounts(dst, src *CountPartial) {
	blas.Axpy(1, src.Counts, dst.Counts)
	blas.Axpy(1, src.Sum, dst.Sum)
	blas.Axpy(1, src.SumSq, dst.SumSq)
}

// CountGroups computes the per-merge-group class-statistic partials —
// the worker half of a distributed fit. groupRows must be the
// coordinator's global group height.
func CountGroups(ctx context.Context, x *mat.Dense, y []int, classes int, workers, groupRows int) ([]exec.GroupPartial[*CountPartial], float64, error) {
	d := x.Cols()
	scan := x.ScanCtx(ctx, workers).Named("bayes moments")
	scan.GroupRows = groupRows
	return exec.ReduceRowGroups(scan,
		func() *CountPartial { return NewCountPartial(classes, d) },
		func(p *CountPartial, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				p.Add(y[i], block[(i-lo)*stride:(i-lo)*stride+d])
			}
		},
		MergeCounts)
}

// ModelFromCounts closes the fit over the folded statistics — mean,
// biased variance with smoothing, log priors — the arithmetic shared
// by the local and distributed paths. n is the global row count.
func ModelFromCounts(acc *CountPartial, n, classes, d int, varSmoothing float64) (*Model, error) {
	m := &Model{
		Classes:  classes,
		Features: d,
		Mean:     make([]float64, classes*d),
		Var:      make([]float64, classes*d),
		LogPrior: make([]float64, classes),
	}
	counts, sum, sumSq := acc.Counts, acc.Sum, acc.SumSq
	var maxVar float64
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			return nil, fmt.Errorf("bayes: class %d has no examples", c)
		}
		m.LogPrior[c] = math.Log(counts[c] / float64(n))
		base := c * d
		for j := 0; j < d; j++ {
			mean := sum[base+j] / counts[c]
			variance := sumSq[base+j]/counts[c] - mean*mean
			if variance < 0 {
				variance = 0 // numerical floor
			}
			m.Mean[base+j] = mean
			m.Var[base+j] = variance
			if variance > maxVar {
				maxVar = variance
			}
		}
	}
	eps := varSmoothing * math.Max(maxVar, 1e-12)
	for i := range m.Var {
		m.Var[i] += eps
	}
	return m, nil
}

// DefaultVarSmoothing resolves the smoothing knob the way Train does,
// so distributed callers share the default.
func DefaultVarSmoothing(v float64) float64 {
	return Options{VarSmoothing: v}.withDefaults().VarSmoothing
}

// LogScores writes per-class joint log-likelihoods into dst
// (length Classes).
func (m *Model) LogScores(row []float64, dst []float64) {
	if len(row) != m.Features || len(dst) != m.Classes {
		panic(fmt.Sprintf("bayes: shapes row=%d dst=%d model=(%d,%d)", len(row), len(dst), m.Features, m.Classes))
	}
	for c := 0; c < m.Classes; c++ {
		base := c * m.Features
		s := m.LogPrior[c]
		for j, v := range row {
			diff := v - m.Mean[base+j]
			s += -0.5 * (math.Log(2*math.Pi*m.Var[base+j]) + diff*diff/m.Var[base+j])
		}
		dst[c] = s
	}
}

// Predict returns the maximum-a-posteriori class.
func (m *Model) Predict(row []float64) int {
	scores := make([]float64, m.Classes)
	m.LogScores(row, scores)
	best, bestC := math.Inf(-1), 0
	for c, s := range scores {
		if s > best {
			best, bestC = s, c
		}
	}
	return bestC
}

// Accuracy scores the model over a labelled matrix (one scan).
func (m *Model) Accuracy(x *mat.Dense, y []int) float64 {
	if x.Rows() == 0 {
		return 0
	}
	scores := make([]float64, m.Classes)
	correct := 0
	x.ForEachRow(func(i int, row []float64) {
		m.LogScores(row, scores)
		best, bestC := math.Inf(-1), 0
		for c, s := range scores {
			if s > best {
				best, bestC = s, c
			}
		}
		if bestC == y[i] {
			correct++
		}
	})
	return float64(correct) / float64(x.Rows())
}
