// Package bayes implements Gaussian naive Bayes classification.
// Training is a single streaming pass computing per-class feature
// means and variances — the cheapest possible M3 workload (one scan
// total, against one scan *per iteration* for the optimizers), which
// makes it a useful lower-bound baseline in scan-count ablations.
package bayes

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
)

// Options configures training.
type Options struct {
	// FitOptions carries the shared training surface; Workers sizes
	// the counting scan's pool (<= 0: engine hint, then NumCPU). The
	// fitted model is identical for every value.
	fit.FitOptions
	// VarSmoothing is added to every variance for numerical safety,
	// scaled by the largest feature variance (default 1e-9, the
	// scikit-learn convention).
	VarSmoothing float64
}

func (o Options) withDefaults() Options {
	if o.VarSmoothing <= 0 {
		o.VarSmoothing = 1e-9
	}
	return o
}

// Model is a fitted Gaussian naive Bayes classifier.
type Model struct {
	// Classes is the class count.
	Classes int
	// Features is the feature count.
	Features int
	// Mean is row-major Classes×Features.
	Mean []float64
	// Var is row-major Classes×Features (smoothed).
	Var []float64
	// LogPrior has one entry per class.
	LogPrior []float64
}

// Train fits the model in one pass over x. Labels must be integers in
// [0, classes). ctx cancels the counting scan within one data block.
func Train(ctx context.Context, x *mat.Dense, y []int, classes int, opts Options) (*Model, error) {
	o := opts.withDefaults()
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	n, d := x.Dims()
	if n != len(y) {
		return nil, fmt.Errorf("bayes: %d rows but %d labels", n, len(y))
	}
	if classes < 2 {
		return nil, fmt.Errorf("bayes: need >= 2 classes, got %d", classes)
	}
	for i, v := range y {
		if v < 0 || v >= classes {
			return nil, fmt.Errorf("bayes: label[%d] = %d outside [0,%d)", i, v, classes)
		}
	}

	m := &Model{
		Classes:  classes,
		Features: d,
		Mean:     make([]float64, classes*d),
		Var:      make([]float64, classes*d),
		LogPrior: make([]float64, classes),
	}
	// Single blocked scan on the shared execution layer: each block
	// accumulates per-class count, sum and sum-of-squares partials,
	// merged in block order so the model is identical for any worker
	// count.
	acc, _, err := exec.ReduceRows(x.ScanCtx(ctx, o.Workers).Named("bayes moments"),
		func() *countPartial {
			return &countPartial{
				counts: make([]float64, classes),
				sum:    make([]float64, classes*d),
				sumSq:  make([]float64, classes*d),
			}
		},
		func(p *countPartial, i int, row []float64) {
			c := y[i]
			p.counts[c]++
			base := c * d
			for j, v := range row {
				p.sum[base+j] += v
				p.sumSq[base+j] += v * v
			}
		},
		func(dst, src *countPartial) {
			blas.Axpy(1, src.counts, dst.counts)
			blas.Axpy(1, src.sum, dst.sum)
			blas.Axpy(1, src.sumSq, dst.sumSq)
		})
	if err != nil {
		return nil, err
	}
	counts, sum, sumSq := acc.counts, acc.sum, acc.sumSq

	var maxVar float64
	for c := 0; c < classes; c++ {
		if counts[c] == 0 {
			return nil, fmt.Errorf("bayes: class %d has no examples", c)
		}
		m.LogPrior[c] = math.Log(counts[c] / float64(n))
		base := c * d
		for j := 0; j < d; j++ {
			mean := sum[base+j] / counts[c]
			variance := sumSq[base+j]/counts[c] - mean*mean
			if variance < 0 {
				variance = 0 // numerical floor
			}
			m.Mean[base+j] = mean
			m.Var[base+j] = variance
			if variance > maxVar {
				maxVar = variance
			}
		}
	}
	eps := o.VarSmoothing * math.Max(maxVar, 1e-12)
	for i := range m.Var {
		m.Var[i] += eps
	}
	return m, nil
}

// countPartial is one block's share of the class statistics.
type countPartial struct {
	counts, sum, sumSq []float64
}

// LogScores writes per-class joint log-likelihoods into dst
// (length Classes).
func (m *Model) LogScores(row []float64, dst []float64) {
	if len(row) != m.Features || len(dst) != m.Classes {
		panic(fmt.Sprintf("bayes: shapes row=%d dst=%d model=(%d,%d)", len(row), len(dst), m.Features, m.Classes))
	}
	for c := 0; c < m.Classes; c++ {
		base := c * m.Features
		s := m.LogPrior[c]
		for j, v := range row {
			diff := v - m.Mean[base+j]
			s += -0.5 * (math.Log(2*math.Pi*m.Var[base+j]) + diff*diff/m.Var[base+j])
		}
		dst[c] = s
	}
}

// Predict returns the maximum-a-posteriori class.
func (m *Model) Predict(row []float64) int {
	scores := make([]float64, m.Classes)
	m.LogScores(row, scores)
	best, bestC := math.Inf(-1), 0
	for c, s := range scores {
		if s > best {
			best, bestC = s, c
		}
	}
	return bestC
}

// Accuracy scores the model over a labelled matrix (one scan).
func (m *Model) Accuracy(x *mat.Dense, y []int) float64 {
	if x.Rows() == 0 {
		return 0
	}
	scores := make([]float64, m.Classes)
	correct := 0
	x.ForEachRow(func(i int, row []float64) {
		m.LogScores(row, scores)
		best, bestC := math.Inf(-1), 0
		for c, s := range scores {
			if s > best {
				best, bestC = s, c
			}
		}
		if bestC == y[i] {
			correct++
		}
	})
	return float64(correct) / float64(x.Rows())
}
