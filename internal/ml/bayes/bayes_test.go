package bayes

import (
	"context"
	"math"
	"testing"

	"m3/internal/infimnist"
	"m3/internal/mat"
)

func gaussBlobs(n int) (*mat.Dense, []int) {
	x := mat.NewDense(n, 2)
	y := make([]int, n)
	r := uint64(2024)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000)/1000 - 0.5
	}
	for i := 0; i < n; i++ {
		c := i % 3
		y[i] = c
		x.Set(i, 0, float64(c*6)+next())
		x.Set(i, 1, float64(c*-4)+next())
	}
	return x, y
}

func TestTrainSeparatesBlobs(t *testing.T) {
	x, y := gaussBlobs(300)
	m, err := Train(context.Background(), x, y, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.99 {
		t.Errorf("accuracy = %v", acc)
	}
	// Means recovered per class.
	for c := 0; c < 3; c++ {
		if math.Abs(m.Mean[c*2]-float64(c*6)) > 0.2 {
			t.Errorf("class %d mean[0] = %v want ~%d", c, m.Mean[c*2], c*6)
		}
	}
	// Priors are uniform thirds.
	for c := 0; c < 3; c++ {
		if math.Abs(math.Exp(m.LogPrior[c])-1.0/3) > 1e-9 {
			t.Errorf("prior[%d] = %v", c, math.Exp(m.LogPrior[c]))
		}
	}
}

func TestTrainValidation(t *testing.T) {
	x, y := gaussBlobs(9)
	if _, err := Train(context.Background(), x, y[:5], 3, Options{}); err == nil {
		t.Error("accepted label mismatch")
	}
	if _, err := Train(context.Background(), x, y, 1, Options{}); err == nil {
		t.Error("accepted 1 class")
	}
	if _, err := Train(context.Background(), x, y, 5, Options{}); err == nil {
		t.Error("accepted empty class")
	}
	bad := append([]int(nil), y...)
	bad[0] = 7
	if _, err := Train(context.Background(), x, bad, 3, Options{}); err == nil {
		t.Error("accepted out-of-range label")
	}
}

func TestDigitsOnePassAccuracy(t *testing.T) {
	g := infimnist.Generator{Seed: 15}
	const n = 400
	xs, labels := g.Matrix(0, n)
	x := mat.NewDenseFrom(xs, n, infimnist.Features)
	y := make([]int, n)
	for i, v := range labels {
		y[i] = int(v)
	}
	m, err := Train(context.Background(), x, y, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.85 {
		t.Errorf("digit train accuracy = %v", acc)
	}
	// Held out.
	xt, lt := g.Matrix(50000, 200)
	xm := mat.NewDenseFrom(xt, 200, infimnist.Features)
	yt := make([]int, 200)
	for i, v := range lt {
		yt[i] = int(v)
	}
	if acc := m.Accuracy(xm, yt); acc < 0.75 {
		t.Errorf("digit held-out accuracy = %v", acc)
	}
}

func TestZeroVarianceFeatureHandled(t *testing.T) {
	// A constant feature must not produce NaN scores.
	x := mat.NewDense(6, 2)
	y := []int{0, 1, 0, 1, 0, 1}
	for i := 0; i < 6; i++ {
		x.Set(i, 0, 1) // constant
		x.Set(i, 1, float64(i%2)*10)
	}
	m, err := Train(context.Background(), x, y, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scores := make([]float64, 2)
	m.LogScores([]float64{1, 0}, scores)
	for c, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 1) {
			t.Errorf("score[%d] = %v", c, s)
		}
	}
	if m.Predict([]float64{1, 0}) != 0 {
		t.Error("misclassified obvious example")
	}
}

func TestLogScoresPanicsOnShape(t *testing.T) {
	x, y := gaussBlobs(30)
	m, err := Train(context.Background(), x, y, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.LogScores([]float64{1}, make([]float64, 3))
}
