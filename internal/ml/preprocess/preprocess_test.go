package preprocess

import (
	"context"
	"m3/internal/fit"
	"math"
	"testing"
	"testing/quick"

	"m3/internal/mat"
)

func sampleMatrix() *mat.Dense {
	x := mat.NewDense(4, 3)
	vals := [][]float64{
		{1, 100, 5},
		{2, 200, 5},
		{3, 300, 5},
		{4, 400, 5},
	}
	for i, row := range vals {
		x.SetRow(i, row)
	}
	return x
}

func TestFitStandard(t *testing.T) {
	s, err := FitStandard(context.Background(), sampleMatrix(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean[0]-2.5) > 1e-12 || math.Abs(s.Mean[1]-250) > 1e-9 {
		t.Errorf("means = %v", s.Mean)
	}
	// Population std of {1,2,3,4} = sqrt(1.25).
	if math.Abs(s.Std[0]-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("std[0] = %v", s.Std[0])
	}
	// Constant feature gets std 1 (no divide-by-zero).
	if s.Std[2] != 1 {
		t.Errorf("constant feature std = %v", s.Std[2])
	}
}

func TestStandardTransformInPlace(t *testing.T) {
	x := sampleMatrix()
	s, err := FitStandard(context.Background(), x, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Transform(x); err != nil {
		t.Fatal(err)
	}
	// Column means ~0, stds ~1 afterwards.
	for j := 0; j < 2; j++ {
		var mean float64
		for i := 0; i < 4; i++ {
			mean += x.At(i, j)
		}
		mean /= 4
		if math.Abs(mean) > 1e-12 {
			t.Errorf("col %d mean after transform = %v", j, mean)
		}
	}
	// Constant column became zeros.
	for i := 0; i < 4; i++ {
		if x.At(i, 2) != 0 {
			t.Errorf("constant col row %d = %v", i, x.At(i, 2))
		}
	}
}

func TestStandardValidation(t *testing.T) {
	one := mat.NewDense(1, 2)
	if _, err := FitStandard(context.Background(), one, Options{}); err == nil {
		t.Error("accepted single row")
	}
	s, err := FitStandard(context.Background(), sampleMatrix(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wrong := mat.NewDense(2, 5)
	if err := s.Transform(wrong); err == nil {
		t.Error("accepted wrong width")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.TransformRow([]float64{1})
}

func TestFitMinMax(t *testing.T) {
	s, err := FitMinMax(context.Background(), sampleMatrix(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min[0] != 1 || s.Range[0] != 3 {
		t.Errorf("min/range[0] = %v/%v", s.Min[0], s.Range[0])
	}
	row := []float64{4, 100, 5}
	s.TransformRow(row)
	if row[0] != 1 || row[1] != 0 {
		t.Errorf("transformed = %v", row)
	}
	if row[2] != 0 {
		t.Errorf("constant feature = %v want 0", row[2])
	}
}

func TestBinaryLabels(t *testing.T) {
	got := BinaryLabels([]float64{0, 1, 2, 0, 5}, 0)
	want := []float64{1, 0, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BinaryLabels = %v", got)
		}
	}
}

func TestIntLabels(t *testing.T) {
	got, err := IntLabels([]float64{0, 3, 9}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 3 {
		t.Errorf("IntLabels = %v", got)
	}
	if _, err := IntLabels([]float64{1.5}, 10); err == nil {
		t.Error("accepted fractional label")
	}
	if _, err := IntLabels([]float64{10}, 10); err == nil {
		t.Error("accepted out-of-range label")
	}
	if _, err := IntLabels([]float64{-1}, 10); err == nil {
		t.Error("accepted negative label")
	}
}

// Property: standardization then inverse recovers the original row.
func TestPropertyStandardInvertible(t *testing.T) {
	f := func(seed int64) bool {
		r := uint64(seed)
		if r == 0 {
			r = 1
		}
		next := func() float64 {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return float64(r%2000)/100 - 10
		}
		x := mat.NewDense(8, 3)
		for i := 0; i < 8; i++ {
			for j := 0; j < 3; j++ {
				x.Set(i, j, next())
			}
		}
		s, err := FitStandard(context.Background(), x, Options{})
		if err != nil {
			return false
		}
		orig := append([]float64(nil), x.RawRow(4)...)
		row := append([]float64(nil), orig...)
		s.TransformRow(row)
		for j := range row {
			back := row[j]*s.Std[j] + s.Mean[j]
			if math.Abs(back-orig[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFitScansDeterministicAcrossWorkers: the blocked moment and
// extrema scans produce bit-identical scalers for every worker count
// (the block partition and merge order never consult it).
func TestFitScansDeterministicAcrossWorkers(t *testing.T) {
	x := mat.NewDense(1500, 8)
	r := uint64(99)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%100000)/1000 - 50
	}
	for i := 0; i < 1500; i++ {
		for j := 0; j < 8; j++ {
			x.Set(i, j, next())
		}
	}
	refStd, err := FitStandard(context.Background(), x, Options{FitOptions: fit.FitOptions{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	refMM, err := FitMinMax(context.Background(), x, Options{FitOptions: fit.FitOptions{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		s, err := FitStandard(context.Background(), x, Options{FitOptions: fit.FitOptions{Workers: workers}})
		if err != nil {
			t.Fatal(err)
		}
		m, err := FitMinMax(context.Background(), x, Options{FitOptions: fit.FitOptions{Workers: workers}})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 8; j++ {
			if s.Mean[j] != refStd.Mean[j] || s.Std[j] != refStd.Std[j] {
				t.Fatalf("workers=%d: standard scaler differs at feature %d", workers, j)
			}
			if m.Min[j] != refMM.Min[j] || m.Range[j] != refMM.Range[j] {
				t.Fatalf("workers=%d: min-max scaler differs at feature %d", workers, j)
			}
		}
	}
}

// TestFitStandardCancellation: a pre-cancelled context aborts the scan.
func TestFitStandardCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FitStandard(ctx, sampleMatrix(), Options{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := FitMinMax(ctx, sampleMatrix(), Options{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
