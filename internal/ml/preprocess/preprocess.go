// Package preprocess provides feature scaling and label utilities
// fitted in single streaming passes, so preprocessing a memory-mapped
// dataset costs exactly one scan — the same currency every other M3
// stage is priced in.
//
// The fitting scans run blocked on the shared chunked-execution layer
// (internal/exec): each block accumulates its own moments (Welford) or
// extrema, and per-block partials merge in ascending block order with
// the parallel-moments combine of Chan et al. — so fitted scalers are
// bit-identical for every worker count and every storage backend.
package preprocess

import (
	"context"
	"fmt"
	"math"

	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
)

// Options configures a fitting scan.
type Options struct {
	// FitOptions carries the shared training surface; only Workers is
	// consulted (<= 0: engine hint, then NumCPU).
	fit.FitOptions
}

// StandardScaler centers features to zero mean and unit variance.
type StandardScaler struct {
	// Mean and Std are per-feature statistics; Std entries are
	// floored at a small epsilon so constant features map to zero.
	Mean []float64
	Std  []float64
}

// moments is one block's share of the per-feature running statistics
// (Welford within the block, Chan-style combine across blocks).
type moments struct {
	count float64
	mean  []float64
	m2    []float64
}

// mergeMoments folds src into dst with the parallel-variance combine
// (Chan, Golub & LeVeque): exact for counts, associative enough that
// the fixed block-order reduction is deterministic.
func mergeMoments(dst, src *moments) {
	if src.count == 0 {
		return
	}
	if dst.count == 0 {
		dst.count = src.count
		copy(dst.mean, src.mean)
		copy(dst.m2, src.m2)
		return
	}
	n := dst.count + src.count
	for j := range dst.mean {
		delta := src.mean[j] - dst.mean[j]
		dst.mean[j] += delta * src.count / n
		dst.m2[j] += src.m2[j] + delta*delta*dst.count*src.count/n
	}
	dst.count = n
}

// FitStandard computes per-feature mean and standard deviation in one
// blocked scan (per-block Welford, numerically stable for long
// streams; block partials merge in ascending block order). ctx cancels
// the scan within one data block.
func FitStandard(ctx context.Context, x *mat.Dense, opts Options) (*StandardScaler, error) {
	n, d := x.Dims()
	if n < 2 {
		return nil, fmt.Errorf("preprocess: need >= 2 rows, got %d", n)
	}
	acc, _, err := exec.ReduceRows(x.ScanCtx(ctx, opts.Workers).Named("scaler moments"),
		func() *moments {
			return &moments{mean: make([]float64, d), m2: make([]float64, d)}
		},
		func(m *moments, i int, row []float64) {
			m.count++
			for j, v := range row {
				delta := v - m.mean[j]
				m.mean[j] += delta / m.count
				m.m2[j] += delta * (v - m.mean[j])
			}
		},
		mergeMoments)
	if err != nil {
		return nil, err
	}
	std := make([]float64, d)
	for j := range std {
		std[j] = math.Sqrt(acc.m2[j] / acc.count)
		if std[j] < 1e-12 {
			std[j] = 1 // constant feature: leave centered at zero
		}
	}
	return &StandardScaler{Mean: acc.mean, Std: std}, nil
}

// TransformRow standardizes one row in place.
func (s *StandardScaler) TransformRow(row []float64) {
	if len(row) != len(s.Mean) {
		panic(fmt.Sprintf("preprocess: row has %d features, scaler has %d", len(row), len(s.Mean)))
	}
	for j := range row {
		row[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
}

// Transform standardizes every row of a writable matrix in place
// (one scan).
func (s *StandardScaler) Transform(x *mat.Dense) error {
	_, d := x.Dims()
	if d != len(s.Mean) {
		return fmt.Errorf("preprocess: matrix has %d features, scaler has %d", d, len(s.Mean))
	}
	if !x.Store().Writable() {
		return fmt.Errorf("preprocess: matrix store is read-only")
	}
	x.ForEachRow(func(i int, row []float64) {
		s.TransformRow(row)
	})
	return nil
}

// MinMaxScaler maps features into [0, 1] by observed range.
type MinMaxScaler struct {
	// Min and Range are per-feature; Range entries are floored so
	// constant features map to zero.
	Min   []float64
	Range []float64
}

// extrema is one block's per-feature minima and maxima.
type extrema struct {
	lo, hi []float64
}

// FitMinMax computes per-feature minima and ranges in one blocked scan
// (per-block extrema merge elementwise in block order — min and max
// are exactly associative, so the result equals the sequential scan
// bit for bit). ctx cancels the scan within one data block.
func FitMinMax(ctx context.Context, x *mat.Dense, opts Options) (*MinMaxScaler, error) {
	n, d := x.Dims()
	if n < 1 {
		return nil, fmt.Errorf("preprocess: empty matrix")
	}
	acc, _, err := exec.ReduceRows(x.ScanCtx(ctx, opts.Workers).Named("minmax extrema"),
		func() *extrema {
			e := &extrema{lo: make([]float64, d), hi: make([]float64, d)}
			for j := 0; j < d; j++ {
				e.lo[j] = math.Inf(1)
				e.hi[j] = math.Inf(-1)
			}
			return e
		},
		func(e *extrema, i int, row []float64) {
			for j, v := range row {
				if v < e.lo[j] {
					e.lo[j] = v
				}
				if v > e.hi[j] {
					e.hi[j] = v
				}
			}
		},
		func(dst, src *extrema) {
			for j := range dst.lo {
				if src.lo[j] < dst.lo[j] {
					dst.lo[j] = src.lo[j]
				}
				if src.hi[j] > dst.hi[j] {
					dst.hi[j] = src.hi[j]
				}
			}
		})
	if err != nil {
		return nil, err
	}
	rng := make([]float64, d)
	for j := range rng {
		rng[j] = acc.hi[j] - acc.lo[j]
		if rng[j] < 1e-12 {
			rng[j] = 1
		}
	}
	return &MinMaxScaler{Min: acc.lo, Range: rng}, nil
}

// TransformRow rescales one row in place.
func (s *MinMaxScaler) TransformRow(row []float64) {
	if len(row) != len(s.Min) {
		panic(fmt.Sprintf("preprocess: row has %d features, scaler has %d", len(row), len(s.Min)))
	}
	for j := range row {
		row[j] = (row[j] - s.Min[j]) / s.Range[j]
	}
}

// BinaryLabels converts multiclass labels to a 0/1 vector marking the
// positive class — the "digit d vs rest" tasks of the experiments.
func BinaryLabels(labels []float64, positive float64) []float64 {
	out := make([]float64, len(labels))
	for i, v := range labels {
		//m3vet:allow floateq -- class labels are exact ids, never computed
		if v == positive {
			out[i] = 1
		}
	}
	return out
}

// IntLabels converts float labels to ints, validating they are whole
// numbers within [0, classes).
func IntLabels(labels []float64, classes int) ([]int, error) {
	out := make([]int, len(labels))
	for i, v := range labels {
		n := int(v)
		//m3vet:allow floateq -- integrality check: exact comparison is the test
		if float64(n) != v || n < 0 || n >= classes {
			return nil, fmt.Errorf("preprocess: label[%d] = %v not an integer in [0,%d)", i, v, classes)
		}
		out[i] = n
	}
	return out, nil
}
