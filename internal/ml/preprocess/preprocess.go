// Package preprocess provides feature scaling and label utilities
// fitted in single streaming passes, so preprocessing a memory-mapped
// dataset costs exactly one scan — the same currency every other M3
// stage is priced in.
package preprocess

import (
	"fmt"
	"math"

	"m3/internal/mat"
)

// StandardScaler centers features to zero mean and unit variance.
type StandardScaler struct {
	// Mean and Std are per-feature statistics; Std entries are
	// floored at a small epsilon so constant features map to zero.
	Mean []float64
	Std  []float64
}

// FitStandard computes per-feature mean and standard deviation in one
// scan (Welford's algorithm, numerically stable for long streams).
func FitStandard(x *mat.Dense) (*StandardScaler, error) {
	n, d := x.Dims()
	if n < 2 {
		return nil, fmt.Errorf("preprocess: need >= 2 rows, got %d", n)
	}
	mean := make([]float64, d)
	m2 := make([]float64, d)
	count := 0.0
	x.ForEachRow(func(i int, row []float64) {
		count++
		for j, v := range row {
			delta := v - mean[j]
			mean[j] += delta / count
			m2[j] += delta * (v - mean[j])
		}
	})
	std := make([]float64, d)
	for j := range std {
		std[j] = math.Sqrt(m2[j] / count)
		if std[j] < 1e-12 {
			std[j] = 1 // constant feature: leave centered at zero
		}
	}
	return &StandardScaler{Mean: mean, Std: std}, nil
}

// TransformRow standardizes one row in place.
func (s *StandardScaler) TransformRow(row []float64) {
	if len(row) != len(s.Mean) {
		panic(fmt.Sprintf("preprocess: row has %d features, scaler has %d", len(row), len(s.Mean)))
	}
	for j := range row {
		row[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
}

// Transform standardizes every row of a writable matrix in place
// (one scan).
func (s *StandardScaler) Transform(x *mat.Dense) error {
	_, d := x.Dims()
	if d != len(s.Mean) {
		return fmt.Errorf("preprocess: matrix has %d features, scaler has %d", d, len(s.Mean))
	}
	if !x.Store().Writable() {
		return fmt.Errorf("preprocess: matrix store is read-only")
	}
	x.ForEachRow(func(i int, row []float64) {
		s.TransformRow(row)
	})
	return nil
}

// MinMaxScaler maps features into [0, 1] by observed range.
type MinMaxScaler struct {
	// Min and Range are per-feature; Range entries are floored so
	// constant features map to zero.
	Min   []float64
	Range []float64
}

// FitMinMax computes per-feature minima and ranges in one scan.
func FitMinMax(x *mat.Dense) (*MinMaxScaler, error) {
	n, d := x.Dims()
	if n < 1 {
		return nil, fmt.Errorf("preprocess: empty matrix")
	}
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := range lo {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	x.ForEachRow(func(i int, row []float64) {
		for j, v := range row {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	})
	rng := make([]float64, d)
	for j := range rng {
		rng[j] = hi[j] - lo[j]
		if rng[j] < 1e-12 {
			rng[j] = 1
		}
	}
	return &MinMaxScaler{Min: lo, Range: rng}, nil
}

// TransformRow rescales one row in place.
func (s *MinMaxScaler) TransformRow(row []float64) {
	if len(row) != len(s.Min) {
		panic(fmt.Sprintf("preprocess: row has %d features, scaler has %d", len(row), len(s.Min)))
	}
	for j := range row {
		row[j] = (row[j] - s.Min[j]) / s.Range[j]
	}
}

// BinaryLabels converts multiclass labels to a 0/1 vector marking the
// positive class — the "digit d vs rest" tasks of the experiments.
func BinaryLabels(labels []float64, positive float64) []float64 {
	out := make([]float64, len(labels))
	for i, v := range labels {
		if v == positive {
			out[i] = 1
		}
	}
	return out
}

// IntLabels converts float labels to ints, validating they are whole
// numbers within [0, classes).
func IntLabels(labels []float64, classes int) ([]int, error) {
	out := make([]int, len(labels))
	for i, v := range labels {
		n := int(v)
		if float64(n) != v || n < 0 || n >= classes {
			return nil, fmt.Errorf("preprocess: label[%d] = %v not an integer in [0,%d)", i, v, classes)
		}
		out[i] = n
	}
	return out, nil
}
