// Package preprocess provides feature scaling and label utilities
// fitted in single streaming passes, so preprocessing a memory-mapped
// dataset costs exactly one scan — the same currency every other M3
// stage is priced in.
//
// The fitting scans run blocked on the shared chunked-execution layer
// (internal/exec): each block accumulates its own moments (Welford) or
// extrema, and per-block partials merge in ascending block order with
// the parallel-moments combine of Chan et al. — so fitted scalers are
// bit-identical for every worker count and every storage backend.
package preprocess

import (
	"context"
	"fmt"
	"math"

	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
)

// Options configures a fitting scan.
type Options struct {
	// FitOptions carries the shared training surface; only Workers is
	// consulted (<= 0: engine hint, then NumCPU).
	fit.FitOptions
}

// StandardScaler centers features to zero mean and unit variance.
type StandardScaler struct {
	// Mean and Std are per-feature statistics; Std entries are
	// floored at a small epsilon so constant features map to zero.
	Mean []float64
	Std  []float64
}

// Moments is one merge group's (or block's) share of the per-feature
// running statistics (Welford within the block, Chan-style combine
// across blocks) — the shardable aggregate of a standard-scaler fit.
// Fields are exported for gob.
type Moments struct {
	Count float64
	Mean  []float64
	M2    []float64
}

// NewMoments returns a zero moments state for d features.
func NewMoments(d int) *Moments {
	return &Moments{Mean: make([]float64, d), M2: make([]float64, d)}
}

// Add accumulates one row (Welford update).
func (m *Moments) Add(row []float64) {
	m.Count++
	for j, v := range row {
		delta := v - m.Mean[j]
		m.Mean[j] += delta / m.Count
		m.M2[j] += delta * (v - m.Mean[j])
	}
}

// MergeMoments folds src into dst with the parallel-variance combine
// (Chan, Golub & LeVeque): exact for counts, associative enough that
// the fixed block-order reduction is deterministic.
func MergeMoments(dst, src *Moments) {
	if src.Count == 0 {
		return
	}
	if dst.Count == 0 {
		dst.Count = src.Count
		copy(dst.Mean, src.Mean)
		copy(dst.M2, src.M2)
		return
	}
	n := dst.Count + src.Count
	for j := range dst.Mean {
		delta := src.Mean[j] - dst.Mean[j]
		dst.Mean[j] += delta * src.Count / n
		dst.M2[j] += src.M2[j] + delta*delta*dst.Count*src.Count/n
	}
	dst.Count = n
}

// MomentGroups computes the per-merge-group moment partials — the
// worker half of a distributed scaler fit. groupRows must be the
// coordinator's global group height.
func MomentGroups(ctx context.Context, x *mat.Dense, workers, groupRows int) ([]exec.GroupPartial[*Moments], float64, error) {
	d := x.Cols()
	scan := x.ScanCtx(ctx, workers).Named("scaler moments")
	scan.GroupRows = groupRows
	return exec.ReduceRowGroups(scan,
		func() *Moments { return NewMoments(d) },
		func(m *Moments, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				m.Add(block[(i-lo)*stride : (i-lo)*stride+d])
			}
		},
		MergeMoments)
}

// StandardFromMoments closes a standard-scaler fit over the folded
// moments — the arithmetic shared by the local and distributed paths.
func StandardFromMoments(acc *Moments) *StandardScaler {
	d := len(acc.Mean)
	std := make([]float64, d)
	for j := range std {
		std[j] = math.Sqrt(acc.M2[j] / acc.Count)
		if std[j] < 1e-12 {
			std[j] = 1 // constant feature: leave centered at zero
		}
	}
	return &StandardScaler{Mean: acc.Mean, Std: std}
}

// FitStandard computes per-feature mean and standard deviation in one
// blocked scan (per-block Welford, numerically stable for long
// streams; block partials merge in ascending block order). ctx cancels
// the scan within one data block.
func FitStandard(ctx context.Context, x *mat.Dense, opts Options) (*StandardScaler, error) {
	n, d := x.Dims()
	if n < 2 {
		return nil, fmt.Errorf("preprocess: need >= 2 rows, got %d", n)
	}
	acc, _, err := exec.ReduceRows(x.ScanCtx(ctx, opts.Workers).Named("scaler moments"),
		func() *Moments { return NewMoments(d) },
		func(m *Moments, i int, row []float64) { m.Add(row) },
		MergeMoments)
	if err != nil {
		return nil, err
	}
	return StandardFromMoments(acc), nil
}

// TransformRow standardizes one row in place.
func (s *StandardScaler) TransformRow(row []float64) {
	if len(row) != len(s.Mean) {
		panic(fmt.Sprintf("preprocess: row has %d features, scaler has %d", len(row), len(s.Mean)))
	}
	for j := range row {
		row[j] = (row[j] - s.Mean[j]) / s.Std[j]
	}
}

// Transform standardizes every row of a writable matrix in place
// (one scan).
func (s *StandardScaler) Transform(x *mat.Dense) error {
	_, d := x.Dims()
	if d != len(s.Mean) {
		return fmt.Errorf("preprocess: matrix has %d features, scaler has %d", d, len(s.Mean))
	}
	if !x.Store().Writable() {
		return fmt.Errorf("preprocess: matrix store is read-only")
	}
	x.ForEachRow(func(i int, row []float64) {
		s.TransformRow(row)
	})
	return nil
}

// MinMaxScaler maps features into [0, 1] by observed range.
type MinMaxScaler struct {
	// Min and Range are per-feature; Range entries are floored so
	// constant features map to zero.
	Min   []float64
	Range []float64
}

// Extrema is one merge group's (or block's) per-feature minima and
// maxima — the shardable aggregate of a min-max fit. Fields are
// exported for gob.
type Extrema struct {
	Lo, Hi []float64
}

// NewExtrema returns an identity extrema state for d features.
func NewExtrema(d int) *Extrema {
	e := &Extrema{Lo: make([]float64, d), Hi: make([]float64, d)}
	for j := 0; j < d; j++ {
		e.Lo[j] = math.Inf(1)
		e.Hi[j] = math.Inf(-1)
	}
	return e
}

// Add accumulates one row.
func (e *Extrema) Add(row []float64) {
	for j, v := range row {
		if v < e.Lo[j] {
			e.Lo[j] = v
		}
		if v > e.Hi[j] {
			e.Hi[j] = v
		}
	}
}

// MergeExtrema folds src into dst (min/max are exactly associative).
func MergeExtrema(dst, src *Extrema) {
	for j := range dst.Lo {
		if src.Lo[j] < dst.Lo[j] {
			dst.Lo[j] = src.Lo[j]
		}
		if src.Hi[j] > dst.Hi[j] {
			dst.Hi[j] = src.Hi[j]
		}
	}
}

// ExtremaGroups computes the per-merge-group extrema partials — the
// worker half of a distributed min-max fit. groupRows must be the
// coordinator's global group height.
func ExtremaGroups(ctx context.Context, x *mat.Dense, workers, groupRows int) ([]exec.GroupPartial[*Extrema], float64, error) {
	d := x.Cols()
	scan := x.ScanCtx(ctx, workers).Named("minmax extrema")
	scan.GroupRows = groupRows
	return exec.ReduceRowGroups(scan,
		func() *Extrema { return NewExtrema(d) },
		func(e *Extrema, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				e.Add(block[(i-lo)*stride : (i-lo)*stride+d])
			}
		},
		MergeExtrema)
}

// MinMaxFromExtrema closes a min-max fit over the folded extrema —
// the arithmetic shared by the local and distributed paths.
func MinMaxFromExtrema(acc *Extrema) *MinMaxScaler {
	d := len(acc.Lo)
	rng := make([]float64, d)
	for j := range rng {
		rng[j] = acc.Hi[j] - acc.Lo[j]
		if rng[j] < 1e-12 {
			rng[j] = 1
		}
	}
	return &MinMaxScaler{Min: acc.Lo, Range: rng}
}

// FitMinMax computes per-feature minima and ranges in one blocked scan
// (per-block extrema merge elementwise in block order — min and max
// are exactly associative, so the result equals the sequential scan
// bit for bit). ctx cancels the scan within one data block.
func FitMinMax(ctx context.Context, x *mat.Dense, opts Options) (*MinMaxScaler, error) {
	n, d := x.Dims()
	if n < 1 {
		return nil, fmt.Errorf("preprocess: empty matrix")
	}
	acc, _, err := exec.ReduceRows(x.ScanCtx(ctx, opts.Workers).Named("minmax extrema"),
		func() *Extrema { return NewExtrema(d) },
		func(e *Extrema, i int, row []float64) { e.Add(row) },
		MergeExtrema)
	if err != nil {
		return nil, err
	}
	return MinMaxFromExtrema(acc), nil
}

// TransformRow rescales one row in place.
func (s *MinMaxScaler) TransformRow(row []float64) {
	if len(row) != len(s.Min) {
		panic(fmt.Sprintf("preprocess: row has %d features, scaler has %d", len(row), len(s.Min)))
	}
	for j := range row {
		row[j] = (row[j] - s.Min[j]) / s.Range[j]
	}
}

// BinaryLabels converts multiclass labels to a 0/1 vector marking the
// positive class — the "digit d vs rest" tasks of the experiments.
func BinaryLabels(labels []float64, positive float64) []float64 {
	out := make([]float64, len(labels))
	for i, v := range labels {
		//m3vet:allow floateq -- class labels are exact ids, never computed
		if v == positive {
			out[i] = 1
		}
	}
	return out
}

// IntLabels converts float labels to ints, validating they are whole
// numbers within [0, classes).
func IntLabels(labels []float64, classes int) ([]int, error) {
	out := make([]int, len(labels))
	for i, v := range labels {
		n := int(v)
		//m3vet:allow floateq -- integrality check: exact comparison is the test
		if float64(n) != v || n < 0 || n >= classes {
			return nil, fmt.Errorf("preprocess: label[%d] = %v not an integer in [0,%d)", i, v, classes)
		}
		out[i] = n
	}
	return out, nil
}
