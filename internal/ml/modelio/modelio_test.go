package modelio

import (
	"bytes"
	"context"
	"encoding/gob"
	"path/filepath"
	"testing"

	"m3/internal/infimnist"
	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/pca"
)

func digitData(t *testing.T, n int) (*mat.Dense, []float64, []int) {
	t.Helper()
	g := infimnist.Generator{Seed: 17}
	xs, labels := g.Matrix(0, int64(n))
	x := mat.NewDenseFrom(xs, n, infimnist.Features)
	yb := make([]float64, n)
	yi := make([]int, n)
	for i, v := range labels {
		yi[i] = int(v)
		if v == 0 {
			yb[i] = 1
		}
	}
	return x, yb, yi
}

func TestLogisticRoundTrip(t *testing.T) {
	x, y, _ := digitData(t, 80)
	m, err := logreg.Train(context.Background(), x, y, logreg.Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindLogistic {
		t.Errorf("kind = %v", kind)
	}
	lm := got.(*logreg.Model)
	if lm.Intercept != m.Intercept {
		t.Errorf("intercept %v != %v", lm.Intercept, m.Intercept)
	}
	if acc1, acc2 := m.Accuracy(x, y), lm.Accuracy(x, y); acc1 != acc2 {
		t.Errorf("accuracy changed: %v -> %v", acc1, acc2)
	}
}

func TestSoftmaxRoundTrip(t *testing.T) {
	x, _, yi := digitData(t, 80)
	m, err := logreg.TrainSoftmax(context.Background(), x, yi, 10, logreg.Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindSoftmax {
		t.Errorf("kind = %v", kind)
	}
	sm := got.(*logreg.SoftmaxModel)
	row := x.RawRow(5)
	if sm.Predict(row) != m.Predict(row) {
		t.Error("prediction changed after round trip")
	}
}

func TestLinearRoundTrip(t *testing.T) {
	x := mat.NewDense(50, 2)
	y := make([]float64, 50)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, float64(i%7))
		y[i] = 2*float64(i) - float64(i%7) + 1
	}
	m, err := linreg.Train(context.Background(), x, y, linreg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindLinear {
		t.Errorf("kind = %v", kind)
	}
	lm := got.(*linreg.Model)
	if lm.Predict(x.RawRow(3)) != m.Predict(x.RawRow(3)) {
		t.Error("prediction changed")
	}
}

func TestKMeansRoundTripFile(t *testing.T) {
	x, _, _ := digitData(t, 60)
	res, err := kmeans.Run(context.Background(), x, kmeans.Options{K: 4, Seed: 2, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "km.model")
	if err := SaveFile(path, res); err != nil {
		t.Fatal(err)
	}
	got, kind, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindKMeans {
		t.Errorf("kind = %v", kind)
	}
	km := got.(*kmeans.Result)
	row := x.RawRow(9)
	if km.Predict(row) != res.Predict(row) {
		t.Error("assignment changed after round trip")
	}
}

func TestBayesRoundTrip(t *testing.T) {
	x, _, yi := digitData(t, 100)
	m, err := bayes.Train(context.Background(), x, yi, 10, bayes.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindBayes {
		t.Errorf("kind = %v", kind)
	}
	bm := got.(*bayes.Model)
	if bm.Predict(x.RawRow(0)) != m.Predict(x.RawRow(0)) {
		t.Error("prediction changed")
	}
}

func TestSaveRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, 42); err == nil {
		t.Error("accepted int")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("loaded garbage")
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loaded missing file")
	}
}

func TestPCARoundTrip(t *testing.T) {
	x, _, _ := digitData(t, 80)
	res, err := pca.Fit(context.Background(), x, pca.Options{Components: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pca.model")
	if err := SaveFile(path, res); err != nil {
		t.Fatal(err)
	}
	got, kind, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindPCA {
		t.Errorf("kind = %v", kind)
	}
	pr := got.(*pca.Result)
	row := x.RawRow(11)
	want := make([]float64, 3)
	have := make([]float64, 3)
	res.Transform(row, want)
	pr.Transform(row, have)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("coordinate %d changed after round trip: %v vs %v", i, have[i], want[i])
		}
	}
	if pr.TotalVariance != res.TotalVariance {
		t.Errorf("total variance changed: %v vs %v", pr.TotalVariance, res.TotalVariance)
	}

	// Corrupt payload shape (component count disagreeing with K×D) is
	// rejected by Load. Encode the raw envelope directly so the writer
	// path cannot fix it up.
	var buf bytes.Buffer
	env := envelope{Version: version, Kind: KindPCA, Payload: pcaPayload{
		Components: []float64{1, 2, 3}, K: 2, D: 2,
	}}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(&buf); err == nil {
		t.Error("Load accepted a pca payload with 3 components for a 2x2 shape")
	}
}
