package modelio

import (
	"bytes"
	"context"
	"encoding/gob"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"m3/internal/infimnist"
	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/pca"
	"m3/internal/ml/preprocess"
)

func digitData(t *testing.T, n int) (*mat.Dense, []float64, []int) {
	t.Helper()
	g := infimnist.Generator{Seed: 17}
	xs, labels := g.Matrix(0, int64(n))
	x := mat.NewDenseFrom(xs, n, infimnist.Features)
	yb := make([]float64, n)
	yi := make([]int, n)
	for i, v := range labels {
		yi[i] = int(v)
		if v == 0 {
			yb[i] = 1
		}
	}
	return x, yb, yi
}

func TestLogisticRoundTrip(t *testing.T) {
	x, y, _ := digitData(t, 80)
	m, err := logreg.Train(context.Background(), x, y, logreg.Options{MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindLogistic {
		t.Errorf("kind = %v", kind)
	}
	lm := got.(*logreg.Model)
	if lm.Intercept != m.Intercept {
		t.Errorf("intercept %v != %v", lm.Intercept, m.Intercept)
	}
	if acc1, acc2 := m.Accuracy(x, y), lm.Accuracy(x, y); acc1 != acc2 {
		t.Errorf("accuracy changed: %v -> %v", acc1, acc2)
	}
}

func TestSoftmaxRoundTrip(t *testing.T) {
	x, _, yi := digitData(t, 80)
	m, err := logreg.TrainSoftmax(context.Background(), x, yi, 10, logreg.Options{MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindSoftmax {
		t.Errorf("kind = %v", kind)
	}
	sm := got.(*logreg.SoftmaxModel)
	row := x.RawRow(5)
	if sm.Predict(row) != m.Predict(row) {
		t.Error("prediction changed after round trip")
	}
}

func TestLinearRoundTrip(t *testing.T) {
	x := mat.NewDense(50, 2)
	y := make([]float64, 50)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, float64(i%7))
		y[i] = 2*float64(i) - float64(i%7) + 1
	}
	m, err := linreg.Train(context.Background(), x, y, linreg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindLinear {
		t.Errorf("kind = %v", kind)
	}
	lm := got.(*linreg.Model)
	if lm.Predict(x.RawRow(3)) != m.Predict(x.RawRow(3)) {
		t.Error("prediction changed")
	}
}

func TestKMeansRoundTripFile(t *testing.T) {
	x, _, _ := digitData(t, 60)
	res, err := kmeans.Run(context.Background(), x, kmeans.Options{K: 4, Seed: 2, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "km.model")
	if err := SaveFile(path, res); err != nil {
		t.Fatal(err)
	}
	got, kind, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindKMeans {
		t.Errorf("kind = %v", kind)
	}
	km := got.(*kmeans.Result)
	row := x.RawRow(9)
	if km.Predict(row) != res.Predict(row) {
		t.Error("assignment changed after round trip")
	}
}

func TestBayesRoundTrip(t *testing.T) {
	x, _, yi := digitData(t, 100)
	m, err := bayes.Train(context.Background(), x, yi, 10, bayes.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, kind, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindBayes {
		t.Errorf("kind = %v", kind)
	}
	bm := got.(*bayes.Model)
	if bm.Predict(x.RawRow(0)) != m.Predict(x.RawRow(0)) {
		t.Error("prediction changed")
	}
}

func TestSaveRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, 42); err == nil {
		t.Error("accepted int")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("loaded garbage")
	}
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loaded missing file")
	}
}

func TestPCARoundTrip(t *testing.T) {
	x, _, _ := digitData(t, 80)
	res, err := pca.Fit(context.Background(), x, pca.Options{Components: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pca.model")
	if err := SaveFile(path, res); err != nil {
		t.Fatal(err)
	}
	got, kind, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindPCA {
		t.Errorf("kind = %v", kind)
	}
	pr := got.(*pca.Result)
	row := x.RawRow(11)
	want := make([]float64, 3)
	have := make([]float64, 3)
	res.Transform(row, want)
	pr.Transform(row, have)
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("coordinate %d changed after round trip: %v vs %v", i, have[i], want[i])
		}
	}
	if pr.TotalVariance != res.TotalVariance {
		t.Errorf("total variance changed: %v vs %v", pr.TotalVariance, res.TotalVariance)
	}

	// Corrupt payload shape (component count disagreeing with K×D) is
	// rejected by Load. Encode the raw frames directly so the writer
	// path cannot fix it up.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(header{Version: version, Kind: KindPCA, Meta: Meta{InputCols: 2, OutputCols: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(payloadFrame{Payload: pcaPayload{
		Components: []float64{1, 2, 3}, K: 2, D: 2,
	}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(&buf); err == nil {
		t.Error("Load accepted a pca payload with 3 components for a 2x2 shape")
	}
}

func TestScalerRoundTrip(t *testing.T) {
	std := &preprocess.StandardScaler{Mean: []float64{1, 2, 3}, Std: []float64{0.5, 1, 2}}
	mm := &preprocess.MinMaxScaler{Min: []float64{-1, 0}, Range: []float64{2, 4}}

	for _, tc := range []struct {
		name  string
		model any
		kind  Kind
	}{
		{"standard", std, KindStandardScaler},
		{"minmax", mm, KindMinMaxScaler},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if k, err := KindOf(tc.model); err != nil || k != tc.kind {
				t.Fatalf("KindOf = %v (err %v), want %v", k, err, tc.kind)
			}
			path := filepath.Join(t.TempDir(), "s.model")
			if err := SaveFile(path, tc.model); err != nil {
				t.Fatal(err)
			}
			got, kind, err := LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if kind != tc.kind {
				t.Errorf("kind = %v", kind)
			}
			switch s := got.(type) {
			case *preprocess.StandardScaler:
				for i := range std.Mean {
					if s.Mean[i] != std.Mean[i] || s.Std[i] != std.Std[i] {
						t.Fatalf("feature %d changed after round trip", i)
					}
				}
			case *preprocess.MinMaxScaler:
				for i := range mm.Min {
					if s.Min[i] != mm.Min[i] || s.Range[i] != mm.Range[i] {
						t.Fatalf("feature %d changed after round trip", i)
					}
				}
			default:
				t.Fatalf("unexpected type %T", got)
			}
		})
	}

	// Corrupt scaler payloads (mismatched vector lengths) are rejected.
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(header{Version: version, Kind: KindStandardScaler, Meta: Meta{InputCols: 2, OutputCols: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(payloadFrame{Payload: standardScalerPayload{
		Mean: []float64{1, 2}, Std: []float64{1},
	}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(&buf); err == nil {
		t.Error("Load accepted a standard-scaler payload with 2 means and 1 std")
	}
}

func TestPipelineEnvelopeRoundTrip(t *testing.T) {
	// A pipeline whose stages cover a scaler, a decomposition and a
	// final model — each framed as a nested envelope.
	std := &preprocess.StandardScaler{Mean: []float64{0, 1}, Std: []float64{1, 2}}
	pc := &pca.Result{
		Components:  mat.NewDenseFrom([]float64{1, 0}, 1, 2),
		Eigenvalues: []float64{2}, Mean: []float64{0, 0}, TotalVariance: 3,
	}
	lm := &logreg.Model{Weights: []float64{0.5}, Intercept: -1}
	p := &Pipeline{Stages: []any{std, pc, lm}}

	path := filepath.Join(t.TempDir(), "p.model")
	if err := SaveFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, kind, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindPipeline {
		t.Errorf("kind = %v", kind)
	}
	lp := got.(*Pipeline)
	if len(lp.Stages) != 3 {
		t.Fatalf("%d stages after round trip", len(lp.Stages))
	}
	if s, ok := lp.Stages[0].(*preprocess.StandardScaler); !ok || s.Mean[1] != 1 {
		t.Errorf("stage 0 = %T", lp.Stages[0])
	}
	if s, ok := lp.Stages[1].(*pca.Result); !ok || s.TotalVariance != 3 {
		t.Errorf("stage 1 = %T", lp.Stages[1])
	}
	if s, ok := lp.Stages[2].(*logreg.Model); !ok || s.Intercept != -1 {
		t.Errorf("stage 2 = %T", lp.Stages[2])
	}

	// Nested pipelines (a pipeline stage that is itself a pipeline)
	// round-trip too.
	nested := &Pipeline{Stages: []any{std, p}}
	path2 := filepath.Join(t.TempDir(), "nested.model")
	if err := SaveFile(path2, nested); err != nil {
		t.Fatal(err)
	}
	got2, _, err := LoadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	inner, ok := got2.(*Pipeline).Stages[1].(*Pipeline)
	if !ok || len(inner.Stages) != 3 {
		t.Fatalf("nested stage = %T", got2.(*Pipeline).Stages[1])
	}

	// Empty pipelines have no serial form.
	if err := SaveFile(filepath.Join(t.TempDir(), "e.model"), &Pipeline{}); err == nil {
		t.Error("Save accepted an empty pipeline")
	}
}

func TestDescribeReadsHeaderOnly(t *testing.T) {
	std := &preprocess.StandardScaler{Mean: []float64{0, 1, 2}, Std: []float64{1, 2, 3}}
	pc := &pca.Result{
		Components:  mat.NewDenseFrom([]float64{1, 0, 0, 0, 1, 0}, 2, 3),
		Eigenvalues: []float64{2, 1}, Mean: []float64{0, 0, 0}, TotalVariance: 3,
	}
	sm := &logreg.SoftmaxModel{
		Weights: make([]float64, 2*4), Bias: make([]float64, 4), Classes: 4, Features: 2,
	}
	p := &Pipeline{Stages: []any{std, pc, sm}}

	for _, tc := range []struct {
		name  string
		model any
		kind  Kind
		want  Meta
	}{
		{"logistic", &logreg.Model{Weights: []float64{1, 2, 3}}, KindLogistic,
			Meta{InputCols: 3, Classes: 2}},
		{"softmax", sm, KindSoftmax, Meta{InputCols: 2, Classes: 4}},
		{"linear", &linreg.Model{Weights: []float64{1, 2}}, KindLinear,
			Meta{InputCols: 2}},
		{"kmeans", &kmeans.Result{Centroids: mat.NewDenseFrom(make([]float64, 15), 5, 3)},
			KindKMeans, Meta{InputCols: 3, Classes: 5}},
		{"bayes", &bayes.Model{Classes: 10, Features: 7,
			Mean: make([]float64, 70), Var: make([]float64, 70), LogPrior: make([]float64, 10)},
			KindBayes, Meta{InputCols: 7, Classes: 10}},
		{"pca", pc, KindPCA, Meta{InputCols: 3, OutputCols: 2}},
		{"standard-scaler", std, KindStandardScaler, Meta{InputCols: 3, OutputCols: 3}},
		{"pipeline", p, KindPipeline, Meta{
			InputCols: 3, Classes: 4,
			Stages: []Kind{KindStandardScaler, KindPCA, KindSoftmax},
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "m.model")
			if err := SaveFile(path, tc.model); err != nil {
				t.Fatal(err)
			}
			kind, meta, err := DescribeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if kind != tc.kind {
				t.Errorf("kind = %v, want %v", kind, tc.kind)
			}
			if meta.InputCols != tc.want.InputCols || meta.OutputCols != tc.want.OutputCols ||
				meta.Classes != tc.want.Classes {
				t.Errorf("meta = %+v, want %+v", meta, tc.want)
			}
			if len(meta.Stages) != len(tc.want.Stages) {
				t.Fatalf("stages = %v, want %v", meta.Stages, tc.want.Stages)
			}
			for i := range meta.Stages {
				if meta.Stages[i] != tc.want.Stages[i] {
					t.Errorf("stage %d = %v, want %v", i, meta.Stages[i], tc.want.Stages[i])
				}
			}
			// LoadMeta surfaces the same header next to the payload.
			_, lk, lm, err := LoadFileMeta(path)
			if err != nil {
				t.Fatal(err)
			}
			if lk != kind || lm.InputCols != meta.InputCols || lm.Classes != meta.Classes {
				t.Errorf("LoadFileMeta header %v/%+v disagrees with Describe %v/%+v", lk, lm, kind, meta)
			}
		})
	}
}

func TestDescribeStopsBeforePayload(t *testing.T) {
	// Describe must not read past the header frame: serve a file whose
	// payload frame is truncated and check the header still decodes.
	big := &logreg.Model{Weights: make([]float64, 1<<16)}
	var buf bytes.Buffer
	if err := Save(&buf, big); err != nil {
		t.Fatal(err)
	}
	full := buf.Len()
	truncated := bytes.NewReader(buf.Bytes()[:256])
	kind, meta, err := Describe(truncated)
	if err != nil {
		t.Fatalf("Describe on truncated payload: %v (file is %d bytes)", err, full)
	}
	if kind != KindLogistic || meta.InputCols != 1<<16 {
		t.Errorf("kind %v meta %+v", kind, meta)
	}
	// The same truncated bytes cannot Load.
	if _, _, err := Load(bytes.NewReader(buf.Bytes()[:256])); err == nil {
		t.Error("Load succeeded on a truncated payload frame")
	}
}

func TestDescribeRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(header{Version: version + 1, Kind: KindLinear}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Describe(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Describe accepted a future format version")
	}
	if _, _, err := Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Load accepted a future format version")
	}
}

// TestSaveBytesProcessIndependent pins the cross-process determinism
// of Save: gob allocates wire type IDs from a process-global counter,
// so without init's pinTypeIDs a process that gob-encoded anything
// else first (the distributed coordinator's wire protocol, say) would
// write byte-different files for the same model. The test re-execs
// itself as a helper that deliberately pollutes the gob ID space
// before saving, then compares the helper's bytes against an
// in-process save.
func TestSaveBytesProcessIndependent(t *testing.T) {
	model := &logreg.Model{Weights: []float64{0.5, -1.25, 3.0625}, Intercept: 0.75}
	if path := os.Getenv("MODELIO_SAVE_HELPER"); path != "" {
		// Simulate a coordinator: burn global type IDs on wire-ish
		// shapes before the model is ever saved.
		type wireFrame struct {
			Seq     int
			Payload []byte
			Tags    map[string]int
		}
		type wirePartial struct {
			Group int
			State []float64
		}
		enc := gob.NewEncoder(io.Discard)
		if err := enc.Encode(wireFrame{Seq: 1}); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode([]wirePartial{{Group: 2}}); err != nil {
			t.Fatal(err)
		}
		if err := SaveFile(path, model); err != nil {
			t.Fatal(err)
		}
		return
	}

	var local bytes.Buffer
	if err := Save(&local, model); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "helper.model")
	cmd := exec.Command(os.Args[0], "-test.run", "^TestSaveBytesProcessIndependent$", "-test.count=1")
	cmd.Env = append(os.Environ(), "MODELIO_SAVE_HELPER="+path)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("helper process: %v\n%s", err, out)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(local.Bytes(), got) {
		t.Fatalf("saved bytes depend on process gob history: in-process %d bytes, helper %d bytes", local.Len(), len(got))
	}
}
