// Package modelio persists trained models. The format is a small
// gob-encoded envelope with a kind tag and format version, so files
// are self-describing and future kinds can be added without breaking
// old readers.
package modelio

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/pca"
	"m3/internal/ml/preprocess"
)

// Kind tags a persisted model type.
type Kind string

// Supported model kinds.
const (
	KindLogistic       Kind = "logistic"
	KindSoftmax        Kind = "softmax"
	KindLinear         Kind = "linear"
	KindKMeans         Kind = "kmeans"
	KindBayes          Kind = "bayes"
	KindPCA            Kind = "pca"
	KindStandardScaler Kind = "standard-scaler"
	KindMinMaxScaler   Kind = "minmax-scaler"
	KindPipeline       Kind = "pipeline"
)

// Kinds lists every Kind Save can produce — the round-trip test
// surface.
func Kinds() []Kind {
	return []Kind{
		KindLogistic, KindSoftmax, KindLinear, KindKMeans, KindBayes,
		KindPCA, KindStandardScaler, KindMinMaxScaler, KindPipeline,
	}
}

// Pipeline is the neutral persisted form of a fitted estimator
// pipeline: the inner stage values in order — fitted transformers
// first, the final model last. Each stage is framed as a nested
// envelope on disk, so a pipeline file is a sequence of ordinary
// model files inside one KindPipeline frame and future stage kinds
// need no pipeline-side changes. The public root package converts
// between this and its FittedPipeline.
type Pipeline struct {
	// Stages holds values accepted by Save; the last entry is the
	// final model, everything before it a transformer.
	Stages []any
}

// version of the envelope format.
const version = 1

// envelope is the on-disk frame.
type envelope struct {
	Version int
	Kind    Kind
	Payload any
}

// payload structs keep persistence decoupled from in-memory types.

type logisticPayload struct {
	Weights   []float64
	Intercept float64
}

type softmaxPayload struct {
	Weights  []float64
	Bias     []float64
	Classes  int
	Features int
}

type linearPayload struct {
	Weights   []float64
	Intercept float64
}

type kmeansPayload struct {
	Centroids []float64
	K, D      int
}

type bayesPayload struct {
	Classes  int
	Features int
	Mean     []float64
	Var      []float64
	LogPrior []float64
}

type pcaPayload struct {
	Components    []float64 // row-major K×D
	K, D          int
	Eigenvalues   []float64
	Mean          []float64
	TotalVariance float64
}

type standardScalerPayload struct {
	Mean []float64
	Std  []float64
}

type minMaxScalerPayload struct {
	Min   []float64
	Range []float64
}

type pipelinePayload struct {
	// Stages are nested envelopes, one complete Save frame per stage.
	Stages [][]byte
}

func init() {
	gob.Register(logisticPayload{})
	gob.Register(softmaxPayload{})
	gob.Register(linearPayload{})
	gob.Register(kmeansPayload{})
	gob.Register(bayesPayload{})
	gob.Register(pcaPayload{})
	gob.Register(standardScalerPayload{})
	gob.Register(minMaxScalerPayload{})
	gob.Register(pipelinePayload{})
}

// KindOf reports the Kind Save would stamp on model, or an error for
// types without a serial form.
func KindOf(model any) (Kind, error) {
	switch model.(type) {
	case *logreg.Model:
		return KindLogistic, nil
	case *logreg.SoftmaxModel:
		return KindSoftmax, nil
	case *linreg.Model:
		return KindLinear, nil
	case *kmeans.Result:
		return KindKMeans, nil
	case *bayes.Model:
		return KindBayes, nil
	case *pca.Result:
		return KindPCA, nil
	case *preprocess.StandardScaler:
		return KindStandardScaler, nil
	case *preprocess.MinMaxScaler:
		return KindMinMaxScaler, nil
	case *Pipeline:
		return KindPipeline, nil
	}
	return "", fmt.Errorf("modelio: unsupported model type %T", model)
}

// Save writes a model to w. The envelope kind comes from KindOf —
// the single source of the type→Kind mapping. Supported types: *logreg.Model,
// *logreg.SoftmaxModel, *linreg.Model, *kmeans.Result, *bayes.Model,
// *pca.Result, *preprocess.StandardScaler, *preprocess.MinMaxScaler
// and *Pipeline (whose stages are framed as nested envelopes).
func Save(w io.Writer, model any) error {
	kind, err := KindOf(model)
	if err != nil {
		return err
	}
	env := envelope{Version: version, Kind: kind}
	switch m := model.(type) {
	case *logreg.Model:
		env.Payload = logisticPayload{Weights: m.Weights, Intercept: m.Intercept}
	case *logreg.SoftmaxModel:
		env.Payload = softmaxPayload{
			Weights: m.Weights, Bias: m.Bias, Classes: m.Classes, Features: m.Features,
		}
	case *linreg.Model:
		env.Payload = linearPayload{Weights: m.Weights, Intercept: m.Intercept}
	case *kmeans.Result:
		k, d := m.Centroids.Dims()
		flat := make([]float64, 0, k*d)
		for c := 0; c < k; c++ {
			flat = append(flat, m.Centroids.RawRow(c)...)
		}
		env.Payload = kmeansPayload{Centroids: flat, K: k, D: d}
	case *bayes.Model:
		env.Payload = bayesPayload{
			Classes: m.Classes, Features: m.Features,
			Mean: m.Mean, Var: m.Var, LogPrior: m.LogPrior,
		}
	case *pca.Result:
		k, d := m.Components.Dims()
		flat := make([]float64, 0, k*d)
		for c := 0; c < k; c++ {
			flat = append(flat, m.Components.RawRow(c)...)
		}
		env.Payload = pcaPayload{
			Components: flat, K: k, D: d,
			Eigenvalues: m.Eigenvalues, Mean: m.Mean, TotalVariance: m.TotalVariance,
		}
	case *preprocess.StandardScaler:
		env.Payload = standardScalerPayload{Mean: m.Mean, Std: m.Std}
	case *preprocess.MinMaxScaler:
		env.Payload = minMaxScalerPayload{Min: m.Min, Range: m.Range}
	case *Pipeline:
		if len(m.Stages) == 0 {
			return fmt.Errorf("modelio: empty pipeline")
		}
		stages := make([][]byte, len(m.Stages))
		for i, stage := range m.Stages {
			var buf bytes.Buffer
			if err := Save(&buf, stage); err != nil {
				return fmt.Errorf("modelio: pipeline stage %d: %w", i, err)
			}
			stages[i] = buf.Bytes()
		}
		env.Payload = pipelinePayload{Stages: stages}
	}
	return gob.NewEncoder(w).Encode(env)
}

// Load reads a model envelope. The returned value is one of the
// pointer types accepted by Save; use LoadedKind or a type switch.
func Load(r io.Reader) (any, Kind, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, "", fmt.Errorf("modelio: decoding: %w", err)
	}
	if env.Version != version {
		return nil, "", fmt.Errorf("modelio: unsupported version %d", env.Version)
	}
	switch p := env.Payload.(type) {
	case logisticPayload:
		return &logreg.Model{Weights: p.Weights, Intercept: p.Intercept}, env.Kind, nil
	case softmaxPayload:
		return &logreg.SoftmaxModel{
			Weights: p.Weights, Bias: p.Bias, Classes: p.Classes, Features: p.Features,
		}, env.Kind, nil
	case linearPayload:
		return &linreg.Model{Weights: p.Weights, Intercept: p.Intercept}, env.Kind, nil
	case kmeansPayload:
		if p.K <= 0 || p.D <= 0 || len(p.Centroids) != p.K*p.D {
			return nil, "", fmt.Errorf("modelio: corrupt k-means payload (%d values for %dx%d)", len(p.Centroids), p.K, p.D)
		}
		c := mat.NewDenseFrom(p.Centroids, p.K, p.D)
		return &kmeans.Result{Centroids: c}, env.Kind, nil
	case bayesPayload:
		return &bayes.Model{
			Classes: p.Classes, Features: p.Features,
			Mean: p.Mean, Var: p.Var, LogPrior: p.LogPrior,
		}, env.Kind, nil
	case pcaPayload:
		if p.K <= 0 || p.D <= 0 || len(p.Components) != p.K*p.D {
			return nil, "", fmt.Errorf("modelio: corrupt pca payload (%d values for %dx%d)", len(p.Components), p.K, p.D)
		}
		return &pca.Result{
			Components:  mat.NewDenseFrom(p.Components, p.K, p.D),
			Eigenvalues: p.Eigenvalues, Mean: p.Mean, TotalVariance: p.TotalVariance,
		}, env.Kind, nil
	case standardScalerPayload:
		if len(p.Mean) == 0 || len(p.Mean) != len(p.Std) {
			return nil, "", fmt.Errorf("modelio: corrupt standard-scaler payload (%d means, %d stds)", len(p.Mean), len(p.Std))
		}
		return &preprocess.StandardScaler{Mean: p.Mean, Std: p.Std}, env.Kind, nil
	case minMaxScalerPayload:
		if len(p.Min) == 0 || len(p.Min) != len(p.Range) {
			return nil, "", fmt.Errorf("modelio: corrupt minmax-scaler payload (%d mins, %d ranges)", len(p.Min), len(p.Range))
		}
		return &preprocess.MinMaxScaler{Min: p.Min, Range: p.Range}, env.Kind, nil
	case pipelinePayload:
		if len(p.Stages) == 0 {
			return nil, "", fmt.Errorf("modelio: empty pipeline payload")
		}
		out := &Pipeline{Stages: make([]any, len(p.Stages))}
		for i, raw := range p.Stages {
			stage, _, err := Load(bytes.NewReader(raw))
			if err != nil {
				return nil, "", fmt.Errorf("modelio: pipeline stage %d: %w", i, err)
			}
			out.Stages[i] = stage
		}
		return out, env.Kind, nil
	}
	return nil, "", fmt.Errorf("modelio: unknown payload %T", env.Payload)
}

// SaveFile writes a model to path.
func SaveFile(path string, model any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, model); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (any, Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return Load(f)
}
