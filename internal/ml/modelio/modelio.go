// Package modelio persists trained models. The format is a small
// gob-encoded envelope with a kind tag and format version, so files
// are self-describing and future kinds can be added without breaking
// old readers.
package modelio

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/pca"
)

// Kind tags a persisted model type.
type Kind string

// Supported model kinds.
const (
	KindLogistic Kind = "logistic"
	KindSoftmax  Kind = "softmax"
	KindLinear   Kind = "linear"
	KindKMeans   Kind = "kmeans"
	KindBayes    Kind = "bayes"
	KindPCA      Kind = "pca"
)

// version of the envelope format.
const version = 1

// envelope is the on-disk frame.
type envelope struct {
	Version int
	Kind    Kind
	Payload any
}

// payload structs keep persistence decoupled from in-memory types.

type logisticPayload struct {
	Weights   []float64
	Intercept float64
}

type softmaxPayload struct {
	Weights  []float64
	Bias     []float64
	Classes  int
	Features int
}

type linearPayload struct {
	Weights   []float64
	Intercept float64
}

type kmeansPayload struct {
	Centroids []float64
	K, D      int
}

type bayesPayload struct {
	Classes  int
	Features int
	Mean     []float64
	Var      []float64
	LogPrior []float64
}

type pcaPayload struct {
	Components    []float64 // row-major K×D
	K, D          int
	Eigenvalues   []float64
	Mean          []float64
	TotalVariance float64
}

func init() {
	gob.Register(logisticPayload{})
	gob.Register(softmaxPayload{})
	gob.Register(linearPayload{})
	gob.Register(kmeansPayload{})
	gob.Register(bayesPayload{})
	gob.Register(pcaPayload{})
}

// Save writes a model to w. Supported types: *logreg.Model,
// *logreg.SoftmaxModel, *linreg.Model, *kmeans.Result, *bayes.Model,
// *pca.Result.
func Save(w io.Writer, model any) error {
	env := envelope{Version: version}
	switch m := model.(type) {
	case *logreg.Model:
		env.Kind = KindLogistic
		env.Payload = logisticPayload{Weights: m.Weights, Intercept: m.Intercept}
	case *logreg.SoftmaxModel:
		env.Kind = KindSoftmax
		env.Payload = softmaxPayload{
			Weights: m.Weights, Bias: m.Bias, Classes: m.Classes, Features: m.Features,
		}
	case *linreg.Model:
		env.Kind = KindLinear
		env.Payload = linearPayload{Weights: m.Weights, Intercept: m.Intercept}
	case *kmeans.Result:
		k, d := m.Centroids.Dims()
		flat := make([]float64, 0, k*d)
		for c := 0; c < k; c++ {
			flat = append(flat, m.Centroids.RawRow(c)...)
		}
		env.Kind = KindKMeans
		env.Payload = kmeansPayload{Centroids: flat, K: k, D: d}
	case *bayes.Model:
		env.Kind = KindBayes
		env.Payload = bayesPayload{
			Classes: m.Classes, Features: m.Features,
			Mean: m.Mean, Var: m.Var, LogPrior: m.LogPrior,
		}
	case *pca.Result:
		k, d := m.Components.Dims()
		flat := make([]float64, 0, k*d)
		for c := 0; c < k; c++ {
			flat = append(flat, m.Components.RawRow(c)...)
		}
		env.Kind = KindPCA
		env.Payload = pcaPayload{
			Components: flat, K: k, D: d,
			Eigenvalues: m.Eigenvalues, Mean: m.Mean, TotalVariance: m.TotalVariance,
		}
	default:
		return fmt.Errorf("modelio: unsupported model type %T", model)
	}
	return gob.NewEncoder(w).Encode(env)
}

// Load reads a model envelope. The returned value is one of the
// pointer types accepted by Save; use LoadedKind or a type switch.
func Load(r io.Reader) (any, Kind, error) {
	var env envelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, "", fmt.Errorf("modelio: decoding: %w", err)
	}
	if env.Version != version {
		return nil, "", fmt.Errorf("modelio: unsupported version %d", env.Version)
	}
	switch p := env.Payload.(type) {
	case logisticPayload:
		return &logreg.Model{Weights: p.Weights, Intercept: p.Intercept}, env.Kind, nil
	case softmaxPayload:
		return &logreg.SoftmaxModel{
			Weights: p.Weights, Bias: p.Bias, Classes: p.Classes, Features: p.Features,
		}, env.Kind, nil
	case linearPayload:
		return &linreg.Model{Weights: p.Weights, Intercept: p.Intercept}, env.Kind, nil
	case kmeansPayload:
		if p.K <= 0 || p.D <= 0 || len(p.Centroids) != p.K*p.D {
			return nil, "", fmt.Errorf("modelio: corrupt k-means payload (%d values for %dx%d)", len(p.Centroids), p.K, p.D)
		}
		c := mat.NewDenseFrom(p.Centroids, p.K, p.D)
		return &kmeans.Result{Centroids: c}, env.Kind, nil
	case bayesPayload:
		return &bayes.Model{
			Classes: p.Classes, Features: p.Features,
			Mean: p.Mean, Var: p.Var, LogPrior: p.LogPrior,
		}, env.Kind, nil
	case pcaPayload:
		if p.K <= 0 || p.D <= 0 || len(p.Components) != p.K*p.D {
			return nil, "", fmt.Errorf("modelio: corrupt pca payload (%d values for %dx%d)", len(p.Components), p.K, p.D)
		}
		return &pca.Result{
			Components:  mat.NewDenseFrom(p.Components, p.K, p.D),
			Eigenvalues: p.Eigenvalues, Mean: p.Mean, TotalVariance: p.TotalVariance,
		}, env.Kind, nil
	}
	return nil, "", fmt.Errorf("modelio: unknown payload %T", env.Payload)
}

// SaveFile writes a model to path.
func SaveFile(path string, model any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, model); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (any, Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return Load(f)
}
