// Package modelio persists trained models. The format is a small
// gob stream of two frames: a header carrying the format version,
// kind tag and shape metadata, then the payload proper. Files are
// self-describing — Describe reads the header alone, so a server or
// inspector can learn a model's kind and input width without paying
// to decode (or validate) the payload.
package modelio

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"m3/internal/mat"
	"m3/internal/ml/bayes"
	"m3/internal/ml/kmeans"
	"m3/internal/ml/linreg"
	"m3/internal/ml/logreg"
	"m3/internal/ml/pca"
	"m3/internal/ml/preprocess"
)

// Kind tags a persisted model type.
type Kind string

// Supported model kinds.
const (
	KindLogistic       Kind = "logistic"
	KindSoftmax        Kind = "softmax"
	KindLinear         Kind = "linear"
	KindKMeans         Kind = "kmeans"
	KindBayes          Kind = "bayes"
	KindPCA            Kind = "pca"
	KindStandardScaler Kind = "standard-scaler"
	KindMinMaxScaler   Kind = "minmax-scaler"
	KindPipeline       Kind = "pipeline"
)

// Kinds lists every Kind Save can produce — the round-trip test
// surface.
func Kinds() []Kind {
	return []Kind{
		KindLogistic, KindSoftmax, KindLinear, KindKMeans, KindBayes,
		KindPCA, KindStandardScaler, KindMinMaxScaler, KindPipeline,
	}
}

// Pipeline is the neutral persisted form of a fitted estimator
// pipeline: the inner stage values in order — fitted transformers
// first, the final model last. Each stage is framed as a nested
// envelope on disk, so a pipeline file is a sequence of ordinary
// model files inside one KindPipeline frame and future stage kinds
// need no pipeline-side changes. The public root package converts
// between this and its FittedPipeline.
type Pipeline struct {
	// Stages holds values accepted by Save; the last entry is the
	// final model, everything before it a transformer.
	Stages []any
}

// version of the envelope format. Version 2 split the single
// envelope value into a header frame (version, kind, shape metadata)
// followed by a payload frame, so headers decode without payloads.
const version = 2

// Meta is the shape metadata stamped into every file header at save
// time. It is derived from the model, never trusted over the payload:
// loading re-validates payload dimensions as before.
type Meta struct {
	// InputCols is the feature width Predict/Transform expects.
	InputCols int
	// OutputCols is the transformed width for transformer kinds
	// (scalers, PCA, pipelines ending in a transformer); 0 for pure
	// predictors.
	OutputCols int
	// Classes counts distinct prediction values — classes for
	// classifiers, clusters for k-means, 0 for regression and
	// transformers.
	Classes int
	// Stages lists the stage kinds of a pipeline in order, nil
	// otherwise.
	Stages []Kind
}

// header is the first gob frame of a model file.
type header struct {
	Version int
	Kind    Kind
	Meta    Meta
}

// payloadFrame is the second gob frame. The interface indirection is
// what lets gob round-trip the concrete payload structs registered in
// init.
type payloadFrame struct {
	Payload any
}

// payload structs keep persistence decoupled from in-memory types.

type logisticPayload struct {
	Weights   []float64
	Intercept float64
}

type softmaxPayload struct {
	Weights  []float64
	Bias     []float64
	Classes  int
	Features int
}

type linearPayload struct {
	Weights   []float64
	Intercept float64
}

type kmeansPayload struct {
	Centroids []float64
	K, D      int
}

type bayesPayload struct {
	Classes  int
	Features int
	Mean     []float64
	Var      []float64
	LogPrior []float64
}

type pcaPayload struct {
	Components    []float64 // row-major K×D
	K, D          int
	Eigenvalues   []float64
	Mean          []float64
	TotalVariance float64
}

type standardScalerPayload struct {
	Mean []float64
	Std  []float64
}

type minMaxScalerPayload struct {
	Min   []float64
	Range []float64
}

type pipelinePayload struct {
	// Stages are nested envelopes, one complete Save frame per stage.
	Stages [][]byte
}

func init() {
	gob.Register(logisticPayload{})
	gob.Register(softmaxPayload{})
	gob.Register(linearPayload{})
	gob.Register(kmeansPayload{})
	gob.Register(bayesPayload{})
	gob.Register(pcaPayload{})
	gob.Register(standardScalerPayload{})
	gob.Register(minMaxScalerPayload{})
	gob.Register(pipelinePayload{})
	pinTypeIDs()
}

// pinTypeIDs encodes one value of every envelope type to io.Discard.
// gob allocates wire type IDs from a process-global counter at first
// encode, and a stream's type-definition frames carry those IDs — so
// two processes write byte-different files for the same model if
// either gob-encoded anything else first (the distributed coordinator
// does: its wire protocol is gob too). Claiming the IDs here, before
// main can run any encoder, makes Save's bytes a function of the model
// alone, which the shard-count bit-identity contract depends on.
func pinTypeIDs() {
	enc := gob.NewEncoder(io.Discard)
	warm := []any{
		logisticPayload{}, softmaxPayload{}, linearPayload{},
		kmeansPayload{}, bayesPayload{}, pcaPayload{},
		standardScalerPayload{}, minMaxScalerPayload{}, pipelinePayload{},
	}
	if err := enc.Encode(header{}); err != nil {
		panic("modelio: pinning envelope type IDs: " + err.Error())
	}
	for _, p := range warm {
		if err := enc.Encode(payloadFrame{Payload: p}); err != nil {
			panic("modelio: pinning envelope type IDs: " + err.Error())
		}
	}
}

// KindOf reports the Kind Save would stamp on model, or an error for
// types without a serial form.
func KindOf(model any) (Kind, error) {
	switch model.(type) {
	case *logreg.Model:
		return KindLogistic, nil
	case *logreg.SoftmaxModel:
		return KindSoftmax, nil
	case *linreg.Model:
		return KindLinear, nil
	case *kmeans.Result:
		return KindKMeans, nil
	case *bayes.Model:
		return KindBayes, nil
	case *pca.Result:
		return KindPCA, nil
	case *preprocess.StandardScaler:
		return KindStandardScaler, nil
	case *preprocess.MinMaxScaler:
		return KindMinMaxScaler, nil
	case *Pipeline:
		return KindPipeline, nil
	}
	return "", fmt.Errorf("modelio: unsupported model type %T", model)
}

// MetaOf computes the shape metadata Save would stamp on model.
func MetaOf(model any) (Meta, error) {
	switch m := model.(type) {
	case *logreg.Model:
		return Meta{InputCols: len(m.Weights), Classes: 2}, nil
	case *logreg.SoftmaxModel:
		return Meta{InputCols: m.Features, Classes: m.Classes}, nil
	case *linreg.Model:
		return Meta{InputCols: len(m.Weights)}, nil
	case *kmeans.Result:
		k, d := m.Centroids.Dims()
		return Meta{InputCols: d, Classes: k}, nil
	case *bayes.Model:
		return Meta{InputCols: m.Features, Classes: m.Classes}, nil
	case *pca.Result:
		k, d := m.Components.Dims()
		return Meta{InputCols: d, OutputCols: k}, nil
	case *preprocess.StandardScaler:
		return Meta{InputCols: len(m.Mean), OutputCols: len(m.Mean)}, nil
	case *preprocess.MinMaxScaler:
		return Meta{InputCols: len(m.Min), OutputCols: len(m.Min)}, nil
	case *Pipeline:
		if len(m.Stages) == 0 {
			return Meta{}, fmt.Errorf("modelio: empty pipeline")
		}
		meta := Meta{Stages: make([]Kind, len(m.Stages))}
		for i, stage := range m.Stages {
			sm, err := MetaOf(stage)
			if err != nil {
				return Meta{}, fmt.Errorf("modelio: pipeline stage %d: %w", i, err)
			}
			kind, err := KindOf(stage)
			if err != nil {
				return Meta{}, fmt.Errorf("modelio: pipeline stage %d: %w", i, err)
			}
			meta.Stages[i] = kind
			if i == 0 {
				meta.InputCols = sm.InputCols
			}
			if i == len(m.Stages)-1 {
				meta.OutputCols = sm.OutputCols
				meta.Classes = sm.Classes
			}
		}
		return meta, nil
	}
	return Meta{}, fmt.Errorf("modelio: unsupported model type %T", model)
}

// Save writes a model to w. The header kind comes from KindOf — the
// single source of the type→Kind mapping. Supported types: *logreg.Model,
// *logreg.SoftmaxModel, *linreg.Model, *kmeans.Result, *bayes.Model,
// *pca.Result, *preprocess.StandardScaler, *preprocess.MinMaxScaler
// and *Pipeline (whose stages are framed as nested envelopes).
func Save(w io.Writer, model any) error {
	kind, err := KindOf(model)
	if err != nil {
		return err
	}
	meta, err := MetaOf(model)
	if err != nil {
		return err
	}
	var payload any
	switch m := model.(type) {
	case *logreg.Model:
		payload = logisticPayload{Weights: m.Weights, Intercept: m.Intercept}
	case *logreg.SoftmaxModel:
		payload = softmaxPayload{
			Weights: m.Weights, Bias: m.Bias, Classes: m.Classes, Features: m.Features,
		}
	case *linreg.Model:
		payload = linearPayload{Weights: m.Weights, Intercept: m.Intercept}
	case *kmeans.Result:
		k, d := m.Centroids.Dims()
		flat := make([]float64, 0, k*d)
		for c := 0; c < k; c++ {
			flat = append(flat, m.Centroids.RawRow(c)...)
		}
		payload = kmeansPayload{Centroids: flat, K: k, D: d}
	case *bayes.Model:
		payload = bayesPayload{
			Classes: m.Classes, Features: m.Features,
			Mean: m.Mean, Var: m.Var, LogPrior: m.LogPrior,
		}
	case *pca.Result:
		k, d := m.Components.Dims()
		flat := make([]float64, 0, k*d)
		for c := 0; c < k; c++ {
			flat = append(flat, m.Components.RawRow(c)...)
		}
		payload = pcaPayload{
			Components: flat, K: k, D: d,
			Eigenvalues: m.Eigenvalues, Mean: m.Mean, TotalVariance: m.TotalVariance,
		}
	case *preprocess.StandardScaler:
		payload = standardScalerPayload{Mean: m.Mean, Std: m.Std}
	case *preprocess.MinMaxScaler:
		payload = minMaxScalerPayload{Min: m.Min, Range: m.Range}
	case *Pipeline:
		stages := make([][]byte, len(m.Stages))
		for i, stage := range m.Stages {
			var buf bytes.Buffer
			if err := Save(&buf, stage); err != nil {
				return fmt.Errorf("modelio: pipeline stage %d: %w", i, err)
			}
			stages[i] = buf.Bytes()
		}
		payload = pipelinePayload{Stages: stages}
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header{Version: version, Kind: kind, Meta: meta}); err != nil {
		return fmt.Errorf("modelio: encoding header: %w", err)
	}
	return enc.Encode(payloadFrame{Payload: payload})
}

// Describe reads a model file header without decoding the payload:
// the kind and shape metadata come back after parsing only the first
// gob frame, so describing a huge model (or a deep pipeline) costs a
// few hundred bytes of reads no matter the payload size.
func Describe(r io.Reader) (Kind, Meta, error) {
	var h header
	if err := gob.NewDecoder(r).Decode(&h); err != nil {
		return "", Meta{}, fmt.Errorf("modelio: decoding header: %w", err)
	}
	if h.Version != version {
		return "", Meta{}, fmt.Errorf("modelio: unsupported version %d (want %d)", h.Version, version)
	}
	// A well-formed gob stream can still carry an arbitrary header
	// (fuzzing found version-matching garbage), so the kind must be
	// one Save actually writes before the header is trusted.
	if !knownKind(h.Kind) {
		return "", Meta{}, fmt.Errorf("modelio: unknown model kind %q", h.Kind)
	}
	return h.Kind, h.Meta, nil
}

// knownKind reports whether k is a Kind Save can produce.
func knownKind(k Kind) bool {
	for _, known := range Kinds() {
		if k == known {
			return true
		}
	}
	return false
}

// DescribeFile reads the header of the model file at path.
func DescribeFile(path string) (Kind, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", Meta{}, err
	}
	defer f.Close()
	return Describe(f)
}

// Load reads a model envelope. The returned value is one of the
// pointer types accepted by Save; use KindOf or a type switch.
func Load(r io.Reader) (any, Kind, error) {
	v, kind, _, err := LoadMeta(r)
	return v, kind, err
}

// LoadMeta reads a model envelope plus the header metadata.
func LoadMeta(r io.Reader) (any, Kind, Meta, error) {
	dec := gob.NewDecoder(r)
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, "", Meta{}, fmt.Errorf("modelio: decoding header: %w", err)
	}
	if h.Version != version {
		return nil, "", Meta{}, fmt.Errorf("modelio: unsupported version %d (want %d)", h.Version, version)
	}
	var frame payloadFrame
	if err := dec.Decode(&frame); err != nil {
		return nil, "", Meta{}, fmt.Errorf("modelio: decoding payload: %w", err)
	}
	v, err := decodePayload(h.Kind, frame.Payload)
	if err != nil {
		return nil, "", Meta{}, err
	}
	return v, h.Kind, h.Meta, nil
}

func decodePayload(kind Kind, payload any) (any, error) {
	switch p := payload.(type) {
	case logisticPayload:
		return &logreg.Model{Weights: p.Weights, Intercept: p.Intercept}, nil
	case softmaxPayload:
		return &logreg.SoftmaxModel{
			Weights: p.Weights, Bias: p.Bias, Classes: p.Classes, Features: p.Features,
		}, nil
	case linearPayload:
		return &linreg.Model{Weights: p.Weights, Intercept: p.Intercept}, nil
	case kmeansPayload:
		if p.K <= 0 || p.D <= 0 || len(p.Centroids) != p.K*p.D {
			return nil, fmt.Errorf("modelio: corrupt k-means payload (%d values for %dx%d)", len(p.Centroids), p.K, p.D)
		}
		c := mat.NewDenseFrom(p.Centroids, p.K, p.D)
		return &kmeans.Result{Centroids: c}, nil
	case bayesPayload:
		return &bayes.Model{
			Classes: p.Classes, Features: p.Features,
			Mean: p.Mean, Var: p.Var, LogPrior: p.LogPrior,
		}, nil
	case pcaPayload:
		if p.K <= 0 || p.D <= 0 || len(p.Components) != p.K*p.D {
			return nil, fmt.Errorf("modelio: corrupt pca payload (%d values for %dx%d)", len(p.Components), p.K, p.D)
		}
		return &pca.Result{
			Components:  mat.NewDenseFrom(p.Components, p.K, p.D),
			Eigenvalues: p.Eigenvalues, Mean: p.Mean, TotalVariance: p.TotalVariance,
		}, nil
	case standardScalerPayload:
		if len(p.Mean) == 0 || len(p.Mean) != len(p.Std) {
			return nil, fmt.Errorf("modelio: corrupt standard-scaler payload (%d means, %d stds)", len(p.Mean), len(p.Std))
		}
		return &preprocess.StandardScaler{Mean: p.Mean, Std: p.Std}, nil
	case minMaxScalerPayload:
		if len(p.Min) == 0 || len(p.Min) != len(p.Range) {
			return nil, fmt.Errorf("modelio: corrupt minmax-scaler payload (%d mins, %d ranges)", len(p.Min), len(p.Range))
		}
		return &preprocess.MinMaxScaler{Min: p.Min, Range: p.Range}, nil
	case pipelinePayload:
		if len(p.Stages) == 0 {
			return nil, fmt.Errorf("modelio: empty pipeline payload")
		}
		out := &Pipeline{Stages: make([]any, len(p.Stages))}
		for i, raw := range p.Stages {
			stage, _, err := Load(bytes.NewReader(raw))
			if err != nil {
				return nil, fmt.Errorf("modelio: pipeline stage %d: %w", i, err)
			}
			out.Stages[i] = stage
		}
		return out, nil
	}
	return nil, fmt.Errorf("modelio: kind %q: unknown payload %T", kind, payload)
}

// SaveFile writes a model to path.
func SaveFile(path string, model any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, model); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (any, Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	return Load(f)
}

// LoadFileMeta reads a model from path along with its header metadata.
func LoadFileMeta(path string) (any, Kind, Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", Meta{}, err
	}
	defer f.Close()
	return LoadMeta(f)
}
