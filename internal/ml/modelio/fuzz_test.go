package modelio

import (
	"bytes"
	"testing"

	"m3/internal/ml/preprocess"
)

// FuzzDescribe feeds arbitrary bytes to the model-header reader.
// Describe decodes a gob frame from untrusted file content, so it
// must reject truncated, corrupted, and adversarially-typed input
// with an error — never a panic — and a valid header must round-trip.
func FuzzDescribe(f *testing.F) {
	var valid bytes.Buffer
	if err := Save(&valid, &preprocess.StandardScaler{Mean: []float64{0, 1}, Std: []float64{1, 2}}); err != nil {
		f.Fatalf("seed save: %v", err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, _, err := Describe(bytes.NewReader(data))
		if err == nil && kind == "" {
			t.Fatalf("Describe accepted %d bytes but returned an empty kind", len(data))
		}
	})
}
