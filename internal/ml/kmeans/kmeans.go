// Package kmeans implements Lloyd's algorithm with k-means++
// initialization — the second of the paper's two evaluation workloads
// (10 iterations, 5 clusters in Figure 1b). Each iteration streams
// the (possibly memory-mapped) data matrix once: the assignment pass
// is a pure sequential scan, which is why k-means pages as well as
// logistic regression under M3.
package kmeans

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/optimize"
)

// Options configures a k-means run.
type Options struct {
	// FitOptions carries the shared training surface. Workers sizes
	// the pool for the init and assignment scans; Callback runs after
	// each Lloyd iteration with IterInfo{Iter, Value: inertia} and can
	// stop the run. Assignments, centroids and inertia are identical
	// for every worker count.
	fit.FitOptions
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIterations bounds Lloyd iterations (default 100; the paper
	// runs exactly 10).
	MaxIterations int
	// Tol stops early when no assignment changes and centroid
	// movement falls below it (default 1e-9).
	Tol float64
	// Seed drives k-means++ sampling; runs are deterministic in it.
	Seed uint64
	// RandomInit selects uniform random initial centroids instead of
	// k-means++ (ablation baseline).
	RandomInit bool
	// InitCentroids, when non-nil, supplies explicit initial
	// centroids (K×D) and skips seeding entirely. Used to give M3
	// and the Spark baseline identical starting points.
	InitCentroids *mat.Dense
	// RunAllIterations disables early convergence so exactly
	// MaxIterations passes execute — the paper's fixed "10
	// iterations" protocol.
	RunAllIterations bool
}

func (o Options) withDefaults() (Options, error) {
	if o.K < 1 {
		return o, fmt.Errorf("kmeans: K = %d, want >= 1", o.K)
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o, nil
}

// Result is a completed clustering.
type Result struct {
	// Centroids is a K×D heap matrix.
	Centroids *mat.Dense
	// Assignments maps each row to its cluster.
	Assignments []int
	// Inertia is the sum of squared distances to assigned centroids.
	Inertia float64
	// Iterations actually performed.
	Iterations int
	// Converged reports whether assignments stabilized before the
	// iteration budget ran out.
	Converged bool
	// Stall is the cumulative simulated paging stall in seconds
	// (zero on real backends).
	Stall float64
	// Scans counts full passes over the data matrix.
	Scans int
}

// assignPartial is one block's share of a Lloyd assignment pass.
type assignPartial struct {
	sums    []float64
	counts  []int
	inertia float64
	changed int
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) uniform() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Run clusters the rows of x into K groups. ctx cancels the run
// within one data block of the init or assignment scans; the error is
// then ctx.Err() and no result is returned.
func Run(ctx context.Context, x *mat.Dense, opts Options) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	n, d := x.Dims()
	if o.K > n {
		return nil, fmt.Errorf("kmeans: K = %d exceeds %d rows", o.K, n)
	}
	r := &rng{s: o.Seed ^ 0x9e3779b97f4a7c15}
	if r.s == 0 {
		r.s = 1
	}

	res := &Result{
		Centroids:   mat.NewDense(o.K, d),
		Assignments: make([]int, n),
	}
	switch {
	case o.InitCentroids != nil:
		ik, id := o.InitCentroids.Dims()
		if ik != o.K || id != d {
			return nil, fmt.Errorf("kmeans: InitCentroids is %dx%d, want %dx%d", ik, id, o.K, d)
		}
		res.Centroids.CopyFrom(o.InitCentroids)
	case o.RandomInit:
		res.Stall += initRandom(x, res.Centroids, r)
		res.Scans++ // counted as one pass worth of row touches
	default:
		stall, scans, err := initPlusPlus(ctx, x, res.Centroids, r, o.Workers)
		if err != nil {
			return nil, err
		}
		res.Stall += stall
		res.Scans += scans
	}

	newCentroid := make([]float64, d)
	centroids, ok := res.Centroids.Contiguous() // K×d heap matrix is always contiguous
	if !ok {
		return nil, fmt.Errorf("kmeans: internal: centroid matrix not contiguous")
	}
	callback := o.Hook("kmeans")

	for iter := 1; iter <= o.MaxIterations; iter++ {
		// Assignment pass: one blocked scan on the shared execution
		// layer. Each block accumulates its own sums/counts/inertia;
		// partials merge in block order, so the result is identical
		// for any worker count. Assignments[i] is per-row disjoint.
		acc, stall, err := exec.ReduceRows(x.ScanCtx(ctx, o.Workers).Named("kmeans assign"),
			func() *assignPartial {
				return &assignPartial{sums: make([]float64, o.K*d), counts: make([]int, o.K)}
			},
			func(p *assignPartial, i int, row []float64) {
				bestC, best := blas.NearestRow(row, o.K, d, centroids, d)
				if res.Assignments[i] != bestC {
					p.changed++
					res.Assignments[i] = bestC
				}
				p.inertia += best
				blas.Axpy(1, row, p.sums[bestC*d:(bestC+1)*d])
				p.counts[bestC]++
			},
			func(dst, src *assignPartial) {
				dst.inertia += src.inertia
				dst.changed += src.changed
				blas.Axpy(1, src.sums, dst.sums)
				for c, n := range src.counts {
					dst.counts[c] += n
				}
			})
		if err != nil {
			return nil, err
		}
		sums, counts, changed, inertia := acc.sums, acc.counts, acc.changed, acc.inertia
		res.Stall += stall
		res.Scans++
		res.Inertia = inertia
		res.Iterations = iter

		// Update pass: centroids are tiny, no data scan needed.
		move := 0.0
		for c := 0; c < o.K; c++ {
			if counts[c] == 0 {
				// Empty-cluster repair: respawn at a random row.
				row, s := x.Row(r.intn(n))
				res.Stall += s
				copy(newCentroid, row)
			} else {
				copy(newCentroid, sums[c*d:(c+1)*d])
				blas.Scal(1/float64(counts[c]), newCentroid)
			}
			move += blas.SqDist(newCentroid, res.Centroids.RawRow(c))
			res.Centroids.SetRow(c, newCentroid)
		}

		if callback != nil && !callback(optimize.IterInfo{Iter: iter, Value: inertia}) {
			return res, nil
		}
		if changed == 0 && move < o.Tol {
			res.Converged = true
			if !o.RunAllIterations {
				return res, nil
			}
		}
		// First iteration always counts as changed (assignments
		// start at zero); don't let that block convergence later.
	}
	return res, nil
}

// initRandom picks K distinct random rows as centroids.
func initRandom(x *mat.Dense, centroids *mat.Dense, r *rng) (stall float64) {
	n, _ := x.Dims()
	k, _ := centroids.Dims()
	seen := make(map[int]bool, k)
	for c := 0; c < k; c++ {
		i := r.intn(n)
		for seen[i] {
			i = r.intn(n)
		}
		seen[i] = true
		row, s := x.Row(i)
		stall += s
		stall += centroids.SetRow(c, row)
	}
	return stall
}

// initPlusPlus implements k-means++ (Arthur & Vassilvitskii 2007):
// each next centroid is sampled with probability proportional to the
// squared distance from the nearest chosen centroid. Costs one data
// scan per centroid; each scan runs blocked on the shared execution
// layer (dist[i] updates are per-row disjoint, the mass total reduces
// in block order), so the sampled centroids are identical for every
// worker count and the scans are cancellable.
func initPlusPlus(ctx context.Context, x *mat.Dense, centroids *mat.Dense, r *rng, workers int) (stall float64, scans int, err error) {
	n, _ := x.Dims()
	k, _ := centroids.Dims()

	row, s := x.Row(r.intn(n))
	stall += s
	stall += centroids.SetRow(0, row)

	dist := make([]float64, n) // squared distance to nearest centroid
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	for c := 1; c < k; c++ {
		prev := centroids.RawRow(c - 1)
		total, scanStall, err := exec.ReduceRows(x.ScanCtx(ctx, workers).Named("kmeans++ seed"),
			func() *float64 { return new(float64) },
			func(mass *float64, i int, row []float64) {
				if d2 := blas.SqDist(row, prev); d2 < dist[i] {
					dist[i] = d2
				}
				*mass += dist[i]
			},
			func(dst, src *float64) { *dst += *src })
		if err != nil {
			return stall, scans, err
		}
		stall += scanStall
		scans++
		// Sample proportional to dist.
		target := r.uniform() * *total
		chosen := n - 1
		var acc float64
		for i, d2 := range dist {
			acc += d2
			if acc >= target {
				chosen = i
				break
			}
		}
		row, s := x.Row(chosen)
		stall += s
		stall += centroids.SetRow(c, row)
	}
	return stall, scans, nil
}

// Predict returns the nearest-centroid assignment for a single row.
func (r *Result) Predict(row []float64) int {
	best, bestC := math.Inf(1), 0
	k, _ := r.Centroids.Dims()
	for c := 0; c < k; c++ {
		if d2 := blas.SqDist(row, r.Centroids.RawRow(c)); d2 < best {
			best, bestC = d2, c
		}
	}
	return bestC
}

// Inertia computes the clustering cost of arbitrary data under this
// result's centroids (one scan).
func Inertia(x *mat.Dense, centroids *mat.Dense) float64 {
	k, _ := centroids.Dims()
	var total float64
	x.ForEachRow(func(i int, row []float64) {
		best := math.Inf(1)
		for c := 0; c < k; c++ {
			if d2 := blas.SqDist(row, centroids.RawRow(c)); d2 < best {
				best = d2
			}
		}
		total += best
	})
	return total
}
