// Package kmeans implements Lloyd's algorithm with k-means++
// initialization — the second of the paper's two evaluation workloads
// (10 iterations, 5 clusters in Figure 1b). Each iteration streams
// the (possibly memory-mapped) data matrix once: the assignment pass
// is a pure sequential scan, which is why k-means pages as well as
// logistic regression under M3.
//
// The algorithm is written against a DataPlane — the four data-touching
// operations a fit needs (assignment pass, seeding pass, prefix
// sampling, row fetch). Run wires the plane to a local matrix; a
// distributed coordinator implements the same interface over sharded
// workers, and because every plane operation reproduces the local
// floating-point operation order exactly, both planes produce
// bit-identical results.
package kmeans

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/optimize"
)

// Options configures a k-means run.
type Options struct {
	// FitOptions carries the shared training surface. Workers sizes
	// the pool for the init and assignment scans; Callback runs after
	// each Lloyd iteration with IterInfo{Iter, Value: inertia} and can
	// stop the run. Assignments, centroids and inertia are identical
	// for every worker count.
	fit.FitOptions
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIterations bounds Lloyd iterations (default 100; the paper
	// runs exactly 10).
	MaxIterations int
	// Tol stops early when no assignment changes and centroid
	// movement falls below it (default 1e-9).
	Tol float64
	// Seed drives k-means++ sampling; runs are deterministic in it.
	Seed uint64
	// RandomInit selects uniform random initial centroids instead of
	// k-means++ (ablation baseline).
	RandomInit bool
	// InitCentroids, when non-nil, supplies explicit initial
	// centroids (K×D) and skips seeding entirely. Used to give M3
	// and the Spark baseline identical starting points.
	InitCentroids *mat.Dense
	// RunAllIterations disables early convergence so exactly
	// MaxIterations passes execute — the paper's fixed "10
	// iterations" protocol.
	RunAllIterations bool
}

func (o Options) withDefaults() (Options, error) {
	if o.K < 1 {
		return o, fmt.Errorf("kmeans: K = %d, want >= 1", o.K)
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o, nil
}

// Result is a completed clustering.
type Result struct {
	// Centroids is a K×D heap matrix.
	Centroids *mat.Dense
	// Assignments maps each row to its cluster.
	Assignments []int
	// Inertia is the sum of squared distances to assigned centroids.
	Inertia float64
	// Iterations actually performed.
	Iterations int
	// Converged reports whether assignments stabilized before the
	// iteration budget ran out.
	Converged bool
	// Stall is the cumulative simulated paging stall in seconds
	// (zero on real backends).
	Stall float64
	// Scans counts full passes over the data matrix.
	Scans int
}

// AssignPartial is one merge group's (or block's) share of a Lloyd
// assignment pass — the shardable aggregate a distributed assignment
// ships. Fields are exported for gob.
type AssignPartial struct {
	Sums    []float64
	Counts  []int
	Inertia float64
	Changed int
}

// NewAssignPartial returns a zero partial for k clusters over d
// features.
func NewAssignPartial(k, d int) *AssignPartial {
	return &AssignPartial{Sums: make([]float64, k*d), Counts: make([]int, k)}
}

// MergeAssign folds src into dst with the local pass's exact merge
// operations, exported so a coordinator refolds shipped partials with
// the same floating-point operation sequence.
func MergeAssign(dst, src *AssignPartial) {
	dst.Inertia += src.Inertia
	dst.Changed += src.Changed
	blas.Axpy(1, src.Sums, dst.Sums)
	for c, n := range src.Counts {
		dst.Counts[c] += n
	}
}

// assignKernel returns the per-row accumulation of one Lloyd
// assignment pass. assignments is indexed by the scan's row index
// (shard-local on a worker) and is updated in place.
func assignKernel(assignments []int, centroids []float64, k, d int) func(p *AssignPartial, i int, row []float64) {
	return func(p *AssignPartial, i int, row []float64) {
		bestC, best := blas.NearestRow(row, k, d, centroids, d)
		if assignments[i] != bestC {
			p.Changed++
			assignments[i] = bestC
		}
		p.Inertia += best
		blas.Axpy(1, row, p.Sums[bestC*d:(bestC+1)*d])
		p.Counts[bestC]++
	}
}

// AssignGroups runs one assignment pass and returns the per-merge-group
// partials — the worker half of a distributed Lloyd iteration.
// assignments must have x.Rows() entries (shard-local); groupRows must
// be the coordinator's global group height.
func AssignGroups(ctx context.Context, x *mat.Dense, assignments []int, centroids []float64, k, workers, groupRows int) ([]exec.GroupPartial[*AssignPartial], float64, error) {
	d := x.Cols()
	scan := x.ScanCtx(ctx, workers).Named("kmeans assign")
	scan.GroupRows = groupRows
	kern := assignKernel(assignments, centroids, k, d)
	return exec.ReduceRowGroups(scan,
		func() *AssignPartial { return NewAssignPartial(k, d) },
		func(p *AssignPartial, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				kern(p, i, block[(i-lo)*stride:(i-lo)*stride+d])
			}
		},
		MergeAssign)
}

// seedKernel returns the per-row accumulation of one k-means++ seeding
// pass: tighten dist[i] against the newest centroid and accumulate the
// total mass.
func seedKernel(dist, prev []float64) func(mass *float64, i int, row []float64) {
	return func(mass *float64, i int, row []float64) {
		if d2 := blas.SqDist(row, prev); d2 < dist[i] {
			dist[i] = d2
		}
		*mass += dist[i]
	}
}

// SeedGroups runs one k-means++ seeding pass against the newest
// centroid prev, updating dist in place, and returns the per-group
// mass partials — the worker half of a distributed seeding round.
func SeedGroups(ctx context.Context, x *mat.Dense, dist, prev []float64, workers, groupRows int) ([]exec.GroupPartial[*float64], float64, error) {
	d := x.Cols()
	scan := x.ScanCtx(ctx, workers).Named("kmeans++ seed")
	scan.GroupRows = groupRows
	kern := seedKernel(dist, prev)
	return exec.ReduceRowGroups(scan,
		func() *float64 { return new(float64) },
		func(mass *float64, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				kern(mass, i, block[(i-lo)*stride:(i-lo)*stride+d])
			}
		},
		func(dst, src *float64) { *dst += *src })
}

// SamplePrefix walks dist in order, accumulating into acc, and returns
// the first index where the running sum reaches target. Shards chain
// the call — each passes the previous shard's final acc — so the
// distributed walk performs the identical sequential additions the
// local one does.
func SamplePrefix(dist []float64, acc, target float64) (chosen int, newAcc float64, found bool) {
	for i, d2 := range dist {
		acc += d2
		if acc >= target {
			return i, acc, true
		}
	}
	return 0, acc, false
}

// DataPlane is the data-touching surface of a k-means fit: everything
// RunPlane needs from the row set, local or distributed. A plane is
// per-fit — it owns the fit's assignment vector and seeding distances.
//
// Implementations must reproduce the local floating-point operation
// order exactly (grouped block reduction for the passes, sequential
// prefix walk for sampling) so that every plane yields bit-identical
// results.
type DataPlane interface {
	// Dims returns the global row and feature counts.
	Dims() (n, d int)
	// AssignPass runs one Lloyd assignment pass against the flat K×D
	// centroid block, updating the plane's assignments, and returns
	// the fully folded partial plus accumulated stall seconds.
	AssignPass(ctx context.Context, centroids []float64, k int) (*AssignPartial, float64, error)
	// SeedPass tightens the plane's k-means++ distances against the
	// newest centroid and returns the total mass plus stall seconds.
	SeedPass(ctx context.Context, prev []float64) (mass, stall float64, err error)
	// SamplePrefix returns the first global row index where the
	// running sum over the seeding distances reaches target (the last
	// row when the mass falls short, mirroring the local fallback).
	SamplePrefix(ctx context.Context, target float64) (int, error)
	// FetchRow copies global row i into dst and returns stall seconds.
	FetchRow(ctx context.Context, i int, dst []float64) (float64, error)
	// GatherAssignments returns the per-row cluster assignments in
	// global row order.
	GatherAssignments(ctx context.Context) ([]int, error)
}

// LocalPlane is the single-machine DataPlane over a matrix.
type LocalPlane struct {
	x           *mat.Dense
	workers     int
	assignments []int
	dist        []float64
}

// NewLocalPlane wraps x for a fit. workers <= 0 defers to the engine
// hint and then NumCPU.
func NewLocalPlane(x *mat.Dense, workers int) *LocalPlane {
	return &LocalPlane{x: x, workers: workers, assignments: make([]int, x.Rows())}
}

// Dims implements DataPlane.
func (p *LocalPlane) Dims() (int, int) { return p.x.Dims() }

// AssignPass implements DataPlane with one blocked scan on the shared
// execution layer: each block accumulates its own sums/counts/inertia,
// partials merge in block order within canonical row groups, so the
// result is identical for any worker count. assignments[i] writes are
// per-row disjoint.
func (p *LocalPlane) AssignPass(ctx context.Context, centroids []float64, k int) (*AssignPartial, float64, error) {
	d := p.x.Cols()
	kern := assignKernel(p.assignments, centroids, k, d)
	return exec.ReduceRows(p.x.ScanCtx(ctx, p.workers).Named("kmeans assign"),
		func() *AssignPartial { return NewAssignPartial(k, d) },
		func(ap *AssignPartial, i int, row []float64) { kern(ap, i, row) },
		MergeAssign)
}

// SeedPass implements DataPlane (dist[i] updates are per-row disjoint,
// the mass total reduces in block order).
func (p *LocalPlane) SeedPass(ctx context.Context, prev []float64) (float64, float64, error) {
	if p.dist == nil {
		p.dist = make([]float64, p.x.Rows())
		for i := range p.dist {
			p.dist[i] = math.Inf(1)
		}
	}
	kern := seedKernel(p.dist, prev)
	mass, stall, err := exec.ReduceRows(p.x.ScanCtx(ctx, p.workers).Named("kmeans++ seed"),
		func() *float64 { return new(float64) },
		func(mass *float64, i int, row []float64) { kern(mass, i, row) },
		func(dst, src *float64) { *dst += *src })
	if err != nil {
		return 0, 0, err
	}
	return *mass, stall, nil
}

// SamplePrefix implements DataPlane.
func (p *LocalPlane) SamplePrefix(_ context.Context, target float64) (int, error) {
	chosen, _, found := SamplePrefix(p.dist, 0, target)
	if !found {
		chosen = p.x.Rows() - 1
	}
	return chosen, nil
}

// FetchRow implements DataPlane.
func (p *LocalPlane) FetchRow(_ context.Context, i int, dst []float64) (float64, error) {
	row, stall := p.x.Row(i)
	copy(dst, row)
	return stall, nil
}

// GatherAssignments implements DataPlane.
func (p *LocalPlane) GatherAssignments(context.Context) ([]int, error) {
	return p.assignments, nil
}

type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) uniform() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Run clusters the rows of x into K groups. ctx cancels the run
// within one data block of the init or assignment scans; the error is
// then ctx.Err() and no result is returned.
func Run(ctx context.Context, x *mat.Dense, opts Options) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	return RunPlane(ctx, NewLocalPlane(x, o.Workers), opts)
}

// RunPlane clusters the plane's rows into K groups — the full Lloyd
// driver (init, iterate, converge) over any DataPlane. Run wires it to
// a local matrix; the distributed coordinator wires it to sharded
// workers, and both produce bit-identical results because the plane
// contract fixes the floating-point operation order.
func RunPlane(ctx context.Context, plane DataPlane, opts Options) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	n, d := plane.Dims()
	if o.K > n {
		return nil, fmt.Errorf("kmeans: K = %d exceeds %d rows", o.K, n)
	}
	r := &rng{s: o.Seed ^ 0x9e3779b97f4a7c15}
	if r.s == 0 {
		r.s = 1
	}

	res := &Result{Centroids: mat.NewDense(o.K, d)}
	rowBuf := make([]float64, d)
	fetch := func(i, c int) error {
		stall, err := plane.FetchRow(ctx, i, rowBuf)
		if err != nil {
			return err
		}
		res.Stall += stall
		res.Stall += res.Centroids.SetRow(c, rowBuf)
		return nil
	}
	switch {
	case o.InitCentroids != nil:
		ik, id := o.InitCentroids.Dims()
		if ik != o.K || id != d {
			return nil, fmt.Errorf("kmeans: InitCentroids is %dx%d, want %dx%d", ik, id, o.K, d)
		}
		res.Centroids.CopyFrom(o.InitCentroids)
	case o.RandomInit:
		// K distinct random rows as centroids.
		seen := make(map[int]bool, o.K)
		for c := 0; c < o.K; c++ {
			i := r.intn(n)
			for seen[i] {
				i = r.intn(n)
			}
			seen[i] = true
			if err := fetch(i, c); err != nil {
				return nil, err
			}
		}
		res.Scans++ // counted as one pass worth of row touches
	default:
		// k-means++ (Arthur & Vassilvitskii 2007): each next centroid
		// is sampled with probability proportional to the squared
		// distance from the nearest chosen centroid. Costs one data
		// scan per centroid.
		if err := fetch(r.intn(n), 0); err != nil {
			return nil, err
		}
		for c := 1; c < o.K; c++ {
			mass, stall, err := plane.SeedPass(ctx, res.Centroids.RawRow(c-1))
			if err != nil {
				return nil, err
			}
			res.Stall += stall
			res.Scans++
			chosen, err := plane.SamplePrefix(ctx, r.uniform()*mass)
			if err != nil {
				return nil, err
			}
			if err := fetch(chosen, c); err != nil {
				return nil, err
			}
		}
	}

	newCentroid := make([]float64, d)
	centroids, ok := res.Centroids.Contiguous() // K×d heap matrix is always contiguous
	if !ok {
		return nil, fmt.Errorf("kmeans: internal: centroid matrix not contiguous")
	}
	callback := o.Hook("kmeans")
	finish := func() (*Result, error) {
		a, err := plane.GatherAssignments(ctx)
		if err != nil {
			return nil, err
		}
		res.Assignments = a
		return res, nil
	}

	for iter := 1; iter <= o.MaxIterations; iter++ {
		acc, stall, err := plane.AssignPass(ctx, centroids, o.K)
		if err != nil {
			return nil, err
		}
		res.Stall += stall
		res.Scans++
		res.Inertia = acc.Inertia
		res.Iterations = iter

		// Update pass: centroids are tiny, no data scan needed.
		move := 0.0
		for c := 0; c < o.K; c++ {
			if acc.Counts[c] == 0 {
				// Empty-cluster repair: respawn at a random row.
				stall, err := plane.FetchRow(ctx, r.intn(n), newCentroid)
				if err != nil {
					return nil, err
				}
				res.Stall += stall
			} else {
				copy(newCentroid, acc.Sums[c*d:(c+1)*d])
				blas.Scal(1/float64(acc.Counts[c]), newCentroid)
			}
			move += blas.SqDist(newCentroid, res.Centroids.RawRow(c))
			res.Centroids.SetRow(c, newCentroid)
		}

		if callback != nil && !callback(optimize.IterInfo{Iter: iter, Value: acc.Inertia}) {
			return finish()
		}
		if acc.Changed == 0 && move < o.Tol {
			res.Converged = true
			if !o.RunAllIterations {
				return finish()
			}
		}
		// First iteration always counts as changed (assignments
		// start at zero); don't let that block convergence later.
	}
	return finish()
}

// initRandom picks K distinct random rows as centroids (used by the
// mini-batch variant, which runs on a local matrix only).
func initRandom(x *mat.Dense, centroids *mat.Dense, r *rng) (stall float64) {
	n, _ := x.Dims()
	k, _ := centroids.Dims()
	seen := make(map[int]bool, k)
	for c := 0; c < k; c++ {
		i := r.intn(n)
		for seen[i] {
			i = r.intn(n)
		}
		seen[i] = true
		row, s := x.Row(i)
		stall += s
		stall += centroids.SetRow(c, row)
	}
	return stall
}

// Predict returns the nearest-centroid assignment for a single row.
func (r *Result) Predict(row []float64) int {
	best, bestC := math.Inf(1), 0
	k, _ := r.Centroids.Dims()
	for c := 0; c < k; c++ {
		if d2 := blas.SqDist(row, r.Centroids.RawRow(c)); d2 < best {
			best, bestC = d2, c
		}
	}
	return bestC
}

// Inertia computes the clustering cost of arbitrary data under this
// result's centroids (one scan).
func Inertia(x *mat.Dense, centroids *mat.Dense) float64 {
	k, _ := centroids.Dims()
	var total float64
	x.ForEachRow(func(i int, row []float64) {
		best := math.Inf(1)
		for c := 0; c < k; c++ {
			if d2 := blas.SqDist(row, centroids.RawRow(c)); d2 < best {
				best = d2
			}
		}
		total += best
	})
	return total
}
