package kmeans

import (
	"context"
	"testing"

	"m3/internal/mat"
	"m3/internal/store"
	"m3/internal/vm"
)

func TestMiniBatchRecoversBlobs(t *testing.T) {
	const k = 4
	x, truth := blobs(400, k)
	// Rows 0..k-1 come from distinct true clusters (truth = i%k), so
	// they make a well-spread deterministic init.
	init := mat.NewDense(k, 2)
	for c := 0; c < k; c++ {
		row, _ := x.Row(c)
		init.SetRow(c, row)
	}
	res, err := MiniBatch(context.Background(), x, MiniBatchOptions{K: k, Seed: 3, Steps: 200, BatchSize: 64, InitCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	// Majority mapping: each true cluster should map to a single
	// predicted cluster for nearly all points.
	agree := 0
	mapping := map[int]int{}
	for i, a := range res.Assignments {
		if m, ok := mapping[truth[i]]; ok {
			if m == a {
				agree++
			}
		} else {
			mapping[truth[i]] = a
			agree++
		}
	}
	if frac := float64(agree) / 400; frac < 0.95 {
		t.Errorf("cluster agreement = %v", frac)
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %v", res.Inertia)
	}
}

func TestMiniBatchValidation(t *testing.T) {
	x, _ := blobs(10, 2)
	if _, err := MiniBatch(context.Background(), x, MiniBatchOptions{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := MiniBatch(context.Background(), x, MiniBatchOptions{K: 11}); err == nil {
		t.Error("accepted K>n")
	}
	badInit := mat.NewDense(3, 2)
	if _, err := MiniBatch(context.Background(), x, MiniBatchOptions{K: 2, InitCentroids: badInit}); err == nil {
		t.Error("accepted wrong init shape")
	}
}

func TestMiniBatchDeterministic(t *testing.T) {
	x, _ := blobs(200, 3)
	a, err := MiniBatch(context.Background(), x, MiniBatchOptions{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MiniBatch(context.Background(), x, MiniBatchOptions{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Errorf("same seed diverged: %v vs %v", a.Inertia, b.Inertia)
	}
}

func TestMiniBatchNearFullBatchQuality(t *testing.T) {
	// Mini-batch should land within 2x of full Lloyd inertia on easy
	// blobs.
	x, _ := blobs(300, 3)
	full, err := Run(context.Background(), x, Options{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := MiniBatch(context.Background(), x, MiniBatchOptions{K: 3, Seed: 4, Steps: 300})
	if err != nil {
		t.Fatal(err)
	}
	if mb.Inertia > 2*full.Inertia+1 {
		t.Errorf("mini-batch inertia %v vs full %v", mb.Inertia, full.Inertia)
	}
}

func TestMiniBatchTouchesFarLessDataThanLloyd(t *testing.T) {
	// The point of the variant: mini-batch touches much less of an
	// out-of-core matrix than full Lloyd. Compare element bytes
	// touched by 10 Lloyd iterations vs 100 mini-batch steps of 16
	// rows on a 512-row paged matrix.
	mk := func() (*mat.Dense, *store.Paged) {
		data := make([]float64, 512*64)
		ps, err := store.NewPaged(data, store.PagedConfig{VM: vm.Config{
			PageSize:   4096,
			CacheBytes: 8 * 4096, // tiny cache → every pass re-reads
			Disk:       vm.DiskModel{BandwidthBytes: 1e9},
		}})
		if err != nil {
			t.Fatal(err)
		}
		x, err := mat.NewDenseStore(ps, 512, 64)
		if err != nil {
			t.Fatal(err)
		}
		return x, ps
	}

	xl, psl := mk()
	if _, err := Run(context.Background(), xl, Options{K: 4, Seed: 1, MaxIterations: 10, RunAllIterations: true, InitCentroids: mat.NewDense(4, 64)}); err != nil {
		t.Fatal(err)
	}
	lloydBytes := psl.Stats().BytesTouched

	xm, psm := mk()
	if _, err := MiniBatch(context.Background(), xm, MiniBatchOptions{K: 4, Seed: 1, Steps: 100, BatchSize: 16, InitCentroids: mat.NewDense(4, 64)}); err != nil {
		t.Fatal(err)
	}
	mbBytes := psm.Stats().BytesTouched

	if mbBytes*2 > lloydBytes {
		t.Errorf("mini-batch read %d bytes, Lloyd %d — expected > 2x reduction", mbBytes, lloydBytes)
	}
}
