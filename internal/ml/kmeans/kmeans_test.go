package kmeans

import (
	"context"
	"m3/internal/fit"
	"m3/internal/optimize"
	"math"
	"testing"

	"m3/internal/blas"
	"m3/internal/infimnist"
	"m3/internal/mat"
	"m3/internal/store"
	"m3/internal/vm"
)

// blobs builds n points around k well-separated 2-D centers.
func blobs(n, k int) (*mat.Dense, []int) {
	x := mat.NewDense(n, 2)
	truth := make([]int, n)
	r := uint64(777)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000)/1000 - 0.5
	}
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		cx := float64(c%3) * 10
		cy := float64(c/3) * 10
		x.Set(i, 0, cx+next())
		x.Set(i, 1, cy+next())
	}
	return x, truth
}

func TestRunRecoversBlobs(t *testing.T) {
	const k = 4
	x, truth := blobs(400, k)
	res, err := Run(context.Background(), x, Options{K: k, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("did not converge in %d iterations", res.Iterations)
	}
	// Every true cluster must map to exactly one predicted cluster.
	mapping := make(map[int]int)
	for i, a := range res.Assignments {
		if prev, ok := mapping[truth[i]]; ok && prev != a {
			t.Fatalf("true cluster %d split across %d and %d", truth[i], prev, a)
		}
		mapping[truth[i]] = a
	}
	if len(mapping) != k {
		t.Errorf("found %d clusters, want %d", len(mapping), k)
	}
	// Inertia must be small: points are within ±0.5 of centers.
	if res.Inertia/400 > 1 {
		t.Errorf("mean inertia = %v", res.Inertia/400)
	}
}

func TestRunValidation(t *testing.T) {
	x, _ := blobs(10, 2)
	if _, err := Run(context.Background(), x, Options{K: 0}); err == nil {
		t.Error("accepted K=0")
	}
	if _, err := Run(context.Background(), x, Options{K: 11}); err == nil {
		t.Error("accepted K > n")
	}
}

func TestRunK1(t *testing.T) {
	x, _ := blobs(50, 1)
	res, err := Run(context.Background(), x, Options{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Single centroid must be the mean.
	var mx, my float64
	for i := 0; i < 50; i++ {
		mx += x.At(i, 0)
		my += x.At(i, 1)
	}
	mx /= 50
	my /= 50
	if math.Abs(res.Centroids.At(0, 0)-mx) > 1e-9 || math.Abs(res.Centroids.At(0, 1)-my) > 1e-9 {
		t.Errorf("centroid = (%v,%v), mean = (%v,%v)",
			res.Centroids.At(0, 0), res.Centroids.At(0, 1), mx, my)
	}
}

func TestDeterminism(t *testing.T) {
	x, _ := blobs(100, 3)
	a, err := Run(context.Background(), x, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), x, Options{K: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia || a.Iterations != b.Iterations {
		t.Errorf("same seed diverged: %v/%d vs %v/%d", a.Inertia, a.Iterations, b.Inertia, b.Iterations)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

func TestInertiaDecreasesMonotonically(t *testing.T) {
	x, _ := blobs(300, 5)
	prev := math.Inf(1)
	_, err := Run(context.Background(), x, Options{K: 5, Seed: 9, FitOptions: fit.FitOptions{
		Callback: func(info optimize.IterInfo) bool {
			if info.Value > prev+1e-9 {
				t.Errorf("iteration %d increased inertia %v -> %v", info.Iter, prev, info.Value)
			}
			prev = info.Value
			return true
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallbackStops(t *testing.T) {
	x, _ := blobs(100, 3)
	res, err := Run(context.Background(), x, Options{K: 3, Seed: 1, FitOptions: fit.FitOptions{
		Callback: func(info optimize.IterInfo) bool {
			return info.Iter < 2
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d want 2", res.Iterations)
	}
}

func TestMaxIterationsRespected(t *testing.T) {
	g := infimnist.Generator{Seed: 1}
	xs, _ := g.Matrix(0, 100)
	x := mat.NewDenseFrom(xs, 100, infimnist.Features)
	res, err := Run(context.Background(), x, Options{K: 5, MaxIterations: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

func TestPlusPlusBeatsRandomInit(t *testing.T) {
	// On adversarial blob geometry, k-means++ should land at (or
	// below) the random-init inertia for most seeds.
	x, _ := blobs(200, 6)
	better := 0
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		pp, err := Run(context.Background(), x, Options{K: 6, Seed: s, MaxIterations: 1})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := Run(context.Background(), x, Options{K: 6, Seed: s, MaxIterations: 1, RandomInit: true})
		if err != nil {
			t.Fatal(err)
		}
		if pp.Inertia <= rnd.Inertia*1.01 {
			better++
		}
	}
	if better < trials/2 {
		t.Errorf("k-means++ no better than random in %d/%d trials", trials-better, trials)
	}
}

func TestPredictMatchesAssignments(t *testing.T) {
	x, _ := blobs(100, 3)
	res, err := Run(context.Background(), x, Options{K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		row, _ := x.Row(i)
		if got := res.Predict(row); got != res.Assignments[i] {
			t.Fatalf("Predict(row %d) = %d, assignment %d", i, got, res.Assignments[i])
		}
	}
}

func TestInertiaFunction(t *testing.T) {
	x, _ := blobs(100, 2)
	res, err := Run(context.Background(), x, Options{K: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := Inertia(x, res.Centroids); math.Abs(got-res.Inertia) > 1e-6*math.Max(1, res.Inertia) {
		t.Errorf("Inertia = %v, result reports %v", got, res.Inertia)
	}
}

func TestEmptyClusterRepair(t *testing.T) {
	// Duplicate points + K near n forces empty clusters during
	// iterations; the run must still return K valid centroids.
	x := mat.NewDense(10, 2)
	for i := 0; i < 10; i++ {
		x.Set(i, 0, float64(i/5)) // only two distinct locations
	}
	res, err := Run(context.Background(), x, Options{K: 4, Seed: 13, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	k, d := res.Centroids.Dims()
	if k != 4 || d != 2 {
		t.Fatalf("centroid dims %dx%d", k, d)
	}
	for c := 0; c < k; c++ {
		for _, v := range res.Centroids.RawRow(c) {
			if math.IsNaN(v) {
				t.Fatalf("centroid %d contains NaN", c)
			}
		}
	}
}

func TestPagedBackendSameClustering(t *testing.T) {
	// Transparency invariant for k-means: paged store produces the
	// same assignments as heap.
	xh, _ := blobs(80, 3)
	data := make([]float64, 160)
	for i := 0; i < 80; i++ {
		data[i*2] = xh.At(i, 0)
		data[i*2+1] = xh.At(i, 1)
	}
	ps, err := store.NewPaged(data, store.PagedConfig{VM: vm.Config{
		PageSize:   128,
		CacheBytes: 256,
		Disk:       vm.DiskModel{BandwidthBytes: 1e6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	xp, err := mat.NewDenseStore(ps, 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := Run(context.Background(), xh, Options{K: 3, Seed: 6, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(context.Background(), xp, Options{K: 3, Seed: 6, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rh.Inertia != rp.Inertia {
		t.Errorf("inertia differs: %v vs %v", rh.Inertia, rp.Inertia)
	}
	for i := range rh.Assignments {
		if rh.Assignments[i] != rp.Assignments[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
	if rp.Stall <= 0 {
		t.Error("paged run reported no stall")
	}
}

func TestClustersDigits(t *testing.T) {
	// 5 clusters over digits (the paper's Fig 1b configuration uses
	// k=5); just assert the run completes and inertia is finite and
	// decreasing relative to a 1-cluster baseline.
	g := infimnist.Generator{Seed: 30}
	xs, _ := g.Matrix(0, 200)
	x := mat.NewDenseFrom(xs, 200, infimnist.Features)
	k5, err := Run(context.Background(), x, Options{K: 5, Seed: 5, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	k1, err := Run(context.Background(), x, Options{K: 1, Seed: 5, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !(k5.Inertia < k1.Inertia) {
		t.Errorf("k=5 inertia %v not below k=1 inertia %v", k5.Inertia, k1.Inertia)
	}
	if k5.Scans == 0 || blas.Sum(k5.Centroids.RawRow(0)) == 0 {
		t.Error("suspicious empty result")
	}
}
