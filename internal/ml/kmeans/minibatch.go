package kmeans

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/optimize"
)

// MiniBatchOptions configures mini-batch k-means (Sculley, WWW 2010),
// the variant that matters most out-of-core: each step touches only
// BatchSize rows instead of the whole matrix, trading a little
// clustering quality for an order-of-magnitude less paging.
type MiniBatchOptions struct {
	// FitOptions carries the shared training surface. Workers applies
	// to the final full assignment pass (the sequential mini-batch
	// updates are inherently order-dependent); Callback runs after
	// each step with IterInfo{Iter: step}.
	fit.FitOptions
	// K is the cluster count (required).
	K int
	// BatchSize rows per step (default 256).
	BatchSize int
	// Steps is the number of mini-batch updates (default 100).
	Steps int
	// Seed drives batch sampling and initialization.
	Seed uint64
	// InitCentroids optionally fixes the starting centroids (K×D);
	// otherwise K distinct random rows are used.
	InitCentroids *mat.Dense
}

func (o MiniBatchOptions) withDefaults() (MiniBatchOptions, error) {
	if o.K < 1 {
		return o, fmt.Errorf("kmeans: K = %d, want >= 1", o.K)
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.Steps <= 0 {
		o.Steps = 100
	}
	return o, nil
}

// MiniBatch runs mini-batch k-means. Batches are sampled as
// contiguous row windows at random offsets, so each step is a short
// sequential scan — random enough to be unbiased across steps,
// sequential enough to page well under M3. ctx cancels between steps
// and within one block of the final assignment pass.
func MiniBatch(ctx context.Context, x *mat.Dense, opts MiniBatchOptions) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	n, d := x.Dims()
	if o.K > n {
		return nil, fmt.Errorf("kmeans: K = %d exceeds %d rows", o.K, n)
	}
	if o.BatchSize > n {
		o.BatchSize = n
	}
	r := &rng{s: o.Seed ^ 0xa0761d6478bd642f}
	if r.s == 0 {
		r.s = 1
	}

	res := &Result{
		Centroids:   mat.NewDense(o.K, d),
		Assignments: make([]int, n),
	}
	switch {
	case o.InitCentroids != nil:
		ik, id := o.InitCentroids.Dims()
		if ik != o.K || id != d {
			return nil, fmt.Errorf("kmeans: InitCentroids is %dx%d, want %dx%d", ik, id, o.K, d)
		}
		res.Centroids.CopyFrom(o.InitCentroids)
	default:
		res.Stall += initRandom(x, res.Centroids, r)
	}

	// Per-centroid counts drive the decaying per-center learning
	// rate η = 1/count (Sculley's update).
	counts := make([]float64, o.K)
	callback := o.Hook("minibatch-kmeans")

	for step := 0; step < o.Steps; step++ {
		if err := fit.Canceled(ctx); err != nil {
			return nil, err
		}
		start := 0
		if n > o.BatchSize {
			start = r.intn(n - o.BatchSize + 1)
		}
		batch := x.RowWindow(start, start+o.BatchSize)
		stall := batch.ForEachRow(func(bi int, row []float64) {
			best, bestC := math.Inf(1), 0
			for c := 0; c < o.K; c++ {
				if d2 := blas.SqDist(row, res.Centroids.RawRow(c)); d2 < best {
					best, bestC = d2, c
				}
			}
			counts[bestC]++
			eta := 1 / counts[bestC]
			// centroid ← (1-η)centroid + η·row
			center := res.Centroids.RawRow(bestC)
			for j := range center {
				center[j] += eta * (row[j] - center[j])
			}
		})
		res.Stall += stall
		res.Iterations = step + 1
		if callback != nil && !callback(optimize.IterInfo{Iter: step + 1}) {
			break
		}
	}
	// Scans: mini-batch touched Iterations×BatchSize rows ≈ this many
	// full passes (rounded up for reporting; Iterations < Steps when
	// the callback stopped early).
	res.Scans = (res.Iterations*o.BatchSize + n - 1) / n

	// Final assignment pass for labels and inertia: one blocked scan
	// on the shared execution layer (assignments are per-row disjoint,
	// per-block inertia partials reduce in block order).
	centroids, ok := res.Centroids.Contiguous()
	if !ok {
		return nil, fmt.Errorf("kmeans: internal: centroid matrix not contiguous")
	}
	inertia, stall, err := exec.ReduceRows(x.ScanCtx(ctx, o.Workers).Named("kmeans inertia"),
		func() *float64 { return new(float64) },
		func(sum *float64, i int, row []float64) {
			bestC, best := blas.NearestRow(row, o.K, d, centroids, d)
			res.Assignments[i] = bestC
			*sum += best
		},
		func(dst, src *float64) { *dst += *src })
	if err != nil {
		return nil, err
	}
	res.Inertia = *inertia
	res.Stall += stall
	res.Scans++
	return res, nil
}
