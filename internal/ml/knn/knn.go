// Package knn implements brute-force k-nearest-neighbor search and
// classification. Neighbor search is mlpack's flagship workload
// (allkNN in the mlpack paper the authors built M3 on), and the
// brute-force variant is the perfect M3 citizen: answering a batch of
// queries costs exactly one sequential scan of the (possibly mapped)
// reference matrix, regardless of batch size.
package knn

import (
	"fmt"
	"sort"

	"m3/internal/blas"
	"m3/internal/mat"
)

// Neighbor is one search result.
type Neighbor struct {
	// Index is the reference row.
	Index int
	// SqDist is the squared Euclidean distance to the query.
	SqDist float64
}

// Search finds the k nearest reference rows for each query row using
// one sequential scan of refs. Results per query are sorted by
// ascending distance (ties by index). It returns one neighbor slice
// per query.
func Search(refs *mat.Dense, queries *mat.Dense, k int) ([][]Neighbor, error) {
	n, d := refs.Dims()
	qn, qd := queries.Dims()
	if d != qd {
		return nil, fmt.Errorf("knn: reference dim %d != query dim %d", d, qd)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("knn: k = %d outside [1,%d]", k, n)
	}

	// Per-query bounded max-heaps, updated as the single scan
	// streams reference rows past every query.
	heaps := make([]nheap, qn)
	for i := range heaps {
		heaps[i] = make(nheap, 0, k)
	}
	qRows := make([][]float64, qn)
	for i := 0; i < qn; i++ {
		qRows[i] = queries.RawRow(i)
	}
	refs.ForEachRow(func(ri int, row []float64) {
		for qi := range heaps {
			d2 := blas.SqDist(row, qRows[qi])
			h := &heaps[qi]
			if len(*h) < k {
				h.push(Neighbor{Index: ri, SqDist: d2})
			} else if d2 < (*h)[0].SqDist {
				h.replaceTop(Neighbor{Index: ri, SqDist: d2})
			}
		}
	})

	out := make([][]Neighbor, qn)
	for qi := range heaps {
		res := []Neighbor(heaps[qi])
		sort.Slice(res, func(a, b int) bool {
			if res[a].SqDist != res[b].SqDist {
				return res[a].SqDist < res[b].SqDist
			}
			return res[a].Index < res[b].Index
		})
		out[qi] = res
	}
	return out, nil
}

// Classify predicts labels by majority vote among the k nearest
// labelled reference rows (ties resolve to the nearest class).
func Classify(refs *mat.Dense, labels []int, queries *mat.Dense, k int) ([]int, error) {
	if refs.Rows() != len(labels) {
		return nil, fmt.Errorf("knn: %d reference rows but %d labels", refs.Rows(), len(labels))
	}
	results, err := Search(refs, queries, k)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(results))
	for qi, res := range results {
		votes := make(map[int]int)
		best, bestClass := 0, labels[res[0].Index]
		for _, nb := range res {
			c := labels[nb.Index]
			votes[c]++
			// Strictly-greater keeps the earliest (nearest-backed)
			// class on ties.
			if votes[c] > best {
				best, bestClass = votes[c], c
			}
		}
		out[qi] = bestClass
	}
	return out, nil
}

// nheap is a max-heap of neighbors by SqDist (top = worst kept).
type nheap []Neighbor

func (h *nheap) push(n Neighbor) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].SqDist >= (*h)[i].SqDist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *nheap) replaceTop(n Neighbor) {
	(*h)[0] = n
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(*h) && (*h)[l].SqDist > (*h)[largest].SqDist {
			largest = l
		}
		if r < len(*h) && (*h)[r].SqDist > (*h)[largest].SqDist {
			largest = r
		}
		if largest == i {
			return
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}
