// Package knn implements brute-force k-nearest-neighbor search and
// classification. Neighbor search is mlpack's flagship workload
// (allkNN in the mlpack paper the authors built M3 on), and the
// brute-force variant is the perfect M3 citizen: answering a batch of
// queries costs exactly one scan of the (possibly mapped) reference
// matrix, regardless of batch size.
//
// The scan runs blocked on the shared chunked-execution layer
// (internal/exec): reference blocks stream on a worker pool, each
// block keeps its own per-query bounded heaps, and block heaps merge
// in ascending block order — so results are identical for every
// worker count and every storage backend, and blas.NearestRow-style
// batch queries parallelize over the reference matrix.
package knn

import (
	"context"
	"fmt"
	"sort"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
)

// Options configures a search or classification scan.
type Options struct {
	// FitOptions carries the shared training surface; only Workers is
	// consulted (<= 0: engine hint, then NumCPU).
	fit.FitOptions
}

// Neighbor is one search result.
type Neighbor struct {
	// Index is the reference row.
	Index int
	// SqDist is the squared Euclidean distance to the query.
	SqDist float64
}

// heapSet is one block's per-query bounded max-heaps.
type heapSet struct {
	heaps []nheap
}

// Search finds the k nearest reference rows for each query row using
// one blocked scan of refs on the shared execution layer. Results per
// query are sorted by ascending distance (ties by index). ctx cancels
// the scan within one reference block.
func Search(ctx context.Context, refs, queries *mat.Dense, k int, opts Options) ([][]Neighbor, error) {
	n, d := refs.Dims()
	qn, qd := queries.Dims()
	if d != qd {
		return nil, fmt.Errorf("knn: reference dim %d != query dim %d", d, qd)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("knn: k = %d outside [1,%d]", k, n)
	}

	qRows := make([][]float64, qn)
	for i := 0; i < qn; i++ {
		qRows[i] = queries.RawRow(i)
	}
	// Per-block bounded max-heaps per query; merged in block order, so
	// the kept set is the one a single sequential scan would keep.
	acc, _, err := exec.ReduceRowBlocks(refs.ScanCtx(ctx, opts.Workers).Named("knn neighbors"),
		func() *heapSet {
			hs := &heapSet{heaps: make([]nheap, qn)}
			return hs
		},
		func(hs *heapSet, lo, hi int, block []float64, stride int) {
			for ri := lo; ri < hi; ri++ {
				row := block[(ri-lo)*stride : (ri-lo)*stride+d]
				for qi := range hs.heaps {
					d2 := blas.SqDist(row, qRows[qi])
					h := &hs.heaps[qi]
					if len(*h) < k {
						h.push(Neighbor{Index: ri, SqDist: d2})
					} else if d2 < (*h)[0].SqDist {
						h.replaceTop(Neighbor{Index: ri, SqDist: d2})
					}
				}
			}
		},
		func(dst, src *heapSet) {
			for qi := range dst.heaps {
				h := &dst.heaps[qi]
				for _, nb := range src.heaps[qi] {
					if len(*h) < k {
						h.push(nb)
					} else if nb.SqDist < (*h)[0].SqDist {
						h.replaceTop(nb)
					}
				}
			}
		})
	if err != nil {
		return nil, err
	}

	out := make([][]Neighbor, qn)
	for qi := range acc.heaps {
		res := []Neighbor(acc.heaps[qi])
		sort.Slice(res, func(a, b int) bool {
			//m3vet:allow floateq -- deterministic ordering needs exact distance ties
			if res[a].SqDist != res[b].SqDist {
				return res[a].SqDist < res[b].SqDist
			}
			return res[a].Index < res[b].Index
		})
		out[qi] = res
	}
	return out, nil
}

// Classify predicts labels by majority vote among the k nearest
// labelled reference rows (ties resolve to the nearest class). ctx
// cancels the underlying search within one reference block.
func Classify(ctx context.Context, refs *mat.Dense, labels []int, queries *mat.Dense, k int, opts Options) ([]int, error) {
	if refs.Rows() != len(labels) {
		return nil, fmt.Errorf("knn: %d reference rows but %d labels", refs.Rows(), len(labels))
	}
	results, err := Search(ctx, refs, queries, k, opts)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(results))
	for qi, res := range results {
		votes := make(map[int]int)
		best, bestClass := 0, labels[res[0].Index]
		for _, nb := range res {
			c := labels[nb.Index]
			votes[c]++
			// Strictly-greater keeps the earliest (nearest-backed)
			// class on ties.
			if votes[c] > best {
				best, bestClass = votes[c], c
			}
		}
		out[qi] = bestClass
	}
	return out, nil
}

// nheap is a max-heap of neighbors by SqDist (top = worst kept).
type nheap []Neighbor

func (h *nheap) push(n Neighbor) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].SqDist >= (*h)[i].SqDist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *nheap) replaceTop(n Neighbor) {
	(*h)[0] = n
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(*h) && (*h)[l].SqDist > (*h)[largest].SqDist {
			largest = l
		}
		if r < len(*h) && (*h)[r].SqDist > (*h)[largest].SqDist {
			largest = r
		}
		if largest == i {
			return
		}
		(*h)[i], (*h)[largest] = (*h)[largest], (*h)[i]
		i = largest
	}
}
