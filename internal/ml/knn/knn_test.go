package knn

import (
	"context"
	"m3/internal/fit"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"m3/internal/infimnist"
	"m3/internal/mat"
)

func TestSearchExactSmall(t *testing.T) {
	// References on a line: 0, 1, 2, 3, 4.
	refs := mat.NewDense(5, 1)
	for i := 0; i < 5; i++ {
		refs.Set(i, 0, float64(i))
	}
	queries := mat.NewDense(1, 1)
	queries.Set(0, 0, 2.2)
	res, err := Search(context.Background(), refs, queries, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := []int{res[0][0].Index, res[0][1].Index, res[0][2].Index}
	want := []int{2, 3, 1} // distances 0.2, 0.8, 1.2
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors = %v want %v", got, want)
		}
	}
	// Distances ascending.
	for i := 1; i < 3; i++ {
		if res[0][i].SqDist < res[0][i-1].SqDist {
			t.Error("distances not ascending")
		}
	}
}

func TestSearchValidation(t *testing.T) {
	refs := mat.NewDense(3, 2)
	q := mat.NewDense(1, 3)
	if _, err := Search(context.Background(), refs, q, 1, Options{}); err == nil {
		t.Error("accepted dim mismatch")
	}
	q2 := mat.NewDense(1, 2)
	if _, err := Search(context.Background(), refs, q2, 0, Options{}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Search(context.Background(), refs, q2, 4, Options{}); err == nil {
		t.Error("accepted k>n")
	}
}

func TestSearchMatchesNaive(t *testing.T) {
	// Cross-check against full sort for random data.
	f := func(seed int64) bool {
		r := uint64(seed)
		if r == 0 {
			r = 1
		}
		next := func() float64 {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			return float64(r%1000) / 100
		}
		const n, d, k = 20, 3, 5
		refs := mat.NewDense(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				refs.Set(i, j, next())
			}
		}
		q := mat.NewDense(1, d)
		for j := 0; j < d; j++ {
			q.Set(0, j, next())
		}
		res, err := Search(context.Background(), refs, q, k, Options{})
		if err != nil {
			return false
		}
		// Naive: sort all distances.
		type pair struct {
			idx int
			d2  float64
		}
		all := make([]pair, n)
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < d; j++ {
				diff := refs.At(i, j) - q.At(0, j)
				s += diff * diff
			}
			all[i] = pair{i, s}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].d2 != all[b].d2 {
				return all[a].d2 < all[b].d2
			}
			return all[a].idx < all[b].idx
		})
		for i := 0; i < k; i++ {
			if res[0][i].Index != all[i].idx ||
				math.Abs(res[0][i].SqDist-all[i].d2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClassifyDigits(t *testing.T) {
	g := infimnist.Generator{Seed: 23}
	const nRefs, nQ = 300, 60
	xs, labels := g.Matrix(0, nRefs)
	refs := mat.NewDenseFrom(xs, nRefs, infimnist.Features)
	y := make([]int, nRefs)
	for i, v := range labels {
		y[i] = int(v)
	}
	qx, qlabels := g.Matrix(20000, nQ)
	queries := mat.NewDenseFrom(qx, nQ, infimnist.Features)

	pred, err := Classify(context.Background(), refs, y, queries, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, p := range pred {
		if p == int(qlabels[i]) {
			correct++
		}
	}
	if acc := float64(correct) / nQ; acc < 0.8 {
		t.Errorf("kNN digit accuracy = %v", acc)
	}
}

func TestClassifyValidation(t *testing.T) {
	refs := mat.NewDense(3, 2)
	q := mat.NewDense(1, 2)
	if _, err := Classify(context.Background(), refs, []int{0, 1}, q, 1, Options{}); err == nil {
		t.Error("accepted label mismatch")
	}
}

func TestClassifyK1IsNearest(t *testing.T) {
	refs := mat.NewDense(2, 1)
	refs.Set(0, 0, 0)
	refs.Set(1, 0, 10)
	q := mat.NewDense(2, 1)
	q.Set(0, 0, 1)
	q.Set(1, 0, 9)
	pred, err := Classify(context.Background(), refs, []int{7, 8}, q, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pred[0] != 7 || pred[1] != 8 {
		t.Errorf("pred = %v", pred)
	}
}

// TestSearchDeterministicAcrossWorkers: the blocked reference scan
// returns identical neighbor lists for every worker count — block
// heaps merge in ascending block order, so the kept set matches the
// sequential scan's.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	const n, d, k, qn = 3000, 8, 7, 5
	refs := mat.NewDense(n, d)
	queries := mat.NewDense(qn, d)
	r := uint64(31)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%10000) / 100
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			refs.Set(i, j, next())
		}
	}
	for i := 0; i < qn; i++ {
		for j := 0; j < d; j++ {
			queries.Set(i, j, next())
		}
	}
	opts := func(w int) Options {
		return Options{FitOptions: fit.FitOptions{Workers: w}}
	}
	ref, err := Search(context.Background(), refs, queries, k, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := Search(context.Background(), refs, queries, k, opts(workers))
		if err != nil {
			t.Fatal(err)
		}
		for qi := range ref {
			for i := range ref[qi] {
				if got[qi][i] != ref[qi][i] {
					t.Fatalf("workers=%d: query %d neighbor %d = %+v, want %+v",
						workers, qi, i, got[qi][i], ref[qi][i])
				}
			}
		}
	}
}

// TestSearchCancellation: a pre-cancelled context aborts the scan.
func TestSearchCancellation(t *testing.T) {
	refs := mat.NewDense(100, 4)
	q := mat.NewDense(2, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, refs, q, 3, Options{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
