// Package sgd implements stochastic gradient descent for logistic
// regression — the paper's §4 plan to "extend our M3 approach to a
// wide range of machine learning (including online learning)".
//
// Two entry points:
//
//   - Train performs epoch-based (mini-batch) SGD over a matrix,
//     which may be memory-mapped; with Shuffle off it visits rows in
//     storage order, preserving the sequential access pattern that
//     pages well (the access-pattern experiment quantifies why
//     Shuffle is expensive out-of-core).
//   - Learner is a true online learner: one Update per arriving
//     example, no dataset required at all — the natural fit for
//     Infimnist's unbounded stream.
package sgd

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/ml/logreg"
	"m3/internal/optimize"
)

// Options configures SGD training.
type Options struct {
	// FitOptions carries the shared training surface. Workers is
	// ignored — SGD's updates are inherently sequential — and Callback
	// runs after each epoch with IterInfo{Iter: epoch, Value: mean
	// loss}; returning false stops training.
	fit.FitOptions
	// LearningRate is the initial step size η₀ (default 0.5).
	LearningRate float64
	// Lambda is the L2 regularization strength (default 1e-4). It
	// also drives the Bottou step decay η_t = η₀/(1+η₀λt).
	Lambda float64
	// Epochs over the data (default 1).
	Epochs int
	// BatchSize for mini-batching (default 1 = pure online).
	BatchSize int
	// Shuffle visits rows in a pseudo-random order each epoch.
	// Sequential order (default) is what pages well under M3.
	Shuffle bool
	// Seed drives shuffling.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.LearningRate <= 0 {
		o.LearningRate = 0.5
	}
	if o.Lambda < 0 {
		o.Lambda = 0
	}
	if o.Epochs <= 0 {
		o.Epochs = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	return o
}

// Learner is an online binary logistic-regression learner. The zero
// value is not ready; use NewLearner.
type Learner struct {
	// W are the feature weights.
	W []float64
	// B is the bias.
	B float64
	// Steps counts updates performed.
	Steps int

	eta0   float64
	lambda float64
}

// NewLearner creates an online learner for dim features.
func NewLearner(dim int, learningRate, lambda float64) (*Learner, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("sgd: non-positive dimension %d", dim)
	}
	if learningRate <= 0 {
		return nil, fmt.Errorf("sgd: non-positive learning rate %v", learningRate)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("sgd: negative lambda %v", lambda)
	}
	return &Learner{W: make([]float64, dim), eta0: learningRate, lambda: lambda}, nil
}

// eta returns the step size for the current step (Bottou decay).
func (l *Learner) eta() float64 {
	return l.eta0 / (1 + l.eta0*l.lambda*float64(l.Steps))
}

// Update performs one SGD step on a single labelled example and
// returns its pre-update log-loss. The label must be 0 or 1.
func (l *Learner) Update(row []float64, y float64) (loss float64, err error) {
	if len(row) != len(l.W) {
		return 0, fmt.Errorf("sgd: row has %d features, learner has %d", len(row), len(l.W))
	}
	if y != 0 && y != 1 {
		return 0, fmt.Errorf("sgd: label %v, want 0 or 1", y)
	}
	z := blas.Dot(row, l.W) + l.B
	prob, loss := sigmoidLoss(z, y)
	step := l.eta()
	diff := prob - y
	// w ← (1-ηλ)w - η·diff·x  (regularized SGD step)
	if l.lambda > 0 {
		blas.Scal(1-step*l.lambda, l.W)
	}
	blas.Axpy(-step*diff, row, l.W)
	l.B -= step * diff
	l.Steps++
	return loss, nil
}

// Prob returns P(y=1 | row) under the current parameters.
func (l *Learner) Prob(row []float64) float64 {
	z := blas.Dot(row, l.W) + l.B
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	ez := math.Exp(z)
	return ez / (1 + ez)
}

// Predict returns the hard 0/1 label.
func (l *Learner) Predict(row []float64) float64 {
	if blas.Dot(row, l.W)+l.B >= 0 {
		return 1
	}
	return 0
}

// Model converts the learner into a logreg.Model for shared
// evaluation helpers.
func (l *Learner) Model() *logreg.Model {
	w := append([]float64(nil), l.W...)
	return &logreg.Model{Weights: w, Intercept: l.B}
}

// sigmoidLoss mirrors the numerically stable form used by logreg.
func sigmoidLoss(z, y float64) (prob, loss float64) {
	if z >= 0 {
		ez := math.Exp(-z)
		prob = 1 / (1 + ez)
		if y == 1 {
			loss = math.Log1p(ez)
		} else {
			loss = z + math.Log1p(ez)
		}
		return prob, loss
	}
	ez := math.Exp(z)
	prob = ez / (1 + ez)
	if y == 1 {
		loss = -z + math.Log1p(ez)
	} else {
		loss = math.Log1p(ez)
	}
	return prob, loss
}

// Train runs epoch-based mini-batch SGD over a (possibly mapped)
// matrix and returns the fitted model. ctx cancels training between
// mini-batches (SGD has no long uninterruptible scans: every batch is
// at most BatchSize rows).
func Train(ctx context.Context, x *mat.Dense, y []float64, opts Options) (*logreg.Model, error) {
	o := opts.withDefaults()
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	n, d := x.Dims()
	if n != len(y) {
		return nil, fmt.Errorf("sgd: %d rows but %d labels", n, len(y))
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return nil, fmt.Errorf("sgd: label[%d] = %v, want 0 or 1", i, v)
		}
	}
	learner, err := NewLearner(d, o.LearningRate, o.Lambda)
	if err != nil {
		return nil, err
	}

	batchGrad := make([]float64, d)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	callback := o.Hook("sgd")
	rngState := o.Seed ^ 0x9e3779b97f4a7c15
	if rngState == 0 {
		rngState = 1
	}
	nextRand := func() uint64 {
		rngState ^= rngState << 13
		rngState ^= rngState >> 7
		rngState ^= rngState << 17
		return rngState
	}

	for epoch := 1; epoch <= o.Epochs; epoch++ {
		if o.Shuffle {
			for i := n - 1; i > 0; i-- {
				j := int(nextRand() % uint64(i+1))
				order[i], order[j] = order[j], order[i]
			}
		}
		var epochLoss float64
		for start := 0; start < n; start += o.BatchSize {
			if err := fit.Canceled(ctx); err != nil {
				return nil, err
			}
			end := start + o.BatchSize
			if end > n {
				end = n
			}
			if o.BatchSize == 1 {
				row, _ := x.Row(order[start])
				loss, err := learner.Update(row, y[order[start]])
				if err != nil {
					return nil, err
				}
				epochLoss += loss
				continue
			}
			// Mini-batch: average the gradient, one step.
			blas.Fill(batchGrad, 0)
			var biasGrad float64
			for _, idx := range order[start:end] {
				row, _ := x.Row(idx)
				z := blas.Dot(row, learner.W) + learner.B
				prob, loss := sigmoidLoss(z, y[idx])
				epochLoss += loss
				diff := prob - y[idx]
				blas.Axpy(diff, row, batchGrad)
				biasGrad += diff
			}
			m := float64(end - start)
			step := learner.eta()
			if learner.lambda > 0 {
				blas.Scal(1-step*learner.lambda, learner.W)
			}
			blas.Axpy(-step/m, batchGrad, learner.W)
			learner.B -= step * biasGrad / m
			learner.Steps++
		}
		if callback != nil && !callback(optimize.IterInfo{Iter: epoch, Value: epochLoss / float64(n)}) {
			break
		}
	}
	return learner.Model(), nil
}
