package sgd

import (
	"context"
	"m3/internal/fit"
	"m3/internal/optimize"
	"math"
	"testing"

	"m3/internal/infimnist"
	"m3/internal/mat"
)

// blobs builds a linearly separable binary problem.
func blobs(n int) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	r := uint64(4242)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%1000)/1000 - 0.5
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x.Set(i, 0, next()+2)
			x.Set(i, 1, next()+2)
			y[i] = 1
		} else {
			x.Set(i, 0, next()-2)
			x.Set(i, 1, next()-2)
		}
	}
	return x, y
}

func TestTrainLearnsBlobs(t *testing.T) {
	x, y := blobs(400)
	m, err := Train(context.Background(), x, y, Options{Epochs: 5, LearningRate: 0.5, Lambda: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.98 {
		t.Errorf("SGD accuracy = %v", acc)
	}
}

func TestTrainMiniBatch(t *testing.T) {
	x, y := blobs(300)
	m, err := Train(context.Background(), x, y, Options{Epochs: 10, BatchSize: 16, LearningRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.98 {
		t.Errorf("mini-batch accuracy = %v", acc)
	}
}

func TestTrainShuffleDeterministicInSeed(t *testing.T) {
	x, y := blobs(100)
	a, err := Train(context.Background(), x, y, Options{Epochs: 2, Shuffle: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(context.Background(), x, y, Options{Epochs: 2, Shuffle: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("same seed diverged at weight %d", i)
		}
	}
	c, err := Train(context.Background(), x, y, Options{Epochs: 2, Shuffle: true, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := a.Intercept == c.Intercept
	for i := range a.Weights {
		same = same && a.Weights[i] == c.Weights[i]
	}
	if same {
		t.Error("different seeds produced identical models")
	}
}

func TestTrainValidation(t *testing.T) {
	x, _ := blobs(10)
	if _, err := Train(context.Background(), x, []float64{0, 1}, Options{}); err == nil {
		t.Error("accepted label mismatch")
	}
	bad := make([]float64, 10)
	bad[3] = 5
	if _, err := Train(context.Background(), x, bad, Options{}); err == nil {
		t.Error("accepted label 5")
	}
}

func TestTrainCallbackStops(t *testing.T) {
	x, y := blobs(50)
	calls := 0
	_, err := Train(context.Background(), x, y, Options{Epochs: 10, FitOptions: fit.FitOptions{
		Callback: func(info optimize.IterInfo) bool {
			calls++
			return false
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after stop", calls)
	}
}

func TestTrainLossDecreasesOverEpochs(t *testing.T) {
	x, y := blobs(200)
	var losses []float64
	_, err := Train(context.Background(), x, y, Options{Epochs: 6, LearningRate: 0.3, FitOptions: fit.FitOptions{
		Callback: func(info optimize.IterInfo) bool {
			losses = append(losses, info.Value)
			return true
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 6 {
		t.Fatalf("epochs = %d", len(losses))
	}
	if !(losses[5] < losses[0]) {
		t.Errorf("loss did not decrease: %v", losses)
	}
}

func TestLearnerOnlineStream(t *testing.T) {
	// True online learning from the infinite digit stream: never
	// materialize a dataset at all (paper §4, online learning).
	g := infimnist.Generator{Seed: 12}
	l, err := NewLearner(infimnist.Features, 0.5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, infimnist.Features)
	for i := int64(0); i < 3000; i++ {
		label := g.Fill(row, i)
		y := 0.0
		if label == 0 {
			y = 1
		}
		if _, err := l.Update(row, y); err != nil {
			t.Fatal(err)
		}
	}
	if l.Steps != 3000 {
		t.Errorf("steps = %d", l.Steps)
	}
	// Evaluate on unseen stream indices.
	correct := 0
	const test = 500
	for i := int64(100000); i < 100000+test; i++ {
		label := g.Fill(row, i)
		want := 0.0
		if label == 0 {
			want = 1
		}
		if l.Predict(row) == want {
			correct++
		}
	}
	if acc := float64(correct) / test; acc < 0.9 {
		t.Errorf("online accuracy on unseen stream = %v", acc)
	}
}

func TestLearnerValidation(t *testing.T) {
	if _, err := NewLearner(0, 1, 0); err == nil {
		t.Error("accepted dim 0")
	}
	if _, err := NewLearner(3, 0, 0); err == nil {
		t.Error("accepted rate 0")
	}
	if _, err := NewLearner(3, 1, -1); err == nil {
		t.Error("accepted negative lambda")
	}
	l, err := NewLearner(3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Update([]float64{1, 2}, 0); err == nil {
		t.Error("accepted short row")
	}
	if _, err := l.Update([]float64{1, 2, 3}, 2); err == nil {
		t.Error("accepted label 2")
	}
}

func TestLearnerStepDecay(t *testing.T) {
	l, err := NewLearner(1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	e0 := l.eta()
	if _, err := l.Update([]float64{1}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Update([]float64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if e2 := l.eta(); !(e2 < e0) {
		t.Errorf("learning rate did not decay: %v -> %v", e0, e2)
	}
}

func TestLearnerProbRange(t *testing.T) {
	l, err := NewLearner(2, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.W = []float64{1000, -1000}
	for _, row := range [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}} {
		p := l.Prob(row)
		if math.IsNaN(p) || p < 0 || p > 1 {
			t.Errorf("Prob(%v) = %v", row, p)
		}
	}
}

func TestLearnerModelConversion(t *testing.T) {
	x, y := blobs(200)
	l, err := NewLearner(2, 0.5, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 5; epoch++ {
		for i := 0; i < 200; i++ {
			row, _ := x.Row(i)
			if _, err := l.Update(row, y[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := l.Model()
	if acc := m.Accuracy(x, y); acc < 0.98 {
		t.Errorf("converted model accuracy = %v", acc)
	}
	// The conversion copies weights: mutating the learner afterwards
	// must not change the model.
	before := m.Weights[0]
	l.W[0] += 100
	if m.Weights[0] != before {
		t.Error("Model aliases learner weights")
	}
}
