// Package linreg implements ridge linear regression over
// (possibly memory-mapped) matrices, trained either by streaming
// L-BFGS — the same iteration structure as the paper's logistic
// regression, so it inherits M3's paging behaviour unchanged — or by
// the closed-form normal equations for low-dimensional problems.
package linreg

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/optimize"
)

// Options configures training.
type Options struct {
	// FitOptions carries the shared training surface (workers
	// override, iteration callback, verbosity).
	fit.FitOptions
	// Lambda is the ridge penalty (default 1e-6).
	Lambda float64
	// NoIntercept disables the bias term.
	NoIntercept bool
	// MaxIterations bounds L-BFGS (default 100).
	MaxIterations int
	// GradTol is the L-BFGS gradient tolerance (default 1e-8).
	GradTol float64
}

func (o Options) withDefaults() Options {
	if o.Lambda == 0 {
		o.Lambda = 1e-6
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-8
	}
	return o
}

// ResolveOptions applies the defaults Train and TrainExact would —
// exported so the distributed coordinator closes the normal equations
// (and builds its remote objective) with the same ridge penalty a
// local fit uses.
func ResolveOptions(opts Options) Options { return opts.withDefaults() }

// Model is a fitted linear regressor.
type Model struct {
	// Weights holds one coefficient per feature.
	Weights []float64
	// Intercept is the bias (0 without intercept).
	Intercept float64
}

// Predict returns w·row + b.
func (m *Model) Predict(row []float64) float64 {
	return blas.Dot(row, m.Weights) + m.Intercept
}

// MSE computes the mean squared error over a matrix.
func (m *Model) MSE(x *mat.Dense, y []float64) float64 {
	if x.Rows() == 0 {
		return 0
	}
	var sse float64
	x.ForEachRow(func(i int, row []float64) {
		d := m.Predict(row) - y[i]
		sse += d * d
	})
	return sse / float64(x.Rows())
}

// R2 computes the coefficient of determination over a matrix.
func (m *Model) R2(x *mat.Dense, y []float64) float64 {
	n := x.Rows()
	if n == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var ssTot float64
	for _, v := range y {
		d := v - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - m.MSE(x, y)*float64(n)/ssTot
}

// Objective is the ridge least-squares loss, evaluated in blocked
// (optionally parallel) scans on the shared execution layer; it
// implements optimize.Objective.
type Objective struct {
	x         *mat.Dense
	y         []float64
	lambda    float64
	intercept bool
	// Workers sizes the worker pool per scan (<= 0: engine hint, then
	// NumCPU). The result is bit-identical for every value.
	Workers int
	// Ctx, when non-nil, cancels data scans at block granularity.
	Ctx context.Context
	// Scans counts full passes.
	Scans int
}

// NewObjective validates shapes.
func NewObjective(x *mat.Dense, y []float64, lambda float64, intercept bool) (*Objective, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("linreg: %d rows but %d targets", x.Rows(), len(y))
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linreg: negative lambda %v", lambda)
	}
	return &Objective{x: x, y: y, lambda: lambda, intercept: intercept}, nil
}

// Dim returns the parameter count.
func (o *Objective) Dim() int {
	d := o.x.Cols()
	if o.intercept {
		d++
	}
	return d
}

// LsqPartial is one merge group's (or block's) share of the
// least-squares loss and gradient — the shardable aggregate a
// distributed evaluation ships. Fields are exported for gob.
type LsqPartial struct {
	SSE, GB float64
	GW      []float64
}

// NewLsqPartial returns a zero partial for d features.
func NewLsqPartial(d int) *LsqPartial { return &LsqPartial{GW: make([]float64, d)} }

// MergeLsq folds src into dst with the local objective's exact merge
// operations.
func MergeLsq(dst, src *LsqPartial) {
	dst.SSE += src.SSE
	dst.GB += src.GB
	blas.Axpy(1, src.GW, dst.GW)
}

// lsqKernel returns the per-row accumulation at parameters (w, b).
func lsqKernel(y, w []float64, b float64) func(p *LsqPartial, i int, row []float64) {
	return func(p *LsqPartial, i int, row []float64) {
		r := blas.Dot(row, w) + b - y[i]
		p.SSE += r * r
		blas.Axpy(r, row, p.GW)
		p.GB += r
	}
}

// LsqGroups computes the per-merge-group partials of the ridge
// least-squares objective at params — the worker half of a
// distributed evaluation. groupRows must be the coordinator's global
// group height.
func LsqGroups(ctx context.Context, x *mat.Dense, y []float64, params []float64, intercept bool, workers, groupRows int) ([]exec.GroupPartial[*LsqPartial], float64, error) {
	d := x.Cols()
	w := params[:d]
	var b float64
	if intercept {
		b = params[d]
	}
	scan := x.ScanCtx(ctx, workers).Named("linreg grad")
	scan.GroupRows = groupRows
	kern := lsqKernel(y, w, b)
	return exec.ReduceRowGroups(scan,
		func() *LsqPartial { return NewLsqPartial(d) },
		func(p *LsqPartial, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				kern(p, i, block[(i-lo)*stride:(i-lo)*stride+d])
			}
		},
		MergeLsq)
}

// FinishLsq turns the folded total into the mean regularized loss and
// gradient — post-reduce arithmetic shared by the local and
// distributed objectives.
func FinishLsq(total *LsqPartial, n, d int, lambda float64, intercept bool, params, grad []float64) float64 {
	w := params[:d]
	blas.Fill(grad, 0)
	gw := grad[:d]
	nf := float64(n)
	blas.AddScaled(gw, gw, 1/nf, total.GW)
	if intercept {
		grad[d] = total.GB / nf
	}
	loss := 0.5 * total.SSE / nf
	loss += 0.5 * lambda * blas.Dot(w, w)
	blas.Axpy(lambda, w, gw)
	return loss
}

// Eval computes ½·mean((w·x+b−y)²) + ½λ‖w‖² and its gradient in one
// blocked pass over the data.
func (o *Objective) Eval(params, grad []float64) float64 {
	d := o.x.Cols()
	w := params[:d]
	var b float64
	if o.intercept {
		b = params[d]
	}
	kern := lsqKernel(o.y, w, b)
	total, _, _ := exec.ReduceRows(o.x.ScanCtx(o.Ctx, o.Workers).Named("linreg grad"),
		func() *LsqPartial { return NewLsqPartial(d) },
		func(p *LsqPartial, i int, row []float64) { kern(p, i, row) },
		MergeLsq)
	o.Scans++
	return FinishLsq(total, o.x.Rows(), d, o.lambda, o.intercept, params, grad)
}

// RemoteObjective is the distributed least-squares objective: local
// Dim/finish, remote reduction (see logreg.RemoteObjective).
type RemoteObjective struct {
	N, D      int
	Lambda    float64
	Intercept bool
	Reduce    func(params []float64) (*LsqPartial, error)
	Err       error
}

// Dim implements optimize.Objective.
func (o *RemoteObjective) Dim() int {
	if o.Intercept {
		return o.D + 1
	}
	return o.D
}

// Eval implements optimize.Objective via the remote reduction.
func (o *RemoteObjective) Eval(params, grad []float64) float64 {
	if o.Err != nil {
		return math.NaN()
	}
	total, err := o.Reduce(params)
	if err != nil {
		o.Err = err
		return math.NaN()
	}
	return FinishLsq(total, o.N, o.D, o.Lambda, o.Intercept, params, grad)
}

// Train fits the model with blocked L-BFGS scans. ctx cancels the fit
// within one data block.
func Train(ctx context.Context, x *mat.Dense, y []float64, opts Options) (*Model, error) {
	o := opts.withDefaults()
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	obj, err := NewObjective(x, y, o.Lambda, !o.NoIntercept)
	if err != nil {
		return nil, err
	}
	obj.Workers = o.Workers
	obj.Ctx = ctx
	return TrainWith(ctx, obj, x.Cols(), opts)
}

// TrainWith runs the L-BFGS driver over any objective with linreg's
// parameterization — shared by the local and distributed paths so
// both build identical Models.
func TrainWith(ctx context.Context, obj optimize.Objective, d int, opts Options) (*Model, error) {
	o := opts.withDefaults()
	res, err := optimize.LBFGS(ctx, obj, make([]float64, obj.Dim()), optimize.LBFGSParams{
		MaxIterations: o.MaxIterations,
		GradTol:       o.GradTol,
		Callback:      o.Hook("linreg"),
	})
	if err != nil {
		return nil, err
	}
	m := &Model{Weights: res.X[:d]}
	if !o.NoIntercept {
		m.Intercept = res.X[d]
	}
	return m, nil
}

// TrainExact solves the ridge normal equations (XᵀX + λI)w = Xᵀy by
// Cholesky factorization. One data scan builds the Gram matrix; the
// solve is O(d³), so this path suits d up to a few thousand. The
// intercept is handled by augmenting with a constant column
// (unregularized). ctx cancels the Gram scan within one data block.
func TrainExact(ctx context.Context, x *mat.Dense, y []float64, opts Options) (*Model, error) {
	o := opts.withDefaults()
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("linreg: %d rows but %d targets", x.Rows(), len(y))
	}
	d := x.Cols()
	total, _, err := exec.ReduceRows(gramScan(x.ScanCtx(ctx, o.Workers), d, o.NoIntercept, 0),
		func() *GramPartial { return NewGramPartial(d, o.NoIntercept) },
		gramRowKernel(y, d, o.NoIntercept),
		MergeGram)
	if err != nil {
		return nil, err
	}
	return ModelFromGram(total, x.Rows(), d, o.Lambda, o.NoIntercept)
}

// GramPartial is one merge group's (or block's) share of the ridge
// normal equations: a p×p Gram block and the Xᵀy right-hand side —
// the shardable aggregate of the exact path. Fields are exported for
// gob.
type GramPartial struct {
	Gram, RHS []float64
}

// NewGramPartial returns a zero partial for d features (p = d+1 with
// an intercept column).
func NewGramPartial(d int, noIntercept bool) *GramPartial {
	p := d
	if !noIntercept {
		p++
	}
	return &GramPartial{Gram: make([]float64, p*p), RHS: make([]float64, p)}
}

// MergeGram folds src into dst with the exact merge the local scan
// uses.
func MergeGram(dst, src *GramPartial) {
	blas.Axpy(1, src.Gram, dst.Gram)
	blas.Axpy(1, src.RHS, dst.RHS)
}

// gramScan labels and block-sizes a Gram scan: each partial carries a
// p×p block, so blocks hold at least ~p rows and the O(p²) zero+merge
// amortizes to O(p) per row.
func gramScan(scan exec.RowScan, d int, noIntercept bool, groupRows int) exec.RowScan {
	p := d
	if !noIntercept {
		p++
	}
	scan = scan.Named("linreg gram")
	scan.GroupRows = groupRows
	if minBytes := p * p * 8; minBytes > exec.DefaultBlockBytes {
		scan.BlockBytes = minBytes
	}
	return scan
}

// gramRowKernel returns the per-row normal-equation accumulation.
func gramRowKernel(y []float64, d int, noIntercept bool) func(g *GramPartial, i int, row []float64) {
	p := d
	if !noIntercept {
		p++
	}
	return func(g *GramPartial, i int, row []float64) {
		for a := 0; a < d; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			blas.Axpy(va, row, g.Gram[a*p:a*p+d])
			if !noIntercept {
				g.Gram[a*p+d] += va
			}
			g.RHS[a] += va * y[i]
		}
		if !noIntercept {
			blas.Axpy(1, row, g.Gram[d*p:d*p+d])
			g.Gram[d*p+d]++
			g.RHS[d] += y[i]
		}
	}
}

// GramGroups computes the per-merge-group normal-equation partials —
// the worker half of a distributed exact fit. groupRows must be the
// coordinator's global group height.
func GramGroups(ctx context.Context, x *mat.Dense, y []float64, noIntercept bool, workers, groupRows int) ([]exec.GroupPartial[*GramPartial], float64, error) {
	d := x.Cols()
	kern := gramRowKernel(y, d, noIntercept)
	return exec.ReduceRowGroups(gramScan(x.ScanCtx(ctx, workers), d, noIntercept, groupRows),
		func() *GramPartial { return NewGramPartial(d, noIntercept) },
		func(g *GramPartial, lo, hi int, block []float64, stride int) {
			for i := lo; i < hi; i++ {
				kern(g, i, block[(i-lo)*stride:(i-lo)*stride+d])
			}
		},
		MergeGram)
}

// ModelFromGram applies the ridge and solves the folded normal
// equations by Cholesky — the closing arithmetic shared by the local
// and distributed exact paths. n is the global row count (the ridge
// is scaled by it).
func ModelFromGram(total *GramPartial, n, d int, lambda float64, noIntercept bool) (*Model, error) {
	p := d
	if !noIntercept {
		p++
	}
	gram, rhs := total.Gram, total.RHS
	// Ridge on weights only.
	for a := 0; a < d; a++ {
		gram[a*p+a] += lambda * float64(n)
	}
	w, err := choleskySolve(gram, rhs, p)
	if err != nil {
		return nil, err
	}
	m := &Model{Weights: w[:d]}
	if !noIntercept {
		m.Intercept = w[d]
	}
	return m, nil
}

// choleskySolve solves Ax=b for symmetric positive-definite A (n×n,
// row-major), overwriting nothing.
func choleskySolve(a, b []float64, n int) ([]float64, error) {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linreg: gram matrix not positive definite (pivot %d = %g)", i, sum)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward substitution: L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * z[k]
		}
		z[i] = sum / l[i*n+i]
	}
	// Back substitution: Lᵀ x = z.
	xs := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * xs[k]
		}
		xs[i] = sum / l[i*n+i]
	}
	return xs, nil
}
