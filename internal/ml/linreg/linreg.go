// Package linreg implements ridge linear regression over
// (possibly memory-mapped) matrices, trained either by streaming
// L-BFGS — the same iteration structure as the paper's logistic
// regression, so it inherits M3's paging behaviour unchanged — or by
// the closed-form normal equations for low-dimensional problems.
package linreg

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
	"m3/internal/optimize"
)

// Options configures training.
type Options struct {
	// FitOptions carries the shared training surface (workers
	// override, iteration callback, verbosity).
	fit.FitOptions
	// Lambda is the ridge penalty (default 1e-6).
	Lambda float64
	// NoIntercept disables the bias term.
	NoIntercept bool
	// MaxIterations bounds L-BFGS (default 100).
	MaxIterations int
	// GradTol is the L-BFGS gradient tolerance (default 1e-8).
	GradTol float64
}

func (o Options) withDefaults() Options {
	if o.Lambda == 0 {
		o.Lambda = 1e-6
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-8
	}
	return o
}

// Model is a fitted linear regressor.
type Model struct {
	// Weights holds one coefficient per feature.
	Weights []float64
	// Intercept is the bias (0 without intercept).
	Intercept float64
}

// Predict returns w·row + b.
func (m *Model) Predict(row []float64) float64 {
	return blas.Dot(row, m.Weights) + m.Intercept
}

// MSE computes the mean squared error over a matrix.
func (m *Model) MSE(x *mat.Dense, y []float64) float64 {
	if x.Rows() == 0 {
		return 0
	}
	var sse float64
	x.ForEachRow(func(i int, row []float64) {
		d := m.Predict(row) - y[i]
		sse += d * d
	})
	return sse / float64(x.Rows())
}

// R2 computes the coefficient of determination over a matrix.
func (m *Model) R2(x *mat.Dense, y []float64) float64 {
	n := x.Rows()
	if n == 0 {
		return 0
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var ssTot float64
	for _, v := range y {
		d := v - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - m.MSE(x, y)*float64(n)/ssTot
}

// Objective is the ridge least-squares loss, evaluated in blocked
// (optionally parallel) scans on the shared execution layer; it
// implements optimize.Objective.
type Objective struct {
	x         *mat.Dense
	y         []float64
	lambda    float64
	intercept bool
	// Workers sizes the worker pool per scan (<= 0: engine hint, then
	// NumCPU). The result is bit-identical for every value.
	Workers int
	// Ctx, when non-nil, cancels data scans at block granularity.
	Ctx context.Context
	// Scans counts full passes.
	Scans int
}

// NewObjective validates shapes.
func NewObjective(x *mat.Dense, y []float64, lambda float64, intercept bool) (*Objective, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("linreg: %d rows but %d targets", x.Rows(), len(y))
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linreg: negative lambda %v", lambda)
	}
	return &Objective{x: x, y: y, lambda: lambda, intercept: intercept}, nil
}

// Dim returns the parameter count.
func (o *Objective) Dim() int {
	d := o.x.Cols()
	if o.intercept {
		d++
	}
	return d
}

// lsqPartial is one block's share of the least-squares loss.
type lsqPartial struct {
	sse, gb float64
	gw      []float64
}

// Eval computes ½·mean((w·x+b−y)²) + ½λ‖w‖² and its gradient in one
// blocked pass over the data.
func (o *Objective) Eval(params, grad []float64) float64 {
	d := o.x.Cols()
	w := params[:d]
	var b float64
	if o.intercept {
		b = params[d]
	}
	total, _, _ := exec.ReduceRows(o.x.ScanCtx(o.Ctx, o.Workers).Named("linreg grad"),
		func() *lsqPartial { return &lsqPartial{gw: make([]float64, d)} },
		func(p *lsqPartial, i int, row []float64) {
			r := blas.Dot(row, w) + b - o.y[i]
			p.sse += r * r
			blas.Axpy(r, row, p.gw)
			p.gb += r
		},
		func(dst, src *lsqPartial) {
			dst.sse += src.sse
			dst.gb += src.gb
			blas.Axpy(1, src.gw, dst.gw)
		})
	o.Scans++
	blas.Fill(grad, 0)
	gw := grad[:d]
	n := float64(o.x.Rows())
	blas.AddScaled(gw, gw, 1/n, total.gw)
	if o.intercept {
		grad[d] = total.gb / n
	}
	loss := 0.5 * total.sse / n
	loss += 0.5 * o.lambda * blas.Dot(w, w)
	blas.Axpy(o.lambda, w, gw)
	return loss
}

// Train fits the model with blocked L-BFGS scans. ctx cancels the fit
// within one data block.
func Train(ctx context.Context, x *mat.Dense, y []float64, opts Options) (*Model, error) {
	o := opts.withDefaults()
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	obj, err := NewObjective(x, y, o.Lambda, !o.NoIntercept)
	if err != nil {
		return nil, err
	}
	obj.Workers = o.Workers
	obj.Ctx = ctx
	res, err := optimize.LBFGS(ctx, obj, make([]float64, obj.Dim()), optimize.LBFGSParams{
		MaxIterations: o.MaxIterations,
		GradTol:       o.GradTol,
		Callback:      o.Hook("linreg"),
	})
	if err != nil {
		return nil, err
	}
	m := &Model{Weights: res.X[:x.Cols()]}
	if !o.NoIntercept {
		m.Intercept = res.X[x.Cols()]
	}
	return m, nil
}

// TrainExact solves the ridge normal equations (XᵀX + λI)w = Xᵀy by
// Cholesky factorization. One data scan builds the Gram matrix; the
// solve is O(d³), so this path suits d up to a few thousand. The
// intercept is handled by augmenting with a constant column
// (unregularized). ctx cancels the Gram scan within one data block.
func TrainExact(ctx context.Context, x *mat.Dense, y []float64, opts Options) (*Model, error) {
	o := opts.withDefaults()
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("linreg: %d rows but %d targets", x.Rows(), len(y))
	}
	d := x.Cols()
	p := d
	if !o.NoIntercept {
		p++
	}
	// Each partial carries a p×p gram block; size blocks to hold at
	// least ~p rows so the O(p²) zero+merge amortizes to O(p) per row.
	gramScan := x.ScanCtx(ctx, o.Workers).Named("linreg gram")
	if minBytes := p * p * 8; minBytes > exec.DefaultBlockBytes {
		gramScan.BlockBytes = minBytes
	}
	total, _, err := exec.ReduceRows(gramScan,
		func() *gramPartial {
			return &gramPartial{gram: make([]float64, p*p), rhs: make([]float64, p)}
		},
		func(g *gramPartial, i int, row []float64) {
			for a := 0; a < d; a++ {
				va := row[a]
				if va == 0 {
					continue
				}
				blas.Axpy(va, row, g.gram[a*p:a*p+d])
				if !o.NoIntercept {
					g.gram[a*p+d] += va
				}
				g.rhs[a] += va * y[i]
			}
			if !o.NoIntercept {
				blas.Axpy(1, row, g.gram[d*p:d*p+d])
				g.gram[d*p+d]++
				g.rhs[d] += y[i]
			}
		},
		func(dst, src *gramPartial) {
			blas.Axpy(1, src.gram, dst.gram)
			blas.Axpy(1, src.rhs, dst.rhs)
		})
	if err != nil {
		return nil, err
	}
	gram, rhs := total.gram, total.rhs
	// Ridge on weights only.
	for a := 0; a < d; a++ {
		gram[a*p+a] += o.Lambda * float64(x.Rows())
	}
	w, err := choleskySolve(gram, rhs, p)
	if err != nil {
		return nil, err
	}
	m := &Model{Weights: w[:d]}
	if !o.NoIntercept {
		m.Intercept = w[d]
	}
	return m, nil
}

// gramPartial is one block's share of the normal equations.
type gramPartial struct {
	gram, rhs []float64
}

// choleskySolve solves Ax=b for symmetric positive-definite A (n×n,
// row-major), overwriting nothing.
func choleskySolve(a, b []float64, n int) ([]float64, error) {
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i*n+j]
			for k := 0; k < j; k++ {
				sum -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linreg: gram matrix not positive definite (pivot %d = %g)", i, sum)
				}
				l[i*n+i] = math.Sqrt(sum)
			} else {
				l[i*n+j] = sum / l[j*n+j]
			}
		}
	}
	// Forward substitution: L z = b.
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i*n+k] * z[k]
		}
		z[i] = sum / l[i*n+i]
	}
	// Back substitution: Lᵀ x = z.
	xs := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k*n+i] * xs[k]
		}
		xs[i] = sum / l[i*n+i]
	}
	return xs, nil
}
