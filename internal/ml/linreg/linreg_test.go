package linreg

import (
	"context"
	"math"
	"testing"

	"m3/internal/mat"
	"m3/internal/store"
	"m3/internal/vm"
)

// planarData builds y = 3x₀ - 2x₁ + 5 with small deterministic noise.
func planarData(n int, noise float64) (*mat.Dense, []float64) {
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	r := uint64(31337)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		a, b := next()*5, next()*5
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = 3*a - 2*b + 5 + noise*next()
	}
	return x, y
}

func TestTrainRecoversPlane(t *testing.T) {
	x, y := planarData(300, 0)
	m, err := Train(context.Background(), x, y, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 1e-3 || math.Abs(m.Weights[1]+2) > 1e-3 {
		t.Errorf("weights = %v want [3 -2]", m.Weights)
	}
	if math.Abs(m.Intercept-5) > 1e-3 {
		t.Errorf("intercept = %v want 5", m.Intercept)
	}
	if r2 := m.R2(x, y); r2 < 0.9999 {
		t.Errorf("R² = %v", r2)
	}
}

func TestTrainExactMatchesLBFGS(t *testing.T) {
	x, y := planarData(200, 0.1)
	lb, err := Train(context.Background(), x, y, Options{Lambda: 1e-6, GradTol: 1e-12, MaxIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := TrainExact(context.Background(), x, y, Options{Lambda: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lb.Weights {
		if math.Abs(lb.Weights[i]-ex.Weights[i]) > 1e-5 {
			t.Errorf("weight %d: lbfgs %v vs exact %v", i, lb.Weights[i], ex.Weights[i])
		}
	}
	if math.Abs(lb.Intercept-ex.Intercept) > 1e-5 {
		t.Errorf("intercept: lbfgs %v vs exact %v", lb.Intercept, ex.Intercept)
	}
}

func TestTrainExactNoIntercept(t *testing.T) {
	// y = 2x exactly through the origin.
	x := mat.NewDense(50, 1)
	y := make([]float64, 50)
	for i := 0; i < 50; i++ {
		x.Set(i, 0, float64(i))
		y[i] = 2 * float64(i)
	}
	m, err := TrainExact(context.Background(), x, y, Options{NoIntercept: true, Lambda: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-2) > 1e-6 {
		t.Errorf("weight = %v want 2", m.Weights[0])
	}
	if m.Intercept != 0 {
		t.Errorf("intercept = %v", m.Intercept)
	}
}

func TestValidation(t *testing.T) {
	x := mat.NewDense(3, 2)
	if _, err := NewObjective(x, []float64{1, 2}, 0, true); err == nil {
		t.Error("accepted target mismatch")
	}
	if _, err := NewObjective(x, []float64{1, 2, 3}, -1, true); err == nil {
		t.Error("accepted negative lambda")
	}
	if _, err := TrainExact(context.Background(), x, []float64{1}, Options{}); err == nil {
		t.Error("TrainExact accepted mismatch")
	}
}

func TestObjectiveGradientNumeric(t *testing.T) {
	x, y := planarData(30, 0.3)
	obj, err := NewObjective(x, y, 0.05, true)
	if err != nil {
		t.Fatal(err)
	}
	params := []float64{0.5, -1, 2}
	g := make([]float64, 3)
	obj.Eval(params, g)
	const h = 1e-6
	scratch := make([]float64, 3)
	for i := 0; i < 3; i++ {
		orig := params[i]
		params[i] = orig + h
		fp := obj.Eval(params, scratch)
		params[i] = orig - h
		fm := obj.Eval(params, scratch)
		params[i] = orig
		want := (fp - fm) / (2 * h)
		if math.Abs(g[i]-want) > 1e-4*math.Max(1, math.Abs(want)) {
			t.Errorf("grad[%d] = %v numeric %v", i, g[i], want)
		}
	}
}

func TestRidgeShrinksWeights(t *testing.T) {
	x, y := planarData(100, 0.5)
	small, err := TrainExact(context.Background(), x, y, Options{Lambda: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	big, err := TrainExact(context.Background(), x, y, Options{Lambda: 10})
	if err != nil {
		t.Fatal(err)
	}
	normSmall := math.Hypot(small.Weights[0], small.Weights[1])
	normBig := math.Hypot(big.Weights[0], big.Weights[1])
	if normBig >= normSmall {
		t.Errorf("ridge did not shrink: λ=1e-9 → %v, λ=10 → %v", normSmall, normBig)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	// A = [[1,2],[2,1]] has a negative eigenvalue.
	if _, err := choleskySolve([]float64{1, 2, 2, 1}, []float64{1, 1}, 2); err == nil {
		t.Error("accepted indefinite matrix")
	}
}

func TestMSEAndR2Degenerate(t *testing.T) {
	m := &Model{Weights: []float64{1}}
	x := mat.NewDense(1, 1)
	empty := x.RowWindow(0, 1)
	if got := m.MSE(empty, []float64{0}); got != 1e99 && got >= 0 {
		// just checking it's finite and non-panicking
		_ = got
	}
	// Constant targets: R² defined as 1 when perfectly predicted.
	x2 := mat.NewDense(3, 1)
	y2 := []float64{0, 0, 0}
	m2 := &Model{Weights: []float64{0}}
	if got := m2.R2(x2, y2); got != 1 {
		t.Errorf("R² on constant exact fit = %v want 1", got)
	}
}

func TestTrainOverPagedStore(t *testing.T) {
	// Transparency: linreg over a paged store matches heap exactly.
	xh, y := planarData(64, 0.2)
	data := make([]float64, 128)
	for i := 0; i < 64; i++ {
		data[2*i] = xh.At(i, 0)
		data[2*i+1] = xh.At(i, 1)
	}
	ps, err := store.NewPaged(data, store.PagedConfig{VM: vm.Config{
		PageSize: 256, CacheBytes: 512,
		Disk: vm.DiskModel{BandwidthBytes: 1e6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	xp, err := mat.NewDenseStore(ps, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := Train(context.Background(), xh, y, Options{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Train(context.Background(), xp, y, Options{MaxIterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mh.Weights {
		if mh.Weights[i] != mp.Weights[i] {
			t.Errorf("weight %d differs across backends", i)
		}
	}
	if ps.Stats().MajorFaults == 0 {
		t.Error("paged store never faulted")
	}
}
