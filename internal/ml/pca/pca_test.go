package pca

import (
	"context"
	"math"
	"testing"

	"m3/internal/blas"
	"m3/internal/infimnist"
	"m3/internal/mat"
)

// anisotropic builds points stretched 10:1 along (1,1)/√2.
func anisotropic(n int) *mat.Dense {
	x := mat.NewDense(n, 2)
	r := uint64(55)
	next := func() float64 {
		r ^= r << 13
		r ^= r >> 7
		r ^= r << 17
		return float64(r%2000)/1000 - 1
	}
	for i := 0; i < n; i++ {
		long := 10 * next()
		short := next()
		x.Set(i, 0, (long+short)/math.Sqrt2+3) // offset mean
		x.Set(i, 1, (long-short)/math.Sqrt2-1)
	}
	return x
}

func TestFitFindsDominantDirection(t *testing.T) {
	x := anisotropic(500)
	res, err := Fit(context.Background(), x, Options{Components: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// First component aligns with (1,1)/√2 (sign-free).
	c0 := res.Components.RawRow(0)
	if got := math.Abs(c0[0]*c0[1]*2 - 1); got > 0.02 {
		t.Errorf("component 0 = %v, want ±(0.707,0.707)", c0)
	}
	// Eigenvalues descending and dominant.
	if !(res.Eigenvalues[0] > res.Eigenvalues[1]) {
		t.Errorf("eigenvalues not descending: %v", res.Eigenvalues)
	}
	if ratio := res.Eigenvalues[0] / res.Eigenvalues[1]; ratio < 20 {
		t.Errorf("anisotropy ratio = %v, want ≈100", ratio)
	}
	// Explained ratios sum to ~1 with 2 of 2 components.
	er := res.ExplainedRatio()
	if math.Abs(er[0]+er[1]-1) > 1e-6 {
		t.Errorf("explained ratios sum to %v", er[0]+er[1])
	}
	// Mean recovered.
	if math.Abs(res.Mean[0]-3) > 0.5 || math.Abs(res.Mean[1]+1) > 0.5 {
		t.Errorf("mean = %v", res.Mean)
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	g := infimnist.Generator{Seed: 2}
	xs, _ := g.Matrix(0, 150)
	x := mat.NewDenseFrom(xs, 150, infimnist.Features)
	res, err := Fit(context.Background(), x, Options{Components: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 5; a++ {
		ra := res.Components.RawRow(a)
		if n := blas.Nrm2(ra); math.Abs(n-1) > 1e-6 {
			t.Errorf("component %d norm = %v", a, n)
		}
		for b := a + 1; b < 5; b++ {
			if dot := blas.Dot(ra, res.Components.RawRow(b)); math.Abs(dot) > 1e-6 {
				t.Errorf("components %d,%d not orthogonal: %v", a, b, dot)
			}
		}
	}
	// Eigenvalues descending.
	for i := 1; i < 5; i++ {
		if res.Eigenvalues[i] > res.Eigenvalues[i-1]+1e-9 {
			t.Errorf("eigenvalues out of order: %v", res.Eigenvalues)
		}
	}
}

func TestTransformReconstructRoundTrip(t *testing.T) {
	x := anisotropic(300)
	res, err := Fit(context.Background(), x, Options{Components: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Full-rank decomposition reconstructs exactly.
	row, _ := x.Row(7)
	coords := make([]float64, 2)
	back := make([]float64, 2)
	res.Transform(row, coords)
	res.Reconstruct(coords, back)
	for j := range row {
		if math.Abs(back[j]-row[j]) > 1e-6 {
			t.Errorf("reconstruction[%d] = %v want %v", j, back[j], row[j])
		}
	}
}

func TestCompressionQualityOnDigits(t *testing.T) {
	// 20 components of 784 should capture most digit variance.
	g := infimnist.Generator{Seed: 7}
	xs, _ := g.Matrix(0, 200)
	x := mat.NewDenseFrom(xs, 200, infimnist.Features)
	res, err := Fit(context.Background(), x, Options{Components: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var captured float64
	for _, r := range res.ExplainedRatio() {
		captured += r
	}
	if captured < 0.5 {
		t.Errorf("20/784 components capture only %.2f of variance", captured)
	}
	if captured > 1+1e-9 {
		t.Errorf("captured ratio %v exceeds 1", captured)
	}
}

func TestFitValidation(t *testing.T) {
	x := anisotropic(10)
	if _, err := Fit(context.Background(), x, Options{Components: 0}); err == nil {
		t.Error("accepted 0 components")
	}
	if _, err := Fit(context.Background(), x, Options{Components: 3}); err == nil {
		t.Error("accepted components > features")
	}
	one := mat.NewDense(1, 2)
	if _, err := Fit(context.Background(), one, Options{Components: 1}); err == nil {
		t.Error("accepted single row")
	}
}

func TestTransformPanicsOnShape(t *testing.T) {
	x := anisotropic(50)
	res, err := Fit(context.Background(), x, Options{Components: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	res.Transform([]float64{1}, make([]float64, 1))
}

func TestDeterministicInSeed(t *testing.T) {
	x := anisotropic(100)
	a, err := Fit(context.Background(), x, Options{Components: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(context.Background(), x, Options{Components: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		ra, rb := a.Components.RawRow(c), b.Components.RawRow(c)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("component %d differs across identical runs", c)
			}
		}
	}
}
