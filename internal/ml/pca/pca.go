// Package pca implements principal component analysis over
// (possibly memory-mapped) matrices: one streaming pass accumulates
// the covariance, then orthogonal power iteration with deflation
// extracts the leading components. Data is scanned exactly once
// regardless of the component count, so PCA joins naive Bayes at the
// cheap end of the scan-count spectrum M3 cares about.
package pca

import (
	"context"
	"fmt"
	"math"

	"m3/internal/blas"
	"m3/internal/exec"
	"m3/internal/fit"
	"m3/internal/mat"
)

// Options configures the decomposition.
type Options struct {
	// FitOptions carries the shared training surface; Workers sizes
	// the mean and covariance scans' pool (<= 0: engine hint, then
	// NumCPU). The decomposition is identical for every value.
	fit.FitOptions
	// Components is the number of principal components (required).
	Components int
	// MaxIterations bounds power iterations per component
	// (default 1000).
	MaxIterations int
	// Tol is the eigenvector convergence tolerance (default 1e-10).
	Tol float64
	// Seed drives the deterministic start vectors.
	Seed uint64
}

func (o Options) withDefaults() (Options, error) {
	if o.Components < 1 {
		return o, fmt.Errorf("pca: components = %d, want >= 1", o.Components)
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	return o, nil
}

// Result is a fitted decomposition.
type Result struct {
	// Components is row-major K×D: each row a unit-norm principal
	// direction.
	Components *mat.Dense
	// Eigenvalues are the corresponding covariance eigenvalues
	// (variance along each component), descending.
	Eigenvalues []float64
	// Mean is the feature mean subtracted before projection.
	Mean []float64
	// TotalVariance is the trace of the covariance.
	TotalVariance float64
}

// ExplainedRatio returns the fraction of total variance captured by
// each component.
func (r *Result) ExplainedRatio() []float64 {
	out := make([]float64, len(r.Eigenvalues))
	if r.TotalVariance == 0 {
		return out
	}
	for i, v := range r.Eigenvalues {
		out[i] = v / r.TotalVariance
	}
	return out
}

// Transform projects row onto the components, writing K coordinates
// into dst.
func (r *Result) Transform(row []float64, dst []float64) {
	r.TransformInto(row, dst, make([]float64, r.Components.Cols()))
}

// TransformInto is Transform with caller-provided centering scratch
// (length D), so hot loops — the blocked transform pass, batch
// prediction — project rows without a per-row allocation.
func (r *Result) TransformInto(row, dst, centered []float64) {
	k, d := r.Components.Dims()
	if len(row) != d || len(dst) != k || len(centered) != d {
		panic(fmt.Sprintf("pca: shapes row=%d dst=%d scratch=%d model=(%d,%d)", len(row), len(dst), len(centered), k, d))
	}
	blas.AddScaled(centered, row, -1, r.Mean)
	for c := 0; c < k; c++ {
		dst[c] = blas.Dot(centered, r.Components.RawRow(c))
	}
}

// Reconstruct maps K projected coordinates back to feature space.
func (r *Result) Reconstruct(coords []float64, dst []float64) {
	k, d := r.Components.Dims()
	if len(coords) != k || len(dst) != d {
		panic(fmt.Sprintf("pca: shapes coords=%d dst=%d model=(%d,%d)", len(coords), len(dst), k, d))
	}
	copy(dst, r.Mean)
	for c := 0; c < k; c++ {
		blas.Axpy(coords[c], r.Components.RawRow(c), dst)
	}
}

// Fit computes the decomposition. The data matrix is scanned exactly
// twice (mean pass + covariance pass); all further work is on the
// D×D covariance. ctx cancels either scan within one data block and
// the power iteration between components.
func Fit(ctx context.Context, x *mat.Dense, opts Options) (*Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := fit.Canceled(ctx); err != nil {
		return nil, err
	}
	n, d := x.Dims()
	if o.Components > d {
		return nil, fmt.Errorf("pca: %d components exceed %d features", o.Components, d)
	}
	if n < 2 {
		return nil, fmt.Errorf("pca: need >= 2 rows, got %d", n)
	}

	// Pass 1: mean — blocked column sums (blas.SumRows per block) on
	// the shared execution layer, merged in block order.
	mean, _, err := exec.ReduceRowBlocks(x.ScanCtx(ctx, o.Workers).Named("pca mean"),
		func() []float64 { return make([]float64, d) },
		meanBlockKernel(d),
		MergeSum)
	if err != nil {
		return nil, err
	}
	blas.Scal(1/float64(n), mean)

	// Pass 2: covariance — per-block symmetric rank-1 accumulation
	// (blas.Syr on the upper triangle), partial triangles merged in
	// block order, then mirrored.
	covst, _, err := exec.ReduceRowBlocks(covScan(x.ScanCtx(ctx, o.Workers), d, 0),
		func() *CovPartial { return NewCovPartial(d) },
		covBlockKernel(mean, d),
		MergeCov)
	if err != nil {
		return nil, err
	}
	return FinishFromCov(ctx, covst.Part, mean, n, o)
}

// meanBlockKernel returns the per-block column-sum accumulation.
func meanBlockKernel(d int) func(sum []float64, lo, hi int, block []float64, stride int) {
	return func(sum []float64, lo, hi int, block []float64, stride int) {
		blas.SumRows(hi-lo, d, block, stride, sum)
	}
}

// MergeSum folds a column-sum partial into dst — the mean pass's
// merge, exported for distributed refolds.
func MergeSum(dst, src []float64) { blas.Axpy(1, src, dst) }

// MeanGroups computes per-merge-group column-sum partials — the
// worker half of a distributed mean pass. groupRows must be the
// coordinator's global group height. Divide the refolded total by the
// global row count to obtain the mean.
func MeanGroups(ctx context.Context, x *mat.Dense, workers, groupRows int) ([]exec.GroupPartial[[]float64], float64, error) {
	d := x.Cols()
	scan := x.ScanCtx(ctx, workers).Named("pca mean")
	scan.GroupRows = groupRows
	return exec.ReduceRowGroups(scan,
		func() []float64 { return make([]float64, d) },
		meanBlockKernel(d),
		MergeSum)
}

// CovPartial is one merge group's (or block's) share of the centered
// scatter matrix (upper triangle). The centering buffer is per-state
// scratch and unexported, so gob ships only the aggregate.
type CovPartial struct {
	Part     []float64
	centered []float64
}

// NewCovPartial returns a zero partial for d features.
func NewCovPartial(d int) *CovPartial {
	return &CovPartial{Part: make([]float64, d*d), centered: make([]float64, d)}
}

// MergeCov folds src into dst with the local scan's exact merge.
func MergeCov(dst, src *CovPartial) { blas.Axpy(1, src.Part, dst.Part) }

// covScan labels and block-sizes a covariance scan: each partial is a
// d×d matrix, so blocks are sized to hold at least ~d rows and the
// O(d²) zero+merge amortizes to O(d) per row.
func covScan(scan exec.RowScan, d, groupRows int) exec.RowScan {
	scan = scan.Named("pca cov")
	scan.GroupRows = groupRows
	if minBytes := d * d * 8; minBytes > exec.DefaultBlockBytes {
		scan.BlockBytes = minBytes
	}
	return scan
}

// covBlockKernel returns the per-block scatter accumulation at the
// given mean. The centering buffer lives in the reduce state, not the
// block closure: fused scans deliver single-row blocks, so a per-call
// allocation here would be a per-row allocation.
func covBlockKernel(mean []float64, d int) func(st *CovPartial, lo, hi int, block []float64, stride int) {
	return func(st *CovPartial, lo, hi int, block []float64, stride int) {
		for i := lo; i < hi; i++ {
			row := block[(i-lo)*stride : (i-lo)*stride+d]
			blas.AddScaled(st.centered, row, -1, mean)
			blas.Syr(d, 1, st.centered, st.Part, d)
		}
	}
}

// CovGroups computes per-merge-group scatter partials at the given
// mean — the worker half of a distributed covariance pass. groupRows
// must be the coordinator's global group height.
func CovGroups(ctx context.Context, x *mat.Dense, mean []float64, workers, groupRows int) ([]exec.GroupPartial[*CovPartial], float64, error) {
	d := x.Cols()
	return exec.ReduceRowGroups(covScan(x.ScanCtx(ctx, workers), d, groupRows),
		func() *CovPartial { return NewCovPartial(d) },
		covBlockKernel(mean, d),
		MergeCov)
}

// FinishFromCov normalizes the folded scatter into the covariance and
// runs the orthogonal power iteration — everything after the data
// passes, shared by the local and distributed paths. cov is consumed
// (normalized in place); opts must already carry defaults.
func FinishFromCov(ctx context.Context, cov, mean []float64, n int, o Options) (*Result, error) {
	d := len(mean)
	inv := 1 / float64(n-1)
	var total float64
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov[a*d+b] * inv
			cov[a*d+b] = v
			cov[b*d+a] = v
		}
		total += cov[a*d+a]
	}

	res := &Result{
		Components:    mat.NewDense(o.Components, d),
		Eigenvalues:   make([]float64, o.Components),
		Mean:          mean,
		TotalVariance: total,
	}

	// Orthogonal power iteration with deflation.
	rng := o.Seed ^ 0x9e3779b97f4a7c15
	if rng == 0 {
		rng = 1
	}
	next := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return float64(rng%2000)/1000 - 1
	}
	v := make([]float64, d)
	av := make([]float64, d)
	for c := 0; c < o.Components; c++ {
		if err := fit.Canceled(ctx); err != nil {
			return nil, err
		}
		for i := range v {
			v[i] = next()
		}
		orthogonalize(v, res.Components, c)
		if nrm := blas.Nrm2(v); nrm > 0 {
			blas.Scal(1/nrm, v)
		}
		var lambda float64
		for iter := 0; iter < o.MaxIterations; iter++ {
			// Power iteration is the long pole for wide inputs
			// (MaxIterations × O(d²) per component), so cancellation
			// must be polled here, not just once per component.
			if err := fit.Canceled(ctx); err != nil {
				return nil, err
			}
			blas.Gemv(d, d, 1, cov, d, v, 0, av)
			orthogonalize(av, res.Components, c)
			nrm := blas.Nrm2(av)
			if nrm == 0 {
				break // remaining spectrum is zero
			}
			blas.Scal(1/nrm, av)
			lambda = nrm
			// Convergence: direction change.
			diff := 0.0
			for i := range v {
				dd := math.Abs(av[i]) - math.Abs(v[i])
				diff += dd * dd
			}
			copy(v, av)
			if diff < o.Tol*o.Tol {
				break
			}
		}
		res.Components.SetRow(c, v)
		res.Eigenvalues[c] = lambda
	}
	return res, nil
}

// ResolveOptions applies the defaults Fit would — exported so the
// distributed path validates and defaults identically.
func ResolveOptions(opts Options) (Options, error) { return opts.withDefaults() }

// orthogonalize removes the projections of v onto the first k rows of
// basis (Gram–Schmidt step).
func orthogonalize(v []float64, basis *mat.Dense, k int) {
	for c := 0; c < k; c++ {
		row := basis.RawRow(c)
		blas.Axpy(-blas.Dot(v, row), row, v)
	}
}
