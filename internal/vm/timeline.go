package vm

// Timeline accounts the two resources that determine M3's runtime:
// CPU seconds spent computing and disk seconds spent paging. The
// kernel's read-ahead overlaps the two, so elapsed time is modelled
// as max(cpu, disk) within a measured phase — the behaviour the paper
// observes directly ("disk I/O was 100% utilized while CPU was only
// utilized at around 13%": elapsed ≈ disk, CPU/elapsed ≈ 0.13).
//
// A Timeline is the simulated counterpart of wall-clock measurement:
// compute layers add CPU seconds, the paged store adds disk seconds,
// and Elapsed/Utilization read out the result.
type Timeline struct {
	cpu  float64
	disk float64
}

// AddCPU accounts t simulated seconds of computation.
func (tl *Timeline) AddCPU(t float64) {
	if t > 0 {
		tl.cpu += t
	}
}

// AddDisk accounts t simulated seconds of device busy time.
func (tl *Timeline) AddDisk(t float64) {
	if t > 0 {
		tl.disk += t
	}
}

// CPUSeconds returns accumulated compute time.
func (tl *Timeline) CPUSeconds() float64 { return tl.cpu }

// DiskSeconds returns accumulated device busy time.
func (tl *Timeline) DiskSeconds() float64 { return tl.disk }

// Elapsed returns the modelled wall-clock duration of the phase:
// CPU and disk activity fully overlap, so the slower resource sets
// the pace.
func (tl *Timeline) Elapsed() float64 {
	if tl.cpu > tl.disk {
		return tl.cpu
	}
	return tl.disk
}

// Utilization returns (cpuUtil, diskUtil) as fractions of elapsed
// time. Both are zero for an empty timeline.
func (tl *Timeline) Utilization() (cpuUtil, diskUtil float64) {
	e := tl.Elapsed()
	if e == 0 {
		return 0, 0
	}
	return tl.cpu / e, tl.disk / e
}

// Reset zeroes the timeline.
func (tl *Timeline) Reset() { tl.cpu, tl.disk = 0, 0 }

// Add merges another timeline's totals (sequential composition).
func (tl *Timeline) Add(other Timeline) {
	tl.cpu += other.cpu
	tl.disk += other.disk
}
