package vm

// Timeline accounts the two resources that determine M3's runtime:
// CPU seconds spent computing and disk seconds spent paging. The
// kernel's read-ahead overlaps the two, so elapsed time is modelled
// as max(cpu, disk) within a measured phase — the behaviour the paper
// observes directly ("disk I/O was 100% utilized while CPU was only
// utilized at around 13%": elapsed ≈ disk, CPU/elapsed ≈ 0.13).
//
// Compute is accounted on worker tracks that model cores running in
// parallel: AddCPU adds to the serial track 0, AddWorkerCPU(w, t) to
// track w. Within a phase all tracks and the disk overlap, so elapsed
// is max(slowest worker track, disk busy) — the multi-core extension
// of the single-core max(cpu, disk) model, which the single-track
// case reduces to exactly.
//
// A Timeline is the simulated counterpart of wall-clock measurement:
// compute layers add CPU seconds, the paged store adds disk seconds,
// and Elapsed/Utilization read out the result. It is not safe for
// concurrent use; parallel scanners accumulate per-worker totals and
// stamp them when the phase ends.
type Timeline struct {
	tracks []float64 // per-worker CPU seconds; track 0 is the serial track
	disk   float64
}

// AddCPU accounts t simulated seconds of computation on the serial
// track (track 0).
func (tl *Timeline) AddCPU(t float64) {
	if t > 0 {
		tl.AddWorkerCPU(0, t)
	}
}

// AddWorkerCPU accounts t simulated seconds of computation on worker
// track w (negative w is treated as 0; non-positive t adds nothing).
// Registering a track widens the timeline even at t = 0, which keeps
// Utilization's per-core denominator honest when a worker ends a
// phase having done no work.
func (tl *Timeline) AddWorkerCPU(w int, t float64) {
	if w < 0 {
		w = 0
	}
	for len(tl.tracks) <= w {
		tl.tracks = append(tl.tracks, 0)
	}
	if t > 0 {
		tl.tracks[w] += t
	}
}

// AddDisk accounts t simulated seconds of device busy time.
func (tl *Timeline) AddDisk(t float64) {
	if t > 0 {
		tl.disk += t
	}
}

// CPUSeconds returns accumulated compute time summed over all worker
// tracks — total CPU work, not elapsed time.
func (tl *Timeline) CPUSeconds() float64 {
	var sum float64
	for _, t := range tl.tracks {
		sum += t
	}
	return sum
}

// Tracks returns the number of worker tracks the timeline has seen
// (at least 1: an empty timeline still models one core).
func (tl *Timeline) Tracks() int {
	if len(tl.tracks) < 2 {
		return 1
	}
	return len(tl.tracks)
}

// DiskSeconds returns accumulated device busy time.
func (tl *Timeline) DiskSeconds() float64 { return tl.disk }

// Elapsed returns the modelled wall-clock duration of the phase: all
// worker tracks and the disk overlap fully, so the slowest single
// resource — the most loaded core, or the device — sets the pace.
func (tl *Timeline) Elapsed() float64 {
	e := tl.disk
	for _, t := range tl.tracks {
		if t > e {
			e = t
		}
	}
	return e
}

// Utilization returns (cpuUtil, diskUtil) as fractions of elapsed
// time. cpuUtil is averaged over the worker tracks — the fraction of
// the modelled cores kept busy, matching how the paper reports "CPU
// utilized at around 13%" of an 8-thread machine. Both are zero for
// an empty timeline.
func (tl *Timeline) Utilization() (cpuUtil, diskUtil float64) {
	e := tl.Elapsed()
	if e == 0 {
		return 0, 0
	}
	return tl.CPUSeconds() / (e * float64(tl.Tracks())), tl.disk / e
}

// Reset zeroes the timeline.
func (tl *Timeline) Reset() { tl.tracks, tl.disk = nil, 0 }

// Add merges another timeline's totals (sequential composition):
// worker tracks merge index-wise, disk time accumulates.
func (tl *Timeline) Add(other Timeline) {
	for w, t := range other.tracks {
		tl.AddWorkerCPU(w, t)
	}
	tl.disk += other.disk
}
