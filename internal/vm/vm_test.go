package vm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiskModelReadTime(t *testing.T) {
	d := DiskModel{BandwidthBytes: 1000, SeekSeconds: 0.5, RequestSeconds: 0.1}
	if got := d.ReadTime(1000, true); math.Abs(got-1.1) > 1e-12 {
		t.Errorf("contiguous read = %v want 1.1", got)
	}
	if got := d.ReadTime(1000, false); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("seeking read = %v want 1.6", got)
	}
	if got := d.ReadTime(0, false); got != 0 {
		t.Errorf("zero read = %v want 0", got)
	}
}

func TestDiskModelValidate(t *testing.T) {
	if err := (DiskModel{BandwidthBytes: 0}).Validate(); err == nil {
		t.Error("expected error for zero bandwidth")
	}
	if err := (DiskModel{BandwidthBytes: 1, SeekSeconds: -1}).Validate(); err == nil {
		t.Error("expected error for negative seek")
	}
	if err := SSD().Validate(); err != nil {
		t.Errorf("SSD invalid: %v", err)
	}
	if err := HDD().Validate(); err != nil {
		t.Errorf("HDD invalid: %v", err)
	}
}

func TestRAID0(t *testing.T) {
	base := SSD()
	r := RAID0(base, 4)
	if r.BandwidthBytes != 4*base.BandwidthBytes {
		t.Errorf("RAID0 bandwidth = %v want %v", r.BandwidthBytes, 4*base.BandwidthBytes)
	}
	if r2 := RAID0(base, 0); r2.BandwidthBytes != base.BandwidthBytes {
		t.Errorf("RAID0(0) should clamp to 1")
	}
}

func TestLRUBasics(t *testing.T) {
	c := newLRU(2)
	if c.Touch(1) {
		t.Error("empty cache reported hit")
	}
	c.Insert(1)
	c.Insert(2)
	if !c.Touch(1) || !c.Touch(2) {
		t.Error("inserted pages not resident")
	}
	// 1 is LRU after Touch order 1,2 → touching 1 makes 2 LRU.
	c.Touch(1)
	victim, evicted, _ := c.Insert(3)
	if !evicted || victim != 2 {
		t.Errorf("evicted %v (%v) want 2", victim, evicted)
	}
	if c.Contains(2) {
		t.Error("evicted page still resident")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d want 2", c.Len())
	}
}

func TestLRUDirtyEviction(t *testing.T) {
	c := newLRU(1)
	c.Insert(1)
	if !c.MarkDirty(1) {
		t.Fatal("MarkDirty missed resident page")
	}
	_, evicted, dirty := c.Insert(2)
	if !evicted || !dirty {
		t.Errorf("evicted=%v dirty=%v, want both true", evicted, dirty)
	}
	if c.MarkDirty(99) {
		t.Error("MarkDirty hit absent page")
	}
}

func TestLRURemove(t *testing.T) {
	c := newLRU(4)
	c.Insert(1)
	c.MarkDirty(1)
	present, dirty := c.Remove(1)
	if !present || !dirty {
		t.Errorf("Remove = (%v,%v) want (true,true)", present, dirty)
	}
	if present, _ := c.Remove(1); present {
		t.Error("second Remove reported present")
	}
}

func TestLRUReinsertIsNoEvict(t *testing.T) {
	c := newLRU(1)
	c.Insert(5)
	if _, evicted, _ := c.Insert(5); evicted {
		t.Error("re-insert of resident page evicted something")
	}
}

func newTestMemory(t *testing.T, size int64, cachePages int64) *Memory {
	t.Helper()
	m, err := NewMemory(size, Config{
		PageSize:          4096,
		CacheBytes:        cachePages * 4096,
		Disk:              DiskModel{BandwidthBytes: 4096, SeekSeconds: 0, RequestSeconds: 0},
		MinReadAheadPages: 1,
		MaxReadAheadPages: 1, // disable read-ahead for precise counting
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemoryFitsInCacheNoRefaults(t *testing.T) {
	// 8 pages of data, 16-page cache: second scan must be all hits.
	m := newTestMemory(t, 8*4096, 16)
	m.Touch(0, 8*4096)
	s1 := m.Stats()
	if s1.MajorFaults != 8 {
		t.Fatalf("first scan major faults = %d want 8", s1.MajorFaults)
	}
	m.Touch(0, 8*4096)
	s2 := m.Stats()
	if s2.MajorFaults != 8 {
		t.Errorf("second scan caused %d extra major faults", s2.MajorFaults-8)
	}
	if s2.MinorFaults != 8 {
		t.Errorf("second scan minor faults = %d want 8", s2.MinorFaults)
	}
	if got := s2.HitRatio(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("hit ratio = %v want 0.5", got)
	}
}

func TestMemoryThrashingWhenLargerThanCache(t *testing.T) {
	// 8 pages of data, 4-page cache, repeated sequential scans:
	// LRU evicts exactly the pages about to be needed, so every
	// access is a major fault — the canonical sequential-scan
	// worst case that makes out-of-core runtime linear in data size.
	m := newTestMemory(t, 8*4096, 4)
	for scan := 0; scan < 3; scan++ {
		m.Touch(0, 8*4096)
	}
	s := m.Stats()
	if s.MajorFaults != 24 {
		t.Errorf("major faults = %d want 24 (every touch misses)", s.MajorFaults)
	}
	if s.MinorFaults != 0 {
		t.Errorf("minor faults = %d want 0", s.MinorFaults)
	}
	if s.PagesEvicted == 0 {
		t.Error("expected evictions")
	}
}

func TestMemoryDiskTimeProportionalToBytes(t *testing.T) {
	m := newTestMemory(t, 100*4096, 10)
	m.Touch(0, 100*4096)
	s := m.Stats()
	// Bandwidth = 1 page/sec, 100 pages read → 100 sec.
	if math.Abs(s.DiskSeconds-100) > 1e-9 {
		t.Errorf("disk seconds = %v want 100", s.DiskSeconds)
	}
	if s.BytesRead != 100*4096 {
		t.Errorf("bytes read = %d want %d", s.BytesRead, 100*4096)
	}
}

func TestMemoryReadAheadBatchesRequests(t *testing.T) {
	m, err := NewMemory(64*4096, Config{
		PageSize:          4096,
		CacheBytes:        128 * 4096,
		Disk:              DiskModel{BandwidthBytes: 4096, SeekSeconds: 0, RequestSeconds: 1},
		MinReadAheadPages: 4,
		MaxReadAheadPages: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Touch(0, 64*4096)
	s := m.Stats()
	if s.PagesRead != 64 {
		t.Errorf("pages read = %d want 64", s.PagesRead)
	}
	// Sequential scan with growing read-ahead needs far fewer disk
	// requests than 64; each request pays RequestSeconds = 1.
	requestCost := s.DiskSeconds - 64 // bandwidth cost = 64s
	if requestCost >= 32 {
		t.Errorf("request overhead = %v sec, read-ahead not batching (want < 32)", requestCost)
	}
	if s.MajorFaults >= 32 {
		t.Errorf("major faults = %d, read-ahead should absorb most", s.MajorFaults)
	}
	if s.ReadAheadHits == 0 {
		t.Error("expected read-ahead hits")
	}
}

func TestMemoryRandomAccessShrinksWindow(t *testing.T) {
	m, err := NewMemory(1024*4096, Config{
		PageSize:          4096,
		CacheBytes:        64 * 4096,
		Disk:              DiskModel{BandwidthBytes: 4096, SeekSeconds: 0.5, RequestSeconds: 0},
		MinReadAheadPages: 4,
		MaxReadAheadPages: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic stride pattern touches distant pages.
	for i := int64(0); i < 64; i++ {
		p := (i * 37) % 1024
		m.Touch(p*4096, 1)
	}
	s := m.Stats()
	// Non-sequential faults fetch one page each: PagesRead == MajorFaults.
	if s.PagesRead != s.MajorFaults {
		t.Errorf("random access fetched %d pages for %d faults (window should be 1)", s.PagesRead, s.MajorFaults)
	}
	// Every request paid the seek penalty.
	wantSeek := 0.5 * float64(s.MajorFaults)
	bwCost := float64(s.BytesRead) / 4096
	if math.Abs(s.DiskSeconds-(wantSeek+bwCost)) > 1e-9 {
		t.Errorf("disk time = %v want %v", s.DiskSeconds, wantSeek+bwCost)
	}
}

func TestMemoryDirtyWriteBack(t *testing.T) {
	m := newTestMemory(t, 8*4096, 4)
	m.TouchWrite(0, 4*4096) // dirty the first 4 pages
	m.Touch(4*4096, 4*4096) // force their eviction
	s := m.Stats()
	if s.DirtyWrittenBack != 4 {
		t.Errorf("dirty write-backs = %d want 4", s.DirtyWrittenBack)
	}
	if s.BytesWritten != 4*4096 {
		t.Errorf("bytes written = %d want %d", s.BytesWritten, 4*4096)
	}
}

func TestMemoryDrop(t *testing.T) {
	m := newTestMemory(t, 8*4096, 16)
	m.Touch(0, 8*4096)
	m.Drop(0, 4*4096)
	if m.ResidentPages() != 4 {
		t.Errorf("resident after drop = %d want 4", m.ResidentPages())
	}
	if m.Resident(0) {
		t.Error("dropped page still resident")
	}
	if !m.Resident(5 * 4096) {
		t.Error("non-dropped page missing")
	}
	stall := m.Touch(0, 1)
	if stall <= 0 {
		t.Error("re-touching dropped page should stall")
	}
}

func TestMemoryAccessBoundsPanic(t *testing.T) {
	m := newTestMemory(t, 4096, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds access")
		}
	}()
	m.Touch(4096, 1)
}

func TestMemoryResetStatsKeepsCache(t *testing.T) {
	m := newTestMemory(t, 4*4096, 8)
	m.Touch(0, 4*4096)
	m.ResetStats()
	if m.Stats().MajorFaults != 0 {
		t.Error("stats not reset")
	}
	m.Touch(0, 4*4096)
	if got := m.Stats().MajorFaults; got != 0 {
		t.Errorf("cache lost across ResetStats: %d major faults", got)
	}
}

func TestNewMemoryValidation(t *testing.T) {
	if _, err := NewMemory(0, Config{}); err == nil {
		t.Error("expected error for zero size")
	}
	if _, err := NewMemory(10, Config{Disk: DiskModel{BandwidthBytes: -1}}); err == nil {
		t.Error("expected error for invalid disk")
	}
}

func TestTimeline(t *testing.T) {
	var tl Timeline
	tl.AddCPU(2)
	tl.AddDisk(10)
	tl.AddCPU(-5) // ignored
	if tl.Elapsed() != 10 {
		t.Errorf("elapsed = %v want 10 (disk-bound)", tl.Elapsed())
	}
	cpu, disk := tl.Utilization()
	if math.Abs(cpu-0.2) > 1e-12 || math.Abs(disk-1.0) > 1e-12 {
		t.Errorf("utilization = (%v,%v) want (0.2,1.0)", cpu, disk)
	}
	var other Timeline
	other.AddCPU(20)
	tl.Add(other)
	if tl.Elapsed() != 22 {
		t.Errorf("merged elapsed = %v want 22 (cpu-bound)", tl.Elapsed())
	}
	tl.Reset()
	if tl.Elapsed() != 0 {
		t.Error("reset failed")
	}
	cpu, disk = tl.Utilization()
	if cpu != 0 || disk != 0 {
		t.Error("utilization of empty timeline should be 0,0")
	}
}

// Property: for any access pattern, MajorFaults+MinorFaults equals the
// number of page touches, and resident pages never exceed capacity.
func TestMemoryPropertyConservation(t *testing.T) {
	f := func(offsets []uint16) bool {
		const pages = 32
		m, err := NewMemory(pages*4096, Config{
			PageSize:   4096,
			CacheBytes: 8 * 4096,
			Disk:       DiskModel{BandwidthBytes: 1e6},
		})
		if err != nil {
			return false
		}
		for _, o := range offsets {
			p := int64(o) % pages
			m.Touch(p*4096, 1)
			if m.ResidentPages() > m.CachePages() {
				return false
			}
		}
		s := m.Stats()
		return s.MajorFaults+s.MinorFaults == uint64(len(offsets))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: bytes read from disk are always >= bytes uniquely touched
// the first time, and a scan of S bytes with cache >= S reads each
// byte exactly once regardless of repetition count.
func TestMemoryPropertyCachedScanReadsOnce(t *testing.T) {
	f := func(repeats uint8) bool {
		const size = 16 * 4096
		m, err := NewMemory(size, Config{
			PageSize:   4096,
			CacheBytes: size * 2,
			Disk:       DiskModel{BandwidthBytes: 1e6},
		})
		if err != nil {
			return false
		}
		n := int(repeats%8) + 1
		for i := 0; i < n; i++ {
			m.Touch(0, size)
		}
		return m.Stats().BytesRead == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
