package vm

import (
	"math"
	"testing"
)

// goldenConfig is the fixed configuration of the golden trace: small
// cache, read-ahead enabled, asymmetric read/write bandwidth and
// non-zero latencies so every cost component shows up in the totals.
func goldenConfig() Config {
	return Config{
		PageSize:   4096,
		CacheBytes: 16 * 4096,
		Disk: DiskModel{
			BandwidthBytes:      4096 * 100, // 100 pages/s read
			WriteBandwidthBytes: 4096 * 50,  // 50 pages/s write
			SeekSeconds:         0.25,
			RequestSeconds:      0.0625,
		},
		MinReadAheadPages: 2,
		MaxReadAheadPages: 8,
	}
}

// goldenTrace drives a fixed access mix — sequential scans, a strided
// re-read, writes, a partial drop, a re-scan — through any toucher.
// It exercises read-ahead growth and reset, eviction, dirty
// write-back batching and Drop.
func goldenTrace(m *Memory, touch, touchWrite func(off, length int64) float64) float64 {
	const page = 4096
	var stall float64
	stall += touch(0, 24*page)          // sequential scan, evicts into the 16-page cache
	stall += touchWrite(4*page, 8*page) // dirty a resident window
	for i := int64(0); i < 12; i++ {    // stride-5 pages: random-ish pattern
		stall += touch(((i*5)%24)*page, 1)
	}
	stall += touch(24*page, 8*page) // fresh sequential tail
	m.Drop(2*page, 10*page)         // madvise(DONTNEED) over a dirty range
	stall += touch(0, 32*page)      // full re-scan
	return stall
}

// TestMemoryGoldenTrace pins the exact simulated statistics of the
// golden trace, protecting the single-stream cost model bit for bit
// through refactors of Memory's internals.
func TestMemoryGoldenTrace(t *testing.T) {
	m, err := NewMemory(32*4096, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	stall := goldenTrace(m, m.Touch, m.TouchWrite)
	s := m.Stats()

	want := Stats{
		MajorFaults:      28,
		MinorFaults:      56,
		PagesRead:        92,
		PagesEvicted:     76,
		DirtyWrittenBack: 8,
		WriteRequests:    8,
		BytesRead:        376832,
		BytesWritten:     32768,
		ReadAheadHits:    52,
	}
	const wantDisk = 7.33
	// stall excludes Drop's write-back (Drop returns nothing), so it
	// trails DiskSeconds by that one contiguous 1-page write request.
	const wantStall = 7.2475

	got := s
	got.DiskSeconds = 0
	if got != want {
		t.Errorf("golden stats drifted:\n got %+v\nwant %+v", got, want)
	}
	if math.Abs(s.DiskSeconds-wantDisk) > 1e-9 {
		t.Errorf("golden DiskSeconds = %.10f want %.10f", s.DiskSeconds, wantDisk)
	}
	if math.Abs(stall-wantStall) > 1e-9 {
		t.Errorf("golden stall = %.10f want %.10f", stall, wantStall)
	}
	t.Logf("stats=%+v disk=%.10f stall=%.10f", s, s.DiskSeconds, stall)
}

// TestStreamMatchesDefaultPath proves the refactor's core invariant:
// one explicit Stream is bit-identical to the built-in default stream
// that Touch/TouchWrite use, access by access.
func TestStreamMatchesDefaultPath(t *testing.T) {
	md, err := NewMemory(32*4096, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMemory(32*4096, goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := ms.NewStream()

	var stalls []float64
	recTouch := func(off, length int64) float64 {
		d := md.Touch(off, length)
		stalls = append(stalls, d)
		return d
	}
	recWrite := func(off, length int64) float64 {
		d := md.TouchWrite(off, length)
		stalls = append(stalls, d)
		return d
	}
	goldenTrace(md, recTouch, recWrite)

	i := 0
	chkTouch := func(off, length int64) float64 {
		d := st.Touch(off, length)
		if d != stalls[i] {
			t.Fatalf("access %d: stream stall %v != default %v", i, d, stalls[i])
		}
		i++
		return d
	}
	chkWrite := func(off, length int64) float64 {
		d := st.TouchWrite(off, length)
		if d != stalls[i] {
			t.Fatalf("access %d: stream stall %v != default %v", i, d, stalls[i])
		}
		i++
		return d
	}
	goldenTrace(ms, chkTouch, chkWrite)

	if md.Stats() != ms.Stats() {
		t.Errorf("stream stats diverged:\n default %+v\n stream  %+v", md.Stats(), ms.Stats())
	}
}
