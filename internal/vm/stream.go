package vm

// Stream is a per-scanner access handle onto a Memory. Linux keeps
// read-ahead state per struct file, not per device; Stream is the
// simulated counterpart: the sequential-pattern detection state (last
// faulted page, end of the last read request, current read-ahead
// window) is private to the stream, while the page cache, the device
// and the statistics remain shared with every other stream of the
// same Memory.
//
// Concurrent scanners that each own a Stream keep their sequentiality
// — and with it read-ahead batching — even though their faults
// interleave in the shared cache. All mutation happens under the
// Memory's mutex, so Streams are safe for concurrent use, but sharing
// one Stream between scanners merges their access patterns and
// defeats read-ahead, which is exactly what the per-worker streams in
// internal/exec exist to avoid.
type Stream struct {
	mem       *Memory
	lastFault int64 // page of the previous major fault (-2 = none)
	lastEnd   int64 // page just past the previous disk read request
	raWindow  int   // current read-ahead window in pages
}

// NewStream opens an independent access stream with fresh
// sequential-detection state over m's shared page cache. Memory's own
// Touch/TouchWrite run on a built-in default stream, so
// single-scanner code never needs this — and a lone explicit stream
// behaves bit-identically to that default path.
func (m *Memory) NewStream() *Stream {
	return &Stream{mem: m, lastFault: -2, lastEnd: -2, raWindow: m.cfg.MinReadAheadPages}
}

// Touch simulates a read of length bytes at offset on this stream and
// returns the simulated disk stall in seconds incurred by the access.
func (s *Stream) Touch(offset, length int64) float64 {
	return s.mem.access(s, offset, length, false)
}

// TouchWrite simulates a write on this stream (pages become dirty and
// must be written back on eviction) and returns the simulated stall
// in seconds.
func (s *Stream) TouchWrite(offset, length int64) float64 {
	return s.mem.access(s, offset, length, true)
}
