package vm

// lruCache is an O(1) LRU over page numbers, implemented with an
// intrusive doubly-linked list and a map. It approximates the kernel's
// page-reclaim behaviour closely enough for runtime modelling: the
// coldest page is evicted when the cache is full.
type lruCache struct {
	capacity int
	nodes    map[int64]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

type lruNode struct {
	page       int64
	dirty      bool
	prev, next *lruNode
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{capacity: capacity, nodes: make(map[int64]*lruNode, capacity)}
}

// Len returns the number of cached pages.
func (c *lruCache) Len() int { return len(c.nodes) }

// Contains reports residency without touching recency.
func (c *lruCache) Contains(page int64) bool {
	_, ok := c.nodes[page]
	return ok
}

// Touch marks page as most-recently-used. It returns true if the page
// was resident (a hit).
func (c *lruCache) Touch(page int64) bool {
	n, ok := c.nodes[page]
	if !ok {
		return false
	}
	c.moveToFront(n)
	return true
}

// MarkDirty flags a resident page as dirty; it reports whether the
// page was resident.
func (c *lruCache) MarkDirty(page int64) bool {
	n, ok := c.nodes[page]
	if !ok {
		return false
	}
	n.dirty = true
	c.moveToFront(n)
	return true
}

// Insert adds page as most-recently-used. If the cache is full the
// least-recently-used page is evicted and returned with evicted=true;
// dirtyEvicted reports whether the victim needed write-back.
func (c *lruCache) Insert(page int64) (victim int64, evicted, dirtyEvicted bool) {
	if n, ok := c.nodes[page]; ok {
		c.moveToFront(n)
		return 0, false, false
	}
	n := &lruNode{page: page}
	c.nodes[page] = n
	c.pushFront(n)
	if len(c.nodes) <= c.capacity {
		return 0, false, false
	}
	v := c.tail
	c.remove(v)
	delete(c.nodes, v.page)
	return v.page, true, v.dirty
}

// Remove drops page from the cache if present, reporting whether it
// was resident and dirty.
func (c *lruCache) Remove(page int64) (present, dirty bool) {
	n, ok := c.nodes[page]
	if !ok {
		return false, false
	}
	c.remove(n)
	delete(c.nodes, page)
	return true, n.dirty
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) remove(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.remove(n)
	c.pushFront(n)
}
