package vm

import (
	"fmt"
	"sort"
	"sync"
)

// Config parameterizes a simulated address space.
type Config struct {
	// PageSize in bytes; defaults to 4 KiB.
	PageSize int64
	// CacheBytes is the RAM budget available to the page cache
	// (the paper's machine: 32 GB). Defaults to 1 MiB.
	CacheBytes int64
	// Disk models the backing device.
	Disk DiskModel
	// MinReadAheadPages and MaxReadAheadPages bound the sequential
	// read-ahead window: the first sequential fault reads
	// MinReadAheadPages and the window doubles on each confirmed
	// sequential fault after that, like the Linux ondemand_readahead
	// heuristic. Defaults: 4 and 512 (2 MiB at 4 KiB pages).
	MinReadAheadPages int
	MaxReadAheadPages int
}

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 1 << 20
	}
	if c.Disk == (DiskModel{}) {
		c.Disk = SSD()
	}
	if c.MinReadAheadPages <= 0 {
		c.MinReadAheadPages = 4
	}
	if c.MaxReadAheadPages <= 0 {
		c.MaxReadAheadPages = 512
	}
	if c.MaxReadAheadPages < c.MinReadAheadPages {
		c.MaxReadAheadPages = c.MinReadAheadPages
	}
	return c
}

// Stats aggregates paging activity for a Memory.
type Stats struct {
	// MajorFaults counts accesses that required disk I/O.
	MajorFaults uint64
	// MinorFaults counts accesses satisfied by the page cache.
	MinorFaults uint64
	// PagesRead counts pages fetched from disk, including read-ahead.
	PagesRead uint64
	// PagesEvicted counts evictions.
	PagesEvicted uint64
	// DirtyWrittenBack counts evicted pages that required write-back.
	DirtyWrittenBack uint64
	// WriteRequests counts write-back requests issued to the device;
	// contiguous dirty victims are batched into a single request.
	WriteRequests uint64
	// BytesRead is PagesRead in bytes.
	BytesRead int64
	// BytesWritten covers write-back traffic.
	BytesWritten int64
	// DiskSeconds is total simulated device busy time.
	DiskSeconds float64
	// ReadAheadHits counts minor faults on pages brought in by
	// read-ahead before first use.
	ReadAheadHits uint64
}

// HitRatio returns the fraction of page touches served from cache.
func (s Stats) HitRatio() float64 {
	total := s.MajorFaults + s.MinorFaults
	if total == 0 {
		return 0
	}
	return float64(s.MinorFaults) / float64(total)
}

// Memory simulates demand paging over a backing store of Size bytes.
//
// The page cache (LRU), the statistics and the device are shared
// state, guarded by one mutex, so a Memory is safe for concurrent
// use. Sequential-pattern detection — the state that drives
// read-ahead — lives in a Stream (the simulated counterpart of the
// kernel keeping readahead state per struct file, not per device):
// Touch/TouchWrite use a built-in default stream, and concurrent
// scanners open one private Stream each via NewStream so interleaved
// faults do not destroy one another's sequentiality.
//
// Determinism: a single-stream access sequence always produces the
// same statistics. With concurrent streams, interleaving depends on
// goroutine scheduling, and under cache pressure so do the totals —
// one stream's faults can evict pages another prefetched but has not
// consumed, forcing re-reads that vary run to run. Every touched page
// is still read at least once, and when the cache absorbs the working
// set (no evictions) fault and byte totals are exact.
type Memory struct {
	cfg  Config
	size int64

	mu           sync.Mutex
	cache        *lruCache
	stats        Stats
	prefetch     map[int64]bool // pages resident via read-ahead, not yet referenced
	lastWriteEnd int64          // page just past the previous write-back request
	wbuf         []int64        // scratch: dirty victims of the access in flight
	def          *Stream        // stream behind the plain Touch/TouchWrite API
}

// NewMemory creates a simulated address space of size bytes.
func NewMemory(size int64, cfg Config) (*Memory, error) {
	if size <= 0 {
		return nil, fmt.Errorf("vm: non-positive size %d", size)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	capPages := cfg.CacheBytes / cfg.PageSize
	if capPages < 1 {
		capPages = 1
	}
	m := &Memory{
		cfg:          cfg,
		size:         size,
		cache:        newLRU(int(capPages)),
		prefetch:     make(map[int64]bool),
		lastWriteEnd: -2,
	}
	m.def = m.NewStream()
	return m, nil
}

// Size returns the backing-store size in bytes.
func (m *Memory) Size() int64 { return m.size }

// PageSize returns the simulated page size.
func (m *Memory) PageSize() int64 { return m.cfg.PageSize }

// CachePages returns the page-cache capacity in pages.
func (m *Memory) CachePages() int { return m.cache.capacity }

// ResidentPages returns the current number of cached pages.
func (m *Memory) ResidentPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.Len()
}

// Stats returns a snapshot of paging statistics.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters without disturbing cache contents,
// so steady-state iterations can be measured separately from warm-up.
func (m *Memory) ResetStats() {
	m.mu.Lock()
	m.stats = Stats{}
	m.mu.Unlock()
}

// Touch simulates a read of length bytes at offset on the default
// stream and returns the simulated disk stall in seconds incurred by
// the access.
func (m *Memory) Touch(offset, length int64) float64 {
	return m.def.Touch(offset, length)
}

// TouchWrite simulates a write (pages become dirty and must be written
// back on eviction) on the default stream and returns the simulated
// stall in seconds.
func (m *Memory) TouchWrite(offset, length int64) float64 {
	return m.def.TouchWrite(offset, length)
}

func (m *Memory) access(s *Stream, offset, length int64, write bool) float64 {
	if offset < 0 || length < 0 || offset+length > m.size {
		panic(fmt.Sprintf("vm: access [%d,%d) outside store of %d bytes", offset, offset+length, m.size))
	}
	if length == 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var stall float64
	first := offset / m.cfg.PageSize
	last := (offset + length - 1) / m.cfg.PageSize
	m.wbuf = m.wbuf[:0]
	for p := first; p <= last; p++ {
		stall += m.touchPage(s, p, write)
	}
	// Dirty victims evicted anywhere in this access are written back
	// as one batch: contiguous pages coalesce into single requests at
	// write bandwidth, the way the kernel's flusher submits them.
	stall += m.writeBack(m.wbuf)
	return stall
}

// touchPage services one page reference on stream s, accumulating the
// dirty victims it evicts into m.wbuf. Caller holds m.mu.
func (m *Memory) touchPage(s *Stream, p int64, write bool) float64 {
	if m.cache.Touch(p) {
		m.stats.MinorFaults++
		if m.prefetch[p] {
			m.stats.ReadAheadHits++
			delete(m.prefetch, p)
			// Consuming a prefetched page confirms the sequential
			// stream (the kernel's readahead marker): the next miss
			// at p+1 must extend the window, not reset it.
			s.lastFault = p
		}
		if write {
			m.cache.MarkDirty(p)
		}
		return 0
	}

	// Major fault. Decide the read window: on a sequential pattern,
	// fetch [p, p+window); otherwise fetch just the page and shrink
	// the window back to the minimum. The current window is used
	// as-is and growth is deferred, so the first sequential fault
	// reads exactly MinReadAheadPages and the window doubles only on
	// each confirmed sequential fault after it.
	sequential := p == s.lastFault+1 || m.prefetch[p]
	window := int64(1)
	if sequential {
		window = int64(s.raWindow)
		s.raWindow *= 2
		if s.raWindow > m.cfg.MaxReadAheadPages {
			s.raWindow = m.cfg.MaxReadAheadPages
		}
	} else {
		s.raWindow = m.cfg.MinReadAheadPages
	}
	maxPage := (m.size + m.cfg.PageSize - 1) / m.cfg.PageSize
	if p+window > maxPage {
		window = maxPage - p
	}
	// Trim the window to pages that are actually absent.
	n := int64(0)
	for n < window && !m.cache.Contains(p+n) {
		n++
	}

	contiguous := p == s.lastEnd
	bytes := n * m.cfg.PageSize
	t := m.cfg.Disk.ReadTime(bytes, contiguous)
	m.stats.DiskSeconds += t
	m.stats.MajorFaults++
	m.stats.PagesRead += uint64(n)
	m.stats.BytesRead += bytes
	s.lastFault = p
	s.lastEnd = p + n

	for i := int64(0); i < n; i++ {
		page := p + i
		if victim, evicted, dirty := m.cache.Insert(page); evicted {
			m.stats.PagesEvicted++
			if dirty {
				m.wbuf = append(m.wbuf, victim)
			}
			delete(m.prefetch, victim)
		}
		if i > 0 {
			m.prefetch[page] = true
		}
	}
	if write {
		m.cache.MarkDirty(p)
	}
	return t
}

// writeBack bills the write-back of the given dirty pages: pages are
// sorted (the elevator) and maximal contiguous runs are submitted as
// single requests at the device's write bandwidth. A run starting
// where the previous write-back ended skips the seek penalty. It
// returns the total write stall. Caller holds m.mu.
func (m *Memory) writeBack(pages []int64) float64 {
	if len(pages) == 0 {
		return 0
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var total float64
	start, n := pages[0], int64(1)
	flush := func() {
		bytes := n * m.cfg.PageSize
		wt := m.cfg.Disk.WriteTime(bytes, start == m.lastWriteEnd)
		m.stats.DiskSeconds += wt
		m.stats.WriteRequests++
		m.stats.DirtyWrittenBack += uint64(n)
		m.stats.BytesWritten += bytes
		m.lastWriteEnd = start + n
		total += wt
	}
	for _, p := range pages[1:] {
		if p == start+n {
			n++
			continue
		}
		flush()
		start, n = p, 1
	}
	flush()
	return total
}

// Drop simulates madvise(DONTNEED) over a byte range: the pages are
// discarded from the cache. Dirty pages are written back first —
// batched into contiguous requests billed at the device's write
// bandwidth, exactly as on eviction — while clean pages are discarded
// for free.
func (m *Memory) Drop(offset, length int64) {
	if length <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	first := offset / m.cfg.PageSize
	last := (offset + length - 1) / m.cfg.PageSize
	m.wbuf = m.wbuf[:0]
	for p := first; p <= last; p++ {
		if present, dirty := m.cache.Remove(p); present {
			m.stats.PagesEvicted++
			if dirty {
				m.wbuf = append(m.wbuf, p)
			}
			delete(m.prefetch, p)
		}
	}
	m.writeBack(m.wbuf)
}

// Resident reports whether the page containing offset is cached.
func (m *Memory) Resident(offset int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.Contains(offset / m.cfg.PageSize)
}
