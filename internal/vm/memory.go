package vm

import "fmt"

// Config parameterizes a simulated address space.
type Config struct {
	// PageSize in bytes; defaults to 4 KiB.
	PageSize int64
	// CacheBytes is the RAM budget available to the page cache
	// (the paper's machine: 32 GB). Defaults to 1 MiB.
	CacheBytes int64
	// Disk models the backing device.
	Disk DiskModel
	// MinReadAheadPages and MaxReadAheadPages bound the sequential
	// read-ahead window; the window doubles on each confirmed
	// sequential fault, like the Linux ondemand_readahead heuristic.
	// Defaults: 4 and 512 (2 MiB at 4 KiB pages).
	MinReadAheadPages int
	MaxReadAheadPages int
}

func (c Config) withDefaults() Config {
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 1 << 20
	}
	if c.Disk == (DiskModel{}) {
		c.Disk = SSD()
	}
	if c.MinReadAheadPages <= 0 {
		c.MinReadAheadPages = 4
	}
	if c.MaxReadAheadPages <= 0 {
		c.MaxReadAheadPages = 512
	}
	if c.MaxReadAheadPages < c.MinReadAheadPages {
		c.MaxReadAheadPages = c.MinReadAheadPages
	}
	return c
}

// Stats aggregates paging activity for a Memory.
type Stats struct {
	// MajorFaults counts accesses that required disk I/O.
	MajorFaults uint64
	// MinorFaults counts accesses satisfied by the page cache.
	MinorFaults uint64
	// PagesRead counts pages fetched from disk, including read-ahead.
	PagesRead uint64
	// PagesEvicted counts evictions.
	PagesEvicted uint64
	// DirtyWrittenBack counts evicted pages that required write-back.
	DirtyWrittenBack uint64
	// BytesRead is PagesRead in bytes.
	BytesRead int64
	// BytesWritten covers write-back traffic.
	BytesWritten int64
	// DiskSeconds is total simulated device busy time.
	DiskSeconds float64
	// ReadAheadHits counts minor faults on pages brought in by
	// read-ahead before first use.
	ReadAheadHits uint64
}

// HitRatio returns the fraction of page touches served from cache.
func (s Stats) HitRatio() float64 {
	total := s.MajorFaults + s.MinorFaults
	if total == 0 {
		return 0
	}
	return float64(s.MinorFaults) / float64(total)
}

// Memory simulates demand paging over a backing store of Size bytes.
// It is deterministic: the same access sequence always produces the
// same statistics. Memory is not safe for concurrent use.
type Memory struct {
	cfg  Config
	size int64

	cache     *lruCache
	stats     Stats
	prefetch  map[int64]bool // pages resident via read-ahead, not yet referenced
	lastFault int64          // page of the previous major fault (-2 = none)
	lastEnd   int64          // page just past the previous disk request
	raWindow  int            // current read-ahead window in pages
}

// NewMemory creates a simulated address space of size bytes.
func NewMemory(size int64, cfg Config) (*Memory, error) {
	if size <= 0 {
		return nil, fmt.Errorf("vm: non-positive size %d", size)
	}
	cfg = cfg.withDefaults()
	if err := cfg.Disk.Validate(); err != nil {
		return nil, err
	}
	capPages := cfg.CacheBytes / cfg.PageSize
	if capPages < 1 {
		capPages = 1
	}
	return &Memory{
		cfg:       cfg,
		size:      size,
		cache:     newLRU(int(capPages)),
		prefetch:  make(map[int64]bool),
		lastFault: -2,
		lastEnd:   -2,
		raWindow:  cfg.MinReadAheadPages,
	}, nil
}

// Size returns the backing-store size in bytes.
func (m *Memory) Size() int64 { return m.size }

// PageSize returns the simulated page size.
func (m *Memory) PageSize() int64 { return m.cfg.PageSize }

// CachePages returns the page-cache capacity in pages.
func (m *Memory) CachePages() int { return m.cache.capacity }

// ResidentPages returns the current number of cached pages.
func (m *Memory) ResidentPages() int { return m.cache.Len() }

// Stats returns a snapshot of paging statistics.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes the counters without disturbing cache contents,
// so steady-state iterations can be measured separately from warm-up.
func (m *Memory) ResetStats() { m.stats = Stats{} }

// Touch simulates a read of length bytes at offset and returns the
// simulated disk stall in seconds incurred by the access.
func (m *Memory) Touch(offset, length int64) float64 {
	return m.access(offset, length, false)
}

// TouchWrite simulates a write (pages become dirty and must be written
// back on eviction) and returns the simulated stall in seconds.
func (m *Memory) TouchWrite(offset, length int64) float64 {
	return m.access(offset, length, true)
}

func (m *Memory) access(offset, length int64, write bool) float64 {
	if offset < 0 || length < 0 || offset+length > m.size {
		panic(fmt.Sprintf("vm: access [%d,%d) outside store of %d bytes", offset, offset+length, m.size))
	}
	if length == 0 {
		return 0
	}
	var stall float64
	first := offset / m.cfg.PageSize
	last := (offset + length - 1) / m.cfg.PageSize
	for p := first; p <= last; p++ {
		stall += m.touchPage(p, write)
	}
	return stall
}

// touchPage services one page reference.
func (m *Memory) touchPage(p int64, write bool) float64 {
	if m.cache.Touch(p) {
		m.stats.MinorFaults++
		if m.prefetch[p] {
			m.stats.ReadAheadHits++
			delete(m.prefetch, p)
			// Consuming a prefetched page confirms the sequential
			// stream (the kernel's readahead marker): the next miss
			// at p+1 must extend the window, not reset it.
			m.lastFault = p
		}
		if write {
			m.cache.MarkDirty(p)
		}
		return 0
	}

	// Major fault. Decide the read window: on a sequential pattern,
	// fetch [p, p+window); otherwise fetch just the page and shrink
	// the window back to the minimum.
	sequential := p == m.lastFault+1 || m.prefetch[p]
	if sequential {
		m.raWindow *= 2
		if m.raWindow > m.cfg.MaxReadAheadPages {
			m.raWindow = m.cfg.MaxReadAheadPages
		}
	} else {
		m.raWindow = m.cfg.MinReadAheadPages
	}
	window := int64(1)
	if sequential {
		window = int64(m.raWindow)
	}
	maxPage := (m.size + m.cfg.PageSize - 1) / m.cfg.PageSize
	if p+window > maxPage {
		window = maxPage - p
	}
	// Trim the window to pages that are actually absent.
	n := int64(0)
	for n < window && !m.cache.Contains(p+n) {
		n++
	}

	contiguous := p == m.lastEnd
	bytes := n * m.cfg.PageSize
	t := m.cfg.Disk.ReadTime(bytes, contiguous)
	m.stats.DiskSeconds += t
	m.stats.MajorFaults++
	m.stats.PagesRead += uint64(n)
	m.stats.BytesRead += bytes
	m.lastFault = p
	m.lastEnd = p + n

	for i := int64(0); i < n; i++ {
		page := p + i
		if victim, evicted, dirty := m.cache.Insert(page); evicted {
			m.stats.PagesEvicted++
			if dirty {
				m.stats.DirtyWrittenBack++
				m.stats.BytesWritten += m.cfg.PageSize
				wt := m.cfg.Disk.ReadTime(m.cfg.PageSize, false)
				m.stats.DiskSeconds += wt
				t += wt
			}
			delete(m.prefetch, victim)
		}
		if i > 0 {
			m.prefetch[page] = true
		}
	}
	if write {
		m.cache.MarkDirty(p)
	}
	return t
}

// Drop simulates madvise(DONTNEED) over a byte range: the pages are
// discarded from the cache without write-back accounting for reads.
func (m *Memory) Drop(offset, length int64) {
	if length <= 0 {
		return
	}
	first := offset / m.cfg.PageSize
	last := (offset + length - 1) / m.cfg.PageSize
	for p := first; p <= last; p++ {
		if present, dirty := m.cache.Remove(p); present {
			m.stats.PagesEvicted++
			if dirty {
				m.stats.DirtyWrittenBack++
				m.stats.BytesWritten += m.cfg.PageSize
				m.stats.DiskSeconds += m.cfg.Disk.ReadTime(m.cfg.PageSize, false)
			}
			delete(m.prefetch, p)
		}
	}
}

// Resident reports whether the page containing offset is cached.
func (m *Memory) Resident(offset int64) bool {
	return m.cache.Contains(offset / m.cfg.PageSize)
}
