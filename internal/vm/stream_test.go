package vm

import (
	"math"
	"sync"
	"testing"
)

func TestDiskModelWriteTime(t *testing.T) {
	d := DiskModel{BandwidthBytes: 1000, WriteBandwidthBytes: 500, SeekSeconds: 0.5, RequestSeconds: 0.1}
	if got := d.WriteTime(1000, true); math.Abs(got-2.1) > 1e-12 {
		t.Errorf("contiguous write = %v want 2.1", got)
	}
	if got := d.WriteTime(1000, false); math.Abs(got-2.6) > 1e-12 {
		t.Errorf("seeking write = %v want 2.6", got)
	}
	if got := d.WriteTime(0, false); got != 0 {
		t.Errorf("zero write = %v want 0", got)
	}
	// Zero write bandwidth falls back to the read bandwidth.
	sym := DiskModel{BandwidthBytes: 1000, SeekSeconds: 0.5, RequestSeconds: 0.1}
	if got := sym.WriteTime(1000, false); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("symmetric write = %v want 1.6", got)
	}
	if err := (DiskModel{BandwidthBytes: 1, WriteBandwidthBytes: -1}).Validate(); err == nil {
		t.Error("expected error for negative write bandwidth")
	}
	if r := RAID0(SSD(), 2); r.WriteBandwidthBytes != 2*SSD().WriteBandwidthBytes {
		t.Errorf("RAID0 write bandwidth = %v want %v", r.WriteBandwidthBytes, 2*SSD().WriteBandwidthBytes)
	}
}

// TestWriteBackBatchedAtWriteTime is the corrected disk-cost model's
// acceptance check: evicting N contiguous dirty pages in one access
// is billed as ONE write request at the device's write bandwidth —
// not N seek-laden read-priced requests.
func TestWriteBackBatchedAtWriteTime(t *testing.T) {
	disk := DiskModel{
		BandwidthBytes:      4096, // 1 page/s read
		WriteBandwidthBytes: 8192, // 2 pages/s write
		SeekSeconds:         0.5,
		RequestSeconds:      0.1,
	}
	cfg := Config{
		PageSize:          4096,
		CacheBytes:        4 * 4096,
		Disk:              disk,
		MinReadAheadPages: 1,
		MaxReadAheadPages: 1,
	}
	run := func(dirty bool) Stats {
		m, err := NewMemory(8*4096, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if dirty {
			m.TouchWrite(0, 4*4096)
		} else {
			m.Touch(0, 4*4096)
		}
		m.Touch(4*4096, 4*4096) // one access evicting all 4 victims
		return m.Stats()
	}
	clean, dirtied := run(false), run(true)

	if dirtied.DirtyWrittenBack != 4 {
		t.Fatalf("dirty write-backs = %d want 4", dirtied.DirtyWrittenBack)
	}
	if dirtied.WriteRequests != 1 {
		t.Errorf("write requests = %d want 1 (contiguous victims batch)", dirtied.WriteRequests)
	}
	if dirtied.BytesWritten != 4*4096 {
		t.Errorf("bytes written = %d want %d", dirtied.BytesWritten, 4*4096)
	}
	// The write-back surcharge over the clean run is exactly one
	// WriteTime request for the whole batch...
	surcharge := dirtied.DiskSeconds - clean.DiskSeconds
	want := disk.WriteTime(4*4096, false)
	if math.Abs(surcharge-want) > 1e-12 {
		t.Errorf("write-back cost = %v want one WriteTime = %v", surcharge, want)
	}
	// ...which is far below 4 seek-laden read-priced requests (the
	// old accounting).
	if old := 4 * disk.ReadTime(4096, false); surcharge >= old {
		t.Errorf("write-back cost %v not below old per-page read billing %v", surcharge, old)
	}
}

// TestDropWriteBackBatched: Drop over a contiguous dirty range is
// billed as one write request too, and drops clean pages for free.
func TestDropWriteBackBatched(t *testing.T) {
	cfg := Config{
		PageSize:          4096,
		CacheBytes:        16 * 4096,
		Disk:              DiskModel{BandwidthBytes: 4096, WriteBandwidthBytes: 8192, SeekSeconds: 0.5, RequestSeconds: 0.1},
		MinReadAheadPages: 1,
		MaxReadAheadPages: 1,
	}
	m, err := NewMemory(8*4096, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.TouchWrite(0, 4*4096)
	m.Touch(4*4096, 4*4096)
	before := m.Stats()
	m.Drop(0, 8*4096)
	s := m.Stats()
	if s.DirtyWrittenBack != 4 || s.WriteRequests != 1 {
		t.Errorf("drop wrote back %d pages in %d requests, want 4 in 1", s.DirtyWrittenBack, s.WriteRequests)
	}
	want := cfg.Disk.WriteTime(4*4096, false)
	if got := s.DiskSeconds - before.DiskSeconds; math.Abs(got-want) > 1e-12 {
		t.Errorf("drop write-back cost = %v want %v", got, want)
	}
	if m.ResidentPages() != 0 {
		t.Errorf("resident after full drop = %d", m.ResidentPages())
	}
}

// TestReadAheadInitialWindow pins the satellite bugfix: the FIRST
// sequential fault reads exactly MinReadAheadPages; the window only
// doubles on confirmed sequential faults after it. (The old code
// doubled before first use, making the initial window 2×Min.)
func TestReadAheadInitialWindow(t *testing.T) {
	m, err := NewMemory(64*4096, Config{
		PageSize:          4096,
		CacheBytes:        128 * 4096,
		Disk:              DiskModel{BandwidthBytes: 1e6},
		MinReadAheadPages: 4,
		MaxReadAheadPages: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Touch(0, 1) // cold fault: no pattern yet, reads 1 page
	if got := m.Stats().PagesRead; got != 1 {
		t.Fatalf("cold fault read %d pages, want 1", got)
	}
	m.Touch(4096, 1) // first sequential fault: the initial window, 4 pages
	if got := m.Stats().PagesRead; got != 1+4 {
		t.Errorf("first sequential fault read %d pages total, want 5 (window = MinReadAheadPages)", got)
	}
	m.Touch(2*4096, 3*4096) // consume the prefetched pages 2..4 (hits)
	if got := m.Stats().PagesRead; got != 1+4 {
		t.Fatalf("consuming prefetched pages read %d pages total, want still 5", got)
	}
	m.Touch(5*4096, 1) // confirmed sequential: window doubled to 8
	if got := m.Stats().PagesRead; got != 1+4+8 {
		t.Errorf("second sequential fault read %d pages total, want 13 (window doubled once)", got)
	}
}

// TestStreamsKeepSequentialityWhenInterleaved is the tentpole's
// point: two scanners interleaving page-sized reads over disjoint
// halves destroy each other's sequential detection when they share
// one stream, but keep read-ahead batching — far fewer, larger disk
// requests — when each owns a stream.
func TestStreamsKeepSequentialityWhenInterleaved(t *testing.T) {
	const pages = 128
	cfg := Config{
		PageSize:          4096,
		CacheBytes:        4 * pages * 4096,
		Disk:              DiskModel{BandwidthBytes: 4096, SeekSeconds: 0, RequestSeconds: 1},
		MinReadAheadPages: 4,
		MaxReadAheadPages: 32,
	}
	interleave := func(privateStreams bool) Stats {
		m, err := NewMemory(2*pages*4096, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sa, sb := m.NewStream(), m.NewStream()
		for p := int64(0); p < pages; p++ {
			if privateStreams {
				sa.Touch(p*4096, 1)
				sb.Touch((pages+p)*4096, 1)
			} else {
				m.Touch(p*4096, 1)
				m.Touch((pages+p)*4096, 1)
			}
		}
		return m.Stats()
	}
	shared := interleave(false)
	streamed := interleave(true)

	if streamed.PagesRead != 2*pages || shared.PagesRead != 2*pages {
		t.Fatalf("pages read = %d/%d want %d each", streamed.PagesRead, shared.PagesRead, 2*pages)
	}
	// Shared stream: every access alternates halves, so sequentiality
	// never survives and every page is its own request.
	if shared.MajorFaults != 2*pages {
		t.Errorf("shared-stream faults = %d want %d (window always reset)", shared.MajorFaults, 2*pages)
	}
	// Private streams: each scanner ramps its window, so the request
	// count (== major faults) collapses.
	if streamed.MajorFaults*4 >= shared.MajorFaults {
		t.Errorf("streamed faults = %d, want <1/4 of shared %d", streamed.MajorFaults, shared.MajorFaults)
	}
	if streamed.ReadAheadHits == 0 {
		t.Error("streamed scan recorded no read-ahead hits")
	}
	if streamed.DiskSeconds >= shared.DiskSeconds {
		t.Errorf("streamed disk time %v not below shared %v", streamed.DiskSeconds, shared.DiskSeconds)
	}
}

// TestStreamsConcurrentConservation: concurrent scanners on private
// streams keep the books balanced (every touch is a fault or a hit;
// residency bounded) and race-free.
func TestStreamsConcurrentConservation(t *testing.T) {
	const (
		workers = 8
		pages   = 64 // per worker
	)
	// Cache holds everything: with no evictions, read-ahead can never
	// cause a re-read, so every page must be fetched exactly once no
	// matter how the 8 streams interleave.
	m, err := NewMemory(workers*pages*4096, Config{
		PageSize:   4096,
		CacheBytes: 2 * workers * pages * 4096,
		Disk:       DiskModel{BandwidthBytes: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := m.NewStream()
			base := int64(w) * pages * 4096
			for p := int64(0); p < pages; p++ {
				s.Touch(base+p*4096, 1)
			}
		}(w)
	}
	wg.Wait()
	s := m.Stats()
	if got := s.MajorFaults + s.MinorFaults; got != workers*pages {
		t.Errorf("touches accounted = %d want %d", got, workers*pages)
	}
	if s.PagesRead != workers*pages {
		t.Errorf("pages read = %d want %d (each page exactly once)", s.PagesRead, workers*pages)
	}
	if m.ResidentPages() > m.CachePages() {
		t.Errorf("resident %d exceeds capacity %d", m.ResidentPages(), m.CachePages())
	}
}

func TestTimelineWorkerTracks(t *testing.T) {
	var tl Timeline
	tl.AddWorkerCPU(0, 3)
	tl.AddWorkerCPU(1, 5)
	tl.AddWorkerCPU(3, 2) // track 2 registered implicitly at 0
	tl.AddDisk(4)
	if got := tl.Tracks(); got != 4 {
		t.Errorf("tracks = %d want 4", got)
	}
	if got := tl.CPUSeconds(); got != 10 {
		t.Errorf("cpu seconds = %v want 10 (sum of tracks)", got)
	}
	// Elapsed is the slowest single resource: track 1 at 5s > disk 4s.
	if got := tl.Elapsed(); got != 5 {
		t.Errorf("elapsed = %v want 5 (slowest worker track)", got)
	}
	cpu, disk := tl.Utilization()
	if math.Abs(cpu-10.0/(5*4)) > 1e-12 {
		t.Errorf("cpu util = %v want %v (averaged over 4 tracks)", cpu, 10.0/(5*4))
	}
	if math.Abs(disk-0.8) > 1e-12 {
		t.Errorf("disk util = %v want 0.8", disk)
	}

	// Disk-bound phase: disk sets the pace.
	tl.AddDisk(6)
	if got := tl.Elapsed(); got != 10 {
		t.Errorf("elapsed = %v want 10 (disk-bound)", got)
	}

	// Sequential composition merges tracks index-wise.
	var other Timeline
	other.AddWorkerCPU(1, 7)
	tl.Add(other)
	if got := tl.Elapsed(); got != 12 {
		t.Errorf("merged elapsed = %v want 12 (track 1 = 12s)", got)
	}
	tl.Reset()
	if tl.Elapsed() != 0 || tl.Tracks() != 1 {
		t.Error("reset failed")
	}
}
